// Cache-equivalence harness for the cross-query plan cache (see
// DESIGN.md §4.11): over every example world — the reconstructed OODB
// optimizer (both the Prairie-generated and hand-coded rule sets), the
// centralized relational optimizer, and the DSL-compiled rules of
// examples/dslrules — a cache hit must return a plan byte-identical to
// the cold-path plan, a disabled cache must leave the engine
// byte-identical to a cacheless build, and a shared cache must be safe
// under the concurrent batch API (run with -race in CI).
package prairie_test

import (
	"fmt"
	"math"
	"os"
	"testing"

	"prairie"
	"prairie/internal/catalog"
	"prairie/internal/core"
	"prairie/internal/data"
	"prairie/internal/exec"
	"prairie/internal/oodb"
	"prairie/internal/p2v"
	"prairie/internal/qgen"
	"prairie/internal/relopt"
	"prairie/internal/volcano"
)

// cacheWorld is one (rule set, query, requirement) triple the harness
// exercises.
type cacheWorld struct {
	name string
	vrs  *volcano.RuleSet
	tree *core.Expr
	req  *core.Descriptor
}

// cacheWorlds builds the harness triples across every example world.
func cacheWorlds(t *testing.T) []cacheWorld {
	t.Helper()
	var ws []cacheWorld

	// OODB: Prairie-generated and hand-coded paths, one query per family.
	for _, fam := range []struct {
		e qgen.ExprKind
		n int
	}{{qgen.E1, 4}, {qgen.E2, 3}, {qgen.E3, 3}} {
		cat := qgen.Catalog(fam.n, qgen.InstanceSeeds()[0], false)
		po := oodb.New(cat)
		prs, err := po.PrairieRules()
		if err != nil {
			t.Fatal(err)
		}
		pvrs, rep, err := p2v.Translate(prs)
		if err != nil {
			t.Fatal(err)
		}
		ptree, err := qgen.Build(po, fam.e, fam.n)
		if err != nil {
			t.Fatal(err)
		}
		ptree, preq, err := rep.PrepareQuery(ptree, nil)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, cacheWorld{fmt.Sprintf("oodb/prairie/%v/n%d", fam.e, fam.n), pvrs, ptree, preq})

		vo := oodb.New(qgen.Catalog(fam.n, qgen.InstanceSeeds()[0], false))
		vtree, err := qgen.Build(vo, fam.e, fam.n)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, cacheWorld{fmt.Sprintf("oodb/volcano/%v/n%d", fam.e, fam.n),
			vo.VolcanoRules(), vtree, core.NewDescriptor(vo.Alg.Props)})
	}

	// Relational: the [5] experiment's optimizer, both paths.
	rcat := catalog.Generate(catalog.DefaultGen(3, 101, true))
	names := make([]string, 3)
	for i := range names {
		names[i] = catalog.ClassName(i + 1)
	}
	q := relopt.QuerySpec{Relations: names, Select: true}
	ro := relopt.New(rcat)
	rvrs, rrep, err := p2v.Translate(ro.PrairieRules())
	if err != nil {
		t.Fatal(err)
	}
	rtree, err := ro.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	rtree, rreq, err := rrep.PrepareQuery(rtree, ro.Requirement(q))
	if err != nil {
		t.Fatal(err)
	}
	ws = append(ws, cacheWorld{"relational/prairie", rvrs, rtree, rreq})

	vo := relopt.New(rcat)
	vtree, err := vo.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	ws = append(ws, cacheWorld{"relational/volcano", vo.VolcanoRules(), vtree, vo.Requirement(q)})

	// DSL rules: the textual specification of examples/dslrules, with a
	// root SORT that PrepareQuery turns into a requirement.
	ws = append(ws, dslWorld(t))
	return ws
}

// dslWorld compiles examples/dslrules/rules.prairie and builds the
// example's SORT(JOIN(RET(R1), RET(R2))) query.
func dslWorld(t *testing.T) cacheWorld {
	t.Helper()
	src, err := os.ReadFile("examples/dslrules/rules.prairie")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := prairie.ParseRules(string(src), map[string]prairie.HelperImpl{
		"nlogn": func(args []prairie.Value) (prairie.Value, error) {
			n := math.Max(float64(args[0].(prairie.Float)), 1)
			return prairie.Float(n * math.Log2(n+1)), nil
		},
		"order_within": func(args []prairie.Value) (prairie.Value, error) {
			ord := args[0].(prairie.Order)
			return prairie.Bool(ord.Within(args[1].(prairie.Attrs))), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	vrs, rep, err := prairie.Generate(rs)
	if err != nil {
		t.Fatal(err)
	}
	ps := rs.Algebra.Props
	nr := ps.MustLookup("num_records")
	at := ps.MustLookup("attributes")
	jp := ps.MustLookup("join_predicate")
	ord := ps.MustLookup("tuple_order")
	leaf := func(name string, card float64) *prairie.Expr {
		d := prairie.NewDescriptor(ps)
		d.SetFloat(nr, card)
		d.Set(at, prairie.Attrs{prairie.A(name, "a")})
		return prairie.NewLeaf(name, d)
	}
	retOp := rs.Algebra.MustOp("RET")
	joinOp := rs.Algebra.MustOp("JOIN")
	sortOp := rs.Algebra.MustOp("SORT")
	retOf := func(l *prairie.Expr) *prairie.Expr { return prairie.NewNode(retOp, l.D.Clone(), l) }
	l, r := retOf(leaf("R1", 512)), retOf(leaf("R2", 64))
	jd := prairie.NewDescriptor(ps)
	jd.SetFloat(nr, 512)
	jd.Set(at, l.D.AttrList(at).Union(r.D.AttrList(at)))
	jd.Set(jp, prairie.EqAttr(prairie.A("R1", "a"), prairie.A("R2", "a")))
	join := prairie.NewNode(joinOp, jd, l, r)
	sd := join.D.Clone()
	sd.Set(ord, prairie.OrderBy(prairie.A("R1", "a")))
	query := prairie.NewNode(sortOp, sd, join)
	query, req, err := rep.PrepareQuery(query, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cacheWorld{"dslrules", vrs, query, req}
}

// cacheRun optimizes one world with the given cache attached.
func cacheRun(t *testing.T, w cacheWorld, pc *volcano.PlanCache) (*volcano.PExpr, *volcano.Stats) {
	t.Helper()
	opt := volcano.NewOptimizer(w.vrs)
	opt.Opts.Cache = pc
	plan, err := opt.Optimize(w.tree.Clone(), w.req)
	if err != nil {
		t.Fatalf("%s: %v", w.name, err)
	}
	return plan, opt.Stats
}

// TestPlanCacheEquivalence: for every world, the miss that populates
// the cache, the hit that serves from it, and a run with a disabled
// cache must all produce plans byte-identical to the cold path, with
// the expected counter movements; the cacheless Stats rendering must be
// byte-identical too (no cache: line).
func TestPlanCacheEquivalence(t *testing.T) {
	for _, w := range cacheWorlds(t) {
		t.Run(w.name, func(t *testing.T) {
			coldPlan, coldStats := cacheRun(t, w, nil)
			cold := coldPlan.Format()

			pc := volcano.NewPlanCache(64)
			missPlan, missStats := cacheRun(t, w, pc)
			if got := missPlan.Format(); got != cold {
				t.Errorf("miss plan differs from cold:\nmiss: %s\ncold: %s", got, cold)
			}
			if missStats.CacheMisses != 1 || missStats.CacheHits != 0 {
				t.Errorf("miss counters = hits %d misses %d", missStats.CacheHits, missStats.CacheMisses)
			}
			hitPlan, hitStats := cacheRun(t, w, pc)
			if got := hitPlan.Format(); got != cold {
				t.Errorf("hit plan differs from cold:\nhit:  %s\ncold: %s", got, cold)
			}
			if hitStats.CacheHits != 1 || hitStats.CacheMisses != 0 {
				t.Errorf("hit counters = hits %d misses %d", hitStats.CacheHits, hitStats.CacheMisses)
			}
			if hitStats.Groups != coldStats.Groups || hitStats.Exprs != coldStats.Exprs {
				t.Errorf("hit memo shape (%d groups, %d exprs) != cold (%d, %d)",
					hitStats.Groups, hitStats.Exprs, coldStats.Groups, coldStats.Exprs)
			}

			// Disabled handle: engine byte-identical to cacheless.
			offPlan, offStats := cacheRun(t, w, volcano.NewPlanCache(0))
			if got := offPlan.Format(); got != cold {
				t.Errorf("disabled-cache plan differs from cold:\noff:  %s\ncold: %s", got, cold)
			}
			if got, want := offStats.String(), coldStats.String(); got != want {
				t.Errorf("disabled-cache stats render differs:\noff:  %q\ncold: %q", got, want)
			}
		})
	}
}

// TestPlanCacheHitPlansExecute: byte-identical plan text is necessary
// but not sufficient — for the executable OODB worlds, the plan served
// from a cache hit is compiled and run on synthetic data, on both the
// serial and the parallel engine, and bag-compared against the naive
// evaluation of the logical query.
func TestPlanCacheHitPlansExecute(t *testing.T) {
	seed := qgen.InstanceSeeds()[0]
	for _, fam := range []struct {
		e qgen.ExprKind
		n int
	}{{qgen.E1, 4}, {qgen.E2, 3}, {qgen.E3, 3}, {qgen.E4, 3}} {
		t.Run(fmt.Sprintf("%v/n%d", fam.e, fam.n), func(t *testing.T) {
			cat := qgen.Catalog(fam.n, seed, false)
			vo := oodb.New(cat)
			tree, err := qgen.Build(vo, fam.e, fam.n)
			if err != nil {
				t.Fatal(err)
			}
			w := cacheWorld{"exec", vo.VolcanoRules(), tree, core.NewDescriptor(vo.Alg.Props)}
			pc := volcano.NewPlanCache(16)
			cacheRun(t, w, pc) // miss populates
			hitPlan, hitStats := cacheRun(t, w, pc)
			if hitStats.CacheHits != 1 {
				t.Fatalf("second run was not a hit: %+v", hitStats)
			}
			db := data.Populate(cat, seed, 32)
			props := exec.Props{Ord: vo.Ord, JP: vo.JP, SP: vo.SP, PA: vo.PA, MA: vo.MA, UA: vo.UA}
			want, err := (&exec.Naive{DB: db, P: props}).Eval(tree)
			if err != nil {
				t.Fatal(err)
			}
			pe := hitPlan.ToExpr()
			for _, workers := range []int{1, 4} {
				comp := exec.NewCompiler(db, props)
				comp.Opts = exec.ExecOptions{Workers: workers}
				it, err := comp.Compile(pe)
				if err != nil {
					t.Fatalf("workers=%d: compile: %v", workers, err)
				}
				got, err := exec.Run(it)
				if err != nil {
					t.Fatalf("workers=%d: execute: %v", workers, err)
				}
				if !exec.SameBag(got, want) {
					t.Errorf("workers=%d: cache-hit plan disagrees with naive (%d vs %d rows)",
						workers, len(got.Rows), len(want.Rows))
				}
			}
		})
	}
}

// TestPlanCacheWarmStartDegradedOODB: under a budget, a degraded search
// that warm-starts from cached subproblem winners must degrade to the
// same plan as the cold degraded search — warm-start only tightens the
// branch-and-bound bound, it never changes which plan wins.
func TestPlanCacheWarmStartDegradedOODB(t *testing.T) {
	cat := qgen.Catalog(3, qgen.InstanceSeeds()[0], false)
	vo := oodb.New(cat)
	vrs := vo.VolcanoRules()
	req := core.NewDescriptor(vo.Alg.Props)
	budget := volcano.Budget{MaxExprs: 400}

	run := func(pc *volcano.PlanCache, e qgen.ExprKind, n int) (*volcano.PExpr, *volcano.Stats) {
		tree, err := qgen.Build(vo, e, n)
		if err != nil {
			t.Fatal(err)
		}
		opt := volcano.NewOptimizer(vrs)
		opt.Opts.Budget = budget
		opt.Opts.Cache = pc
		plan, err := opt.Optimize(tree.Clone(), req)
		if err != nil {
			t.Fatalf("%v n=%d: %v", e, n, err)
		}
		return plan, opt.Stats
	}

	coldPlan, coldStats := run(nil, qgen.E4, 3)
	if !coldStats.Degraded {
		t.Skipf("E4 n=3 completed within MaxExprs=%d; budget no longer degrades it", budget.MaxExprs)
	}

	// Populate the cache with the subproblems (the E2 chains the SELECT
	// sits on) under the SAME budget class, completing non-degraded.
	pc := volcano.NewPlanCache(64)
	for n := 2; n <= 3; n++ {
		_, s := run(pc, qgen.E2, n)
		if s.Degraded {
			t.Fatalf("E2 n=%d degraded; pick a looser budget for the prefix fills", n)
		}
	}
	warmPlan, warmStats := run(pc, qgen.E4, 3)
	if !warmStats.Degraded {
		t.Fatal("warm run did not degrade under the same budget")
	}
	if got, want := warmPlan.Format(), coldPlan.Format(); got != want {
		t.Errorf("warm degraded plan differs from cold degraded plan:\nwarm: %s\ncold: %s", got, want)
	}
	costID := vrs.Class.Cost
	if got, want := warmPlan.D.Float(costID), coldPlan.D.Float(costID); got > want {
		t.Errorf("warm degraded plan cost %g worse than cold %g", got, want)
	}
	if !warmPlan.ToExpr().IsPlan() {
		t.Errorf("warm degraded result is not an access plan: %s", warmPlan)
	}
	// Degraded searches are never cached: only the two E2 fills remain.
	if pc.Len() != 2 {
		t.Errorf("cache holds %d entries after a degraded run, want the 2 prefix fills", pc.Len())
	}
}

// TestPlanCacheBatchShared races many batch workers through one shared
// cache (run with -race in CI): duplicated items collapse through
// singleflight, every plan must match the cold sequential plan, and the
// hit/miss counters must account for every run.
func TestPlanCacheBatchShared(t *testing.T) {
	cat := qgen.Catalog(3, qgen.InstanceSeeds()[0], false)
	vo := oodb.New(cat)
	vrs := vo.VolcanoRules()
	req := core.NewDescriptor(vo.Alg.Props)

	families := []qgen.ExprKind{qgen.E1, qgen.E2, qgen.E3, qgen.E4}
	want := make([]string, len(families))
	var items []volcano.BatchItem
	const copies = 6
	for i, e := range families {
		tree, err := qgen.Build(vo, e, 3)
		if err != nil {
			t.Fatal(err)
		}
		seq := volcano.NewOptimizer(vrs)
		plan, err := seq.Optimize(tree.Clone(), req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = plan.Format()
		for c := 0; c < copies; c++ {
			items = append(items, volcano.BatchItem{RS: vrs, Tree: tree, Req: req})
		}
	}
	pc := volcano.NewPlanCache(64)
	results, report := volcano.OptimizeBatchOpts(nil, items, volcano.BatchOptions{
		Workers: 8, Cache: pc,
	})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if got := r.Plan.Format(); got != want[i/copies] {
			t.Errorf("item %d (%v): batch plan differs from sequential:\nbatch: %s\nseq:   %s",
				i, families[i/copies], got, want[i/copies])
		}
	}
	agg := report.Agg
	if agg.CacheHits+agg.CacheMisses != len(items) {
		t.Errorf("hits %d + misses %d != %d runs", agg.CacheHits, agg.CacheMisses, len(items))
	}
	if agg.CacheHits < len(items)-2*len(families) {
		t.Errorf("only %d hits across %d duplicated items (misses %d, flight waits %d)",
			agg.CacheHits, len(items), agg.CacheMisses, agg.FlightWaits)
	}
	if s := pc.Snapshot(); s.Entries != len(families) {
		t.Errorf("cache holds %d entries, want %d", s.Entries, len(families))
	}
}
