module prairie

go 1.22
