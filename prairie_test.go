package prairie_test

import (
	"strings"
	"testing"

	"prairie"
)

// TestFacadeEndToEnd drives the public API exactly as the quickstart
// example does: define an algebra and rules, translate, optimize.
func TestFacadeEndToEnd(t *testing.T) {
	alg := prairie.NewAlgebra("facade")
	nr := alg.Props.Define("num_records", prairie.KindFloat)
	cost := alg.Props.Define("cost", prairie.KindCost)
	ret := alg.Operator("RET", 1)
	join := alg.Operator("JOIN", 2)
	fs := alg.Algorithm("File_scan", 1)
	nl := alg.Algorithm("Nested_loops", 2)

	rs := prairie.NewRuleSet(alg)
	rs.AddT(&prairie.TRule{
		Name:     "join_commute",
		LHS:      prairie.POp(join, "D3", prairie.PVar(1, "D1"), prairie.PVar(2, "D2")),
		RHS:      prairie.POp(join, "D4", prairie.PVar(2, ""), prairie.PVar(1, "")),
		PostTest: func(b *prairie.Binding) { b.D("D4").CopyFrom(b.D("D3")) },
	})
	rs.AddI(&prairie.IRule{
		Name:   "ret_file_scan",
		LHS:    prairie.POp(ret, "D2", prairie.PVar(1, "D1")),
		RHS:    prairie.POp(fs, "D3", prairie.PVar(1, "")),
		PreOpt: func(b *prairie.Binding) { b.D("D3").CopyFrom(b.D("D2")) },
		PostOpt: func(b *prairie.Binding) {
			b.D("D3").SetFloat(cost, b.D("D1").Float(nr))
		},
	})
	rs.AddI(&prairie.IRule{
		Name: "join_nested_loops",
		LHS:  prairie.POp(join, "D3", prairie.PVar(1, "D1"), prairie.PVar(2, "D2")),
		RHS:  prairie.POp(nl, "D5", prairie.PVar(1, "D4"), prairie.PVar(2, "")),
		PreOpt: func(b *prairie.Binding) {
			b.D("D5").CopyFrom(b.D("D3"))
			b.D("D4").CopyFrom(b.D("D1"))
		},
		PostOpt: func(b *prairie.Binding) {
			d4 := b.D("D4")
			b.D("D5").SetFloat(cost, d4.Float(cost)+d4.Float(nr)*b.D("D2").Float(cost))
		},
	})

	leaf := func(name string, card float64) *prairie.Expr {
		d := prairie.NewDescriptor(alg.Props)
		d.SetFloat(nr, card)
		return prairie.NewLeaf(name, d)
	}
	retOf := func(l *prairie.Expr) *prairie.Expr { return prairie.NewNode(ret, l.D.Clone(), l) }
	jd := prairie.NewDescriptor(alg.Props)
	jd.SetFloat(nr, 1000*10)
	query := prairie.NewNode(join, jd, retOf(leaf("big", 1000)), retOf(leaf("small", 10)))

	plan, stats, err := prairie.Optimize(rs, query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.String(); got != "Nested_loops(File_scan(small), File_scan(big))" {
		t.Errorf("plan = %s", got)
	}
	if plan.D.Float(cost) != 10+10*1000 {
		t.Errorf("cost = %g", plan.D.Float(cost))
	}
	if stats.Groups != 5 {
		t.Errorf("groups = %d", stats.Groups)
	}

	// The explicit two-step path matches.
	vrs, rep, err := prairie.Generate(rs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CostProp != "cost" {
		t.Errorf("report cost prop = %q", rep.CostProp)
	}
	opt := prairie.NewOptimizer(vrs)
	plan2, err := opt.Optimize(query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.String() != plan.String() {
		t.Error("two-step path diverged from Optimize")
	}
}

func TestFacadeParseRules(t *testing.T) {
	src := `
		algebra tiny;
		property cost : cost;
		operator R(1);
		algorithm Scan(1) implements R;
		irule r_scan:
		  R(?1:D1):D2 => Scan(?1):D3
		preopt { D3 = D2; }
		postopt { D3.cost = 1; }`
	rs, err := prairie.ParseRules(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.IRules) != 1 || rs.Algebra.Name != "tiny" {
		t.Errorf("rules = %d, algebra = %q", len(rs.IRules), rs.Algebra.Name)
	}
	if errs := prairie.CheckRules(src); len(errs) != 0 {
		t.Errorf("CheckRules = %v", errs)
	}
	bad := strings.Replace(src, "D3.cost = 1;", "D3.wibble = 1;", 1)
	if errs := prairie.CheckRules(bad); len(errs) == 0 {
		t.Error("CheckRules accepted unknown property")
	}
}

func TestFacadeValues(t *testing.T) {
	a := prairie.A("R", "x")
	if !prairie.OrderBy(a).Within(prairie.Attrs{a}) {
		t.Error("OrderBy/Within")
	}
	if !prairie.DontCareOrder.IsDontCare() {
		t.Error("DontCareOrder")
	}
	p := prairie.And(prairie.EqAttr(a, prairie.A("S", "y")), prairie.EqConst(a, prairie.Int(1)))
	if len(p.Conjuncts()) != 2 {
		t.Error("And/Conjuncts")
	}
	if !prairie.TruePred.IsTrue() {
		t.Error("TruePred")
	}
}
