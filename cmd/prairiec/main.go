// Command prairiec is the Prairie rule compiler — the repository's
// analogue of the paper's P2V pre-processor binary. It parses a Prairie
// rule-specification file, checks it, and reports the P2V translation:
// the automatic property classification, deduced enforcers, rule
// merging, and the resulting Volcano rule-set shape.
//
// Usage:
//
//	prairiec [-check] [-fmt] [-dump] file.prairie
//
//	-check   parse and type-check only
//	-fmt     print the canonical formatting of the specification
//	-dump    also list the generated trans_rules/impl_rules/enforcers
//
// Helper functions declared by the specification are bound to stub
// implementations (returning their result kind's default value): the
// translation itself never executes rule actions, so stubs suffice for
// compilation and reporting. Linking real helpers requires the Go API
// (package prairie).
package main

import (
	"flag"
	"fmt"
	"os"

	"prairie/internal/core"
	"prairie/internal/p2v"
	"prairie/internal/prairielang"
)

func main() {
	checkOnly := flag.Bool("check", false, "parse and type-check only")
	format := flag.Bool("fmt", false, "print canonical formatting")
	dump := flag.Bool("dump", false, "list generated Volcano rules")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: prairiec [-check] [-fmt] [-dump] file.prairie")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *format {
		spec, err := prairielang.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		fmt.Print(prairielang.Format(spec))
		return
	}
	if errs := prairielang.Check(string(src)); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "%s: %v\n", flag.Arg(0), e)
		}
		os.Exit(1)
	}
	if *checkOnly {
		fmt.Printf("%s: specification OK\n", flag.Arg(0))
		return
	}

	spec, err := prairielang.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	impls := stubHelpers(spec)
	rs, err := prairielang.Compile(spec, impls)
	if err != nil {
		fatal(err)
	}
	vrs, rep, err := p2v.Translate(rs)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.String())
	if *dump {
		fmt.Println("\nGenerated Volcano rule set:")
		for _, r := range vrs.Trans {
			fmt.Printf("  trans_rule %s\n", r)
		}
		for _, r := range vrs.Impls {
			fmt.Printf("  impl_rule  %s\n", r)
		}
		for _, e := range vrs.Enforcers {
			fmt.Printf("  %s\n", e)
		}
	}
}

// stubHelpers binds every declared helper to a default-returning stub.
func stubHelpers(spec *prairielang.Spec) map[string]prairielang.HelperImpl {
	impls := make(map[string]prairielang.HelperImpl, len(spec.Helpers))
	for _, h := range spec.Helpers {
		kind := h.Result
		impls[h.Name] = func(args []core.Value) (core.Value, error) {
			return core.DefaultValue(kind), nil
		}
	}
	return impls
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prairiec:", err)
	os.Exit(1)
}
