// Command prairiec is the Prairie rule compiler — the repository's
// analogue of the paper's P2V pre-processor binary. It parses a Prairie
// rule-specification file, checks it, and reports the P2V translation:
// the automatic property classification, deduced enforcers, rule
// merging, and the resulting Volcano rule-set shape.
//
// Usage:
//
//	prairiec [-check] [-fmt] [-dump] [-verify] [-time] file.prairie
//
//	-check   parse and type-check only
//	-fmt     print the canonical formatting of the specification
//	-dump    also list the generated trans_rules/impl_rules/enforcers
//	-verify  differentially verify every trans_rule (JSON verdict table)
//	-time    report per-phase wall time (parse, check, compile, translate)
//
// Helper functions declared by the specification are bound to stub
// implementations (returning their result kind's default value): the
// translation itself never executes rule actions, so stubs suffice for
// compilation and reporting. Linking real helpers requires the Go API
// (package prairie). -verify does execute rule actions: it binds the
// example helpers (nlogn, order_within) where the specification declares
// them and stubs the rest, then runs internal/rulecheck's per-rule
// differential verifier over a synthetic catalog, exiting nonzero if any
// rule comes back with a counterexample or unexercised.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"prairie/internal/core"
	"prairie/internal/p2v"
	"prairie/internal/prairielang"
	"prairie/internal/rulecheck"
	"prairie/internal/volcano"
)

func main() {
	checkOnly := flag.Bool("check", false, "parse and type-check only")
	format := flag.Bool("fmt", false, "print canonical formatting")
	dump := flag.Bool("dump", false, "list generated Volcano rules")
	verify := flag.Bool("verify", false, "differentially verify every trans_rule; emit a JSON verdict table")
	timed := flag.Bool("time", false, "report per-phase wall time on stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: prairiec [-check] [-fmt] [-dump] [-verify] file.prairie")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	// phase wraps one compiler stage with optional wall-clock reporting.
	phase := func(name string, fn func()) {
		start := time.Now()
		fn()
		if *timed {
			fmt.Fprintf(os.Stderr, "prairiec: %-9s %v\n", name, time.Since(start).Round(time.Microsecond))
		}
	}

	if *format {
		var spec *prairielang.Spec
		phase("parse", func() { spec, err = prairielang.Parse(string(src)) })
		if err != nil {
			fatal(err)
		}
		fmt.Print(prairielang.Format(spec))
		return
	}
	var errs []error
	phase("check", func() { errs = prairielang.Check(string(src)) })
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "%s: %v\n", flag.Arg(0), e)
		}
		os.Exit(1)
	}
	if *checkOnly {
		fmt.Printf("%s: specification OK\n", flag.Arg(0))
		return
	}

	var spec *prairielang.Spec
	phase("parse", func() { spec, err = prairielang.Parse(string(src)) })
	if err != nil {
		fatal(err)
	}
	impls := stubHelpers(spec)
	if *verify {
		// Real implementations where the spec declares the example
		// helpers; the stubs stay for anything else.
		for name, fn := range rulecheck.DSLHelpers() {
			if _, ok := impls[name]; ok {
				impls[name] = fn
			}
		}
		var w *rulecheck.World
		phase("world", func() { w, err = rulecheck.DSLWorld(string(src), impls) })
		if err != nil {
			fatal(err)
		}
		var rep *rulecheck.Report
		phase("verify", func() { rep = rulecheck.Verify(w, rulecheck.Options{}) })
		js, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Print(js)
		if !rep.Ok() {
			os.Exit(1)
		}
		return
	}
	var rs *core.RuleSet
	phase("compile", func() { rs, err = prairielang.Compile(spec, impls) })
	if err != nil {
		fatal(err)
	}
	var vrs *volcano.RuleSet
	var rep *p2v.Report
	phase("translate", func() { vrs, rep, err = p2v.Translate(rs) })
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.String())
	if *dump {
		fmt.Println("\nGenerated Volcano rule set:")
		for _, r := range vrs.Trans {
			fmt.Printf("  trans_rule %s\n", r)
		}
		for _, r := range vrs.Impls {
			fmt.Printf("  impl_rule  %s\n", r)
		}
		for _, e := range vrs.Enforcers {
			fmt.Printf("  %s\n", e)
		}
	}
}

// stubHelpers binds every declared helper to a default-returning stub.
func stubHelpers(spec *prairielang.Spec) map[string]prairielang.HelperImpl {
	impls := make(map[string]prairielang.HelperImpl, len(spec.Helpers))
	for _, h := range spec.Helpers {
		kind := h.Result
		impls[h.Name] = func(args []core.Value) (core.Value, error) {
			return core.DefaultValue(kind), nil
		}
	}
	return impls
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prairiec:", err)
	os.Exit(1)
}
