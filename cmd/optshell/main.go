// Command optshell optimizes (and optionally executes) one query against
// the reconstructed Open OODB optimizer: it builds an E1–E4 workload
// over a synthetic catalog, runs the Prairie-generated optimizer, and
// prints the winning access plan, its estimated cost, and the search
// statistics.
//
// Usage:
//
//	optshell -expr E3 -n 3 -indexed -execute
//
// Trailing arguments are inspection commands run after the
// optimization, and -i opens an interactive prompt with the same
// commands:
//
//	optshell -expr E3 -n 3 :stats ':explain 0'
//	optshell -expr E2 -n 4 -i
//
// Commands: :stats (search statistics plus per-rule wall time),
// :explain <group> (a memo group's expressions with rule provenance
// and its memoized winners; topdown only), :memo (every group),
// :cache (plan-cache counters), :help, :quit.
//
// With -cache and -repeat, the query is optimized repeatedly through a
// cross-query plan cache — the first run misses and populates it, later
// runs are full hits:
//
//	optshell -expr E2 -n 4 -cache -repeat 3 :cache
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"prairie/internal/data"
	"prairie/internal/exec"
	"prairie/internal/obs"
	"prairie/internal/oodb"
	"prairie/internal/p2v"
	"prairie/internal/qgen"
	"prairie/internal/volcano"
)

func main() {
	expr := flag.String("expr", "E1", "expression family: E1, E2, E3 or E4")
	n := flag.Int("n", 3, "number of classes (joins = n-1)")
	indexed := flag.Bool("indexed", false, "give every class an index on its selection attribute")
	seed := flag.Int64("seed", 101, "catalog instance seed")
	execute := flag.Bool("execute", false, "run the winning plan on synthetic data")
	maxRows := flag.Int("maxrows", 256, "rows per table when executing")
	baseline := flag.Bool("volcano", false, "use the hand-coded Volcano rule set instead of the Prairie-generated one")
	strategy := flag.String("strategy", "topdown", "search strategy: topdown or bottomup")
	trace := flag.Bool("trace", false, "print a trace of rule firings and costed alternatives")
	timeout := flag.Duration("timeout", 0,
		"wall-clock optimization budget (topdown only, 0 = none); over budget, a degraded plan is returned")
	budgetExprs := flag.Int("budget-exprs", 0,
		"soft cap on memo expressions (topdown only, 0 = none); over budget, a degraded plan is returned")
	cache := flag.Bool("cache", false,
		"attach a cross-query plan cache (topdown only); with -repeat, runs after the first are served from it")
	repeat := flag.Int("repeat", 1,
		"optimize the query this many times (topdown only); pairs with -cache to show the hit path")
	interactive := flag.Bool("i", false, "after optimizing, read inspection commands (:stats, :explain ...) from stdin")
	flag.Parse()
	commands := flag.Args()

	var family qgen.ExprKind
	switch *expr {
	case "E1":
		family = qgen.E1
	case "E2":
		family = qgen.E2
	case "E3":
		family = qgen.E3
	case "E4":
		family = qgen.E4
	default:
		fmt.Fprintf(os.Stderr, "optshell: unknown expression %q\n", *expr)
		os.Exit(2)
	}

	cat := qgen.Catalog(*n, *seed, *indexed)
	o := oodb.New(cat)
	var vrs *volcano.RuleSet
	var rep *p2v.Report
	if *baseline {
		vrs = o.VolcanoRules()
	} else {
		rs, err := o.PrairieRules()
		if err != nil {
			fatal(err)
		}
		var err2 error
		vrs, rep, err2 = p2v.Translate(rs)
		if err2 != nil {
			fatal(err2)
		}
	}

	tree, err := qgen.Build(o, family, *n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("query (%s, %d classes%s):\n  %s\n\n", family, *n, indexedLabel(*indexed), tree)
	req := o.Alg.NewDesc()
	if rep != nil {
		tree, req, err = rep.PrepareQuery(tree, req)
		if err != nil {
			fatal(err)
		}
	}
	var plan *volcano.PExpr
	var stats *volcano.Stats
	var topOpt *volcano.Optimizer // retained for :explain / :memo
	var pc *volcano.PlanCache     // retained for :cache
	inspect := *interactive || len(commands) > 0
	switch *strategy {
	case "topdown":
		if *cache {
			pc = volcano.NewPlanCache(512)
		}
		reps := *repeat
		if reps < 1 {
			reps = 1
		}
		for i := 0; i < reps; i++ {
			opt := volcano.NewOptimizer(vrs)
			topOpt = opt
			opt.Opts.Budget = volcano.Budget{Timeout: *timeout, MaxExprs: *budgetExprs}
			opt.Opts.Cache = pc
			if inspect {
				// Inspection wants per-rule wall time attributed, so the
				// run is observed; plans and stats are unaffected.
				opt.Opts.Obs = &obs.Observer{RuleTiming: true}
			}
			if *trace && i == 0 {
				opt.OnEvent = func(e volcano.Event) { fmt.Println(e) }
			}
			start := time.Now()
			plan, err = opt.Optimize(tree.Clone(), req)
			elapsed := time.Since(start)
			stats = opt.Stats
			if err != nil {
				break
			}
			if reps > 1 {
				fmt.Printf("run %d/%d: %v (cache hits=%d misses=%d seeds=%d)\n",
					i+1, reps, elapsed, stats.CacheHits, stats.CacheMisses, stats.WarmSeeds)
			}
		}
		if *repeat > 1 {
			fmt.Println()
		}
	case "bottomup":
		opt := volcano.NewBottomUp(vrs)
		plan, err = opt.Optimize(tree, req)
		stats = opt.Stats
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	if err != nil {
		fatal(err)
	}
	if stats.Degraded {
		fmt.Printf("budget exhausted (%s): plan degraded via %s\n\n", stats.DegradeCause, stats.DegradePath)
	}
	fmt.Printf("winning plan (cost %.1f):\n  %s\n\n", plan.Cost(vrs.Class), plan)
	fmt.Print(plan.Explain(vrs.Class))
	fmt.Printf("\nsearch (%s): %s\n", *strategy, stats)

	if *execute {
		db := data.Populate(cat, *seed, *maxRows)
		comp := exec.NewCompiler(db, exec.Props{
			Ord: o.Ord, JP: o.JP, SP: o.SP, PA: o.PA, MA: o.MA, UA: o.UA,
		})
		it, err := comp.Compile(plan.ToExpr())
		if err != nil {
			fatal(err)
		}
		res, err := exec.Run(it)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nexecuted: %d tuples, %d columns\n", len(res.Rows), len(res.Schema))
		for i, row := range res.Rows {
			if i == 5 {
				fmt.Println("  ...")
				break
			}
			fmt.Printf("  %v\n", row)
		}
	}

	for _, cmd := range commands {
		if !runCommand(cmd, stats, topOpt, pc) {
			return
		}
	}
	if *interactive {
		sc := bufio.NewScanner(os.Stdin)
		fmt.Print("optshell> ")
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" && !runCommand(line, stats, topOpt, pc) {
				return
			}
			fmt.Print("optshell> ")
		}
	}
}

// runCommand executes one inspection command; it returns false when the
// session should end.
func runCommand(line string, stats *volcano.Stats, opt *volcano.Optimizer, pc *volcano.PlanCache) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case ":stats":
		fmt.Print(stats)
		if t := stats.RuleTimeTable(); t != "" {
			fmt.Print(t)
		}
	case ":explain":
		if opt == nil {
			fmt.Println("optshell: :explain requires -strategy topdown")
			break
		}
		if len(fields) != 2 {
			fmt.Println("usage: :explain <group>")
			break
		}
		g, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Printf("optshell: bad group %q\n", fields[1])
			break
		}
		out, err := opt.ExplainGroup(volcano.GroupID(g))
		if err != nil {
			fmt.Println("optshell:", err)
			break
		}
		fmt.Print(out)
	case ":memo":
		if opt == nil {
			fmt.Println("optshell: :memo requires -strategy topdown")
			break
		}
		for g := 0; g < opt.Memo.NumGroups(); g++ {
			out, err := opt.ExplainGroup(volcano.GroupID(g))
			if err != nil {
				fmt.Println("optshell:", err)
				break
			}
			fmt.Print(out)
		}
	case ":cache":
		fmt.Println(pc.String())
	case ":help":
		fmt.Println("commands: :stats  :explain <group>  :memo  :cache  :help  :quit")
	case ":quit", ":q", ":exit":
		return false
	default:
		fmt.Printf("optshell: unknown command %q (try :help)\n", fields[0])
	}
	return true
}

func indexedLabel(b bool) string {
	if b {
		return ", indexed"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "optshell:", err)
	os.Exit(1)
}
