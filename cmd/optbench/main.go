// Command optbench regenerates the paper's evaluation (Section 4): the
// rules-matched table (Table 5), the optimization-time figures (Figures
// 10–13), the equivalence-class growth figure (Figure 14), the §4.2
// rule-count comparison, and the relational-optimizer experiment of [5].
//
// Usage:
//
//	optbench -experiment all
//	optbench -experiment fig10 -maxclasses 6 -repeats 10 -csv
//	optbench -experiment fig13 -workers 8 -json > BENCH_fig13.json
//	optbench -experiment fig13 -max-exprs 5000 -degrade -timeout 50ms
//
// With -timeout or -degrade, over-budget points return gracefully
// degraded plans and are marked '*' in the tables instead of ending
// their series with 'exhausted'.
//
// Plan caching (see internal/plancache and DESIGN.md §4.11):
//
//	optbench -experiment repeat -json > BENCH_plancache.json  # zipfian repeat workload, cold vs warm
//	optbench -experiment repeat -draws 1000 -cache-size 256
//
// Service load (see internal/server and cmd/optserve):
//
//	optbench -experiment serve -json > BENCH_serve.json  # in-process optserve under a 4-worker HTTP load
//	optbench -experiment serve -workers 8 -draws 1000
//
// Tiered anytime planner (see internal/volcano tier.go and DESIGN.md §4.13):
//
//	optbench -experiment tier -json > BENCH_tier.json  # first-plan latency per tier, refinement win rate
//	optbench -experiment cluster -json > BENCH_cluster.json  # distributed plan cache: scaling, peer-fill latency, hot-key replication
//	optbench -experiment fig12 -repeats 10 -cache             # figure sweep with repeats served from the cache
//
// Observability (see internal/obs):
//
//	optbench -experiment fig12 -httpaddr :8080        # /metrics, /vars, /debug/pprof/
//	optbench -experiment fig12 -trace-out run.json    # Chrome trace_event (chrome://tracing, Perfetto)
//	optbench -experiment fig12 -trace-jsonl run.jsonl # span trace, one JSON object per line
//	optbench -experiment fig12 -observe -json         # per-rule timing + degradation counts in JSON
//
// -json, -httpaddr, -trace-out, and -trace-jsonl all imply -observe.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"prairie/internal/experiments"
	"prairie/internal/obs"
)

func main() {
	which := flag.String("experiment", "all",
		"one of: table5, fig10, fig11, fig12, fig13, fig14, rules, relopt, star, repeat, serve, tier, exec, cluster, rulecheck, all")
	maxClasses := flag.Int("maxclasses", 0, "max classes per family (0 = paper's ranges)")
	repeats := flag.Int("repeats", 0, "optimizations per timing point (0 = adaptive)")
	maxExprs := flag.Int("maxexprs", 0, "search-space cap (0 = engine default)")
	flag.IntVar(maxExprs, "max-exprs", 0, "alias for -maxexprs")
	timeout := flag.Duration("timeout", 0,
		"per-optimization wall-clock budget (0 = none); points over budget degrade and are marked '*'")
	degrade := flag.Bool("degrade", false,
		"treat -maxexprs as a soft budget: over-budget points return degraded plans (marked '*') and sweeps continue instead of ending the series")
	workers := flag.Int("workers", 1,
		"concurrent optimizations per sweep point (<=1 sequential; parallel runs distort per-query times)")
	cache := flag.Bool("cache", false,
		"attach a shared cross-query plan cache per sweep point: repeats after the first become cache hits")
	cacheSize := flag.Int("cache-size", 0, "plan-cache capacity for -cache and -experiment repeat (0 = 512)")
	draws := flag.Int("draws", 0, "zipfian draws for -experiment repeat (0 = 300)")
	rows := flag.Int("rows", 0, "per-class row cap for -experiment exec (0 = 4096)")
	dslPath := flag.String("dsl", "",
		"Prairie spec for -experiment rulecheck's DSL world (default examples/dslrules/rules.prairie)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit JSON instead of aligned tables (for BENCH_*.json archives)")
	observe := flag.Bool("observe", false,
		"enable per-rule timing and metrics collection (implied by -json, -httpaddr, -trace-out, -trace-jsonl)")
	httpAddr := flag.String("httpaddr", "",
		"serve /metrics, /vars, /trace, and /debug/pprof/ on this address (e.g. :8080 or :0)")
	traceOut := flag.String("trace-out", "",
		"write a Chrome trace_event file here (load in chrome://tracing or Perfetto)")
	traceJSONL := flag.String("trace-jsonl", "", "write the span trace as JSON lines here")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "optbench:", err)
		os.Exit(1)
	}

	// Observability: per-rule timing feeds the tables; the tracer is
	// only attached when a trace sink (file or HTTP) can consume it.
	var ob *obs.Observer
	if *observe || *jsonOut || *httpAddr != "" || *traceOut != "" || *traceJSONL != "" {
		ob = &obs.Observer{Metrics: obs.NewRegistry(), RuleTiming: true}
		if *traceOut != "" || *traceJSONL != "" || *httpAddr != "" {
			ob.Tracer = obs.NewTracer()
		}
	}
	if *httpAddr != "" {
		addr, closer, err := obs.Serve(*httpAddr, obs.NewMux(ob.Metrics, ob.Tracer, nil))
		if err != nil {
			fail(err)
		}
		defer closer()
		fmt.Fprintf(os.Stderr, "optbench: serving metrics and pprof on http://%s/\n", addr)
	}
	defer func() {
		if ob == nil || ob.Tracer == nil {
			return
		}
		write := func(path string, fn func(io.Writer) error) {
			if path == "" {
				return
			}
			f, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			if err := fn(f); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "optbench: wrote %d trace events to %s (%d dropped)\n",
				ob.Tracer.Len(), path, ob.Tracer.Dropped())
		}
		write(*traceOut, ob.Tracer.WriteChrome)
		write(*traceJSONL, ob.Tracer.WriteJSONL)
	}()

	opts := experiments.Options{
		MaxClasses: *maxClasses,
		Repeats:    *repeats,
		MaxExprs:   *maxExprs,
		Workers:    *workers,
		Timeout:    *timeout,
		Degrade:    *degrade,
		Obs:        ob,
		UseCache:   *cache,
		CacheSize:  *cacheSize,
		Draws:      *draws,
		Rows:       *rows,
		DSLPath:    *dslPath,
	}
	emit := func(t *experiments.Table, err error) {
		if err != nil {
			fail(err)
		}
		switch {
		case *jsonOut:
			s, err := t.JSON()
			if err != nil {
				fail(err)
			}
			fmt.Print(s)
		case *csv:
			fmt.Println(t.Title)
			fmt.Print(t.CSV())
		default:
			fmt.Println(t.String())
		}
	}

	run := map[string]func(){
		"table5":  func() { emit(experiments.Table5(4, opts)) },
		"fig10":   func() { emit(experiments.Figure(10, opts)) },
		"fig11":   func() { emit(experiments.Figure(11, opts)) },
		"fig12":   func() { emit(experiments.Figure(12, opts)) },
		"fig13":   func() { emit(experiments.Figure(13, opts)) },
		"fig14":   func() { emit(experiments.Figure14(opts)) },
		"rules":   func() { emit(experiments.RuleCounts()) },
		"relopt":  func() { emit(experiments.Relopt(opts)) },
		"star":    func() { emit(experiments.StarGraphs(opts)) },
		"repeat":  func() { emit(experiments.RepeatWorkload(opts)) },
		"serve":   func() { emit(experiments.ServeLoad(opts)) },
		"tier":    func() { emit(experiments.TierBench(opts)) },
		"exec":    func() { emit(experiments.ExecBench(opts)) },
		"cluster": func() { emit(experiments.ClusterBench(opts)) },
		"rulecheck": func() {
			t, err := experiments.RuleCheck(opts)
			emit(t, err)
		},
	}
	if *which == "all" {
		for _, name := range []string{"rules", "table5", "fig10", "fig11", "fig12", "fig13", "fig14", "relopt"} {
			run[name]()
		}
		return
	}
	fn, ok := run[*which]
	if !ok {
		fmt.Fprintf(os.Stderr, "optbench: unknown experiment %q\n", *which)
		os.Exit(2)
	}
	fn()
}
