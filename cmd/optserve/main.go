// Command optserve runs the optimizer as an HTTP/JSON service (see
// internal/server): /v1/optimize and /v1/batch over a registry of
// prepared rule sets, with per-request budget classes, a shared
// cross-query plan cache, admission control (429/503 + Retry-After load
// shedding), per-request timeouts, and the observability surface of
// internal/obs (/metrics, /vars, /trace, /debug/pprof/, /healthz, and
// the per-request flight recorder on /v1/debug/requests).
//
// Usage:
//
//	optserve -addr :8080
//	optserve -addr :8080 -dsl examples/dslrules/rules.prairie
//	optserve -addr :8080 -max-inflight 8 -max-queue 32 -queue-wait 100ms
//
// Clustering (see internal/cluster): a static peer list shards the plan
// cache across nodes by consistent hashing; local misses fetch from the
// key's owner over /v1/peer/* before optimizing, and invalidations fan
// out to every peer. The peer endpoints are authenticated by a shared
// secret (-cluster-secret or $PRAIRIE_CLUSTER_SECRET), identical on
// every member:
//
//	optserve -addr :8080 -node-id a -peers 'a=,b=http://10.0.0.2:8080' -cluster-secret S
//	optserve -addr :8080 -node-id b -peers 'a=http://10.0.0.1:8080,b=' -cluster-secret S
//
//	curl -s localhost:8080/v1/rulesets
//	curl -s localhost:8080/v1/optimize -d '{
//	  "ruleset": "oodb/volcano",
//	  "query":   {"family": "E2", "n": 3},
//	  "budget":  "interactive"
//	}'
//
// SIGINT/SIGTERM drain gracefully: new requests are refused with 503
// while every in-flight optimization is answered, then the listener
// closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"prairie/internal/cluster"
	"prairie/internal/obs"
	"prairie/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxN := flag.Int("max-n", 6, "catalog width: servable queries range over n=2..max-n classes")
	seed := flag.Int64("seed", 101, "catalog generation seed")
	dsl := flag.String("dsl", "", "path to a Prairie rule specification to serve as the 'dsl' world (e.g. examples/dslrules/rules.prairie)")
	cacheSize := flag.Int("cache-size", 0, "shared plan-cache capacity (0 = 512, negative = disabled)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently running optimizations (0 = 2×GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "max queued requests before shedding with 429 (0 = 4×max-inflight)")
	queueWait := flag.Duration("queue-wait", 0, "max queue wait before shedding with 503 (0 = 250ms)")
	timeout := flag.Duration("timeout", 0, "default per-request optimization deadline (0 = 5s)")
	maxTimeout := flag.Duration("max-timeout", 0, "clamp on client-requested deadlines (0 = 30s)")
	drainWait := flag.Duration("drain-wait", 30*time.Second, "max wait for in-flight requests on shutdown")
	flightCap := flag.Int("flight-capacity", 512, "flight-recorder retention: interesting requests kept for /v1/debug/requests (0 disables recording)")
	flightSlow := flag.Duration("flight-slow", 0, "latency above which a request is retained as slow (0 = 250ms)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, or error")
	nodeID := flag.String("node-id", "", "this node's cluster member id; empty runs single-node with no cluster layer")
	peersFlag := flag.String("peers", "", "static cluster membership as id=url,id=url,... (must include -node-id; its url may be empty)")
	clusterSecret := flag.String("cluster-secret", os.Getenv("PRAIRIE_CLUSTER_SECRET"), "shared secret authenticating /v1/peer/* RPCs; identical on every member, required with remote -peers (defaults to $PRAIRIE_CLUSTER_SECRET)")
	peerTimeout := flag.Duration("peer-timeout", 0, "peer RPC transport budget (0 = 250ms)")
	hotAfter := flag.Float64("hot-after", 0, "decayed peer-fill rate that promotes a key into the replicated tier (0 = default, negative disables)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "optserve:", err)
		os.Exit(1)
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fail(err)
	}
	logger := obs.NewLogger(os.Stderr, level)

	var dslSrc string
	if *dsl != "" {
		b, err := os.ReadFile(*dsl)
		if err != nil {
			fail(err)
		}
		dslSrc = string(b)
	}
	reg, err := server.DefaultRegistry(*maxN, *seed, dslSrc)
	if err != nil {
		fail(err)
	}
	metrics := obs.NewRegistry()
	// A long-running server wants the newest trace events, not the first
	// MaxEvents after boot.
	tracer := obs.NewTracer()
	tracer.DropOldest = true
	flight := obs.NewFlightRecorderObserved(obs.FlightConfig{
		Capacity:      *flightCap,
		SlowThreshold: *flightSlow,
	}, metrics)
	var clusterCfg *cluster.Config
	if *nodeID != "" {
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			fail(err)
		}
		clusterCfg = &cluster.Config{
			Self:        *nodeID,
			Peers:       peers,
			Secret:      *clusterSecret,
			PeerTimeout: *peerTimeout,
			HotAfter:    *hotAfter,
		}
	} else if *peersFlag != "" {
		fail(fmt.Errorf("-peers requires -node-id"))
	}
	srv, err := server.New(server.Config{
		Registry:       reg,
		CacheSize:      *cacheSize,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Obs:            &obs.Observer{Metrics: metrics, Tracer: tracer},
		Flight:         flight,
		Log:            logger,
		Cluster:        clusterCfg,
	})
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "optserve: serving %v on http://%s/ (budget classes via /v1/rulesets)\n",
		reg.Names(), ln.Addr())
	logger.Info("serving", "addr", ln.Addr().String(), "worlds", reg.Names(),
		"flight_capacity", *flightCap)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fail(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "optserve: %v, draining (max %s)\n", sig, *drainWait)
		logger.Info("draining", "signal", sig.String(), "max_wait", *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "optserve: drain:", err)
			logger.Warn("drain incomplete", "error", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "optserve: shutdown:", err)
		}
		srv.Close()
		logger.Info("stopped")
	}
}

// parsePeers parses the -peers flag: "a=http://host1:8080,b=http://host2:8080".
// The self entry may omit its url ("a=,..." or just "a").
func parsePeers(s string) ([]cluster.Peer, error) {
	if s == "" {
		return nil, nil
	}
	var peers []cluster.Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, _ := strings.Cut(part, "=")
		if id == "" {
			return nil, fmt.Errorf("-peers: entry %q has no member id", part)
		}
		peers = append(peers, cluster.Peer{ID: id, URL: url})
	}
	return peers, nil
}
