package prairie_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"prairie/internal/core"
	"prairie/internal/data"
	"prairie/internal/exec"
	"prairie/internal/oodb"
	"prairie/internal/p2v"
	"prairie/internal/qgen"
	"prairie/internal/volcano"
)

// exploreResult captures everything the equivalence harness compares:
// the memo closure (groups, expressions) and the winning plan's cost.
type exploreResult struct {
	groups, exprs int
	cost          float64
}

func optimizeWith(t *testing.T, vrs *volcano.RuleSet, tree *core.Expr, req *core.Descriptor, kind volcano.ExplorerKind) exploreResult {
	t.Helper()
	opt := volcano.NewOptimizer(vrs)
	opt.Opts.Explorer = kind
	plan, err := opt.Optimize(tree.Clone(), req)
	if err != nil {
		t.Fatalf("explorer %d: %v", kind, err)
	}
	return exploreResult{
		groups: opt.Stats.Groups,
		exprs:  opt.Stats.Exprs,
		cost:   plan.D.Float(vrs.Class.Cost),
	}
}

// TestExplorerEquivalence is the ISSUE's equivalence harness: over the
// seeded qgen workloads (families E1–E4, with and without indices, both
// the P2V-generated and the hand-coded Volcano rule sets), the worklist
// explorer must produce exactly the same equivalence-class counts,
// expression counts, and winner costs as the pass-based explorer —
// Figure 14 fidelity is a reproduction target, not just a perf number.
func TestExplorerEquivalence(t *testing.T) {
	families := []struct {
		e qgen.ExprKind
		n int
	}{
		{qgen.E1, 4},
		{qgen.E2, 4},
		{qgen.E3, 3},
		{qgen.E4, 3},
	}
	for _, fam := range families {
		for _, indexed := range []bool{false, true} {
			for _, seed := range qgen.InstanceSeeds()[:2] {
				name := fmt.Sprintf("%v/n%d/indexed=%v/seed%d", fam.e, fam.n, indexed, seed)
				t.Run(name, func(t *testing.T) {
					// Prairie-generated path.
					cat := qgen.Catalog(fam.n, seed, indexed)
					po := oodb.New(cat)
					prs, err := po.PrairieRules()
					if err != nil {
						t.Fatal(err)
					}
					pvrs, rep, err := p2v.Translate(prs)
					if err != nil {
						t.Fatal(err)
					}
					ptree, err := qgen.Build(po, fam.e, fam.n)
					if err != nil {
						t.Fatal(err)
					}
					ptree, preq, err := rep.PrepareQuery(ptree, nil)
					if err != nil {
						t.Fatal(err)
					}
					checkEquivalence(t, "prairie", pvrs, ptree, preq)

					// Hand-coded Volcano path.
					vo := oodb.New(qgen.Catalog(fam.n, seed, indexed))
					vtree, err := qgen.Build(vo, fam.e, fam.n)
					if err != nil {
						t.Fatal(err)
					}
					checkEquivalence(t, "volcano", vo.VolcanoRules(), vtree, core.NewDescriptor(vo.Alg.Props))
				})
			}
		}
	}
}

func checkEquivalence(t *testing.T, path string, vrs *volcano.RuleSet, tree *core.Expr, req *core.Descriptor) {
	t.Helper()
	pass := optimizeWith(t, vrs, tree, req, volcano.ExplorerPasses)
	work := optimizeWith(t, vrs, tree, req, volcano.ExplorerWorklist)
	if pass.groups != work.groups {
		t.Errorf("%s: groups differ: passes %d, worklist %d", path, pass.groups, work.groups)
	}
	if pass.exprs != work.exprs {
		t.Errorf("%s: exprs differ: passes %d, worklist %d", path, pass.exprs, work.exprs)
	}
	if math.Abs(pass.cost-work.cost) > 1e-9*math.Max(1, math.Abs(pass.cost)) {
		t.Errorf("%s: winner cost differs: passes %g, worklist %g", path, pass.cost, work.cost)
	}
}

// TestExplorerEquivalenceOnExhaustion checks both explorers agree that a
// capped search space is exhausted (the series-ending condition of the
// figure sweeps).
func TestExplorerEquivalenceOnExhaustion(t *testing.T) {
	vo := oodb.New(qgen.Catalog(4, qgen.InstanceSeeds()[0], false))
	tree, err := qgen.Build(vo, qgen.E4, 4)
	if err != nil {
		t.Fatal(err)
	}
	req := core.NewDescriptor(vo.Alg.Props)
	for _, kind := range []volcano.ExplorerKind{volcano.ExplorerPasses, volcano.ExplorerWorklist} {
		opt := volcano.NewOptimizer(vo.VolcanoRules())
		opt.Opts.Explorer = kind
		opt.Opts.MaxExprs = 200
		_, err := opt.Optimize(tree.Clone(), req)
		if !errors.Is(err, volcano.ErrSpaceExhausted) {
			t.Errorf("explorer %d: err = %v, want ErrSpaceExhausted", kind, err)
		}
	}
}

// TestDegradedE4ReturnsExecutablePlan is the ISSUE's acceptance case:
// an E4 chain query at N=4 — which exhausts the search space before the
// default expression cap on unbudgeted runs — must, under a tight
// budget, return a valid plan marked Degraded instead of
// ErrSpaceExhausted, and that plan must actually execute.
func TestDegradedE4ReturnsExecutablePlan(t *testing.T) {
	seed := qgen.InstanceSeeds()[0]
	cat := qgen.Catalog(4, seed, false)
	vo := oodb.New(cat)
	tree, err := qgen.Build(vo, qgen.E4, 4)
	if err != nil {
		t.Fatal(err)
	}
	req := core.NewDescriptor(vo.Alg.Props)

	// Sanity: the same query with the budget as a hard cap fails.
	hard := volcano.NewOptimizer(vo.VolcanoRules())
	hard.Opts.MaxExprs = 5000
	if _, err := hard.Optimize(tree.Clone(), req); !errors.Is(err, volcano.ErrSpaceExhausted) {
		t.Fatalf("hard cap: err = %v, want ErrSpaceExhausted", err)
	}

	opt := volcano.NewOptimizer(vo.VolcanoRules())
	opt.Opts.Budget = volcano.Budget{MaxExprs: 5000}
	plan, err := opt.Optimize(tree.Clone(), req)
	if err != nil {
		t.Fatalf("budgeted E4 n=4 failed instead of degrading: %v", err)
	}
	if !opt.Stats.Degraded || opt.Stats.DegradeCause != volcano.CauseMaxExprs {
		t.Errorf("not marked degraded: %+v", opt.Stats)
	}
	pe := plan.ToExpr()
	if !pe.IsPlan() {
		t.Fatalf("degraded result is not an access plan: %s", plan)
	}
	if got, want := len(pe.Leaves()), len(tree.Leaves()); got != want {
		t.Fatalf("degraded plan covers %d stored files, want %d", got, want)
	}
	// Executable, not just well-formed: compile and run it on synthetic
	// data (the optshell -execute path).
	db := data.Populate(cat, seed, 32)
	comp := exec.NewCompiler(db, exec.Props{
		Ord: vo.Ord, JP: vo.JP, SP: vo.SP, PA: vo.PA, MA: vo.MA, UA: vo.UA,
	})
	it, err := comp.Compile(pe)
	if err != nil {
		t.Fatalf("degraded plan does not compile: %v", err)
	}
	serial, err := exec.Run(it)
	if err != nil {
		t.Fatalf("degraded plan does not execute: %v", err)
	}
	// And under the parallel engine, which must agree with serial.
	pcomp := exec.NewCompiler(db, exec.Props{
		Ord: vo.Ord, JP: vo.JP, SP: vo.SP, PA: vo.PA, MA: vo.MA, UA: vo.UA,
	})
	pcomp.Opts = exec.ExecOptions{Workers: 4}
	pit, err := pcomp.Compile(pe)
	if err != nil {
		t.Fatalf("degraded plan does not compile for the parallel engine: %v", err)
	}
	par, err := exec.Run(pit)
	if err != nil {
		t.Fatalf("degraded plan does not execute in parallel: %v", err)
	}
	if !exec.SameBag(serial, par) {
		t.Fatalf("parallel execution disagrees with serial: %d vs %d rows",
			len(par.Rows), len(serial.Rows))
	}
}

// TestDegradedCostBoundedByFullSearch: on a workload small enough to
// optimize fully, a budget-degraded plan must still be structurally
// valid and can only cost more than (or equal to) the unbudgeted
// winner.
func TestDegradedCostBoundedByFullSearch(t *testing.T) {
	seed := qgen.InstanceSeeds()[0]
	vo := oodb.New(qgen.Catalog(4, seed, false))
	tree, err := qgen.Build(vo, qgen.E1, 4)
	if err != nil {
		t.Fatal(err)
	}
	req := core.NewDescriptor(vo.Alg.Props)
	vrs := vo.VolcanoRules()

	full := volcano.NewOptimizer(vrs)
	best, err := full.Optimize(tree.Clone(), req)
	if err != nil {
		t.Fatal(err)
	}
	deg := volcano.NewOptimizer(vrs)
	deg.Opts.Budget = volcano.Budget{MaxRuleFirings: 1}
	plan, err := deg.Optimize(tree.Clone(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !deg.Stats.Degraded {
		t.Fatal("run did not degrade under a 1-firing budget")
	}
	if !plan.ToExpr().IsPlan() || len(plan.ToExpr().Leaves()) != len(tree.Leaves()) {
		t.Errorf("degraded plan structurally invalid: %s", plan)
	}
	costID := vrs.Class.Cost
	if got, want := plan.D.Float(costID), best.D.Float(costID); got < want {
		t.Errorf("degraded plan cost %g beats unbudgeted winner %g", got, want)
	}
}

// TestOptimizeBatchOODB exercises the concurrent batch API on the real
// OODB workloads (run with -race in CI): a grid of (family, seed) jobs
// sharing one rule set must reproduce the sequential group counts.
func TestOptimizeBatchOODB(t *testing.T) {
	cat := qgen.Catalog(3, qgen.InstanceSeeds()[0], false)
	vo := oodb.New(cat)
	vrs := vo.VolcanoRules()
	req := core.NewDescriptor(vo.Alg.Props)

	var items []volcano.BatchItem
	var want []int
	for _, e := range []qgen.ExprKind{qgen.E1, qgen.E2, qgen.E3, qgen.E4} {
		tree, err := qgen.Build(vo, e, 3)
		if err != nil {
			t.Fatal(err)
		}
		seq := volcano.NewOptimizer(vrs)
		if _, err := seq.Optimize(tree.Clone(), req); err != nil {
			t.Fatal(err)
		}
		want = append(want, seq.Stats.Groups)
		items = append(items, volcano.BatchItem{RS: vrs, Tree: tree, Req: req})
	}
	results := volcano.OptimizeBatch(items, 4)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Stats.Groups != want[i] {
			t.Errorf("item %d: batch groups %d, sequential %d", i, r.Stats.Groups, want[i])
		}
	}
}
