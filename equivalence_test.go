package prairie_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"prairie/internal/core"
	"prairie/internal/oodb"
	"prairie/internal/p2v"
	"prairie/internal/qgen"
	"prairie/internal/volcano"
)

// exploreResult captures everything the equivalence harness compares:
// the memo closure (groups, expressions) and the winning plan's cost.
type exploreResult struct {
	groups, exprs int
	cost          float64
}

func optimizeWith(t *testing.T, vrs *volcano.RuleSet, tree *core.Expr, req *core.Descriptor, kind volcano.ExplorerKind) exploreResult {
	t.Helper()
	opt := volcano.NewOptimizer(vrs)
	opt.Opts.Explorer = kind
	plan, err := opt.Optimize(tree.Clone(), req)
	if err != nil {
		t.Fatalf("explorer %d: %v", kind, err)
	}
	return exploreResult{
		groups: opt.Stats.Groups,
		exprs:  opt.Stats.Exprs,
		cost:   plan.D.Float(vrs.Class.Cost),
	}
}

// TestExplorerEquivalence is the ISSUE's equivalence harness: over the
// seeded qgen workloads (families E1–E4, with and without indices, both
// the P2V-generated and the hand-coded Volcano rule sets), the worklist
// explorer must produce exactly the same equivalence-class counts,
// expression counts, and winner costs as the pass-based explorer —
// Figure 14 fidelity is a reproduction target, not just a perf number.
func TestExplorerEquivalence(t *testing.T) {
	families := []struct {
		e qgen.ExprKind
		n int
	}{
		{qgen.E1, 4},
		{qgen.E2, 4},
		{qgen.E3, 3},
		{qgen.E4, 3},
	}
	for _, fam := range families {
		for _, indexed := range []bool{false, true} {
			for _, seed := range qgen.InstanceSeeds()[:2] {
				name := fmt.Sprintf("%v/n%d/indexed=%v/seed%d", fam.e, fam.n, indexed, seed)
				t.Run(name, func(t *testing.T) {
					// Prairie-generated path.
					cat := qgen.Catalog(fam.n, seed, indexed)
					po := oodb.New(cat)
					prs, err := po.PrairieRules()
					if err != nil {
						t.Fatal(err)
					}
					pvrs, rep, err := p2v.Translate(prs)
					if err != nil {
						t.Fatal(err)
					}
					ptree, err := qgen.Build(po, fam.e, fam.n)
					if err != nil {
						t.Fatal(err)
					}
					ptree, preq, err := rep.PrepareQuery(ptree, nil)
					if err != nil {
						t.Fatal(err)
					}
					checkEquivalence(t, "prairie", pvrs, ptree, preq)

					// Hand-coded Volcano path.
					vo := oodb.New(qgen.Catalog(fam.n, seed, indexed))
					vtree, err := qgen.Build(vo, fam.e, fam.n)
					if err != nil {
						t.Fatal(err)
					}
					checkEquivalence(t, "volcano", vo.VolcanoRules(), vtree, core.NewDescriptor(vo.Alg.Props))
				})
			}
		}
	}
}

func checkEquivalence(t *testing.T, path string, vrs *volcano.RuleSet, tree *core.Expr, req *core.Descriptor) {
	t.Helper()
	pass := optimizeWith(t, vrs, tree, req, volcano.ExplorerPasses)
	work := optimizeWith(t, vrs, tree, req, volcano.ExplorerWorklist)
	if pass.groups != work.groups {
		t.Errorf("%s: groups differ: passes %d, worklist %d", path, pass.groups, work.groups)
	}
	if pass.exprs != work.exprs {
		t.Errorf("%s: exprs differ: passes %d, worklist %d", path, pass.exprs, work.exprs)
	}
	if math.Abs(pass.cost-work.cost) > 1e-9*math.Max(1, math.Abs(pass.cost)) {
		t.Errorf("%s: winner cost differs: passes %g, worklist %g", path, pass.cost, work.cost)
	}
}

// TestExplorerEquivalenceOnExhaustion checks both explorers agree that a
// capped search space is exhausted (the series-ending condition of the
// figure sweeps).
func TestExplorerEquivalenceOnExhaustion(t *testing.T) {
	vo := oodb.New(qgen.Catalog(4, qgen.InstanceSeeds()[0], false))
	tree, err := qgen.Build(vo, qgen.E4, 4)
	if err != nil {
		t.Fatal(err)
	}
	req := core.NewDescriptor(vo.Alg.Props)
	for _, kind := range []volcano.ExplorerKind{volcano.ExplorerPasses, volcano.ExplorerWorklist} {
		opt := volcano.NewOptimizer(vo.VolcanoRules())
		opt.Opts.Explorer = kind
		opt.Opts.MaxExprs = 200
		_, err := opt.Optimize(tree.Clone(), req)
		if !errors.Is(err, volcano.ErrSpaceExhausted) {
			t.Errorf("explorer %d: err = %v, want ErrSpaceExhausted", kind, err)
		}
	}
}

// TestOptimizeBatchOODB exercises the concurrent batch API on the real
// OODB workloads (run with -race in CI): a grid of (family, seed) jobs
// sharing one rule set must reproduce the sequential group counts.
func TestOptimizeBatchOODB(t *testing.T) {
	cat := qgen.Catalog(3, qgen.InstanceSeeds()[0], false)
	vo := oodb.New(cat)
	vrs := vo.VolcanoRules()
	req := core.NewDescriptor(vo.Alg.Props)

	var items []volcano.BatchItem
	var want []int
	for _, e := range []qgen.ExprKind{qgen.E1, qgen.E2, qgen.E3, qgen.E4} {
		tree, err := qgen.Build(vo, e, 3)
		if err != nil {
			t.Fatal(err)
		}
		seq := volcano.NewOptimizer(vrs)
		if _, err := seq.Optimize(tree.Clone(), req); err != nil {
			t.Fatal(err)
		}
		want = append(want, seq.Stats.Groups)
		items = append(items, volcano.BatchItem{RS: vrs, Tree: tree, Req: req})
	}
	results := volcano.OptimizeBatch(items, 4)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Stats.Groups != want[i] {
			t.Errorf("item %d: batch groups %d, sequential %d", i, r.Stats.Groups, want[i])
		}
	}
}
