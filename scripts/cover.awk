# cover.awk — per-package statement-coverage summary over a merged Go
# coverprofile, with a total floor. Usage:
#
#   awk -v floor=75 -f scripts/cover.awk cover.out
#
# Blocks are deduplicated by position keeping the max count, so a
# profile that mentions the same block twice never double-counts.

NR == 1 { next } # "mode:" line

{
	block = $1
	stmts[block] = $2 + 0
	if ($3 + 0 > hit[block]) hit[block] = $3 + 0
}

END {
	for (b in stmts) {
		file = b
		sub(/:.*/, "", file)
		pkg = file
		sub(/\/[^\/]*$/, "", pkg)
		s = stmts[b]
		tot[pkg] += s
		T += s
		if (hit[b] > 0) {
			cov[pkg] += s
			C += s
		}
	}
	n = 0
	for (p in tot) pkgs[n++] = p
	for (i = 1; i < n; i++) {
		v = pkgs[i]
		for (j = i - 1; j >= 0 && pkgs[j] > v; j--) pkgs[j + 1] = pkgs[j]
		pkgs[j + 1] = v
	}
	printf "%-44s %8s %8s %7s\n", "package", "stmts", "covered", "pct"
	for (i = 0; i < n; i++) {
		p = pkgs[i]
		printf "%-44s %8d %8d %6.1f%%\n", p, tot[p], cov[p], 100 * cov[p] / tot[p]
	}
	if (T == 0) {
		print "cover: FAIL empty profile"
		exit 1
	}
	pct = 100 * C / T
	printf "%-44s %8d %8d %6.1f%%\n", "TOTAL", T, C, pct
	if (pct + 0 < floor + 0) {
		printf "cover: FAIL total %.1f%% below floor %s%%\n", pct, floor
		exit 1
	}
	printf "cover: OK total %.1f%% >= floor %s%%\n", pct, floor
}
