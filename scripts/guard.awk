# Neutrality-guard comparator shared by `make bench-guard`
# (observability), `make cache-guard` (plan cache), and `make tier-guard`
# (tiered planner). Reads `go test -bench` output for a guard benchmark
# shaped Benchmark<X>Guard/<workload>/<mode>-N with modes off (feature
# absent), disabled (attached but inert) and on (fully enabled). The
# Make targets run the whole off/disabled/on pass several times and
# concatenate the output; this script pairs the i-th off sample with the
# i-th disabled sample (same pass, seconds apart, comparable machine
# conditions), computes the per-pass overhead ratio, and judges the BEST
# pass: an inert feature must be free, so at least one pass must show
# the disabled path within `pct` percent of off. Real overhead shows up
# in every pass; machine-throughput drift between passes does not.
# Comparing mode minimums taken across passes — the previous scheme —
# breaks under drift, because each mode's minimum can come from a
# different pass run under different conditions. The on path is
# reported informationally from the best pass.
#
# Usage: awk -v pct=2 -v guard=bench-guard -f scripts/guard.awk bench.txt
/^Benchmark[A-Za-z_]*Guard\// {
    split($1, parts, "/"); wl = parts[2]; mode = parts[3];
    sub(/-[0-9]+$/, "", mode);
    ns = $3 + 0;
    key = wl "/" mode;
    n = ++count[key];
    sample[key "/" n] = ns;
    if (mode == "off" || mode == "disabled" || mode == "on") seen[wl] = 1;
}
END {
    fail = 0;
    for (wl in seen) {
        passes = count[wl "/off"];
        if (passes == 0) { printf "%s: no off baseline for %s\n", guard, wl; fail = 1; continue }
        if (count[wl "/disabled"] < passes) passes = count[wl "/disabled"];
        bestd = ""; bestoff = 0; bestdis = 0;
        for (i = 1; i <= passes; i++) {
            off = sample[wl "/off/" i]; dis = sample[wl "/disabled/" i];
            if (off <= 0) continue;
            d = 100 * (dis - off) / off;
            if (bestd == "" || d < bestd) { bestd = d; bestoff = off; bestdis = dis; besti = i }
        }
        if (bestd == "") { printf "%s: no usable pass for %s\n", guard, wl; fail = 1; continue }
        on = sample[wl "/on/" besti];
        opct = bestoff > 0 && on > 0 ? 100 * (on - bestoff) / bestoff : 0;
        printf "%s: %-8s best pass %d/%d: off=%.0fns disabled=%.0fns (%+.2f%%) on=%.0fns (%+.2f%% informational)\n", \
            guard, wl, besti, passes, bestoff, bestdis, bestd, on, opct;
        if (bestd > pct) {
            printf "%s: FAIL %s disabled-path overhead %.2f%% > %s%% in every pass\n", guard, wl, bestd, pct; fail = 1;
        }
    }
    if (fail) exit 1;
    printf "%s: PASS (disabled-path overhead within %s%%)\n", guard, pct;
}
