# Neutrality-guard comparator shared by `make bench-guard` (observability)
# and `make cache-guard` (plan cache). Reads `go test -bench` output for a
# guard benchmark shaped Benchmark<X>Guard/<workload>/<mode>-N with modes
# off (feature absent), disabled (attached but inert) and on (fully
# enabled), keeps the minimum ns/op per mode across -count repetitions
# (filtering scheduler noise), and fails when the disabled path exceeds
# the off baseline by more than `pct` percent — an inert feature must be
# free. The on path is reported informationally.
#
# Usage: awk -v pct=2 -v guard=bench-guard -f scripts/guard.awk bench.txt
/^Benchmark[A-Za-z_]*Guard\// {
    split($1, parts, "/"); wl = parts[2]; mode = parts[3];
    sub(/-[0-9]+$/, "", mode);
    ns = $3 + 0;
    key = wl "/" mode;
    if (!(key in best) || ns < best[key]) best[key] = ns;
    if (mode == "off" || mode == "disabled" || mode == "on") seen[wl] = 1;
}
END {
    fail = 0;
    for (wl in seen) {
        off = best[wl "/off"]; dis = best[wl "/disabled"]; on = best[wl "/on"];
        if (off <= 0) { printf "%s: no off baseline for %s\n", guard, wl; fail = 1; continue }
        dpct = 100 * (dis - off) / off; opct = 100 * (on - off) / off;
        printf "%s: %-8s off=%.0fns disabled=%.0fns (%+.2f%%) on=%.0fns (%+.2f%% informational)\n", \
            guard, wl, off, dis, dpct, on, opct;
        if (dpct > pct) {
            printf "%s: FAIL %s disabled-path overhead %.2f%% > %s%%\n", guard, wl, dpct, pct; fail = 1;
        }
    }
    if (fail) exit 1;
    printf "%s: PASS (disabled-path overhead within %s%%)\n", guard, pct;
}
