GO ?= go

.PHONY: all build vet test race bench-smoke bench-guard cache-guard tier-guard exec-guard flight-guard cluster-guard rulecheck-guard bench-json bench-serve bench-tier bench-exec bench-cluster fuzz-smoke cover ci experiments clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -timeout backstops regressions that hang (e.g. a wedged batch worker)
# instead of letting CI stall until the job-level kill.
test:
	$(GO) test -timeout 300s ./...

race:
	$(GO) test -race -timeout 600s ./...

# A short benchmark smoke: three iterations of the figure benchmarks that
# stress the search engine hardest (E3/E4 sweeps and the exploration
# figure). Full runs: `go test -bench=. -benchmem`.
bench-smoke:
	$(GO) test -run 'XXX' -bench 'Fig1[234]' -benchmem -benchtime 3x .

# Neutrality guards: run a feature's micro-benchmarks with the feature
# absent ("off") and attached-but-disabled ("disabled"), and fail if the
# disabled path costs more than GUARD_PCT percent — the feature must be
# free when nobody is using it. The fully enabled path ("on") is
# reported informationally. The whole off/disabled/on pass is repeated
# BENCH_COUNT times and the minimum ns/op per mode compared (the
# comparison lives in scripts/guard.awk, shared by all guards). The
# repetition is a shell loop rather than `-count` on purpose: -count
# runs all samples of one mode back to back, so slow machine-throughput
# drift reads as systematic mode overhead; interleaving whole passes
# puts each mode's minimum in comparable conditions.
GUARD_PCT ?= 2
BENCH_COUNT ?= 5

# Observability overhead guard: instrumentation with every sink disabled
# must be indistinguishable from no instrumentation at all.
bench-guard:
	@rm -f /tmp/obsguard.txt
	@for i in $$(seq $(BENCH_COUNT)); do \
		$(GO) test -run 'XXX' -bench 'ObsGuard' -benchtime 200x . | tee -a /tmp/obsguard.txt || exit 1; \
	done
	@awk -v pct=$(GUARD_PCT) -v guard=bench-guard -f scripts/guard.awk /tmp/obsguard.txt

# Plan-cache neutrality guard: a zero-capacity cache handle must be
# indistinguishable from no cache (one Enabled() branch per optimize),
# and the concurrent cache layers must be race-clean.
cache-guard:
	$(GO) test -race -timeout 300s ./internal/plancache ./internal/volcano
	@rm -f /tmp/cacheguard.txt
	@for i in $$(seq $(BENCH_COUNT)); do \
		$(GO) test -run 'XXX' -bench 'CacheGuard' -benchtime 100x . | tee -a /tmp/cacheguard.txt || exit 1; \
	done
	@awk -v pct=$(GUARD_PCT) -v guard=cache-guard -f scripts/guard.awk /tmp/cacheguard.txt

# Tiered-planner neutrality guard: an attached-but-unused router with
# the tier left at the default (full) must be byte- and cost-identical
# to today's single-tier behavior — TestTierNeutral checks the bytes,
# the TierGuard benchmark checks the cost.
tier-guard:
	$(GO) test -run 'TestTierNeutral' -timeout 120s ./internal/volcano
	@rm -f /tmp/tierguard.txt
	@for i in $$(seq $(BENCH_COUNT)); do \
		$(GO) test -run 'XXX' -bench 'TierGuard' -benchtime 100x . | tee -a /tmp/tierguard.txt || exit 1; \
	done
	@awk -v pct=$(GUARD_PCT) -v guard=tier-guard -f scripts/guard.awk /tmp/tierguard.txt

# Executor neutrality guard: the Workers: 1 engine must compile the
# exact same iterator tree as the zero-options engine (no pool, no
# wrappers) and cost the same to run; the parallel machinery is also
# exercised under the race detector here.
exec-guard:
	$(GO) test -race -timeout 300s ./internal/exec
	@rm -f /tmp/execguard.txt
	@for i in $$(seq $(BENCH_COUNT)); do \
		$(GO) test -run 'XXX' -bench 'ExecGuard' -benchtime 50x . | tee -a /tmp/execguard.txt || exit 1; \
	done
	@awk -v pct=$(GUARD_PCT) -v guard=exec-guard -f scripts/guard.awk /tmp/execguard.txt

# Flight-recorder neutrality guard: a disabled recorder handle on the
# serving path must be indistinguishable from no recorder at all —
# TestFlightNeutral checks the answers are identical, the FlightGuard
# benchmark checks the cost. The recorder's concurrent surfaces run
# under the race detector via the server package's flight tests.
flight-guard:
	$(GO) test -race -run 'TestFlight' -timeout 300s ./internal/server
	@rm -f /tmp/flightguard.txt
	@for i in $$(seq $(BENCH_COUNT)); do \
		$(GO) test -run 'XXX' -bench 'FlightGuard' -benchtime 50x ./internal/server | tee -a /tmp/flightguard.txt || exit 1; \
	done
	@awk -v pct=$(GUARD_PCT) -v guard=flight-guard -f scripts/guard.awk /tmp/flightguard.txt

# Cluster neutrality guard: a server with no peers must answer
# byte-identically to one with no cluster layer at all (TestClusterNeutral
# checks the bytes) and cost within GUARD_PCT on the cold-miss path — the
# only path where the cluster hook runs (ClusterGuard checks the cost).
# The peer protocol, epoch fan-out, and cluster singleflight run under
# the race detector first.
cluster-guard:
	$(GO) test -race -run 'TestCluster' -timeout 300s ./internal/server ./internal/cluster
	@rm -f /tmp/clusterguard.txt
	@for i in $$(seq $(BENCH_COUNT)); do \
		$(GO) test -run 'XXX' -bench 'ClusterGuard' -benchtime 30x ./internal/server | tee -a /tmp/clusterguard.txt || exit 1; \
	done
	@awk -v pct=$(GUARD_PCT) -v guard=cluster-guard -f scripts/guard.awk /tmp/clusterguard.txt

# Rule-correctness guard: the per-rule differential verifier must give
# every trans_rule of every shipped rule set a "verified" verdict (or an
# explicit waiver), and the mutation-testing mode must kill at least 95%
# of seeded rule corruptions (internal/rulecheck; DESIGN.md §4.17).
rulecheck-guard:
	$(GO) test -run 'TestShippedRuleSetsVerified|TestMutationKillRate' -timeout 300s ./internal/rulecheck

# Archive the repeat-workload plan-cache benchmark (cold vs warm ns/op,
# full-hit speedup, hit rate, warm-start pruning, allocs) for diffing
# across revisions.
bench-json: build
	$(GO) run ./cmd/optbench -experiment repeat -json > BENCH_plancache.json
	@echo "bench-json: wrote BENCH_plancache.json"

# Archive the service load experiment (throughput, cold vs warm latency
# percentiles, shed count) for diffing across revisions.
bench-serve: build
	$(GO) run ./cmd/optbench -experiment serve -json > BENCH_serve.json
	@echo "bench-serve: wrote BENCH_serve.json"

# Archive the tiered-planner benchmark (first-plan latency per tier,
# refinement win rate, router routing mix) for diffing across revisions.
bench-tier: build
	$(GO) run ./cmd/optbench -experiment tier -json > BENCH_tier.json
	@echo "bench-tier: wrote BENCH_tier.json"

# Archive the executor benchmark (naive vs serial vs parallel engines,
# hash pre-sizing ablation, bag-verified) for diffing across revisions.
bench-exec: build
	$(GO) run ./cmd/optbench -experiment exec -json > BENCH_exec.json
	@echo "bench-exec: wrote BENCH_exec.json"

# Archive the multi-node cluster experiment (throughput scaling with
# node count, cold vs peer-fill vs local-hit latency, hot-key
# replication load reduction) for diffing across revisions.
bench-cluster: build
	$(GO) run ./cmd/optbench -experiment cluster -json > BENCH_cluster.json
	@echo "bench-cluster: wrote BENCH_cluster.json"

# Fuzz smoke: every fuzz target for FUZZTIME each. FuzzParse drives the
# rule-language front end (parse -> format -> parse fixed point);
# FuzzFingerprint property-tests the plan-cache fingerprint invariants
# (commutative-input swaps, attrs reordering); FuzzCacheEntry hammers
# the peer-protocol cache-entry codec (garbage rejected without panics,
# decodables reach an encode/decode fixed point). Seed corpora live
# under testdata/fuzz/; crashers are gitignored until promoted.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/prairielang
	$(GO) test -run '^$$' -fuzz '^FuzzFingerprint$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzCacheEntry$$' -fuzztime $(FUZZTIME) ./internal/wire

# Statement-coverage gate: one merged profile, per-package summary, and
# a hard floor on the total (scripts/cover.awk). Baseline with the
# rulecheck package landed: 76.0%; the floor leaves headroom for
# unexercised glue in new code, not for regressions.
COVER_FLOOR ?= 75.5
cover:
	$(GO) test -timeout 600s -coverprofile=cover.out ./...
	@awk -v floor=$(COVER_FLOOR) -f scripts/cover.awk cover.out

ci: vet build race bench-smoke cache-guard tier-guard exec-guard flight-guard cluster-guard rulecheck-guard fuzz-smoke cover

# Regenerate every paper table/figure (sequential, paper-faithful timing).
experiments: build
	$(GO) run ./cmd/optbench -experiment all

clean:
	$(GO) clean ./...
