GO ?= go

.PHONY: all build vet test race bench-smoke bench-guard ci experiments clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -timeout backstops regressions that hang (e.g. a wedged batch worker)
# instead of letting CI stall until the job-level kill.
test:
	$(GO) test -timeout 300s ./...

race:
	$(GO) test -race -timeout 600s ./...

# A short benchmark smoke: three iterations of the figure benchmarks that
# stress the search engine hardest (E3/E4 sweeps and the exploration
# figure). Full runs: `go test -bench=. -benchmem`.
bench-smoke:
	$(GO) test -run 'XXX' -bench 'Fig1[234]' -benchmem -benchtime 3x .

# Observability overhead guard: run the seed micro-benchmarks with
# observability absent ("off") and attached-but-disabled ("disabled"),
# and fail if the disabled path costs more than GUARD_PCT percent — the
# instrumentation must be free when nobody is watching. The fully
# enabled path ("on") is reported informationally. Each mode is timed
# BENCH_COUNT times and the minimum ns/op compared, which filters
# scheduler noise.
GUARD_PCT ?= 2
BENCH_COUNT ?= 5
bench-guard:
	@$(GO) test -run 'XXX' -bench 'ObsGuard' -benchtime 200x -count $(BENCH_COUNT) . | tee /tmp/obsguard.txt
	@awk '\
		/^BenchmarkObsGuard\// { \
			split($$1, parts, "/"); wl = parts[2]; mode = parts[3]; \
			sub(/-[0-9]+$$/, "", mode); \
			ns = $$3 + 0; \
			key = wl "/" mode; \
			if (!(key in best) || ns < best[key]) best[key] = ns; \
			if (mode == "off" || mode == "disabled" || mode == "on") seen[wl] = 1; \
		} \
		END { \
			fail = 0; \
			for (wl in seen) { \
				off = best[wl "/off"]; dis = best[wl "/disabled"]; on = best[wl "/on"]; \
				if (off <= 0) { printf "bench-guard: no off baseline for %s\n", wl; fail = 1; continue } \
				dpct = 100 * (dis - off) / off; opct = 100 * (on - off) / off; \
				printf "bench-guard: %-8s off=%.0fns disabled=%.0fns (%+.2f%%) on=%.0fns (%+.2f%% informational)\n", \
					wl, off, dis, dpct, on, opct; \
				if (dpct > $(GUARD_PCT)) { \
					printf "bench-guard: FAIL %s disabled-path overhead %.2f%% > $(GUARD_PCT)%%\n", wl, dpct; fail = 1; \
				} \
			} \
			if (fail) exit 1; \
			print "bench-guard: PASS (disabled-path overhead within $(GUARD_PCT)%)"; \
		}' /tmp/obsguard.txt

ci: vet build race bench-smoke

# Regenerate every paper table/figure (sequential, paper-faithful timing).
experiments: build
	$(GO) run ./cmd/optbench -experiment all

clean:
	$(GO) clean ./...
