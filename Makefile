GO ?= go

.PHONY: all build vet test race bench-smoke ci experiments clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -timeout backstops regressions that hang (e.g. a wedged batch worker)
# instead of letting CI stall until the job-level kill.
test:
	$(GO) test -timeout 300s ./...

race:
	$(GO) test -race -timeout 600s ./...

# A short benchmark smoke: three iterations of the figure benchmarks that
# stress the search engine hardest (E3/E4 sweeps and the exploration
# figure). Full runs: `go test -bench=. -benchmem`.
bench-smoke:
	$(GO) test -run 'XXX' -bench 'Fig1[234]' -benchmem -benchtime 3x .

ci: vet build race bench-smoke

# Regenerate every paper table/figure (sequential, paper-faithful timing).
experiments: build
	$(GO) run ./cmd/optbench -experiment all

clean:
	$(GO) clean ./...
