// Package plancache implements the storage layer of the cross-query
// plan cache: a sharded, lock-striped LRU keyed by canonical query
// fingerprints, with epoch-based invalidation and singleflight miss
// collapsing.
//
// The package is deliberately engine-agnostic (and stdlib-only): keys
// are opaque fingerprints plus an exact canonical rendering, values are
// a type parameter. Package internal/volcano layers plan semantics on
// top — fingerprint computation, memo warm-start, and statistics
// plumbing — so the cache itself stays small enough to reason about
// under concurrency.
//
// Concurrency model: every shard is guarded by one mutex held only for
// map/list operations (never across a search). Misses on the same key
// collapse through a per-key flight: the first Acquire becomes the
// leader and runs the search; concurrent Acquires become followers and
// Wait for the leader's Complete. Statistics are atomic counters,
// readable without stopping the world.
package plancache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// Key identifies one cached value. Two keys are equal iff every field
// is equal — the Canon string makes fingerprint collisions harmless.
type Key struct {
	// Fingerprint is the structural hash; it selects the shard and
	// provides fast map hashing.
	Fingerprint uint64
	// Canon is the exact canonical rendering the fingerprint digests
	// (tree shape, descriptor projections, requirement, budget class).
	// Equality on Canon is what makes a hit sound, not the hash.
	Canon string
	// Scope separates keyspaces that must never share entries — the
	// engine uses one scope per rule-set instance, since costs depend
	// on the catalog closure compiled into the rules.
	Scope uint64
	// Epoch is the cache generation the key was built under; keys built
	// after an Invalidate never match entries written before it.
	Epoch uint64
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits, Misses    int64 // Get/Acquire outcomes
	Puts            int64 // entries written (Put or shared Complete)
	Evictions       int64 // LRU evictions
	Peeks, PeekHits int64 // warm-start probes (not counted as hit/miss)
	FlightWaits     int64 // followers that waited behind a leader
	FlightShared    int64 // waits resolved by adopting the leader's result
	Entries         int   // live entries
	Epoch           uint64
}

type entry[V any] struct {
	k Key
	v V
}

// flight is one in-progress miss: the leader computes, followers wait
// on done. shared/v are written exactly once, before done is closed.
type flight[V any] struct {
	done   chan struct{}
	v      V
	shared bool
}

type shard[V any] struct {
	mu        sync.Mutex
	items     map[Key]*list.Element // of entry[V]
	lru       *list.List            // front = most recently used
	flights   map[Key]*flight[V]
	evictions int64 // under mu; feeds ShardStat
}

// Cache is a sharded LRU with singleflight. The zero value is not
// usable; call New. A Cache with capacity <= 0 is a valid disabled
// handle: every operation is a cheap no-op and Enabled reports false.
type Cache[V any] struct {
	shards      []shard[V]
	mask        uint64
	capPerShard int
	capacity    int
	epoch       atomic.Uint64

	hits, misses, puts, evictions atomic.Int64
	peeks, peekHits               atomic.Int64
	flightWaits, flightShared     atomic.Int64
}

// New returns a cache holding up to capacity entries (approximately:
// the budget is split evenly across shards). capacity <= 0 returns a
// disabled handle.
func New[V any](capacity int) *Cache[V] {
	c := &Cache[V]{capacity: capacity}
	if capacity <= 0 {
		return c
	}
	n := 16
	for n > 1 && n*2 > capacity {
		n /= 2
	}
	c.shards = make([]shard[V], n)
	c.mask = uint64(n - 1)
	c.capPerShard = (capacity + n - 1) / n
	for i := range c.shards {
		c.shards[i] = shard[V]{
			items:   make(map[Key]*list.Element),
			lru:     list.New(),
			flights: make(map[Key]*flight[V]),
		}
	}
	return c
}

// Enabled reports whether the cache stores anything.
func (c *Cache[V]) Enabled() bool { return c != nil && c.capacity > 0 }

// Capacity returns the configured entry budget (0 when disabled).
func (c *Cache[V]) Capacity() int {
	if c == nil {
		return 0
	}
	return c.capacity
}

// Epoch returns the current cache generation; the engine stamps it
// into every key so Invalidate cuts off all older entries at once.
func (c *Cache[V]) Epoch() uint64 {
	if c == nil {
		return 0
	}
	return c.epoch.Load()
}

// Invalidate starts a new generation: keys built from now on cannot
// match entries written before the call. Stale entries are not swept
// eagerly — unreachable, they age out of the LRU under normal traffic.
// It returns the new epoch.
func (c *Cache[V]) Invalidate() uint64 {
	if c == nil {
		return 0
	}
	return c.epoch.Add(1)
}

// AdvanceTo raises the epoch to at least e and returns the resulting
// epoch. It never lowers the epoch: a lagging node reconciling against
// a peer that has already invalidated adopts the newer generation,
// while a stale peer's smaller epoch is a no-op. Concurrent local
// Invalidates interleave safely (the result is the max either way).
func (c *Cache[V]) AdvanceTo(e uint64) uint64 {
	if c == nil {
		return 0
	}
	for {
		cur := c.epoch.Load()
		if cur >= e {
			return cur
		}
		if c.epoch.CompareAndSwap(cur, e) {
			return e
		}
	}
}

func (c *Cache[V]) shardFor(k Key) *shard[V] {
	h := k.Fingerprint
	h ^= k.Scope * 0x9e3779b97f4a7c15
	h ^= k.Epoch * 0xff51afd7ed558ccd
	return &c.shards[(h^h>>32)&c.mask]
}

// Get returns the cached value for k, counting a hit or miss and
// promoting the entry on hit.
func (c *Cache[V]) Get(k Key) (V, bool) {
	var zero V
	if !c.Enabled() {
		return zero, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	el, ok := s.items[k]
	if ok {
		s.lru.MoveToFront(el)
		v := el.Value.(*entry[V]).v
		s.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	return zero, false
}

// Peek is Get without hit/miss accounting (Peeks/PeekHits count
// instead) — the warm-start probe: subtree lookups must not distort
// the hit rate, but a used entry still deserves its LRU promotion.
func (c *Cache[V]) Peek(k Key) (V, bool) {
	var zero V
	if !c.Enabled() {
		return zero, false
	}
	c.peeks.Add(1)
	s := c.shardFor(k)
	s.mu.Lock()
	el, ok := s.items[k]
	if ok {
		s.lru.MoveToFront(el)
		v := el.Value.(*entry[V]).v
		s.mu.Unlock()
		c.peekHits.Add(1)
		return v, true
	}
	s.mu.Unlock()
	return zero, false
}

// Put writes k's value, evicting from the shard's LRU tail when over
// budget.
func (c *Cache[V]) Put(k Key, v V) {
	if !c.Enabled() {
		return
	}
	s := c.shardFor(k)
	s.mu.Lock()
	s.put(c, k, v)
	s.mu.Unlock()
}

// put writes under the shard lock.
func (s *shard[V]) put(c *Cache[V], k Key, v V) {
	if el, ok := s.items[k]; ok {
		el.Value.(*entry[V]).v = v
		s.lru.MoveToFront(el)
		c.puts.Add(1)
		return
	}
	s.items[k] = s.lru.PushFront(&entry[V]{k: k, v: v})
	c.puts.Add(1)
	for s.lru.Len() > c.capPerShard {
		tail := s.lru.Back()
		e := tail.Value.(*entry[V])
		s.lru.Remove(tail)
		delete(s.items, e.k)
		c.evictions.Add(1)
		s.evictions++
	}
}

// ShardStat is one shard's occupancy and lifetime eviction count, for
// the per-shard metrics exposition (shard imbalance under a skewed
// keyspace shows up here before it shows up as a hit-rate regression).
type ShardStat struct {
	Entries   int
	Evictions int64
}

// Shards returns a per-shard snapshot; nil when the cache is disabled.
func (c *Cache[V]) Shards() []ShardStat {
	if !c.Enabled() {
		return nil
	}
	out := make([]ShardStat, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out[i] = ShardStat{Entries: s.lru.Len(), Evictions: s.evictions}
		s.mu.Unlock()
	}
	return out
}

// Len returns the number of live entries.
func (c *Cache[V]) Len() int {
	if !c.Enabled() {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Snapshot returns the current counters.
func (c *Cache[V]) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Puts:         c.puts.Load(),
		Evictions:    c.evictions.Load(),
		Peeks:        c.peeks.Load(),
		PeekHits:     c.peekHits.Load(),
		FlightWaits:  c.flightWaits.Load(),
		FlightShared: c.flightShared.Load(),
		Entries:      c.Len(),
		Epoch:        c.Epoch(),
	}
}

// Acquired is the outcome of one Acquire. Exactly one of three shapes:
//
//   - Hit: Value holds the cached result; nothing else to do.
//   - Leader (Leader true): the caller owns the miss — it must compute
//     the value and call Complete exactly once, on every path
//     (Complete is idempotent, so a deferred no-share Complete is a
//     safe panic backstop).
//   - Follower (neither): another goroutine is computing the same key;
//     Wait blocks for its Complete.
type Acquired[V any] struct {
	Value  V
	Hit    bool
	Leader bool

	c         *Cache[V]
	key       Key
	fl        *flight[V]
	completed bool
}

// Acquire looks up k, registering a flight on miss so concurrent
// misses collapse into one computation. On a disabled cache it always
// returns a leader with nothing registered (Complete is a no-op).
func (c *Cache[V]) Acquire(k Key) *Acquired[V] {
	return c.AcquireIf(k, nil)
}

// AcquireIf is Acquire with a usability predicate: an entry present
// under k counts as a hit only when usable accepts it. A rejected entry
// stays in place — other callers may still hit it — but this caller
// proceeds as a miss (leader or follower), and its eventual Put/shared
// Complete overwrites the rejected value. The engine uses this for
// tiered entries: a full-search request must not adopt a fast-path
// greedy plan, but anytime requests keep hitting it meanwhile. A nil
// usable accepts everything.
func (c *Cache[V]) AcquireIf(k Key, usable func(V) bool) *Acquired[V] {
	if !c.Enabled() {
		return &Acquired[V]{Leader: true}
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		v := el.Value.(*entry[V]).v
		if usable == nil || usable(v) {
			s.lru.MoveToFront(el)
			s.mu.Unlock()
			c.hits.Add(1)
			return &Acquired[V]{Value: v, Hit: true}
		}
	}
	if fl, ok := s.flights[k]; ok {
		s.mu.Unlock()
		c.flightWaits.Add(1)
		return &Acquired[V]{c: c, key: k, fl: fl}
	}
	fl := &flight[V]{done: make(chan struct{})}
	s.flights[k] = fl
	s.mu.Unlock()
	c.misses.Add(1)
	return &Acquired[V]{Leader: true, c: c, key: k, fl: fl}
}

// Complete resolves a leader's flight: with share true the value is
// published to the cache and handed to every waiting follower; with
// share false (degraded or failed computations) followers are released
// empty-handed to run their own searches. Idempotent; no-op for hits,
// followers, and disabled caches.
func (a *Acquired[V]) Complete(v V, share bool) {
	a.complete(v, share, share)
}

// CompleteShared resolves a leader's flight by handing v to every
// waiting follower while deciding separately whether to store it. The
// cluster layer uses store=false for entries owned by a remote shard:
// concurrent local misses still collapse onto the fetched value, but
// the entry does not consume local capacity (the owner keeps it).
func (a *Acquired[V]) CompleteShared(v V, store bool) {
	a.complete(v, true, store)
}

func (a *Acquired[V]) complete(v V, share, store bool) {
	if !a.Leader || a.fl == nil || a.completed {
		return
	}
	a.completed = true
	s := a.c.shardFor(a.key)
	s.mu.Lock()
	delete(s.flights, a.key)
	if store {
		s.put(a.c, a.key, v)
	}
	a.fl.v, a.fl.shared = v, share
	s.mu.Unlock()
	close(a.fl.done)
}

// Wait blocks a follower until the leader Completes (returning the
// shared value, or ok=false when the leader declined to share) or ctx
// is cancelled. For hits and leaders it returns immediately.
func (a *Acquired[V]) Wait(ctx context.Context) (V, bool, error) {
	var zero V
	if a.Hit {
		return a.Value, true, nil
	}
	if a.Leader || a.fl == nil {
		return zero, false, nil
	}
	select {
	case <-a.fl.done:
		if a.fl.shared {
			a.c.flightShared.Add(1)
			return a.fl.v, true, nil
		}
		return zero, false, nil
	case <-ctx.Done():
		return zero, false, ctx.Err()
	}
}
