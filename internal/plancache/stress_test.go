package plancache

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// epochVal tags a cached value with the epoch and canon of the key it
// was written under, so readers can detect a stale or cross-key serve.
type epochVal struct {
	epoch uint64
	canon string
}

// TestEpochInvalidationStress (run with -race): Get/Put/Acquire/Wait
// traffic from many goroutines races an invalidator that bumps the
// epoch continuously. The invariant under all interleavings: a hit —
// whether from Get, an Acquire hit, or a follower adopting a leader's
// result — only ever returns a value written under the exact epoch and
// canon of the requesting key. An entry from before an Invalidate must
// never satisfy a key built after it.
func TestEpochInvalidationStress(t *testing.T) {
	const (
		capacity = 64
		workers  = 8
		keys     = 32
		iters    = 5000
	)
	c := New[epochVal](capacity)

	stop := make(chan struct{})
	var inval sync.WaitGroup
	inval.Add(1)
	go func() {
		defer inval.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Invalidate()
			time.Sleep(20 * time.Microsecond)
		}
	}()

	var stale, served atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				kidx := rng.Intn(keys)
				canon := fmt.Sprintf("q%d", kidx)
				// The key is built from the epoch as read now — exactly
				// the engine's protocol. The invalidator may bump the
				// epoch at any point after this line.
				e := c.Epoch()
				k := Key{Fingerprint: uint64(kidx), Canon: canon, Epoch: e}
				check := func(v epochVal) {
					served.Add(1)
					if v.epoch != e || v.canon != canon {
						stale.Add(1)
					}
				}
				switch rng.Intn(3) {
				case 0:
					if v, ok := c.Get(k); ok {
						check(v)
					}
				case 1:
					c.Put(k, epochVal{epoch: e, canon: canon})
				default:
					a := c.Acquire(k)
					switch {
					case a.Hit:
						check(a.Value)
					case a.Leader:
						// Occasionally decline to share, as a degraded
						// search would.
						a.Complete(epochVal{epoch: e, canon: canon}, rng.Intn(4) != 0)
					default:
						ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
						v, ok, err := a.Wait(ctx)
						cancel()
						if err != nil {
							t.Errorf("follower wait: %v", err)
						} else if ok {
							// The flight's key includes the epoch, so the
							// leader computed under the same e and canon.
							check(v)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	inval.Wait()

	if got := stale.Load(); got != 0 {
		t.Fatalf("%d stale or cross-key values served (of %d hits)", got, served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("stress produced no hits at all; the schedule is not exercising the cache")
	}
	if n := c.Len(); n > capacity+16 {
		t.Errorf("cache holds %d entries, capacity %d", n, capacity)
	}
	snap := c.Snapshot()
	if snap.Hits == 0 || snap.Misses == 0 || snap.Puts == 0 {
		t.Errorf("counters did not move: %+v", snap)
	}
}
