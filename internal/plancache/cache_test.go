package plancache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(fp uint64, canon string) Key {
	return Key{Fingerprint: fp, Canon: canon}
}

func TestGetPut(t *testing.T) {
	c := New[string](8)
	if !c.Enabled() {
		t.Fatal("cache with capacity 8 reports disabled")
	}
	if _, ok := c.Get(key(1, "a")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key(1, "a"), "plan-a")
	v, ok := c.Get(key(1, "a"))
	if !ok || v != "plan-a" {
		t.Fatalf("Get = %q, %v; want plan-a, true", v, ok)
	}
	// Same fingerprint, different canon: a collision must miss.
	if _, ok := c.Get(key(1, "b")); ok {
		t.Fatal("fingerprint collision treated as hit")
	}
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 2 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity 1 forces a single shard of size 1.
	c := New[int](1)
	c.Put(key(1, "a"), 1)
	c.Put(key(2, "b"), 2)
	st := c.Snapshot()
	if st.Entries != 1 || st.Evictions < 1 {
		t.Fatalf("want 1 entry and >=1 eviction after overflow, got %+v", st)
	}
}

func TestLRUPromotion(t *testing.T) {
	// Two entries in one shard of capacity 2: touching the older one
	// must make the other the eviction victim.
	c := New[int](2)
	if len(c.shards) != 1 {
		t.Fatalf("capacity 2 should collapse to one shard, got %d", len(c.shards))
	}
	c.Put(key(1, "a"), 1)
	c.Put(key(2, "b"), 2)
	if _, ok := c.Get(key(1, "a")); !ok {
		t.Fatal("entry a missing")
	}
	c.Put(key(3, "c"), 3)
	if _, ok := c.Get(key(1, "a")); !ok {
		t.Fatal("recently-used entry a evicted")
	}
	if _, ok := c.Get(key(2, "b")); ok {
		t.Fatal("least-recently-used entry b survived")
	}
}

func TestEpochInvalidation(t *testing.T) {
	c := New[int](8)
	k := Key{Fingerprint: 7, Canon: "q", Epoch: c.Epoch()}
	c.Put(k, 42)
	if _, ok := c.Get(k); !ok {
		t.Fatal("entry missing before invalidation")
	}
	c.Invalidate()
	k2 := Key{Fingerprint: 7, Canon: "q", Epoch: c.Epoch()}
	if _, ok := c.Get(k2); ok {
		t.Fatal("stale entry served after Invalidate")
	}
	if c.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", c.Epoch())
	}
}

func TestScopeSeparation(t *testing.T) {
	c := New[int](8)
	a := Key{Fingerprint: 7, Canon: "q", Scope: 1}
	b := Key{Fingerprint: 7, Canon: "q", Scope: 2}
	c.Put(a, 1)
	if _, ok := c.Get(b); ok {
		t.Fatal("entry leaked across scopes")
	}
}

func TestPeekDoesNotCountHitMiss(t *testing.T) {
	c := New[int](8)
	c.Put(key(1, "a"), 1)
	if _, ok := c.Peek(key(1, "a")); !ok {
		t.Fatal("peek missed a live entry")
	}
	if _, ok := c.Peek(key(2, "b")); ok {
		t.Fatal("peek hit a missing entry")
	}
	st := c.Snapshot()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("peeks leaked into hit/miss counters: %+v", st)
	}
	if st.Peeks != 2 || st.PeekHits != 1 {
		t.Fatalf("peek counters = %+v", st)
	}
}

func TestDisabledHandle(t *testing.T) {
	c := New[int](0)
	if c.Enabled() {
		t.Fatal("capacity-0 cache reports enabled")
	}
	c.Put(key(1, "a"), 1) // must not panic
	if _, ok := c.Get(key(1, "a")); ok {
		t.Fatal("disabled cache stored an entry")
	}
	a := c.Acquire(key(1, "a"))
	if !a.Leader || a.Hit {
		t.Fatalf("disabled Acquire = %+v, want plain leader", a)
	}
	a.Complete(1, true) // no-op, must not panic
	if c.Len() != 0 {
		t.Fatal("disabled cache has entries")
	}
	var nilCache *Cache[int]
	if nilCache.Enabled() || nilCache.Epoch() != 0 || nilCache.Capacity() != 0 {
		t.Fatal("nil cache accessors not nil-safe")
	}
	nilCache.Invalidate()
	_ = nilCache.Snapshot()
}

func TestSingleflightCollapse(t *testing.T) {
	c := New[string](8)
	k := key(9, "q")

	lead := c.Acquire(k)
	if !lead.Leader || lead.Hit {
		t.Fatalf("first acquire not a leader: %+v", lead)
	}

	const followers = 8
	var wg sync.WaitGroup
	var shared atomic.Int64
	for i := 0; i < followers; i++ {
		f := c.Acquire(k)
		if f.Leader || f.Hit {
			t.Fatalf("concurrent acquire %d not a follower: %+v", i, f)
		}
		wg.Add(1)
		go func(f *Acquired[string]) {
			defer wg.Done()
			v, ok, err := f.Wait(context.Background())
			if err != nil {
				t.Errorf("wait: %v", err)
			}
			if ok && v == "result" {
				shared.Add(1)
			}
		}(f)
	}
	lead.Complete("result", true)
	wg.Wait()
	if got := shared.Load(); got != followers {
		t.Fatalf("%d/%d followers adopted the shared result", got, followers)
	}
	if v, ok := c.Get(k); !ok || v != "result" {
		t.Fatal("shared result not cached")
	}
	st := c.Snapshot()
	if st.Misses != 1 || st.FlightWaits != followers || st.FlightShared != followers {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSingleflightNoShare(t *testing.T) {
	c := New[string](8)
	k := key(9, "q")
	lead := c.Acquire(k)
	f := c.Acquire(k)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, ok, err := f.Wait(context.Background())
		if ok || err != nil {
			t.Errorf("no-share wait = ok=%v err=%v, want released empty", ok, err)
		}
	}()
	lead.Complete("", false)
	<-done
	if _, ok := c.Get(k); ok {
		t.Fatal("unshared result was cached")
	}
	// The flight is gone: the next acquire leads again.
	if a := c.Acquire(k); !a.Leader {
		t.Fatal("flight not cleared after no-share completion")
	}
}

func TestSingleflightCompleteIdempotent(t *testing.T) {
	c := New[string](8)
	k := key(9, "q")
	lead := c.Acquire(k)
	lead.Complete("first", true)
	lead.Complete("second", true) // must not panic (double close) or overwrite
	if v, _ := c.Get(k); v != "first" {
		t.Fatalf("second Complete overwrote: %q", v)
	}
}

func TestWaitCancellation(t *testing.T) {
	c := New[string](8)
	k := key(9, "q")
	_ = c.Acquire(k) // leader never completes
	f := c.Acquire(k)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, ok, err := f.Wait(ctx)
	if ok || err == nil {
		t.Fatalf("cancelled wait = ok=%v err=%v, want context error", ok, err)
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	// Hammer a small cache from many goroutines: correctness is "no
	// race, no panic, flights always resolve" (run under -race in CI).
	c := New[int](32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(uint64(i%40), fmt.Sprintf("q%d", i%40))
				a := c.Acquire(k)
				switch {
				case a.Hit:
				case a.Leader:
					a.Complete(i, i%3 != 0)
				default:
					ctx, cancel := context.WithTimeout(context.Background(), time.Second)
					if _, _, err := a.Wait(ctx); err != nil {
						t.Errorf("goroutine %d: wait: %v", g, err)
					}
					cancel()
				}
				if i%7 == 0 {
					c.Put(k, i)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 32 {
		t.Fatalf("cache over budget: %d entries", n)
	}
}

// TestAcquireIf: the usability predicate turns an unacceptable entry
// into a miss for this caller only — the entry stays servable to
// predicate-free callers, and the rejecting leader's shared Complete
// upgrades it in place.
func TestAcquireIf(t *testing.T) {
	c := New[int](8)
	k := key(7, "q")
	c.Put(k, 1)

	// Accepting predicate and nil predicate both hit.
	if a := c.AcquireIf(k, func(v int) bool { return v == 1 }); !a.Hit || a.Value != 1 {
		t.Fatalf("accepting AcquireIf = %+v, want hit 1", a)
	}
	if a := c.AcquireIf(k, nil); !a.Hit {
		t.Fatalf("nil-predicate AcquireIf = %+v, want hit", a)
	}

	// Rejecting predicate: this caller leads a miss...
	lead := c.AcquireIf(k, func(v int) bool { return v >= 2 })
	if lead.Hit || !lead.Leader {
		t.Fatalf("rejecting AcquireIf = %+v, want leader", lead)
	}
	// ...while the entry stays in place for everyone else...
	if v, ok := c.Get(k); !ok || v != 1 {
		t.Fatal("rejected entry evicted from the cache")
	}
	// ...and a concurrent rejecting caller follows the flight.
	follow := c.AcquireIf(k, func(v int) bool { return v >= 2 })
	if follow.Hit || follow.Leader {
		t.Fatalf("second rejecting AcquireIf = %+v, want follower", follow)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, ok, err := follow.Wait(context.Background())
		if !ok || err != nil || v != 2 {
			t.Errorf("follower Wait = %v, %v, %v; want 2, true, nil", v, ok, err)
		}
	}()
	lead.Complete(2, true)
	<-done

	// The shared Complete upgraded the entry.
	if v, ok := c.Get(k); !ok || v != 2 {
		t.Fatalf("entry after upgrade = %v, %v; want 2, true", v, ok)
	}
	if a := c.AcquireIf(k, func(v int) bool { return v >= 2 }); !a.Hit || a.Value != 2 {
		t.Fatalf("post-upgrade AcquireIf = %+v, want hit 2", a)
	}

	// Disabled cache: AcquireIf degrades to a plain leader.
	var d *Cache[int]
	if a := d.AcquireIf(k, func(int) bool { return true }); !a.Leader || a.Hit {
		t.Fatalf("disabled AcquireIf = %+v, want plain leader", a)
	}
}

// TestAdvanceTo: the epoch only moves forward — a peer's newer epoch is
// adopted, an older one is ignored, and local Invalidate composes.
func TestAdvanceTo(t *testing.T) {
	c := New[int](8)
	if e := c.AdvanceTo(5); e != 5 {
		t.Fatalf("AdvanceTo(5) = %d, want 5", e)
	}
	if e := c.AdvanceTo(3); e != 5 {
		t.Fatalf("AdvanceTo(3) = %d, want 5 (monotonic)", e)
	}
	if e := c.Invalidate(); e != 6 {
		t.Fatalf("Invalidate after AdvanceTo = %d, want 6", e)
	}
	var d *Cache[int]
	if e := d.AdvanceTo(9); e != 0 {
		t.Fatalf("nil AdvanceTo = %d, want 0", e)
	}
}

// TestCompleteShared: store=false hands the value to followers without
// writing it to the cache — the remote-owned entry must not consume
// local capacity — while store=true behaves like a shared Complete.
func TestCompleteShared(t *testing.T) {
	c := New[int](8)
	k := key(11, "remote")

	lead := c.Acquire(k)
	if !lead.Leader {
		t.Fatal("want leader")
	}
	follow := c.Acquire(k)
	if follow.Leader || follow.Hit {
		t.Fatal("want follower")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, ok, err := follow.Wait(context.Background())
		if !ok || err != nil || v != 42 {
			t.Errorf("follower Wait = %v, %v, %v; want 42, true, nil", v, ok, err)
		}
	}()
	lead.CompleteShared(42, false)
	<-done
	if _, ok := c.Get(k); ok {
		t.Fatal("store=false CompleteShared wrote the entry")
	}

	lead2 := c.Acquire(k)
	lead2.CompleteShared(7, true)
	if v, ok := c.Get(k); !ok || v != 7 {
		t.Fatalf("store=true CompleteShared: entry = %v, %v; want 7, true", v, ok)
	}
}

// TestShards: occupancy sums to Len and evictions are attributed to the
// shard that overflowed.
func TestShards(t *testing.T) {
	c := New[int](8)
	for i := 0; i < 50; i++ {
		c.Put(key(uint64(i)*0x9e3779b97f4a7c15, "q"), i)
	}
	stats := c.Shards()
	if len(stats) == 0 {
		t.Fatal("no shard stats on an enabled cache")
	}
	entries, evictions := 0, int64(0)
	for _, st := range stats {
		entries += st.Entries
		evictions += st.Evictions
	}
	if entries != c.Len() {
		t.Fatalf("shard entries sum %d != Len %d", entries, c.Len())
	}
	if evictions != c.Snapshot().Evictions {
		t.Fatalf("shard evictions sum %d != total %d", evictions, c.Snapshot().Evictions)
	}
	if evictions == 0 {
		t.Fatal("expected evictions after overfilling an 8-entry cache")
	}
	var d *Cache[int]
	if d.Shards() != nil {
		t.Fatal("nil cache Shards() should be nil")
	}
}
