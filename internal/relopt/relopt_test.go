package relopt

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"prairie/internal/catalog"
	"prairie/internal/core"
	"prairie/internal/p2v"
	"prairie/internal/volcano"
)

// testCatalog returns a small catalog with fixed power-of-two stats.
func testCatalog(indexed bool) *catalog.Catalog {
	cat := catalog.New()
	cards := []float64{1024, 128, 256, 512, 64, 2048, 32, 4096}
	for i, card := range cards {
		cl := &catalog.Class{
			Name: catalog.ClassName(i + 1), Card: card, TupleSize: 64,
			Attrs: []catalog.Attribute{
				{Name: "a", Distinct: card / 2},
				{Name: "b", Distinct: card / 4},
				{Name: "c", Distinct: card},
			},
		}
		if indexed {
			cl.Indexes = []string{"b"}
		}
		cat.Add(cl)
	}
	return cat
}

func rels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = catalog.ClassName(i + 1)
	}
	return out
}

func prairieOptimizer(t *testing.T, cat *catalog.Catalog) (*Opt, *volcano.RuleSet, *p2v.Report) {
	t.Helper()
	o := New(cat)
	vrs, rep, err := p2v.Translate(o.PrairieRules())
	if err != nil {
		t.Fatalf("p2v.Translate: %v", err)
	}
	return o, vrs, rep
}

func TestPrairieRuleSetValid(t *testing.T) {
	o := New(testCatalog(false))
	rs := o.PrairieRules()
	if errs := rs.Validate(); len(errs) != 0 {
		t.Fatalf("Prairie rule set invalid: %v", errs)
	}
	if len(rs.TRules) != 3 || len(rs.IRules) != 6 {
		t.Errorf("rule counts = %d T, %d I; want 3 T, 6 I", len(rs.TRules), len(rs.IRules))
	}
	enf := rs.EnforcerOperators()
	if len(enf) != 1 || enf[0] != o.SORT {
		t.Errorf("EnforcerOperators = %v", enf)
	}
	if got := rs.Helpers.Names(); len(got) != 2 {
		t.Errorf("helpers = %v", got)
	}
}

func TestVolcanoRuleSetValid(t *testing.T) {
	o := New(testCatalog(false))
	vrs := o.VolcanoRules()
	if errs := vrs.Validate(); len(errs) != 0 {
		t.Fatalf("hand-coded Volcano rule set invalid: %v", errs)
	}
	if len(vrs.Trans) != 2 || len(vrs.Impls) != 4 || len(vrs.Enforcers) != 1 {
		t.Errorf("counts = %d/%d/%d, want 2/4/1",
			len(vrs.Trans), len(vrs.Impls), len(vrs.Enforcers))
	}
}

// TestP2VMergeArithmetic checks the rule-count arithmetic of §3.3: the
// Prairie specification has one extra T-rule (enforcer introduction) and
// two extra I-rules (the Null rule and the enforcer's rule) compared to
// the generated Volcano rule set.
func TestP2VMergeArithmetic(t *testing.T) {
	_, vrs, rep := prairieOptimizer(t, testCatalog(false))
	if rep.TRulesIn != 3 || rep.TransOut != 2 {
		t.Errorf("T-rules %d -> trans %d, want 3 -> 2", rep.TRulesIn, rep.TransOut)
	}
	if rep.IRulesIn != 6 || rep.ImplsOut != 4 || rep.EnforcersOut != 1 {
		t.Errorf("I-rules %d -> impl %d + enf %d, want 6 -> 4 + 1",
			rep.IRulesIn, rep.ImplsOut, rep.EnforcersOut)
	}
	if rep.Aliases["JOPR"] != "JOIN" {
		t.Errorf("aliases = %v, want JOPR => JOIN", rep.Aliases)
	}
	if len(rep.EnforcerOperators) != 1 || rep.EnforcerOperators[0] != "SORT" {
		t.Errorf("enforcer operators = %v", rep.EnforcerOperators)
	}
	if got := rep.EnforcedProps["SORT"]; len(got) != 1 || got[0] != "tuple_order" {
		t.Errorf("enforced props = %v", got)
	}
	if len(vrs.Trans) != 2 || len(vrs.Impls) != 4 || len(vrs.Enforcers) != 1 {
		t.Errorf("generated counts = %d/%d/%d", len(vrs.Trans), len(vrs.Impls), len(vrs.Enforcers))
	}
	// The generated counts equal the hand-coded ones, as in §4.2.
	hand := New(testCatalog(false)).VolcanoRules()
	if len(vrs.Trans) != len(hand.Trans) || len(vrs.Impls) != len(hand.Impls) ||
		len(vrs.Enforcers) != len(hand.Enforcers) {
		t.Error("generated rule set differs in size from the hand-coded one")
	}
}

// TestP2VClassification checks the automatic property classification
// (§3.1): cost by kind, tuple_order physical (assigned on input stream
// descriptors in pre-opt sections), all else arguments.
func TestP2VClassification(t *testing.T) {
	o, vrs, rep := prairieOptimizer(t, testCatalog(false))
	if rep.CostProp != "cost" {
		t.Errorf("cost prop = %q", rep.CostProp)
	}
	if len(rep.PhysProps) != 1 || rep.PhysProps[0] != "tuple_order" {
		t.Errorf("phys props = %v", rep.PhysProps)
	}
	for _, arg := range rep.ArgProps {
		if arg == "cost" || arg == "tuple_order" {
			t.Errorf("%s classified as argument", arg)
		}
	}
	if !vrs.Class.IsPhys(o.Ord) || vrs.Class.IsArg(o.Ord) {
		t.Error("generated classification wrong for tuple_order")
	}
	out := rep.String()
	for _, want := range []string{"enforcer-operator SORT", "alias: JOPR => JOIN", "3 T-rules, 6 I-rules"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// optimizeBoth runs the same query through the Prairie-generated and the
// hand-coded optimizer and returns both plans.
func optimizeBoth(t *testing.T, indexed bool, q QuerySpec) (p, v *volcano.PExpr, po, vo *volcano.Optimizer) {
	t.Helper()
	cat := testCatalog(indexed)

	op, pvrs, _ := prairieOptimizer(t, cat)
	po = volcano.NewOptimizer(pvrs)
	tree, err := op.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	p, err = po.Optimize(tree, op.Requirement(q))
	if err != nil {
		t.Fatalf("prairie optimize: %v", err)
	}

	ov := New(cat)
	vo = volcano.NewOptimizer(ov.VolcanoRules())
	tree2, err := ov.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	v, err = vo.Optimize(tree2, ov.Requirement(q))
	if err != nil {
		t.Fatalf("volcano optimize: %v", err)
	}
	return p, v, po, vo
}

func TestPrairieMatchesVolcanoPlans(t *testing.T) {
	for _, tc := range []struct {
		name    string
		indexed bool
		q       QuerySpec
	}{
		{"2way", false, QuerySpec{Relations: rels(2)}},
		{"3way", false, QuerySpec{Relations: rels(3)}},
		{"4way", false, QuerySpec{Relations: rels(4)}},
		{"3way_indexed", true, QuerySpec{Relations: rels(3)}},
		{"3way_select", false, QuerySpec{Relations: rels(3), Select: true}},
		{"3way_select_indexed", true, QuerySpec{Relations: rels(3), Select: true}},
		{"3way_sorted", false, QuerySpec{Relations: rels(3), OrderBy: core.A("C1", "a")}},
		{"2way_sorted_indexed", true, QuerySpec{Relations: rels(2), OrderBy: core.A("C1", "b")}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, v, po, vo := optimizeBoth(t, tc.indexed, tc.q)
			pc := p.Cost(po.RS.Class)
			vc := v.Cost(vo.RS.Class)
			if math.Abs(pc-vc) > 1e-9*math.Max(pc, vc) {
				t.Errorf("winner costs differ: prairie=%g volcano=%g\nprairie: %s\nvolcano: %s",
					pc, vc, p, v)
			}
			// The search spaces must be identical: same number of
			// equivalence classes (the paper's Figure 14 notes they are
			// the same in Prairie and Volcano).
			if po.Stats.Groups != vo.Stats.Groups {
				t.Errorf("groups differ: prairie=%d volcano=%d", po.Stats.Groups, vo.Stats.Groups)
			}
			if po.Stats.Exprs != vo.Stats.Exprs {
				t.Errorf("exprs differ: prairie=%d volcano=%d", po.Stats.Exprs, vo.Stats.Exprs)
			}
		})
	}
}

func TestOrderRequirementHonored(t *testing.T) {
	q := QuerySpec{Relations: rels(3), OrderBy: core.A("C2", "a")}
	p, v, po, _ := optimizeBoth(t, false, q)
	want := core.OrderBy(core.A("C2", "a"))
	if !p.D.Order(po.RS.Class.Phys[0]).Satisfies(want) {
		t.Errorf("prairie plan order = %v", p.D.Order(po.RS.Class.Phys[0]))
	}
	if !v.D.Order(po.RS.Class.Phys[0]).Satisfies(want) {
		t.Errorf("volcano plan order = %v", v.D.Order(po.RS.Class.Phys[0]))
	}
}

func TestIndexScanChosenForSelectiveQuery(t *testing.T) {
	// With an index on the selection attribute, the optimizer should
	// prefer Index_scan for at least one retrieval.
	q := QuerySpec{Relations: rels(3), Select: true}
	p, v, _, _ := optimizeBoth(t, true, q)
	for name, plan := range map[string]*volcano.PExpr{"prairie": p, "volcano": v} {
		if !strings.Contains(strings.Join(plan.Algorithms(), ","), "Index_scan") {
			t.Errorf("%s plan uses no index scan: %s", name, plan)
		}
	}
}

func TestNoIndexNoIndexScan(t *testing.T) {
	q := QuerySpec{Relations: rels(2), Select: true}
	p, _, _, _ := optimizeBoth(t, false, q)
	if strings.Contains(strings.Join(p.Algorithms(), ","), "Index_scan") {
		t.Errorf("index scan chosen without an index: %s", p)
	}
}

func TestMergeJoinViaEnforcedSort(t *testing.T) {
	// Force a case where merge join wins: request the join attribute's
	// order at the root, making sorted inputs pay for themselves.
	cat := testCatalog(false)
	op, pvrs, _ := prairieOptimizer(t, cat)
	q := QuerySpec{Relations: rels(2), OrderBy: core.A("C1", "a")}
	tree, _ := op.Build(q)
	o := volcano.NewOptimizer(pvrs)
	plan, err := o.Optimize(tree, op.Requirement(q))
	if err != nil {
		t.Fatal(err)
	}
	algs := strings.Join(plan.Algorithms(), ",")
	if !strings.Contains(algs, "Merge_join") && !strings.Contains(algs, "Merge_sort") {
		t.Errorf("no sorting machinery in plan %s", plan)
	}
}

func TestGroupCountsLinearChain(t *testing.T) {
	// Linear N-chain: leaves N + RET groups N + contiguous join ranges
	// N(N-1)/2.
	for n := 2; n <= 5; n++ {
		cat := testCatalog(false)
		op, pvrs, _ := prairieOptimizer(t, cat)
		tree, _ := op.Build(QuerySpec{Relations: rels(n)})
		o := volcano.NewOptimizer(pvrs)
		if _, err := o.Optimize(tree, nil); err != nil {
			t.Fatal(err)
		}
		want := 2*n + n*(n-1)/2
		if o.Stats.Groups != want {
			t.Errorf("n=%d: groups = %d, want %d", n, o.Stats.Groups, want)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	o := New(testCatalog(false))
	if _, err := o.Build(QuerySpec{}); err == nil {
		t.Error("empty query accepted")
	}
	tree, err := o.Build(QuerySpec{Relations: rels(1)})
	if err != nil || tree.String() != "RET(C1)" {
		t.Errorf("1-relation query = %v, %v", tree, err)
	}
	req := o.Requirement(QuerySpec{Relations: rels(1)})
	if req.Has(o.Ord) {
		t.Error("requirement should be empty without OrderBy")
	}
}

func TestSortNodeInQueryTree(t *testing.T) {
	// An explicit SORT node in the initial tree (the paper's Figure 1)
	// is stripped by PrepareQuery into a physical-property requirement
	// (SORT is an enforcer-operator and does not exist in the generated
	// Volcano space).
	cat := testCatalog(false)
	op, pvrs, rep := prairieOptimizer(t, cat)
	q := QuerySpec{Relations: rels(2)}
	inner, _ := op.Build(q)
	tree := op.Sort(inner, core.A("C1", "a"))
	tree2, req, err := rep.PrepareQuery(tree, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Op != op.JOIN {
		t.Errorf("SORT not stripped: root is %v", tree2.Op)
	}
	if !req.Order(op.Ord).Equal(core.OrderBy(core.A("C1", "a"))) {
		t.Errorf("requirement = %v", req.Order(op.Ord))
	}
	o := volcano.NewOptimizer(pvrs)
	plan, err := o.Optimize(tree2, req)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.D.Order(op.Ord).Satisfies(core.OrderBy(core.A("C1", "a"))) {
		t.Errorf("sorted tree produced order %v", plan.D.Order(op.Ord))
	}
}

func TestPrepareQueryRejectsInteriorSort(t *testing.T) {
	cat := testCatalog(false)
	op, _, rep := prairieOptimizer(t, cat)
	left := op.Sort(op.Ret(op.Leaf("C1"), core.TruePred), core.A("C1", "a"))
	right := op.Ret(op.Leaf("C2"), core.TruePred)
	tree := op.Join(left, right, core.EqAttr(core.A("C1", "a"), core.A("C2", "a")))
	if _, _, err := rep.PrepareQuery(tree, nil); err == nil {
		t.Error("interior SORT accepted")
	}
}

func TestHelperFunctions(t *testing.T) {
	attrs := core.Attrs{core.A("C1", "a"), core.A("C2", "a"), core.A("C3", "a")}
	all := core.And(
		core.EqAttr(core.A("C1", "a"), core.A("C2", "a")),
		core.EqAttr(core.A("C2", "a"), core.A("C3", "a")))
	inner, outer, ok := isAssociative(all,
		core.Attrs{attrs[0]}, core.Attrs{attrs[1]}, core.Attrs{attrs[2]})
	if !ok {
		t.Fatal("linear chain should be associative")
	}
	if !inner.Equal(core.EqAttr(core.A("C2", "a"), core.A("C3", "a"))) {
		t.Errorf("inner = %v", inner)
	}
	if !outer.Equal(core.EqAttr(core.A("C1", "a"), core.A("C2", "a"))) {
		t.Errorf("outer = %v", outer)
	}
	// Cross product: C1 joins C3 only; regrouping (C2, C3) is fine but
	// regrouping with C2 unconnected must fail.
	cross := core.EqAttr(core.A("C1", "a"), core.A("C2", "a"))
	if _, _, ok := isAssociative(cross,
		core.Attrs{attrs[0]}, core.Attrs{attrs[1]}, core.Attrs{attrs[2]}); ok {
		t.Error("cross-product rewrite accepted")
	}

	l, r, ok := orientEqui(core.EqAttr(core.A("C2", "a"), core.A("C1", "a")), core.Attrs{attrs[0]})
	if !ok || l != core.A("C1", "a") || r != core.A("C2", "a") {
		t.Errorf("orientEqui = %v %v %v", l, r, ok)
	}
	if _, _, ok := orientEqui(core.TruePred, core.Attrs{attrs[0]}); ok {
		t.Error("non-equi predicate oriented")
	}

	ix := core.Attrs{core.A("C1", "b")}
	got, ok := pickIndexAttr(ix, core.DontCareOrder, core.EqConst(core.A("C1", "b"), core.Int(1)))
	if !ok || got != core.A("C1", "b") {
		t.Errorf("pickIndexAttr = %v %v", got, ok)
	}
	if _, ok := pickIndexAttr(nil, core.DontCareOrder, core.TruePred); ok {
		t.Error("pickIndexAttr with no indexes")
	}
	if !indexUsableForSelection(core.A("C1", "b"), core.EqConst(core.A("C1", "b"), core.Int(1))) {
		t.Error("usable index not detected")
	}
	if indexUsableForSelection(core.A("C1", "b"), core.TruePred) {
		t.Error("TRUE selection considered usable")
	}
}

func TestCostModel(t *testing.T) {
	if fileScanCost(100) != 100 {
		t.Error("fileScanCost")
	}
	if indexScanCost(100, 10, true) != 28 {
		t.Errorf("indexScanCost usable = %g", indexScanCost(100, 10, true))
	}
	if indexScanCost(100, 10, false) != 108 {
		t.Errorf("indexScanCost sweep = %g", indexScanCost(100, 10, false))
	}
	if nestedLoopsCost(10, 5, 3) != 25 {
		t.Error("nestedLoopsCost")
	}
	if mergeJoinCost(1, 2, 3, 4) != 10 {
		t.Error("mergeJoinCost")
	}
	// The cardinality is clamped to 1: 1*log2(2) = 1.
	if got := mergeSortCost(0, 0); got != 1 {
		t.Errorf("mergeSortCost(0,0) = %g, want 1", got)
	}
	if got := mergeSortCost(10, 0); got != 11 {
		t.Errorf("mergeSortCost(10,0) = %g, want 11", got)
	}
}

// TestPrairieVolcanoEquivalenceQuick is a property test: for random
// power-of-two catalog statistics, both specification paths must agree
// on winner cost and search-space size.
func TestPrairieVolcanoEquivalenceQuick(t *testing.T) {
	check := func(e1, e2, e3 uint8, withSel, withIdx bool) bool {
		cat := catalog.New()
		exps := []uint8{e1, e2, e3}
		for i, e := range exps {
			card := float64(int64(1) << (4 + e%7)) // 16..1024
			cl := &catalog.Class{
				Name: catalog.ClassName(i + 1), Card: card, TupleSize: 64,
				Attrs: []catalog.Attribute{
					{Name: "a", Distinct: card / 2},
					{Name: "b", Distinct: card / 4},
				},
			}
			if withIdx {
				cl.Indexes = []string{"b"}
			}
			cat.Add(cl)
		}
		q := QuerySpec{Relations: []string{"C1", "C2", "C3"}, Select: withSel}

		po := New(cat)
		pvrs, rep, err := p2v.Translate(po.PrairieRules())
		if err != nil {
			t.Fatal(err)
		}
		ptree, err := po.Build(q)
		if err != nil {
			t.Fatal(err)
		}
		ptree, preq, err := rep.PrepareQuery(ptree, po.Requirement(q))
		if err != nil {
			t.Fatal(err)
		}
		popt := volcano.NewOptimizer(pvrs)
		pplan, err := popt.Optimize(ptree, preq)
		if err != nil {
			t.Fatal(err)
		}

		vo := New(cat)
		vtree, err := vo.Build(q)
		if err != nil {
			t.Fatal(err)
		}
		vopt := volcano.NewOptimizer(vo.VolcanoRules())
		vplan, err := vopt.Optimize(vtree, vo.Requirement(q))
		if err != nil {
			t.Fatal(err)
		}
		pc, vc := pplan.Cost(pvrs.Class), vplan.Cost(vopt.RS.Class)
		return math.Abs(pc-vc) <= 1e-9*math.Max(pc, vc) &&
			popt.Stats.Groups == vopt.Stats.Groups &&
			popt.Stats.Exprs == vopt.Stats.Exprs
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestHashJoinExtensionModule exercises the modular composition the
// paper's conclusion proposes: the base Prairie specification merged
// with an extension module contributing Hash_join. P2V generates one
// optimizer, and the new algorithm wins where it is cheapest.
func TestHashJoinExtensionModule(t *testing.T) {
	cat := testCatalog(false)
	o := New(cat)
	merged, err := core.MergeRuleSets(o.PrairieRules(), o.HashJoinExtension())
	if err != nil {
		t.Fatal(err)
	}
	if errs := merged.Validate(); len(errs) != 0 {
		t.Fatalf("merged rule set invalid: %v", errs)
	}
	vrs, rep, err := p2v.Translate(merged)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ImplsOut != 5 {
		t.Errorf("impl rules = %d, want 5 (base 4 + extension)", rep.ImplsOut)
	}
	q := QuerySpec{Relations: rels(2)}
	tree, err := o.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	opt := volcano.NewOptimizer(vrs)
	plan, err := opt.Optimize(tree, o.Requirement(q))
	if err != nil {
		t.Fatal(err)
	}
	// Hash join (c1+c2+n1+2*n2) beats nested loops (c1+n1*c2) for these
	// cardinalities, and no order was requested.
	if !strings.Contains(strings.Join(plan.Algorithms(), ","), "Hash_join") {
		t.Errorf("extension algorithm not chosen: %s", plan)
	}
	// With an order requirement, the merged optimizer still works and
	// satisfies it (hash join alone cannot).
	q2 := QuerySpec{Relations: rels(2), OrderBy: core.A("C1", "a")}
	tree2, _ := o.Build(q2)
	plan2, err := volcano.NewOptimizer(vrs).Optimize(tree2, o.Requirement(q2))
	if err != nil {
		t.Fatal(err)
	}
	if !plan2.D.Order(o.Ord).Satisfies(core.OrderBy(core.A("C1", "a"))) {
		t.Errorf("order requirement lost: %s", plan2)
	}
}

// TestMergeRuleSetErrors covers the module-composition error paths.
func TestMergeRuleSetErrors(t *testing.T) {
	o := New(testCatalog(false))
	base := o.PrairieRules()
	if _, err := core.MergeRuleSets(); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := core.MergeRuleSets(base, base); err == nil {
		t.Error("duplicate rule names accepted")
	}
	other := New(testCatalog(false)) // different algebra instance
	if _, err := core.MergeRuleSets(base, other.HashJoinExtension()); err == nil {
		t.Error("cross-algebra merge accepted")
	}
	// Helper signature conflict.
	ext := core.NewRuleSet(o.Alg)
	ext.Helpers.Define("union", []core.Kind{core.KindFloat}, core.KindFloat,
		func(args []core.Value) (core.Value, error) { return args[0], nil })
	ext.AddI(o.HashJoinExtension().IRules[0])
	if _, err := core.MergeRuleSets(base, ext); err == nil {
		t.Error("helper signature conflict accepted")
	}
}
