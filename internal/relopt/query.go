package relopt

import (
	"fmt"

	"prairie/internal/core"
)

// QuerySpec describes a relational test query: an N-way join over base
// relations with linear equality join predicates on attribute "a",
// optional equality selections on attribute "b", and an optional
// requested output order.
type QuerySpec struct {
	Relations []string
	// Select adds "Ci.b = i" selection predicates on every RET.
	Select bool
	// OrderBy requests the output sorted on the given attribute
	// (zero value: no requirement).
	OrderBy core.Attr
}

// Leaf builds an initialized stored-file leaf from the catalog: its
// descriptor carries attributes, cardinality, tuple size, index metadata
// and zero cost (§2.2: annotations known before optimization are computed
// when the operator tree is initialized).
func (o *Opt) Leaf(class string) *core.Expr {
	cl := o.Cat.MustClass(class)
	d := o.Alg.NewDesc()
	d.Set(o.AT, cl.AttrSet())
	d.SetFloat(o.NR, cl.Card)
	d.SetFloat(o.TS, cl.TupleSize)
	d.Set(o.IX, cl.IndexSet())
	d.Set(o.C, core.Cost(0))
	return core.NewLeaf(class, d)
}

// Ret wraps a leaf in a RET node with the given selection predicate,
// estimating the output cardinality.
func (o *Opt) Ret(leaf *core.Expr, sel *core.Pred) *core.Expr {
	d := leaf.D.Clone()
	d.Set(o.SP, sel)
	d.SetFloat(o.NR, o.Cat.SelectCard(leaf.D.Float(o.NR), sel))
	d.Set(o.C, core.Cost(0))
	d.Unset(o.IX) // indexes describe the stored file, not the stream
	return core.NewNode(o.RET, d, leaf)
}

// Join builds an initialized JOIN node over two subtrees.
func (o *Opt) Join(l, r *core.Expr, pred *core.Pred) *core.Expr {
	d := o.Alg.NewDesc()
	d.Set(o.AT, l.D.AttrList(o.AT).Union(r.D.AttrList(o.AT)))
	d.Set(o.JP, pred)
	d.SetFloat(o.NR, o.Cat.JoinCard(l.D.Float(o.NR), r.D.Float(o.NR), pred))
	d.SetFloat(o.TS, l.D.Float(o.TS)+r.D.Float(o.TS))
	return core.NewNode(o.JOIN, d, l, r)
}

// Sort wraps a subtree in a SORT node requesting the given order.
func (o *Opt) Sort(in *core.Expr, by core.Attr) *core.Expr {
	d := in.D.Clone()
	d.Set(o.Ord, core.OrderBy(by))
	return core.NewNode(o.SORT, d, in)
}

// Build constructs the initialized operator tree for a query spec: a
// left-deep linear join chain, as in the paper's experiments.
func (o *Opt) Build(q QuerySpec) (*core.Expr, error) {
	if len(q.Relations) == 0 {
		return nil, fmt.Errorf("relopt: query needs at least one relation")
	}
	mk := func(i int) *core.Expr {
		name := q.Relations[i]
		sel := core.TruePred
		if q.Select {
			sel = core.EqConst(core.A(name, "b"), core.Int(int64(i+1)))
		}
		return o.Ret(o.Leaf(name), sel)
	}
	cur := mk(0)
	for i := 1; i < len(q.Relations); i++ {
		pred := core.EqAttr(core.A(q.Relations[i-1], "a"), core.A(q.Relations[i], "a"))
		cur = o.Join(cur, mk(i), pred)
	}
	return cur, nil
}

// Requirement returns the physical-property requirement of a query spec
// (the requested output order, if any).
func (o *Opt) Requirement(q QuerySpec) *core.Descriptor {
	req := o.Alg.NewDesc()
	if q.OrderBy != (core.Attr{}) {
		req.Set(o.Ord, core.OrderBy(q.OrderBy))
	}
	return req
}
