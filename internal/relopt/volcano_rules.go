package relopt

import (
	"prairie/internal/core"
	"prairie/internal/volcano"
)

// VolcanoRules builds the hand-coded Volcano specification of the same
// optimizer: the property classification is stated explicitly (the user
// must decide that tuple_order is physical and cost is cost, §3.1), the
// JOPR/SORT machinery is absent (Volcano's enforcer concept replaces it),
// and the per-algorithm support functions compute properties in place.
// This is the baseline the Prairie-generated optimizer is compared with.
func (o *Opt) VolcanoRules() *volcano.RuleSet {
	rs := volcano.NewRuleSet(o.Alg)
	rs.SetPhys(o.Ord)

	rs.AddTrans(&volcano.TransRule{
		Name: "join_commute",
		LHS:  core.POp(o.JOIN, "D3", core.PVar(1, ""), core.PVar(2, "")),
		RHS:  core.POp(o.JOIN, "D4", core.PVar(2, ""), core.PVar(1, "")),
		Appl: func(b *volcano.TBinding) { b.D("D4").CopyFrom(b.D("D3")) },
	})

	rs.AddTrans(&volcano.TransRule{
		Name: "join_assoc",
		LHS: core.POp(o.JOIN, "D5",
			core.POp(o.JOIN, "D3", core.PVar(1, "D1"), core.PVar(2, "D2")),
			core.PVar(3, "D4")),
		RHS: core.POp(o.JOIN, "D7",
			core.PVar(1, ""),
			core.POp(o.JOIN, "D6", core.PVar(2, ""), core.PVar(3, ""))),
		Cond: func(b *volcano.TBinding) bool {
			all := core.And(b.D("D3").Pred(o.JP), b.D("D5").Pred(o.JP))
			_, _, ok := isAssociative(all,
				b.D("D1").AttrList(o.AT), b.D("D2").AttrList(o.AT), b.D("D4").AttrList(o.AT))
			return ok
		},
		Appl: func(b *volcano.TBinding) {
			all := core.And(b.D("D3").Pred(o.JP), b.D("D5").Pred(o.JP))
			inner, outer, _ := isAssociative(all,
				b.D("D1").AttrList(o.AT), b.D("D2").AttrList(o.AT), b.D("D4").AttrList(o.AT))
			d6, d7 := b.D("D6"), b.D("D7")
			d6.Set(o.AT, b.D("D2").AttrList(o.AT).Union(b.D("D4").AttrList(o.AT)))
			d6.Set(o.JP, inner)
			d6.SetFloat(o.NR, o.Cat.JoinCard(b.D("D2").Float(o.NR), b.D("D4").Float(o.NR), inner))
			d6.SetFloat(o.TS, b.D("D2").Float(o.TS)+b.D("D4").Float(o.TS))
			d7.CopyFrom(b.D("D5"))
			d7.Set(o.JP, outer)
		},
	})

	// RET -> File_scan.
	rs.AddImpl(&volcano.ImplRule{
		Name: "ret_file_scan", Op: o.RET, Alg: o.FileScan,
		Pre: func(cx *volcano.ImplCtx) (*core.Descriptor, []*core.Descriptor) {
			d := cx.OpDesc.Clone()
			d.Set(o.Ord, core.DontCareOrder)
			return d, []*core.Descriptor{nil}
		},
		Post: func(cx *volcano.ImplCtx, d *core.Descriptor) {
			d.Set(o.C, core.Cost(fileScanCost(cx.In[0].Float(o.NR))))
		},
	})

	// RET -> Index_scan.
	rs.AddImpl(&volcano.ImplRule{
		Name: "ret_index_scan", Op: o.RET, Alg: o.IndexScan,
		Cond: func(cx *volcano.ImplCtx) bool {
			return len(cx.Kids[0].AttrList(o.IX)) > 0
		},
		Pre: func(cx *volcano.ImplCtx) (*core.Descriptor, []*core.Descriptor) {
			d := cx.OpDesc.Clone()
			ix, ok := pickIndexAttr(cx.Kids[0].AttrList(o.IX), cx.OpDesc.Order(o.Ord), cx.OpDesc.Pred(o.SP))
			if ok {
				d.Set(o.Ord, core.OrderBy(ix))
			} else {
				d.Set(o.Ord, core.DontCareOrder)
			}
			return d, []*core.Descriptor{nil}
		},
		Post: func(cx *volcano.ImplCtx, d *core.Descriptor) {
			ix, _ := pickIndexAttr(cx.In[0].AttrList(o.IX), cx.OpDesc.Order(o.Ord), cx.OpDesc.Pred(o.SP))
			usable := indexUsableForSelection(ix, cx.OpDesc.Pred(o.SP))
			d.Set(o.C, core.Cost(indexScanCost(cx.In[0].Float(o.NR), d.Float(o.NR), usable)))
		},
	})

	// JOIN -> Nested_loops.
	rs.AddImpl(&volcano.ImplRule{
		Name: "join_nested_loops", Op: o.JOIN, Alg: o.NestedLoops,
		Pre: func(cx *volcano.ImplCtx) (*core.Descriptor, []*core.Descriptor) {
			d := cx.OpDesc
			outer := core.NewDescriptor(o.Alg.Props)
			outer.Set(o.Ord, d.Order(o.Ord))
			return d.Clone(), []*core.Descriptor{outer, nil}
		},
		Post: func(cx *volcano.ImplCtx, d *core.Descriptor) {
			d.Set(o.Ord, cx.In[0].Order(o.Ord))
			d.Set(o.C, core.Cost(nestedLoopsCost(
				cx.In[0].Float(o.C), cx.In[0].Float(o.NR), cx.In[1].Float(o.C))))
		},
	})

	// JOIN -> Merge_join.
	rs.AddImpl(&volcano.ImplRule{
		Name: "join_merge_join", Op: o.JOIN, Alg: o.MergeJoin,
		Cond: func(cx *volcano.ImplCtx) bool {
			_, _, ok := orientEqui(cx.OpDesc.Pred(o.JP), cx.Kids[0].AttrList(o.AT))
			return ok
		},
		Pre: func(cx *volcano.ImplCtx) (*core.Descriptor, []*core.Descriptor) {
			l, r, _ := orientEqui(cx.OpDesc.Pred(o.JP), cx.Kids[0].AttrList(o.AT))
			d := cx.OpDesc.Clone()
			d.Set(o.Ord, core.OrderBy(l))
			lr := core.NewDescriptor(o.Alg.Props)
			lr.Set(o.Ord, core.OrderBy(l))
			rr := core.NewDescriptor(o.Alg.Props)
			rr.Set(o.Ord, core.OrderBy(r))
			return d, []*core.Descriptor{lr, rr}
		},
		Post: func(cx *volcano.ImplCtx, d *core.Descriptor) {
			d.Set(o.C, core.Cost(mergeJoinCost(
				cx.In[0].Float(o.C), cx.In[1].Float(o.C),
				cx.In[0].Float(o.NR), cx.In[1].Float(o.NR))))
		},
	})

	// Merge_sort enforcer.
	rs.AddEnforcer(&volcano.Enforcer{
		Name: "sort_merge_sort", Alg: o.Merge, Props: []core.PropID{o.Ord},
		Cond: func(cx *volcano.ImplCtx) bool {
			ord := cx.Req.Order(o.Ord)
			return cx.Req.Has(o.Ord) && !ord.IsDontCare() &&
				ord.Within(cx.OpDesc.AttrList(o.AT))
		},
		Pre: func(cx *volcano.ImplCtx) (*core.Descriptor, *core.Descriptor) {
			d := cx.OpDesc.Clone()
			d.Set(o.Ord, cx.Req.Order(o.Ord))
			return d, core.NewDescriptor(o.Alg.Props)
		},
		Post: func(cx *volcano.ImplCtx, d *core.Descriptor) {
			d.Set(o.C, core.Cost(mergeSortCost(cx.In[0].Float(o.C), d.Float(o.NR))))
		},
	})

	return rs
}
