package relopt

import (
	"prairie/internal/core"
)

// PrairieRules builds the Prairie specification of the relational
// optimizer. It follows the paper's examples literally:
//
//   - join_commute and join_assoc (Figure 3) are ordinary T-rules;
//   - join_to_jopr is the enforcer-introduction T-rule of footnote 5
//     (JOIN => JOPR over SORTed inputs);
//   - sort_merge_sort is Figure 5, join_nested_loops is Figure 6 (on
//     JOPR, per footnote 5), sort_null is Figure 7(b).
//
// The P2V pre-processor deduces SORT as an enforcer-operator, merges
// join_to_jopr away (aliasing JOPR to JOIN), turns sort_merge_sort into a
// Volcano enforcer, and drops sort_null — yielding 2 trans_rules, 4
// impl_rules and 1 enforcer.
func (o *Opt) PrairieRules() *core.RuleSet {
	rs := core.NewRuleSet(o.Alg)
	o.defineHelpers(rs)
	o.addTRules(rs)
	o.addIRules(rs)
	return rs
}

// defineHelpers registers the paper's helper functions so that the same
// rule set can also be expressed in the Prairie language (the DSL
// declares them; the Go closures below are their implementations).
func (o *Opt) defineHelpers(rs *core.RuleSet) {
	rs.Helpers.Define("union", []core.Kind{core.KindAttrs, core.KindAttrs}, core.KindAttrs,
		func(args []core.Value) (core.Value, error) {
			return args[0].(core.Attrs).Union(args[1].(core.Attrs)), nil
		})
	rs.Helpers.Define("cardinality", []core.Kind{core.KindFloat, core.KindFloat, core.KindPred}, core.KindFloat,
		func(args []core.Value) (core.Value, error) {
			l := float64(args[0].(core.Float))
			r := float64(args[1].(core.Float))
			return core.Float(o.Cat.JoinCard(l, r, args[2].(*core.Pred))), nil
		})
}

func (o *Opt) addTRules(rs *core.RuleSet) {
	// T-rule: join commutativity.
	rs.AddT(&core.TRule{
		Name: "join_commute",
		LHS:  core.POp(o.JOIN, "D3", core.PVar(1, "D1"), core.PVar(2, "D2")),
		RHS:  core.POp(o.JOIN, "D4", core.PVar(2, ""), core.PVar(1, "")),
		PostTest: func(b *core.Binding) {
			b.D("D4").CopyFrom(b.D("D3"))
		},
	})

	// T-rule: join associativity (Figure 3). The pre-test computes the
	// new inner join's attribute list; the test calls is_associative;
	// the post-test computes the remaining annotations of both new
	// nodes, using the cardinality helper.
	rs.AddT(&core.TRule{
		Name: "join_assoc",
		LHS: core.POp(o.JOIN, "D5",
			core.POp(o.JOIN, "D3", core.PVar(1, "D1"), core.PVar(2, "D2")),
			core.PVar(3, "D4")),
		RHS: core.POp(o.JOIN, "D7",
			core.PVar(1, ""),
			core.POp(o.JOIN, "D6", core.PVar(2, ""), core.PVar(3, ""))),
		PreTest: func(b *core.Binding) {
			b.D("D6").Set(o.AT, b.D("D2").AttrList(o.AT).Union(b.D("D4").AttrList(o.AT)))
		},
		Test: func(b *core.Binding) bool {
			all := core.And(b.D("D3").Pred(o.JP), b.D("D5").Pred(o.JP))
			_, _, ok := isAssociative(all,
				b.D("D1").AttrList(o.AT), b.D("D2").AttrList(o.AT), b.D("D4").AttrList(o.AT))
			return ok
		},
		PostTest: func(b *core.Binding) {
			all := core.And(b.D("D3").Pred(o.JP), b.D("D5").Pred(o.JP))
			inner, outer, _ := isAssociative(all,
				b.D("D1").AttrList(o.AT), b.D("D2").AttrList(o.AT), b.D("D4").AttrList(o.AT))
			d6, d7 := b.D("D6"), b.D("D7")
			d6.Set(o.JP, inner)
			d6.SetFloat(o.NR, o.Cat.JoinCard(b.D("D2").Float(o.NR), b.D("D4").Float(o.NR), inner))
			d6.SetFloat(o.TS, b.D("D2").Float(o.TS)+b.D("D4").Float(o.TS))
			d6.Set(o.Ord, core.DontCareOrder)
			d7.CopyFrom(b.D("D5"))
			d7.Set(o.JP, outer)
		},
	})

	// T-rule: enforcer introduction (footnote 5): a JOIN can be computed
	// as a JOPR over explicitly SORTed inputs. P2V deletes the SORT
	// nodes (SORT is an enforcer-operator), detects the rule as an
	// idempotent JOIN => JOPR mapping, drops it, and substitutes JOIN
	// for JOPR everywhere.
	rs.AddT(&core.TRule{
		Name: "join_to_jopr",
		LHS:  core.POp(o.JOIN, "D3", core.PVar(1, "D1"), core.PVar(2, "D2")),
		RHS: core.POp(o.JOPR, "D6",
			core.POp(o.SORT, "D4", core.PVar(1, "")),
			core.POp(o.SORT, "D5", core.PVar(2, ""))),
		PostTest: func(b *core.Binding) {
			b.D("D6").CopyFrom(b.D("D3"))
			b.D("D4").CopyFrom(b.D("D1"))
			b.D("D5").CopyFrom(b.D("D2"))
			if l, r, ok := orientEqui(b.D("D3").Pred(o.JP), b.D("D1").AttrList(o.AT)); ok {
				b.D("D4").Set(o.Ord, core.OrderBy(l))
				b.D("D5").Set(o.Ord, core.OrderBy(r))
			}
		},
	})
}

func (o *Opt) addIRules(rs *core.RuleSet) {
	// I-rule: RET => File_scan. A full scan delivers no useful order.
	rs.AddI(&core.IRule{
		Name: "ret_file_scan",
		LHS:  core.POp(o.RET, "D2", core.PVar(1, "D1")),
		RHS:  core.POp(o.FileScan, "D3", core.PVar(1, "")),
		PreOpt: func(b *core.Binding) {
			d3 := b.D("D3")
			d3.CopyFrom(b.D("D2"))
			d3.Set(o.Ord, core.DontCareOrder)
		},
		PostOpt: func(b *core.Binding) {
			b.D("D3").Set(o.C, core.Cost(fileScanCost(b.D("D1").Float(o.NR))))
		},
	})

	// I-rule: RET => Index_scan. Requires an index; delivers the index
	// order, probing cheaply when the selection matches the index.
	rs.AddI(&core.IRule{
		Name: "ret_index_scan",
		LHS:  core.POp(o.RET, "D2", core.PVar(1, "D1")),
		RHS:  core.POp(o.IndexScan, "D3", core.PVar(1, "")),
		Test: func(b *core.Binding) bool {
			return len(b.D("D1").AttrList(o.IX)) > 0
		},
		PreOpt: func(b *core.Binding) {
			d3 := b.D("D3")
			d3.CopyFrom(b.D("D2"))
			ix, ok := pickIndexAttr(b.D("D1").AttrList(o.IX), b.D("D2").Order(o.Ord), b.D("D2").Pred(o.SP))
			if ok {
				d3.Set(o.Ord, core.OrderBy(ix))
			} else {
				d3.Set(o.Ord, core.DontCareOrder)
			}
		},
		PostOpt: func(b *core.Binding) {
			d1, d3 := b.D("D1"), b.D("D3")
			ix, _ := pickIndexAttr(d1.AttrList(o.IX), b.D("D2").Order(o.Ord), b.D("D2").Pred(o.SP))
			usable := indexUsableForSelection(ix, b.D("D2").Pred(o.SP))
			d3.Set(o.C, core.Cost(indexScanCost(d1.Float(o.NR), d3.Float(o.NR), usable)))
		},
	})

	// I-rule: JOIN => Nested_loops (Figure 6, verbatim): the tuple order
	// of Nested_loops is the order of its outer input, expressed by
	// assigning the outer input's new descriptor in the pre-opt section.
	rs.AddI(&core.IRule{
		Name: "join_nested_loops",
		LHS:  core.POp(o.JOIN, "D3", core.PVar(1, "D1"), core.PVar(2, "D2")),
		RHS:  core.POp(o.NestedLoops, "D5", core.PVar(1, "D4"), core.PVar(2, "")),
		PreOpt: func(b *core.Binding) {
			b.D("D5").CopyFrom(b.D("D3"))
			b.D("D4").CopyFrom(b.D("D1"))
			b.D("D4").Set(o.Ord, b.D("D3").Order(o.Ord))
		},
		PostOpt: func(b *core.Binding) {
			d4 := b.D("D4")
			b.D("D5").Set(o.C, core.Cost(nestedLoopsCost(
				d4.Float(o.C), d4.Float(o.NR), b.D("D2").Float(o.C))))
		},
	})

	// I-rule: JOPR => Merge_join. In the Prairie specification the JOPR
	// operator (introduced by join_to_jopr) is implemented by merge
	// join; its sorted-input requirements are stated by assigning the
	// input descriptors' tuple orders. After P2V aliases JOPR to JOIN,
	// this becomes the JOIN => Merge_join impl_rule.
	rs.AddI(&core.IRule{
		Name: "jopr_merge_join",
		LHS:  core.POp(o.JOPR, "D3", core.PVar(1, "D1"), core.PVar(2, "D2")),
		RHS:  core.POp(o.MergeJoin, "D6", core.PVar(1, "D4"), core.PVar(2, "D5")),
		Test: func(b *core.Binding) bool {
			_, _, ok := orientEqui(b.D("D3").Pred(o.JP), b.D("D1").AttrList(o.AT))
			return ok
		},
		PreOpt: func(b *core.Binding) {
			d4, d5, d6 := b.D("D4"), b.D("D5"), b.D("D6")
			d6.CopyFrom(b.D("D3"))
			d4.CopyFrom(b.D("D1"))
			d5.CopyFrom(b.D("D2"))
			l, r, ok := orientEqui(b.D("D3").Pred(o.JP), b.D("D1").AttrList(o.AT))
			if !ok {
				// Unreachable after a passing test; keep the action
				// total for P2V's taint tracing.
				d4.Set(o.Ord, core.DontCareOrder)
				d5.Set(o.Ord, core.DontCareOrder)
				return
			}
			d4.Set(o.Ord, core.OrderBy(l))
			d5.Set(o.Ord, core.OrderBy(r))
			d6.Set(o.Ord, core.OrderBy(l))
		},
		PostOpt: func(b *core.Binding) {
			d4, d5 := b.D("D4"), b.D("D5")
			b.D("D6").Set(o.C, core.Cost(mergeJoinCost(
				d4.Float(o.C), d5.Float(o.C), d4.Float(o.NR), d5.Float(o.NR))))
		},
	})

	// I-rule: SORT => Merge_sort (Figure 5, verbatim).
	rs.AddI(&core.IRule{
		Name: "sort_merge_sort",
		LHS:  core.POp(o.SORT, "D2", core.PVar(1, "D1")),
		RHS:  core.POp(o.Merge, "D3", core.PVar(1, "")),
		Test: func(b *core.Binding) bool {
			ord := b.D("D2").Order(o.Ord)
			// The stream can only be sorted on attributes it carries.
			return !ord.IsDontCare() && ord.Within(b.D("D2").AttrList(o.AT))
		},
		PreOpt: func(b *core.Binding) {
			b.D("D3").CopyFrom(b.D("D2"))
		},
		PostOpt: func(b *core.Binding) {
			d3 := b.D("D3")
			d3.Set(o.C, core.Cost(mergeSortCost(b.D("D1").Float(o.C), d3.Float(o.NR))))
		},
	})

	// I-rule: SORT => Null (Figure 7(b), verbatim): the Null rule that
	// marks SORT as an enforcer-operator; its pre-opt propagates the
	// tuple order onto the input stream's new descriptor.
	rs.AddI(&core.IRule{
		Name: "sort_null",
		LHS:  core.POp(o.SORT, "D2", core.PVar(1, "D1")),
		RHS:  core.POp(o.Null, "D4", core.PVar(1, "D3")),
		PreOpt: func(b *core.Binding) {
			b.D("D4").CopyFrom(b.D("D2"))
			b.D("D3").CopyFrom(b.D("D1"))
			b.D("D3").Set(o.Ord, b.D("D2").Order(o.Ord))
		},
		PostOpt: func(b *core.Binding) {
			b.D("D4").Set(o.C, core.Cost(b.D("D3").Float(o.C)))
		},
	})
}
