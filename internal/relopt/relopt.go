// Package relopt implements the paper's running example: a centralized
// relational query optimizer over RET, JOIN and SORT (Table 1), with the
// algorithms File_scan, Index_scan, Nested_loops, Merge_join, Merge_sort
// and Null. It provides the optimizer twice:
//
//   - PrairieRules: the Prairie specification — including the JOPR
//     enforcer-introduction T-rule of footnote 5 and the Null SORT rule of
//     §2.5 — which the P2V pre-processor merges into a compact Volcano
//     rule set.
//   - VolcanoRules: the same optimizer hand-coded directly in the Volcano
//     format (explicit property classification and per-algorithm support
//     functions), the baseline of the experiment reported in [5].
//
// Both use the same cost model, so measured differences between them are
// attributable to the specification path alone.
package relopt

import (
	"math"

	"prairie/internal/catalog"
	"prairie/internal/core"
)

// Opt bundles the relational algebra, its property handles, and the
// catalog the cost model consults.
type Opt struct {
	Alg *core.Algebra
	Cat *catalog.Catalog

	// Property ids (Table 2 of the paper, plus "indexes" carrying the
	// catalog's index metadata on stored-file descriptors).
	Ord core.PropID // tuple_order
	JP  core.PropID // join_predicate
	SP  core.PropID // selection_predicate
	AT  core.PropID // attributes
	NR  core.PropID // num_records
	TS  core.PropID // tuple_size
	IX  core.PropID // indexes
	C   core.PropID // cost

	RET, JOIN, JOPR, SORT                              *core.Operation
	FileScan, IndexScan, NestedLoops, MergeJoin, Merge *core.Operation
	Null                                               *core.Operation
}

// New builds the relational algebra over a catalog.
func New(cat *catalog.Catalog) *Opt {
	a := core.NewAlgebra("relational")
	o := &Opt{Alg: a, Cat: cat}
	o.Ord = a.Props.Define("tuple_order", core.KindOrder)
	o.JP = a.Props.Define("join_predicate", core.KindPred)
	o.SP = a.Props.Define("selection_predicate", core.KindPred)
	o.AT = a.Props.Define("attributes", core.KindAttrs)
	o.NR = a.Props.Define("num_records", core.KindFloat)
	o.TS = a.Props.Define("tuple_size", core.KindFloat)
	o.IX = a.Props.Define("indexes", core.KindAttrs)
	o.C = a.Props.Define("cost", core.KindCost)
	o.RET = a.Operator("RET", 1)
	o.JOIN = a.Operator("JOIN", 2)
	o.JOPR = a.Operator("JOPR", 2)
	o.SORT = a.Operator("SORT", 1)
	o.FileScan = a.Algorithm("File_scan", 1)
	o.IndexScan = a.Algorithm("Index_scan", 1)
	o.NestedLoops = a.Algorithm("Nested_loops", 2)
	o.MergeJoin = a.Algorithm("Merge_join", 2)
	o.Merge = a.Algorithm("Merge_sort", 1)
	o.Null = a.Null()
	return o
}

// ---------------------------------------------------------------------------
// Shared cost model. Costs are abstract work units (tuples touched);
// both specification paths call exactly these functions.

func fileScanCost(fileCard float64) float64 { return fileCard }

// indexScanCost charges an index probe plus the matching tuples when the
// selection is an equality on the indexed attribute, or a full sweep in
// index order otherwise.
func indexScanCost(fileCard, outCard float64, usable bool) float64 {
	if usable {
		return 8 + 2*outCard
	}
	return 8 + fileCard
}

func nestedLoopsCost(outerCost, outerCard, innerCost float64) float64 {
	return outerCost + outerCard*innerCost
}

func mergeJoinCost(lCost, rCost, lCard, rCard float64) float64 {
	return lCost + rCost + lCard + rCard
}

func mergeSortCost(inCost, card float64) float64 {
	n := math.Max(card, 1)
	return inCost + n*math.Log2(n+1)
}

// isAssociative is the paper's "is_associative" helper (Figure 3): it
// checks that redistributing the predicates of two adjacent joins does
// not introduce a cross product. It returns the redistributed inner and
// outer predicates along with the verdict.
func isAssociative(all *core.Pred, leftAttrs, midAttrs, rightAttrs core.Attrs) (inner, outer *core.Pred, ok bool) {
	innerAttrs := midAttrs.Union(rightAttrs)
	inner, outer = all.SplitBy(innerAttrs)
	if len(inner.Attrs().Intersect(midAttrs)) == 0 || len(inner.Attrs().Intersect(rightAttrs)) == 0 {
		return nil, nil, false
	}
	if len(outer.Attrs().Intersect(leftAttrs)) == 0 {
		return nil, nil, false
	}
	return inner, outer, true
}

// orientEqui orients an equi-join term so the first attribute belongs to
// the side whose attribute set is leftAttrs. It reports failure for
// non-equi predicates or terms that do not span the two inputs.
func orientEqui(p *core.Pred, leftAttrs core.Attrs) (l, r core.Attr, ok bool) {
	if !p.IsEquiJoin() {
		return core.Attr{}, core.Attr{}, false
	}
	if leftAttrs.Contains(p.Left) {
		return p.Left, p.Right, true
	}
	if leftAttrs.Contains(p.Right) {
		return p.Right, p.Left, true
	}
	return core.Attr{}, core.Attr{}, false
}

// pickIndexAttr chooses the index to use for an Index_scan: the
// requested order's leading attribute if indexed, else the attribute of
// an equality selection term if indexed, else the first index.
func pickIndexAttr(indexes core.Attrs, want core.Order, sel *core.Pred) (core.Attr, bool) {
	if len(indexes) == 0 {
		return core.Attr{}, false
	}
	if !want.IsDontCare() && len(want.By) > 0 && indexes.Contains(want.By[0]) {
		return want.By[0], true
	}
	for _, t := range sel.Conjuncts() {
		if t.Op == core.PredEq && !t.AttrCmp && indexes.Contains(t.Left) {
			return t.Left, true
		}
	}
	return indexes[0], true
}

// indexUsableForSelection reports whether the chosen index attribute is
// the target of an equality selection term (enabling a cheap probe).
func indexUsableForSelection(ix core.Attr, sel *core.Pred) bool {
	for _, t := range sel.Conjuncts() {
		if t.Op == core.PredEq && !t.AttrCmp && t.Left == ix {
			return true
		}
	}
	return false
}

// HashJoinExtension is a Prairie module extending the relational algebra
// with a hash join — a demonstration of the modular rule-set composition
// the paper's conclusion proposes. Merge it with PrairieRules via
// core.MergeRuleSets and re-run P2V; no existing rule changes.
func (o *Opt) HashJoinExtension() *core.RuleSet {
	hash := o.Alg.Algorithm("Hash_join", 2)
	rs := core.NewRuleSet(o.Alg)
	rs.AddI(&core.IRule{
		Name: "join_hash_join",
		LHS:  core.POp(o.JOIN, "D3", core.PVar(1, "D1"), core.PVar(2, "D2")),
		RHS:  core.POp(hash, "D4", core.PVar(1, ""), core.PVar(2, "")),
		Test: func(b *core.Binding) bool {
			return b.D("D3").Pred(o.JP).IsEquiJoin()
		},
		PreOpt: func(b *core.Binding) {
			d4 := b.D("D4")
			d4.CopyFrom(b.D("D3"))
			d4.Set(o.Ord, core.DontCareOrder) // hashing destroys order
		},
		PostOpt: func(b *core.Binding) {
			d1, d2 := b.D("D1"), b.D("D2")
			b.D("D4").Set(o.C, core.Cost(
				d1.Float(o.C)+d2.Float(o.C)+d1.Float(o.NR)+2*d2.Float(o.NR)))
		},
	})
	return rs
}
