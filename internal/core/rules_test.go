package core

import (
	"strings"
	"testing"
)

// miniAlgebra builds the paper's running example (Table 1): RET, JOIN,
// SORT with File_scan, Index_scan, Nested_loops, Merge_join, Merge_sort
// and Null.
func miniAlgebra() *Algebra {
	a := NewAlgebra("mini")
	a.Props.Define("tuple_order", KindOrder)
	a.Props.Define("join_predicate", KindPred)
	a.Props.Define("selection_predicate", KindPred)
	a.Props.Define("attributes", KindAttrs)
	a.Props.Define("num_records", KindFloat)
	a.Props.Define("cost", KindCost)
	a.Operator("RET", 1)
	a.Operator("JOIN", 2)
	a.Operator("SORT", 1)
	a.Algorithm("File_scan", 1)
	a.Algorithm("Index_scan", 1)
	a.Algorithm("Nested_loops", 2)
	a.Algorithm("Merge_join", 2)
	a.Algorithm("Merge_sort", 1)
	a.Null()
	return a
}

func TestAlgebraRegistration(t *testing.T) {
	a := miniAlgebra()
	join := a.MustOp("JOIN")
	if join.Kind != Operator || join.Arity != 2 {
		t.Errorf("JOIN = %v/%d", join.Kind, join.Arity)
	}
	if got := a.Operator("JOIN", 2); got != join {
		t.Error("re-registration should return same operation")
	}
	if _, ok := a.Op("NOPE"); ok {
		t.Error("found unknown op")
	}
	if !a.Null().IsNull() {
		t.Error("Null algorithm not recognized")
	}
	if a.Null() != a.MustOp("Null") {
		t.Error("Null not registered by name")
	}
	ops := a.Operators()
	if len(ops) != 3 || ops[0].Name != "JOIN" {
		t.Errorf("Operators = %v", ops)
	}
	if len(a.Algorithms()) != 6 {
		t.Errorf("Algorithms = %v", a.Algorithms())
	}
	if a.NumOps() != 9 {
		t.Errorf("NumOps = %d", a.NumOps())
	}
	seen := map[int]bool{}
	for _, o := range a.Operations() {
		if seen[o.Index()] {
			t.Error("duplicate operation index")
		}
		seen[o.Index()] = true
	}
}

func TestAlgebraRedefinitionPanics(t *testing.T) {
	a := miniAlgebra()
	defer func() {
		if recover() == nil {
			t.Error("arity conflict should panic")
		}
	}()
	a.Operator("JOIN", 3)
}

func TestExprConstruction(t *testing.T) {
	a := miniAlgebra()
	d := func() *Descriptor { return a.NewDesc() }
	ret := a.MustOp("RET")
	join := a.MustOp("JOIN")
	sortOp := a.MustOp("SORT")
	e := NewNode(sortOp, d(),
		NewNode(join, d(),
			NewNode(ret, d(), NewLeaf("R1", d())),
			NewNode(ret, d(), NewLeaf("R2", d()))))
	if got := e.String(); got != "SORT(JOIN(RET(R1), RET(R2)))" {
		t.Errorf("String = %q", got)
	}
	if !e.IsLogical() || e.IsPlan() {
		t.Error("operator tree misclassified")
	}
	if e.Size() != 6 {
		t.Errorf("Size = %d", e.Size())
	}
	if got := e.Leaves(); len(got) != 2 || got[0] != "R1" || got[1] != "R2" {
		t.Errorf("Leaves = %v", got)
	}
	c := e.Clone()
	c.Kids[0].D.SetFloat(a.Props.MustLookup("num_records"), 5)
	if e.Kids[0].D.Has(a.Props.MustLookup("num_records")) {
		t.Error("Clone shares descriptors")
	}
	plan := NewNode(a.MustOp("Nested_loops"), d(),
		NewNode(a.MustOp("File_scan"), d(), NewLeaf("R1", d())),
		NewNode(a.MustOp("File_scan"), d(), NewLeaf("R2", d())))
	if !plan.IsPlan() || plan.IsLogical() {
		t.Error("access plan misclassified")
	}
	if !strings.Contains(e.Format(), "  JOIN") {
		t.Errorf("Format = %q", e.Format())
	}
}

func TestNewNodeArityPanics(t *testing.T) {
	a := miniAlgebra()
	defer func() {
		if recover() == nil {
			t.Error("wrong arity should panic")
		}
	}()
	NewNode(a.MustOp("JOIN"), a.NewDesc(), NewLeaf("R1", a.NewDesc()))
}

func TestPatternBasics(t *testing.T) {
	a := miniAlgebra()
	join := a.MustOp("JOIN")
	// JOIN(JOIN(?1:D1, ?2:D2):D3, ?3:D4):D5 — the join associativity LHS.
	p := POp(join, "D5",
		POp(join, "D3", PVar(1, "D1"), PVar(2, "D2")),
		PVar(3, "D4"))
	if got := p.String(); got != "JOIN(JOIN(?1:D1, ?2:D2):D3, ?3:D4):D5" {
		t.Errorf("String = %q", got)
	}
	if got := p.Vars(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Vars = %v", got)
	}
	if got := p.DescNames(); len(got) != 5 || got[0] != "D5" {
		t.Errorf("DescNames = %v", got)
	}
	if p.Depth() != 2 {
		t.Errorf("Depth = %d", p.Depth())
	}
	if ops := p.Ops(); len(ops) != 1 || ops[0] != join {
		t.Errorf("Ops = %v", ops)
	}
	c := p.Clone()
	c.Kids[1].Desc = "DX"
	if p.Kids[1].Desc != "D4" {
		t.Error("Clone shares nodes")
	}
	if !PVar(1, "").IsVar() || p.IsVar() {
		t.Error("IsVar wrong")
	}
	if PVar(1, "").Depth() != 0 {
		t.Error("var depth should be 0")
	}
}

func TestBinding(t *testing.T) {
	a := miniAlgebra()
	b := NewBinding(a.Props)
	d3 := b.D("D3") // auto-created
	if !b.Bound("D3") || b.Bound("D4") {
		t.Error("Bound wrong")
	}
	if b.D("D3") != d3 {
		t.Error("D should return the same descriptor")
	}
	if d3.Name != "D3" {
		t.Error("descriptor not tagged with its name")
	}
	ext := a.NewDesc()
	b.Bind("D4", ext)
	if b.D("D4") != ext {
		t.Error("Bind failed")
	}
	names := b.Names()
	if len(names) != 2 || names[0] != "D3" {
		t.Errorf("Names = %v", names)
	}
}

func TestTRuleCondAndPost(t *testing.T) {
	a := miniAlgebra()
	nr := a.Props.MustLookup("num_records")
	join := a.MustOp("JOIN")
	var postRan bool
	r := &TRule{
		Name: "commute",
		LHS:  POp(join, "D3", PVar(1, "D1"), PVar(2, "D2")),
		RHS:  POp(join, "D4", PVar(2, ""), PVar(1, "")),
		PreTest: func(b *Binding) {
			b.D("D4").SetFloat(nr, b.D("D3").Float(nr))
		},
		Test:     func(b *Binding) bool { return b.D("D4").Float(nr) > 10 },
		PostTest: func(b *Binding) { postRan = true },
	}
	b := NewBinding(a.Props)
	b.D("D3").SetFloat(nr, 5)
	if r.RunCond(b) {
		t.Error("test should fail for 5")
	}
	b2 := NewBinding(a.Props)
	b2.D("D3").SetFloat(nr, 50)
	if !r.RunCond(b2) {
		t.Error("test should pass for 50")
	}
	r.RunPost(b2)
	if !postRan {
		t.Error("post-test did not run")
	}
	// nil test means TRUE; nil actions are no-ops.
	r2 := &TRule{Name: "always", LHS: r.LHS, RHS: r.RHS}
	if !r2.RunCond(NewBinding(a.Props)) {
		t.Error("nil test should be TRUE")
	}
	r2.RunPost(NewBinding(a.Props))
	if !strings.Contains(r.String(), "==>") {
		t.Errorf("String = %q", r.String())
	}
}

func TestIRuleAccessors(t *testing.T) {
	a := miniAlgebra()
	join := a.MustOp("JOIN")
	nl := a.MustOp("Nested_loops")
	r := &IRule{
		Name: "nl",
		LHS:  POp(join, "D3", PVar(1, "D1"), PVar(2, "D2")),
		RHS:  POp(nl, "D5", PVar(1, "D4"), PVar(2, "")),
	}
	if r.Op() != join || r.Alg() != nl || r.IsNullRule() {
		t.Error("accessors wrong")
	}
	if !r.RunTest(NewBinding(a.Props)) {
		t.Error("nil test should be TRUE")
	}
	sortOp := a.MustOp("SORT")
	nullRule := &IRule{
		Name: "null_sort",
		LHS:  POp(sortOp, "D2", PVar(1, "D1")),
		RHS:  POp(a.Null(), "D4", PVar(1, "D3")),
	}
	if !nullRule.IsNullRule() {
		t.Error("Null rule not detected")
	}
}

func TestHelpers(t *testing.T) {
	h := NewHelpers()
	h.Define("twice", []Kind{KindFloat}, KindFloat, func(args []Value) (Value, error) {
		return Float(2 * float64(args[0].(Float))), nil
	})
	v, err := h.Call("twice", Float(21))
	if err != nil || !v.Equal(Float(42)) {
		t.Errorf("Call = %v, %v", v, err)
	}
	if _, err := h.Call("missing"); err == nil {
		t.Error("missing helper should error")
	}
	if hp, ok := h.Lookup("twice"); !ok || hp.Result != KindFloat {
		t.Error("Lookup failed")
	}
	if got := h.Names(); len(got) != 1 || got[0] != "twice" {
		t.Errorf("Names = %v", got)
	}
}

func TestRuleSetEnforcerOperators(t *testing.T) {
	a := miniAlgebra()
	rs := NewRuleSet(a)
	sortOp := a.MustOp("SORT")
	join := a.MustOp("JOIN")
	rs.AddI(&IRule{Name: "null_sort",
		LHS: POp(sortOp, "D2", PVar(1, "D1")),
		RHS: POp(a.Null(), "D4", PVar(1, "D3"))})
	rs.AddI(&IRule{Name: "merge_sort",
		LHS: POp(sortOp, "D2", PVar(1, "D1")),
		RHS: POp(a.MustOp("Merge_sort"), "D3", PVar(1, ""))})
	rs.AddI(&IRule{Name: "nl",
		LHS: POp(join, "D3", PVar(1, "D1"), PVar(2, "D2")),
		RHS: POp(a.MustOp("Nested_loops"), "D5", PVar(1, "D4"), PVar(2, ""))})
	enf := rs.EnforcerOperators()
	if len(enf) != 1 || enf[0] != sortOp {
		t.Errorf("EnforcerOperators = %v", enf)
	}
	if got := rs.IRulesFor(sortOp); len(got) != 2 {
		t.Errorf("IRulesFor(SORT) = %d rules", len(got))
	}
	if got := rs.IRulesFor(a.MustOp("RET")); len(got) != 0 {
		t.Errorf("IRulesFor(RET) = %d rules", len(got))
	}
}
