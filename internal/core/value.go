// Package core implements the Prairie model of Das & Batory (ICDE 1995):
// operators and algorithms as first-class objects, uniform descriptors
// (property lists) on every operator-tree node, transformation rules
// (T-rules) and implementation rules (I-rules), and the Null algorithm.
//
// The package is deliberately engine-agnostic: it defines the algebra that
// describes a search space and cost model, but no search strategy. The
// companion package internal/volcano supplies a Volcano-style top-down
// search engine, and internal/p2v translates core rule sets into that
// engine's format, mirroring the paper's P2V pre-processor.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind enumerates the types a descriptor property (and hence a Value) can
// have. The kinds cover the properties of the paper's Table 2: predicates,
// tuple orders, attribute lists, scalar statistics, and cost.
type Kind uint8

// Property kinds.
const (
	KindInvalid Kind = iota
	KindInt          // 64-bit integer
	KindFloat        // statistics such as num_records, tuple_size
	KindBool         // flags
	KindString       // symbolic values
	KindOrder        // tuple order of a stream (possibly DONT_CARE)
	KindAttrs        // attribute list/set
	KindPred         // selection or join predicate
	KindCost         // estimated cost; identified specially by P2V
)

// String returns the DSL spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	case KindOrder:
		return "order"
	case KindAttrs:
		return "attrs"
	case KindPred:
		return "pred"
	case KindCost:
		return "cost"
	default:
		return "invalid"
	}
}

// KindByName maps a DSL type name to its Kind. It reports false for an
// unknown name.
func KindByName(name string) (Kind, bool) {
	for _, k := range []Kind{KindInt, KindFloat, KindBool, KindString, KindOrder, KindAttrs, KindPred, KindCost} {
		if k.String() == name {
			return k, true
		}
	}
	return KindInvalid, false
}

// Value is the interface implemented by every descriptor property value.
// Values are immutable: rule actions replace values, they never mutate
// them in place. Equal and Hash must agree (equal values hash equally),
// because the optimizer engine uses them for duplicate expression
// detection and winner memoization.
type Value interface {
	Kind() Kind
	Equal(Value) bool
	Hash() uint64
	String() string
	// IsDontCare reports whether the value is the distinguished
	// "don't care" of its kind (the paper's DONT_CARE tuple order,
	// generalized to every kind).
	IsDontCare() bool
}

// DefaultValue returns the zero value for a kind. Descriptor.Get returns
// it for unset properties so rule actions are total functions.
func DefaultValue(k Kind) Value {
	switch k {
	case KindInt:
		return Int(0)
	case KindFloat:
		return Float(0)
	case KindBool:
		return Bool(false)
	case KindString:
		return Str("")
	case KindOrder:
		return DontCareOrder
	case KindAttrs:
		return Attrs(nil)
	case KindPred:
		return TruePred
	case KindCost:
		return Cost(0)
	default:
		return nil
	}
}

// ---------------------------------------------------------------------------
// Scalar values

// Int is an integer property value.
type Int int64

// Kind implements Value.
func (Int) Kind() Kind { return KindInt }

// Equal implements Value.
func (v Int) Equal(o Value) bool { w, ok := o.(Int); return ok && v == w }

// Hash implements Value.
func (v Int) Hash() uint64 { return hashUint64(uint64(v)) ^ 0x11 }

// String implements Value.
func (v Int) String() string { return fmt.Sprintf("%d", int64(v)) }

// IsDontCare implements Value.
func (Int) IsDontCare() bool { return false }

// Float is a floating-point property value (cardinalities, sizes).
type Float float64

// Kind implements Value.
func (Float) Kind() Kind { return KindFloat }

// Equal implements Value.
func (v Float) Equal(o Value) bool { w, ok := o.(Float); return ok && v == w }

// Hash implements Value.
func (v Float) Hash() uint64 { return hashUint64(math.Float64bits(float64(v))) ^ 0x22 }

// String implements Value.
func (v Float) String() string { return fmt.Sprintf("%g", float64(v)) }

// IsDontCare implements Value.
func (Float) IsDontCare() bool { return false }

// Bool is a boolean property value.
type Bool bool

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }

// Equal implements Value.
func (v Bool) Equal(o Value) bool { w, ok := o.(Bool); return ok && v == w }

// Hash implements Value.
func (v Bool) Hash() uint64 {
	if v {
		return 0x9e3779b97f4a7c15
	}
	return 0x33
}

// String implements Value.
func (v Bool) String() string { return fmt.Sprintf("%t", bool(v)) }

// IsDontCare implements Value.
func (Bool) IsDontCare() bool { return false }

// Str is a string property value.
type Str string

// Kind implements Value.
func (Str) Kind() Kind { return KindString }

// Equal implements Value.
func (v Str) Equal(o Value) bool { w, ok := o.(Str); return ok && v == w }

// Hash implements Value.
func (v Str) Hash() uint64 { return hashString(string(v)) ^ 0x44 }

// String implements Value.
func (v Str) String() string { return string(v) }

// IsDontCare implements Value.
func (Str) IsDontCare() bool { return false }

// Cost is an estimated execution cost. It has its own kind so that the
// P2V pre-processor can classify cost properties automatically ("a
// property with a type COST is classified as a cost property", §3.1).
type Cost float64

// Kind implements Value.
func (Cost) Kind() Kind { return KindCost }

// Equal implements Value.
func (v Cost) Equal(o Value) bool { w, ok := o.(Cost); return ok && v == w }

// Hash implements Value.
func (v Cost) Hash() uint64 { return hashUint64(math.Float64bits(float64(v))) ^ 0x55 }

// String implements Value.
func (v Cost) String() string { return fmt.Sprintf("%g", float64(v)) }

// IsDontCare implements Value.
func (Cost) IsDontCare() bool { return false }

// ---------------------------------------------------------------------------
// Attributes

// Attr names an attribute of a stored file or stream. Rel is the base
// relation or class the attribute originates from; Name is the attribute
// name within it.
type Attr struct {
	Rel  string
	Name string
}

// String returns "Rel.Name".
func (a Attr) String() string { return a.Rel + "." + a.Name }

// A returns an Attr; it is a convenience constructor for rule code.
func A(rel, name string) Attr { return Attr{Rel: rel, Name: name} }

// Attrs is an attribute list. It is treated as a set by Equal and Hash
// (order-insensitive), which matches how the paper's rules use attribute
// lists (e.g., "union").
type Attrs []Attr

// Kind implements Value.
func (Attrs) Kind() Kind { return KindAttrs }

// Equal implements Value; it is set equality.
func (v Attrs) Equal(o Value) bool {
	w, ok := o.(Attrs)
	if !ok || len(v) != len(w) {
		return false
	}
	return v.ContainsAll(w) && w.ContainsAll(v)
}

// Hash implements Value; it is order-insensitive.
func (v Attrs) Hash() uint64 {
	var h uint64 = 0x66
	for _, a := range v {
		h ^= hashString(a.Rel)*31 ^ hashString(a.Name) // commutative combine
	}
	return h
}

// String implements Value.
func (v Attrs) String() string {
	parts := make([]string, len(v))
	for i, a := range v {
		parts[i] = a.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// IsDontCare implements Value.
func (Attrs) IsDontCare() bool { return false }

// Contains reports whether a is in the list.
func (v Attrs) Contains(a Attr) bool {
	for _, b := range v {
		if a == b {
			return true
		}
	}
	return false
}

// ContainsAll reports whether every attribute of w is in v.
func (v Attrs) ContainsAll(w Attrs) bool {
	for _, a := range w {
		if !v.Contains(a) {
			return false
		}
	}
	return true
}

// Union returns the set union of v and w, preserving v's order first.
func (v Attrs) Union(w Attrs) Attrs {
	out := make(Attrs, 0, len(v)+len(w))
	out = append(out, v...)
	for _, a := range w {
		if !out.Contains(a) {
			out = append(out, a)
		}
	}
	return out
}

// Intersect returns the attributes present in both v and w.
func (v Attrs) Intersect(w Attrs) Attrs {
	var out Attrs
	for _, a := range v {
		if w.Contains(a) {
			out = append(out, a)
		}
	}
	return out
}

// Minus returns the attributes of v not present in w.
func (v Attrs) Minus(w Attrs) Attrs {
	var out Attrs
	for _, a := range v {
		if !w.Contains(a) {
			out = append(out, a)
		}
	}
	return out
}

// Sorted returns a copy sorted lexicographically; useful for stable output.
func (v Attrs) Sorted() Attrs {
	out := append(Attrs(nil), v...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel < out[j].Rel
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ---------------------------------------------------------------------------
// Tuple orders

// Order describes the tuple order of a stream: the sequence of attributes
// the stream is sorted on, or the distinguished DONT_CARE order meaning
// "any order is acceptable" (Table 2).
type Order struct {
	dontCare bool
	By       []Attr
}

// DontCareOrder is the paper's DONT_CARE tuple order.
var DontCareOrder = Order{dontCare: true}

// OrderBy returns an order sorted on the given attributes, major first.
func OrderBy(attrs ...Attr) Order { return Order{By: attrs} }

// Kind implements Value.
func (Order) Kind() Kind { return KindOrder }

// Equal implements Value; attribute sequence is significant.
func (v Order) Equal(o Value) bool {
	w, ok := o.(Order)
	if !ok || v.dontCare != w.dontCare || len(v.By) != len(w.By) {
		return false
	}
	for i := range v.By {
		if v.By[i] != w.By[i] {
			return false
		}
	}
	return true
}

// Hash implements Value.
func (v Order) Hash() uint64 {
	if v.dontCare {
		return 0x77
	}
	h := uint64(0x88)
	for _, a := range v.By {
		h = h*1099511628211 ^ hashString(a.Rel)
		h = h*1099511628211 ^ hashString(a.Name)
	}
	return h
}

// String implements Value.
func (v Order) String() string {
	if v.dontCare {
		return "DONT_CARE"
	}
	parts := make([]string, len(v.By))
	for i, a := range v.By {
		parts[i] = a.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// IsDontCare implements Value.
func (v Order) IsDontCare() bool { return v.dontCare }

// Within reports whether every attribute of the order is in the given
// attribute set: a stream can only be sorted on attributes it carries.
// Rule tests use it to reject unsatisfiable sort requests.
func (v Order) Within(attrs Attrs) bool {
	if v.dontCare {
		return true
	}
	return attrs.ContainsAll(Attrs(v.By))
}

// Satisfies reports whether a stream ordered as v satisfies a request for
// order w: either w is DONT_CARE, or v's attribute sequence has w's as a
// prefix (a stream sorted on <a, b> is also sorted on <a>).
func (v Order) Satisfies(w Order) bool {
	if w.dontCare {
		return true
	}
	if v.dontCare || len(v.By) < len(w.By) {
		return false
	}
	for i := range w.By {
		if v.By[i] != w.By[i] {
			return false
		}
	}
	return true
}
