package core

import (
	"fmt"
	"strings"
)

// Expr is a node of an operator tree (§2.1): a rooted tree whose interior
// nodes are database operations and whose leaves are stored files. When
// every interior node is an algorithm the tree is an access plan.
type Expr struct {
	// Op is the node's operation; nil marks a stored-file leaf.
	Op *Operation
	// D is the node's descriptor. Every node has its own.
	D *Descriptor
	// Kids are the essential parameters (stream or file inputs).
	Kids []*Expr
	// File names the stored file for a leaf node.
	File string
}

// NewLeaf returns a stored-file leaf with the given descriptor (typically
// initialized from the catalog: attributes, num_records, tuple_size).
func NewLeaf(file string, d *Descriptor) *Expr {
	return &Expr{File: file, D: d}
}

// NewNode returns an interior node.
func NewNode(op *Operation, d *Descriptor, kids ...*Expr) *Expr {
	if op == nil {
		panic("core: NewNode with nil operation")
	}
	if len(kids) != op.Arity {
		panic(fmt.Sprintf("core: %s expects %d inputs, got %d", op.Name, op.Arity, len(kids)))
	}
	return &Expr{Op: op, D: d, Kids: kids}
}

// IsLeaf reports whether the node is a stored file.
func (e *Expr) IsLeaf() bool { return e.Op == nil }

// IsPlan reports whether the tree rooted at e is an access plan (all
// interior nodes are algorithms).
func (e *Expr) IsPlan() bool {
	if e.IsLeaf() {
		return true
	}
	if e.Op.Kind != Algorithm {
		return false
	}
	for _, k := range e.Kids {
		if !k.IsPlan() {
			return false
		}
	}
	return true
}

// IsLogical reports whether the tree rooted at e contains only abstract
// operators (an operator tree in the paper's strict sense).
func (e *Expr) IsLogical() bool {
	if e.IsLeaf() {
		return true
	}
	if e.Op.Kind != Operator {
		return false
	}
	for _, k := range e.Kids {
		if !k.IsLogical() {
			return false
		}
	}
	return true
}

// Size returns the number of nodes in the tree.
func (e *Expr) Size() int {
	n := 1
	for _, k := range e.Kids {
		n += k.Size()
	}
	return n
}

// Leaves appends the tree's stored-file names left to right.
func (e *Expr) Leaves() []string {
	var out []string
	var walk func(*Expr)
	walk = func(x *Expr) {
		if x.IsLeaf() {
			out = append(out, x.File)
			return
		}
		for _, k := range x.Kids {
			walk(k)
		}
	}
	walk(e)
	return out
}

// Clone returns a deep copy of the tree (descriptors cloned too).
func (e *Expr) Clone() *Expr {
	c := &Expr{Op: e.Op, File: e.File}
	if e.D != nil {
		c.D = e.D.Clone()
	}
	c.Kids = make([]*Expr, len(e.Kids))
	for i, k := range e.Kids {
		c.Kids[i] = k.Clone()
	}
	return c
}

// String renders the tree in the paper's functional notation, e.g.
// "SORT(JOIN(RET(R1), RET(R2)))".
func (e *Expr) String() string {
	if e.IsLeaf() {
		return e.File
	}
	parts := make([]string, len(e.Kids))
	for i, k := range e.Kids {
		parts[i] = k.String()
	}
	return e.Op.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Format renders the tree as an indented multi-line outline with
// descriptor annotations; useful for debugging and the CLIs.
func (e *Expr) Format() string {
	var b strings.Builder
	e.format(&b, 0)
	return b.String()
}

func (e *Expr) format(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if e.IsLeaf() {
		b.WriteString(e.File)
	} else {
		b.WriteString(e.Op.Name)
	}
	if e.D != nil {
		b.WriteString(" : ")
		b.WriteString(e.D.String())
	}
	b.WriteByte('\n')
	for _, k := range e.Kids {
		k.format(b, depth+1)
	}
}

// ---------------------------------------------------------------------------
// Patterns

// PatNode is a node of a rule pattern: the expression shapes on the two
// sides of a T-rule or I-rule. A pattern leaf with Var != 0 matches any
// input (the paper's ?1, ?2, ...); an interior node matches a specific
// operation. Desc names the descriptor variable bound at this node
// ("D3"). On the right-hand side a variable leaf may also carry a *new*
// descriptor name (e.g. Nested_loops(S1:D4, S2) in I-rule (5)), which is
// how rules constrain the properties an input must be optimized to.
type PatNode struct {
	Op   *Operation
	Var  int // 1-based variable index for leaves; 0 for interior nodes
	Desc string
	Kids []*PatNode
}

// PVar returns a variable pattern leaf ?i, optionally tagged with a
// descriptor name (pass "" for none).
func PVar(i int, desc string) *PatNode { return &PatNode{Var: i, Desc: desc} }

// POp returns an interior pattern node for op with descriptor name desc.
func POp(op *Operation, desc string, kids ...*PatNode) *PatNode {
	if len(kids) != op.Arity {
		panic(fmt.Sprintf("core: pattern %s expects %d inputs, got %d", op.Name, op.Arity, len(kids)))
	}
	return &PatNode{Op: op, Desc: desc, Kids: kids}
}

// IsVar reports whether the node is a variable leaf.
func (p *PatNode) IsVar() bool { return p.Op == nil }

// Vars appends the variable indices appearing in the pattern, in
// left-to-right order.
func (p *PatNode) Vars() []int {
	var out []int
	var walk func(*PatNode)
	walk = func(n *PatNode) {
		if n.IsVar() {
			out = append(out, n.Var)
			return
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(p)
	return out
}

// DescNames appends every descriptor variable name in the pattern
// (interior nodes and tagged variable leaves), in pre-order.
func (p *PatNode) DescNames() []string {
	var out []string
	var walk func(*PatNode)
	walk = func(n *PatNode) {
		if n.Desc != "" {
			out = append(out, n.Desc)
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(p)
	return out
}

// Depth returns the pattern's operator nesting depth (a single operator
// over variables has depth 1; variables have depth 0).
func (p *PatNode) Depth() int {
	if p.IsVar() {
		return 0
	}
	max := 0
	for _, k := range p.Kids {
		if d := k.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Ops appends the distinct operations used by the pattern.
func (p *PatNode) Ops() []*Operation {
	var out []*Operation
	seen := map[*Operation]bool{}
	var walk func(*PatNode)
	walk = func(n *PatNode) {
		if n.Op != nil && !seen[n.Op] {
			seen[n.Op] = true
			out = append(out, n.Op)
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(p)
	return out
}

// String renders the pattern in the paper's notation, e.g.
// "JOIN(JOIN(?1:D1, ?2:D2):D3, ?3:D4):D5".
func (p *PatNode) String() string {
	var s string
	if p.IsVar() {
		s = fmt.Sprintf("?%d", p.Var)
	} else {
		parts := make([]string, len(p.Kids))
		for i, k := range p.Kids {
			parts[i] = k.String()
		}
		s = p.Op.Name + "(" + strings.Join(parts, ", ") + ")"
	}
	if p.Desc != "" {
		s += ":" + p.Desc
	}
	return s
}

// Clone returns a deep copy of the pattern.
func (p *PatNode) Clone() *PatNode {
	c := &PatNode{Op: p.Op, Var: p.Var, Desc: p.Desc}
	c.Kids = make([]*PatNode, len(p.Kids))
	for i, k := range p.Kids {
		c.Kids[i] = k.Clone()
	}
	return c
}
