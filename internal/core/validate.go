package core

import (
	"fmt"
)

// ValidationError describes one specification problem found by Validate.
type ValidationError struct {
	Rule string // rule name, or "" for algebra-level problems
	Msg  string
}

func (e ValidationError) Error() string {
	if e.Rule == "" {
		return "ruleset: " + e.Msg
	}
	return "rule " + e.Rule + ": " + e.Msg
}

// Validate checks that a rule set is well-formed before it is handed to
// the P2V pre-processor:
//
//   - T-rule sides contain only abstract operators; I-rules map a single
//     operator pattern to a single algorithm pattern.
//   - Pattern variables on a right side all occur on the left side, and
//     left-side variables are distinct.
//   - Descriptor variable names are unique within a rule, and right-side
//     interior nodes introduce new names (a T-rule never changes
//     left-hand-side descriptors, §2.3).
//   - T-rule right-side variable leaves do not carry descriptor names
//     (that form is reserved for I-rules, footnote 5 notwithstanding:
//     enforcer introduction uses interior SORT nodes).
//   - Null rules have the §2.5 shape: single-input operator to Null with
//     a fresh input descriptor.
//   - Every abstract operator has at least one I-rule, so every operator
//     tree can become an access plan.
//
// It also records, on each algorithm, the operators it implements.
// Validate returns all problems found, not just the first.
func (rs *RuleSet) Validate() []error {
	var errs []error
	bad := func(rule, format string, args ...interface{}) {
		errs = append(errs, ValidationError{Rule: rule, Msg: fmt.Sprintf(format, args...)})
	}

	names := map[string]bool{}
	for _, r := range rs.TRules {
		if r.Name == "" {
			bad("", "T-rule with empty name")
			continue
		}
		if names[r.Name] {
			bad(r.Name, "duplicate rule name")
		}
		names[r.Name] = true
		if r.LHS == nil || r.RHS == nil {
			bad(r.Name, "missing pattern side")
			continue
		}
		if r.LHS.IsVar() {
			bad(r.Name, "left side must be an operator expression")
			continue
		}
		for _, side := range []*PatNode{r.LHS, r.RHS} {
			for _, op := range side.Ops() {
				if op.Kind != Operator {
					bad(r.Name, "T-rule mentions algorithm %s; T-rule sides involve only abstract operators", op.Name)
				}
			}
		}
		checkVars(r.Name, r.LHS, r.RHS, &errs)
		checkDescs(r.Name, r.LHS, r.RHS, false, &errs)
	}

	for _, r := range rs.IRules {
		if r.Name == "" {
			bad("", "I-rule with empty name")
			continue
		}
		if names[r.Name] {
			bad(r.Name, "duplicate rule name")
		}
		names[r.Name] = true
		if r.LHS == nil || r.RHS == nil || r.LHS.IsVar() || r.RHS.IsVar() {
			bad(r.Name, "I-rule sides must be operation expressions")
			continue
		}
		if r.LHS.Depth() != 1 {
			bad(r.Name, "I-rule left side must be a single operator over inputs")
		}
		if r.RHS.Depth() != 1 {
			bad(r.Name, "I-rule right side must be a single algorithm over inputs")
		}
		if r.Op().Kind != Operator {
			bad(r.Name, "I-rule left side %s is not an abstract operator", r.Op().Name)
		}
		if r.Alg().Kind != Algorithm {
			bad(r.Name, "I-rule right side %s is not an algorithm", r.Alg().Name)
		}
		if r.Op().Kind == Operator && r.Alg().Kind == Algorithm {
			if r.IsNullRule() {
				if r.Op().Arity != 1 {
					bad(r.Name, "Null rules require a single-input operator (got arity %d)", r.Op().Arity)
				}
				if len(r.RHS.Kids) == 1 && r.RHS.Kids[0].Desc == "" {
					bad(r.Name, "Null rule input needs a fresh descriptor to propagate properties (§2.5)")
				}
			} else if r.Alg().Arity != r.Op().Arity {
				bad(r.Name, "algorithm %s arity %d != operator %s arity %d",
					r.Alg().Name, r.Alg().Arity, r.Op().Name, r.Op().Arity)
			}
			recordImplements(r.Alg(), r.Op())
		}
		checkVars(r.Name, r.LHS, r.RHS, &errs)
		checkDescs(r.Name, r.LHS, r.RHS, true, &errs)
	}

	// Every operator must be implementable: either directly by an
	// I-rule, or via a T-rule whose root rewrites it into an
	// implementable operator (footnote 5's JOIN => JOPR pattern).
	implemented := map[*Operation]bool{}
	for _, r := range rs.IRules {
		implemented[r.Op()] = true
	}
	for changed := true; changed; {
		changed = false
		for _, r := range rs.TRules {
			if r.LHS == nil || r.RHS == nil || r.LHS.IsVar() || implemented[r.LHS.Op] {
				continue
			}
			if r.RHS.IsVar() || implemented[r.RHS.Op] {
				implemented[r.LHS.Op] = true
				changed = true
			}
		}
	}
	for _, op := range rs.Algebra.Operators() {
		if !implemented[op] {
			bad("", "operator %s has no I-rule and no T-rule rewriting it to an implementable operator", op.Name)
		}
	}

	if n := len(rs.Algebra.Props.CostProps()); n != 1 {
		bad("", "rule set must define exactly one COST-kind property (found %d)", n)
	}
	return errs
}

func recordImplements(alg, op *Operation) {
	for _, o := range alg.Implements {
		if o == op {
			return
		}
	}
	alg.Implements = append(alg.Implements, op)
}

func checkVars(rule string, lhs, rhs *PatNode, errs *[]error) {
	lvars := map[int]bool{}
	for _, v := range lhs.Vars() {
		if v <= 0 {
			*errs = append(*errs, ValidationError{rule, fmt.Sprintf("variable index %d must be positive", v)})
		}
		if lvars[v] {
			*errs = append(*errs, ValidationError{rule, fmt.Sprintf("variable ?%d repeated on left side", v)})
		}
		lvars[v] = true
	}
	for _, v := range rhs.Vars() {
		if !lvars[v] {
			*errs = append(*errs, ValidationError{rule, fmt.Sprintf("variable ?%d on right side is unbound", v)})
		}
	}
}

func checkDescs(rule string, lhs, rhs *PatNode, isIRule bool, errs *[]error) {
	seen := map[string]bool{}
	for _, side := range []*PatNode{lhs, rhs} {
		for _, n := range side.DescNames() {
			if seen[n] {
				*errs = append(*errs, ValidationError{rule, fmt.Sprintf("descriptor %s bound more than once", n)})
			}
			seen[n] = true
		}
	}
	if lhs.Desc == "" {
		*errs = append(*errs, ValidationError{rule, "left-side root needs a descriptor name"})
	}
	if !rhs.IsVar() && rhs.Desc == "" {
		*errs = append(*errs, ValidationError{rule, "right-side root needs a descriptor name"})
	}
	_ = isIRule // variable-leaf descriptors are legal on both rule kinds:
	// left-side ones ("?1:D1") read input properties, right-side ones
	// ("?1:D4") state required input properties (I-rules, and T-rules
	// rewritten by P2V's enforcer-operator deletion).
}
