package core

import (
	"fmt"
	"sort"
)

// PropID identifies a property within a PropertySet. IDs are dense and
// start at 0, so descriptors can store values in a flat slice.
type PropID int

// NoProp is the invalid property id.
const NoProp PropID = -1

// Property is a named, typed descriptor slot, user-defined per optimizer
// (Table 2 of the paper lists a typical set: join_predicate,
// selection_predicate, tuple_order, num_records, tuple_size,
// projected_attributes, attributes, cost).
type Property struct {
	ID   PropID
	Name string
	Kind Kind
}

// PropertySet is the registry of properties for one optimizer algebra.
// All descriptors of the algebra share a PropertySet. In Prairie, unlike
// Volcano, the user does not classify properties as logical, physical, or
// operator arguments: that classification is computed by the P2V
// pre-processor (package internal/p2v).
type PropertySet struct {
	props  []Property
	byName map[string]PropID
}

// NewPropertySet returns an empty property registry.
func NewPropertySet() *PropertySet {
	return &PropertySet{byName: make(map[string]PropID)}
}

// Define registers a property and returns its id. Redefining a name with
// the same kind returns the existing id; with a different kind it panics
// (a specification bug).
func (ps *PropertySet) Define(name string, kind Kind) PropID {
	if id, ok := ps.byName[name]; ok {
		if ps.props[id].Kind != kind {
			panic(fmt.Sprintf("core: property %q redefined with kind %v (was %v)", name, kind, ps.props[id].Kind))
		}
		return id
	}
	id := PropID(len(ps.props))
	ps.props = append(ps.props, Property{ID: id, Name: name, Kind: kind})
	ps.byName[name] = id
	return id
}

// Lookup returns the id of a named property.
func (ps *PropertySet) Lookup(name string) (PropID, bool) {
	id, ok := ps.byName[name]
	return id, ok
}

// MustLookup is Lookup that panics on a missing name; for rule code where
// the property is known to exist.
func (ps *PropertySet) MustLookup(name string) PropID {
	id, ok := ps.byName[name]
	if !ok {
		panic("core: unknown property " + name)
	}
	return id
}

// Len returns the number of registered properties.
func (ps *PropertySet) Len() int { return len(ps.props) }

// At returns the property with the given id.
func (ps *PropertySet) At(id PropID) Property { return ps.props[id] }

// Names returns all property names in definition order.
func (ps *PropertySet) Names() []string {
	out := make([]string, len(ps.props))
	for i, p := range ps.props {
		out[i] = p.Name
	}
	return out
}

// CostProps returns the ids of all properties of kind COST. The P2V
// pre-processor requires exactly one.
func (ps *PropertySet) CostProps() []PropID {
	var out []PropID
	for _, p := range ps.props {
		if p.Kind == KindCost {
			out = append(out, p.ID)
		}
	}
	return out
}

// SortedIDs returns all ids ordered by property name; used for stable
// report output.
func (ps *PropertySet) SortedIDs() []PropID {
	out := make([]PropID, len(ps.props))
	for i := range ps.props {
		out[i] = PropID(i)
	}
	sort.Slice(out, func(i, j int) bool { return ps.props[out[i]].Name < ps.props[out[j]].Name })
	return out
}
