package core

import (
	"strings"
	"testing"
)

// validMiniRuleSet builds a complete, valid rule set over miniAlgebra.
func validMiniRuleSet() *RuleSet {
	a := miniAlgebra()
	rs := NewRuleSet(a)
	ret, join, sortOp := a.MustOp("RET"), a.MustOp("JOIN"), a.MustOp("SORT")
	rs.AddT(&TRule{Name: "join_commute",
		LHS: POp(join, "D3", PVar(1, "D1"), PVar(2, "D2")),
		RHS: POp(join, "D4", PVar(2, ""), PVar(1, ""))})
	rs.AddI(&IRule{Name: "file_scan",
		LHS: POp(ret, "D2", PVar(1, "D1")),
		RHS: POp(a.MustOp("File_scan"), "D3", PVar(1, ""))})
	rs.AddI(&IRule{Name: "nested_loops",
		LHS: POp(join, "D3", PVar(1, "D1"), PVar(2, "D2")),
		RHS: POp(a.MustOp("Nested_loops"), "D5", PVar(1, "D4"), PVar(2, ""))})
	rs.AddI(&IRule{Name: "merge_sort",
		LHS: POp(sortOp, "D2", PVar(1, "D1")),
		RHS: POp(a.MustOp("Merge_sort"), "D3", PVar(1, ""))})
	rs.AddI(&IRule{Name: "null_sort",
		LHS: POp(sortOp, "D2", PVar(1, "D1")),
		RHS: POp(a.Null(), "D4", PVar(1, "D3"))})
	return rs
}

func errsContain(errs []error, substr string) bool {
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return true
		}
	}
	return false
}

func TestValidateAccepts(t *testing.T) {
	rs := validMiniRuleSet()
	if errs := rs.Validate(); len(errs) != 0 {
		t.Fatalf("valid rule set rejected: %v", errs)
	}
	// Validate records implements relationships.
	nl := rs.Algebra.MustOp("Nested_loops")
	if len(nl.Implements) != 1 || nl.Implements[0] != rs.Algebra.MustOp("JOIN") {
		t.Errorf("Implements = %v", nl.Implements)
	}
}

func TestValidateUnimplementedOperator(t *testing.T) {
	rs := validMiniRuleSet()
	rs.Algebra.Operator("SELECT", 1)
	errs := rs.Validate()
	if !errsContain(errs, "SELECT has no I-rule") {
		t.Errorf("missing unimplemented-operator error: %v", errs)
	}
}

func TestValidateTRuleWithAlgorithm(t *testing.T) {
	rs := validMiniRuleSet()
	a := rs.Algebra
	rs.AddT(&TRule{Name: "bad_alg",
		LHS: POp(a.MustOp("JOIN"), "D3", PVar(1, "D1"), PVar(2, "D2")),
		RHS: POp(a.MustOp("Nested_loops"), "D4", PVar(1, ""), PVar(2, ""))})
	if !errsContain(rs.Validate(), "mentions algorithm") {
		t.Error("T-rule with algorithm accepted")
	}
}

func TestValidateUnboundVariable(t *testing.T) {
	rs := validMiniRuleSet()
	a := rs.Algebra
	rs.AddT(&TRule{Name: "unbound",
		LHS: POp(a.MustOp("RET"), "D2", PVar(1, "D1")),
		RHS: POp(a.MustOp("RET"), "D3", PVar(7, ""))})
	if !errsContain(rs.Validate(), "?7 on right side is unbound") {
		t.Error("unbound variable accepted")
	}
}

func TestValidateRepeatedVariable(t *testing.T) {
	rs := validMiniRuleSet()
	a := rs.Algebra
	rs.AddT(&TRule{Name: "repeat",
		LHS: POp(a.MustOp("JOIN"), "D3", PVar(1, "D1"), PVar(1, "D2")),
		RHS: POp(a.MustOp("JOIN"), "D4", PVar(1, ""), PVar(1, ""))})
	if !errsContain(rs.Validate(), "repeated on left side") {
		t.Error("repeated variable accepted")
	}
}

func TestValidateDuplicateDescriptor(t *testing.T) {
	rs := validMiniRuleSet()
	a := rs.Algebra
	rs.AddT(&TRule{Name: "dupdesc",
		LHS: POp(a.MustOp("JOIN"), "D3", PVar(1, "D3"), PVar(2, "D2")),
		RHS: POp(a.MustOp("JOIN"), "D4", PVar(2, ""), PVar(1, ""))})
	if !errsContain(rs.Validate(), "bound more than once") {
		t.Error("duplicate descriptor name accepted")
	}
}

func TestValidateIRuleShape(t *testing.T) {
	rs := validMiniRuleSet()
	a := rs.Algebra
	// Deep LHS is not a legal I-rule.
	rs.AddI(&IRule{Name: "deep",
		LHS: POp(a.MustOp("SORT"), "D9",
			POp(a.MustOp("RET"), "D8", PVar(1, "D1"))),
		RHS: POp(a.MustOp("Merge_sort"), "D10", PVar(1, ""))})
	if !errsContain(rs.Validate(), "single operator over inputs") {
		t.Error("deep I-rule LHS accepted")
	}
}

func TestValidateIRuleKindMismatch(t *testing.T) {
	rs := validMiniRuleSet()
	a := rs.Algebra
	rs.AddI(&IRule{Name: "op_on_rhs",
		LHS: POp(a.MustOp("JOIN"), "D3", PVar(1, "D1"), PVar(2, "D2")),
		RHS: POp(a.MustOp("JOIN"), "D4", PVar(1, ""), PVar(2, ""))})
	if !errsContain(rs.Validate(), "is not an algorithm") {
		t.Error("operator on I-rule RHS accepted")
	}
}

func TestValidateArityMismatch(t *testing.T) {
	rs := validMiniRuleSet()
	a := rs.Algebra
	rs.AddI(&IRule{Name: "bad_arity",
		LHS: POp(a.MustOp("SORT"), "D2", PVar(1, "D1")),
		RHS: POp(a.MustOp("Nested_loops"), "D5", PVar(1, ""), PVar(1, ""))})
	errs := rs.Validate()
	if !errsContain(errs, "arity") {
		t.Errorf("arity mismatch accepted: %v", errs)
	}
}

func TestValidateNullRuleNeedsFreshDescriptor(t *testing.T) {
	a := miniAlgebra()
	rs := NewRuleSet(a)
	sortOp := a.MustOp("SORT")
	rs.AddI(&IRule{Name: "bad_null",
		LHS: POp(sortOp, "D2", PVar(1, "D1")),
		RHS: POp(a.Null(), "D4", PVar(1, ""))}) // no fresh input descriptor
	if !errsContain(rs.Validate(), "fresh descriptor") {
		t.Error("Null rule without property propagation accepted")
	}
}

func TestValidateCostProperty(t *testing.T) {
	a := NewAlgebra("nocost")
	a.Props.Define("tuple_order", KindOrder)
	a.Operator("RET", 1)
	a.Algorithm("File_scan", 1)
	rs := NewRuleSet(a)
	rs.AddI(&IRule{Name: "fs",
		LHS: POp(a.MustOp("RET"), "D2", PVar(1, "D1")),
		RHS: POp(a.MustOp("File_scan"), "D3", PVar(1, ""))})
	if !errsContain(rs.Validate(), "COST-kind property") {
		t.Error("rule set without cost property accepted")
	}
}

func TestValidateDuplicateRuleNames(t *testing.T) {
	rs := validMiniRuleSet()
	a := rs.Algebra
	rs.AddT(&TRule{Name: "join_commute",
		LHS: POp(a.MustOp("JOIN"), "DA", PVar(1, "DB"), PVar(2, "DC")),
		RHS: POp(a.MustOp("JOIN"), "DD", PVar(2, ""), PVar(1, ""))})
	if !errsContain(rs.Validate(), "duplicate rule name") {
		t.Error("duplicate rule name accepted")
	}
}

func TestValidationErrorText(t *testing.T) {
	e := ValidationError{Rule: "", Msg: "m"}
	if e.Error() != "ruleset: m" {
		t.Errorf("Error = %q", e.Error())
	}
	e2 := ValidationError{Rule: "r", Msg: "m"}
	if e2.Error() != "rule r: m" {
		t.Errorf("Error = %q", e2.Error())
	}
}
