package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func testProps() (*PropertySet, PropID, PropID, PropID, PropID) {
	ps := NewPropertySet()
	ord := ps.Define("tuple_order", KindOrder)
	nr := ps.Define("num_records", KindFloat)
	pred := ps.Define("join_predicate", KindPred)
	cost := ps.Define("cost", KindCost)
	return ps, ord, nr, pred, cost
}

func TestPropertySetDefine(t *testing.T) {
	ps, ord, _, _, cost := testProps()
	if ps.Len() != 4 {
		t.Fatalf("Len = %d", ps.Len())
	}
	if again := ps.Define("tuple_order", KindOrder); again != ord {
		t.Error("redefinition should return same id")
	}
	defer func() {
		if recover() == nil {
			t.Error("redefining with different kind should panic")
		}
	}()
	_ = cost
	ps.Define("tuple_order", KindPred)
}

func TestPropertySetLookup(t *testing.T) {
	ps, _, nr, _, cost := testProps()
	if id, ok := ps.Lookup("num_records"); !ok || id != nr {
		t.Error("Lookup failed")
	}
	if _, ok := ps.Lookup("missing"); ok {
		t.Error("Lookup found missing property")
	}
	if ps.MustLookup("cost") != cost {
		t.Error("MustLookup failed")
	}
	if got := ps.CostProps(); len(got) != 1 || got[0] != cost {
		t.Errorf("CostProps = %v", got)
	}
	names := ps.Names()
	if len(names) != 4 || names[0] != "tuple_order" {
		t.Errorf("Names = %v", names)
	}
	sorted := ps.SortedIDs()
	if ps.At(sorted[0]).Name != "cost" {
		t.Errorf("SortedIDs first = %v", ps.At(sorted[0]).Name)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLookup of missing property should panic")
		}
	}()
	ps.MustLookup("missing")
}

func TestDescriptorGetSetDefaults(t *testing.T) {
	ps, ord, nr, pred, cost := testProps()
	d := NewDescriptor(ps)
	// Unset properties read as defaults, never nil.
	if !d.Get(ord).IsDontCare() {
		t.Error("unset order should default to DONT_CARE")
	}
	if d.Float(nr) != 0 {
		t.Error("unset float should default to 0")
	}
	if !d.Pred(pred).IsTrue() {
		t.Error("unset pred should default to TRUE")
	}
	if d.Has(ord) {
		t.Error("Has should be false before Set")
	}
	d.Set(ord, OrderBy(A("R", "x")))
	d.SetFloat(nr, 42)
	d.Set(cost, Cost(7))
	if !d.Has(ord) || d.Float(nr) != 42 || d.Float(cost) != 7 {
		t.Error("Set/Get roundtrip failed")
	}
	d.Unset(ord)
	if d.Has(ord) {
		t.Error("Unset failed")
	}
}

func TestDescriptorNumericCoercion(t *testing.T) {
	ps, _, nr, _, cost := testProps()
	d := NewDescriptor(ps)
	// Rule arithmetic freely mixes float and cost.
	d.Set(cost, Float(3.5))
	if v, ok := d.Get(cost).(Cost); !ok || v != 3.5 {
		t.Errorf("cost coercion: %v", d.Get(cost))
	}
	d.Set(nr, Cost(9))
	if v, ok := d.Get(nr).(Float); !ok || v != 9 {
		t.Errorf("float coercion: %v", d.Get(nr))
	}
	d.Set(nr, Int(4))
	if d.Float(nr) != 4 {
		t.Errorf("int->float coercion: %v", d.Get(nr))
	}
}

func TestDescriptorKindMismatchPanics(t *testing.T) {
	ps, ord, _, _, _ := testProps()
	d := NewDescriptor(ps)
	defer func() {
		if recover() == nil {
			t.Error("setting pred into order property should panic")
		}
	}()
	d.Set(ord, TruePred)
}

func TestDescriptorCopyCloneMerge(t *testing.T) {
	ps, ord, nr, _, cost := testProps()
	a := NewDescriptor(ps)
	a.Set(ord, OrderBy(A("R", "x")))
	a.SetFloat(nr, 10)

	b := NewDescriptor(ps)
	b.Set(cost, Cost(5))
	b.CopyFrom(a) // the paper's "D_b = D_a": full overwrite
	if b.Has(cost) {
		t.Error("CopyFrom should clear properties unset in source")
	}
	if b.Float(nr) != 10 {
		t.Error("CopyFrom missed a property")
	}

	c := a.Clone()
	c.SetFloat(nr, 99)
	if a.Float(nr) != 10 {
		t.Error("Clone is not independent")
	}

	m := NewDescriptor(ps)
	m.Set(cost, Cost(5))
	m.Merge(a) // only explicitly-set properties move
	if !m.Has(cost) || m.Float(cost) != 5 {
		t.Error("Merge should preserve target-only properties")
	}
	if m.Float(nr) != 10 {
		t.Error("Merge missed a property")
	}
}

func TestDescriptorProjectionHashEqual(t *testing.T) {
	ps, ord, nr, _, cost := testProps()
	a := NewDescriptor(ps)
	b := NewDescriptor(ps)
	a.Set(ord, OrderBy(A("R", "x")))
	b.Set(ord, OrderBy(A("R", "x")))
	a.SetFloat(nr, 1)
	b.SetFloat(nr, 2)
	proj := []PropID{ord, cost}
	if !a.EqualOn(b, proj) {
		t.Error("EqualOn should ignore properties outside projection")
	}
	if a.HashOn(proj) != b.HashOn(proj) {
		t.Error("HashOn should ignore properties outside projection")
	}
	if a.EqualOn(b, []PropID{nr}) {
		t.Error("EqualOn missed a difference")
	}
	// Unset vs default-set must compare equal (Get semantics).
	c := NewDescriptor(ps)
	d := NewDescriptor(ps)
	d.Set(ord, DontCareOrder)
	if !c.EqualOn(d, proj) || c.HashOn(proj) != d.HashOn(proj) {
		t.Error("unset and default-set should be projection-equal")
	}
}

func TestDescriptorSatisfiesOn(t *testing.T) {
	ps, ord, nr, _, _ := testProps()
	phys := []PropID{ord}
	have := NewDescriptor(ps)
	req := NewDescriptor(ps)
	// Unset request: always satisfied.
	if !have.SatisfiesOn(req, phys) {
		t.Error("empty request should be satisfied")
	}
	req.Set(ord, DontCareOrder)
	if !have.SatisfiesOn(req, phys) {
		t.Error("DONT_CARE request should be satisfied")
	}
	req.Set(ord, OrderBy(A("R", "x")))
	if have.SatisfiesOn(req, phys) {
		t.Error("unsorted stream should not satisfy an order request")
	}
	have.Set(ord, OrderBy(A("R", "x"), A("R", "y")))
	if !have.SatisfiesOn(req, phys) {
		t.Error("prefix order should satisfy the request")
	}
	// Non-order kinds compare by equality.
	req.SetFloat(nr, 5)
	if have.SatisfiesOn(req, []PropID{ord, nr}) {
		t.Error("unequal float should not satisfy")
	}
	have.SetFloat(nr, 5)
	if !have.SatisfiesOn(req, []PropID{ord, nr}) {
		t.Error("equal float should satisfy")
	}
}

func TestDescriptorString(t *testing.T) {
	ps, ord, nr, _, _ := testProps()
	d := NewDescriptor(ps)
	d.Set(ord, OrderBy(A("R", "x")))
	d.SetFloat(nr, 3)
	s := d.String()
	if !strings.Contains(s, "tuple_order=<R.x>") || !strings.Contains(s, "num_records=3") {
		t.Errorf("String = %q", s)
	}
}

type recordingObserver struct {
	gets, sets int
	copies     int
}

func (r *recordingObserver) ObserveGet(*Descriptor, PropID) { r.gets++ }
func (r *recordingObserver) ObserveSet(*Descriptor, PropID) { r.sets++ }
func (r *recordingObserver) ObserveCopy(_, _ *Descriptor)   { r.copies++ }

func TestDescriptorObserver(t *testing.T) {
	ps, ord, nr, _, _ := testProps()
	d := NewDescriptor(ps)
	obs := &recordingObserver{}
	d.SetObserver(obs)
	d.Set(ord, DontCareOrder)
	_ = d.Get(ord)
	_ = d.Float(nr)
	src := NewDescriptor(ps)
	d.CopyFrom(src)
	if obs.sets != 1 || obs.gets != 2 || obs.copies != 1 {
		t.Errorf("observer counts: sets=%d gets=%d copies=%d", obs.sets, obs.gets, obs.copies)
	}
	d.SetObserver(nil)
	d.Set(ord, DontCareOrder)
	if obs.sets != 1 {
		t.Error("cleared observer still notified")
	}
}

func TestDescriptorCopyFromQuick(t *testing.T) {
	ps, _, nr, _, cost := testProps()
	// Property: after CopyFrom, the two descriptors are projection-equal
	// on all properties.
	all := []PropID{0, 1, 2, 3}
	if err := quick.Check(func(x, y float64) bool {
		a := NewDescriptor(ps)
		a.SetFloat(nr, x)
		a.Set(cost, Cost(y))
		b := NewDescriptor(ps)
		b.CopyFrom(a)
		return b.EqualOn(a, all) && b.HashOn(all) == a.HashOn(all)
	}, nil); err != nil {
		t.Error(err)
	}
}
