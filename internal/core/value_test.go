package core

import (
	"testing"
	"testing/quick"
)

func TestKindNames(t *testing.T) {
	for _, k := range []Kind{KindInt, KindFloat, KindBool, KindString, KindOrder, KindAttrs, KindPred, KindCost} {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindByName("nope"); ok {
		t.Error("KindByName accepted unknown name")
	}
	if DefaultValue(KindInvalid) != nil {
		t.Error("DefaultValue(KindInvalid) should be nil")
	}
}

func TestDefaultValues(t *testing.T) {
	for _, k := range []Kind{KindInt, KindFloat, KindBool, KindString, KindOrder, KindAttrs, KindPred, KindCost} {
		v := DefaultValue(k)
		if v == nil {
			t.Fatalf("no default for %v", k)
		}
		if v.Kind() != k {
			t.Errorf("default for %v has kind %v", k, v.Kind())
		}
		if !v.Equal(DefaultValue(k)) {
			t.Errorf("default for %v not self-equal", k)
		}
		if v.Hash() != DefaultValue(k).Hash() {
			t.Errorf("default for %v hash unstable", k)
		}
	}
}

func TestScalarValues(t *testing.T) {
	cases := []struct {
		a, b Value
		eq   bool
	}{
		{Int(3), Int(3), true},
		{Int(3), Int(4), false},
		{Int(3), Float(3), false}, // cross-kind never equal
		{Float(2.5), Float(2.5), true},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Str("x"), Str("x"), true},
		{Str("x"), Str("y"), false},
		{Cost(9), Cost(9), true},
		{Cost(9), Float(9), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.eq {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.eq)
		}
		if c.eq && c.a.Hash() != c.b.Hash() {
			t.Errorf("equal values %v, %v hash differently", c.a, c.b)
		}
	}
}

func TestHashEqualConsistencyQuick(t *testing.T) {
	// Property: equal ints/floats/strings hash equally and unequal ones
	// (almost always) differ; we only check the required direction.
	if err := quick.Check(func(x int64) bool {
		return Int(x).Hash() == Int(x).Hash() && Int(x).Equal(Int(x))
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(s string) bool {
		return Str(s).Hash() == Str(s).Hash() && Str(s).Equal(Str(s))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestAttrsSetSemantics(t *testing.T) {
	a := Attrs{A("R", "x"), A("R", "y")}
	b := Attrs{A("R", "y"), A("R", "x")}
	if !a.Equal(b) {
		t.Error("attrs equality should be order-insensitive")
	}
	if a.Hash() != b.Hash() {
		t.Error("attrs hash should be order-insensitive")
	}
	c := Attrs{A("R", "x")}
	if a.Equal(c) || c.Equal(a) {
		t.Error("different-size attr sets compared equal")
	}
	if !a.Contains(A("R", "y")) || a.Contains(A("S", "y")) {
		t.Error("Contains wrong")
	}
	u := c.Union(Attrs{A("R", "y"), A("R", "x")})
	if len(u) != 2 || !u.Equal(a) {
		t.Errorf("Union = %v", u)
	}
	if got := a.Intersect(c); len(got) != 1 || got[0] != A("R", "x") {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(c); len(got) != 1 || got[0] != A("R", "y") {
		t.Errorf("Minus = %v", got)
	}
	s := Attrs{A("S", "b"), A("R", "a")}.Sorted()
	if s[0] != A("R", "a") {
		t.Errorf("Sorted = %v", s)
	}
}

func TestAttrsQuickUnionSuperset(t *testing.T) {
	// Property: union contains both operands; intersect is contained in both.
	gen := func(n uint8) Attrs {
		var out Attrs
		for i := uint8(0); i < n%6; i++ {
			out = append(out, A("R", string(rune('a'+i))))
		}
		return out
	}
	if err := quick.Check(func(n, m uint8) bool {
		a, b := gen(n), gen(m)
		u := a.Union(b)
		i := a.Intersect(b)
		return u.ContainsAll(a) && u.ContainsAll(b) && a.ContainsAll(i) && b.ContainsAll(i)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestOrderSatisfies(t *testing.T) {
	x, y := A("R", "x"), A("R", "y")
	cases := []struct {
		have, want Order
		ok         bool
	}{
		{DontCareOrder, DontCareOrder, true},
		{OrderBy(x), DontCareOrder, true},
		{DontCareOrder, OrderBy(x), false},
		{OrderBy(x), OrderBy(x), true},
		{OrderBy(x, y), OrderBy(x), true}, // prefix
		{OrderBy(x), OrderBy(x, y), false},
		{OrderBy(y), OrderBy(x), false},
	}
	for _, c := range cases {
		if got := c.have.Satisfies(c.want); got != c.ok {
			t.Errorf("%v satisfies %v = %v, want %v", c.have, c.want, got, c.ok)
		}
	}
	if !DontCareOrder.IsDontCare() || OrderBy(x).IsDontCare() {
		t.Error("IsDontCare wrong")
	}
	if OrderBy(x).Equal(OrderBy(y)) || !OrderBy(x, y).Equal(OrderBy(x, y)) {
		t.Error("order equality wrong")
	}
	if OrderBy(x).String() != "<R.x>" || DontCareOrder.String() != "DONT_CARE" {
		t.Errorf("order strings: %q %q", OrderBy(x).String(), DontCareOrder.String())
	}
}

func TestPredConstruction(t *testing.T) {
	x, y := A("R1", "a"), A("R2", "b")
	j := EqAttr(x, y)
	if !j.IsEquiJoin() {
		t.Error("EqAttr should be an equi-join term")
	}
	s := EqConst(x, Int(5))
	if s.IsEquiJoin() {
		t.Error("selection term is not an equi-join")
	}
	conj := And(j, s)
	if len(conj.Conjuncts()) != 2 {
		t.Errorf("conjuncts = %v", conj.Conjuncts())
	}
	// And flattens and drops TRUE.
	flat := And(conj, TruePred, nil)
	if len(flat.Conjuncts()) != 2 {
		t.Errorf("flattened conjuncts = %d", len(flat.Conjuncts()))
	}
	if !And().IsTrue() {
		t.Error("empty And should be TRUE")
	}
	if And(j) != j {
		t.Error("single-term And should return the term")
	}
	if Or(j) != j || !Or().IsTrue() {
		t.Error("Or degenerate cases wrong")
	}
	or2 := Or(Or(j, s), s)
	if or2.Op != PredOr || len(or2.Kids) != 3 {
		t.Errorf("Or flattening: %v", or2)
	}
	n := Not(j)
	if n.Op != PredNot || len(n.Kids) != 1 {
		t.Error("Not shape wrong")
	}
}

func TestPredEqualityAndHash(t *testing.T) {
	x, y := A("R1", "a"), A("R2", "b")
	p1 := And(EqAttr(x, y), EqConst(x, Int(1)))
	p2 := And(EqAttr(x, y), EqConst(x, Int(1)))
	p3 := And(EqAttr(x, y), EqConst(x, Int(2)))
	if !p1.Equal(p2) {
		t.Error("structurally identical predicates unequal")
	}
	if p1.Hash() != p2.Hash() {
		t.Error("equal predicates hash differently")
	}
	if p1.Equal(p3) {
		t.Error("different constants compared equal")
	}
	if !TruePred.Equal((*Pred)(nil)) {
		t.Error("nil predicate should equal TRUE")
	}
	if !p1.Equal(p1) || p1.Equal(TruePred) {
		t.Error("basic equality wrong")
	}
	if p1.Equal(Int(1)) {
		t.Error("cross-kind equality should be false")
	}
}

func TestPredAttrsAndSplit(t *testing.T) {
	x, y, z := A("R1", "a"), A("R2", "b"), A("R1", "c")
	p := And(EqAttr(x, y), EqConst(z, Int(3)))
	attrs := p.Attrs()
	if len(attrs) != 3 {
		t.Errorf("Attrs = %v", attrs)
	}
	r1 := Attrs{x, z}
	within, rest := p.SplitBy(r1)
	if !within.Equal(EqConst(z, Int(3))) {
		t.Errorf("within = %v", within)
	}
	if !rest.Equal(EqAttr(x, y)) {
		t.Errorf("rest = %v", rest)
	}
	if !EqConst(z, Int(3)).RefersOnlyTo(r1) || EqAttr(x, y).RefersOnlyTo(r1) {
		t.Error("RefersOnlyTo wrong")
	}
	if got := TruePred.Attrs(); len(got) != 0 {
		t.Errorf("TRUE attrs = %v", got)
	}
}

func TestPredStrings(t *testing.T) {
	x, y := A("R1", "a"), A("R2", "b")
	cases := map[string]*Pred{
		"TRUE":                       TruePred,
		"R1.a = R2.b":                EqAttr(x, y),
		"R1.a = 5":                   EqConst(x, Int(5)),
		"NOT R1.a = 5":               Not(EqConst(x, Int(5))),
		"R1.a < 5":                   CmpConst(PredLt, x, Int(5)),
		"(R1.a = 5 AND R1.a = R2.b)": And(EqConst(x, Int(5)), EqAttr(x, y)),
	}
	for want, p := range cases {
		if got := p.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}
