package core

import (
	"strings"
)

// Observer receives property read/write notifications from an
// instrumented descriptor. The P2V pre-processor uses observers to trace
// which properties closure-based rule actions read and assign (its
// automatic property classification); see internal/p2v.
type Observer interface {
	ObserveGet(d *Descriptor, id PropID)
	ObserveSet(d *Descriptor, id PropID)
	ObserveCopy(dst, src *Descriptor)
}

// Descriptor is a list of annotations — ⟨property, value⟩ pairs —
// describing one node of an operator tree (§2.1). Every node has its own
// descriptor. Prairie's central simplification is that this single
// structure subsumes Volcano's operator/algorithm arguments, physical
// properties, and cost.
//
// Unset properties read as DefaultValue(kind), so rule actions never see
// nil. Descriptors are cheap to copy; rule actions like "D5 = D3" map to
// CopyFrom.
type Descriptor struct {
	ps       *PropertySet
	vals     []Value
	observer Observer
	// Name tags the descriptor with its rule-variable name (e.g. "D3")
	// while rule actions run; it exists for tracing and error messages.
	Name string
}

// NewDescriptor returns an empty descriptor over the property set.
func NewDescriptor(ps *PropertySet) *Descriptor {
	return &Descriptor{ps: ps, vals: make([]Value, ps.Len())}
}

// Props returns the descriptor's property set.
func (d *Descriptor) Props() *PropertySet { return d.ps }

// SetObserver installs (or clears, with nil) an access observer.
func (d *Descriptor) SetObserver(o Observer) { d.observer = o }

// Get returns the value of a property, or the kind's default if unset.
func (d *Descriptor) Get(id PropID) Value {
	if d.observer != nil {
		d.observer.ObserveGet(d, id)
	}
	if int(id) < len(d.vals) && d.vals[id] != nil {
		return d.vals[id]
	}
	return DefaultValue(d.ps.At(id).Kind)
}

// Has reports whether the property has been explicitly set.
func (d *Descriptor) Has(id PropID) bool {
	return int(id) < len(d.vals) && d.vals[id] != nil
}

// Set assigns a property. It panics if the value kind does not match the
// property kind — a rule-specification bug that should fail loudly.
func (d *Descriptor) Set(id PropID, v Value) {
	if v != nil {
		want := d.ps.At(id).Kind
		got := v.Kind()
		// A float may be stored into a cost property and vice versa;
		// rule arithmetic freely mixes the two numeric kinds.
		if got != want && !numericKinds(got, want) {
			panic("core: property " + d.ps.At(id).Name + " has kind " + want.String() + ", not " + got.String())
		}
		v = coerce(v, want)
	}
	if d.observer != nil {
		d.observer.ObserveSet(d, id)
	}
	for int(id) >= len(d.vals) {
		d.vals = append(d.vals, nil)
	}
	d.vals[id] = v
}

func numericKinds(a, b Kind) bool {
	num := func(k Kind) bool { return k == KindFloat || k == KindCost || k == KindInt }
	return num(a) && num(b)
}

func coerce(v Value, want Kind) Value {
	switch want {
	case KindFloat:
		switch x := v.(type) {
		case Cost:
			return Float(x)
		case Int:
			return Float(x)
		}
	case KindCost:
		switch x := v.(type) {
		case Float:
			return Cost(x)
		case Int:
			return Cost(x)
		}
	case KindInt:
		switch x := v.(type) {
		case Float:
			return Int(x)
		case Cost:
			return Int(x)
		}
	}
	return v
}

// Unset clears a property back to "not set".
func (d *Descriptor) Unset(id PropID) {
	if int(id) < len(d.vals) {
		d.vals[id] = nil
	}
}

// CopyFrom overwrites this descriptor with src's annotations — the
// paper's whole-descriptor assignment "D5 = D3".
func (d *Descriptor) CopyFrom(src *Descriptor) {
	if d.observer != nil {
		d.observer.ObserveCopy(d, src)
	}
	if src.observer != nil && src.observer != d.observer {
		src.observer.ObserveCopy(d, src)
	}
	for len(d.vals) < len(src.vals) {
		d.vals = append(d.vals, nil)
	}
	for i := range d.vals {
		if i < len(src.vals) {
			d.vals[i] = src.vals[i]
		} else {
			d.vals[i] = nil
		}
	}
}

// Clone returns an independent copy (without the observer).
func (d *Descriptor) Clone() *Descriptor {
	c := &Descriptor{ps: d.ps, vals: make([]Value, len(d.vals)), Name: d.Name}
	copy(c.vals, d.vals)
	return c
}

// Merge sets every property that is explicitly set in src onto d,
// leaving d's other properties intact.
func (d *Descriptor) Merge(src *Descriptor) {
	for i, v := range src.vals {
		if v != nil {
			d.Set(PropID(i), v)
		}
	}
}

// Float reads a numeric property as float64 (0 if unset).
func (d *Descriptor) Float(id PropID) float64 {
	switch v := d.Get(id).(type) {
	case Float:
		return float64(v)
	case Cost:
		return float64(v)
	case Int:
		return float64(v)
	default:
		return 0
	}
}

// SetFloat stores a float into a numeric property.
func (d *Descriptor) SetFloat(id PropID, f float64) { d.Set(id, Float(f)) }

// Order reads an order property (DONT_CARE if unset).
func (d *Descriptor) Order(id PropID) Order {
	if v, ok := d.Get(id).(Order); ok {
		return v
	}
	return DontCareOrder
}

// Pred reads a predicate property (TRUE if unset).
func (d *Descriptor) Pred(id PropID) *Pred {
	if v, ok := d.Get(id).(*Pred); ok {
		return v
	}
	return TruePred
}

// AttrList reads an attrs property (empty if unset).
func (d *Descriptor) AttrList(id PropID) Attrs {
	if v, ok := d.Get(id).(Attrs); ok {
		return v
	}
	return nil
}

// EqualOn reports whether d and o agree (treating unset as the default
// value) on every property in ids.
func (d *Descriptor) EqualOn(o *Descriptor, ids []PropID) bool {
	for _, id := range ids {
		if !d.Get(id).Equal(o.Get(id)) {
			return false
		}
	}
	return true
}

// HashOn hashes the projection of d onto ids (unset read as default).
// EqualOn-equal descriptors produce equal hashes.
func (d *Descriptor) HashOn(ids []PropID) uint64 {
	h := fnvOffset
	for _, id := range ids {
		h = HashCombine(h, uint64(id))
		h = HashCombine(h, d.Get(id).Hash())
	}
	return h
}

// SatisfiesOn reports whether d meets the request req on every property
// in ids: a property satisfies its request when the request is unset or
// DONT_CARE, when the values are equal, or — for orders — when d's order
// has req's as a prefix.
func (d *Descriptor) SatisfiesOn(req *Descriptor, ids []PropID) bool {
	for _, id := range ids {
		if !req.Has(id) {
			continue
		}
		want := req.Get(id)
		if want.IsDontCare() {
			continue
		}
		got := d.Get(id)
		if wo, ok := want.(Order); ok {
			if go_, ok2 := got.(Order); ok2 {
				if go_.Satisfies(wo) {
					continue
				}
				return false
			}
		}
		if !got.Equal(want) {
			return false
		}
	}
	return true
}

// String renders the set annotations as "{prop=value, ...}" in property
// definition order.
func (d *Descriptor) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, v := range d.vals {
		if v == nil {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(d.ps.At(PropID(i)).Name)
		b.WriteByte('=')
		b.WriteString(v.String())
	}
	b.WriteByte('}')
	return b.String()
}
