package core

import (
	"fmt"
)

// MergeRuleSets combines several Prairie rule sets over the same algebra
// into one — the modular composition the paper's conclusion proposes
// ("combining multiple Prairie rule sets to automatically generate
// efficient optimizers"). A base module might define the relational
// rules while extension modules contribute new algorithms or operators;
// P2V then generates a single optimizer from the union.
//
// All inputs must share one Algebra instance (operations and properties
// are identified by pointer). Duplicate rule names across modules are an
// error; helper functions may be re-registered only with an identical
// signature.
func MergeRuleSets(sets ...*RuleSet) (*RuleSet, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("core: no rule sets to merge")
	}
	alg := sets[0].Algebra
	out := NewRuleSet(alg)
	seen := map[string]bool{}
	for i, rs := range sets {
		if rs.Algebra != alg {
			return nil, fmt.Errorf("core: rule set %d is over algebra %q, not %q; modules must share one algebra",
				i, rs.Algebra.Name, alg.Name)
		}
		for _, r := range rs.TRules {
			if seen[r.Name] {
				return nil, fmt.Errorf("core: rule %q defined by more than one module", r.Name)
			}
			seen[r.Name] = true
			out.AddT(r)
		}
		for _, r := range rs.IRules {
			if seen[r.Name] {
				return nil, fmt.Errorf("core: rule %q defined by more than one module", r.Name)
			}
			seen[r.Name] = true
			out.AddI(r)
		}
		for _, name := range rs.Helpers.Names() {
			h, _ := rs.Helpers.Lookup(name)
			if prev, ok := out.Helpers.Lookup(name); ok {
				if !sameSignature(prev, h) {
					return nil, fmt.Errorf("core: helper %q re-declared with a different signature", name)
				}
				continue
			}
			out.Helpers.Define(h.Name, h.Params, h.Result, h.Fn)
		}
	}
	return out, nil
}

func sameSignature(a, b *Helper) bool {
	if a.Result != b.Result || len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	return true
}
