package core

import (
	"fmt"
	"sort"
)

// Binding carries the descriptor environment a rule's actions run in:
// every descriptor variable name appearing in the rule's patterns maps to
// a descriptor. Left-hand-side descriptors are bound by the engine from
// the matched expression; right-hand-side descriptors are created fresh
// and filled by the rule's actions.
// Bindings hold few entries (the descriptor variables of one rule), so
// they are slice-backed: linear scans beat map overhead and halve the
// allocations on the optimizer's hot path.
type bindingEntry struct {
	name string
	d    *Descriptor
}

type Binding struct {
	ps      *PropertySet
	entries []bindingEntry
}

// NewBinding returns an empty binding over a property set.
func NewBinding(ps *PropertySet) *Binding {
	return &Binding{ps: ps, entries: make([]bindingEntry, 0, 8)}
}

func (b *Binding) lookup(name string) *Descriptor {
	for i := range b.entries {
		if b.entries[i].name == name {
			return b.entries[i].d
		}
	}
	return nil
}

// D returns the descriptor bound to name, creating an empty one on first
// reference (right-hand-side descriptors come into existence this way).
func (b *Binding) D(name string) *Descriptor {
	if d := b.lookup(name); d != nil {
		return d
	}
	d := NewDescriptor(b.ps)
	d.Name = name
	b.entries = append(b.entries, bindingEntry{name, d})
	return d
}

// Bind associates name with an existing descriptor, replacing any
// previous binding.
func (b *Binding) Bind(name string, d *Descriptor) {
	for i := range b.entries {
		if b.entries[i].name == name {
			b.entries[i].d = d
			return
		}
	}
	b.entries = append(b.entries, bindingEntry{name, d})
}

// Bound reports whether name is bound.
func (b *Binding) Bound(name string) bool { return b.lookup(name) != nil }

// Reset clears every binding while keeping the backing storage, so one
// Binding can be reused across many rule applications without
// reallocating (the optimizer's exploration hot path).
func (b *Binding) Reset() { b.entries = b.entries[:0] }

// CopyFrom replaces this binding's entries with src's. Descriptors are
// shared, not cloned — the receiving binding sees the same descriptor
// objects, which is exactly what a per-match private binding needs.
func (b *Binding) CopyFrom(src *Binding) {
	b.entries = append(b.entries[:0], src.entries...)
}

// Names returns the bound names, sorted.
func (b *Binding) Names() []string {
	out := make([]string, 0, len(b.entries))
	for _, e := range b.entries {
		out = append(out, e.name)
	}
	sort.Strings(out)
	return out
}

// Action is a group of descriptor assignment statements. Left-hand sides
// refer to right-hand-side descriptors of the rule; right-hand sides may
// read any descriptor in the binding and call helper functions. An action
// must not modify left-hand-side descriptors (Validate and the P2V taint
// tracer enforce this).
type Action func(b *Binding)

// Test is a rule applicability check: a boolean expression over the
// binding, possibly calling helper functions.
type Test func(b *Binding) bool

// ActionHints optionally declares which (descriptor name, property) pairs
// an action assigns. The paper (footnote 3) notes that non-assignment
// actions need such hints for P2V to classify properties; closure-based
// rules whose behaviour the taint tracer cannot see may declare them
// here.
type ActionHints struct {
	// Writes lists assignments as "Dname.prop" strings; "Dname.*" marks
	// a whole-descriptor copy target.
	PreWrites  []string // pre-test (T-rule) or pre-opt (I-rule) section
	PostWrites []string // post-test or post-opt section
}

// TRule is a transformation rule (§2.3): an equivalence between two
// expressions of abstract operators, with actions split into pre-test
// statements, a test, and post-test statements.
//
//	E(x1..xn):D1  ==>  E'(x1..xn):D2
//	{{ pre-test }}  test  {{ post-test }}
type TRule struct {
	Name string
	// Origin records where the rule was declared (a "file:line" source
	// position for rules compiled from Prairie-language text, empty for
	// rules built in Go). Back ends carry it through to per-rule
	// diagnostics and verification verdicts.
	Origin   string
	LHS, RHS *PatNode
	PreTest  Action // may be nil
	Test     Test   // nil means TRUE
	PostTest Action // may be nil
	Hints    *ActionHints
}

// RunCond executes the rule's pre-test statements and test against the
// binding; it reports whether the rule applies.
func (r *TRule) RunCond(b *Binding) bool {
	if r.PreTest != nil {
		r.PreTest(b)
	}
	if r.Test != nil {
		return r.Test(b)
	}
	return true
}

// RunPost executes the post-test statements.
func (r *TRule) RunPost(b *Binding) {
	if r.PostTest != nil {
		r.PostTest(b)
	}
}

// String renders the rule header in the paper's notation.
func (r *TRule) String() string {
	return fmt.Sprintf("%s: %s ==> %s", r.Name, r.LHS, r.RHS)
}

// IRule is an implementation rule (§2.4): an equivalence between an
// operator expression and an implementing algorithm, with a test, pre-opt
// statements (run before the algorithm's inputs are optimized; they set
// the algorithm's descriptor and the required properties of inputs), and
// post-opt statements (run after the inputs are optimized; they normally
// compute cost).
type IRule struct {
	Name     string
	LHS, RHS *PatNode
	Test     Test   // nil means TRUE
	PreOpt   Action // may be nil
	PostOpt  Action // may be nil
	Hints    *ActionHints
}

// Op returns the abstract operator on the rule's left side.
func (r *IRule) Op() *Operation { return r.LHS.Op }

// Alg returns the implementing algorithm on the rule's right side.
func (r *IRule) Alg() *Operation { return r.RHS.Op }

// IsNullRule reports whether the rule implements its operator by the Null
// algorithm (§2.5), which marks the operator as an enforcer-operator.
func (r *IRule) IsNullRule() bool { return r.Alg() != nil && r.Alg().IsNull() }

// RunTest evaluates the rule's test.
func (r *IRule) RunTest(b *Binding) bool {
	if r.Test != nil {
		return r.Test(b)
	}
	return true
}

// String renders the rule header in the paper's notation.
func (r *IRule) String() string {
	return fmt.Sprintf("%s: %s ==> %s", r.Name, r.LHS, r.RHS)
}

// Helper is a user-supplied support function callable from rule actions
// and tests (the paper's "helper functions": is_associative, cardinality,
// union, ...).
type Helper struct {
	Name   string
	Params []Kind
	Result Kind
	Fn     func(args []Value) (Value, error)
}

// Helpers is the registry of helper functions for a rule set.
type Helpers struct {
	byName map[string]*Helper
}

// NewHelpers returns an empty helper registry.
func NewHelpers() *Helpers { return &Helpers{byName: make(map[string]*Helper)} }

// Define registers a helper function. Re-registering a name replaces it.
func (h *Helpers) Define(name string, params []Kind, result Kind, fn func(args []Value) (Value, error)) *Helper {
	hp := &Helper{Name: name, Params: params, Result: result, Fn: fn}
	h.byName[name] = hp
	return hp
}

// Lookup returns the named helper.
func (h *Helpers) Lookup(name string) (*Helper, bool) {
	hp, ok := h.byName[name]
	return hp, ok
}

// Call invokes a helper by name.
func (h *Helpers) Call(name string, args ...Value) (Value, error) {
	hp, ok := h.byName[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown helper %q", name)
	}
	return hp.Fn(args)
}

// Names returns registered helper names, sorted.
func (h *Helpers) Names() []string {
	out := make([]string, 0, len(h.byName))
	for n := range h.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RuleSet is a complete Prairie specification: an algebra (operations and
// properties), T-rules, I-rules, and helper functions. It defines a
// search space and cost model but no search strategy; a back-end engine
// (internal/volcano, via internal/p2v) supplies that.
type RuleSet struct {
	Algebra *Algebra
	TRules  []*TRule
	IRules  []*IRule
	Helpers *Helpers
}

// NewRuleSet returns an empty rule set over the algebra.
func NewRuleSet(a *Algebra) *RuleSet {
	return &RuleSet{Algebra: a, Helpers: NewHelpers()}
}

// AddT appends a T-rule.
func (rs *RuleSet) AddT(r *TRule) *TRule { rs.TRules = append(rs.TRules, r); return r }

// AddI appends an I-rule.
func (rs *RuleSet) AddI(r *IRule) *IRule { rs.IRules = append(rs.IRules, r); return r }

// IRulesFor returns the I-rules whose left side is op.
func (rs *RuleSet) IRulesFor(op *Operation) []*IRule {
	var out []*IRule
	for _, r := range rs.IRules {
		if r.Op() == op {
			out = append(out, r)
		}
	}
	return out
}

// EnforcerOperators returns the operators that have a Null implementation
// (§2.5, §3.1): P2V classifies these as enforcer-operators.
func (rs *RuleSet) EnforcerOperators() []*Operation {
	var out []*Operation
	seen := map[*Operation]bool{}
	for _, r := range rs.IRules {
		if r.IsNullRule() && !seen[r.Op()] {
			seen[r.Op()] = true
			out = append(out, r.Op())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
