package core

import (
	"fmt"
	"sort"
)

// OpKind distinguishes abstract operators from concrete algorithms.
type OpKind uint8

// Operation kinds.
const (
	// Operator is an abstract (implementation-unspecified) computation
	// on streams or stored files, e.g. JOIN, RET, SORT.
	Operator OpKind = iota
	// Algorithm is a concrete implementation of an operator, e.g.
	// Nested_loops, File_scan, Merge_sort.
	Algorithm
)

func (k OpKind) String() string {
	if k == Operator {
		return "operator"
	}
	return "algorithm"
}

// NullName is the reserved name of the Null algorithm (§2.5): the
// pass-through algorithm whose presence marks its operator as an
// enforcer-operator during P2V translation.
const NullName = "Null"

// Operation is a database operation: an abstract operator or a concrete
// algorithm. In Prairie both are first-class — any of them can appear in
// any rule, and only they can appear in rules.
type Operation struct {
	Name string
	Kind OpKind
	// Arity is the number of essential parameters (stream or file
	// inputs). Additional parameters live in descriptors.
	Arity int
	// Args lists the operation's additional parameters (Table 1 of the
	// paper: the join predicate for JOIN, the selection predicate and
	// projection list for RET, ...). The optimizer engine uses them —
	// intersected with the argument property class — as the operation's
	// identity in duplicate detection. Empty means "all argument
	// properties are identity", which is safe but coarse.
	Args []PropID
	// Implements records, for an algorithm, the operators it has been
	// used to implement by I-rules; it is filled by RuleSet.Validate
	// and is informational.
	Implements []*Operation
	index      int
}

// IsNull reports whether the operation is the Null algorithm.
func (o *Operation) IsNull() bool { return o.Kind == Algorithm && o.Name == NullName }

// String returns the operation name.
func (o *Operation) String() string { return o.Name }

// Index returns the operation's dense registration index within its
// algebra; engines use it for bitsets and tables.
func (o *Operation) Index() int { return o.index }

// Algebra is the registry of one optimizer's operators, algorithms, and
// properties. A Prairie specification defines exactly one algebra.
type Algebra struct {
	Name  string
	Props *PropertySet
	byN   map[string]*Operation
	all   []*Operation
	null  *Operation
}

// NewAlgebra returns an empty algebra with a fresh property set.
func NewAlgebra(name string) *Algebra {
	return &Algebra{Name: name, Props: NewPropertySet(), byN: make(map[string]*Operation)}
}

func (a *Algebra) add(name string, kind OpKind, arity int) *Operation {
	if o, ok := a.byN[name]; ok {
		if o.Kind != kind || o.Arity != arity {
			panic(fmt.Sprintf("core: operation %q redefined (%v/%d vs %v/%d)", name, kind, arity, o.Kind, o.Arity))
		}
		return o
	}
	o := &Operation{Name: name, Kind: kind, Arity: arity, index: len(a.all)}
	a.byN[name] = o
	a.all = append(a.all, o)
	return o
}

// Operator defines (or returns the existing) abstract operator.
func (a *Algebra) Operator(name string, arity int) *Operation {
	return a.add(name, Operator, arity)
}

// Algorithm defines (or returns the existing) concrete algorithm.
func (a *Algebra) Algorithm(name string, arity int) *Operation {
	o := a.add(name, Algorithm, arity)
	if o.IsNull() {
		a.null = o
	}
	return o
}

// Null returns the algebra's Null algorithm, defining it on first use.
func (a *Algebra) Null() *Operation {
	if a.null == nil {
		a.null = a.Algorithm(NullName, 1)
	}
	return a.null
}

// SetArgs declares an operation's additional parameters (identity
// properties for duplicate detection).
func (a *Algebra) SetArgs(op *Operation, props ...PropID) {
	op.Args = append([]PropID(nil), props...)
}

// Op looks up an operation by name.
func (a *Algebra) Op(name string) (*Operation, bool) {
	o, ok := a.byN[name]
	return o, ok
}

// MustOp looks up an operation, panicking if absent.
func (a *Algebra) MustOp(name string) *Operation {
	o, ok := a.byN[name]
	if !ok {
		panic("core: unknown operation " + name)
	}
	return o
}

// Operations returns all operations in registration order.
func (a *Algebra) Operations() []*Operation { return a.all }

// Operators returns the abstract operators, sorted by name.
func (a *Algebra) Operators() []*Operation { return a.filter(Operator) }

// Algorithms returns the concrete algorithms, sorted by name.
func (a *Algebra) Algorithms() []*Operation { return a.filter(Algorithm) }

func (a *Algebra) filter(k OpKind) []*Operation {
	var out []*Operation
	for _, o := range a.all {
		if o.Kind == k {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NumOps returns the total number of registered operations.
func (a *Algebra) NumOps() int { return len(a.all) }

// NewDesc returns a fresh descriptor over the algebra's property set.
func (a *Algebra) NewDesc() *Descriptor { return NewDescriptor(a.Props) }
