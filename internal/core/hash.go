package core

// FNV-1a hashing helpers shared by values and descriptors. The optimizer
// engine hashes descriptors constantly (duplicate expression detection,
// winner memoization), so these are kept allocation-free.

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func hashString(s string) uint64 {
	h := fnvOffset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func hashUint64(v uint64) uint64 {
	h := fnvOffset
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// HashCombine mixes b into a; it is order-sensitive.
func HashCombine(a, b uint64) uint64 {
	return (a*fnvPrime ^ b) * fnvPrime
}
