package core

import (
	"fmt"
	"strings"
)

// PredOp enumerates predicate node operators.
type PredOp uint8

// Predicate node operators. Comparison nodes compare an attribute against
// either a constant or another attribute (a join term).
const (
	PredTrue PredOp = iota // always true (the empty predicate)
	PredEq
	PredNe
	PredLt
	PredLe
	PredGt
	PredGe
	PredAnd
	PredOr
	PredNot
)

func (op PredOp) String() string {
	switch op {
	case PredTrue:
		return "TRUE"
	case PredEq:
		return "="
	case PredNe:
		return "<>"
	case PredLt:
		return "<"
	case PredLe:
		return "<="
	case PredGt:
		return ">"
	case PredGe:
		return ">="
	case PredAnd:
		return "AND"
	case PredOr:
		return "OR"
	case PredNot:
		return "NOT"
	default:
		return "?"
	}
}

// Pred is an immutable predicate tree. Leaves are comparisons; interior
// nodes are AND/OR/NOT. The zero-value semantics are provided by TruePred.
//
// Predicates appear as descriptor properties (join_predicate,
// selection_predicate in Table 2) and are evaluated by the execution
// engine and by selectivity estimation in the catalog package.
type Pred struct {
	Op    PredOp
	Kids  []*Pred // for And/Or/Not
	Left  Attr    // comparison: left attribute
	Right Attr    // comparison against attribute, when AttrCmp
	Const Value   // comparison against constant, when !AttrCmp
	// AttrCmp distinguishes attribute-attribute comparisons (join terms)
	// from attribute-constant comparisons (selection terms).
	AttrCmp bool
}

// TruePred is the always-true predicate; it is the default value of
// predicate-kind properties.
var TruePred = &Pred{Op: PredTrue}

// EqConst returns the selection term "a = c".
func EqConst(a Attr, c Value) *Pred { return CmpConst(PredEq, a, c) }

// CmpConst returns the selection term "a op c".
func CmpConst(op PredOp, a Attr, c Value) *Pred {
	return &Pred{Op: op, Left: a, Const: c}
}

// EqAttr returns the join term "a = b".
func EqAttr(a, b Attr) *Pred { return &Pred{Op: PredEq, Left: a, Right: b, AttrCmp: true} }

// And conjoins predicates, dropping TRUE terms and flattening nested ANDs.
// And() with no live terms returns TruePred.
func And(ps ...*Pred) *Pred {
	var kids []*Pred
	for _, p := range ps {
		switch {
		case p == nil || p.Op == PredTrue:
		case p.Op == PredAnd:
			kids = append(kids, p.Kids...)
		default:
			kids = append(kids, p)
		}
	}
	switch len(kids) {
	case 0:
		return TruePred
	case 1:
		return kids[0]
	}
	return &Pred{Op: PredAnd, Kids: kids}
}

// Or disjoins predicates. Or() of nothing returns TruePred for symmetry
// with And; callers build disjunctions from at least one term.
func Or(ps ...*Pred) *Pred {
	var kids []*Pred
	for _, p := range ps {
		if p == nil {
			continue
		}
		if p.Op == PredOr {
			kids = append(kids, p.Kids...)
			continue
		}
		kids = append(kids, p)
	}
	switch len(kids) {
	case 0:
		return TruePred
	case 1:
		return kids[0]
	}
	return &Pred{Op: PredOr, Kids: kids}
}

// Not negates a predicate.
func Not(p *Pred) *Pred { return &Pred{Op: PredNot, Kids: []*Pred{p}} }

// Kind implements Value.
func (*Pred) Kind() Kind { return KindPred }

// IsDontCare implements Value; TRUE acts as the "no constraint" predicate.
func (p *Pred) IsDontCare() bool { return p == nil || p.Op == PredTrue }

// IsTrue reports whether the predicate is the constant TRUE.
func (p *Pred) IsTrue() bool { return p == nil || p.Op == PredTrue }

// Equal implements Value (structural equality; AND/OR kid order matters
// except that construction canonicalizes via flattening).
func (p *Pred) Equal(o Value) bool {
	q, ok := o.(*Pred)
	if !ok {
		return false
	}
	return predEqual(p, q)
}

func predEqual(p, q *Pred) bool {
	if p == nil || q == nil {
		return p.IsTrue() && q.IsTrue()
	}
	if p.Op != q.Op || len(p.Kids) != len(q.Kids) || p.AttrCmp != q.AttrCmp {
		return false
	}
	for i := range p.Kids {
		if !predEqual(p.Kids[i], q.Kids[i]) {
			return false
		}
	}
	if p.Op >= PredEq && p.Op <= PredGe {
		if p.Left != q.Left {
			return false
		}
		if p.AttrCmp {
			return p.Right == q.Right
		}
		if (p.Const == nil) != (q.Const == nil) {
			return false
		}
		return p.Const == nil || p.Const.Equal(q.Const)
	}
	return true
}

// Hash implements Value.
func (p *Pred) Hash() uint64 {
	if p == nil {
		return 0x99
	}
	h := uint64(p.Op) * 0x9e3779b97f4a7c15
	for _, k := range p.Kids {
		h = h*1099511628211 ^ k.Hash()
	}
	if p.Op >= PredEq && p.Op <= PredGe {
		h ^= hashString(p.Left.Rel)*3 ^ hashString(p.Left.Name)
		if p.AttrCmp {
			h ^= hashString(p.Right.Rel)*7 ^ hashString(p.Right.Name)
		} else if p.Const != nil {
			h ^= p.Const.Hash()
		}
	}
	return h
}

// String implements Value.
func (p *Pred) String() string {
	if p == nil {
		return "TRUE"
	}
	switch p.Op {
	case PredTrue:
		return "TRUE"
	case PredAnd, PredOr:
		parts := make([]string, len(p.Kids))
		for i, k := range p.Kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, " "+p.Op.String()+" ") + ")"
	case PredNot:
		return "NOT " + p.Kids[0].String()
	default:
		rhs := ""
		if p.AttrCmp {
			rhs = p.Right.String()
		} else if p.Const != nil {
			rhs = p.Const.String()
		}
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, rhs)
	}
}

// Conjuncts returns the top-level AND terms of p (p itself if it is not a
// conjunction, nothing if it is TRUE).
func (p *Pred) Conjuncts() []*Pred {
	if p.IsTrue() {
		return nil
	}
	if p.Op == PredAnd {
		return p.Kids
	}
	return []*Pred{p}
}

// Attrs returns every attribute referenced by the predicate.
func (p *Pred) Attrs() Attrs {
	var out Attrs
	p.walkAttrs(&out)
	return out
}

func (p *Pred) walkAttrs(out *Attrs) {
	if p == nil {
		return
	}
	for _, k := range p.Kids {
		k.walkAttrs(out)
	}
	if p.Op >= PredEq && p.Op <= PredGe {
		if !out.Contains(p.Left) {
			*out = append(*out, p.Left)
		}
		if p.AttrCmp && !out.Contains(p.Right) {
			*out = append(*out, p.Right)
		}
	}
}

// RefersOnlyTo reports whether every attribute referenced by p is in set.
// Rules use it to decide predicate pushdown applicability.
func (p *Pred) RefersOnlyTo(set Attrs) bool {
	return set.ContainsAll(p.Attrs())
}

// IsEquiJoin reports whether p is a single attribute-attribute equality.
func (p *Pred) IsEquiJoin() bool {
	return p != nil && p.Op == PredEq && p.AttrCmp
}

// SplitBy partitions the conjuncts of p into those referring only to the
// given attribute set and the rest, returning the two conjunctions.
func (p *Pred) SplitBy(set Attrs) (within, rest *Pred) {
	var in, out []*Pred
	for _, c := range p.Conjuncts() {
		if c.RefersOnlyTo(set) {
			in = append(in, c)
		} else {
			out = append(out, c)
		}
	}
	return And(in...), And(out...)
}
