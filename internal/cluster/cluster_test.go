package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"prairie/internal/plancache"
)

// memBackend adapts a plancache.Cache[[]byte] as a cluster Backend —
// the same flight machinery the real server backend wraps, with opaque
// byte payloads. A payload of "garbage" simulates an undecodable entry.
type memBackend struct {
	c *plancache.Cache[[]byte]
}

func newMemBackend(capacity int) *memBackend {
	return &memBackend{c: plancache.New[[]byte](capacity)}
}

func (b *memBackend) key(world string, fp uint64, canon string, epoch uint64) plancache.Key {
	return plancache.Key{Fingerprint: fp, Canon: world + "|" + canon, Scope: 1, Epoch: epoch}
}

func (b *memBackend) Epoch() uint64             { return b.c.Epoch() }
func (b *memBackend) AdvanceTo(e uint64) uint64 { return b.c.AdvanceTo(e) }

func (b *memBackend) Acquire(world string, fp uint64, canon string, epoch uint64) (Acquired, bool) {
	return &memAcq{a: b.c.Acquire(b.key(world, fp, canon, epoch))}, true
}

func (b *memBackend) Insert(world string, fp uint64, canon string, epoch uint64, payload []byte) bool {
	if bytes.Equal(payload, []byte(`"garbage"`)) {
		return false
	}
	b.c.Put(b.key(world, fp, canon, epoch), payload)
	return true
}

type memAcq struct {
	a *plancache.Acquired[[]byte]
}

func (m *memAcq) Hit() ([]byte, bool) {
	if m.a.Hit {
		return m.a.Value, true
	}
	return nil, false
}

func (m *memAcq) Leader() bool { return m.a.Leader }

func (m *memAcq) Wait(ctx context.Context) ([]byte, bool) {
	v, ok, err := m.a.Wait(ctx)
	return v, ok && err == nil
}

func (m *memAcq) Complete(payload []byte) bool {
	if bytes.Equal(payload, []byte(`"garbage"`)) {
		m.a.Complete(nil, false)
		return false
	}
	m.a.Complete(payload, true)
	return true
}

func (m *memAcq) Abandon() { m.a.Complete(nil, false) }

// delegator lets us stand up httptest servers before the Nodes whose
// handlers they will serve (the membership needs the URLs first).
type delegator struct {
	mu sync.RWMutex
	h  http.Handler
}

func (d *delegator) set(h http.Handler) {
	d.mu.Lock()
	d.h = h
	d.mu.Unlock()
}

func (d *delegator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d.mu.RLock()
	h := d.h
	d.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// twoNodes stands up an a/b cluster over real HTTP with memBackends.
func twoNodes(t *testing.T, tune func(*Config)) (na, nb *Node, ba, bb *memBackend) {
	t.Helper()
	da, db := &delegator{}, &delegator{}
	sa, sb := httptest.NewServer(da), httptest.NewServer(db)
	t.Cleanup(sa.Close)
	t.Cleanup(sb.Close)
	peers := []Peer{{ID: "a", URL: sa.URL}, {ID: "b", URL: sb.URL}}
	ba, bb = newMemBackend(64), newMemBackend(64)
	mk := func(self string, b *memBackend) *Node {
		cfg := Config{Self: self, Peers: peers, Secret: "test-secret"}
		if tune != nil {
			tune(&cfg)
		}
		n, err := New(cfg, b, nil)
		if err != nil {
			t.Fatalf("New(%s): %v", self, err)
		}
		t.Cleanup(n.Close)
		return n
	}
	na, nb = mk("a", ba), mk("b", bb)
	da.set(na.Handler())
	db.set(nb.Handler())
	return na, nb, ba, bb
}

// fpOwnedBy finds a fingerprint whose key lands on the wanted member.
func fpOwnedBy(t *testing.T, ring *Ring, world, want string) uint64 {
	t.Helper()
	for fp := uint64(0); fp < 10_000; fp++ {
		if ring.Owner(KeyHash(world, fp)) == want {
			return fp
		}
	}
	t.Fatalf("no fingerprint owned by %q in 10k tries", want)
	return 0
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	r1, err := NewRing(ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same members in a different order must yield the identical ring.
	r2, err := NewRing([]string{"n3", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 20_000
	for i := 0; i < keys; i++ {
		h := KeyHash("w", uint64(i)*0x9e3779b97f4a7c15)
		o1, o2 := r1.Owner(h), r2.Owner(h)
		if o1 != o2 {
			t.Fatalf("rings disagree on key %d: %s vs %s", i, o1, o2)
		}
		counts[o1]++
	}
	for id, c := range counts {
		frac := float64(c) / keys
		if frac < 0.20 || frac > 0.47 {
			t.Errorf("member %s owns %.1f%% of keys; want roughly a third", id, 100*frac)
		}
	}
	if _, err := NewRing([]string{"x", "x"}, 0); err == nil {
		t.Error("duplicate member accepted")
	}
}

// TestRingRemapStability: adding a member moves only the keys it takes
// over — consistent hashing's point.
func TestRingRemapStability(t *testing.T) {
	r2, _ := NewRing([]string{"a", "b"}, 0)
	r3, _ := NewRing([]string{"a", "b", "c"}, 0)
	const keys = 10_000
	moved := 0
	for i := 0; i < keys; i++ {
		h := KeyHash("w", uint64(i)*0x9e3779b97f4a7c15)
		o2, o3 := r2.Owner(h), r3.Owner(h)
		if o2 != o3 {
			if o3 != "c" {
				t.Fatalf("key moved between surviving members: %s -> %s", o2, o3)
			}
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac < 0.15 || frac > 0.50 {
		t.Errorf("%.1f%% of keys moved when adding a third member; want roughly a third", 100*frac)
	}
}

func TestHotTrackerPromotion(t *testing.T) {
	tr := newHotTracker(3, 10*time.Second, 4)
	now := time.Unix(1000, 0)
	tr.now = func() time.Time { return now }
	k := hotKey{world: "w", fp: 1}
	if tr.observeFill(k) || tr.observeFill(k) {
		t.Fatal("promoted below threshold")
	}
	if !tr.observeFill(k) {
		t.Fatal("third rapid fill should promote at threshold 3")
	}
	if !tr.isHot(k) {
		t.Fatal("promoted key not hot")
	}
	// A long silence decays the score below threshold/2: demoted.
	now = now.Add(time.Minute)
	if tr.isHot(k) {
		t.Fatal("key still hot after a minute of silence")
	}
	// The promoted set is bounded.
	tr2 := newHotTracker(1, 10*time.Second, 2)
	tr2.now = func() time.Time { return now }
	promoted := 0
	for fp := uint64(0); fp < 10; fp++ {
		if tr2.observeFill(hotKey{world: "w", fp: fp}) {
			promoted++
		}
	}
	if promoted != 2 {
		t.Fatalf("promoted %d keys with MaxHot=2", promoted)
	}
	// Disabled tracker never promotes.
	var off *hotTracker
	if off.observeFill(k) || off.isHot(k) {
		t.Fatal("nil tracker promoted")
	}
}

// TestPeerFillFlow walks the whole protocol: lead on owner miss, put
// completes the lease, subsequent fetches hit, and a parked follower
// adopts the put (cluster-wide collapse).
func TestPeerFillFlow(t *testing.T) {
	na, nb, _, _ := twoNodes(t, nil)
	fp := fpOwnedBy(t, na.ring, "w", "a")
	if !na.Owns("w", fp) || nb.Owns("w", fp) {
		t.Fatal("ownership disagreement")
	}
	ctx := context.Background()

	// B misses locally, asks owner A: granted the cluster-wide lead.
	payload, _, out := nb.Fetch(ctx, "w", fp, "q", 0)
	if out != OutcomeLead || payload != nil {
		t.Fatalf("first fetch = %v, want lead", out)
	}

	// A concurrent fetch for the same key parks behind the lease...
	type res struct {
		payload []byte
		out     Outcome
	}
	parked := make(chan res, 1)
	go func() {
		p, _, o := nb.Fetch(ctx, "w", fp, "q", 0)
		parked <- res{p, o}
	}()
	time.Sleep(50 * time.Millisecond) // let it reach the owner and park

	// ...until B puts the computed entry back.
	nb.Offer("w", fp, "q", 0, []byte(`"plan-bytes"`))
	got := <-parked
	if got.out != OutcomeCollapsed {
		t.Fatalf("parked fetch = %v, want collapsed", got.out)
	}
	if string(got.payload) != `"plan-bytes"` {
		t.Fatalf("parked fetch payload = %s", got.payload)
	}

	// Plain fetches now hit the owner's shard.
	payload, _, out = nb.Fetch(ctx, "w", fp, "q", 0)
	if out != OutcomeHit || string(payload) != `"plan-bytes"` {
		t.Fatalf("warm fetch = %v %s, want hit", out, payload)
	}
}

// TestEpochReconciliation: both directions. A requester ahead of the
// owner silently advances the owner; a requester behind gets "stale"
// and its local epoch advanced.
func TestEpochReconciliation(t *testing.T) {
	na, nb, ba, bb := twoNodes(t, nil)
	fp := fpOwnedBy(t, na.ring, "w", "a")
	ctx := context.Background()

	// Requester ahead: owner adopts epoch 3 before looking up.
	bb.AdvanceTo(3)
	if _, _, out := nb.Fetch(ctx, "w", fp, "q", 3); out != OutcomeLead {
		t.Fatalf("ahead fetch = %v, want lead", out)
	}
	if e := ba.Epoch(); e != 3 {
		t.Fatalf("owner epoch = %d, want 3 (adopted from requester)", e)
	}

	// Requester behind: stale answer, local epoch advanced — the caller
	// rebuilds its key under epoch 5 and must not serve the old plan.
	ba.AdvanceTo(5)
	if _, _, out := nb.Fetch(ctx, "w", fp, "q", 3); out != OutcomeStale {
		t.Fatalf("behind fetch = %v, want stale", out)
	}
	if e := bb.Epoch(); e != 5 {
		t.Fatalf("requester epoch = %d, want 5 (reconciled)", e)
	}
}

func TestBroadcastEpoch(t *testing.T) {
	_, nb, ba, bb := twoNodes(t, nil)
	bb.AdvanceTo(9)
	if n := nb.BroadcastEpoch(context.Background(), 9); n != 1 {
		t.Fatalf("notified %d peers, want 1", n)
	}
	if e := ba.Epoch(); e != 9 {
		t.Fatalf("peer epoch after broadcast = %d, want 9", e)
	}
}

// TestPeerDownMarking: consecutive failures mark the peer down
// (requests skip it without an RPC), and the mark expires.
func TestPeerDownMarking(t *testing.T) {
	// Peer "a" listens nowhere: grab a port and close it.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	cfg := Config{
		Self:        "b",
		Peers:       []Peer{{ID: "a", URL: deadURL}, {ID: "b", URL: "http://unused"}},
		Secret:      "test-secret",
		DownAfter:   2,
		DownFor:     150 * time.Millisecond,
		PeerTimeout: 100 * time.Millisecond,
	}
	nb, err := New(cfg, newMemBackend(16), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer nb.Close()
	fp := fpOwnedBy(t, nb.ring, "w", "a")
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, _, out := nb.Fetch(ctx, "w", fp, "q", 0); out != OutcomeError {
			t.Fatalf("fetch %d = %v, want error", i, out)
		}
	}
	// Marked down: skipped without an RPC.
	start := time.Now()
	if _, _, out := nb.Fetch(ctx, "w", fp, "q", 0); out != OutcomeDown {
		t.Fatalf("fetch while down = %v, want down", out)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("down skip took %v; should not have dialed", d)
	}
	if st := nb.Status(); len(st.PeersDown) != 1 || st.PeersDown[0] != "a" {
		t.Fatalf("Status.PeersDown = %v, want [a]", st.PeersDown)
	}
	// The mark expires; the next fetch probes again.
	time.Sleep(200 * time.Millisecond)
	if _, _, out := nb.Fetch(ctx, "w", fp, "q", 0); out != OutcomeError {
		t.Fatalf("fetch after backoff = %v, want error (probe)", out)
	}
}

// TestLeaseExpiry: an unfulfilled lease abandons the flight after TTL,
// releasing followers to their own searches; the key can be led again.
func TestLeaseExpiry(t *testing.T) {
	na, nb, _, _ := twoNodes(t, func(c *Config) {
		c.LeaseTTL = 100 * time.Millisecond
	})
	fp := fpOwnedBy(t, na.ring, "w", "a")
	ctx := context.Background()

	if _, _, out := nb.Fetch(ctx, "w", fp, "q", 0); out != OutcomeLead {
		t.Fatal("want lead")
	}
	// The put never arrives. A follower parks and is released empty.
	start := time.Now()
	_, _, out := nb.Fetch(ctx, "w", fp, "q", 0)
	if out != OutcomeMiss {
		t.Fatalf("fetch during dead lease = %v, want miss", out)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("follower waited %v; lease should expire at 100ms", d)
	}
	// The flight is gone: the next fetch leads again.
	if _, _, out := nb.Fetch(ctx, "w", fp, "q", 0); out != OutcomeLead {
		t.Fatalf("post-expiry fetch = %v, want lead", out)
	}
}

// TestGarbagePayloadPut: an undecodable put must not wedge the lease's
// followers or store anything.
func TestGarbagePayloadPut(t *testing.T) {
	na, nb, ba, _ := twoNodes(t, nil)
	fp := fpOwnedBy(t, na.ring, "w", "a")
	ctx := context.Background()

	if _, _, out := nb.Fetch(ctx, "w", fp, "q", 0); out != OutcomeLead {
		t.Fatal("want lead")
	}
	nb.Offer("w", fp, "q", 0, []byte(`"garbage"`))
	// The offer is asynchronous: poll until the garbage put has resolved
	// the flight empty, at which point a fetch leads again rather than
	// hanging (a fetch racing ahead of the put parks and is released as
	// a miss — also fine, retry).
	deadline := time.Now().Add(5 * time.Second)
	var out Outcome
	for time.Now().Before(deadline) {
		_, _, out = nb.Fetch(ctx, "w", fp, "q", 0)
		if out == OutcomeLead {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if out != OutcomeLead {
		t.Fatalf("post-garbage fetch = %v, want lead", out)
	}
	if got := ba.c.Len(); got != 0 {
		t.Fatalf("garbage payload stored: %d entries", got)
	}
}

func TestConfigValidation(t *testing.T) {
	b := newMemBackend(4)
	if _, err := New(Config{}, b, nil); err == nil {
		t.Error("empty Self accepted")
	}
	if _, err := New(Config{Self: "a", Peers: []Peer{{ID: "b", URL: "http://x"}}}, b, nil); err == nil {
		t.Error("Self missing from Peers accepted")
	}
	if _, err := New(Config{Self: "a", Peers: []Peer{{ID: "a"}, {ID: "b"}}}, b, nil); err == nil {
		t.Error("remote peer without URL accepted")
	}
	if _, err := New(Config{Self: "a", Peers: []Peer{{ID: "a"}, {ID: "b", URL: "http://x"}}}, b, nil); err == nil {
		t.Error("multi-node cluster without a secret accepted")
	}
	// Single-node cluster: every key is self-owned, no RPC ever.
	n, err := New(Config{Self: "solo"}, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for fp := uint64(0); fp < 100; fp++ {
		if !n.Owns("w", fp) {
			t.Fatal("single-node cluster does not own a key")
		}
	}
	if _, _, out := n.Fetch(context.Background(), "w", 1, "q", 0); out != OutcomeSelf {
		t.Fatal("single-node fetch should be OutcomeSelf")
	}
}

// soloHTTPNode stands up one node behind a real HTTP listener (its
// remote peer is never dialed) for tests that speak the peer protocol
// directly over the wire.
func soloHTTPNode(t *testing.T, tune func(*Config)) (*Node, *memBackend, string) {
	t.Helper()
	da := &delegator{}
	sa := httptest.NewServer(da)
	t.Cleanup(sa.Close)
	ba := newMemBackend(16)
	cfg := Config{
		Self:   "a",
		Peers:  []Peer{{ID: "a", URL: sa.URL}, {ID: "b", URL: "http://127.0.0.1:1"}},
		Secret: "s3cret",
	}
	if tune != nil {
		tune(&cfg)
	}
	na, err := New(cfg, ba, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(na.Close)
	da.set(na.Handler())
	return na, ba, sa.URL
}

// TestPeerEndpointAuth: the peer endpoints are mounted on the public
// mux, so they must reject requests without the shared secret — an
// unauthenticated put could poison a deterministic cache slot, and an
// unauthenticated epoch could wind the cluster epoch to MaxUint64
// (wedging Invalidate's wrap-around) on every member.
func TestPeerEndpointAuth(t *testing.T) {
	_, ba, base := soloHTTPNode(t, nil)
	post := func(path, body, secret string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if secret != "" {
			req.Header.Set(AuthHeader, secret)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	bomb := `{"epoch": 18446744073709551615}`
	for _, secret := range []string{"", "wrong"} {
		for _, path := range []string{PeerEpochPath, PeerPutPath, PeerGetPath} {
			if code := post(path, bomb, secret); code != http.StatusUnauthorized {
				t.Fatalf("%s with secret %q: status %d, want 401", path, secret, code)
			}
		}
	}
	if e := ba.Epoch(); e != 0 {
		t.Fatalf("epoch moved to %d by unauthenticated requests", e)
	}
	if code := post(PeerEpochPath, `{"epoch": 7}`, "s3cret"); code != http.StatusOK {
		t.Fatalf("authenticated epoch: status %d", code)
	}
	if e := ba.Epoch(); e != 7 {
		t.Fatalf("epoch = %d after authenticated advance, want 7", e)
	}
}

// TestZeroWaitGetDoesNotPark: a requester whose deadline is exhausted
// sends wait_ms=0 — the owner must answer a follower position as an
// immediate miss instead of parking the handler goroutine for the
// WaitForLeader default long after the requester disconnected.
func TestZeroWaitGetDoesNotPark(t *testing.T) {
	_, ba, base := soloHTTPNode(t, func(c *Config) {
		c.WaitForLeader = 5 * time.Second
	})
	// Open an in-flight search for the key, as a concurrent local
	// optimization would; the wire request below is then a follower.
	acq, ok := ba.Acquire("w", 1, "q", 0)
	if !ok || !acq.Leader() {
		t.Fatal("local acquire did not lead")
	}
	defer acq.Abandon()

	req, err := http.NewRequest(http.MethodPost, base+PeerGetPath,
		strings.NewReader(`{"world":"w","fp":1,"canon":"q","epoch":0,"wait_ms":0}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(AuthHeader, "s3cret")
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var gr getResponse
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		t.Fatal(err)
	}
	if gr.Outcome != "miss" {
		t.Fatalf("zero-wait follower get = %q, want miss", gr.Outcome)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("zero-wait get took %v; the handler parked", d)
	}
}

// TestAbandonReleasesFollowers: when the granted leader's optimization
// errs or degrades, its abandon put must release the owner's parked
// followers immediately — not after LeaseTTL.
func TestAbandonReleasesFollowers(t *testing.T) {
	na, nb, _, _ := twoNodes(t, func(c *Config) {
		c.LeaseTTL = 30 * time.Second
		c.WaitForLeader = 10 * time.Second
	})
	fp := fpOwnedBy(t, na.ring, "w", "a")
	ctx := context.Background()
	if _, _, out := nb.Fetch(ctx, "w", fp, "q", 0); out != OutcomeLead {
		t.Fatal("want lead")
	}
	done := make(chan Outcome, 1)
	go func() {
		_, _, out := nb.Fetch(ctx, "w", fp, "q", 0)
		done <- out
	}()
	time.Sleep(50 * time.Millisecond) // let the follower reach the owner and park
	start := time.Now()
	nb.Abandon("w", fp, "q", 0)
	select {
	case out := <-done:
		if out != OutcomeMiss {
			t.Fatalf("follower released with %v, want miss", out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower still parked 5s after abandon (lease TTL is 30s)")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("follower released %v after abandon; should be immediate", d)
	}
	// The flight is gone: the next fetch leads again.
	if _, _, out := nb.Fetch(ctx, "w", fp, "q", 0); out != OutcomeLead {
		t.Fatalf("post-abandon fetch = %v, want lead", out)
	}
}

// TestOfferDropAbandons: when the bounded offer pool is saturated the
// payload is dropped, but the owner's lease must still be released so
// followers recompute instead of waiting out the TTL.
func TestOfferDropAbandons(t *testing.T) {
	na, nb, _, _ := twoNodes(t, func(c *Config) {
		c.LeaseTTL = 30 * time.Second
	})
	fp := fpOwnedBy(t, na.ring, "w", "a")
	ctx := context.Background()
	if _, _, out := nb.Fetch(ctx, "w", fp, "q", 0); out != OutcomeLead {
		t.Fatal("want lead")
	}
	// Saturate the offer pool so the payload put is dropped on the floor.
	for i := 0; i < cap(nb.offerSem); i++ {
		nb.offerSem <- struct{}{}
	}
	nb.Offer("w", fp, "q", 0, []byte(`"plan-bytes"`))
	for i := 0; i < cap(nb.offerSem); i++ {
		<-nb.offerSem
	}
	// The drop-path abandon released the lease: a fetch leads again well
	// before the 30s TTL (poll — the abandon is asynchronous, and a
	// fetch racing ahead of it parks briefly and is released as a miss).
	deadline := time.Now().Add(5 * time.Second)
	var out Outcome
	for time.Now().Before(deadline) {
		_, _, out = nb.Fetch(ctx, "w", fp, "q", 0)
		if out == OutcomeLead {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if out != OutcomeLead {
		t.Fatalf("fetch after dropped offer = %v, want lead (lease released)", out)
	}
}

// TestHotTrackerSweep: a full promoted set whose keys went cold must
// not block new promotions forever. Promoted keys are served from the
// local replica, so their traffic never reaches the tracker again —
// demotion has to come from the sweep on blocked promotion attempts
// and on the metrics path (counts).
func TestHotTrackerSweep(t *testing.T) {
	tr := newHotTracker(1, 10*time.Second, 2)
	now := time.Unix(1000, 0)
	tr.now = func() time.Time { return now }
	if !tr.observeFill(hotKey{world: "w", fp: 1}) || !tr.observeFill(hotKey{world: "w", fp: 2}) {
		t.Fatal("keys not promoted at threshold 1")
	}
	if _, hot := tr.counts(); hot != 2 {
		t.Fatalf("promoted = %d, want 2", hot)
	}
	// Both go fully cold. A new key crossing the threshold must still
	// promote: the blocked attempt sweeps the decayed set first.
	now = now.Add(5 * time.Minute)
	if !tr.observeFill(hotKey{world: "w", fp: 3}) {
		t.Fatal("promotion blocked by decayed hot keys")
	}
	if tr.isHot(hotKey{world: "w", fp: 1}) || tr.isHot(hotKey{world: "w", fp: 2}) {
		t.Fatal("cold keys still promoted after sweep")
	}
	// The metrics path alone also demotes: promote, go cold, scrape.
	now = now.Add(5 * time.Minute)
	if !tr.observeFill(hotKey{world: "w", fp: 4}) {
		t.Fatal("fp 4 not promoted")
	}
	now = now.Add(5 * time.Minute)
	if _, hot := tr.counts(); hot != 0 {
		t.Fatalf("counts kept %d cold keys promoted", hot)
	}
}
