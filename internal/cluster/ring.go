// Package cluster makes the plan cache horizontally scalable: a
// consistent-hash ring assigns every canonical query fingerprint an
// owning node out of a static peer list, and a compact HTTP/JSON peer
// protocol (/v1/peer/get, /v1/peer/put, /v1/peer/epoch) lets a node
// serve another node's miss — or park it behind an in-progress
// optimization, extending the plan cache's singleflight collapse
// cluster-wide. A per-key EWMA promotes zipfian head keys into a small
// replicated tier served locally on every node, and epoch invalidation
// fans out with monotonic reconciliation so a lagging peer never serves
// a stale-epoch plan.
//
// The package is transport-and-bytes only: cache entries are opaque
// payloads behind the Backend interface, which internal/server
// implements over the shared plan cache and the wire codec. Peer
// failures degrade, never error — a timed-out or down peer means the
// local node optimizes itself, and a peer that fails repeatedly is
// skipped entirely until a backoff expires.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. Construction is
// deterministic in the member list alone (ids are hashed, order is
// irrelevant), so every node of a cluster derives the identical
// assignment from the same static configuration — no coordination,
// no gossip.
type Ring struct {
	points []ringPoint // sorted by hash
	ids    []string    // distinct member ids, sorted
}

type ringPoint struct {
	h  uint64
	id string
}

// DefaultVNodes is the virtual-node count per member: enough points
// that a 2–8 node ring balances within a few percent, few enough that
// building and searching the ring stays trivial.
const DefaultVNodes = 64

// NewRing builds a ring over the member ids with vnodes virtual nodes
// each (vnodes <= 0 uses DefaultVNodes). Duplicate ids are an error —
// a membership typo must not silently double a node's arc.
func NewRing(ids []string, vnodes int) (*Ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate member id %q", sorted[i])
		}
	}
	r := &Ring{ids: sorted, points: make([]ringPoint, 0, len(sorted)*vnodes)}
	for _, id := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{h: ringHash(fmt.Sprintf("%s#%d", id, v)), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Hash ties break by id so equal-hash points still order
		// deterministically across nodes.
		return r.points[i].id < r.points[j].id
	})
	return r, nil
}

// ringHash is FNV-1a finished with an avalanche mix: FNV alone is too
// sequential for vnode suffixes ("a#1", "a#2", ...) to spread, and the
// ring's balance is only as good as its point spread.
func ringHash(s string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Members returns the member ids, sorted.
func (r *Ring) Members() []string { return r.ids }

// Owner returns the member owning hash h: the first ring point
// clockwise from h.
func (r *Ring) Owner(h uint64) string {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id
}

// KeyHash folds a world name and a query fingerprint into the ring
// position identifying the entry's owner. The world name participates
// so distinct worlds spread independently even where fingerprint
// spaces overlap.
func KeyHash(world string, fp uint64) uint64 {
	h := ringHash(world)
	h ^= fp
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
