package cluster

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"net/http"
	"time"
)

// This file is the owner side of the peer protocol: the HTTP handlers
// a node serves its shard from. The flow mirrors the plan cache's own
// singleflight, which is what makes the collapse cluster-wide:
//
//	get  → hit: answer from the shard.
//	     → lead: this node's cache missed and the requester is granted
//	       a lease — it optimizes and puts the result back, resolving
//	       the flight for every local and remote follower. The lease
//	       expires after LeaseTTL so a crashed requester cannot wedge
//	       followers forever.
//	     → follower: an optimization for the key is already in flight
//	       (local, or another peer's lease); the request parks up to
//	       wait_ms and either adopts the result (hit, collapsed) or
//	       degrades (miss).
//	     → stale: the requester's epoch lags this node's; it must
//	       rebuild its key. (The reverse — this node lagging — is
//	       reconciled silently via AdvanceTo before the lookup.)
//	put  → completes the matching lease, or inserts directly.
//	epoch→ monotonic reconciliation; the invalidate fan-out target.

// Handler returns the peer-protocol endpoints; the server mounts it
// under PathPrefix. Every endpoint is guarded by the shared cluster
// secret (AuthHeader): the mux is public, and an unauthenticated put
// or epoch would let any API client poison deterministic cache slots
// or wind the cluster epoch forward.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PeerGetPath, n.handleGet)
	mux.HandleFunc(PeerPutPath, n.handlePut)
	mux.HandleFunc(PeerEpochPath, n.handleEpoch)
	return n.authenticate(mux)
}

// authenticate rejects requests that do not carry Config.Secret in
// AuthHeader (constant-time compare). A node with no secret — a
// single-node cluster, which New only allows when there are no remote
// peers — serves no peers and rejects everything.
func (n *Node) authenticate(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.cfg.Secret == "" ||
			subtle.ConstantTimeCompare([]byte(r.Header.Get(AuthHeader)), []byte(n.cfg.Secret)) != 1 {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		h.ServeHTTP(w, r)
	})
}

func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (n *Node) handleGet(w http.ResponseWriter, r *http.Request) {
	var req getRequest
	if !decodeInto(w, r, &req) {
		return
	}
	n.m.servedGets.Inc()
	local := n.backend.AdvanceTo(req.Epoch)
	if req.Epoch < local {
		// The requester lags: it must rebuild its key under the newer
		// epoch. Serving its old-epoch key would be serving a plan the
		// invalidation already cut off.
		n.m.servedStale.Inc()
		writeJSON(w, getResponse{Outcome: "stale", Epoch: local})
		return
	}
	acq, ok := n.backend.Acquire(req.World, req.FP, req.Canon, req.Epoch)
	if !ok {
		writeJSON(w, getResponse{Outcome: "miss", Epoch: local})
		return
	}
	if payload, ok := acq.Hit(); ok {
		n.m.servedHits.Inc()
		writeJSON(w, getResponse{Outcome: "hit", Payload: payload, Epoch: local})
		return
	}
	if acq.Leader() {
		n.registerLease(leaseKey{world: req.World, fp: req.FP, canon: req.Canon, epoch: req.Epoch}, acq)
		n.m.servedLeads.Inc()
		writeJSON(w, getResponse{Outcome: "lead", Epoch: local})
		return
	}
	// Follower: an optimization is in flight somewhere in the cluster.
	// wait_ms is the requester's parking budget; only the upper bound
	// is clamped. Zero (or absent) means the requester's own deadline
	// is nearly exhausted — parking the handler for the default would
	// strand a goroutine long after the requester disconnected, so the
	// answer is an immediate miss.
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait > n.cfg.WaitForLeader {
		wait = n.cfg.WaitForLeader
	}
	if wait <= 0 {
		writeJSON(w, getResponse{Outcome: "miss", Epoch: local})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	if payload, ok := acq.Wait(ctx); ok {
		n.m.servedWaits.Inc()
		writeJSON(w, getResponse{Outcome: "hit", Collapsed: true, Payload: payload, Epoch: local})
		return
	}
	writeJSON(w, getResponse{Outcome: "miss", Epoch: local})
}

func (n *Node) handlePut(w http.ResponseWriter, r *http.Request) {
	var req putRequest
	if !decodeInto(w, r, &req) {
		return
	}
	local := n.backend.AdvanceTo(req.Epoch)
	k := leaseKey{world: req.World, fp: req.FP, canon: req.Canon, epoch: req.Epoch}
	if req.Abandon || req.Epoch < local {
		// An explicit abandon (the lessee's optimization errored or
		// degraded), or a put computed under an invalidated epoch:
		// storing the latter would be harmless (the key embeds the
		// epoch, so nothing can hit it) but pointless. Either way,
		// resolving a matching lease empty releases followers to
		// recompute now instead of waiting out LeaseTTL.
		if l, ok := n.takeLease(k); ok {
			l.acq.Abandon()
		}
		writeJSON(w, putResponse{Stored: false, Epoch: local})
		return
	}
	stored := false
	if l, ok := n.takeLease(k); ok {
		stored = l.acq.Complete(req.Payload)
	} else {
		stored = n.backend.Insert(req.World, req.FP, req.Canon, req.Epoch, req.Payload)
	}
	if stored {
		n.m.servedPuts.Inc()
	}
	writeJSON(w, putResponse{Stored: stored, Epoch: local})
}

func (n *Node) handleEpoch(w http.ResponseWriter, r *http.Request) {
	var req epochMsg
	if !decodeInto(w, r, &req) {
		return
	}
	writeJSON(w, epochMsg{Epoch: n.backend.AdvanceTo(req.Epoch)})
}

// registerLease parks an owner-side led flight awaiting the remote
// leader's put. The TTL timer abandons it if the put never arrives.
func (n *Node) registerLease(k leaseKey, acq Acquired) {
	l := &lease{acq: acq}
	l.timer = time.AfterFunc(n.cfg.LeaseTTL, func() {
		n.leaseMu.Lock()
		cur, ok := n.leases[k]
		if ok && cur == l {
			delete(n.leases, k)
		}
		n.leaseMu.Unlock()
		if ok && cur == l {
			n.m.leaseExpired.Inc()
			l.acq.Abandon()
		}
	})
	n.leaseMu.Lock()
	n.leases[k] = l
	n.leaseMu.Unlock()
}

// takeLease removes and returns the lease for k, stopping its timer.
func (n *Node) takeLease(k leaseKey) (*lease, bool) {
	n.leaseMu.Lock()
	l, ok := n.leases[k]
	if ok {
		delete(n.leases, k)
	}
	n.leaseMu.Unlock()
	if ok {
		l.timer.Stop()
	}
	return l, ok
}
