package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"prairie/internal/obs"
)

// Peer is one static cluster member.
type Peer struct {
	// ID names the member on the ring; it must be unique and identical
	// in every node's configuration.
	ID string
	// URL is the member's base URL (e.g. "http://10.0.0.2:8080"); the
	// peer endpoints are resolved under it. May be empty for Self.
	URL string
}

// Config describes a node's place in the cluster. The zero value of
// every tuning field picks a sensible default; only Self (and Peers,
// for a multi-node cluster) must be set.
type Config struct {
	// Self is this node's member id.
	Self string
	// Peers is the full static membership, including Self. Empty means
	// a single-node cluster of just Self.
	Peers []Peer
	// Secret authenticates the peer protocol: every peer RPC carries it
	// in AuthHeader and Handler rejects mismatches. It is required when
	// Peers names any remote member — the peer endpoints are mounted on
	// the public API mux, and without authentication any client that
	// can reach the service could poison owned cache slots (put) or
	// advance the cluster epoch (epoch). Every member must be
	// configured with the same value.
	Secret string
	// VNodes is the virtual-node count per member (DefaultVNodes).
	VNodes int
	// PeerTimeout bounds the transport time of one peer RPC beyond any
	// requested leader wait (default 250ms).
	PeerTimeout time.Duration
	// WaitForLeader bounds how long a get parks behind the owner's
	// in-progress optimization before degrading to a local search
	// (default 2s).
	WaitForLeader time.Duration
	// DownAfter marks a peer down after this many consecutive RPC
	// failures (default 3).
	DownAfter int
	// DownFor is how long a down peer is skipped before the next
	// request probes it again (default 5s).
	DownFor time.Duration
	// LeaseTTL bounds how long the owner holds a flight open for a
	// remote leader before releasing followers empty (default 5s).
	LeaseTTL time.Duration
	// HotAfter is the decayed fill-rate threshold that promotes a key
	// into the replicated tier; 0 uses the default (4), negative
	// disables hot-key replication.
	HotAfter float64
	// HotHalfLife is the EWMA half-life (default 10s).
	HotHalfLife time.Duration
	// MaxHot bounds the promoted set per node (default 64).
	MaxHot int
}

func (c Config) withDefaults() Config {
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 250 * time.Millisecond
	}
	if c.WaitForLeader <= 0 {
		c.WaitForLeader = 2 * time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.DownFor <= 0 {
		c.DownFor = 5 * time.Second
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 5 * time.Second
	}
	if c.HotAfter == 0 {
		c.HotAfter = 4
	}
	return c
}

// Backend is the node-local cache surface the peer endpoints serve
// from. internal/server implements it over the shared plan cache and
// the wire codec; payloads are opaque bytes to this package.
type Backend interface {
	// Epoch returns the local cache generation.
	Epoch() uint64
	// AdvanceTo raises the local epoch to at least e (monotonic).
	AdvanceTo(e uint64) uint64
	// Acquire opens an owner-side lookup for (world, fp, canon, epoch).
	// ok is false when the world is unknown to this node — the peer
	// then degrades to a local search.
	Acquire(world string, fp uint64, canon string, epoch uint64) (Acquired, bool)
	// Insert decodes and stores a peer-offered payload, reporting
	// whether it decoded.
	Insert(world string, fp uint64, canon string, epoch uint64, payload []byte) bool
}

// Acquired is one owner-side lookup: a hit, the lead on a miss, or a
// follower position behind an in-progress flight.
type Acquired interface {
	// Hit returns the encoded entry when the lookup hit.
	Hit() ([]byte, bool)
	// Leader reports whether this lookup owns the miss.
	Leader() bool
	// Wait parks a follower until the leader completes or ctx expires.
	Wait(ctx context.Context) ([]byte, bool)
	// Complete resolves a led flight with a remote leader's payload,
	// storing and sharing it; returns false (and resolves the flight
	// empty) when the payload does not decode.
	Complete(payload []byte) bool
	// Abandon resolves a led flight empty (lease expiry): followers run
	// their own searches.
	Abandon()
}

// Peer protocol paths, mounted by the server under its API mux.
const (
	PathPrefix    = "/v1/peer/"
	PeerGetPath   = "/v1/peer/get"
	PeerPutPath   = "/v1/peer/put"
	PeerEpochPath = "/v1/peer/epoch"
)

// AuthHeader carries Config.Secret on every peer RPC; Handler rejects
// requests whose header does not match.
const AuthHeader = "X-Prairie-Cluster-Key"

// Outcome classifies one Fetch.
type Outcome int

const (
	OutcomeSelf      Outcome = iota // key owned locally; no RPC
	OutcomeHit                      // owner served the entry
	OutcomeCollapsed                // owner parked us behind a flight and shared its result
	OutcomeLead                     // owner missed; we hold the cluster-wide lease
	OutcomeMiss                     // owner missed and could not grant or resolve a lease
	OutcomeStale                    // our epoch lagged; local epoch has been advanced
	OutcomeDown                     // owner marked down; skipped without an RPC
	OutcomeError                    // transport failure or garbage answer
)

func (o Outcome) String() string {
	switch o {
	case OutcomeSelf:
		return "self"
	case OutcomeHit:
		return "hit"
	case OutcomeCollapsed:
		return "collapsed"
	case OutcomeLead:
		return "lead"
	case OutcomeMiss:
		return "miss"
	case OutcomeStale:
		return "stale"
	case OutcomeDown:
		return "down"
	default:
		return "error"
	}
}

// getRequest asks the owner for one entry. WaitMS is the requester's
// parking budget behind an in-progress flight: zero (or absent) means
// it has no time left and must not be parked at all — the owner
// answers a follower position as an immediate miss.
type getRequest struct {
	World  string `json:"world"`
	FP     uint64 `json:"fp"`
	Canon  string `json:"canon"`
	Epoch  uint64 `json:"epoch"`
	WaitMS int64  `json:"wait_ms,omitempty"`
}

// getResponse carries the owner's answer plus its epoch — every peer
// exchange doubles as epoch reconciliation in both directions.
type getResponse struct {
	Outcome   string          `json:"outcome"` // hit | lead | miss | stale
	Collapsed bool            `json:"collapsed,omitempty"`
	Payload   json.RawMessage `json:"payload,omitempty"`
	Epoch     uint64          `json:"epoch"`
}

type putRequest struct {
	World   string          `json:"world"`
	FP      uint64          `json:"fp"`
	Canon   string          `json:"canon"`
	Epoch   uint64          `json:"epoch"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// Abandon releases any lease the owner holds for this key without
	// a payload: the granted leader's optimization errored or degraded
	// (or its offer was dropped under pressure), so parked followers
	// should recompute now instead of waiting out LeaseTTL.
	Abandon bool `json:"abandon,omitempty"`
}

type putResponse struct {
	Stored bool   `json:"stored"`
	Epoch  uint64 `json:"epoch"`
}

type epochMsg struct {
	Epoch uint64 `json:"epoch"`
}

// peerState tracks one remote member's health. Consecutive transport
// failures mark it down for DownFor; any success resets it. A long
// leader wait is not a failure — only errors and non-200s count.
type peerState struct {
	id  string
	url string

	mu        sync.Mutex
	fails     int
	downUntil time.Time
}

func (p *peerState) isDown(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return now.Before(p.downUntil)
}

// Node is this process's cluster membership: the ring, the peer
// clients, the owner-side lease table, and the hot-key tracker.
type Node struct {
	cfg     Config
	ring    *Ring
	backend Backend
	peers   map[string]*peerState // remote members only
	client  *http.Client
	hot     *hotTracker

	leaseMu sync.Mutex
	leases  map[leaseKey]*lease

	offerSem chan struct{}
	wg       sync.WaitGroup

	m nodeMetrics
}

type leaseKey struct {
	world string
	fp    uint64
	canon string
	epoch uint64
}

type lease struct {
	acq   Acquired
	timer *time.Timer
}

type nodeMetrics struct {
	peerGets      *obs.Counter
	peerFills     *obs.Counter
	peerCollapsed *obs.Counter
	peerLeads     *obs.Counter
	peerMisses    *obs.Counter
	peerStale     *obs.Counter
	peerErrors    *obs.Counter
	downSkips     *obs.Counter
	downEvents    *obs.Counter
	getSeconds    *obs.Histogram
	offers        *obs.Counter
	offersDropped *obs.Counter
	abandons      *obs.Counter
	servedGets    *obs.Counter
	servedHits    *obs.Counter
	servedWaits   *obs.Counter
	servedLeads   *obs.Counter
	servedStale   *obs.Counter
	servedPuts    *obs.Counter
	leaseExpired  *obs.Counter
	promotions    *obs.Counter

	peersDown *obs.Gauge
	hotTrack  *obs.Gauge
	hotKeys   *obs.Gauge
}

// New validates the membership and returns the node. reg may be nil
// (all metric sinks become no-ops).
func New(cfg Config, backend Backend, reg *obs.Registry) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self is required")
	}
	if backend == nil {
		return nil, fmt.Errorf("cluster: Backend is required")
	}
	cfg = cfg.withDefaults()
	if len(cfg.Peers) == 0 {
		cfg.Peers = []Peer{{ID: cfg.Self}}
	}
	ids := make([]string, 0, len(cfg.Peers))
	peers := make(map[string]*peerState, len(cfg.Peers))
	selfListed := false
	for _, p := range cfg.Peers {
		if p.ID == "" {
			return nil, fmt.Errorf("cluster: peer with empty id")
		}
		ids = append(ids, p.ID)
		if p.ID == cfg.Self {
			selfListed = true
			continue
		}
		if p.URL == "" {
			return nil, fmt.Errorf("cluster: peer %q has no url", p.ID)
		}
		u, err := url.Parse(p.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q has invalid url %q", p.ID, p.URL)
		}
		peers[p.ID] = &peerState{id: p.ID, url: u.Scheme + "://" + u.Host}
	}
	if !selfListed {
		return nil, fmt.Errorf("cluster: Self %q is not in Peers", cfg.Self)
	}
	if len(peers) > 0 && cfg.Secret == "" {
		return nil, fmt.Errorf("cluster: Config.Secret is required for a multi-node cluster (the peer endpoints are mounted on the public API mux)")
	}
	ring, err := NewRing(ids, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		ring:    ring,
		backend: backend,
		peers:   peers,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     60 * time.Second,
		}},
		hot:      newHotTracker(cfg.HotAfter, cfg.HotHalfLife, cfg.MaxHot),
		leases:   make(map[leaseKey]*lease),
		offerSem: make(chan struct{}, 8),
		m: nodeMetrics{
			peerGets:      reg.Counter("prairie_cluster_peer_gets_total"),
			peerFills:     reg.Counter("prairie_cluster_peer_fills_total"),
			peerCollapsed: reg.Counter("prairie_cluster_peer_collapsed_total"),
			peerLeads:     reg.Counter("prairie_cluster_peer_leads_total"),
			peerMisses:    reg.Counter("prairie_cluster_peer_misses_total"),
			peerStale:     reg.Counter("prairie_cluster_peer_stale_total"),
			peerErrors:    reg.Counter("prairie_cluster_peer_errors_total"),
			downSkips:     reg.Counter("prairie_cluster_peer_down_skips_total"),
			downEvents:    reg.Counter("prairie_cluster_peer_down_events_total"),
			getSeconds:    reg.Histogram("prairie_cluster_peer_get_seconds", nil),
			offers:        reg.Counter("prairie_cluster_offers_total"),
			offersDropped: reg.Counter("prairie_cluster_offers_dropped_total"),
			abandons:      reg.Counter("prairie_cluster_abandons_total"),
			servedGets:    reg.Counter("prairie_cluster_served_gets_total"),
			servedHits:    reg.Counter("prairie_cluster_served_hits_total"),
			servedWaits:   reg.Counter("prairie_cluster_served_collapsed_total"),
			servedLeads:   reg.Counter("prairie_cluster_served_leads_total"),
			servedStale:   reg.Counter("prairie_cluster_served_stale_total"),
			servedPuts:    reg.Counter("prairie_cluster_served_puts_total"),
			leaseExpired:  reg.Counter("prairie_cluster_lease_expirations_total"),
			promotions:    reg.Counter("prairie_cluster_promotions_total"),
			peersDown:     reg.Gauge("prairie_cluster_peers_down"),
			hotTrack:      reg.Gauge("prairie_cluster_hot_keys_tracked"),
			hotKeys:       reg.Gauge("prairie_cluster_hot_keys_promoted"),
		},
	}
	return n, nil
}

// Self returns this node's member id.
func (n *Node) Self() string { return n.cfg.Self }

// Owns reports whether this node owns (world, fp) on the ring.
func (n *Node) Owns(world string, fp uint64) bool {
	return n.ring.Owner(KeyHash(world, fp)) == n.cfg.Self
}

// Hot reports whether (world, fp) is currently promoted into the
// replicated tier on this node.
func (n *Node) Hot(world string, fp uint64) bool {
	return n.hot.isHot(hotKey{world: world, fp: fp})
}

// Fetch asks the key's owning peer for the entry. It never blocks past
// WaitForLeader + PeerTimeout (clamped to ctx) and never returns an
// error shape the caller must handle — every failure mode maps to an
// Outcome that degrades to a local search. promote reports that the
// key crossed the hot threshold on this fill and the fetched entry
// should be replicated locally.
func (n *Node) Fetch(ctx context.Context, world string, fp uint64, canon string, epoch uint64) (payload []byte, promote bool, out Outcome) {
	owner := n.ring.Owner(KeyHash(world, fp))
	if owner == n.cfg.Self {
		return nil, false, OutcomeSelf
	}
	p := n.peers[owner]
	if p.isDown(time.Now()) {
		n.m.downSkips.Inc()
		return nil, false, OutcomeDown
	}
	wait := n.cfg.WaitForLeader
	if dl, ok := ctx.Deadline(); ok {
		// Leave the caller margin to degrade to a local greedy plan if
		// the peer exchange eats most of the deadline.
		if rem := time.Until(dl) / 2; rem < wait {
			wait = rem
		}
	}
	if wait < 0 {
		wait = 0
	}
	n.m.peerGets.Inc()
	req := getRequest{World: world, FP: fp, Canon: canon, Epoch: epoch, WaitMS: wait.Milliseconds()}
	start := time.Now()
	var resp getResponse
	err := n.post(ctx, p, PeerGetPath, req, &resp, wait+n.cfg.PeerTimeout)
	n.m.getSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		n.fail(p)
		n.m.peerErrors.Inc()
		return nil, false, OutcomeError
	}
	n.recover(p)
	if resp.Epoch > epoch {
		n.backend.AdvanceTo(resp.Epoch)
	}
	switch resp.Outcome {
	case "hit":
		n.m.peerFills.Inc()
		out := OutcomeHit
		if resp.Collapsed {
			n.m.peerCollapsed.Inc()
			out = OutcomeCollapsed
		}
		if n.hot.observeFill(hotKey{world: world, fp: fp}) {
			n.m.promotions.Inc()
			promote = true
		}
		return resp.Payload, promote, out
	case "lead":
		n.m.peerLeads.Inc()
		return nil, false, OutcomeLead
	case "stale":
		n.m.peerStale.Inc()
		return nil, false, OutcomeStale
	case "miss":
		n.m.peerMisses.Inc()
		return nil, false, OutcomeMiss
	default:
		n.m.peerErrors.Inc()
		return nil, false, OutcomeError
	}
}

// Offer forwards a freshly computed entry to its owning peer,
// asynchronously: the serving request must not wait for replication.
// A bounded in-flight pool drops offers under pressure — the owner
// will simply recompute or re-receive the entry later.
func (n *Node) Offer(world string, fp uint64, canon string, epoch uint64, payload []byte) {
	owner := n.ring.Owner(KeyHash(world, fp))
	if owner == n.cfg.Self {
		return
	}
	p := n.peers[owner]
	if p.isDown(time.Now()) {
		n.m.downSkips.Inc()
		return
	}
	select {
	case n.offerSem <- struct{}{}:
	default:
		n.m.offersDropped.Inc()
		// The payload is dropped, but the owner may hold a lease for
		// this key with followers parked behind it — release them now
		// rather than letting the lease sit out its TTL.
		n.abandonAsync(p, world, fp, canon, epoch)
		return
	}
	n.m.offers.Inc()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer func() { <-n.offerSem }()
		req := putRequest{World: world, FP: fp, Canon: canon, Epoch: epoch, Payload: payload}
		var resp putResponse
		err := n.post(context.Background(), p, PeerPutPath, req, &resp, 2*n.cfg.PeerTimeout)
		if err != nil {
			n.fail(p)
			n.m.peerErrors.Inc()
			return
		}
		n.recover(p)
		if resp.Epoch > epoch {
			n.backend.AdvanceTo(resp.Epoch)
		}
	}()
}

// Abandon notifies the key's owning peer that a lease granted to this
// node will not be fulfilled — the local optimization errored or
// degraded — so the owner releases its parked followers (local and
// remote) immediately instead of letting the lease sit out LeaseTTL.
// Best-effort and asynchronous; on failure the TTL stays the backstop.
func (n *Node) Abandon(world string, fp uint64, canon string, epoch uint64) {
	owner := n.ring.Owner(KeyHash(world, fp))
	if owner == n.cfg.Self {
		return
	}
	n.abandonAsync(n.peers[owner], world, fp, canon, epoch)
}

// abandonAsync fires an abandon put at p without blocking the caller.
// Unlike payload offers it bypasses offerSem: an abandon is a tiny
// fixed-size request, at most one per failed optimization, and exists
// precisely to release followers when the offer path is saturated.
func (n *Node) abandonAsync(p *peerState, world string, fp uint64, canon string, epoch uint64) {
	if p.isDown(time.Now()) {
		return // unreachable; the owner's lease TTL is the backstop
	}
	n.m.abandons.Inc()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		req := putRequest{World: world, FP: fp, Canon: canon, Epoch: epoch, Abandon: true}
		var resp putResponse
		if err := n.post(context.Background(), p, PeerPutPath, req, &resp, n.cfg.PeerTimeout); err != nil {
			n.fail(p)
			return
		}
		n.recover(p)
		if resp.Epoch > epoch {
			n.backend.AdvanceTo(resp.Epoch)
		}
	}()
}

// BroadcastEpoch fans an invalidation out to every live peer and
// returns how many acknowledged. Down peers are skipped — they
// reconcile on their next peer exchange, and monotonic AdvanceTo makes
// double delivery harmless.
func (n *Node) BroadcastEpoch(ctx context.Context, epoch uint64) int {
	var wg sync.WaitGroup
	var mu sync.Mutex
	notified := 0
	for _, p := range n.peers {
		if p.isDown(time.Now()) {
			n.m.downSkips.Inc()
			continue
		}
		wg.Add(1)
		go func(p *peerState) {
			defer wg.Done()
			var resp epochMsg
			err := n.post(ctx, p, PeerEpochPath, epochMsg{Epoch: epoch}, &resp, n.cfg.PeerTimeout)
			if err != nil {
				n.fail(p)
				n.m.peerErrors.Inc()
				return
			}
			n.recover(p)
			if resp.Epoch > epoch {
				n.backend.AdvanceTo(resp.Epoch)
			}
			mu.Lock()
			notified++
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return notified
}

// Status is the cluster section of the /healthz body.
type Status struct {
	NodeID    string   `json:"node_id"`
	PeerCount int      `json:"peer_count"`
	PeersDown []string `json:"peers_down,omitempty"`
	HotKeys   int      `json:"hot_keys"`
	Epoch     uint64   `json:"epoch"`
}

// Status snapshots the membership state.
func (n *Node) Status() Status {
	st := Status{
		NodeID:    n.cfg.Self,
		PeerCount: len(n.ring.Members()),
		Epoch:     n.backend.Epoch(),
	}
	now := time.Now()
	for _, id := range n.ring.Members() {
		if p, ok := n.peers[id]; ok && p.isDown(now) {
			st.PeersDown = append(st.PeersDown, id)
		}
	}
	_, st.HotKeys = n.hot.counts()
	return st
}

// RefreshGauges publishes the point-in-time cluster gauges; the server
// calls it before serving a metrics scrape (the registry is pull-based
// with no collect hooks).
func (n *Node) RefreshGauges() {
	now := time.Now()
	down := 0
	for _, p := range n.peers {
		if p.isDown(now) {
			down++
		}
	}
	tracked, hot := n.hot.counts()
	n.m.peersDown.Set(float64(down))
	n.m.hotTrack.Set(float64(tracked))
	n.m.hotKeys.Set(float64(hot))
}

// Close abandons outstanding leases and waits for in-flight offers.
func (n *Node) Close() {
	n.leaseMu.Lock()
	leases := n.leases
	n.leases = make(map[leaseKey]*lease)
	n.leaseMu.Unlock()
	for _, l := range leases {
		l.timer.Stop()
		l.acq.Abandon()
	}
	n.wg.Wait()
	n.client.CloseIdleConnections()
}

func (n *Node) fail(p *peerState) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fails++
	if p.fails >= n.cfg.DownAfter {
		p.fails = 0
		p.downUntil = time.Now().Add(n.cfg.DownFor)
		n.m.downEvents.Inc()
	}
}

func (n *Node) recover(p *peerState) {
	p.mu.Lock()
	p.fails = 0
	p.downUntil = time.Time{}
	p.mu.Unlock()
}

// post sends one JSON request and decodes the JSON answer, bounded by
// timeout (and the caller's ctx). Any non-200 answer is a failure —
// the peer protocol has no error shapes, only degraded outcomes.
func (n *Node) post(ctx context.Context, p *peerState, path string, in, out any, timeout time.Duration) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(AuthHeader, n.cfg.Secret)
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer %s %s: status %d", p.id, path, resp.StatusCode)
	}
	return json.Unmarshal(raw, out)
}
