package cluster

import (
	"math"
	"sync"
	"time"
)

// hotTracker scores peer-filled keys with an exponentially-decayed hit
// count and promotes the head of the distribution into the replicated
// tier: once a key's decayed fill rate crosses the threshold, every
// node keeps a local replica and stops paying the peer round-trip. The
// zipfian head is tiny by definition, so the tracker is bounded — both
// the tracked set and the promoted set — and cold keys decay back out.
type hotTracker struct {
	mu        sync.Mutex
	threshold float64       // promote when the decayed score crosses this
	halfLife  time.Duration // score halves per halfLife of silence
	maxTrack  int           // tracked-key bound (LRU-ish eviction by score)
	maxHot    int           // promoted-set bound
	entries   map[hotKey]*hotEntry
	hotCount  int
	now       func() time.Time // test hook
}

type hotKey struct {
	world string
	fp    uint64
}

type hotEntry struct {
	score float64
	last  time.Time
	hot   bool
}

func newHotTracker(threshold float64, halfLife time.Duration, maxHot int) *hotTracker {
	if threshold <= 0 {
		return nil // replication disabled
	}
	if halfLife <= 0 {
		halfLife = 10 * time.Second
	}
	if maxHot <= 0 {
		maxHot = 64
	}
	return &hotTracker{
		threshold: threshold,
		halfLife:  halfLife,
		maxTrack:  maxHot * 8,
		maxHot:    maxHot,
		entries:   make(map[hotKey]*hotEntry),
		now:       time.Now,
	}
}

// observeFill records one peer fill of k and reports whether this fill
// promoted the key into the replicated tier (the caller then stores the
// fetched entry locally). Nil-safe: a nil tracker never promotes.
func (t *hotTracker) observeFill(k hotKey) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	e := t.entries[k]
	if e == nil {
		if len(t.entries) >= t.maxTrack {
			t.evictColdest(now)
		}
		e = &hotEntry{}
		t.entries[k] = e
	}
	e.score = e.score*decay(now.Sub(e.last), t.halfLife) + 1
	e.last = now
	if e.hot {
		return true
	}
	if e.score >= t.threshold {
		if t.hotCount >= t.maxHot {
			// The promoted set is full — demote decayed entries before
			// giving up, or a once-hot set that went cold would block
			// every future promotion forever.
			t.sweepLocked(now)
		}
		if t.hotCount < t.maxHot {
			e.hot = true
			t.hotCount++
			return true
		}
	}
	return false
}

// isHot reports whether k is currently promoted, demoting it first if
// its score has decayed below half the threshold (hysteresis: a key
// must re-earn promotion, not flap on the boundary). Nil-safe.
func (t *hotTracker) isHot(k hotKey) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entries[k]
	if e == nil || !e.hot {
		return false
	}
	now := t.now()
	e.score *= decay(now.Sub(e.last), t.halfLife)
	e.last = now
	if e.score < t.threshold/2 {
		e.hot = false
		t.hotCount--
		return false
	}
	return true
}

// counts returns (tracked, promoted) for the metrics exposition. It
// sweeps first: promoted keys are served from the local replica and
// never reach observeFill/isHot again, so the periodic scrape is where
// keys that went fully cold get demoted.
func (t *hotTracker) counts() (int, int) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked(t.now())
	return len(t.entries), t.hotCount
}

// sweepLocked decays every promoted entry to now and demotes those
// below the hysteresis floor. Called under mu. Demotion must not rely
// on per-key traffic: once a key is promoted its hits are served from
// the local replica without touching the tracker, so a cold hot key
// would otherwise keep its slot indefinitely.
func (t *hotTracker) sweepLocked(now time.Time) {
	for _, e := range t.entries {
		if !e.hot {
			continue
		}
		e.score *= decay(now.Sub(e.last), t.halfLife)
		e.last = now
		if e.score < t.threshold/2 {
			e.hot = false
			t.hotCount--
		}
	}
}

// evictColdest drops the lowest-decayed-score unpromoted entry; called
// under mu when the tracked set is full.
func (t *hotTracker) evictColdest(now time.Time) {
	var victim hotKey
	best := math.Inf(1)
	found := false
	for k, e := range t.entries {
		if e.hot {
			continue
		}
		s := e.score * decay(now.Sub(e.last), t.halfLife)
		if s < best {
			best, victim, found = s, k, true
		}
	}
	if found {
		delete(t.entries, victim)
	}
}

func decay(dt time.Duration, halfLife time.Duration) float64 {
	if dt <= 0 {
		return 1
	}
	return math.Exp2(-float64(dt) / float64(halfLife))
}
