package oodb

// Spec is the Prairie-language specification of the Open OODB query
// optimizer: 22 T-rules and 11 I-rules (§4.2 of the paper). The P2V
// pre-processor merges it into 17 trans_rules, 9 impl_rules and 1
// enforcer — the counts of the hand-coded Volcano rule set.
//
// Five T-rules mention the SORT enforcer-operator and are merged away
// (join_to_jopr additionally aliases JOPR to JOIN); the SORT Null rule
// and the Merge_sort rule account for the two extra I-rules.
const Spec = `
algebra oodb;

property tuple_order : order;
property join_predicate : pred;
property selection_predicate : pred;
property projected_attributes : attrs;
property mat_attribute : attrs;
property unnest_attribute : attrs;
property attributes : attrs;
property num_records : float;
property tuple_size : float;
property indexes : attrs;
property cost : cost;

operator RET(1) args(selection_predicate, projected_attributes);
operator JOIN(2) args(join_predicate);
operator JOPR(2) args(join_predicate);
operator SELECT(1) args(selection_predicate);
operator PROJECT(1) args(projected_attributes);
operator MAT(1) args(mat_attribute);
operator UNNEST(1) args(unnest_attribute);
operator SORT(1) args(tuple_order);

algorithm File_scan(1) implements RET;
algorithm Index_scan(1) implements RET;
algorithm Filter(1) implements SELECT;
algorithm Project(1) implements PROJECT;
algorithm Hash_join(2) implements JOPR;
algorithm Pointer_join(1) implements MAT;
algorithm Materialize(1) implements MAT;
algorithm Flatten(1) implements UNNEST;
algorithm Merge_sort(1) implements SORT;
algorithm Null(1);

helper union(attrs, attrs) : attrs;
helper contains_all(attrs, attrs) : bool;
helper attrs_eq(attrs, attrs) : bool;
helper and_pred(pred, pred) : pred;
helper split_within(pred, attrs) : pred;
helper split_rest(pred, attrs) : pred;
helper refers_only(pred, attrs) : bool;
helper conj_count(pred) : float;
helper first_conj(pred) : pred;
helper rest_conj(pred) : pred;
helper is_assoc(pred, pred, attrs, attrs, attrs) : bool;
helper join_card(float, float, pred) : float;
helper sel_card(float, pred) : float;
helper is_ref_join(pred, attrs, attrs) : bool;
helper ref_of(pred, attrs) : attrs;
helper is_true_pred(pred) : bool;
helper mat_attrs(attrs) : attrs;
helper mat_card(attrs) : float;
helper mat_size(attrs) : float;
helper unnest_card(float, attrs) : float;
helper has_index(attrs) : bool;
helper has_probe_index(attrs, pred) : bool;
helper probe_order(attrs, pred) : order;
helper sweep_order(attrs, order) : order;
helper nlogn(float) : float;
helper order_within(order, attrs) : bool;

// ======================================================================
// T-rules: the JOIN space.
// ======================================================================

trule join_commute:
  JOIN(?1:D1, ?2:D2):D3 => JOIN(?2, ?1):D4
posttest {
  D4 = D3;
}

trule join_assoc:
  JOIN(JOIN(?1:D1, ?2:D2):D3, ?3:D4):D5 => JOIN(?1, JOIN(?2, ?3):D6):D7
pretest {
  D6.attributes = union(D2.attributes, D4.attributes);
}
test (is_assoc(D3.join_predicate, D5.join_predicate, D1.attributes, D2.attributes, D4.attributes))
posttest {
  D6.join_predicate = split_within(and_pred(D3.join_predicate, D5.join_predicate), D6.attributes);
  D6.num_records = join_card(D2.num_records, D4.num_records, D6.join_predicate);
  D6.tuple_size = D2.tuple_size + D4.tuple_size;
  D7 = D5;
  D7.join_predicate = split_rest(and_pred(D3.join_predicate, D5.join_predicate), D6.attributes);
}

// ======================================================================
// T-rules: the SELECT space.
// ======================================================================

trule select_push_join_left:
  SELECT(JOIN(?1:D1, ?2:D2):D3):D4 => JOIN(SELECT(?1):D5, ?2):D6
test (refers_only(D4.selection_predicate, D1.attributes))
posttest {
  D5 = D1;
  D5.selection_predicate = D4.selection_predicate;
  D5.num_records = sel_card(D1.num_records, D4.selection_predicate);
  D6 = D3;
  D6.num_records = D4.num_records;
}

trule select_push_join_right:
  SELECT(JOIN(?1:D1, ?2:D2):D3):D4 => JOIN(?1, SELECT(?2):D5):D6
test (refers_only(D4.selection_predicate, D2.attributes))
posttest {
  D5 = D2;
  D5.selection_predicate = D4.selection_predicate;
  D5.num_records = sel_card(D2.num_records, D4.selection_predicate);
  D6 = D3;
  D6.num_records = D4.num_records;
}

trule select_split:
  SELECT(?1:D1):D2 => SELECT(SELECT(?1):D3):D4
test (conj_count(D2.selection_predicate) >= 2)
posttest {
  D3 = D2;
  D3.selection_predicate = rest_conj(D2.selection_predicate);
  D3.num_records = sel_card(D1.num_records, rest_conj(D2.selection_predicate));
  D4 = D2;
  D4.selection_predicate = first_conj(D2.selection_predicate);
}

trule select_merge:
  SELECT(SELECT(?1:D1):D2):D3 => SELECT(?1):D4
posttest {
  D4 = D3;
  D4.selection_predicate = and_pred(D3.selection_predicate, D2.selection_predicate);
}

trule select_commute:
  SELECT(SELECT(?1:D1):D2):D3 => SELECT(SELECT(?1):D4):D5
posttest {
  D4 = D2;
  D4.selection_predicate = D3.selection_predicate;
  D4.num_records = sel_card(D1.num_records, D3.selection_predicate);
  D5 = D3;
  D5.selection_predicate = D2.selection_predicate;
}

trule select_into_ret:
  SELECT(RET(?1:D1):D2):D3 => RET(?1):D4
posttest {
  D4 = D2;
  D4.selection_predicate = and_pred(D2.selection_predicate, D3.selection_predicate);
  D4.num_records = D3.num_records;
}

trule select_push_mat:
  SELECT(MAT(?1:D1):D2):D3 => MAT(SELECT(?1):D4):D5
test (refers_only(D3.selection_predicate, D1.attributes))
posttest {
  D4 = D1;
  D4.selection_predicate = D3.selection_predicate;
  D4.num_records = sel_card(D1.num_records, D3.selection_predicate);
  D5 = D2;
  D5.num_records = D3.num_records;
}

trule mat_pull_select:
  MAT(SELECT(?1:D1):D2):D3 => SELECT(MAT(?1):D4):D5
posttest {
  D4 = D3;
  D4.attributes = union(D1.attributes, mat_attrs(D3.mat_attribute));
  D4.num_records = D1.num_records;
  D5 = D3;
  D5.selection_predicate = D2.selection_predicate;
}

// ======================================================================
// T-rules: the MAT space.
// ======================================================================

trule mat_push_join_left:
  MAT(JOIN(?1:D1, ?2:D2):D3):D4 => JOIN(MAT(?1):D5, ?2):D6
test (contains_all(D1.attributes, D4.mat_attribute))
posttest {
  D5 = D4;
  D5.attributes = union(D1.attributes, mat_attrs(D4.mat_attribute));
  D5.num_records = D1.num_records;
  D5.tuple_size = D1.tuple_size + mat_size(D4.mat_attribute);
  D6 = D3;
  D6.attributes = D4.attributes;
  D6.tuple_size = D3.tuple_size + mat_size(D4.mat_attribute);
}

trule mat_push_join_right:
  MAT(JOIN(?1:D1, ?2:D2):D3):D4 => JOIN(?1, MAT(?2):D5):D6
test (contains_all(D2.attributes, D4.mat_attribute))
posttest {
  D5 = D4;
  D5.attributes = union(D2.attributes, mat_attrs(D4.mat_attribute));
  D5.num_records = D2.num_records;
  D5.tuple_size = D2.tuple_size + mat_size(D4.mat_attribute);
  D6 = D3;
  D6.attributes = D4.attributes;
  D6.tuple_size = D3.tuple_size + mat_size(D4.mat_attribute);
}

trule mat_pull_join_left:
  JOIN(MAT(?1:D1):D2, ?3:D3):D4 => MAT(JOIN(?1, ?3):D5):D6
test (refers_only(D4.join_predicate, union(D1.attributes, D3.attributes)))
posttest {
  D5 = D4;
  D5.attributes = union(D1.attributes, D3.attributes);
  D5.tuple_size = D1.tuple_size + D3.tuple_size;
  D6 = D2;
  D6.attributes = D4.attributes;
  D6.num_records = D4.num_records;
  D6.tuple_size = D4.tuple_size;
}

trule mat_pull_join_right:
  JOIN(?1:D1, MAT(?2:D2):D3):D4 => MAT(JOIN(?1, ?2):D5):D6
test (refers_only(D4.join_predicate, union(D1.attributes, D2.attributes)))
posttest {
  D5 = D4;
  D5.attributes = union(D1.attributes, D2.attributes);
  D5.tuple_size = D1.tuple_size + D2.tuple_size;
  D6 = D3;
  D6.attributes = D4.attributes;
  D6.num_records = D4.num_records;
  D6.tuple_size = D4.tuple_size;
}

trule mat_commute_mat:
  MAT(MAT(?1:D1):D2):D3 => MAT(MAT(?1):D4):D5
test (!attrs_eq(D2.mat_attribute, D3.mat_attribute) && contains_all(D1.attributes, D3.mat_attribute))
posttest {
  D4 = D2;
  D4.mat_attribute = D3.mat_attribute;
  D4.attributes = union(D1.attributes, mat_attrs(D3.mat_attribute));
  D4.tuple_size = D1.tuple_size + mat_size(D3.mat_attribute);
  D5 = D3;
  D5.mat_attribute = D2.mat_attribute;
  D5.attributes = D3.attributes;
  D5.tuple_size = D3.tuple_size;
}

trule join_to_mat:
  JOIN(?1:D1, RET(?2:D2):D3):D4 => MAT(?1):D5
test (is_ref_join(D4.join_predicate, D1.attributes, D3.attributes) && is_true_pred(D3.selection_predicate))
posttest {
  D5 = D4;
  D5.mat_attribute = ref_of(D4.join_predicate, D1.attributes);
  D5.num_records = D1.num_records;
}

// ======================================================================
// T-rule: the UNNEST space (exactly one, as in the TI rule set).
// ======================================================================

trule unnest_mat_commute:
  UNNEST(MAT(?1:D1):D2):D3 => MAT(UNNEST(?1):D4):D5
test (contains_all(D1.attributes, D3.unnest_attribute))
posttest {
  D4 = D3;
  D4.attributes = D1.attributes;
  D4.unnest_attribute = D3.unnest_attribute;
  D4.num_records = unnest_card(D1.num_records, D3.unnest_attribute);
  D4.tuple_size = D1.tuple_size;
  D5 = D2;
  D5.attributes = D3.attributes;
  D5.num_records = D3.num_records;
}

// ======================================================================
// T-rules merged away by P2V (they mention the SORT enforcer-operator).
// ======================================================================

trule join_to_jopr:
  JOIN(?1:D1, ?2:D2):D3 => JOPR(SORT(?1):D4, SORT(?2):D5):D6
posttest {
  D6 = D3;
  D4 = D1;
  D5 = D2;
}

trule sort_idemp:
  SORT(SORT(?1:D1):D2):D3 => SORT(?1):D4
posttest {
  D4 = D3;
}

trule sort_push_select:
  SELECT(SORT(?1:D1):D2):D3 => SORT(SELECT(?1):D4):D5
posttest {
  D4 = D3;
  D5 = D3;
  D5.tuple_order = D2.tuple_order;
}

trule sort_pull_select:
  SORT(SELECT(?1:D1):D2):D3 => SELECT(SORT(?1):D4):D5
posttest {
  D4 = D1;
  D4.tuple_order = D3.tuple_order;
  D5 = D3;
}

trule mat_sort_input:
  MAT(?1:D1):D2 => MAT(SORT(?1):D3):D4
posttest {
  D3 = D1;
  D4 = D2;
}

// ======================================================================
// I-rules.
// ======================================================================

irule ret_file_scan:
  RET(?1:D1):D2 => File_scan(?1):D3
preopt {
  D3 = D2;
  D3.tuple_order = DONT_CARE;
}
postopt {
  D3.cost = D1.num_records;
}

// Two I-rules share the Index_scan algorithm with different property
// transformations — the per-rule approach of §3.2.2. The probe form
// exploits an equality selection on an indexed attribute; the sweep form
// reads the whole class in index order.
irule ret_index_probe:
  RET(?1:D1):D2 => Index_scan(?1):D3
test (has_probe_index(D1.indexes, D2.selection_predicate))
preopt {
  D3 = D2;
  D3.tuple_order = probe_order(D1.indexes, D2.selection_predicate);
}
postopt {
  D3.cost = 8 + 2 * D3.num_records;
}

irule ret_index_sweep:
  RET(?1:D1):D2 => Index_scan(?1):D3
test (has_index(D1.indexes))
preopt {
  D3 = D2;
  D3.tuple_order = sweep_order(D1.indexes, D2.tuple_order);
}
postopt {
  D3.cost = 8 + D1.num_records;
}

irule select_filter:
  SELECT(?1:D1):D2 => Filter(?1:D3):D4
preopt {
  D4 = D2;
  D3 = D1;
  D3.tuple_order = D2.tuple_order;
}
postopt {
  D4.cost = D3.cost + D3.num_records;
  D4.tuple_order = D3.tuple_order;
}

irule project_project:
  PROJECT(?1:D1):D2 => Project(?1:D3):D4
preopt {
  D4 = D2;
  D3 = D1;
  D3.tuple_order = D2.tuple_order;
}
postopt {
  D4.cost = D3.cost + D3.num_records;
  D4.tuple_order = D3.tuple_order;
}

irule jopr_hash_join:
  JOPR(?1:D1, ?2:D2):D3 => Hash_join(?1, ?2):D4
test (conj_count(D3.join_predicate) >= 1)
preopt {
  D4 = D3;
  D4.tuple_order = DONT_CARE;
}
postopt {
  D4.cost = D1.cost + D2.cost + D1.num_records + 2 * D2.num_records;
}

irule mat_materialize:
  MAT(?1:D1):D2 => Materialize(?1:D3):D4
preopt {
  D4 = D2;
  D3 = D1;
  D3.tuple_order = D2.tuple_order;
}
postopt {
  D4.cost = D3.cost + 4 * D3.num_records;
  D4.tuple_order = D3.tuple_order;
}

irule mat_pointer_join:
  MAT(?1:D1):D2 => Pointer_join(?1):D3
preopt {
  D3 = D2;
  D3.tuple_order = DONT_CARE;
}
postopt {
  D3.cost = D1.cost + 2 * D1.num_records + mat_card(D2.mat_attribute);
}

irule unnest_flatten:
  UNNEST(?1:D1):D2 => Flatten(?1:D3):D4
preopt {
  D4 = D2;
  D3 = D1;
  D3.tuple_order = D2.tuple_order;
}
postopt {
  D4.cost = D3.cost + D4.num_records;
  D4.tuple_order = D3.tuple_order;
}

irule sort_merge_sort:
  SORT(?1:D1):D2 => Merge_sort(?1):D3
test (D2.tuple_order != DONT_CARE && order_within(D2.tuple_order, D2.attributes))
preopt {
  D3 = D2;
}
postopt {
  D3.cost = D1.cost + nlogn(D3.num_records);
}

irule sort_null:
  SORT(?1:D1):D2 => Null(?1:D3):D4
preopt {
  D4 = D2;
  D3 = D1;
  D3.tuple_order = D2.tuple_order;
}
postopt {
  D4.cost = D3.cost;
}
`
