package oodb

import (
	"prairie/internal/core"
	"prairie/internal/volcano"
)

// VolcanoRules builds the hand-coded Volcano specification of the Open
// OODB optimizer: 17 trans_rules, 9 impl_rules and one enforcer, with
// the property classification stated explicitly and per-algorithm
// support functions computing properties in place. It is the baseline
// the Prairie-generated optimizer is measured against (§4.3).
func (o *Opt) VolcanoRules() *volcano.RuleSet {
	rs := volcano.NewRuleSet(o.Alg)
	rs.SetPhys(o.Ord)
	o.addTransRules(rs)
	o.addImplRules(rs)
	return rs
}

func (o *Opt) addTransRules(rs *volcano.RuleSet) {
	v1, v2, v3 := core.PVar(1, "D1"), core.PVar(2, "D2"), core.PVar(3, "D3")

	// --- JOIN space (2 rules). ------------------------------------------
	rs.AddTrans(&volcano.TransRule{
		Name: "join_commute",
		LHS:  core.POp(o.JOIN, "DL", v1, v2),
		RHS:  core.POp(o.JOIN, "DR", core.PVar(2, ""), core.PVar(1, "")),
		Appl: func(b *volcano.TBinding) { b.D("DR").CopyFrom(b.D("DL")) },
	})
	rs.AddTrans(&volcano.TransRule{
		Name: "join_assoc",
		LHS: core.POp(o.JOIN, "DT",
			core.POp(o.JOIN, "DB", v1, v2), v3),
		RHS: core.POp(o.JOIN, "DT2",
			core.PVar(1, ""),
			core.POp(o.JOIN, "DB2", core.PVar(2, ""), core.PVar(3, ""))),
		Cond: func(b *volcano.TBinding) bool {
			all := canonAnd(b.D("DB").Pred(o.JP), b.D("DT").Pred(o.JP))
			m, r := b.D("D2").AttrList(o.AT), b.D("D3").AttrList(o.AT)
			inner, outer := splitPred(all, m.Union(r))
			return len(inner.Attrs().Intersect(m)) > 0 &&
				len(inner.Attrs().Intersect(r)) > 0 &&
				len(outer.Attrs().Intersect(b.D("D1").AttrList(o.AT))) > 0
		},
		Appl: func(b *volcano.TBinding) {
			all := canonAnd(b.D("DB").Pred(o.JP), b.D("DT").Pred(o.JP))
			m, r := b.D("D2").AttrList(o.AT), b.D("D3").AttrList(o.AT)
			inner, outer := splitPred(all, m.Union(r))
			db2, dt2 := b.D("DB2"), b.D("DT2")
			db2.Set(o.AT, m.Union(r))
			db2.Set(o.JP, inner)
			db2.SetFloat(o.NR, o.Cat.JoinCard(b.D("D2").Float(o.NR), b.D("D3").Float(o.NR), inner))
			db2.SetFloat(o.TS, b.D("D2").Float(o.TS)+b.D("D3").Float(o.TS))
			dt2.CopyFrom(b.D("DT"))
			dt2.Set(o.JP, outer)
		},
	})

	// --- SELECT space (7 rules + mat_pull_select). ------------------------
	pushJoin := func(name string, left bool) {
		side, other := "D1", "D2"
		if !left {
			side, other = "D2", "D1"
		}
		_ = other
		rhsKids := []*core.PatNode{core.POp(o.SELECT, "DS", core.PVar(1, "")), core.PVar(2, "")}
		if !left {
			rhsKids = []*core.PatNode{core.PVar(1, ""), core.POp(o.SELECT, "DS", core.PVar(2, ""))}
		}
		rs.AddTrans(&volcano.TransRule{
			Name: name,
			LHS:  core.POp(o.SELECT, "DSEL", core.POp(o.JOIN, "DJ", v1, v2)),
			RHS:  core.POp(o.JOIN, "DJ2", rhsKids...),
			Cond: func(b *volcano.TBinding) bool {
				return b.D("DSEL").Pred(o.SP).RefersOnlyTo(b.D(side).AttrList(o.AT))
			},
			Appl: func(b *volcano.TBinding) {
				ds, dj2 := b.D("DS"), b.D("DJ2")
				ds.CopyFrom(b.D(side))
				ds.Set(o.SP, b.D("DSEL").Pred(o.SP))
				ds.SetFloat(o.NR, o.Cat.SelectCard(b.D(side).Float(o.NR), b.D("DSEL").Pred(o.SP)))
				dj2.CopyFrom(b.D("DJ"))
				dj2.SetFloat(o.NR, b.D("DSEL").Float(o.NR))
			},
		})
	}
	pushJoin("select_push_join_left", true)
	pushJoin("select_push_join_right", false)

	rs.AddTrans(&volcano.TransRule{
		Name: "select_split",
		LHS:  core.POp(o.SELECT, "DS", v1),
		RHS:  core.POp(o.SELECT, "DO", core.POp(o.SELECT, "DI", core.PVar(1, ""))),
		Cond: func(b *volcano.TBinding) bool {
			return len(b.D("DS").Pred(o.SP).Conjuncts()) >= 2
		},
		Appl: func(b *volcano.TBinding) {
			p := b.D("DS").Pred(o.SP)
			di, do := b.D("DI"), b.D("DO")
			di.CopyFrom(b.D("DS"))
			di.Set(o.SP, restConj(p))
			di.SetFloat(o.NR, o.Cat.SelectCard(b.D("D1").Float(o.NR), restConj(p)))
			do.CopyFrom(b.D("DS"))
			do.Set(o.SP, firstConj(p))
		},
	})
	rs.AddTrans(&volcano.TransRule{
		Name: "select_merge",
		LHS:  core.POp(o.SELECT, "DO", core.POp(o.SELECT, "DI", v1)),
		RHS:  core.POp(o.SELECT, "DM", core.PVar(1, "")),
		Appl: func(b *volcano.TBinding) {
			dm := b.D("DM")
			dm.CopyFrom(b.D("DO"))
			dm.Set(o.SP, canonAnd(b.D("DO").Pred(o.SP), b.D("DI").Pred(o.SP)))
		},
	})
	rs.AddTrans(&volcano.TransRule{
		Name: "select_commute",
		LHS:  core.POp(o.SELECT, "DO", core.POp(o.SELECT, "DI", v1)),
		RHS:  core.POp(o.SELECT, "DO2", core.POp(o.SELECT, "DI2", core.PVar(1, ""))),
		Appl: func(b *volcano.TBinding) {
			di2, do2 := b.D("DI2"), b.D("DO2")
			di2.CopyFrom(b.D("DI"))
			di2.Set(o.SP, b.D("DO").Pred(o.SP))
			di2.SetFloat(o.NR, o.Cat.SelectCard(b.D("D1").Float(o.NR), b.D("DO").Pred(o.SP)))
			do2.CopyFrom(b.D("DO"))
			do2.Set(o.SP, b.D("DI").Pred(o.SP))
		},
	})
	rs.AddTrans(&volcano.TransRule{
		Name: "select_into_ret",
		LHS:  core.POp(o.SELECT, "DS", core.POp(o.RET, "DR", v1)),
		RHS:  core.POp(o.RET, "DR2", core.PVar(1, "")),
		Appl: func(b *volcano.TBinding) {
			dr2 := b.D("DR2")
			dr2.CopyFrom(b.D("DR"))
			dr2.Set(o.SP, canonAnd(b.D("DR").Pred(o.SP), b.D("DS").Pred(o.SP)))
			dr2.SetFloat(o.NR, b.D("DS").Float(o.NR))
		},
	})
	rs.AddTrans(&volcano.TransRule{
		Name: "select_push_mat",
		LHS:  core.POp(o.SELECT, "DS", core.POp(o.MAT, "DM", v1)),
		RHS:  core.POp(o.MAT, "DM2", core.POp(o.SELECT, "DS2", core.PVar(1, ""))),
		Cond: func(b *volcano.TBinding) bool {
			return b.D("DS").Pred(o.SP).RefersOnlyTo(b.D("D1").AttrList(o.AT))
		},
		Appl: func(b *volcano.TBinding) {
			ds2, dm2 := b.D("DS2"), b.D("DM2")
			ds2.CopyFrom(b.D("D1"))
			ds2.Set(o.SP, b.D("DS").Pred(o.SP))
			ds2.SetFloat(o.NR, o.Cat.SelectCard(b.D("D1").Float(o.NR), b.D("DS").Pred(o.SP)))
			dm2.CopyFrom(b.D("DM"))
			dm2.SetFloat(o.NR, b.D("DS").Float(o.NR))
		},
	})
	rs.AddTrans(&volcano.TransRule{
		Name: "mat_pull_select",
		LHS:  core.POp(o.MAT, "DM", core.POp(o.SELECT, "DS", v1)),
		RHS:  core.POp(o.SELECT, "DS2", core.POp(o.MAT, "DM2", core.PVar(1, ""))),
		Appl: func(b *volcano.TBinding) {
			dm2, ds2 := b.D("DM2"), b.D("DS2")
			dm2.CopyFrom(b.D("DM"))
			dm2.Set(o.AT, b.D("D1").AttrList(o.AT).Union(o.matTargetAttrs(b.D("DM").AttrList(o.MA))))
			dm2.SetFloat(o.NR, b.D("D1").Float(o.NR))
			ds2.CopyFrom(b.D("DM"))
			ds2.Set(o.SP, b.D("DS").Pred(o.SP))
		},
	})

	// --- MAT space (6 rules). ---------------------------------------------
	matPushJoin := func(name string, left bool) {
		side := "D1"
		rhsKids := []*core.PatNode{core.POp(o.MAT, "DM2", core.PVar(1, "")), core.PVar(2, "")}
		if !left {
			side = "D2"
			rhsKids = []*core.PatNode{core.PVar(1, ""), core.POp(o.MAT, "DM2", core.PVar(2, ""))}
		}
		rs.AddTrans(&volcano.TransRule{
			Name: name,
			LHS:  core.POp(o.MAT, "DM", core.POp(o.JOIN, "DJ", v1, v2)),
			RHS:  core.POp(o.JOIN, "DJ2", rhsKids...),
			Cond: func(b *volcano.TBinding) bool {
				return b.D(side).AttrList(o.AT).ContainsAll(b.D("DM").AttrList(o.MA))
			},
			Appl: func(b *volcano.TBinding) {
				ma := b.D("DM").AttrList(o.MA)
				dm2, dj2 := b.D("DM2"), b.D("DJ2")
				dm2.CopyFrom(b.D("DM"))
				dm2.Set(o.AT, b.D(side).AttrList(o.AT).Union(o.matTargetAttrs(ma)))
				dm2.SetFloat(o.NR, b.D(side).Float(o.NR))
				dm2.SetFloat(o.TS, b.D(side).Float(o.TS)+o.matTargetSize(ma))
				dj2.CopyFrom(b.D("DJ"))
				dj2.Set(o.AT, b.D("DM").AttrList(o.AT))
				dj2.SetFloat(o.TS, b.D("DJ").Float(o.TS)+o.matTargetSize(ma))
			},
		})
	}
	matPushJoin("mat_push_join_left", true)
	matPushJoin("mat_push_join_right", false)

	matPullJoin := func(name string, left bool) {
		lhsKids := []*core.PatNode{core.POp(o.MAT, "DM", v1), v3}
		inAttrs := func(b *volcano.TBinding) core.Attrs {
			return b.D("D1").AttrList(o.AT).Union(b.D("D3").AttrList(o.AT))
		}
		if !left {
			lhsKids = []*core.PatNode{v1, core.POp(o.MAT, "DM", v2)}
			inAttrs = func(b *volcano.TBinding) core.Attrs {
				return b.D("D1").AttrList(o.AT).Union(b.D("D2").AttrList(o.AT))
			}
		}
		rhsKids := []*core.PatNode{core.PVar(1, ""), core.PVar(3, "")}
		if !left {
			rhsKids = []*core.PatNode{core.PVar(1, ""), core.PVar(2, "")}
		}
		rs.AddTrans(&volcano.TransRule{
			Name: name,
			LHS:  core.POp(o.JOIN, "DJ", lhsKids...),
			RHS:  core.POp(o.MAT, "DM2", core.POp(o.JOIN, "DJ2", rhsKids...)),
			Cond: func(b *volcano.TBinding) bool {
				return b.D("DJ").Pred(o.JP).RefersOnlyTo(inAttrs(b))
			},
			Appl: func(b *volcano.TBinding) {
				dj2, dm2 := b.D("DJ2"), b.D("DM2")
				dj2.CopyFrom(b.D("DJ"))
				dj2.Set(o.AT, inAttrs(b))
				dj2.SetFloat(o.TS, b.D("DJ").Float(o.TS)-o.matTargetSize(b.D("DM").AttrList(o.MA)))
				dm2.CopyFrom(b.D("DM"))
				dm2.Set(o.AT, b.D("DJ").AttrList(o.AT))
				dm2.SetFloat(o.NR, b.D("DJ").Float(o.NR))
				dm2.SetFloat(o.TS, b.D("DJ").Float(o.TS))
			},
		})
	}
	matPullJoin("mat_pull_join_left", true)
	matPullJoin("mat_pull_join_right", false)

	rs.AddTrans(&volcano.TransRule{
		Name: "mat_commute_mat",
		LHS:  core.POp(o.MAT, "DO", core.POp(o.MAT, "DI", v1)),
		RHS:  core.POp(o.MAT, "DO2", core.POp(o.MAT, "DI2", core.PVar(1, ""))),
		Cond: func(b *volcano.TBinding) bool {
			return !b.D("DI").AttrList(o.MA).Equal(b.D("DO").AttrList(o.MA)) &&
				b.D("D1").AttrList(o.AT).ContainsAll(b.D("DO").AttrList(o.MA))
		},
		Appl: func(b *volcano.TBinding) {
			di2, do2 := b.D("DI2"), b.D("DO2")
			outerMA := b.D("DO").AttrList(o.MA)
			di2.CopyFrom(b.D("DI"))
			di2.Set(o.MA, outerMA)
			di2.Set(o.AT, b.D("D1").AttrList(o.AT).Union(o.matTargetAttrs(outerMA)))
			di2.SetFloat(o.TS, b.D("D1").Float(o.TS)+o.matTargetSize(outerMA))
			do2.CopyFrom(b.D("DO"))
			do2.Set(o.MA, b.D("DI").AttrList(o.MA))
		},
	})
	rs.AddTrans(&volcano.TransRule{
		Name: "join_to_mat",
		LHS: core.POp(o.JOIN, "DJ",
			v1, core.POp(o.RET, "DR", core.PVar(2, ""))),
		RHS: core.POp(o.MAT, "DM", core.PVar(1, "")),
		Cond: func(b *volcano.TBinding) bool {
			_, ok := o.refAttrOfJoin(b.D("DJ").Pred(o.JP),
				b.D("D1").AttrList(o.AT), b.D("DR").AttrList(o.AT))
			return ok && b.D("DR").Pred(o.SP).IsTrue()
		},
		Appl: func(b *volcano.TBinding) {
			ref, _ := o.refAttrOfJoin(b.D("DJ").Pred(o.JP),
				b.D("D1").AttrList(o.AT), b.D("DR").AttrList(o.AT))
			dm := b.D("DM")
			dm.CopyFrom(b.D("DJ"))
			dm.Set(o.MA, core.Attrs{ref})
			dm.SetFloat(o.NR, b.D("D1").Float(o.NR))
		},
	})

	// --- UNNEST space (exactly 1 rule). -----------------------------------
	rs.AddTrans(&volcano.TransRule{
		Name: "unnest_mat_commute",
		LHS:  core.POp(o.UNNEST, "DU", core.POp(o.MAT, "DM", v1)),
		RHS:  core.POp(o.MAT, "DM2", core.POp(o.UNNEST, "DU2", core.PVar(1, ""))),
		Cond: func(b *volcano.TBinding) bool {
			return b.D("D1").AttrList(o.AT).ContainsAll(b.D("DU").AttrList(o.UA))
		},
		Appl: func(b *volcano.TBinding) {
			du2, dm2 := b.D("DU2"), b.D("DM2")
			du2.CopyFrom(b.D("DU"))
			du2.Set(o.AT, b.D("D1").AttrList(o.AT))
			du2.SetFloat(o.NR, o.unnestCard(b.D("D1").Float(o.NR), b.D("DU").AttrList(o.UA)))
			du2.SetFloat(o.TS, b.D("D1").Float(o.TS))
			dm2.CopyFrom(b.D("DM"))
			dm2.Set(o.AT, b.D("DU").AttrList(o.AT))
			dm2.SetFloat(o.NR, b.D("DU").Float(o.NR))
		},
	})
}

func (o *Opt) addImplRules(rs *volcano.RuleSet) {
	ps := o.Alg.Props
	reqWith := func(ord core.Order) *core.Descriptor {
		d := core.NewDescriptor(ps)
		d.Set(o.Ord, ord)
		return d
	}
	// Order-preserving unary algorithms propagate the requirement to
	// their input; this helper builds their Pre hook.
	passThroughPre := func(cx *volcano.ImplCtx) (*core.Descriptor, []*core.Descriptor) {
		d := cx.OpDesc.Clone()
		return d, []*core.Descriptor{reqWith(cx.OpDesc.Order(o.Ord))}
	}

	rs.AddImpl(&volcano.ImplRule{
		Name: "ret_file_scan", Op: o.RET, Alg: o.FileScan,
		Pre: func(cx *volcano.ImplCtx) (*core.Descriptor, []*core.Descriptor) {
			d := cx.OpDesc.Clone()
			d.Set(o.Ord, core.DontCareOrder)
			return d, []*core.Descriptor{nil}
		},
		Post: func(cx *volcano.ImplCtx, d *core.Descriptor) {
			d.Set(o.C, core.Cost(fileScanCost(cx.In[0].Float(o.NR))))
		},
	})
	rs.AddImpl(&volcano.ImplRule{
		Name: "ret_index_probe", Op: o.RET, Alg: o.IndexScan,
		Cond: func(cx *volcano.ImplCtx) bool {
			ix, ok := pickIndexAttr(cx.Kids[0].AttrList(o.IX), core.DontCareOrder, cx.OpDesc.Pred(o.SP))
			return ok && indexUsable(ix, cx.OpDesc.Pred(o.SP))
		},
		Pre: func(cx *volcano.ImplCtx) (*core.Descriptor, []*core.Descriptor) {
			d := cx.OpDesc.Clone()
			ix, _ := pickIndexAttr(cx.Kids[0].AttrList(o.IX), core.DontCareOrder, cx.OpDesc.Pred(o.SP))
			d.Set(o.Ord, core.OrderBy(ix))
			return d, []*core.Descriptor{nil}
		},
		Post: func(cx *volcano.ImplCtx, d *core.Descriptor) {
			d.Set(o.C, core.Cost(indexScanCost(cx.In[0].Float(o.NR), d.Float(o.NR), true)))
		},
	})
	rs.AddImpl(&volcano.ImplRule{
		Name: "ret_index_sweep", Op: o.RET, Alg: o.IndexScan,
		Cond: func(cx *volcano.ImplCtx) bool {
			return len(cx.Kids[0].AttrList(o.IX)) > 0
		},
		Pre: func(cx *volcano.ImplCtx) (*core.Descriptor, []*core.Descriptor) {
			d := cx.OpDesc.Clone()
			ix, _ := pickIndexAttr(cx.Kids[0].AttrList(o.IX), cx.OpDesc.Order(o.Ord), core.TruePred)
			d.Set(o.Ord, core.OrderBy(ix))
			return d, []*core.Descriptor{nil}
		},
		Post: func(cx *volcano.ImplCtx, d *core.Descriptor) {
			d.Set(o.C, core.Cost(indexScanCost(cx.In[0].Float(o.NR), d.Float(o.NR), false)))
		},
	})
	orderPreserving := func(name string, op, alg *core.Operation, cost func(cx *volcano.ImplCtx, d *core.Descriptor) float64) {
		rs.AddImpl(&volcano.ImplRule{
			Name: name, Op: op, Alg: alg,
			Pre: passThroughPre,
			Post: func(cx *volcano.ImplCtx, d *core.Descriptor) {
				d.Set(o.Ord, cx.In[0].Order(o.Ord))
				d.Set(o.C, core.Cost(cost(cx, d)))
			},
		})
	}
	orderPreserving("select_filter", o.SELECT, o.Filter,
		func(cx *volcano.ImplCtx, d *core.Descriptor) float64 {
			return filterCost(cx.In[0].Float(o.C), cx.In[0].Float(o.NR))
		})
	orderPreserving("project_project", o.PROJECT, o.Proj,
		func(cx *volcano.ImplCtx, d *core.Descriptor) float64 {
			return projectCost(cx.In[0].Float(o.C), cx.In[0].Float(o.NR))
		})
	orderPreserving("mat_materialize", o.MAT, o.Materialize,
		func(cx *volcano.ImplCtx, d *core.Descriptor) float64 {
			return materializeCost(cx.In[0].Float(o.C), cx.In[0].Float(o.NR))
		})
	orderPreserving("unnest_flatten", o.UNNEST, o.Flatten,
		func(cx *volcano.ImplCtx, d *core.Descriptor) float64 {
			return flattenCost(cx.In[0].Float(o.C), d.Float(o.NR))
		})
	rs.AddImpl(&volcano.ImplRule{
		Name: "join_hash_join", Op: o.JOIN, Alg: o.HashJoin,
		Cond: func(cx *volcano.ImplCtx) bool {
			return len(cx.OpDesc.Pred(o.JP).Conjuncts()) >= 1
		},
		Pre: func(cx *volcano.ImplCtx) (*core.Descriptor, []*core.Descriptor) {
			d := cx.OpDesc.Clone()
			d.Set(o.Ord, core.DontCareOrder)
			return d, []*core.Descriptor{nil, nil}
		},
		Post: func(cx *volcano.ImplCtx, d *core.Descriptor) {
			d.Set(o.C, core.Cost(hashJoinCost(
				cx.In[0].Float(o.C), cx.In[1].Float(o.C),
				cx.In[0].Float(o.NR), cx.In[1].Float(o.NR))))
		},
	})
	rs.AddImpl(&volcano.ImplRule{
		Name: "mat_pointer_join", Op: o.MAT, Alg: o.PointerJoin,
		Pre: func(cx *volcano.ImplCtx) (*core.Descriptor, []*core.Descriptor) {
			d := cx.OpDesc.Clone()
			d.Set(o.Ord, core.DontCareOrder)
			return d, []*core.Descriptor{nil}
		},
		Post: func(cx *volcano.ImplCtx, d *core.Descriptor) {
			d.Set(o.C, core.Cost(pointerJoinCost(
				cx.In[0].Float(o.C), cx.In[0].Float(o.NR),
				o.matTargetCard(cx.OpDesc.AttrList(o.MA)))))
		},
	})

	rs.AddEnforcer(&volcano.Enforcer{
		Name: "sort_merge_sort", Alg: o.MergeSort, Props: []core.PropID{o.Ord},
		Cond: func(cx *volcano.ImplCtx) bool {
			ord := cx.Req.Order(o.Ord)
			return cx.Req.Has(o.Ord) && !ord.IsDontCare() &&
				ord.Within(cx.OpDesc.AttrList(o.AT))
		},
		Pre: func(cx *volcano.ImplCtx) (*core.Descriptor, *core.Descriptor) {
			d := cx.OpDesc.Clone()
			d.Set(o.Ord, cx.Req.Order(o.Ord))
			return d, core.NewDescriptor(ps)
		},
		Post: func(cx *volcano.ImplCtx, d *core.Descriptor) {
			d.Set(o.C, core.Cost(mergeSortCost(cx.In[0].Float(o.C), d.Float(o.NR))))
		},
	})
}
