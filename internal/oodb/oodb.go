// Package oodb reconstructs the Texas Instruments Open OODB query
// optimizer used in the paper's evaluation (Section 4): the
// object-oriented algebra SELECT, PROJECT, JOIN, RET, UNNEST and MAT
// (plus the SORT enforcer-operator), eight algorithms, and two complete
// specifications of the same optimizer:
//
//   - PrairieRules: a Prairie-language specification (see Spec) with 22
//     T-rules and 11 I-rules, compiled by internal/prairielang and
//     translated by internal/p2v;
//   - VolcanoRules: a hand-coded Volcano rule set with 17 trans_rules,
//     9 impl_rules and 1 enforcer — the same counts the paper reports.
//
// The original TI rule set is proprietary; this reconstruction satisfies
// every structural constraint the paper states (PROJECT appears in one
// impl_rule and no trans_rules, UNNEST in exactly one of each, the join
// algorithms use no indices, and the §3.3 merging arithmetic holds).
package oodb

import (
	"math"
	"sort"

	"prairie/internal/catalog"
	"prairie/internal/core"
)

// Opt bundles the OODB algebra, property handles, and catalog.
type Opt struct {
	Alg *core.Algebra
	Cat *catalog.Catalog

	Ord core.PropID // tuple_order
	JP  core.PropID // join_predicate
	SP  core.PropID // selection_predicate
	PA  core.PropID // projected_attributes
	MA  core.PropID // mat_attribute (the pointer attribute MAT follows)
	UA  core.PropID // unnest_attribute
	AT  core.PropID // attributes
	NR  core.PropID // num_records
	TS  core.PropID // tuple_size
	IX  core.PropID // indexes
	C   core.PropID // cost

	RET, JOIN, JOPR, SELECT, PROJECT, MAT, UNNEST, SORT      *core.Operation
	FileScan, IndexScan, Filter, Proj, HashJoin, PointerJoin *core.Operation
	Materialize, Flatten, MergeSort, Null                    *core.Operation
}

// New builds the OODB algebra over a catalog.
func New(cat *catalog.Catalog) *Opt {
	a := core.NewAlgebra("oodb")
	o := &Opt{Alg: a, Cat: cat}
	o.Ord = a.Props.Define("tuple_order", core.KindOrder)
	o.JP = a.Props.Define("join_predicate", core.KindPred)
	o.SP = a.Props.Define("selection_predicate", core.KindPred)
	o.PA = a.Props.Define("projected_attributes", core.KindAttrs)
	o.MA = a.Props.Define("mat_attribute", core.KindAttrs)
	o.UA = a.Props.Define("unnest_attribute", core.KindAttrs)
	o.AT = a.Props.Define("attributes", core.KindAttrs)
	o.NR = a.Props.Define("num_records", core.KindFloat)
	o.TS = a.Props.Define("tuple_size", core.KindFloat)
	o.IX = a.Props.Define("indexes", core.KindAttrs)
	o.C = a.Props.Define("cost", core.KindCost)
	o.RET = a.Operator("RET", 1)
	o.JOIN = a.Operator("JOIN", 2)
	o.JOPR = a.Operator("JOPR", 2)
	o.SELECT = a.Operator("SELECT", 1)
	o.PROJECT = a.Operator("PROJECT", 1)
	o.MAT = a.Operator("MAT", 1)
	o.UNNEST = a.Operator("UNNEST", 1)
	o.SORT = a.Operator("SORT", 1)
	o.FileScan = a.Algorithm("File_scan", 1)
	o.IndexScan = a.Algorithm("Index_scan", 1)
	o.Filter = a.Algorithm("Filter", 1)
	o.Proj = a.Algorithm("Project", 1)
	o.HashJoin = a.Algorithm("Hash_join", 2)
	o.PointerJoin = a.Algorithm("Pointer_join", 1)
	o.Materialize = a.Algorithm("Materialize", 1)
	o.Flatten = a.Algorithm("Flatten", 1)
	o.MergeSort = a.Algorithm("Merge_sort", 1)
	o.Null = a.Null()
	// Additional parameters per operator (Table 1): the identity
	// properties used in duplicate detection. The Prairie-language path
	// declares the same sets via args(...) clauses.
	a.SetArgs(o.RET, o.SP, o.PA)
	a.SetArgs(o.JOIN, o.JP)
	a.SetArgs(o.JOPR, o.JP)
	a.SetArgs(o.SELECT, o.SP)
	a.SetArgs(o.PROJECT, o.PA)
	a.SetArgs(o.MAT, o.MA)
	a.SetArgs(o.UNNEST, o.UA)
	a.SetArgs(o.SORT, o.Ord)
	return o
}

// ---------------------------------------------------------------------------
// Predicate and attribute helpers shared by both specifications. They
// canonicalize conjunct order so that predicates produced along
// different rewrite paths compare equal, which the memo's duplicate
// detection relies on.

// canonAnd conjoins predicates with conjuncts sorted canonically.
func canonAnd(ps ...*core.Pred) *core.Pred {
	conj := core.And(ps...).Conjuncts()
	if len(conj) == 0 {
		return core.TruePred
	}
	sorted := append([]*core.Pred{}, conj...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].String() < sorted[j].String() })
	return core.And(sorted...)
}

// splitPred splits a conjunction into the part referring only to attrs
// and the rest, both canonicalized.
func splitPred(p *core.Pred, attrs core.Attrs) (within, rest *core.Pred) {
	w, r := p.SplitBy(attrs)
	return canonAnd(w), canonAnd(r)
}

// firstConj returns the canonically-first conjunct; restConj the others.
func firstConj(p *core.Pred) *core.Pred {
	c := canonAnd(p).Conjuncts()
	if len(c) == 0 {
		return core.TruePred
	}
	return c[0]
}

func restConj(p *core.Pred) *core.Pred {
	c := canonAnd(p).Conjuncts()
	if len(c) <= 1 {
		return core.TruePred
	}
	return canonAnd(c[1:]...)
}

// refAttrOfJoin inspects a join predicate for the pointer-equality form
// "left.ref = right.id" (in either orientation) where ref is a pointer
// attribute of the left input whose target class owns the id. It returns
// the pointer attribute.
func (o *Opt) refAttrOfJoin(p *core.Pred, leftAttrs, rightAttrs core.Attrs) (core.Attr, bool) {
	if !p.IsEquiJoin() {
		return core.Attr{}, false
	}
	l, r := p.Left, p.Right
	if !leftAttrs.Contains(l) {
		l, r = r, l
	}
	if !leftAttrs.Contains(l) || !rightAttrs.Contains(r) {
		return core.Attr{}, false
	}
	cl, ok := o.Cat.Class(l.Rel)
	if !ok {
		return core.Attr{}, false
	}
	at, ok := cl.Attr(l.Name)
	if !ok || at.Ref == "" {
		return core.Attr{}, false
	}
	if r.Rel != at.Ref || r.Name != "id" {
		return core.Attr{}, false
	}
	return l, true
}

// matTarget resolves a MAT pointer attribute to its target class.
func (o *Opt) matTarget(ma core.Attrs) (*catalog.Class, bool) {
	if len(ma) != 1 {
		return nil, false
	}
	cl, ok := o.Cat.Class(ma[0].Rel)
	if !ok {
		return nil, false
	}
	at, ok := cl.Attr(ma[0].Name)
	if !ok || at.Ref == "" {
		return nil, false
	}
	return o.Cat.Class(at.Ref)
}

// CanonAnd is the exported canonical conjunction, used by workload
// generation so initial trees agree with rule-produced predicates.
func CanonAnd(ps ...*core.Pred) *core.Pred { return canonAnd(ps...) }

// MatTargetAttrs returns the attribute set MAT adds to its input.
func (o *Opt) MatTargetAttrs(ma core.Attrs) core.Attrs { return o.matTargetAttrs(ma) }

// MatTargetSize returns the tuple size MAT adds to its input.
func (o *Opt) MatTargetSize(ma core.Attrs) float64 { return o.matTargetSize(ma) }

// matTargetAttrs returns the attribute set MAT adds to its input.
func (o *Opt) matTargetAttrs(ma core.Attrs) core.Attrs {
	if t, ok := o.matTarget(ma); ok {
		return t.AttrSet()
	}
	return nil
}

// matTargetCard returns the target class's cardinality.
func (o *Opt) matTargetCard(ma core.Attrs) float64 {
	if t, ok := o.matTarget(ma); ok {
		return t.Card
	}
	return 1
}

// matTargetSize returns the target class's tuple size.
func (o *Opt) matTargetSize(ma core.Attrs) float64 {
	if t, ok := o.matTarget(ma); ok {
		return t.TupleSize
	}
	return 0
}

// unnestCard scales a cardinality by the set attribute's average size.
func (o *Opt) unnestCard(n float64, ua core.Attrs) float64 {
	if len(ua) == 1 {
		if cl, ok := o.Cat.Class(ua[0].Rel); ok {
			if at, ok := cl.Attr(ua[0].Name); ok && at.SetValued && at.SetSize > 0 {
				return n * at.SetSize
			}
		}
	}
	return n
}

// pickIndexAttr chooses the index an Index_scan uses: the requested
// order's leading attribute if indexed, else an equality selection's
// attribute if indexed, else the first index.
func pickIndexAttr(indexes core.Attrs, want core.Order, sel *core.Pred) (core.Attr, bool) {
	if len(indexes) == 0 {
		return core.Attr{}, false
	}
	if !want.IsDontCare() && len(want.By) > 0 && indexes.Contains(want.By[0]) {
		return want.By[0], true
	}
	for _, t := range sel.Conjuncts() {
		if t.Op == core.PredEq && !t.AttrCmp && indexes.Contains(t.Left) {
			return t.Left, true
		}
	}
	return indexes[0], true
}

func indexUsable(ix core.Attr, sel *core.Pred) bool {
	for _, t := range sel.Conjuncts() {
		if t.Op == core.PredEq && !t.AttrCmp && t.Left == ix {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Cost model (work units: tuples touched). Both specifications use
// exactly these formulas, so measured differences between them reflect
// the specification path only.

func fileScanCost(fileCard float64) float64 { return fileCard }

func indexScanCost(fileCard, outCard float64, usable bool) float64 {
	if usable {
		return 8 + 2*outCard
	}
	return 8 + fileCard
}

func filterCost(inCost, inCard float64) float64 { return inCost + inCard }

func projectCost(inCost, inCard float64) float64 { return inCost + inCard }

// hashJoinCost builds a hash table on the right input and probes with
// the left.
func hashJoinCost(lCost, rCost, lCard, rCard float64) float64 {
	return lCost + rCost + lCard + 2*rCard
}

// pointerJoinCost batches the input's pointers and sweeps the target
// class once — cheap for large inputs.
func pointerJoinCost(inCost, inCard, targetCard float64) float64 {
	return inCost + 2*inCard + targetCard
}

// materializeCost chases one pointer per input tuple — cheap for small
// inputs (the Materialize/Pointer_join crossover the optimizer exploits).
func materializeCost(inCost, inCard float64) float64 {
	return inCost + 4*inCard
}

func flattenCost(inCost, outCard float64) float64 { return inCost + outCard }

func mergeSortCost(inCost, card float64) float64 {
	n := math.Max(card, 1)
	return inCost + n*math.Log2(n+1)
}
