package oodb

import (
	"fmt"
	"math"

	"prairie/internal/core"
	"prairie/internal/prairielang"
)

// HelperImpls returns the Go implementations of the helper functions the
// Prairie specification declares. Helpers capture the catalog, exactly
// as the Open OODB's support functions consult its catalogs.
func (o *Opt) HelperImpls() map[string]prairielang.HelperImpl {
	attrs := func(v core.Value) core.Attrs { return v.(core.Attrs) }
	pred := func(v core.Value) *core.Pred { return v.(*core.Pred) }
	num := func(v core.Value) float64 { return float64(v.(core.Float)) }
	return map[string]prairielang.HelperImpl{
		"union": func(a []core.Value) (core.Value, error) {
			return attrs(a[0]).Union(attrs(a[1])), nil
		},
		"contains_all": func(a []core.Value) (core.Value, error) {
			return core.Bool(attrs(a[0]).ContainsAll(attrs(a[1]))), nil
		},
		"attrs_eq": func(a []core.Value) (core.Value, error) {
			return core.Bool(a[0].Equal(a[1])), nil
		},
		"and_pred": func(a []core.Value) (core.Value, error) {
			return canonAnd(pred(a[0]), pred(a[1])), nil
		},
		"split_within": func(a []core.Value) (core.Value, error) {
			w, _ := splitPred(pred(a[0]), attrs(a[1]))
			return w, nil
		},
		"split_rest": func(a []core.Value) (core.Value, error) {
			_, r := splitPred(pred(a[0]), attrs(a[1]))
			return r, nil
		},
		"refers_only": func(a []core.Value) (core.Value, error) {
			return core.Bool(pred(a[0]).RefersOnlyTo(attrs(a[1]))), nil
		},
		"conj_count": func(a []core.Value) (core.Value, error) {
			return core.Float(len(pred(a[0]).Conjuncts())), nil
		},
		"first_conj": func(a []core.Value) (core.Value, error) {
			return firstConj(pred(a[0])), nil
		},
		"rest_conj": func(a []core.Value) (core.Value, error) {
			return restConj(pred(a[0])), nil
		},
		"is_assoc": func(a []core.Value) (core.Value, error) {
			all := canonAnd(pred(a[0]), pred(a[1]))
			l, m, r := attrs(a[2]), attrs(a[3]), attrs(a[4])
			inner, outer := splitPred(all, m.Union(r))
			ok := len(inner.Attrs().Intersect(m)) > 0 &&
				len(inner.Attrs().Intersect(r)) > 0 &&
				len(outer.Attrs().Intersect(l)) > 0
			return core.Bool(ok), nil
		},
		"join_card": func(a []core.Value) (core.Value, error) {
			return core.Float(o.Cat.JoinCard(num(a[0]), num(a[1]), pred(a[2]))), nil
		},
		"sel_card": func(a []core.Value) (core.Value, error) {
			return core.Float(o.Cat.SelectCard(num(a[0]), pred(a[1]))), nil
		},
		"is_ref_join": func(a []core.Value) (core.Value, error) {
			_, ok := o.refAttrOfJoin(pred(a[0]), attrs(a[1]), attrs(a[2]))
			return core.Bool(ok), nil
		},
		"ref_of": func(a []core.Value) (core.Value, error) {
			// The rule's test already established the join is a pointer
			// join; on a TRUE predicate (no pointer) return empty.
			if r, ok := o.refAttrAnywhere(pred(a[0]), attrs(a[1])); ok {
				return core.Attrs{r}, nil
			}
			return core.Attrs(nil), nil
		},
		"is_true_pred": func(a []core.Value) (core.Value, error) {
			return core.Bool(pred(a[0]).IsTrue()), nil
		},
		"mat_attrs": func(a []core.Value) (core.Value, error) {
			return o.matTargetAttrs(attrs(a[0])), nil
		},
		"mat_card": func(a []core.Value) (core.Value, error) {
			return core.Float(o.matTargetCard(attrs(a[0]))), nil
		},
		"mat_size": func(a []core.Value) (core.Value, error) {
			return core.Float(o.matTargetSize(attrs(a[0]))), nil
		},
		"unnest_card": func(a []core.Value) (core.Value, error) {
			return core.Float(o.unnestCard(num(a[0]), attrs(a[1]))), nil
		},
		"has_index": func(a []core.Value) (core.Value, error) {
			return core.Bool(len(attrs(a[0])) > 0), nil
		},
		"has_probe_index": func(a []core.Value) (core.Value, error) {
			ix, ok := pickIndexAttr(attrs(a[0]), core.DontCareOrder, pred(a[1]))
			return core.Bool(ok && indexUsable(ix, pred(a[1]))), nil
		},
		"probe_order": func(a []core.Value) (core.Value, error) {
			ix, ok := pickIndexAttr(attrs(a[0]), core.DontCareOrder, pred(a[1]))
			if !ok {
				return core.DontCareOrder, nil
			}
			return core.OrderBy(ix), nil
		},
		"sweep_order": func(a []core.Value) (core.Value, error) {
			want, _ := a[1].(core.Order)
			ix, ok := pickIndexAttr(attrs(a[0]), want, core.TruePred)
			if !ok {
				return core.DontCareOrder, nil
			}
			return core.OrderBy(ix), nil
		},
		"order_within": func(a []core.Value) (core.Value, error) {
			ord, _ := a[0].(core.Order)
			return core.Bool(ord.Within(attrs(a[1]))), nil
		},
		"nlogn": func(a []core.Value) (core.Value, error) {
			n := math.Max(num(a[0]), 1)
			return core.Float(n * math.Log2(n+1)), nil
		},
	}
}

// refAttrAnywhere finds any pointer attribute referenced by the
// predicate within the given attribute set; it backs ref_of's fallback.
func (o *Opt) refAttrAnywhere(p *core.Pred, within core.Attrs) (core.Attr, bool) {
	for _, a := range p.Attrs() {
		if !within.Contains(a) {
			continue
		}
		if cl, ok := o.Cat.Class(a.Rel); ok {
			if at, ok := cl.Attr(a.Name); ok && at.Ref != "" {
				return a, true
			}
		}
	}
	return core.Attr{}, false
}

// PrairieRules compiles the Prairie-language specification (Spec) into a
// core rule set over this optimizer's catalog.
func (o *Opt) PrairieRules() (*core.RuleSet, error) {
	rs, err := prairielang.ParseAndCompile(Spec, o.HelperImpls())
	if err != nil {
		return nil, fmt.Errorf("oodb: compiling Prairie specification: %w", err)
	}
	// The compiled specification defines its own algebra instance;
	// rebind this Opt's handles to it so that query construction and
	// the rule set agree on operation and property identities.
	o.rebind(rs.Algebra)
	return rs, nil
}

// rebind points the Opt's handles at the given algebra's instances.
func (o *Opt) rebind(a *core.Algebra) {
	o.Alg = a
	o.Ord = a.Props.MustLookup("tuple_order")
	o.JP = a.Props.MustLookup("join_predicate")
	o.SP = a.Props.MustLookup("selection_predicate")
	o.PA = a.Props.MustLookup("projected_attributes")
	o.MA = a.Props.MustLookup("mat_attribute")
	o.UA = a.Props.MustLookup("unnest_attribute")
	o.AT = a.Props.MustLookup("attributes")
	o.NR = a.Props.MustLookup("num_records")
	o.TS = a.Props.MustLookup("tuple_size")
	o.IX = a.Props.MustLookup("indexes")
	o.C = a.Props.MustLookup("cost")
	o.RET = a.MustOp("RET")
	o.JOIN = a.MustOp("JOIN")
	o.JOPR = a.MustOp("JOPR")
	o.SELECT = a.MustOp("SELECT")
	o.PROJECT = a.MustOp("PROJECT")
	o.MAT = a.MustOp("MAT")
	o.UNNEST = a.MustOp("UNNEST")
	o.SORT = a.MustOp("SORT")
	o.FileScan = a.MustOp("File_scan")
	o.IndexScan = a.MustOp("Index_scan")
	o.Filter = a.MustOp("Filter")
	o.Proj = a.MustOp("Project")
	o.HashJoin = a.MustOp("Hash_join")
	o.PointerJoin = a.MustOp("Pointer_join")
	o.Materialize = a.MustOp("Materialize")
	o.Flatten = a.MustOp("Flatten")
	o.MergeSort = a.MustOp("Merge_sort")
	o.Null = a.Null()
}
