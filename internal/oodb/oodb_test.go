package oodb

import (
	"testing"

	"prairie/internal/catalog"
	"prairie/internal/core"
)

func TestHelperImplsTotal(t *testing.T) {
	o := New(catalog.Generate(catalog.DefaultGen(2, 101, true)))
	impls := o.HelperImpls()
	// Every helper must tolerate default values (P2V taint tracing runs
	// actions over defaults).
	defaults := map[string][]core.Value{
		"union":           {core.Attrs(nil), core.Attrs(nil)},
		"contains_all":    {core.Attrs(nil), core.Attrs(nil)},
		"attrs_eq":        {core.Attrs(nil), core.Attrs(nil)},
		"and_pred":        {core.TruePred, core.TruePred},
		"split_within":    {core.TruePred, core.Attrs(nil)},
		"split_rest":      {core.TruePred, core.Attrs(nil)},
		"refers_only":     {core.TruePred, core.Attrs(nil)},
		"conj_count":      {core.TruePred},
		"first_conj":      {core.TruePred},
		"rest_conj":       {core.TruePred},
		"is_assoc":        {core.TruePred, core.TruePred, core.Attrs(nil), core.Attrs(nil), core.Attrs(nil)},
		"join_card":       {core.Float(0), core.Float(0), core.TruePred},
		"sel_card":        {core.Float(0), core.TruePred},
		"is_ref_join":     {core.TruePred, core.Attrs(nil), core.Attrs(nil)},
		"ref_of":          {core.TruePred, core.Attrs(nil)},
		"is_true_pred":    {core.TruePred},
		"mat_attrs":       {core.Attrs(nil)},
		"mat_card":        {core.Attrs(nil)},
		"mat_size":        {core.Attrs(nil)},
		"unnest_card":     {core.Float(0), core.Attrs(nil)},
		"has_index":       {core.Attrs(nil)},
		"has_probe_index": {core.Attrs(nil), core.TruePred},
		"probe_order":     {core.Attrs(nil), core.TruePred},
		"sweep_order":     {core.Attrs(nil), core.DontCareOrder},
		"nlogn":           {core.Float(0)},
		"order_within":    {core.DontCareOrder, core.Attrs(nil)},
	}
	for name, fn := range impls {
		args, ok := defaults[name]
		if !ok {
			t.Errorf("helper %s missing from totality test", name)
			continue
		}
		if _, err := fn(args); err != nil {
			t.Errorf("helper %s failed on defaults: %v", name, err)
		}
	}
	for name := range defaults {
		if _, ok := impls[name]; !ok {
			t.Errorf("helper %s not implemented", name)
		}
	}
}

func TestCostFunctions(t *testing.T) {
	if fileScanCost(64) != 64 {
		t.Error("fileScanCost")
	}
	if indexScanCost(64, 4, true) != 16 {
		t.Errorf("indexScanCost probe = %g", indexScanCost(64, 4, true))
	}
	if indexScanCost(64, 4, false) != 72 {
		t.Errorf("indexScanCost sweep = %g", indexScanCost(64, 4, false))
	}
	if filterCost(10, 5) != 15 || projectCost(10, 5) != 15 {
		t.Error("filter/project cost")
	}
	if hashJoinCost(1, 2, 3, 4) != 1+2+3+8 {
		t.Error("hashJoinCost")
	}
	if pointerJoinCost(1, 4, 16) != 1+8+16 {
		t.Error("pointerJoinCost")
	}
	if materializeCost(1, 4) != 17 {
		t.Error("materializeCost")
	}
	if flattenCost(1, 8) != 9 {
		t.Error("flattenCost")
	}
	// The Materialize / Pointer_join crossover: cheap chase for small
	// inputs, batched join for large ones.
	if !(materializeCost(0, 2) < pointerJoinCost(0, 2, 1024)) {
		t.Error("Materialize should win for tiny inputs")
	}
	if !(pointerJoinCost(0, 4096, 64) < materializeCost(0, 4096)) {
		t.Error("Pointer_join should win for large inputs")
	}
}

func TestCanonAndHelpers(t *testing.T) {
	p1 := core.EqConst(core.A("C2", "b"), core.Int(2))
	p2 := core.EqConst(core.A("C1", "b"), core.Int(1))
	c := canonAnd(p1, p2)
	c2 := canonAnd(p2, p1)
	if !c.Equal(c2) {
		t.Error("canonAnd is not order-insensitive")
	}
	if !firstConj(c).Equal(firstConj(c2)) {
		t.Error("firstConj unstable")
	}
	if len(restConj(c).Conjuncts()) != 1 {
		t.Errorf("restConj = %v", restConj(c))
	}
	if !firstConj(core.TruePred).IsTrue() || !restConj(core.TruePred).IsTrue() {
		t.Error("degenerate conjunct helpers")
	}
	if !restConj(p1).IsTrue() {
		t.Error("restConj of single term should be TRUE")
	}
}
