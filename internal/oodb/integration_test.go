package oodb_test

import (
	"math"
	"strings"
	"testing"

	"prairie/internal/catalog"
	"prairie/internal/core"
	"prairie/internal/data"
	"prairie/internal/exec"
	"prairie/internal/oodb"
	"prairie/internal/p2v"
	"prairie/internal/qgen"
	"prairie/internal/volcano"
)

func prairiePath(t *testing.T, n int, seed int64, indexed bool) (*oodb.Opt, *volcano.RuleSet, *p2v.Report) {
	t.Helper()
	o := oodb.New(qgen.Catalog(n, seed, indexed))
	rs, err := o.PrairieRules()
	if err != nil {
		t.Fatal(err)
	}
	vrs, rep, err := p2v.Translate(rs)
	if err != nil {
		t.Fatal(err)
	}
	return o, vrs, rep
}

func volcanoPath(t *testing.T, n int, seed int64, indexed bool) (*oodb.Opt, *volcano.RuleSet) {
	t.Helper()
	o := oodb.New(qgen.Catalog(n, seed, indexed))
	vrs := o.VolcanoRules()
	if errs := vrs.Validate(); len(errs) != 0 {
		t.Fatalf("hand-coded rule set invalid: %v", errs)
	}
	return o, vrs
}

// TestSpecCounts asserts the paper's §4.2 rule-count claims: the Prairie
// specification has 22 T-rules and 11 I-rules; P2V reconstitutes a
// Volcano rule set with the same counts as the hand-coded one
// (17 trans_rules, 9 impl_rules) plus the deduced enforcer.
func TestSpecCounts(t *testing.T) {
	o, vrs, rep := prairiePath(t, 2, 101, false)
	if rep.TRulesIn != 22 || rep.IRulesIn != 11 {
		t.Errorf("Prairie spec has %d T-rules, %d I-rules; want 22, 11", rep.TRulesIn, rep.IRulesIn)
	}
	if rep.TransOut != 17 || rep.ImplsOut != 9 || rep.EnforcersOut != 1 {
		t.Errorf("generated %d trans, %d impl, %d enforcers; want 17, 9, 1",
			rep.TransOut, rep.ImplsOut, rep.EnforcersOut)
	}
	hand := oodb.New(qgen.Catalog(2, 101, false)).VolcanoRules()
	if len(hand.Trans) != 17 || len(hand.Impls) != 9 || len(hand.Enforcers) != 1 {
		t.Errorf("hand-coded %d trans, %d impl, %d enforcers; want 17, 9, 1",
			len(hand.Trans), len(hand.Impls), len(hand.Enforcers))
	}
	if rep.Aliases["JOPR"] != "JOIN" {
		t.Errorf("aliases = %v", rep.Aliases)
	}
	if len(rep.EnforcerOperators) != 1 || rep.EnforcerOperators[0] != "SORT" {
		t.Errorf("enforcer operators = %v", rep.EnforcerOperators)
	}
	if got := rep.EnforcedProps["SORT"]; len(got) != 1 || got[0] != "tuple_order" {
		t.Errorf("SORT enforces %v", got)
	}
	if len(rep.DroppedTRules) != 5 {
		t.Errorf("dropped T-rules = %v, want 5", rep.DroppedTRules)
	}
	if len(rep.PhysProps) != 1 || rep.PhysProps[0] != "tuple_order" {
		t.Errorf("physical properties = %v", rep.PhysProps)
	}
	if !vrs.Class.IsPhys(o.Ord) {
		t.Error("generated classification misses tuple_order")
	}
	// Structural constraints the paper states: PROJECT appears in one
	// impl_rule and no trans_rules; UNNEST in exactly one of each.
	countOps := func(rules []*volcano.TransRule, name string) int {
		n := 0
		for _, r := range rules {
			for _, op := range append(r.LHS.Ops(), r.RHS.Ops()...) {
				if op.Name == name {
					n++
					break
				}
			}
		}
		return n
	}
	if got := countOps(vrs.Trans, "PROJECT"); got != 0 {
		t.Errorf("PROJECT in %d trans_rules, want 0", got)
	}
	if got := countOps(vrs.Trans, "UNNEST"); got != 1 {
		t.Errorf("UNNEST in %d trans_rules, want 1", got)
	}
	for _, want := range []struct {
		op string
		n  int
	}{{"PROJECT", 1}, {"UNNEST", 1}, {"RET", 3}, {"MAT", 2}} {
		n := 0
		for _, r := range vrs.Impls {
			if r.Op.Name == want.op {
				n++
			}
		}
		if n != want.n {
			t.Errorf("%s has %d impl_rules, want %d", want.op, n, want.n)
		}
	}
	// Eight algorithms (Merge_sort is the enforcer, Null disappears).
	algs := map[string]bool{}
	for _, r := range vrs.Impls {
		algs[r.Alg.Name] = true
	}
	if len(algs) != 8 {
		t.Errorf("impl rules use %d algorithms, want 8: %v", len(algs), algs)
	}
}

func optimizeWith(t *testing.T, o *oodb.Opt, vrs *volcano.RuleSet, rep *p2v.Report, e qgen.ExprKind, n int) (*volcano.PExpr, *volcano.Optimizer) {
	t.Helper()
	tree, err := qgen.Build(o, e, n)
	if err != nil {
		t.Fatal(err)
	}
	req := core.NewDescriptor(o.Alg.Props)
	if rep != nil {
		tree, req, err = rep.PrepareQuery(tree, req)
		if err != nil {
			t.Fatal(err)
		}
	}
	opt := volcano.NewOptimizer(vrs)
	plan, err := opt.Optimize(tree, req)
	if err != nil {
		t.Fatalf("%v n=%d: %v", e, n, err)
	}
	return plan, opt
}

// TestPrairieMatchesVolcano is the repository's acid test (§4.3): for
// every expression family, both optimizers find plans of equal cost and
// explore identical numbers of equivalence classes.
func TestPrairieMatchesVolcano(t *testing.T) {
	for _, q := range qgen.Queries() {
		n := 3
		if q.Expr.HasSelect() {
			n = 2 // E3/E4 spaces grow steeply; keep the test fast
		}
		t.Run(q.Name, func(t *testing.T) {
			po, pvrs, rep := prairiePath(t, n, 101, q.Indexed)
			pplan, popt := optimizeWith(t, po, pvrs, rep, q.Expr, n)
			vo, vvrs := volcanoPath(t, n, 101, q.Indexed)
			vplan, vopt := optimizeWith(t, vo, vvrs, nil, q.Expr, n)

			pc := pplan.Cost(pvrs.Class)
			vc := vplan.Cost(vvrs.Class)
			if math.Abs(pc-vc) > 1e-9*math.Max(pc, vc) {
				t.Errorf("winner costs differ: prairie=%g volcano=%g\nprairie: %s\nvolcano: %s",
					pc, vc, pplan, vplan)
			}
			if popt.Stats.Groups != vopt.Stats.Groups {
				t.Errorf("equivalence classes differ: prairie=%d volcano=%d",
					popt.Stats.Groups, vopt.Stats.Groups)
			}
			if popt.Stats.Exprs != vopt.Stats.Exprs {
				t.Errorf("expressions differ: prairie=%d volcano=%d",
					popt.Stats.Exprs, vopt.Stats.Exprs)
			}
		})
	}
}

func TestSelectionPushdownWins(t *testing.T) {
	// With selective predicates, the winner must not evaluate the whole
	// join before selecting: some Filter/Index_scan work should sit
	// below the top join, or selections were merged into RETs.
	o, vrs, rep := prairiePath(t, 2, 101, true)
	plan, _ := optimizeWith(t, o, vrs, rep, qgen.E3, 2)
	s := plan.String()
	if strings.HasPrefix(s, "Filter(Hash_join") {
		t.Errorf("selection not pushed: %s", s)
	}
}

func TestPointerJoinVsMaterialize(t *testing.T) {
	// Both MAT implementations must be considered; whichever wins, the
	// plan contains one of them for E2.
	o, vrs, rep := prairiePath(t, 2, 101, false)
	plan, opt := optimizeWith(t, o, vrs, rep, qgen.E2, 2)
	algs := strings.Join(plan.Algorithms(), ",")
	if !strings.Contains(algs, "Materialize") && !strings.Contains(algs, "Pointer_join") {
		t.Errorf("no MAT algorithm in plan %s", plan)
	}
	if opt.Stats.ImplMatched["mat_materialize"] == 0 || opt.Stats.ImplMatched["mat_pointer_join"] == 0 {
		t.Error("both MAT implementations should be considered")
	}
}

func TestJoinToMatFires(t *testing.T) {
	// An explicit join on a pointer attribute (C1.ref = S1.id) collapses
	// to MAT via join_to_mat, enabling pointer-based plans.
	o := oodb.New(qgen.Catalog(1, 101, false))
	rs, err := o.PrairieRules()
	if err != nil {
		t.Fatal(err)
	}
	vrs, rep, err := p2v.Translate(rs)
	if err != nil {
		t.Fatal(err)
	}
	// Build JOIN(RET(C1), RET(S1)) on C1.ref = S1.id by hand.
	mk := func(name string) *core.Expr {
		cl := o.Cat.MustClass(name)
		d := o.Alg.NewDesc()
		d.Set(o.AT, cl.AttrSet())
		d.SetFloat(o.NR, cl.Card)
		d.SetFloat(o.TS, cl.TupleSize)
		d.Set(o.IX, cl.IndexSet())
		d.Set(o.C, core.Cost(0))
		leaf := core.NewLeaf(name, d)
		rd := d.Clone()
		rd.Unset(o.IX)
		rd.Set(o.SP, core.TruePred)
		return core.NewNode(o.RET, rd, leaf)
	}
	l, r := mk("C1"), mk("S1")
	jd := o.Alg.NewDesc()
	pred := core.EqAttr(core.A("C1", "ref"), core.A("S1", "id"))
	jd.Set(o.JP, pred)
	jd.Set(o.AT, l.D.AttrList(o.AT).Union(r.D.AttrList(o.AT)))
	jd.SetFloat(o.NR, o.Cat.JoinCard(l.D.Float(o.NR), r.D.Float(o.NR), pred))
	jd.SetFloat(o.TS, l.D.Float(o.TS)+r.D.Float(o.TS))
	tree := core.NewNode(o.JOIN, jd, l, r)

	tree2, req, err := rep.PrepareQuery(tree, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := volcano.NewOptimizer(vrs)
	if _, err := opt.Optimize(tree2, req); err != nil {
		t.Fatal(err)
	}
	if opt.Stats.TransFired["join_to_mat"] == 0 {
		t.Errorf("join_to_mat never fired; trans fired: %v", opt.Stats.TransFired)
	}
}

// TestGroupGrowthByFamily checks Figure 14's qualitative shape: for the
// same N, equivalence classes grow from E1 to E2 and dramatically for
// the SELECT families.
func TestGroupGrowthByFamily(t *testing.T) {
	groups := map[qgen.ExprKind]int{}
	for _, e := range []qgen.ExprKind{qgen.E1, qgen.E2, qgen.E3, qgen.E4} {
		o, vrs, rep := prairiePath(t, 3, 101, false)
		_, opt := optimizeWith(t, o, vrs, rep, e, 3)
		groups[e] = opt.Stats.Groups
	}
	// Per-class MAT placement (E2) and per-class SELECT placement (E3)
	// generate isomorphic spaces — identical group counts — while the
	// combination E4 explodes (the paper's E3/E4 memory exhaustion).
	if !(groups[qgen.E1] < groups[qgen.E2] && groups[qgen.E2] <= groups[qgen.E3] && groups[qgen.E3] < groups[qgen.E4]) {
		t.Errorf("group growth not monotone across families: %v", groups)
	}
	if groups[qgen.E4] < 4*groups[qgen.E2] {
		t.Errorf("E4 should explode relative to E2: %v", groups)
	}
}

// TestRuleMatchCounts records the Table 5 analogue: distinct trans and
// impl rules fired per query. The shape must be monotone within a family
// and indices must only add index rules.
func TestRuleMatchCounts(t *testing.T) {
	fired := map[string][2]int{}
	for _, q := range qgen.Queries() {
		n := 3
		if q.Expr.HasSelect() {
			n = 2
		}
		o, vrs, rep := prairiePath(t, n, 101, q.Indexed)
		_, opt := optimizeWith(t, o, vrs, rep, q.Expr, n)
		tf := 0
		for _, v := range opt.Stats.TransFired {
			if v > 0 {
				tf++
			}
		}
		fired[q.Name] = [2]int{tf, opt.Stats.DistinctImplFired()}
	}
	// Q1 fires exactly File_scan + Hash_join; Q2 adds the index sweep.
	if fired["Q1"][1] != 2 {
		t.Errorf("Q1 impl fired = %d, want 2", fired["Q1"][1])
	}
	if fired["Q2"][1] != 3 {
		t.Errorf("Q2 impl fired = %d, want 3", fired["Q2"][1])
	}
	// E2 adds the two MAT implementations.
	if fired["Q3"][1] != 4 {
		t.Errorf("Q3 impl fired = %d, want 4", fired["Q3"][1])
	}
	// Index effect: indexed variants fire at least as many rules.
	for _, pair := range [][2]string{{"Q1", "Q2"}, {"Q3", "Q4"}, {"Q5", "Q6"}, {"Q7", "Q8"}} {
		if fired[pair[1]][1] < fired[pair[0]][1] {
			t.Errorf("index removed impl rules: %s=%v %s=%v",
				pair[0], fired[pair[0]], pair[1], fired[pair[1]])
		}
		if fired[pair[1]][0] < fired[pair[0]][0] {
			t.Errorf("index removed trans rules: %s=%v %s=%v",
				pair[0], fired[pair[0]], pair[1], fired[pair[1]])
		}
	}
	// Family growth: E4 fires the most trans rules.
	if !(fired["Q7"][0] > fired["Q5"][0] && fired["Q5"][0] > fired["Q1"][0]) {
		t.Errorf("trans fired not growing across families: %v", fired)
	}
}

// TestPlansExecuteCorrectly is the semantics acid test: winner plans
// from both specification paths are executed against synthetic data and
// compared with a naive evaluation of the logical query.
func TestPlansExecuteCorrectly(t *testing.T) {
	// Small cardinalities keep selections non-empty and naive joins fast.
	smallCat := func(indexed bool) *catalog.Catalog {
		return catalog.Generate(catalog.GenOptions{
			NumClasses: 2, Seed: 77, Indexed: indexed,
			MinCardExp: 5, MaxCardExp: 6, Refs: true,
		})
	}
	for _, q := range qgen.Queries() {
		n := 2
		t.Run(q.Name, func(t *testing.T) {
			po := oodb.New(smallCat(q.Indexed))
			prs, err := po.PrairieRules()
			if err != nil {
				t.Fatal(err)
			}
			pvrs, rep, err := p2v.Translate(prs)
			if err != nil {
				t.Fatal(err)
			}
			db := data.Populate(po.Cat, 9, 64)
			naive := &exec.Naive{DB: db, P: exec.Props{
				Ord: po.Ord, JP: po.JP, SP: po.SP, PA: po.PA, MA: po.MA, UA: po.UA,
			}}
			logical, err := qgen.Build(po, q.Expr, n)
			if err != nil {
				t.Fatal(err)
			}
			want, err := naive.Eval(logical)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Rows) == 0 {
				t.Fatal("workload produced an empty result; tests need data flowing")
			}

			run := func(o *oodb.Opt, plan *volcano.PExpr) *exec.Result {
				t.Helper()
				comp := exec.NewCompiler(db, exec.Props{
					Ord: o.Ord, JP: o.JP, SP: o.SP, PA: o.PA, MA: o.MA, UA: o.UA,
				})
				it, err := comp.Compile(plan.ToExpr())
				if err != nil {
					t.Fatalf("compile %s: %v", plan, err)
				}
				res, err := exec.Run(it)
				if err != nil {
					t.Fatalf("run %s: %v", plan, err)
				}
				return res
			}

			pplan, _ := optimizeWith(t, po, pvrs, rep, q.Expr, n)
			if got := run(po, pplan); !exec.SameBag(want, got) {
				t.Errorf("prairie plan %s: %d rows, want %d", pplan, len(got.Rows), len(want.Rows))
			}
			vo := oodb.New(smallCat(q.Indexed))
			vvrs := vo.VolcanoRules()
			vplan, _ := optimizeWith(t, vo, vvrs, nil, q.Expr, n)
			if got := run(vo, vplan); !exec.SameBag(want, got) {
				t.Errorf("volcano plan %s: %d rows, want %d", vplan, len(got.Rows), len(want.Rows))
			}
		})
	}
}

// TestUnnestOptimizesAndExecutes covers the UNNEST operator end to end:
// UNNEST(MAT(RET(C1))) optimizes (via unnest_mat_commute and Flatten)
// and the winner computes the same bag as the naive evaluation.
func TestUnnestOptimizesAndExecutes(t *testing.T) {
	o, vrs, rep := prairiePath(t, 1, 101, false)
	ret, err := qgen.Build(o, qgen.E2, 1) // MAT(RET(C1))
	if err != nil {
		t.Fatal(err)
	}
	ua := core.Attrs{core.A("C1", "tags")}
	ud := o.Alg.NewDesc()
	ud.Set(o.UA, ua)
	ud.Set(o.AT, ret.D.AttrList(o.AT))
	ud.SetFloat(o.NR, 4*ret.D.Float(o.NR))
	ud.SetFloat(o.TS, ret.D.Float(o.TS))
	tree := core.NewNode(o.UNNEST, ud, ret)

	tree2, req, err := rep.PrepareQuery(tree, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := volcano.NewOptimizer(vrs)
	plan, err := opt.Optimize(tree2, req)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.TransMatched["unnest_mat_commute"] == 0 {
		t.Error("unnest_mat_commute never matched")
	}
	if !strings.Contains(strings.Join(plan.Algorithms(), ","), "Flatten") {
		t.Errorf("no Flatten in plan %s", plan)
	}
	db := data.Populate(o.Cat, 9, 32)
	props := exec.Props{Ord: o.Ord, JP: o.JP, SP: o.SP, PA: o.PA, MA: o.MA, UA: o.UA}
	naive := &exec.Naive{DB: db, P: props}
	want, err := naive.Eval(tree)
	if err != nil {
		t.Fatal(err)
	}
	comp := exec.NewCompiler(db, props)
	it, err := comp.Compile(plan.ToExpr())
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Run(it)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.SameBag(want, got) {
		t.Errorf("UNNEST plan result differs: %d vs %d rows", len(got.Rows), len(want.Rows))
	}
}

// TestBottomUpStrategyOnOODB cross-checks the System R-style strategy on
// the full OODB rule set: equal-cost winners for a mixed workload.
func TestBottomUpStrategyOnOODB(t *testing.T) {
	for _, e := range []qgen.ExprKind{qgen.E1, qgen.E2, qgen.E4} {
		o, vrs, rep := prairiePath(t, 2, 101, true)
		tree, err := qgen.Build(o, e, 2)
		if err != nil {
			t.Fatal(err)
		}
		tree, req, err := rep.PrepareQuery(tree, nil)
		if err != nil {
			t.Fatal(err)
		}
		td := volcano.NewOptimizer(vrs)
		tdPlan, err := td.Optimize(tree.Clone(), req)
		if err != nil {
			t.Fatal(err)
		}
		bu := volcano.NewBottomUp(vrs)
		buPlan, err := bu.Optimize(tree.Clone(), req)
		if err != nil {
			t.Fatal(err)
		}
		if tdPlan.Cost(vrs.Class) != buPlan.Cost(vrs.Class) {
			t.Errorf("%v: top-down %g vs bottom-up %g", e,
				tdPlan.Cost(vrs.Class), buPlan.Cost(vrs.Class))
		}
	}
}

// TestStarGraphSearchSpace: star query graphs (the paper's future work)
// admit more join orders than linear chains — every subset containing
// the hub is connected — so the search space is strictly larger.
func TestStarGraphSearchSpace(t *testing.T) {
	run := func(g qgen.Graph) int {
		o, vrs, rep := prairiePath(t, 4, 101, false)
		tree, err := qgen.BuildGraph(o, qgen.E1, 4, g)
		if err != nil {
			t.Fatal(err)
		}
		tree, req, err := rep.PrepareQuery(tree, nil)
		if err != nil {
			t.Fatal(err)
		}
		opt := volcano.NewOptimizer(vrs)
		if _, err := opt.Optimize(tree, req); err != nil {
			t.Fatal(err)
		}
		return opt.Stats.Groups
	}
	linear, star := run(qgen.Linear), run(qgen.Star)
	if star <= linear {
		t.Errorf("star groups (%d) should exceed linear groups (%d)", star, linear)
	}
}
