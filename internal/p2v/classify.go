// Package p2v implements the paper's P2V pre-processor: it translates a
// Prairie rule set (package internal/core) into a Volcano rule set
// (package internal/volcano) that the search engine can process
// efficiently.
//
// The translation performs the three analyses of Section 3 of the paper:
//
//  1. Enforcer deduction — an operator with a Null implementation is an
//     enforcer-operator; its other single-input algorithms become Volcano
//     enforcers.
//  2. Automatic property classification — the single Prairie descriptor
//     is split into Volcano's operator/algorithm argument, physical
//     property, and cost classes by inspecting the rules' actions.
//  3. Rule rewriting and merging — enforcer-operators are deleted from
//     T-rule patterns; rules that become idempotent are dropped and their
//     operator aliases substituted, producing a compact Volcano rule set.
package p2v

import (
	"sort"
	"strings"

	"prairie/internal/core"
)

// writeSet records, per descriptor variable name, the properties an
// action assigns ("Dname.prop") and whether the whole descriptor was the
// target of a copy ("Dname = Dother").
type writeSet struct {
	props  map[string]map[core.PropID]bool
	copies map[string]bool
}

func newWriteSet() *writeSet {
	return &writeSet{props: map[string]map[core.PropID]bool{}, copies: map[string]bool{}}
}

func (w *writeSet) addProp(desc string, id core.PropID) {
	m := w.props[desc]
	if m == nil {
		m = map[core.PropID]bool{}
		w.props[desc] = m
	}
	m[id] = true
}

// propsOf returns the property ids assigned on desc, sorted.
func (w *writeSet) propsOf(desc string) []core.PropID {
	var out []core.PropID
	for id := range w.props[desc] {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// tracer is a core.Observer that records per-property writes during a
// taint-tracing run of a closure-based action (the paper's footnote 3
// hints, computed dynamically). Whole-descriptor copies are recorded
// separately: they are descriptor initialization, not property requests.
type tracer struct {
	ws    *writeSet
	names map[*core.Descriptor]string
}

func (t *tracer) ObserveGet(*core.Descriptor, core.PropID) {}

func (t *tracer) ObserveSet(d *core.Descriptor, id core.PropID) {
	if name, ok := t.names[d]; ok {
		t.ws.addProp(name, id)
	}
}

func (t *tracer) ObserveCopy(dst, src *core.Descriptor) {
	if name, ok := t.names[dst]; ok {
		t.ws.copies[name] = true
	}
}

// actionWrites determines the write-set of an action over the given
// binding names. It prefers explicit hints (exact, supplied by the rule
// author or by the Prairie language compiler) and falls back to running
// the action once against instrumented descriptors populated with
// default values.
func actionWrites(ps *core.PropertySet, act core.Action, hints []string, names []string) *writeSet {
	ws := newWriteSet()
	if hints != nil {
		for _, h := range hints {
			dot := strings.IndexByte(h, '.')
			if dot < 0 {
				continue
			}
			desc, prop := h[:dot], h[dot+1:]
			if prop == "*" {
				ws.copies[desc] = true
				continue
			}
			if id, ok := ps.Lookup(prop); ok {
				ws.addProp(desc, id)
			}
		}
		return ws
	}
	if act == nil {
		return ws
	}
	tr := &tracer{ws: ws, names: map[*core.Descriptor]string{}}
	b := core.NewBinding(ps)
	for _, n := range names {
		d := core.NewDescriptor(ps)
		d.Name = n
		d.SetObserver(tr)
		tr.names[d] = n
		b.Bind(n, d)
	}
	// The trace run sees default values only; actions are expected to be
	// total over defaults (core.Descriptor.Get guarantees non-nil reads).
	act(b)
	return ws
}

// Classification analysis (§3.1): a property with kind COST is the cost
// property; a property assigned per-property on a right-hand-side input
// stream's descriptor in any I-rule pre-opt section is physical;
// everything else is an operator/algorithm argument.
func classify(rs *core.RuleSet) (costID core.PropID, phys []core.PropID, perRule map[*core.IRule]*writeSet) {
	ps := rs.Algebra.Props
	costs := ps.CostProps()
	costID = core.NoProp
	if len(costs) == 1 {
		costID = costs[0]
	}
	physSet := map[core.PropID]bool{}
	perRule = make(map[*core.IRule]*writeSet, len(rs.IRules))
	for _, r := range rs.IRules {
		var hints []string
		if r.Hints != nil {
			hints = r.Hints.PreWrites
		}
		names := bindingNames(r.LHS, r.RHS)
		ws := actionWrites(ps, r.PreOpt, hints, names)
		perRule[r] = ws
		for _, leafDesc := range rhsInputDescNames(r.RHS) {
			for id := range ws.props[leafDesc] {
				if id != costID {
					physSet[id] = true
				}
			}
		}
	}
	for id := range physSet {
		phys = append(phys, id)
	}
	sort.Slice(phys, func(i, j int) bool { return phys[i] < phys[j] })
	return costID, phys, perRule
}

// bindingNames returns every descriptor variable name of a rule.
func bindingNames(lhs, rhs *core.PatNode) []string {
	return append(lhs.DescNames(), rhs.DescNames()...)
}

// rhsInputDescNames returns the descriptor names attached to variable
// leaves on a rule's right side — the "input stream descriptors" whose
// pre-opt assignments mark physical properties.
func rhsInputDescNames(rhs *core.PatNode) []string {
	var out []string
	var walk func(*core.PatNode)
	walk = func(n *core.PatNode) {
		if n.IsVar() {
			if n.Desc != "" {
				out = append(out, n.Desc)
			}
			return
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(rhs)
	return out
}
