package p2v

import (
	"fmt"

	"prairie/internal/core"
)

// PrepareQuery adapts an initialized Prairie operator tree for the
// generated Volcano optimizer. Enforcer-operators do not exist in the
// generated rule space (their algorithms became enforcers), so
// enforcer-operator nodes at the root of the tree are stripped and their
// enforced properties become part of the required physical-property
// vector — exactly how a Volcano user expresses "the result must be
// sorted". req may be nil. Enforcer-operator nodes below the root cannot
// be expressed as requirements on interior groups and are rejected.
func (rep *Report) PrepareQuery(tree *core.Expr, req *core.Descriptor) (*core.Expr, *core.Descriptor, error) {
	if tree == nil {
		return nil, nil, fmt.Errorf("p2v: nil query tree")
	}
	ps := tree.D.Props()
	if req == nil {
		req = core.NewDescriptor(ps)
	} else {
		req = req.Clone()
	}
	isEnf := map[string][]string{}
	for _, op := range rep.EnforcerOperators {
		isEnf[op] = rep.EnforcedProps[op]
	}
	// Peel enforcer-operators off the root chain.
	for !tree.IsLeaf() {
		props, ok := isEnf[tree.Op.Name]
		if !ok {
			break
		}
		for _, name := range props {
			id, found := ps.Lookup(name)
			if !found {
				continue
			}
			if v := tree.D.Get(id); !v.IsDontCare() {
				req.Set(id, v)
			}
		}
		tree = tree.Kids[0]
	}
	// Reject enforcer-operators anywhere below.
	var check func(e *core.Expr) error
	check = func(e *core.Expr) error {
		if !e.IsLeaf() {
			if _, ok := isEnf[e.Op.Name]; ok {
				return fmt.Errorf("p2v: enforcer-operator %s below the query root cannot be translated; express the requirement at the root", e.Op.Name)
			}
			for _, k := range e.Kids {
				if err := check(k); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, k := range tree.Kids {
		if err := check(k); err != nil {
			return nil, nil, err
		}
	}
	return tree, req, nil
}
