package p2v

import (
	"fmt"
	"sort"
	"strings"

	"prairie/internal/core"
	"prairie/internal/volcano"
)

// Report documents a translation: the deduced enforcers, the automatic
// property classification, every rewritten/dropped/merged rule, and the
// rule-count arithmetic of §3.3 of the paper.
type Report struct {
	Algebra string

	// Property classification (§3.1).
	CostProp  string
	PhysProps []string
	ArgProps  []string

	// Enforcer deduction (§2.5).
	EnforcerOperators  []string            // operators with a Null implementation
	EnforcedProps      map[string][]string // operator -> enforced properties
	EnforcerAlgorithms []string            // their non-Null algorithms

	// Rule rewriting and merging (§3.3).
	RewrittenTRules []string          // T-rules with enforcer-operator nodes deleted
	DroppedTRules   map[string]string // T-rule -> reason
	DroppedIRules   map[string]string // I-rule -> reason
	EnforcerIRules  []string          // I-rules that became Volcano enforcers
	Aliases         map[string]string // introduced operator -> canonical operator

	// Rule-count arithmetic: Prairie in, Volcano out.
	TRulesIn, IRulesIn               int
	TransOut, ImplsOut, EnforcersOut int
}

func newReport(rs *core.RuleSet) *Report {
	return &Report{
		Algebra:       rs.Algebra.Name,
		EnforcedProps: map[string][]string{},
		DroppedTRules: map[string]string{},
		DroppedIRules: map[string]string{},
		Aliases:       map[string]string{},
	}
}

func (rep *Report) setClassification(ps *core.PropertySet, cost core.PropID, phys []core.PropID) {
	rep.CostProp = ps.At(cost).Name
	isPhys := map[core.PropID]bool{}
	for _, id := range phys {
		isPhys[id] = true
		rep.PhysProps = append(rep.PhysProps, ps.At(id).Name)
	}
	for i := 0; i < ps.Len(); i++ {
		id := core.PropID(i)
		if id != cost && !isPhys[id] {
			rep.ArgProps = append(rep.ArgProps, ps.At(id).Name)
		}
	}
	sort.Strings(rep.PhysProps)
	sort.Strings(rep.ArgProps)
}

func (rep *Report) addEnforcerOp(op *core.Operation, ps *core.PropertySet, props []core.PropID) {
	rep.EnforcerOperators = append(rep.EnforcerOperators, op.Name)
	for _, id := range props {
		rep.EnforcedProps[op.Name] = append(rep.EnforcedProps[op.Name], ps.At(id).Name)
	}
	sort.Strings(rep.EnforcerOperators)
}

func (rep *Report) addAlias(from, to *core.Operation) {
	rep.Aliases[from.Name] = to.Name
}

func (rep *Report) dropT(name, reason string) { rep.DroppedTRules[name] = reason }
func (rep *Report) dropI(name, reason string) { rep.DroppedIRules[name] = reason }

func (rep *Report) finish(in *core.RuleSet, out *volcano.RuleSet) {
	rep.TRulesIn = len(in.TRules)
	rep.IRulesIn = len(in.IRules)
	rep.TransOut = len(out.Trans)
	rep.ImplsOut = len(out.Impls)
	rep.EnforcersOut = len(out.Enforcers)
	for _, e := range out.Enforcers {
		rep.EnforcerAlgorithms = append(rep.EnforcerAlgorithms, e.Alg.Name)
	}
	sort.Strings(rep.EnforcerAlgorithms)
	sort.Strings(rep.EnforcerIRules)
	sort.Strings(rep.RewrittenTRules)
}

// String renders the report as the prairiec CLI prints it.
func (rep *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P2V translation report — algebra %q\n", rep.Algebra)
	fmt.Fprintf(&b, "\nProperty classification (automatic, §3.1):\n")
	fmt.Fprintf(&b, "  cost:      %s\n", rep.CostProp)
	fmt.Fprintf(&b, "  physical:  %s\n", orNone(rep.PhysProps))
	fmt.Fprintf(&b, "  arguments: %s\n", orNone(rep.ArgProps))
	fmt.Fprintf(&b, "\nEnforcer deduction (§2.5):\n")
	if len(rep.EnforcerOperators) == 0 {
		fmt.Fprintf(&b, "  (no enforcer-operators)\n")
	}
	for _, op := range rep.EnforcerOperators {
		fmt.Fprintf(&b, "  enforcer-operator %s (enforces %s)\n", op, orNone(rep.EnforcedProps[op]))
	}
	if len(rep.EnforcerAlgorithms) > 0 {
		fmt.Fprintf(&b, "  enforcer-algorithms: %s\n", strings.Join(rep.EnforcerAlgorithms, ", "))
	}
	fmt.Fprintf(&b, "\nRule merging (§3.3):\n")
	for _, name := range sortedKeys(rep.Aliases) {
		fmt.Fprintf(&b, "  alias: %s => %s\n", name, rep.Aliases[name])
	}
	for _, name := range sortedKeys(rep.DroppedTRules) {
		fmt.Fprintf(&b, "  dropped T-rule %s: %s\n", name, rep.DroppedTRules[name])
	}
	for _, name := range sortedKeys(rep.DroppedIRules) {
		fmt.Fprintf(&b, "  dropped I-rule %s: %s\n", name, rep.DroppedIRules[name])
	}
	for _, name := range rep.EnforcerIRules {
		fmt.Fprintf(&b, "  I-rule %s became an enforcer\n", name)
	}
	fmt.Fprintf(&b, "\nRule counts: %d T-rules, %d I-rules  =>  %d trans_rules, %d impl_rules, %d enforcers\n",
		rep.TRulesIn, rep.IRulesIn, rep.TransOut, rep.ImplsOut, rep.EnforcersOut)
	return b.String()
}

func orNone(s []string) string {
	if len(s) == 0 {
		return "(none)"
	}
	return strings.Join(s, ", ")
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
