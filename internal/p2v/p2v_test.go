package p2v

import (
	"strings"
	"testing"

	"prairie/internal/core"
	"prairie/internal/volcano"
)

// specWorld builds a compact Prairie rule set exercising every P2V
// feature: an enforcer-operator (SORT) with a Null rule, an
// enforcer-introduction T-rule that merges away (JOIN => JOPR), and
// physical-property assignments in pre-opt sections.
type specWorld struct {
	alg        *core.Algebra
	rs         *core.RuleSet
	ord, nr, c core.PropID
	join, jopr *core.Operation
	sort, ret  *core.Operation
	nl, ms, fs *core.Operation
	nullAlg    *core.Operation
}

func newSpecWorld() *specWorld {
	w := &specWorld{}
	a := core.NewAlgebra("spec")
	w.alg = a
	w.ord = a.Props.Define("tuple_order", core.KindOrder)
	w.nr = a.Props.Define("num_records", core.KindFloat)
	w.c = a.Props.Define("cost", core.KindCost)
	w.ret = a.Operator("RET", 1)
	w.join = a.Operator("JOIN", 2)
	w.jopr = a.Operator("JOPR", 2)
	w.sort = a.Operator("SORT", 1)
	w.fs = a.Algorithm("File_scan", 1)
	w.nl = a.Algorithm("Nested_loops", 2)
	w.ms = a.Algorithm("Merge_sort", 1)
	w.nullAlg = a.Null()

	rs := core.NewRuleSet(a)
	w.rs = rs
	rs.AddT(&core.TRule{
		Name: "join_to_jopr",
		LHS:  core.POp(w.join, "D3", core.PVar(1, "D1"), core.PVar(2, "D2")),
		RHS: core.POp(w.jopr, "D6",
			core.POp(w.sort, "D4", core.PVar(1, "")),
			core.POp(w.sort, "D5", core.PVar(2, ""))),
		PostTest: func(b *core.Binding) { b.D("D6").CopyFrom(b.D("D3")) },
	})
	rs.AddT(&core.TRule{
		Name:     "join_commute",
		LHS:      core.POp(w.join, "D3", core.PVar(1, "D1"), core.PVar(2, "D2")),
		RHS:      core.POp(w.join, "D4", core.PVar(2, ""), core.PVar(1, "")),
		PostTest: func(b *core.Binding) { b.D("D4").CopyFrom(b.D("D3")) },
	})
	rs.AddI(&core.IRule{
		Name: "ret_file_scan",
		LHS:  core.POp(w.ret, "D2", core.PVar(1, "D1")),
		RHS:  core.POp(w.fs, "D3", core.PVar(1, "")),
		PreOpt: func(b *core.Binding) {
			d := b.D("D3")
			d.CopyFrom(b.D("D2"))
			d.Set(w.ord, core.DontCareOrder)
		},
		PostOpt: func(b *core.Binding) {
			b.D("D3").Set(w.c, core.Cost(b.D("D1").Float(w.nr)))
		},
	})
	rs.AddI(&core.IRule{
		Name: "jopr_nested_loops",
		LHS:  core.POp(w.jopr, "D3", core.PVar(1, "D1"), core.PVar(2, "D2")),
		RHS:  core.POp(w.nl, "D5", core.PVar(1, "D4"), core.PVar(2, "")),
		PreOpt: func(b *core.Binding) {
			b.D("D5").CopyFrom(b.D("D3"))
			b.D("D4").CopyFrom(b.D("D1"))
			b.D("D4").Set(w.ord, b.D("D3").Order(w.ord))
		},
		PostOpt: func(b *core.Binding) {
			b.D("D5").Set(w.c, core.Cost(
				b.D("D4").Float(w.c)+b.D("D4").Float(w.nr)*b.D("D2").Float(w.c)))
		},
	})
	rs.AddI(&core.IRule{
		Name: "sort_merge_sort",
		LHS:  core.POp(w.sort, "D2", core.PVar(1, "D1")),
		RHS:  core.POp(w.ms, "D3", core.PVar(1, "")),
		Test: func(b *core.Binding) bool { return !b.D("D2").Order(w.ord).IsDontCare() },
		PreOpt: func(b *core.Binding) {
			b.D("D3").CopyFrom(b.D("D2"))
		},
		PostOpt: func(b *core.Binding) {
			b.D("D3").Set(w.c, core.Cost(b.D("D1").Float(w.c)+b.D("D3").Float(w.nr)))
		},
	})
	rs.AddI(&core.IRule{
		Name: "sort_null",
		LHS:  core.POp(w.sort, "D2", core.PVar(1, "D1")),
		RHS:  core.POp(w.nullAlg, "D4", core.PVar(1, "D3")),
		PreOpt: func(b *core.Binding) {
			b.D("D4").CopyFrom(b.D("D2"))
			b.D("D3").CopyFrom(b.D("D1"))
			b.D("D3").Set(w.ord, b.D("D2").Order(w.ord))
		},
		PostOpt: func(b *core.Binding) {
			b.D("D4").Set(w.c, core.Cost(b.D("D3").Float(w.c)))
		},
	})
	return w
}

func TestTranslateSpecWorld(t *testing.T) {
	w := newSpecWorld()
	vrs, rep, err := Translate(w.rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vrs.Trans) != 1 || vrs.Trans[0].Name != "join_commute" {
		t.Errorf("trans = %v", vrs.Trans)
	}
	if len(vrs.Impls) != 2 {
		t.Errorf("impls = %d", len(vrs.Impls))
	}
	// The JOPR impl rule now targets JOIN.
	for _, r := range vrs.Impls {
		if r.Name == "jopr_nested_loops" && r.Op != w.join {
			t.Errorf("jopr rule targets %v", r.Op)
		}
	}
	if len(vrs.Enforcers) != 1 || vrs.Enforcers[0].Alg != w.ms {
		t.Errorf("enforcers = %v", vrs.Enforcers)
	}
	if got := vrs.Enforcers[0].Props; len(got) != 1 || got[0] != w.ord {
		t.Errorf("enforced props = %v", got)
	}
	if rep.Aliases["JOPR"] != "JOIN" {
		t.Errorf("aliases = %v", rep.Aliases)
	}
	if !vrs.Class.IsPhys(w.ord) {
		t.Error("tuple_order not physical")
	}
	if vrs.Class.Cost != w.c {
		t.Error("cost not classified")
	}
	if !vrs.Class.IsArg(w.nr) {
		t.Error("num_records should be an argument property")
	}
}

func TestTranslateRejectsInvalidRuleSet(t *testing.T) {
	a := core.NewAlgebra("bad")
	a.Props.Define("cost", core.KindCost)
	a.Operator("RET", 1) // no I-rule
	rs := core.NewRuleSet(a)
	if _, _, err := Translate(rs); err == nil {
		t.Error("invalid rule set accepted")
	}
}

func TestTranslateRequiresCost(t *testing.T) {
	a := core.NewAlgebra("nocost")
	a.Operator("RET", 1)
	fs := a.Algorithm("File_scan", 1)
	rs := core.NewRuleSet(a)
	rs.AddI(&core.IRule{
		Name: "r",
		LHS:  core.POp(a.MustOp("RET"), "D2", core.PVar(1, "D1")),
		RHS:  core.POp(fs, "D3", core.PVar(1, "")),
	})
	if _, _, err := Translate(rs); err == nil || !strings.Contains(err.Error(), "COST") {
		t.Errorf("err = %v", err)
	}
}

func TestActionHintsOverrideTracing(t *testing.T) {
	w := newSpecWorld()
	// Replace the nested-loops rule with one whose pre-opt is opaque
	// (e.g. a non-assignment statement) but declares hints, the paper's
	// footnote 3 mechanism.
	for _, r := range w.rs.IRules {
		if r.Name == "jopr_nested_loops" {
			r.Hints = &core.ActionHints{PreWrites: []string{"D5.*", "D4.*", "D4.tuple_order"}}
			r.PreOpt = func(b *core.Binding) {
				// Same effect, but tracing is bypassed by the hints.
				b.D("D5").CopyFrom(b.D("D3"))
				b.D("D4").CopyFrom(b.D("D1"))
				b.D("D4").Set(w.ord, b.D("D3").Order(w.ord))
			}
		}
	}
	vrs, _, err := Translate(w.rs)
	if err != nil {
		t.Fatal(err)
	}
	if !vrs.Class.IsPhys(w.ord) {
		t.Error("hinted physical property lost")
	}
}

func TestWriteSetHelpers(t *testing.T) {
	ws := newWriteSet()
	ws.addProp("D4", 3)
	ws.addProp("D4", 1)
	ws.addProp("D5", 2)
	if got := ws.propsOf("D4"); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("propsOf = %v", got)
	}
	if got := ws.propsOf("DX"); len(got) != 0 {
		t.Errorf("propsOf missing = %v", got)
	}
}

func TestActionWritesFromHints(t *testing.T) {
	ps := core.NewPropertySet()
	ord := ps.Define("tuple_order", core.KindOrder)
	ws := actionWrites(ps, nil, []string{"D4.tuple_order", "D5.*", "bogus", "D6.missing"}, nil)
	if got := ws.propsOf("D4"); len(got) != 1 || got[0] != ord {
		t.Errorf("hinted props = %v", got)
	}
	if !ws.copies["D5"] {
		t.Error("copy hint lost")
	}
	if len(ws.propsOf("D6")) != 0 {
		t.Error("unknown property accepted")
	}
}

func TestActionWritesTracing(t *testing.T) {
	ps := core.NewPropertySet()
	ord := ps.Define("tuple_order", core.KindOrder)
	nr := ps.Define("num_records", core.KindFloat)
	act := func(b *core.Binding) {
		b.D("D3").CopyFrom(b.D("D1"))
		b.D("D3").Set(ord, core.DontCareOrder)
		b.D("D9").SetFloat(nr, b.D("D1").Float(nr)) // unknown name: ignored
	}
	ws := actionWrites(ps, act, nil, []string{"D1", "D3"})
	if got := ws.propsOf("D3"); len(got) != 1 || got[0] != ord {
		t.Errorf("traced props = %v", got)
	}
	if !ws.copies["D3"] {
		t.Error("copy not traced")
	}
	if len(ws.propsOf("D9")) != 0 {
		t.Error("write to unbound descriptor traced")
	}
	if len(ws.propsOf("D1")) != 0 {
		t.Error("reads misrecorded as writes")
	}
}

func TestDeleteEnforcerNodes(t *testing.T) {
	w := newSpecWorld()
	isEnf := func(op *core.Operation) bool { return op == w.sort }
	// JOPR(SORT(?1):D4, SORT(?2):D5):D6 -> JOPR(?1:D4, ?2:D5):D6
	p := core.POp(w.jopr, "D6",
		core.POp(w.sort, "D4", core.PVar(1, "")),
		core.POp(w.sort, "D5", core.PVar(2, "")))
	got := deleteEnforcerNodes(p, isEnf)
	if got.String() != "JOPR(?1:D4, ?2:D5):D6" {
		t.Errorf("rewritten = %s", got)
	}
	// SORT at the root with a var child reduces to the variable.
	root := core.POp(w.sort, "D2", core.PVar(1, "D1"))
	if got := deleteEnforcerNodes(root, isEnf); !got.IsVar() {
		t.Errorf("root SORT not deleted: %s", got)
	}
	// A pattern without enforcer nodes is returned unchanged (same node).
	q := core.POp(w.join, "D3", core.PVar(1, ""), core.PVar(2, ""))
	if deleteEnforcerNodes(q, isEnf) != q {
		t.Error("untouched pattern was copied")
	}
	// The child's existing descriptor name wins over the deleted node's.
	named := core.POp(w.sort, "D4", core.PVar(1, "D1"))
	if got := deleteEnforcerNodes(named, isEnf); got.Desc != "D1" {
		t.Errorf("descriptor = %s", got.Desc)
	}
}

func TestShapeEqualModuloRoot(t *testing.T) {
	w := newSpecWorld()
	a := core.POp(w.join, "DA", core.PVar(1, ""), core.PVar(2, ""))
	b := core.POp(w.jopr, "DB", core.PVar(1, ""), core.PVar(2, ""))
	same, differ := shapeEqualModuloRoot(a, b)
	if !same || !differ {
		t.Errorf("JOIN vs JOPR: same=%v differ=%v", same, differ)
	}
	c := core.POp(w.join, "DC", core.PVar(2, ""), core.PVar(1, ""))
	if same, _ := shapeEqualModuloRoot(a, c); same {
		t.Error("swapped variables considered same shape")
	}
	same, differ = shapeEqualModuloRoot(a, a)
	if !same || differ {
		t.Error("identical patterns misjudged")
	}
	deep := core.POp(w.join, "DD",
		core.POp(w.join, "DE", core.PVar(1, ""), core.PVar(2, "")),
		core.PVar(3, ""))
	if same, _ := shapeEqualModuloRoot(a, deep); same {
		t.Error("different arity shapes considered same")
	}
}

func TestResolveAliasChains(t *testing.T) {
	w := newSpecWorld()
	x := w.alg.Operator("X", 2)
	alias := map[*core.Operation]*core.Operation{
		w.jopr: x,
		x:      w.join,
	}
	resolveAliases(alias)
	if alias[w.jopr] != w.join || alias[x] != w.join {
		t.Errorf("alias resolution failed: %v", alias)
	}
}

func TestSubstAliases(t *testing.T) {
	w := newSpecWorld()
	alias := map[*core.Operation]*core.Operation{w.jopr: w.join}
	p := core.POp(w.jopr, "D6",
		core.POp(w.jopr, "D4", core.PVar(1, ""), core.PVar(2, "")),
		core.PVar(3, ""))
	got := substAliases(p, alias)
	for _, op := range got.Ops() {
		if op == w.jopr {
			t.Error("alias not substituted")
		}
	}
	// Unchanged pattern returns the same node.
	q := core.POp(w.join, "D3", core.PVar(1, ""), core.PVar(2, ""))
	if substAliases(q, alias) != q {
		t.Error("clean pattern copied")
	}
	if substAliases(q, nil) != q {
		t.Error("empty alias map copied")
	}
}

func TestPrepareQueryNilTree(t *testing.T) {
	rep := &Report{}
	if _, _, err := rep.PrepareQuery(nil, nil); err == nil {
		t.Error("nil tree accepted")
	}
}

func TestReportString(t *testing.T) {
	w := newSpecWorld()
	_, rep, err := Translate(w.rs)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{
		"cost:      cost",
		"physical:  tuple_order",
		"enforcer-operator SORT",
		"alias: JOPR => JOIN",
		"I-rule sort_merge_sort became an enforcer",
		"2 T-rules, 4 I-rules  =>  1 trans_rules, 2 impl_rules, 1 enforcers",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportNoEnforcers(t *testing.T) {
	a := core.NewAlgebra("plain")
	a.Props.Define("cost", core.KindCost)
	ret := a.Operator("RET", 1)
	fs := a.Algorithm("File_scan", 1)
	rs := core.NewRuleSet(a)
	rs.AddI(&core.IRule{
		Name:    "fs",
		LHS:     core.POp(ret, "D2", core.PVar(1, "D1")),
		RHS:     core.POp(fs, "D3", core.PVar(1, "")),
		PreOpt:  func(b *core.Binding) { b.D("D3").CopyFrom(b.D("D2")) },
		PostOpt: func(b *core.Binding) { b.D("D3").Set(core.PropID(0), core.Cost(1)) },
	})
	_, rep, err := Translate(rs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "no enforcer-operators") {
		t.Error("report should note absence of enforcers")
	}
	if len(rep.PhysProps) != 0 {
		t.Errorf("phys props = %v", rep.PhysProps)
	}
}

// TestGeneratedHooksOptimize drives the generated Volcano rule set
// through an actual optimization, exercising the Cond/Pre/Post hooks and
// the enforcer end to end within this package.
func TestGeneratedHooksOptimize(t *testing.T) {
	w := newSpecWorld()
	vrs, rep, err := Translate(w.rs)
	if err != nil {
		t.Fatal(err)
	}
	leaf := func(name string, card float64) *core.Expr {
		d := core.NewDescriptor(w.alg.Props)
		d.SetFloat(w.nr, card)
		d.Set(w.c, core.Cost(0))
		return core.NewLeaf(name, d)
	}
	retOf := func(l *core.Expr) *core.Expr {
		return core.NewNode(w.ret, l.D.Clone(), l)
	}
	jd := core.NewDescriptor(w.alg.Props)
	jd.SetFloat(w.nr, 8*4)
	join := core.NewNode(w.join, jd, retOf(leaf("R1", 8)), retOf(leaf("R2", 4)))
	// Wrap in SORT: PrepareQuery must strip it into a requirement.
	sd := jd.Clone()
	sd.Set(w.ord, core.OrderBy(core.A("R1", "a")))
	tree := core.NewNode(w.sort, sd, join)

	prepared, req, err := rep.PrepareQuery(tree, nil)
	if err != nil {
		t.Fatal(err)
	}
	if prepared.Op != w.join {
		t.Fatalf("SORT not stripped: %v", prepared)
	}
	if !req.Order(w.ord).Equal(core.OrderBy(core.A("R1", "a"))) {
		t.Fatalf("requirement = %v", req.Order(w.ord))
	}
	opt := volcano.NewOptimizer(vrs)
	plan, err := opt.Optimize(prepared, req)
	if err != nil {
		t.Fatal(err)
	}
	algs := plan.Algorithms()
	found := false
	for _, a := range algs {
		if a == "Merge_sort" {
			found = true
		}
	}
	if !found {
		t.Errorf("enforcer algorithm missing from plan %s", plan)
	}
	if opt.Stats.EnfFired["sort_merge_sort"] == 0 {
		t.Error("generated enforcer never fired")
	}
	// Winner cost: scans (8+4) + nested loops (8*4 inner scans... cost
	// formula c4 + n4*c2) plus the sort; just assert it is positive and
	// the order satisfied.
	if plan.Cost(vrs.Class) <= 0 {
		t.Error("non-positive cost")
	}
	if !plan.D.Order(w.ord).Satisfies(core.OrderBy(core.A("R1", "a"))) {
		t.Errorf("order %v does not satisfy requirement", plan.D.Order(w.ord))
	}
	// A second optimization without requirement skips the enforcer.
	opt2 := volcano.NewOptimizer(vrs)
	plan2, err := opt2.Optimize(prepared.Clone(), core.NewDescriptor(w.alg.Props))
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Cost(vrs.Class) > plan.Cost(vrs.Class) {
		t.Error("unconstrained plan costs more than constrained one")
	}
}

func TestPrepareQueryInteriorEnforcerRejected(t *testing.T) {
	w := newSpecWorld()
	_, rep, err := Translate(w.rs)
	if err != nil {
		t.Fatal(err)
	}
	leafD := core.NewDescriptor(w.alg.Props)
	sorted := core.NewNode(w.sort, leafD.Clone(),
		core.NewNode(w.ret, leafD.Clone(), core.NewLeaf("R1", leafD.Clone())))
	jd := core.NewDescriptor(w.alg.Props)
	tree := core.NewNode(w.join, jd, sorted,
		core.NewNode(w.ret, leafD.Clone(), core.NewLeaf("R2", leafD.Clone())))
	if _, _, err := rep.PrepareQuery(tree, nil); err == nil {
		t.Error("interior enforcer-operator accepted")
	}
}
