package p2v

import (
	"errors"
	"fmt"

	"prairie/internal/core"
	"prairie/internal/volcano"
)

// Translate maps a Prairie rule set into a Volcano rule set, performing
// enforcer deduction, automatic property classification, and rule
// rewriting/merging (Section 3 of the paper). The returned Report
// documents every decision the pre-processor took.
func Translate(rs *core.RuleSet) (*volcano.RuleSet, *Report, error) {
	if errs := rs.Validate(); len(errs) > 0 {
		msgs := make([]error, 0, len(errs))
		msgs = append(msgs, errors.New("p2v: invalid Prairie rule set"))
		msgs = append(msgs, errs...)
		return nil, nil, errors.Join(msgs...)
	}
	rep := newReport(rs)
	ps := rs.Algebra.Props

	// --- Property classification (§3.1). --------------------------------
	costID, phys, preWrites := classify(rs)
	if costID == core.NoProp {
		return nil, nil, errors.New("p2v: no COST-kind property")
	}
	rep.setClassification(ps, costID, phys)

	// --- Enforcer deduction (§2.5, §3.1). --------------------------------
	enfOps := map[*core.Operation][]core.PropID{} // operator -> enforced properties
	for _, r := range rs.IRules {
		if !r.IsNullRule() {
			continue
		}
		// The Null rule's pre-opt copies the operator's controlled
		// properties onto the input stream's descriptor (Figure 7);
		// those are the properties the operator's algorithms enforce.
		ws := preWrites[r]
		var props []core.PropID
		for _, name := range rhsInputDescNames(r.RHS) {
			for _, id := range ws.propsOf(name) {
				if id != costID {
					props = append(props, id)
				}
			}
		}
		enfOps[r.Op()] = props
		rep.addEnforcerOp(r.Op(), ps, props)
	}

	// --- T-rule rewriting: delete enforcer-operator nodes. ---------------
	type rewritten struct {
		rule     *core.TRule
		lhs, rhs *core.PatNode
		changed  bool
	}
	var trules []rewritten
	isEnf := func(op *core.Operation) bool { _, ok := enfOps[op]; return ok }
	for _, r := range rs.TRules {
		lhs := deleteEnforcerNodes(r.LHS, isEnf)
		rhs := deleteEnforcerNodes(r.RHS, isEnf)
		changed := lhs != r.LHS || rhs != r.RHS
		if changed {
			rep.RewrittenTRules = append(rep.RewrittenTRules, r.Name)
		}
		if lhs.IsVar() {
			rep.dropT(r.Name, "left side reduced to a variable after enforcer-operator deletion")
			continue
		}
		trules = append(trules, rewritten{r, lhs, rhs, changed})
	}

	// --- Alias detection: idempotent rules (§3.3). -----------------------
	// Only rules the translation itself rewrote are candidates: a rule
	// whose sides were already structurally identical (e.g. a commute of
	// descriptor content) is a real transformation, not an idempotence.
	alias := map[*core.Operation]*core.Operation{}
	var kept []rewritten
	for _, t := range trules {
		if !t.changed {
			kept = append(kept, t)
			continue
		}
		same, rootsDiffer := shapeEqualModuloRoot(t.lhs, t.rhs)
		if !same {
			kept = append(kept, t)
			continue
		}
		if !rootsDiffer {
			rep.dropT(t.rule.Name, "became a no-op after enforcer-operator deletion")
			continue
		}
		from, to := t.rhs.Op, t.lhs.Op
		if from.Arity != to.Arity {
			kept = append(kept, t)
			continue
		}
		if prev, ok := alias[from]; ok && prev != to {
			return nil, nil, fmt.Errorf("p2v: operator %s aliased to both %s and %s",
				from.Name, prev.Name, to.Name)
		}
		alias[from] = to
		rep.addAlias(from, to)
		rep.dropT(t.rule.Name, fmt.Sprintf("idempotent mapping %s => %s; alias substituted", to.Name, from.Name))
	}
	resolveAliases(alias)

	// --- Emit the Volcano rule set. ---------------------------------------
	out := volcano.NewRuleSet(rs.Algebra)
	out.SetPhys(phys...)

	for _, t := range kept {
		lhs := substAliases(t.lhs, alias)
		rhs := substAliases(t.rhs, alias)
		if lhs != t.lhs || rhs != t.rhs {
			if ok, diff := shapeEqualModuloRoot(lhs, rhs); ok && !diff {
				rep.dropT(t.rule.Name, "became a no-op after alias substitution")
				continue
			}
		}
		rule := t.rule
		out.AddTrans(&volcano.TransRule{
			Name:   rule.Name,
			Origin: rule.Origin,
			LHS:    lhs,
			RHS:    rhs,
			Cond:   func(b *volcano.TBinding) bool { return rule.RunCond(b.Binding) },
			Appl:   func(b *volcano.TBinding) { rule.RunPost(b.Binding) },
		})
	}

	for _, r := range rs.IRules {
		if r.IsNullRule() {
			rep.dropI(r.Name, "Null implementation; operator is an enforcer-operator")
			continue
		}
		if props, ok := enfOps[r.Op()]; ok {
			out.AddEnforcer(makeEnforcer(rs, r, props))
			rep.EnforcerIRules = append(rep.EnforcerIRules, r.Name)
			continue
		}
		out.AddImpl(makeImpl(rs, r, alias))
	}

	rep.finish(rs, out)
	if errs := out.Validate(); len(errs) > 0 {
		msgs := append([]error{errors.New("p2v: generated Volcano rule set invalid")}, errs...)
		return nil, nil, errors.Join(msgs...)
	}
	return out, rep, nil
}

// deleteEnforcerNodes removes enforcer-operator nodes from a pattern,
// splicing each node's single input in its place. When the input is a
// bare variable, the deleted node's descriptor name moves to it so the
// rule's required-property assignments keep a target.
func deleteEnforcerNodes(p *core.PatNode, isEnf func(*core.Operation) bool) *core.PatNode {
	if p.IsVar() {
		return p
	}
	kids := make([]*core.PatNode, len(p.Kids))
	changed := false
	for i, k := range p.Kids {
		kids[i] = deleteEnforcerNodes(k, isEnf)
		changed = changed || kids[i] != k
	}
	if isEnf(p.Op) && p.Op.Arity == 1 {
		child := kids[0]
		if child.IsVar() && child.Desc == "" && p.Desc != "" {
			child = &core.PatNode{Var: child.Var, Desc: p.Desc}
		}
		return child
	}
	if !changed {
		return p
	}
	return &core.PatNode{Op: p.Op, Desc: p.Desc, Kids: kids}
}

// shapeEqualModuloRoot reports whether two patterns are structurally
// identical (same operators and variables, descriptor names ignored)
// except possibly for the root operator, and whether the root operators
// differ.
func shapeEqualModuloRoot(a, b *core.PatNode) (same, rootsDiffer bool) {
	if a.IsVar() || b.IsVar() {
		return a.IsVar() && b.IsVar() && a.Var == b.Var, false
	}
	if len(a.Kids) != len(b.Kids) {
		return false, false
	}
	for i := range a.Kids {
		if !patEqualStrict(a.Kids[i], b.Kids[i]) {
			return false, false
		}
	}
	return true, a.Op != b.Op
}

func patEqualStrict(a, b *core.PatNode) bool {
	if a.IsVar() || b.IsVar() {
		return a.IsVar() && b.IsVar() && a.Var == b.Var
	}
	if a.Op != b.Op || len(a.Kids) != len(b.Kids) {
		return false
	}
	for i := range a.Kids {
		if !patEqualStrict(a.Kids[i], b.Kids[i]) {
			return false
		}
	}
	return true
}

// resolveAliases collapses alias chains (A->B, B->C becomes A->C).
func resolveAliases(alias map[*core.Operation]*core.Operation) {
	for from := range alias {
		to := alias[from]
		for {
			next, ok := alias[to]
			if !ok {
				break
			}
			to = next
		}
		alias[from] = to
	}
}

// substAliases rewrites aliased operators in a pattern.
func substAliases(p *core.PatNode, alias map[*core.Operation]*core.Operation) *core.PatNode {
	if len(alias) == 0 || p.IsVar() {
		return p
	}
	kids := make([]*core.PatNode, len(p.Kids))
	changed := false
	for i, k := range p.Kids {
		kids[i] = substAliases(k, alias)
		changed = changed || kids[i] != k
	}
	op := p.Op
	if to, ok := alias[op]; ok {
		op = to
		changed = true
	}
	if !changed {
		return p
	}
	return &core.PatNode{Op: op, Desc: p.Desc, Kids: kids}
}
