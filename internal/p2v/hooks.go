package p2v

import (
	"prairie/internal/core"
	"prairie/internal/volcano"
)

// irShape caches the positional structure of an I-rule needed to build
// engine hooks: descriptor names of both sides and the mapping from
// right-side input positions to left-side input positions.
type irShape struct {
	lhsRoot string
	rhsRoot string
	lhsKid  []string // descriptor name of LHS input i ("" if none)
	rhsKid  []string // descriptor name, indexed by LHS input position
}

func shapeOf(r *core.IRule) irShape {
	sh := irShape{lhsRoot: r.LHS.Desc, rhsRoot: r.RHS.Desc}
	varToIdx := map[int]int{}
	for i, k := range r.LHS.Kids {
		sh.lhsKid = append(sh.lhsKid, k.Desc)
		varToIdx[k.Var] = i
	}
	sh.rhsKid = make([]string, len(r.LHS.Kids))
	for _, k := range r.RHS.Kids {
		if idx, ok := varToIdx[k.Var]; ok {
			sh.rhsKid[idx] = k.Desc
		}
	}
	return sh
}

// condBinding binds the left side's descriptors for the test stage:
// the operator's descriptor (with required properties merged) and the
// input groups' representative descriptors. The binding is cached on the
// context so the Pre stage reuses the Cond stage's work.
func (sh irShape) condBinding(ps *core.PropertySet, cx *volcano.ImplCtx) *core.Binding {
	if b, ok := cx.Scratch.(*core.Binding); ok {
		return b
	}
	b := core.NewBinding(ps)
	cx.Scratch = b
	b.Bind(sh.lhsRoot, cx.OpDesc)
	for i, name := range sh.lhsKid {
		if name == "" {
			continue
		}
		if i < len(cx.Kids) && cx.Kids[i] != nil {
			b.Bind(name, cx.Kids[i])
		} else {
			// Enforcer context: the input is the same equivalence
			// class; its logical descriptor is the operator's.
			b.Bind(name, cx.OpDesc)
		}
	}
	return b
}

// postBinding binds both sides' descriptors for the post-opt stage: the
// optimized inputs' winner descriptors stand in for the input stream
// descriptors of both sides (their costs are now known, §2.4).
func (sh irShape) postBinding(ps *core.PropertySet, cx *volcano.ImplCtx, algD *core.Descriptor) *core.Binding {
	b := core.NewBinding(ps)
	b.Bind(sh.lhsRoot, cx.OpDesc)
	b.Bind(sh.rhsRoot, algD)
	for i := range sh.lhsKid {
		var in *core.Descriptor
		if i < len(cx.In) {
			in = cx.In[i]
		}
		if in == nil {
			continue
		}
		if sh.lhsKid[i] != "" {
			b.Bind(sh.lhsKid[i], in)
		}
		if sh.rhsKid[i] != "" {
			b.Bind(sh.rhsKid[i], in)
		}
	}
	return b
}

// makeImpl generates a Volcano impl_rule from a Prairie I-rule. The
// generated hooks realize Table 4(b) of the paper: the I-rule's test
// becomes cond_code, its pre-opt statements generate "do_any_good" and
// "get_input_pv", its post-opt statements generate "derive_phy_prop" and
// "cost".
func makeImpl(rs *core.RuleSet, r *core.IRule, alias map[*core.Operation]*core.Operation) *volcano.ImplRule {
	ps := rs.Algebra.Props
	sh := shapeOf(r)
	op := r.Op()
	if to, ok := alias[op]; ok {
		op = to
	}
	return &volcano.ImplRule{
		Name: r.Name,
		Op:   op,
		Alg:  r.Alg(),
		Cond: func(cx *volcano.ImplCtx) bool {
			return r.RunTest(sh.condBinding(ps, cx))
		},
		Pre: func(cx *volcano.ImplCtx) (*core.Descriptor, []*core.Descriptor) {
			b := sh.condBinding(ps, cx)
			if r.PreOpt != nil {
				r.PreOpt(b)
			}
			algD := b.D(sh.rhsRoot)
			inReq := make([]*core.Descriptor, len(sh.rhsKid))
			for i, name := range sh.rhsKid {
				if name != "" && b.Bound(name) {
					inReq[i] = b.D(name)
				}
			}
			return algD, inReq
		},
		Post: func(cx *volcano.ImplCtx, algD *core.Descriptor) {
			if r.PostOpt != nil {
				r.PostOpt(sh.postBinding(ps, cx, algD))
			}
		},
	}
}

// makeEnforcer generates a Volcano enforcer from a Prairie I-rule on an
// enforcer-operator. props are the physical properties the operator's
// Null rule propagates — the properties this enforcer establishes.
func makeEnforcer(rs *core.RuleSet, r *core.IRule, props []core.PropID) *volcano.Enforcer {
	ps := rs.Algebra.Props
	sh := shapeOf(r)
	return &volcano.Enforcer{
		Name:  r.Name,
		Alg:   r.Alg(),
		Props: props,
		Cond: func(cx *volcano.ImplCtx) bool {
			// Applicable only when some enforced property is actually
			// requested, and the I-rule's own test passes (e.g.
			// Merge_sort's "tuple_order != DONT_CARE", Figure 5).
			requested := false
			for _, p := range props {
				if cx.Req.Has(p) && !cx.Req.Get(p).IsDontCare() {
					requested = true
					break
				}
			}
			if !requested {
				return false
			}
			return r.RunTest(sh.condBinding(ps, cx))
		},
		Pre: func(cx *volcano.ImplCtx) (*core.Descriptor, *core.Descriptor) {
			b := sh.condBinding(ps, cx)
			if r.PreOpt != nil {
				r.PreOpt(b)
			}
			algD := b.D(sh.rhsRoot)
			var inReq *core.Descriptor
			if len(sh.rhsKid) == 1 && sh.rhsKid[0] != "" && b.Bound(sh.rhsKid[0]) {
				inReq = b.D(sh.rhsKid[0])
				// Relax the enforced properties: the input may arrive in
				// any state of the property this algorithm establishes.
				for _, p := range props {
					inReq.Set(p, core.DefaultValue(ps.At(p).Kind))
				}
			} else {
				inReq = core.NewDescriptor(ps)
			}
			return algD, inReq
		},
		Post: func(cx *volcano.ImplCtx, algD *core.Descriptor) {
			if r.PostOpt != nil {
				r.PostOpt(sh.postBinding(ps, cx, algD))
			}
		},
	}
}
