package volcano

import (
	"fmt"
	"strings"

	"prairie/internal/core"
)

// PExpr is a physical expression: a node of an access plan produced by
// the search. Its descriptor carries the algorithm's full Prairie
// descriptor including the computed cost.
type PExpr struct {
	Alg  *core.Operation // nil for a stored-file leaf
	File string          // leaf only
	D    *core.Descriptor
	Kids []*PExpr
}

// IsLeaf reports whether the node is a stored file.
func (p *PExpr) IsLeaf() bool { return p.Alg == nil }

// Clone deep-copies the plan, including descriptors; the plan cache
// detaches entries from any memo-owned state on the way in and hands
// each hit its own copy on the way out.
func (p *PExpr) Clone() *PExpr {
	if p == nil {
		return nil
	}
	q := &PExpr{Alg: p.Alg, File: p.File}
	if p.D != nil {
		q.D = p.D.Clone()
	}
	if len(p.Kids) > 0 {
		q.Kids = make([]*PExpr, len(p.Kids))
		for i, k := range p.Kids {
			q.Kids[i] = k.Clone()
		}
	}
	return q
}

// Cost returns the plan's estimated cost under the classification.
func (p *PExpr) Cost(class Classification) float64 {
	if p.D == nil {
		return 0
	}
	return p.D.Float(class.Cost)
}

// ToExpr converts the plan to a core operator tree (an access plan in
// the paper's terms), sharing descriptors.
func (p *PExpr) ToExpr() *core.Expr {
	if p.IsLeaf() {
		return core.NewLeaf(p.File, p.D)
	}
	kids := make([]*core.Expr, len(p.Kids))
	for i, k := range p.Kids {
		kids[i] = k.ToExpr()
	}
	return core.NewNode(p.Alg, p.D, kids...)
}

// PlanFromExpr rebuilds a PExpr from a core operator tree — the
// inverse of ToExpr, sharing descriptors the same way. The wire codec
// uses it to rehydrate peer-fetched plans into cacheable entries.
func PlanFromExpr(e *core.Expr) *PExpr {
	if e == nil {
		return nil
	}
	if e.IsLeaf() {
		return &PExpr{File: e.File, D: e.D}
	}
	kids := make([]*PExpr, len(e.Kids))
	for i, k := range e.Kids {
		kids[i] = PlanFromExpr(k)
	}
	return &PExpr{Alg: e.Op, D: e.D, Kids: kids}
}

// String renders the plan in functional notation, e.g.
// "Merge_sort(Nested_loops(File_scan(R1), File_scan(R2)))".
func (p *PExpr) String() string {
	if p.IsLeaf() {
		return p.File
	}
	parts := make([]string, len(p.Kids))
	for i, k := range p.Kids {
		parts[i] = k.String()
	}
	return p.Alg.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Format renders an indented outline with per-node descriptors.
func (p *PExpr) Format() string { return p.ToExpr().Format() }

// Algorithms returns the distinct algorithm names used by the plan.
func (p *PExpr) Algorithms() []string {
	seen := map[string]bool{}
	var out []string
	var walk func(*PExpr)
	walk = func(n *PExpr) {
		if !n.IsLeaf() && !seen[n.Alg.Name] {
			seen[n.Alg.Name] = true
			out = append(out, n.Alg.Name)
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(p)
	return out
}

// Size returns the number of plan nodes.
func (p *PExpr) Size() int {
	n := 1
	for _, k := range p.Kids {
		n += k.Size()
	}
	return n
}

// Explain renders the plan as an indented tree with each node's
// estimated cost under the classification — the per-node view a rule
// writer debugs cost formulas with.
func (p *PExpr) Explain(class Classification) string {
	var b strings.Builder
	p.explain(&b, class, 0)
	return b.String()
}

func (p *PExpr) explain(b *strings.Builder, class Classification, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	if p.IsLeaf() {
		fmt.Fprintf(b, "%s (stored file)\n", p.File)
		return
	}
	fmt.Fprintf(b, "%s  cost=%.1f", p.Alg.Name, p.Cost(class))
	if p.D != nil {
		for _, id := range class.Phys {
			if p.D.Has(id) && !p.D.Get(id).IsDontCare() {
				fmt.Fprintf(b, "  %s=%s", p.D.Props().At(id).Name, p.D.Get(id))
			}
		}
	}
	b.WriteByte('\n')
	for _, k := range p.Kids {
		k.explain(b, class, depth+1)
	}
}
