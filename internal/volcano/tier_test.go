package volcano

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"prairie/internal/core"
)

// optTiered runs one optimization with the given cache, router, and
// tier on a fresh optimizer.
func optTiered(t *testing.T, w *testWorld, tree *core.Expr, pc *PlanCache, rt *Router, tier TierMode) (*PExpr, *Stats) {
	t.Helper()
	o := NewOptimizer(w.rs)
	o.Opts.Cache = pc
	o.Opts.Router = rt
	o.Opts.Tier = tier
	plan, err := o.Optimize(tree.Clone(), nil)
	if err != nil {
		t.Fatalf("optimize (tier %s): %v", tier, err)
	}
	return plan, o.Stats
}

// TestTierNeutral: with the tier left at the default (TierFull), an
// attached-but-unused router must leave plans and rendered stats
// byte-identical to a build without tiering — cacheless and cached,
// cold and warm. This is the `make tier-guard` functional half.
func TestTierNeutral(t *testing.T) {
	w := newTestWorld()
	q := w.chain(8, 4, 2, 6)

	// Cacheless.
	pOff, sOff := optTiered(t, w, q, nil, nil, TierFull)
	pDis, sDis := optTiered(t, w, q, nil, NewRouter(RouterConfig{}), TierFull)
	if pOff.Format() != pDis.Format() {
		t.Error("attached router changed the cacheless plan")
	}
	if sOff.String() != sDis.String() {
		t.Errorf("attached router changed cacheless rendered stats:\n%s\nvs\n%s", sOff, sDis)
	}
	if strings.Contains(sDis.String(), "tier:") {
		t.Error("full-tier stats render a tier line")
	}

	// Cached: cold then warm, each compared byte-for-byte.
	pcOff, pcDis := NewPlanCache(64), NewPlanCache(64)
	rt := NewRouter(RouterConfig{})
	for _, pass := range []string{"cold", "warm"} {
		pO, sO := optTiered(t, w, q, pcOff, nil, TierFull)
		pD, sD := optTiered(t, w, q, pcDis, rt, TierFull)
		if pO.Format() != pD.Format() {
			t.Errorf("%s cached: attached router changed the plan", pass)
		}
		if sO.String() != sD.String() {
			t.Errorf("%s cached: attached router changed rendered stats:\n%s\nvs\n%s", pass, sO, sD)
		}
	}
	if snap := rt.Snapshot(); snap.RoutedGreedy+snap.RoutedRefine+snap.Refined != 0 {
		t.Errorf("full-tier runs consulted the router: %+v", snap)
	}
}

// TestGreedyTierCaches: a greedy-tier miss publishes a greedy entry;
// repeats hit it; a full-tier request treats it as a miss (AcquireIf
// predicate), runs the real search, and upgrades the entry in place, so
// later greedy requests are served the strictly-better full plan.
func TestGreedyTierCaches(t *testing.T) {
	w := newTestWorld()
	q := w.chain(8, 4, 2, 6, 3)
	pc := NewPlanCache(64)

	_, s1 := optTiered(t, w, q, pc, nil, TierGreedy)
	if s1.CacheMisses != 1 || s1.CacheHits != 0 {
		t.Fatalf("greedy cold: hits=%d misses=%d, want 0/1", s1.CacheHits, s1.CacheMisses)
	}
	if s1.Tier != "greedy" || s1.GreedyCost <= 0 {
		t.Fatalf("greedy cold: tier=%q greedy_cost=%g", s1.Tier, s1.GreedyCost)
	}
	if !strings.Contains(s1.String(), "tier: greedy") {
		t.Errorf("greedy stats missing tier line:\n%s", s1)
	}

	gPlan, s2 := optTiered(t, w, q, pc, nil, TierGreedy)
	if s2.CacheHits != 1 || s2.Tier != "greedy" {
		t.Fatalf("greedy warm: hits=%d tier=%q, want 1/greedy", s2.CacheHits, s2.Tier)
	}

	// Full tier must not adopt the greedy entry.
	fPlan, s3 := optTiered(t, w, q, pc, nil, TierFull)
	if s3.CacheHits != 0 || s3.CacheMisses != 1 {
		t.Fatalf("full over greedy entry: hits=%d misses=%d, want 0/1", s3.CacheHits, s3.CacheMisses)
	}
	if fc, gc := fPlan.Cost(w.rs.Class), gPlan.Cost(w.rs.Class); fc > gc {
		t.Errorf("full plan (%g) costs more than greedy (%g)", fc, gc)
	}

	// The full search upgraded the entry: greedy requests now hit it.
	uPlan, s4 := optTiered(t, w, q, pc, nil, TierGreedy)
	if s4.CacheHits != 1 {
		t.Fatalf("greedy after upgrade: hits=%d, want 1", s4.CacheHits)
	}
	if uPlan.Format() != fPlan.Format() {
		t.Error("greedy request after upgrade did not serve the full plan")
	}
	if s4.Tier != "" {
		t.Errorf("full-entry hit reports tier %q, want \"\"", s4.Tier)
	}
}

// TestTierAutoRefinesByteIdentical: an auto miss answers greedy, the
// background refinement hot-swaps the entry, and the refined plan is
// byte-identical to a cold full optimization of the same query — the
// PR's central acceptance criterion.
func TestTierAutoRefinesByteIdentical(t *testing.T) {
	w := newTestWorld()
	q := w.chain(8, 4, 2, 6, 3)
	pc := NewPlanCache(64)
	rt := NewRouter(RouterConfig{})

	first, s1 := optTiered(t, w, q, pc, rt, TierAuto)
	if s1.Tier != "greedy" {
		t.Fatalf("auto miss answered tier %q, want greedy", s1.Tier)
	}
	if first == nil {
		t.Fatal("auto miss returned no plan")
	}
	rt.Wait()

	refined, s2 := optTiered(t, w, q, pc, rt, TierAuto)
	if s2.CacheHits != 1 {
		t.Fatalf("post-refinement: hits=%d, want 1", s2.CacheHits)
	}
	if !s2.Refined {
		t.Fatal("post-refinement hit not marked refined")
	}
	if s2.GreedyCost <= 0 || s2.FullCost <= 0 {
		t.Errorf("refined hit missing cost pair: greedy=%g full=%g", s2.GreedyCost, s2.FullCost)
	}

	cold, _ := optCached(t, w, q, nil)
	if refined.Format() != cold.Format() {
		t.Errorf("refined plan differs from cold full optimization:\n%s\nvs\n%s",
			refined.Format(), cold.Format())
	}
	snap := rt.Snapshot()
	if snap.Refined != 1 {
		t.Errorf("router counted %d refinements, want 1", snap.Refined)
	}
}

// TestTierRefineEpochGuard: an Invalidate racing the hot-swap window
// must win — the refinement is dropped (or lands under an unreachable
// stale key) and never resurrects the pre-invalidation plan.
func TestTierRefineEpochGuard(t *testing.T) {
	w := newTestWorld()
	q := w.chain(8, 4, 2, 6)
	pc := NewPlanCache(64)
	rt := NewRouter(RouterConfig{})
	rt.testHookBeforeSwap = func() { pc.Invalidate() }

	optTiered(t, w, q, pc, rt, TierAuto)
	rt.Wait()

	snap := rt.Snapshot()
	if snap.RefineStale != 1 || snap.Refined != 0 {
		t.Fatalf("refinement not dropped by epoch check: %+v", snap)
	}
	// Nothing stale is servable: the next full-tier run misses.
	_, s := optTiered(t, w, q, pc, rt, TierFull)
	if s.CacheHits != 0 {
		t.Error("stale plan served after invalidation")
	}
}

// TestRouterRouteObserve: the routing policy learns online — unseen
// classes refine, no-benefit classes converge to greedy with periodic
// probes, and a benefit shift re-enables refinement.
func TestRouterRouteObserve(t *testing.T) {
	rt := NewRouter(RouterConfig{MinSamples: 2, ProbeEvery: 3})
	const class = uint64(42)

	if !rt.route(class) {
		t.Fatal("unseen class not routed to refinement")
	}
	rt.observe(class, 100, 100) // no benefit
	rt.observe(class, 100, 100)
	got := []bool{rt.route(class), rt.route(class), rt.route(class)}
	want := []bool{false, false, true} // greedy, greedy, probe
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("routes after convergence = %v, want %v", got, want)
		}
	}
	rt.observe(class, 200, 100) // full search now wins 2x
	if !rt.route(class) {
		t.Error("benefit shift did not re-enable refinement")
	}

	var nilRouter *Router
	if !nilRouter.route(class) {
		t.Error("nil router must always refine")
	}
	nilRouter.observe(class, 1, 2)
	nilRouter.Wait()
	if s := nilRouter.Snapshot(); s != (RouterStats{}) {
		t.Errorf("nil router snapshot = %+v", s)
	}
}

// TestShapeClassCoarse: the router's shape class ignores catalog
// cardinalities (same operator tree pools its stats) but distinguishes
// operator shapes.
func TestShapeClassCoarse(t *testing.T) {
	w := newTestWorld()
	a := w.rs.shapeClass(w.chain(8, 4, 2))
	b := w.rs.shapeClass(w.chain(16, 32, 64))
	if a != b {
		t.Error("same shape over different cardinalities got distinct classes")
	}
	c := w.rs.shapeClass(w.chain(8, 4, 2, 6))
	if a == c {
		t.Error("different arities share a shape class")
	}
}

// TestGreedyNoPlanTyped: when no implementation rule covers the
// original tree under the requirement, GreedyPlan returns the typed
// ErrGreedyNoPlan (never a nil plan with a nil error), and errors.Is
// matches both it and the generic ErrNoPlan.
func TestGreedyNoPlanTyped(t *testing.T) {
	w := newTestWorld()
	// Remove the enforcer and merge join so no order can be produced.
	w.rs.Enforcers = nil
	var impls []*ImplRule
	for _, r := range w.rs.Impls {
		if r.Name != "join_merge_join" {
			impls = append(impls, r)
		}
	}
	w.rs.Impls = impls
	req := w.alg.NewDesc()
	req.Set(w.ord, core.OrderBy(core.A("R1", "a")))
	tree := w.retOf(w.leaf("R1", 8, core.A("R1", "a")))

	plan, err := GreedyPlan(w.rs, tree.Clone(), req)
	if plan != nil {
		t.Fatal("GreedyPlan returned a plan for an unimplementable shape")
	}
	if !errors.Is(err, ErrGreedyNoPlan) {
		t.Errorf("err = %v, want ErrGreedyNoPlan", err)
	}
	if !errors.Is(err, ErrNoPlan) {
		t.Errorf("err = %v does not unwrap to ErrNoPlan", err)
	}

	// The greedy tier surfaces the same typed error, cached or not.
	for _, pc := range []*PlanCache{nil, NewPlanCache(8)} {
		o := NewOptimizer(w.rs)
		o.Opts.Cache = pc
		o.Opts.Tier = TierGreedy
		if _, err := o.Optimize(tree.Clone(), req); !errors.Is(err, ErrGreedyNoPlan) {
			t.Errorf("greedy tier (cache=%v): err = %v, want ErrGreedyNoPlan", pc.Enabled(), err)
		}
	}
}

// TestParseTier maps wire names to modes and rejects garbage.
func TestParseTier(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want TierMode
	}{{"", TierFull}, {"full", TierFull}, {"greedy", TierGreedy}, {"auto", TierAuto}} {
		got, err := ParseTier(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseTier(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseTier("bogus"); err == nil {
		t.Error("ParseTier accepted an unknown tier")
	}
}

// TestTierHotSwapRace drives concurrent auto/greedy/full requests and
// invalidations over a shared cache and router — the hot-swap, the
// AcquireIf upgrade path, and epoch bumps all racing. Run under `make
// cache-guard` (-race); correctness here is "no race, no panic, every
// request answered".
func TestTierHotSwapRace(t *testing.T) {
	w := newTestWorld()
	queries := []*core.Expr{
		w.chain(8, 4, 2),
		w.chain(8, 4, 2, 6),
		w.chain(16, 2, 8, 4),
	}
	pc := NewPlanCache(64)
	rt := NewRouter(RouterConfig{})
	const goroutines = 8
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch {
				case g == 0 && i%10 == 9:
					pc.Invalidate()
					continue
				default:
					o := NewOptimizer(w.rs)
					o.Opts.Cache = pc
					o.Opts.Router = rt
					o.Opts.Tier = []TierMode{TierAuto, TierGreedy, TierFull}[(g+i)%3]
					plan, err := o.Optimize(queries[i%len(queries)].Clone(), nil)
					if err != nil {
						errs <- err
						return
					}
					if plan == nil {
						errs <- errors.New("nil plan without error")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	rt.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// After the dust settles, a fresh full-tier run still byte-matches a
	// cold optimization.
	pc.Invalidate()
	warm, _ := optTiered(t, w, queries[1], pc, rt, TierFull)
	cold, _ := optCached(t, w, queries[1], nil)
	if warm.Format() != cold.Format() {
		t.Error("post-race full plan differs from cold optimization")
	}
}
