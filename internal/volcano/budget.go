package volcano

import (
	"context"
	"errors"
	"time"
)

// Budget bounds the resources one optimization may consume. Unlike the
// hard Options.MaxExprs cap (which fails with ErrSpaceExhausted, the
// paper's virtual-memory wall), exceeding a Budget degrades gracefully:
// the optimizer stops exploring, salvages the best plan it can from the
// already-explored memo, and falls back to a greedy bottom-up plan of
// the original tree if no complete winner exists. The plan is marked in
// Stats (Degraded, DegradeCause, DegradePath) — production optimizers
// bound search effort and always return *a* plan rather than none.
//
// Zero values disable the corresponding dimension; a zero Budget (and a
// background context) leaves the search entirely ungoverned, with
// results identical to an unbudgeted run.
type Budget struct {
	// Timeout is the wall-clock bound for the whole optimization
	// (exploration plus costing); a context deadline, if earlier, wins.
	Timeout time.Duration
	// MaxExprs caps live logical expressions in the memo (soft; compare
	// Options.MaxExprs, the hard error cap).
	MaxExprs int
	// MaxGroups caps live equivalence classes.
	MaxGroups int
	// MaxRuleFirings caps transformation-rule firings (matches whose
	// condition passed).
	MaxRuleFirings int
}

// IsZero reports whether every dimension is disabled.
func (b Budget) IsZero() bool {
	return b.Timeout <= 0 && b.MaxExprs <= 0 && b.MaxGroups <= 0 && b.MaxRuleFirings <= 0
}

// Cause identifies which resource bound interrupted a search.
type Cause int

const (
	// CauseNone: the search completed within its budget.
	CauseNone Cause = iota
	// CauseCancelled: the context was cancelled.
	CauseCancelled
	// CauseDeadline: the wall-clock budget (or context deadline) passed.
	CauseDeadline
	// CauseMaxExprs: the expression budget was reached.
	CauseMaxExprs
	// CauseMaxGroups: the group budget was reached.
	CauseMaxGroups
	// CauseMaxRuleFirings: the rule-firing budget was reached.
	CauseMaxRuleFirings
)

func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseCancelled:
		return "cancelled"
	case CauseDeadline:
		return "deadline"
	case CauseMaxExprs:
		return "max-exprs"
	case CauseMaxGroups:
		return "max-groups"
	case CauseMaxRuleFirings:
		return "max-rule-firings"
	}
	return "unknown"
}

// How a degraded plan was produced (Stats.DegradePath).
const (
	// DegradePathMemo: a complete winner was salvaged from the
	// partially-explored memo.
	DegradePathMemo = "memo-best"
	// DegradePathBottomUp: no complete winner existed; the plan is the
	// greedy bottom-up baseline over the original tree.
	DegradePathBottomUp = "bottom-up"
)

// budgetState is the per-run resource accounting of one OptimizeContext
// call. The counter caps are checked on every checkpoint (three integer
// compares); the clock and the context — the expensive checks — only on
// every 64th.
type budgetState struct {
	ctx      context.Context
	budget   Budget
	deadline time.Time
	timed    bool
	// active gates all checkpoints: false for unbudgeted background
	// runs, so the hot loops pay a single branch.
	active bool
	// salvage marks degraded-mode costing: the soft deadline no longer
	// applies (the salvage pass is allowed to finish), only hard
	// cancellation interrupts.
	salvage bool
	ticks   int
	fired   int
	cause   Cause
}

// beginRun initializes budget accounting for one optimization and
// performs one immediate clock/context check, so a context that is
// already cancelled (or a deadline already passed) is seen even by
// searches too small to reach a periodic checkpoint.
func (o *Optimizer) beginRun(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	b := o.Opts.Budget
	o.run = budgetState{ctx: ctx, budget: b}
	r := &o.run
	if b.Timeout > 0 {
		r.deadline = time.Now().Add(b.Timeout)
		r.timed = true
	}
	if d, ok := ctx.Deadline(); ok && (!r.timed || d.Before(r.deadline)) {
		r.deadline = d
		r.timed = true
	}
	r.active = r.timed || ctx.Done() != nil || !b.IsZero()
	if r.active {
		o.overTime()
	}
}

// overBudget is the exploration checkpoint. It reports whether the run
// is out of budget, latching the first cause.
func (o *Optimizer) overBudget() bool {
	r := &o.run
	if !r.active {
		return false
	}
	if r.cause != CauseNone {
		return true
	}
	b := r.budget
	switch {
	case b.MaxExprs > 0 && o.Memo.NumExprs() >= b.MaxExprs:
		r.cause = CauseMaxExprs
	case b.MaxGroups > 0 && o.Memo.NumGroups() >= b.MaxGroups:
		r.cause = CauseMaxGroups
	case b.MaxRuleFirings > 0 && r.fired >= b.MaxRuleFirings:
		r.cause = CauseMaxRuleFirings
	}
	if r.cause != CauseNone {
		return true
	}
	r.ticks++
	if r.ticks&63 != 0 {
		return false
	}
	return o.overTime()
}

// overBudgetCosting is the costing-phase checkpoint. Only time and
// cancellation apply — the counter caps are exploration resources — and
// in salvage mode only cancellation does.
func (o *Optimizer) overBudgetCosting() bool {
	r := &o.run
	if !r.active {
		return false
	}
	if r.salvage {
		if r.ctx.Done() == nil {
			return false
		}
		r.ticks++
		if r.ticks&63 != 0 {
			return false
		}
		select {
		case <-r.ctx.Done():
			return true
		default:
			return false
		}
	}
	if r.cause != CauseNone {
		return true
	}
	r.ticks++
	if r.ticks&63 != 0 {
		return false
	}
	return o.overTime()
}

// overTime runs the expensive checks: context cancellation, then the
// wall clock.
func (o *Optimizer) overTime() bool {
	r := &o.run
	if r.cause != CauseNone {
		return true
	}
	select {
	case <-r.ctx.Done():
		if errors.Is(r.ctx.Err(), context.DeadlineExceeded) {
			r.cause = CauseDeadline
		} else {
			r.cause = CauseCancelled
		}
		return true
	default:
	}
	if r.timed && !time.Now().Before(r.deadline) {
		r.cause = CauseDeadline
		return true
	}
	return false
}
