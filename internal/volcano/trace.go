package volcano

import (
	"fmt"

	"prairie/internal/core"
)

// EventKind classifies optimizer trace events.
type EventKind uint8

// Trace event kinds.
const (
	// EventTransFired: a transformation rule's condition passed and its
	// result was integrated into the memo.
	EventTransFired EventKind = iota
	// EventImplCosted: an implementation alternative was fully costed.
	EventImplCosted
	// EventImplRejected: an alternative failed its condition, produced
	// an infeasible input, or did not satisfy the required properties.
	EventImplRejected
	// EventEnforcerApplied: an enforcer produced a required property.
	EventEnforcerApplied
	// EventWinner: a (group, property vector) optimization completed.
	EventWinner
)

func (k EventKind) String() string {
	switch k {
	case EventTransFired:
		return "trans"
	case EventImplCosted:
		return "costed"
	case EventImplRejected:
		return "rejected"
	case EventEnforcerApplied:
		return "enforcer"
	case EventWinner:
		return "winner"
	default:
		return "?"
	}
}

// Event is one optimizer trace record. Rule debugging is one of
// Prairie's stated goals ("easy-to-understand and easy-to-debug"); the
// trace shows exactly which rules fired where and which alternatives
// were costed or rejected.
type Event struct {
	Kind  EventKind
	Rule  string
	Group GroupID
	// Detail describes the subject: the matched expression, the plan
	// fragment, or the rejection reason.
	Detail string
	Cost   float64
}

// String renders the event as optshell's -trace mode prints it.
func (e Event) String() string {
	s := fmt.Sprintf("[%s] group %d", e.Kind, e.Group)
	if e.Rule != "" {
		s += " " + e.Rule
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	if e.Kind == EventImplCosted || e.Kind == EventEnforcerApplied || e.Kind == EventWinner {
		s += fmt.Sprintf(" (cost %.1f)", e.Cost)
	}
	return s
}

// emit sends an event to the optimizer's tracer, if any.
func (o *Optimizer) emit(kind EventKind, rule string, g GroupID, detail string, cost float64) {
	if o.OnEvent == nil {
		return
	}
	o.OnEvent(Event{Kind: kind, Rule: rule, Group: g, Detail: detail, Cost: cost})
}

// reqString renders a required property vector compactly.
func reqString(req *core.Descriptor, phys []core.PropID) string {
	s := ""
	for _, p := range phys {
		if !req.Has(p) {
			continue
		}
		v := req.Get(p)
		if v.IsDontCare() {
			continue
		}
		if s != "" {
			s += ","
		}
		s += req.Props().At(p).Name + "=" + v.String()
	}
	if s == "" {
		return "(none)"
	}
	return s
}
