package volcano

import (
	"fmt"
	"strings"

	"prairie/internal/core"
)

// GroupID identifies an equivalence class in the memo. IDs are stable
// but may alias after group merging; Memo.Find canonicalizes.
type GroupID int

// LExpr is a logical expression in the memo: an operator applied to
// input groups, carrying its full Prairie descriptor. Identity (for
// duplicate elimination) is the operator, the argument-property
// projection of the descriptor, and the canonical input group ids; leaves
// are identified by file name.
type LExpr struct {
	Op   *core.Operation // nil for a stored-file leaf
	File string          // leaf only
	D    *core.Descriptor
	Kids []GroupID
	// group is the canonical group at insertion time; Memo.Find(group)
	// stays correct across merges.
	group GroupID
	// seq is the expression's insertion stamp; the worklist explorer
	// enumerates only rule bindings that involve at least one expression
	// newer than its last visit. (Merges are handled by resetting the
	// affected parents' horizons, not by restamping.)
	seq uint64
	// selfHash caches the kid-independent part of the duplicate-
	// detection key (operator + argument-property projection, or leaf
	// name); descriptors never change after interning, so Rehash reuses
	// it instead of re-hashing the descriptor.
	selfHash uint64
	// dead marks an expression dropped by Rehash as a duplicate of one
	// in the same (merged) group; the explorer skips dead expressions.
	dead bool
	// queued marks the expression as pending in the explorer's worklist
	// (owned by the explorer; meaningless outside exploration).
	queued bool
	// ruleSince records, per transformation rule matching this root
	// operator (indexed by position in RuleSet.transFor(Op)), the
	// insertion-stamp horizon up to which bindings have been enumerated:
	// 0 = never applied; for shallow rules any non-zero value means done
	// (owned by the worklist explorer).
	ruleSince []uint64
	// via is the name of the transformation rule whose firing inserted
	// this expression, or "" for the initial query tree — the provenance
	// optshell's :explain renders.
	via string
}

// IsLeaf reports whether the expression is a stored-file leaf.
func (e *LExpr) IsLeaf() bool { return e.Op == nil }

// String renders the expression with group references, e.g. "JOIN(3, 4)".
func (e *LExpr) String() string {
	if e.IsLeaf() {
		return e.File
	}
	parts := make([]string, len(e.Kids))
	for i, k := range e.Kids {
		parts[i] = fmt.Sprintf("%d", k)
	}
	return e.Op.Name + "(" + strings.Join(parts, ", ") + ")"
}

// winnerEntry memoizes the best plan found for one required
// physical-property vector.
type winnerEntry struct {
	req        *core.Descriptor
	plan       *PExpr // nil: no feasible plan
	cost       float64
	inProgress bool
}

// Group is an equivalence class: a set of logically equivalent
// expressions plus the memoized winners per physical-property vector.
type Group struct {
	ID    GroupID
	Exprs []*LExpr
	// version increments whenever the group's expression set changes
	// (insertion, merge, rehash); the pass-based explorer uses it to
	// skip re-matching deep patterns against unchanged inputs.
	version uint64
	// maxSeq is the newest insertion stamp among the group's
	// expressions; the worklist explorer uses it to decide whether a
	// deep rule can possibly find a new binding.
	maxSeq uint64
	// rep is the representative descriptor: the first inserted
	// expression's. Logical information (cardinality, attributes) is by
	// construction identical across a group's members.
	rep     *core.Descriptor
	winners map[uint64][]*winnerEntry
}

// Rep returns the group's representative descriptor.
func (g *Group) Rep() *core.Descriptor { return g.rep }

// memoHooks observes memo growth during exploration: the worklist
// explorer installs one to learn which expressions and groups changed
// without rescanning the memo.
type memoHooks interface {
	// exprAdded fires when a genuinely new expression enters a group
	// (insertion; not Rehash re-interning).
	exprAdded(e *LExpr)
	// groupsMerged fires after two canonical groups merge; winner is the
	// surviving canonical id.
	groupsMerged(winner, loser GroupID)
}

// Memo is the shared search-space store: groups, expressions, and the
// duplicate-detection index. It implements group merging with union-find
// so that rediscovered equivalences collapse equivalence classes, which
// keeps the Figure 14 group counts honest.
type Memo struct {
	rs     *RuleSet
	groups []*Group
	parent []GroupID // union-find
	index  map[uint64][]*LExpr
	// dirty is set when a merge may have invalidated index keys (keys
	// embed canonical kid ids); Rehash rebuilds.
	dirty  bool
	merges int
	// exprCount tracks live expressions for the search-space cap.
	exprCount int
	// numGroups tracks live (canonical) equivalence classes so NumGroups
	// is O(1) instead of scanning the union-find on every Optimize.
	numGroups int
	// seq is the monotone insertion-stamp counter (see LExpr.seq).
	seq   uint64
	hooks memoHooks
	// curRule names the transformation rule currently firing (set by
	// applyTrans around buildRHS); insertions stamp it onto new
	// expressions as provenance. "" outside rule application.
	curRule string
}

// NewMemo returns an empty memo for the rule set.
func NewMemo(rs *RuleSet) *Memo {
	return &Memo{rs: rs, index: make(map[uint64][]*LExpr)}
}

// Find returns the canonical group id.
func (m *Memo) Find(g GroupID) GroupID {
	for m.parent[g] != g {
		m.parent[g] = m.parent[m.parent[g]] // path halving
		g = m.parent[g]
	}
	return g
}

// Group returns the canonical group for id.
func (m *Memo) Group(id GroupID) *Group { return m.groups[m.Find(id)] }

// NumGroups returns the number of live (canonical) equivalence classes —
// the quantity plotted in Figure 14 of the paper.
func (m *Memo) NumGroups() int { return m.numGroups }

// NumExprs returns the number of live logical expressions.
func (m *Memo) NumExprs() int { return m.exprCount }

// Merges returns how many group merges occurred.
func (m *Memo) Merges() int { return m.merges }

// Groups iterates the canonical groups in id order.
func (m *Memo) Groups() []*Group {
	var out []*Group
	for i := range m.groups {
		if m.Find(GroupID(i)) == GroupID(i) {
			out = append(out, m.groups[i])
		}
	}
	return out
}

func (m *Memo) newGroup(rep *core.Descriptor) *Group {
	id := GroupID(len(m.groups))
	g := &Group{ID: id, rep: rep, winners: make(map[uint64][]*winnerEntry)}
	m.groups = append(m.groups, g)
	m.parent = append(m.parent, id)
	m.numGroups++
	return g
}

// stamp assigns e the next insertion sequence number and lifts its
// group's maxSeq.
func (m *Memo) stamp(e *LExpr, g *Group) {
	m.seq++
	e.seq = m.seq
	if m.seq > g.maxSeq {
		g.maxSeq = m.seq
	}
}

// idProps returns the properties that identify an expression of op in
// duplicate detection; it delegates to the rule set so the plan-cache
// fingerprint (see fingerprint.go) digests exactly the same projection.
func (m *Memo) idProps(op *core.Operation) []core.PropID {
	return m.rs.idProps(op)
}

// selfHash computes the kid-independent part of an expression's
// duplicate-detection key.
func (m *Memo) selfHash(op *core.Operation, file string, d *core.Descriptor) uint64 {
	if op == nil {
		return core.HashCombine(0x1eaf, hashLeafName(file))
	}
	h := core.HashCombine(0x09, uint64(op.Index()))
	return core.HashCombine(h, d.HashOn(m.idProps(op)))
}

// exprHash combines a self hash with canonical kid ids into the full
// duplicate-detection key.
func (m *Memo) exprHash(self uint64, kids []GroupID) uint64 {
	h := self
	for _, k := range kids {
		h = core.HashCombine(h, uint64(m.Find(k)))
	}
	return h
}

func hashLeafName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (m *Memo) exprEqual(e *LExpr, op *core.Operation, file string, d *core.Descriptor, kids []GroupID) bool {
	if e.Op != op {
		return false
	}
	if op == nil {
		return e.File == file
	}
	if len(e.Kids) != len(kids) {
		return false
	}
	for i := range kids {
		if m.Find(e.Kids[i]) != m.Find(kids[i]) {
			return false
		}
	}
	return e.D.EqualOn(d, m.idProps(op))
}

// lookup returns an existing expression with the given full hash
// identical to the described one.
func (m *Memo) lookup(h uint64, op *core.Operation, file string, d *core.Descriptor, kids []GroupID) *LExpr {
	for _, e := range m.index[h] {
		if m.exprEqual(e, op, file, d, kids) {
			return e
		}
	}
	return nil
}

// InsertLeaf interns a stored-file leaf and returns its group.
func (m *Memo) InsertLeaf(file string, d *core.Descriptor) GroupID {
	self := m.selfHash(nil, file, nil)
	h := m.exprHash(self, nil)
	if e := m.lookup(h, nil, file, nil, nil); e != nil {
		return m.Find(e.group)
	}
	g := m.newGroup(d)
	e := &LExpr{File: file, D: d, group: g.ID, selfHash: self, via: m.curRule}
	g.Exprs = append(g.Exprs, e)
	m.stamp(e, g)
	m.exprCount++
	m.index[h] = append(m.index[h], e)
	if m.hooks != nil {
		m.hooks.exprAdded(e)
	}
	return g.ID
}

// InsertExpr interns an operator expression. target is the group the
// expression is asserted to belong to (a transformation inserts its
// result into the matched expression's group), or -1 to create or reuse a
// group as needed. If the expression already exists in a different group
// than target, the two groups are merged — they have been proven
// equivalent. InsertExpr reports the expression's canonical group and
// whether the memo changed.
func (m *Memo) InsertExpr(op *core.Operation, d *core.Descriptor, kids []GroupID, target GroupID) (GroupID, bool) {
	canonKids := make([]GroupID, len(kids))
	for i, k := range kids {
		canonKids[i] = m.Find(k)
	}
	self := m.selfHash(op, "", d)
	h := m.exprHash(self, canonKids)
	if e := m.lookup(h, op, "", d, canonKids); e != nil {
		eg := m.Find(e.group)
		if target >= 0 && m.Find(target) != eg {
			m.merge(m.Find(target), eg)
			return m.Find(eg), true
		}
		return eg, false
	}
	var g *Group
	if target >= 0 {
		g = m.groups[m.Find(target)]
	} else {
		g = m.newGroup(d)
	}
	e := &LExpr{Op: op, D: d, Kids: canonKids, group: g.ID, selfHash: self, via: m.curRule}
	g.Exprs = append(g.Exprs, e)
	g.version++
	m.stamp(e, g)
	m.exprCount++
	m.index[h] = append(m.index[h], e)
	if m.hooks != nil {
		m.hooks.exprAdded(e)
	}
	return g.ID, true
}

// merge unions two canonical groups, keeping a's identity.
func (m *Memo) merge(a, b GroupID) {
	if a == b {
		return
	}
	m.merges++
	m.numGroups--
	ga, gb := m.groups[a], m.groups[b]
	// Keep the group with more expressions to move less.
	if len(gb.Exprs) > len(ga.Exprs) {
		ga, gb = gb, ga
		a, b = b, a
	}
	m.parent[b] = a
	for _, e := range gb.Exprs {
		e.group = a
	}
	ga.Exprs = append(ga.Exprs, gb.Exprs...)
	ga.version += gb.version + 1
	if gb.maxSeq > ga.maxSeq {
		ga.maxSeq = gb.maxSeq
	}
	gb.Exprs = nil
	// Winners computed before a merge would be stale; merging only
	// happens during exploration, before any winner exists, but clear
	// defensively.
	for k := range gb.winners {
		delete(gb.winners, k)
	}
	m.dirty = true
	if m.hooks != nil {
		m.hooks.groupsMerged(a, b)
	}
}

// Dirty reports whether a merge has invalidated the duplicate index.
func (m *Memo) Dirty() bool { return m.dirty }

// Rehash rebuilds the duplicate-detection index after merges: expression
// keys embed canonical kid ids, so merging can make previously distinct
// expressions identical. Rehash dedupes them (merging further groups when
// duplicates live in different groups) and loops until stable.
func (m *Memo) Rehash() {
	for m.dirty {
		m.dirty = false
		type item struct {
			e      *LExpr
			target GroupID
		}
		var items []item
		for gi := range m.groups {
			if m.Find(GroupID(gi)) != GroupID(gi) {
				continue
			}
			g := m.groups[gi]
			for _, e := range g.Exprs {
				items = append(items, item{e, GroupID(gi)})
			}
			g.Exprs = nil
		}
		m.index = make(map[uint64][]*LExpr, len(items))
		m.exprCount = 0
		for _, it := range items {
			m.reinsert(it.e, it.target)
		}
	}
}

// reinsert re-interns an expression into (the canonical version of) its
// group during Rehash, merging groups when the expression now duplicates
// one elsewhere. Duplicates are marked dead so the explorer's worklist
// and parent back-pointers skip them.
func (m *Memo) reinsert(e *LExpr, target GroupID) {
	target = m.Find(target)
	for i := range e.Kids {
		e.Kids[i] = m.Find(e.Kids[i])
	}
	h := m.exprHash(e.selfHash, e.Kids)
	if dup := m.lookup(h, e.Op, e.File, e.D, e.Kids); dup != nil {
		e.dead = true
		if dg := m.Find(dup.group); dg != target {
			m.merge(dg, target)
		}
		return
	}
	e.group = target
	g := m.groups[target]
	g.Exprs = append(g.Exprs, e)
	g.version++
	if e.seq > g.maxSeq {
		g.maxSeq = e.seq
	}
	m.exprCount++
	m.index[h] = append(m.index[h], e)
}

// Insert interns a whole operator tree bottom-up and returns its root
// group; this is how the initial query (an initialized operator tree,
// §2.2) enters the memo.
func (m *Memo) Insert(e *core.Expr) GroupID {
	if e.IsLeaf() {
		return m.InsertLeaf(e.File, e.D)
	}
	kids := make([]GroupID, len(e.Kids))
	for i, k := range e.Kids {
		kids[i] = m.Insert(k)
	}
	g, _ := m.InsertExpr(e.Op, e.D, kids, -1)
	return g
}

// Rough per-object heap sizes for MemEstimate: an LExpr with its kid
// slice, horizon slice, and index entry; a Group with its slice headers
// and winner map.
const (
	exprBytesEstimate  = 176
	groupBytesEstimate = 144
)

// MemEstimate returns a rough O(1) estimate of the memo's heap
// footprint in bytes, derived from live expression and group counts.
// It feeds the prairie_memo_bytes_estimate gauge and Stats.MemoBytes —
// the observability analogue of the paper's virtual-memory exhaustion
// wall.
func (m *Memo) MemEstimate() int64 {
	return int64(m.exprCount)*exprBytesEstimate + int64(len(m.groups))*groupBytesEstimate
}

// Dump renders the memo's groups and expressions for debugging.
func (m *Memo) Dump() string {
	var b strings.Builder
	for _, g := range m.Groups() {
		fmt.Fprintf(&b, "group %d (rep %s):\n", g.ID, g.rep)
		for _, e := range g.Exprs {
			fmt.Fprintf(&b, "  %s\n", e)
		}
	}
	return b.String()
}
