package volcano

import (
	"errors"
	"math"
	"strings"
	"testing"

	"prairie/internal/core"
)

// testWorld bundles a small hand-coded Volcano rule set over the paper's
// running-example algebra (RET, JOIN, SORT; Table 1) for engine tests.
type testWorld struct {
	alg                *core.Algebra
	rs                 *RuleSet
	ord, jp, at, nr, c core.PropID
	ret, join          *core.Operation
	cards              map[string]float64
}

// sel assigns every equi-join conjunct selectivity 1/2: a power of two,
// so cardinality products are exact in float64 and independent of
// association order (required for duplicate detection in the memo).
func (w *testWorld) sel(p *core.Pred) float64 {
	return math.Pow(0.5, float64(len(p.Conjuncts())))
}

func newTestWorld() *testWorld {
	w := &testWorld{cards: map[string]float64{}}
	a := core.NewAlgebra("relational")
	w.alg = a
	w.ord = a.Props.Define("tuple_order", core.KindOrder)
	w.jp = a.Props.Define("join_predicate", core.KindPred)
	w.at = a.Props.Define("attributes", core.KindAttrs)
	w.nr = a.Props.Define("num_records", core.KindFloat)
	w.c = a.Props.Define("cost", core.KindCost)
	w.ret = a.Operator("RET", 1)
	w.join = a.Operator("JOIN", 2)
	fileScan := a.Algorithm("File_scan", 1)
	nl := a.Algorithm("Nested_loops", 2)
	mj := a.Algorithm("Merge_join", 2)
	ms := a.Algorithm("Merge_sort", 1)

	rs := NewRuleSet(a)
	w.rs = rs
	rs.SetPhys(w.ord)

	// Join commutativity.
	rs.AddTrans(&TransRule{
		Name: "join_commute",
		LHS:  core.POp(w.join, "D3", core.PVar(1, "D1"), core.PVar(2, "D2")),
		RHS:  core.POp(w.join, "D4", core.PVar(2, ""), core.PVar(1, "")),
		Appl: func(b *TBinding) { b.D("D4").CopyFrom(b.D("D3")) },
	})
	// Join associativity with predicate redistribution; the cond code
	// plays the paper's "is_associative" helper: reject rewrites that
	// introduce cross products.
	rs.AddTrans(&TransRule{
		Name: "join_assoc",
		LHS: core.POp(w.join, "D5",
			core.POp(w.join, "D3", core.PVar(1, "D1"), core.PVar(2, "D2")),
			core.PVar(3, "D4")),
		RHS: core.POp(w.join, "D7",
			core.PVar(1, ""),
			core.POp(w.join, "D6", core.PVar(2, ""), core.PVar(3, ""))),
		Cond: func(b *TBinding) bool {
			a23 := b.D("D2").AttrList(w.at).Union(b.D("D4").AttrList(w.at))
			all := core.And(b.D("D3").Pred(w.jp), b.D("D5").Pred(w.jp))
			inner, outer := all.SplitBy(a23)
			// No cross products: the inner join must connect ?2 and ?3,
			// and the outer must connect ?1 with the inner result.
			if !touches(inner, b.D("D2").AttrList(w.at)) || !touches(inner, b.D("D4").AttrList(w.at)) {
				return false
			}
			if !touches(outer, b.D("D1").AttrList(w.at)) {
				return false
			}
			d6 := b.D("D6")
			d6.Set(w.at, a23)
			d6.Set(w.jp, inner)
			d6.SetFloat(w.nr, b.D("D2").Float(w.nr)*b.D("D4").Float(w.nr)*selOf(inner))
			return true
		},
		Appl: func(b *TBinding) {
			d7 := b.D("D7")
			d7.CopyFrom(b.D("D5"))
			d7.Set(w.jp, outerOf(b, w))
		},
	})

	// RET -> File_scan: full scan, no useful order.
	rs.AddImpl(&ImplRule{
		Name: "ret_file_scan", Op: w.ret, Alg: fileScan,
		Pre: func(cx *ImplCtx) (*core.Descriptor, []*core.Descriptor) {
			d := cx.OpDesc.Clone()
			d.Set(w.ord, core.DontCareOrder)
			return d, []*core.Descriptor{nil}
		},
		Post: func(cx *ImplCtx, d *core.Descriptor) {
			d.Set(w.c, core.Cost(cx.In[0].Float(w.nr)))
		},
	})
	// JOIN -> Nested_loops: output order follows the outer input.
	rs.AddImpl(&ImplRule{
		Name: "join_nested_loops", Op: w.join, Alg: nl,
		Pre: func(cx *ImplCtx) (*core.Descriptor, []*core.Descriptor) {
			d := cx.OpDesc.Clone()
			outerReq := core.NewDescriptor(a.Props)
			outerReq.Set(w.ord, cx.OpDesc.Order(w.ord))
			return d, []*core.Descriptor{outerReq, nil}
		},
		Post: func(cx *ImplCtx, d *core.Descriptor) {
			d.Set(w.ord, cx.In[0].Order(w.ord))
			d.Set(w.c, core.Cost(cx.In[0].Float(w.c)+cx.In[0].Float(w.nr)*cx.In[1].Float(w.c)))
		},
	})
	// JOIN -> Merge_join: needs an equi-join and sorted inputs.
	rs.AddImpl(&ImplRule{
		Name: "join_merge_join", Op: w.join, Alg: mj,
		Cond: func(cx *ImplCtx) bool { return cx.OpDesc.Pred(w.jp).IsEquiJoin() },
		Pre: func(cx *ImplCtx) (*core.Descriptor, []*core.Descriptor) {
			p := cx.OpDesc.Pred(w.jp)
			d := cx.OpDesc.Clone()
			// The outer attribute of the equi-join term may belong to
			// either input; orient it by attribute membership.
			l, r := p.Left, p.Right
			if !cx.Kids[0].AttrList(w.at).Contains(l) {
				l, r = r, l
			}
			d.Set(w.ord, core.OrderBy(l))
			lr := core.NewDescriptor(a.Props)
			lr.Set(w.ord, core.OrderBy(l))
			rr := core.NewDescriptor(a.Props)
			rr.Set(w.ord, core.OrderBy(r))
			return d, []*core.Descriptor{lr, rr}
		},
		Post: func(cx *ImplCtx, d *core.Descriptor) {
			d.Set(w.c, core.Cost(cx.In[0].Float(w.c)+cx.In[1].Float(w.c)+
				cx.In[0].Float(w.nr)+cx.In[1].Float(w.nr)))
		},
	})
	// Merge_sort enforcer: produces any requested tuple order.
	rs.AddEnforcer(&Enforcer{
		Name: "merge_sort", Alg: ms, Props: []core.PropID{w.ord},
		Cond: func(cx *ImplCtx) bool {
			ord := cx.Req.Order(w.ord)
			return cx.Req.Has(w.ord) && !ord.IsDontCare() &&
				ord.Within(cx.OpDesc.AttrList(w.at))
		},
		Pre: func(cx *ImplCtx) (*core.Descriptor, *core.Descriptor) {
			d := cx.OpDesc.Clone()
			d.Set(w.ord, cx.Req.Order(w.ord))
			in := core.NewDescriptor(a.Props)
			in.Set(w.ord, core.DontCareOrder)
			return d, in
		},
		Post: func(cx *ImplCtx, d *core.Descriptor) {
			n := math.Max(cx.In[0].Float(w.nr), 1)
			d.Set(w.c, core.Cost(cx.In[0].Float(w.c)+n*math.Log2(n+1)))
		},
	})
	return w
}

func touches(p *core.Pred, set core.Attrs) bool {
	return len(p.Attrs().Intersect(set)) > 0
}

func selOf(p *core.Pred) float64 { return math.Pow(0.5, float64(len(p.Conjuncts()))) }

func outerOf(b *TBinding, w *testWorld) *core.Pred {
	a23 := b.D("D2").AttrList(w.at).Union(b.D("D4").AttrList(w.at))
	all := core.And(b.D("D3").Pred(w.jp), b.D("D5").Pred(w.jp))
	_, outer := all.SplitBy(a23)
	return outer
}

// leaf builds a stored-file leaf with catalog-style annotations.
func (w *testWorld) leaf(name string, card float64, attrs ...core.Attr) *core.Expr {
	d := w.alg.NewDesc()
	d.Set(w.at, core.Attrs(attrs))
	d.SetFloat(w.nr, card)
	d.Set(w.c, core.Cost(0))
	w.cards[name] = card
	return core.NewLeaf(name, d)
}

// retOf wraps a leaf in RET.
func (w *testWorld) retOf(l *core.Expr) *core.Expr {
	d := l.D.Clone()
	return core.NewNode(w.ret, d, l)
}

// joinOf joins two subtrees on pred.
func (w *testWorld) joinOf(l, r *core.Expr, pred *core.Pred) *core.Expr {
	d := w.alg.NewDesc()
	d.Set(w.at, l.D.AttrList(w.at).Union(r.D.AttrList(w.at)))
	d.Set(w.jp, pred)
	d.SetFloat(w.nr, l.D.Float(w.nr)*r.D.Float(w.nr)*selOf(pred))
	return core.NewNode(w.join, d, l, r)
}

// chain builds RET(R1) JOIN RET(R2) JOIN ... with linear predicates
// Ri.a = Ri+1.a, left-deep.
func (w *testWorld) chain(cards ...float64) *core.Expr {
	cur := w.retOf(w.leaf("R1", cards[0], core.A("R1", "a"), core.A("R1", "b")))
	for i := 1; i < len(cards); i++ {
		rel := relName(i + 1)
		next := w.retOf(w.leaf(rel, cards[i], core.A(rel, "a"), core.A(rel, "b")))
		pred := core.EqAttr(core.A(relName(i), "a"), core.A(rel, "a"))
		cur = w.joinOf(cur, next, pred)
	}
	return cur
}

func relName(i int) string { return "R" + string(rune('0'+i)) }

func TestRuleSetValidate(t *testing.T) {
	w := newTestWorld()
	if errs := w.rs.Validate(); len(errs) != 0 {
		t.Fatalf("valid rule set rejected: %v", errs)
	}
	bad := NewRuleSet(w.alg)
	bad.AddImpl(&ImplRule{Name: "no_hooks", Op: w.ret, Alg: w.alg.MustOp("File_scan")})
	bad.AddEnforcer(&Enforcer{Name: "e", Alg: w.alg.MustOp("Merge_sort"),
		Props: []core.PropID{w.ord}})
	errs := bad.Validate()
	if len(errs) < 3 {
		t.Errorf("expected hook + phys errors, got %v", errs)
	}
}

func TestClassification(t *testing.T) {
	w := newTestWorld()
	c := w.rs.Class
	if c.Cost != w.c {
		t.Error("cost property not classified")
	}
	if !c.IsPhys(w.ord) || c.IsArg(w.ord) {
		t.Error("tuple_order should be physical only")
	}
	if !c.IsArg(w.jp) || c.IsPhys(w.jp) {
		t.Error("join_predicate should be argument only")
	}
}

func TestMemoLeafInterning(t *testing.T) {
	w := newTestWorld()
	m := NewMemo(w.rs)
	l := w.leaf("R1", 8, core.A("R1", "a"))
	g1 := m.InsertLeaf(l.File, l.D)
	g2 := m.InsertLeaf("R1", l.D.Clone())
	if g1 != g2 {
		t.Error("same file should intern to one group")
	}
	g3 := m.InsertLeaf("R2", l.D.Clone())
	if g3 == g1 {
		t.Error("different files must not share a group")
	}
	if m.NumGroups() != 2 || m.NumExprs() != 2 {
		t.Errorf("groups=%d exprs=%d", m.NumGroups(), m.NumExprs())
	}
}

func TestMemoExprDedup(t *testing.T) {
	w := newTestWorld()
	m := NewMemo(w.rs)
	l1 := m.InsertLeaf("R1", w.leaf("R1", 8, core.A("R1", "a")).D)
	l2 := m.InsertLeaf("R2", w.leaf("R2", 4, core.A("R2", "a")).D)
	d := w.alg.NewDesc()
	d.Set(w.jp, core.EqAttr(core.A("R1", "a"), core.A("R2", "a")))
	g1, ch1 := m.InsertExpr(w.join, d, []GroupID{l1, l2}, -1)
	if !ch1 {
		t.Error("first insert should change the memo")
	}
	// Identical argument properties: dedup, even with different
	// physical/cost annotations.
	d2 := d.Clone()
	d2.Set(w.ord, core.OrderBy(core.A("R1", "a"))) // physical: not identity
	g2, ch2 := m.InsertExpr(w.join, d2, []GroupID{l1, l2}, -1)
	if ch2 || g2 != g1 {
		t.Error("expression with same argument properties should dedup")
	}
	// Different join predicate: a different expression.
	d3 := d.Clone()
	d3.Set(w.jp, core.EqAttr(core.A("R1", "a"), core.A("R2", "b")))
	g3, _ := m.InsertExpr(w.join, d3, []GroupID{l1, l2}, -1)
	if g3 == g1 {
		t.Error("different argument properties must not dedup")
	}
}

func TestMemoGroupMerge(t *testing.T) {
	w := newTestWorld()
	m := NewMemo(w.rs)
	l1 := m.InsertLeaf("R1", w.leaf("R1", 8, core.A("R1", "a")).D)
	l2 := m.InsertLeaf("R2", w.leaf("R2", 4, core.A("R2", "a")).D)
	d := w.alg.NewDesc()
	gA, _ := m.InsertExpr(w.join, d.Clone(), []GroupID{l1, l2}, -1)
	dOther := w.alg.NewDesc()
	dOther.Set(w.jp, core.EqAttr(core.A("R1", "a"), core.A("R2", "a")))
	gB, _ := m.InsertExpr(w.join, dOther, []GroupID{l1, l2}, -1)
	if gA == gB {
		t.Fatal("setup: expected distinct groups")
	}
	before := m.NumGroups()
	// Asserting the first expression belongs in gB forces a merge.
	got, changed := m.InsertExpr(w.join, d.Clone(), []GroupID{l1, l2}, gB)
	if !changed {
		t.Error("merge should report a change")
	}
	if m.Find(gA) != m.Find(gB) || m.Find(got) != m.Find(gA) {
		t.Error("groups not merged")
	}
	if m.NumGroups() != before-1 {
		t.Errorf("NumGroups = %d, want %d", m.NumGroups(), before-1)
	}
	if m.Merges() != 1 {
		t.Errorf("Merges = %d", m.Merges())
	}
	m.Rehash()
	if m.Dirty() {
		t.Error("Rehash left memo dirty")
	}
}

func TestMemoInsertTree(t *testing.T) {
	w := newTestWorld()
	m := NewMemo(w.rs)
	tree := w.chain(8, 4, 2)
	root := m.Insert(tree)
	// 3 leaves + 3 RETs + 2 joins = 8 groups, one expression each.
	if m.NumGroups() != 8 || m.NumExprs() != 8 {
		t.Errorf("groups=%d exprs=%d, want 8/8", m.NumGroups(), m.NumExprs())
	}
	// Reinserting the same tree is a no-op.
	root2 := m.Insert(w.chain(8, 4, 2))
	if root2 != root || m.NumExprs() != 8 {
		t.Error("tree reinsertion should fully dedup")
	}
	if !strings.Contains(m.Dump(), "JOIN") {
		t.Error("Dump missing content")
	}
}

func TestOptimizeTwoWayJoin(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	plan, err := o.Optimize(w.chain(8, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Without an order requirement, nested loops with the smaller outer
	// should win: cost = 4 + 4*8 = 36 versus 8 + 8*4 = 40 versus
	// merge-join paths that pay two sorts.
	if got := plan.String(); got != "Nested_loops(File_scan(R2), File_scan(R1))" {
		t.Errorf("plan = %s", got)
	}
	if c := plan.Cost(w.rs.Class); c != 36 {
		t.Errorf("cost = %g, want 36", c)
	}
	// Commutativity doubles the join group's expressions: 2 leaves,
	// 2 RETs, 1 join group with 2 expressions.
	if o.Stats.Groups != 5 || o.Stats.Exprs != 6 {
		t.Errorf("groups=%d exprs=%d, want 5/6", o.Stats.Groups, o.Stats.Exprs)
	}
	if o.Stats.TransFired["join_commute"] == 0 {
		t.Error("commutativity never fired")
	}
}

func TestOptimizeWithOrderRequirement(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	req := w.alg.NewDesc()
	req.Set(w.ord, core.OrderBy(core.A("R1", "a")))
	plan, err := o.Optimize(w.chain(8, 4), req)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.D.Order(w.ord).Satisfies(core.OrderBy(core.A("R1", "a"))) {
		t.Errorf("plan order %v does not satisfy request", plan.D.Order(w.ord))
	}
	// Some sort or merge-join must appear to establish the order.
	algs := strings.Join(plan.Algorithms(), ",")
	if !strings.Contains(algs, "Merge_sort") && !strings.Contains(algs, "Merge_join") {
		t.Errorf("no order-producing algorithm in %s", plan)
	}
	if o.Stats.EnfFired["merge_sort"]+o.Stats.EnfMatched["merge_sort"] == 0 {
		t.Error("enforcer never considered")
	}
}

func TestOptimizeThreeWayAssociativity(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	plan, err := o.Optimize(w.chain(16, 8, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Linear chain R1-R2-R3: equivalence classes are the contiguous
	// ranges {1},{2},{3} (leaves), their RETs, {12},{23},{123}:
	// 3 + 3 + 3 = 9 groups.
	if o.Stats.Groups != 9 {
		t.Errorf("groups = %d, want 9", o.Stats.Groups)
	}
	if o.Stats.TransFired["join_assoc"] == 0 {
		t.Error("associativity never fired")
	}
	if plan == nil || plan.Cost(w.rs.Class) <= 0 {
		t.Error("bad winner")
	}
	// The winner must join all three relations.
	if len(plan.ToExpr().Leaves()) != 3 {
		t.Errorf("winner covers %v", plan.ToExpr().Leaves())
	}
}

func TestOptimizeFourWayGroupCount(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	_, err := o.Optimize(w.chain(16, 8, 4, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Contiguous ranges of a 4-chain: 4(4+1)/2 = 10 join/RET-range
	// groups... precisely: 4 leaves + 4 single-relation RET groups +
	// 6 multi-relation join groups ({12},{23},{34},{123},{234},{1234}).
	if o.Stats.Groups != 14 {
		t.Errorf("groups = %d, want 14", o.Stats.Groups)
	}
}

func TestOptimizeSpaceLimit(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	o.Opts.MaxExprs = 3
	_, err := o.Optimize(w.chain(8, 4, 2), nil)
	if !errors.Is(err, ErrSpaceExhausted) {
		t.Errorf("err = %v, want ErrSpaceExhausted", err)
	}
}

func TestOptimizeInfeasibleRequirement(t *testing.T) {
	w := newTestWorld()
	// Remove the enforcer and merge join so no order can be produced.
	w.rs.Enforcers = nil
	var impls []*ImplRule
	for _, r := range w.rs.Impls {
		if r.Name != "join_merge_join" {
			impls = append(impls, r)
		}
	}
	w.rs.Impls = impls
	o := NewOptimizer(w.rs)
	req := w.alg.NewDesc()
	req.Set(w.ord, core.OrderBy(core.A("R1", "a")))
	// A single RET can never produce a sort order by itself.
	tree := w.retOf(w.leaf("R1", 8, core.A("R1", "a")))
	if _, err := o.Optimize(tree, req); err != ErrNoPlan {
		t.Errorf("err = %v, want ErrNoPlan", err)
	}
}

func TestWinnerMemoization(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	if _, err := o.Optimize(w.chain(8, 4, 2), nil); err != nil {
		t.Fatal(err)
	}
	// Optimizing again against the same memo reuses winners.
	root := o.Memo.Insert(w.chain(8, 4, 2))
	before := o.Stats.Winners
	if _, _, err := o.findBest(root, w.alg.NewDesc()); err != nil {
		t.Fatal(err)
	}
	if o.Stats.Winners != before {
		t.Errorf("winners recomputed: %d -> %d", before, o.Stats.Winners)
	}
}

func TestPlanHelpers(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	plan, err := o.Optimize(w.chain(8, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	e := plan.ToExpr()
	if !e.IsPlan() {
		t.Error("ToExpr should produce an access plan")
	}
	if plan.Size() != 5 {
		t.Errorf("Size = %d", plan.Size())
	}
	algs := plan.Algorithms()
	if len(algs) != 2 {
		t.Errorf("Algorithms = %v", algs)
	}
	if !strings.Contains(plan.Format(), "Nested_loops") {
		t.Error("Format missing algorithm")
	}
	if (&PExpr{File: "R1"}).Cost(w.rs.Class) != 0 {
		t.Error("leaf cost should be 0")
	}
}

func TestStatsReporting(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	if _, err := o.Optimize(w.chain(8, 4, 2), nil); err != nil {
		t.Fatal(err)
	}
	s := o.Stats
	if s.DistinctTransMatched() != 2 {
		t.Errorf("distinct trans matched = %d, want 2", s.DistinctTransMatched())
	}
	if s.DistinctImplMatched() != 3 {
		t.Errorf("distinct impl matched = %d, want 3", s.DistinctImplMatched())
	}
	if s.DistinctImplFired() < 2 {
		t.Errorf("distinct impl fired = %d", s.DistinctImplFired())
	}
	if s.Winners == 0 || s.CostedPlans == 0 {
		t.Error("no winners/costed plans recorded")
	}
	out := s.String()
	for _, want := range []string{"groups=", "join_commute", "trans matched=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats.String missing %q in %q", want, out)
		}
	}
}

func TestBranchAndBoundPrunes(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	// With a tiny R1, the best 3-way plan joins R1's side first; the
	// alternative that optimizes the expensive {R2,R3} sub-join as an
	// input exceeds the incumbent on input costs alone and is pruned.
	if _, err := o.Optimize(w.chain(1, 1024, 1024), nil); err != nil {
		t.Fatal(err)
	}
	if o.Stats.Pruned == 0 {
		t.Error("branch-and-bound never pruned on a 3-way join")
	}
}

func TestWinnersPerPropertyVector(t *testing.T) {
	// Distinct physical-property requirements get distinct winners on
	// the same group.
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	if _, err := o.Optimize(w.chain(64, 8), nil); err != nil {
		t.Fatal(err)
	}
	root := o.Memo.Insert(w.chain(64, 8))
	unordered, uCost, err := o.findBest(root, w.alg.NewDesc())
	if err != nil {
		t.Fatal(err)
	}
	req := w.alg.NewDesc()
	req.Set(w.ord, core.OrderBy(core.A("R1", "a")))
	ordered, oCost, err := o.findBest(root, req)
	if err != nil {
		t.Fatal(err)
	}
	if ordered == nil || unordered == nil {
		t.Fatal("missing winners")
	}
	if !(uCost <= oCost) {
		t.Errorf("ordered winner cheaper than unordered: %g vs %g", oCost, uCost)
	}
	if !ordered.D.Order(w.ord).Satisfies(core.OrderBy(core.A("R1", "a"))) {
		t.Errorf("ordered winner has order %v", ordered.D.Order(w.ord))
	}
}

func TestMergeReqOverridesPhysical(t *testing.T) {
	w := newTestWorld()
	d := w.alg.NewDesc()
	d.Set(w.ord, core.DontCareOrder)
	d.SetFloat(w.nr, 7)
	req := w.alg.NewDesc()
	req.Set(w.ord, core.OrderBy(core.A("R", "x")))
	out := mergeReq(d, req, []core.PropID{w.ord})
	if !out.Order(w.ord).Equal(core.OrderBy(core.A("R", "x"))) {
		t.Error("requirement not merged")
	}
	if out.Float(w.nr) != 7 {
		t.Error("non-physical property clobbered")
	}
	if d.Order(w.ord).Equal(core.OrderBy(core.A("R", "x"))) {
		t.Error("source descriptor mutated")
	}
}

func TestEnforcerNotAppliedWithoutRequirement(t *testing.T) {
	// With merge join removed, nothing requests an order, so the
	// enforcer must never be considered.
	w := newTestWorld()
	var impls []*ImplRule
	for _, r := range w.rs.Impls {
		if r.Name != "join_merge_join" {
			impls = append(impls, r)
		}
	}
	w.rs.Impls = impls
	o := NewOptimizer(w.rs)
	if _, err := o.Optimize(w.chain(8, 4), nil); err != nil {
		t.Fatal(err)
	}
	if o.Stats.EnfFired["merge_sort"] != 0 || o.Stats.EnfMatched["merge_sort"] != 0 {
		t.Error("enforcer considered without an order requirement")
	}
}

func TestExplorationPassCap(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	o.Opts.MaxPasses = 1
	_, err := o.Optimize(w.chain(16, 8, 4, 2), nil)
	if err == nil || !strings.Contains(err.Error(), "did not converge") {
		t.Errorf("err = %v", err)
	}
}

func TestOptimizeLeafDirectly(t *testing.T) {
	// A bare stored file satisfies an empty requirement at zero cost.
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	plan, err := o.Optimize(w.leaf("R1", 8, core.A("R1", "a")), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.IsLeaf() || plan.Cost(w.rs.Class) != 0 {
		t.Errorf("leaf plan = %v cost %g", plan, plan.Cost(w.rs.Class))
	}
}

// TestBottomUpMatchesTopDown: the System R-style strategy over the same
// rule set produces winners of identical cost, with and without order
// requirements.
func TestBottomUpMatchesTopDown(t *testing.T) {
	for _, withOrder := range []bool{false, true} {
		w := newTestWorld()
		req := w.alg.NewDesc()
		if withOrder {
			req.Set(w.ord, core.OrderBy(core.A("R1", "a")))
		}
		td := NewOptimizer(w.rs)
		tdPlan, err := td.Optimize(w.chain(16, 8, 4), req)
		if err != nil {
			t.Fatal(err)
		}
		w2 := newTestWorld()
		req2 := w2.alg.NewDesc()
		if withOrder {
			req2.Set(w2.ord, core.OrderBy(core.A("R1", "a")))
		}
		bu := NewBottomUp(w2.rs)
		buPlan, err := bu.Optimize(w2.chain(16, 8, 4), req2)
		if err != nil {
			t.Fatal(err)
		}
		if tdPlan.Cost(w.rs.Class) != buPlan.Cost(w2.rs.Class) {
			t.Errorf("withOrder=%v: top-down %g vs bottom-up %g\n%s\n%s",
				withOrder, tdPlan.Cost(w.rs.Class), buPlan.Cost(w2.rs.Class), tdPlan, buPlan)
		}
		if bu.Stats.Groups != td.Stats.Groups {
			t.Errorf("group counts differ: %d vs %d", bu.Stats.Groups, td.Stats.Groups)
		}
		// Bottom-up materializes at least as many winner entries as
		// top-down touched (it fills whole interesting-vector tables).
		if bu.TableSize() < 1 {
			t.Error("empty winner table")
		}
	}
}

func TestBottomUpInfeasible(t *testing.T) {
	w := newTestWorld()
	w.rs.Enforcers = nil
	var impls []*ImplRule
	for _, r := range w.rs.Impls {
		if r.Name != "join_merge_join" {
			impls = append(impls, r)
		}
	}
	w.rs.Impls = impls
	bu := NewBottomUp(w.rs)
	req := w.alg.NewDesc()
	req.Set(w.ord, core.OrderBy(core.A("R1", "a")))
	if _, err := bu.Optimize(w.retOf(w.leaf("R1", 8, core.A("R1", "a"))), req); err != ErrNoPlan {
		t.Errorf("err = %v, want ErrNoPlan", err)
	}
}

func TestBottomUpSpaceLimit(t *testing.T) {
	w := newTestWorld()
	bu := NewBottomUp(w.rs)
	bu.Opts.MaxExprs = 3
	if _, err := bu.Optimize(w.chain(8, 4, 2), nil); !errors.Is(err, ErrSpaceExhausted) {
		t.Errorf("err = %v", err)
	}
}

func TestTraceEvents(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	var got []Event
	o.OnEvent = func(e Event) { got = append(got, e) }
	req := w.alg.NewDesc()
	req.Set(w.ord, core.OrderBy(core.A("R1", "a")))
	if _, err := o.Optimize(w.chain(8, 4), req); err != nil {
		t.Fatal(err)
	}
	kinds := map[EventKind]int{}
	for _, e := range got {
		kinds[e.Kind]++
	}
	for _, k := range []EventKind{EventTransFired, EventImplCosted, EventImplRejected, EventEnforcerApplied, EventWinner} {
		if kinds[k] == 0 {
			t.Errorf("no %v events in trace", k)
		}
	}
	// Event strings render every component.
	e := Event{Kind: EventImplCosted, Rule: "r", Group: 3, Detail: "Alg", Cost: 7}
	if s := e.String(); !strings.Contains(s, "costed") || !strings.Contains(s, "group 3") ||
		!strings.Contains(s, "(cost 7.0)") {
		t.Errorf("Event.String = %q", s)
	}
	// reqString renders set and empty vectors.
	if s := reqString(req, w.rs.Class.Phys); !strings.Contains(s, "tuple_order=<R1.a>") {
		t.Errorf("reqString = %q", s)
	}
	if s := reqString(w.alg.NewDesc(), w.rs.Class.Phys); s != "(none)" {
		t.Errorf("empty reqString = %q", s)
	}
}

func TestExplain(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	req := w.alg.NewDesc()
	req.Set(w.ord, core.OrderBy(core.A("R1", "a")))
	plan, err := o.Optimize(w.chain(8, 4), req)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain(w.rs.Class)
	for _, want := range []string{"cost=", "stored file", "tuple_order=<R1.a>", "File_scan"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestGroupVersionsAdvance(t *testing.T) {
	w := newTestWorld()
	m := NewMemo(w.rs)
	l1 := m.InsertLeaf("R1", w.leaf("R1", 8, core.A("R1", "a")).D)
	l2 := m.InsertLeaf("R2", w.leaf("R2", 4, core.A("R2", "a")).D)
	g, _ := m.InsertExpr(w.join, w.alg.NewDesc(), []GroupID{l1, l2}, -1)
	v1 := m.Group(g).version
	// Duplicate insertion leaves the version unchanged.
	m.InsertExpr(w.join, w.alg.NewDesc(), []GroupID{l1, l2}, g)
	if m.Group(g).version != v1 {
		t.Error("duplicate insertion bumped version")
	}
	// A genuinely new expression bumps it.
	d := w.alg.NewDesc()
	d.Set(w.jp, core.EqAttr(core.A("R1", "a"), core.A("R2", "a")))
	m.InsertExpr(w.join, d, []GroupID{l1, l2}, g)
	if m.Group(g).version <= v1 {
		t.Error("insertion did not bump version")
	}
}
