package volcano

import (
	"fmt"
	"sort"
	"strings"
)

// Stats collects search statistics. The experiments of Section 4 of the
// paper are read off these: equivalence-class counts drive Figure 14,
// distinct matched rules drive Table 5.
type Stats struct {
	Groups   int // equivalence classes after optimization
	Exprs    int // logical expressions after optimization
	Merges   int // group merges (rediscovered equivalences)
	Passes   int // exploration fixpoint passes (drain cycles for the worklist)
	MaxQueue int // peak worklist depth (0 under the pass-based explorer)

	TransMatched map[string]int // structural LHS matches per trans_rule
	TransFired   map[string]int // matches whose cond_code passed
	ImplMatched  map[string]int // operator matches per impl_rule
	ImplFired    map[string]int // matches whose cond passed
	EnfMatched   map[string]int // enforcer considerations
	EnfFired     map[string]int // enforcers applied

	Winners     int // (group, property-vector) optimizations performed
	CostedPlans int // physical alternatives costed
	Pruned      int // alternatives abandoned by branch-and-bound

	// Degraded reports that the search hit its Budget (or its context
	// was cancelled) and the plan came from graceful degradation rather
	// than a completed search; DegradeCause says which bound tripped and
	// DegradePath how the plan was produced (DegradePathMemo or
	// DegradePathBottomUp). All other counters then describe the partial
	// work actually done.
	Degraded     bool
	DegradeCause Cause
	DegradePath  string
}

// NewStats returns zeroed statistics.
func NewStats() *Stats {
	return &Stats{
		TransMatched: map[string]int{},
		TransFired:   map[string]int{},
		ImplMatched:  map[string]int{},
		ImplFired:    map[string]int{},
		EnfMatched:   map[string]int{},
		EnfFired:     map[string]int{},
	}
}

// DistinctTransMatched returns how many distinct trans_rules matched at
// least one sub-expression (the paper's Table 5 "trans_rules matched").
func (s *Stats) DistinctTransMatched() int { return countNonZero(s.TransMatched) }

// DistinctImplMatched returns how many distinct impl_rules matched (the
// paper's Table 5 "impl_rules matched").
func (s *Stats) DistinctImplMatched() int { return countNonZero(s.ImplMatched) }

// DistinctImplFired returns how many distinct impl_rules actually applied
// (their cond passed on at least one match).
func (s *Stats) DistinctImplFired() int { return countNonZero(s.ImplFired) }

func countNonZero(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

// String renders a compact multi-line summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "groups=%d exprs=%d merges=%d passes=%d queue=%d winners=%d costed=%d pruned=%d",
		s.Groups, s.Exprs, s.Merges, s.Passes, s.MaxQueue, s.Winners, s.CostedPlans, s.Pruned)
	if s.Degraded {
		fmt.Fprintf(&b, " DEGRADED(%s via %s)", s.DegradeCause, s.DegradePath)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "trans matched=%d fired=%d; impl matched=%d fired=%d\n",
		s.DistinctTransMatched(), countNonZero(s.TransFired),
		s.DistinctImplMatched(), s.DistinctImplFired())
	for _, line := range []struct {
		label string
		m     map[string]int
	}{{"trans", s.TransMatched}, {"impl", s.ImplMatched}, {"enforcer", s.EnfFired}} {
		if len(line.m) == 0 {
			continue
		}
		keys := make([]string, 0, len(line.m))
		for k := range line.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "%s:", line.label)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, line.m[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
