package volcano

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stats collects search statistics. The experiments of Section 4 of the
// paper are read off these: equivalence-class counts drive Figure 14,
// distinct matched rules drive Table 5.
type Stats struct {
	Groups   int // equivalence classes after optimization
	Exprs    int // logical expressions after optimization
	Merges   int // group merges (rediscovered equivalences)
	Passes   int // exploration fixpoint passes (drain cycles for the worklist)
	MaxQueue int // peak worklist depth (0 under the pass-based explorer)

	TransMatched map[string]int // structural LHS matches per trans_rule
	TransFired   map[string]int // matches whose cond_code passed
	ImplMatched  map[string]int // operator matches per impl_rule
	ImplFired    map[string]int // matches whose cond passed
	EnfMatched   map[string]int // enforcer considerations
	EnfFired     map[string]int // enforcers applied

	Winners     int // (group, property-vector) optimizations performed
	CostedPlans int // physical alternatives costed
	Pruned      int // alternatives abandoned by branch-and-bound

	// Degraded reports that the search hit its Budget (or its context
	// was cancelled) and the plan came from graceful degradation rather
	// than a completed search; DegradeCause says which bound tripped and
	// DegradePath how the plan was produced (DegradePathMemo or
	// DegradePathBottomUp). All other counters then describe the partial
	// work actually done.
	Degraded     bool
	DegradeCause Cause
	DegradePath  string

	// TransTime and ImplTime attribute wall time to individual rules
	// when per-rule timing is enabled (obs.Observer.RuleTiming):
	// TransTime is the time spent matching and firing each trans_rule,
	// ImplTime the self time spent costing each impl_rule's
	// alternatives (input recursion excluded). Both stay nil on
	// unobserved runs so Stats render byte-identically to previous
	// releases.
	TransTime map[string]time.Duration
	ImplTime  map[string]time.Duration

	// Plan-cache accounting (all zero when no cache is attached, so
	// cacheless runs render byte-identically to previous releases):
	// CacheHits counts runs served from the cross-query plan cache
	// (including singleflight adoptions), CacheMisses runs that searched,
	// WarmSeeds subproblems whose branch-and-bound started from a cached
	// incumbent, FlightWaits runs that waited behind a concurrent
	// identical search, and FlightShared those waits that adopted the
	// leader's result.
	CacheHits    int
	CacheMisses  int
	WarmSeeds    int
	FlightWaits  int
	FlightShared int
	// Cluster accounting (zero off-cluster, keeping single-node runs
	// byte-identical): PeerFills counts misses answered by the key's
	// owning peer instead of a local search (including cross-node flight
	// collapses), ReplicaHits local hits served from a hot-key replica
	// of a remotely-owned entry.
	PeerFills   int
	ReplicaHits int

	// Tiered-planner provenance (all zero on full-tier runs, so
	// untiered Stats render byte-identically to previous releases):
	// Tier is the planner tier that produced this run's plan ("greedy";
	// "" means the classic full search), Refined marks a plan served
	// from a cache entry hot-swapped in by a background refinement, and
	// GreedyCost/FullCost carry the measured greedy-vs-full costs when
	// both are known (refined hits and auto-routed synchronous runs).
	Tier       string
	Refined    bool
	GreedyCost float64
	FullCost   float64
	// TierClass and TierRouted record the router interaction of a
	// TierAuto run for the flight recorder: the query's shape class and
	// what the router decided for it ("refine" or "greedy"). Zero/""
	// whenever no routing decision was made, and never rendered by
	// String, so untiered output stays byte-identical.
	TierClass  uint64
	TierRouted string

	// MemoBytes is a rough end-of-run estimate of the memo's heap
	// footprint (see Memo.MemEstimate).
	MemoBytes int64
	// BudgetChecks counts budget checkpoints evaluated during the run
	// (zero for unbudgeted runs — the checkpoints are gated off).
	BudgetChecks int
	// DegradedRuns counts degraded optimizations by cause when this
	// Stats aggregates several runs (see Merge); a single run reports
	// Degraded/DegradeCause instead.
	DegradedRuns map[string]int
}

// NewStats returns zeroed statistics.
func NewStats() *Stats {
	return &Stats{
		TransMatched: map[string]int{},
		TransFired:   map[string]int{},
		ImplMatched:  map[string]int{},
		ImplFired:    map[string]int{},
		EnfMatched:   map[string]int{},
		EnfFired:     map[string]int{},
	}
}

// DistinctTransMatched returns how many distinct trans_rules matched at
// least one sub-expression (the paper's Table 5 "trans_rules matched").
func (s *Stats) DistinctTransMatched() int { return countNonZero(s.TransMatched) }

// DistinctTransFired returns how many distinct trans_rules actually
// fired (their cond_code passed on at least one match) — the paper's
// matched-versus-applicable distinction, §4.3.
func (s *Stats) DistinctTransFired() int { return countNonZero(s.TransFired) }

// DistinctImplMatched returns how many distinct impl_rules matched (the
// paper's Table 5 "impl_rules matched").
func (s *Stats) DistinctImplMatched() int { return countNonZero(s.ImplMatched) }

// DistinctImplFired returns how many distinct impl_rules actually applied
// (their cond passed on at least one match).
func (s *Stats) DistinctImplFired() int { return countNonZero(s.ImplFired) }

// tierOrFull maps the Stats.Tier encoding ("" = classic full search)
// to the wire tier name.
func tierOrFull(t string) string {
	if t == "" {
		return "full"
	}
	return t
}

func countNonZero(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

// Merge folds another run's statistics into s: counters and per-rule
// maps are summed, MaxQueue takes the maximum, and degradation is
// aggregated by cause into DegradedRuns. It is the aggregation
// primitive behind batch reports and experiment-sweep snapshots; s
// keeps its own identity (Degraded/DegradeCause describe s's first
// degraded constituent).
func (s *Stats) Merge(o *Stats) {
	if o == nil {
		return
	}
	s.Groups += o.Groups
	s.Exprs += o.Exprs
	s.Merges += o.Merges
	s.Passes += o.Passes
	if o.MaxQueue > s.MaxQueue {
		s.MaxQueue = o.MaxQueue
	}
	s.Winners += o.Winners
	s.CostedPlans += o.CostedPlans
	s.Pruned += o.Pruned
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.WarmSeeds += o.WarmSeeds
	s.FlightWaits += o.FlightWaits
	s.FlightShared += o.FlightShared
	s.PeerFills += o.PeerFills
	s.ReplicaHits += o.ReplicaHits
	s.MemoBytes += o.MemoBytes
	s.BudgetChecks += o.BudgetChecks
	mergeCounts(&s.TransMatched, o.TransMatched)
	mergeCounts(&s.TransFired, o.TransFired)
	mergeCounts(&s.ImplMatched, o.ImplMatched)
	mergeCounts(&s.ImplFired, o.ImplFired)
	mergeCounts(&s.EnfMatched, o.EnfMatched)
	mergeCounts(&s.EnfFired, o.EnfFired)
	mergeDurations(&s.TransTime, o.TransTime)
	mergeDurations(&s.ImplTime, o.ImplTime)
	if len(o.DegradedRuns) > 0 {
		// o is itself an aggregate: fold its tally, don't double count
		// its Degraded flag.
		mergeCounts(&s.DegradedRuns, o.DegradedRuns)
	} else if o.Degraded {
		if s.DegradedRuns == nil {
			s.DegradedRuns = map[string]int{}
		}
		s.DegradedRuns[o.DegradeCause.String()]++
	}
	if o.Degraded && !s.Degraded {
		s.Degraded = true
		s.DegradeCause = o.DegradeCause
		s.DegradePath = o.DegradePath
	}
	// Tier provenance aggregates like degradation: the aggregate adopts
	// the first tiered constituent's identity, and Refined is sticky.
	if s.Tier == "" && o.Tier != "" {
		s.Tier = o.Tier
	}
	if o.Refined {
		s.Refined = true
	}
}

func mergeCounts(dst *map[string]int, src map[string]int) {
	if len(src) == 0 {
		return
	}
	if *dst == nil {
		*dst = make(map[string]int, len(src))
	}
	for k, v := range src {
		(*dst)[k] += v
	}
}

func mergeDurations(dst *map[string]time.Duration, src map[string]time.Duration) {
	if len(src) == 0 {
		return
	}
	if *dst == nil {
		*dst = make(map[string]time.Duration, len(src))
	}
	for k, v := range src {
		(*dst)[k] += v
	}
}

// RuleTimeTable renders the per-rule wall-time attribution collected
// under obs.Observer.RuleTiming as an aligned table, most expensive
// rule first; it returns "" when timing was not enabled. Trans rows
// report match+fire time and match/fire counts; impl rows report
// costing self time (input recursion excluded) and matched/fired
// counts.
func (s *Stats) RuleTimeTable() string {
	if len(s.TransTime) == 0 && len(s.ImplTime) == 0 {
		return ""
	}
	type row struct {
		kind, rule       string
		t                time.Duration
		matched, applied int
	}
	var rows []row
	for r, d := range s.TransTime {
		rows = append(rows, row{"trans", r, d, s.TransMatched[r], s.TransFired[r]})
	}
	for r, d := range s.ImplTime {
		rows = append(rows, row{"impl", r, d, s.ImplMatched[r], s.ImplFired[r]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].t != rows[j].t {
			return rows[i].t > rows[j].t
		}
		return rows[i].rule < rows[j].rule
	})
	var total time.Duration
	width := len("rule")
	for _, r := range rows {
		total += r.t
		if len(r.rule) > width {
			width = len(r.rule)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  kind   time(ms)   %%      matched  fired\n", width, "rule")
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.t) / float64(total)
		}
		fmt.Fprintf(&b, "%-*s  %-6s %9.3f  %5.1f  %7d  %5d\n",
			width, r.rule, r.kind, float64(r.t.Microseconds())/1000, pct, r.matched, r.applied)
	}
	fmt.Fprintf(&b, "total attributed: %.3fms over %d rules\n",
		float64(total.Microseconds())/1000, len(rows))
	return b.String()
}

// String renders a compact multi-line summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "groups=%d exprs=%d merges=%d passes=%d queue=%d winners=%d costed=%d pruned=%d",
		s.Groups, s.Exprs, s.Merges, s.Passes, s.MaxQueue, s.Winners, s.CostedPlans, s.Pruned)
	if s.Degraded {
		fmt.Fprintf(&b, " DEGRADED(%s via %s)", s.DegradeCause, s.DegradePath)
	}
	b.WriteByte('\n')
	if s.CacheHits+s.CacheMisses+s.WarmSeeds+s.FlightWaits+s.FlightShared > 0 {
		fmt.Fprintf(&b, "cache: hits=%d misses=%d seeds=%d waits=%d shared=%d",
			s.CacheHits, s.CacheMisses, s.WarmSeeds, s.FlightWaits, s.FlightShared)
		// Cluster counters render only when cluster traffic happened, so
		// single-node output stays byte-identical.
		if s.PeerFills+s.ReplicaHits > 0 {
			fmt.Fprintf(&b, " peer_fills=%d replica_hits=%d", s.PeerFills, s.ReplicaHits)
		}
		b.WriteByte('\n')
	}
	if s.Tier != "" || s.Refined {
		fmt.Fprintf(&b, "tier: %s refined=%v", tierOrFull(s.Tier), s.Refined)
		if s.GreedyCost > 0 && s.FullCost > 0 {
			fmt.Fprintf(&b, " greedy_cost=%.1f full_cost=%.1f", s.GreedyCost, s.FullCost)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "trans matched=%d fired=%d; impl matched=%d fired=%d\n",
		s.DistinctTransMatched(), s.DistinctTransFired(),
		s.DistinctImplMatched(), s.DistinctImplFired())
	for _, line := range []struct {
		label string
		m     map[string]int
	}{{"trans", s.TransMatched}, {"impl", s.ImplMatched}, {"enforcer", s.EnfFired}} {
		if len(line.m) == 0 {
			continue
		}
		keys := make([]string, 0, len(line.m))
		for k := range line.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "%s:", line.label)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, line.m[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
