// Package volcano implements a Volcano-style optimizer generator
// (Graefe 1990): a memo of equivalence classes over logical expressions,
// transformation and implementation rules, enforcers, and a top-down
// branch-and-bound search strategy.
//
// It is the back-end search engine of this repository, exactly as the
// Volcano optimizer generator is the back end of the Prairie paper: rule
// sets are either written directly in this package's format (the paper's
// "hand-coded Volcano" baseline) or generated from a Prairie
// specification by the P2V pre-processor (package internal/p2v).
package volcano

import (
	"fmt"
	"sync"
	"sync/atomic"

	"prairie/internal/core"
)

// Classification partitions one Prairie descriptor into Volcano's three
// property classes (§3.1 of the paper). Volcano makes the user supply
// this; P2V computes it automatically.
type Classification struct {
	// Arg lists the operator/algorithm argument properties: they are
	// part of a logical expression's identity in the memo (two JOINs
	// with different join predicates are different expressions).
	Arg []core.PropID
	// Phys lists the physical properties: properties that can be
	// requested from below (e.g. tuple_order). Winners are memoized per
	// physical-property vector.
	Phys []core.PropID
	// Cost is the single cost property.
	Cost core.PropID
}

// IsArg reports whether id is classified as an argument property.
func (c Classification) IsArg(id core.PropID) bool { return containsProp(c.Arg, id) }

// IsPhys reports whether id is classified as a physical property.
func (c Classification) IsPhys(id core.PropID) bool { return containsProp(c.Phys, id) }

func containsProp(ids []core.PropID, id core.PropID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// TBinding is the environment a transformation rule runs in: descriptor
// variables (inherited from core.Binding) plus pattern-variable bindings
// to memo groups. Pattern variables are small dense integers, so the
// group bindings are slice-backed; the engine reuses TBindings across
// matches, so rule hooks must not retain one.
type TBinding struct {
	*core.Binding
	vars []GroupID // indexed by pattern-variable id; groupUnbound if unset
}

// groupUnbound marks an unbound pattern variable.
const groupUnbound = GroupID(-1)

// SetVar binds pattern variable v to group g.
func (b *TBinding) SetVar(v int, g GroupID) {
	for len(b.vars) <= v {
		b.vars = append(b.vars, groupUnbound)
	}
	b.vars[v] = g
}

// VarGroup returns the group bound to pattern variable v (groupUnbound
// if the variable is not bound).
func (b *TBinding) VarGroup(v int) GroupID {
	if v < len(b.vars) {
		return b.vars[v]
	}
	return groupUnbound
}

// reset clears the binding for reuse, keeping backing storage.
func (b *TBinding) reset() {
	b.Binding.Reset()
	b.vars = b.vars[:0]
}

// copyFrom replaces this binding's contents with src's (descriptors and
// groups are shared, not cloned).
func (b *TBinding) copyFrom(src *TBinding) {
	b.Binding.CopyFrom(src.Binding)
	b.vars = append(b.vars[:0], src.vars...)
}

// TransRule is a Volcano trans_rule: a directed logical-to-logical
// rewrite. Cond is the cond_code (a Prairie T-rule's pre-test statements
// and test); Appl is the appl_code (the post-test statements), which must
// fill in the descriptors of all new right-hand-side nodes.
type TransRule struct {
	Name string
	// Origin records where the rule came from — a source position for
	// DSL-compiled rules, empty for hand-coded ones. The per-rule
	// verifier (internal/rulecheck) reports it with each verdict.
	Origin   string
	LHS, RHS *core.PatNode
	Cond     func(b *TBinding) bool // nil means TRUE
	Appl     func(b *TBinding)      // nil means no actions
}

func (r *TransRule) String() string {
	return fmt.Sprintf("%s: %s -> %s", r.Name, r.LHS, r.RHS)
}

// ImplCtx carries the state an implementation rule or enforcer sees.
type ImplCtx struct {
	// OpDesc is the matched logical expression's descriptor with the
	// required physical properties merged in; for an enforcer it is the
	// group's representative descriptor with the requirement merged in.
	OpDesc *core.Descriptor
	// Req is the required physical-property vector (only classified
	// physical properties are meaningful).
	Req *core.Descriptor
	// Kids holds the representative descriptors of the input groups
	// (logical information available before input optimization).
	Kids []*core.Descriptor
	// In holds the optimized inputs' winner descriptors; it is only
	// populated when Post runs.
	In []*core.Descriptor
	// Scratch lets a rule's hooks share state across the Cond/Pre/Post
	// stages of one alternative (the P2V-generated hooks cache their
	// descriptor binding here). The engine never touches it.
	Scratch interface{}
}

// ImplRule is a Volcano impl_rule: it implements an operator by an
// algorithm. The three hooks correspond to Volcano's support functions
// (Table 4(b) of the paper): Cond is the cond_code plus "do_any_good";
// Pre is "get_input_pv" (it yields the algorithm's provisional output
// descriptor and each input's required physical properties); Post is
// "derive_phy_prop" plus "cost" (it finalizes algD, in particular its
// cost property).
type ImplRule struct {
	Name string
	Op   *core.Operation
	Alg  *core.Operation
	Cond func(cx *ImplCtx) bool // nil means TRUE
	Pre  func(cx *ImplCtx) (algD *core.Descriptor, inReq []*core.Descriptor)
	Post func(cx *ImplCtx, algD *core.Descriptor)
}

func (r *ImplRule) String() string {
	return fmt.Sprintf("%s: %s -> %s", r.Name, r.Op.Name, r.Alg.Name)
}

// Enforcer is a Volcano enforcer: an algorithm that produces a physical
// property (e.g. Merge_sort produces a tuple order) on top of an
// arbitrary plan for the same equivalence class. The engine applies an
// enforcer when a required property is not DONT_CARE, optimizing the same
// group with that property relaxed. In Prairie, enforcers are ordinary
// I-rules on an enforcer-operator; P2V generates these structures.
type Enforcer struct {
	Name string
	Alg  *core.Operation
	// Props are the physical properties this enforcer can produce.
	Props []core.PropID
	Cond  func(cx *ImplCtx) bool // nil: applies iff some Prop in Req is set and not DONT_CARE
	// Pre yields the enforcer node's provisional descriptor and the
	// relaxed requirement for its input (same group).
	Pre  func(cx *ImplCtx) (algD *core.Descriptor, inReq *core.Descriptor)
	Post func(cx *ImplCtx, algD *core.Descriptor)
}

func (e *Enforcer) String() string {
	return fmt.Sprintf("enforcer %s (%s)", e.Name, e.Alg.Name)
}

// RuleSet is a complete Volcano optimizer specification: the algebra, the
// property classification, and the rules. It is consumed by Optimizer.
//
// A RuleSet is immutable once the first Optimizer runs over it: the
// operator-indexed rule dispatch tables are built exactly once (on first
// use) and are then shared — including across the concurrent optimizers
// of OptimizeBatch, which all read the same RuleSet.
type RuleSet struct {
	Algebra   *core.Algebra
	Class     Classification
	Trans     []*TransRule
	Impls     []*ImplRule
	Enforcers []*Enforcer
	// MonotonicCosts asserts that every algorithm's total cost is at
	// least the sum of its inputs' costs, enabling branch-and-bound
	// pruning while inputs are optimized.
	MonotonicCosts bool

	indexOnce sync.Once
	idx       *ruleIndex
	// cacheID is the rule set's process-unique plan-cache scope,
	// assigned when the dispatch index is built. Two RuleSet instances
	// never share cached plans even when structurally identical: their
	// rule hooks close over different catalogs, so equal-looking queries
	// may cost differently.
	cacheID uint64
}

// cacheScopeCounter allocates process-unique RuleSet.cacheID values.
var cacheScopeCounter atomic.Uint64

// transEntry is one transformation rule in the operator index, carrying
// its global position (for per-rule counters) and whether its pattern is
// depth-1 (applied once per expression, never re-matched).
type transEntry struct {
	rule    *TransRule
	idx     int
	shallow bool
}

// implEntry is one implementation rule in the operator index.
type implEntry struct {
	rule *ImplRule
	idx  int
}

// ruleIndex maps a root operator to the rules that can possibly match an
// expression with that operator, replacing the engine's linear
// rule-list scans. It is built once per RuleSet and read-only afterwards.
type ruleIndex struct {
	trans map[*core.Operation][]transEntry
	impls map[*core.Operation][]implEntry
	// commut marks operators with an unconditional commute rule
	// (OP(?a,?b) -> OP(?b,?a), no cond_code): the plan-cache fingerprint
	// may sort their inputs, because the rule proves both orders land in
	// one equivalence class with the same closure and winners.
	commut map[*core.Operation]bool
}

// index returns the operator-indexed dispatch tables, building them on
// first use. Safe for concurrent callers; the rule set must not be
// mutated after the first call.
func (rs *RuleSet) index() *ruleIndex {
	rs.indexOnce.Do(func() {
		ix := &ruleIndex{
			trans: make(map[*core.Operation][]transEntry),
			impls: make(map[*core.Operation][]implEntry),
		}
		for i, r := range rs.Trans {
			ix.trans[r.LHS.Op] = append(ix.trans[r.LHS.Op],
				transEntry{rule: r, idx: i, shallow: r.LHS.Depth() <= 1})
		}
		for i, r := range rs.Impls {
			ix.impls[r.Op] = append(ix.impls[r.Op], implEntry{rule: r, idx: i})
		}
		for _, r := range rs.Trans {
			if op := commutedOp(r); op != nil {
				if ix.commut == nil {
					ix.commut = make(map[*core.Operation]bool)
				}
				ix.commut[op] = true
			}
		}
		rs.cacheID = cacheScopeCounter.Add(1)
		rs.idx = ix
	})
	return rs.idx
}

// commutedOp reports the operator an unconditional binary commute rule
// swaps, or nil. The shape is exactly OP(?a, ?b) -> OP(?b, ?a) with no
// cond_code and a != b: only then does the rule prove — for every
// descriptor — that both input orders are equivalent.
func commutedOp(r *TransRule) *core.Operation {
	if r.Cond != nil || r.LHS == nil || r.RHS == nil {
		return nil
	}
	l, rhs := r.LHS, r.RHS
	if l.Op == nil || l.Op != rhs.Op || len(l.Kids) != 2 || len(rhs.Kids) != 2 {
		return nil
	}
	a, b := l.Kids[0], l.Kids[1]
	if !a.IsVar() || !b.IsVar() || a.Var == b.Var {
		return nil
	}
	if !rhs.Kids[0].IsVar() || !rhs.Kids[1].IsVar() {
		return nil
	}
	if rhs.Kids[0].Var != b.Var || rhs.Kids[1].Var != a.Var {
		return nil
	}
	return l.Op
}

// commutative reports whether op has an unconditional commute rule.
func (rs *RuleSet) commutative(op *core.Operation) bool { return rs.index().commut[op] }

// cacheScope returns the rule set's process-unique plan-cache scope.
func (rs *RuleSet) cacheScope() uint64 { rs.index(); return rs.cacheID }

// CacheScope exposes the rule set's plan-cache scope. The scope is
// process-unique (a counter, not a content hash), so it never travels
// on the wire: the cluster peer protocol identifies rule sets by world
// name and each node resolves the name to its own local scope.
func (rs *RuleSet) CacheScope() uint64 { return rs.cacheScope() }

// idProps returns the properties that identify an expression of op in
// duplicate detection (and in the plan-cache fingerprint): the
// operation's declared additional parameters intersected with the
// argument class, or the whole argument class when none are declared.
func (rs *RuleSet) idProps(op *core.Operation) []core.PropID {
	if len(op.Args) == 0 {
		return rs.Class.Arg
	}
	var out []core.PropID
	for _, p := range op.Args {
		if rs.Class.IsArg(p) {
			out = append(out, p)
		}
	}
	return out
}

// transFor returns the transformation rules whose LHS root is op.
func (rs *RuleSet) transFor(op *core.Operation) []transEntry { return rs.index().trans[op] }

// implsFor returns the implementation rules for op.
func (rs *RuleSet) implsFor(op *core.Operation) []implEntry { return rs.index().impls[op] }

// NewRuleSet returns an empty rule set with a default classification
// (cost = the algebra's single COST property, everything else argument).
func NewRuleSet(a *core.Algebra) *RuleSet {
	rs := &RuleSet{Algebra: a, MonotonicCosts: true}
	costs := a.Props.CostProps()
	if len(costs) == 1 {
		rs.Class.Cost = costs[0]
	} else {
		rs.Class.Cost = core.NoProp
	}
	for i := 0; i < a.Props.Len(); i++ {
		id := core.PropID(i)
		if id != rs.Class.Cost {
			rs.Class.Arg = append(rs.Class.Arg, id)
		}
	}
	return rs
}

// SetPhys moves the given properties from the argument class to the
// physical class; hand-coded rule sets use it to state their
// classification explicitly.
func (rs *RuleSet) SetPhys(ids ...core.PropID) {
	for _, id := range ids {
		if !rs.Class.IsPhys(id) {
			rs.Class.Phys = append(rs.Class.Phys, id)
		}
		var arg []core.PropID
		for _, a := range rs.Class.Arg {
			if a != id {
				arg = append(arg, a)
			}
		}
		rs.Class.Arg = arg
	}
}

// AddTrans appends a transformation rule.
func (rs *RuleSet) AddTrans(r *TransRule) *TransRule { rs.Trans = append(rs.Trans, r); return r }

// AddImpl appends an implementation rule.
func (rs *RuleSet) AddImpl(r *ImplRule) *ImplRule { rs.Impls = append(rs.Impls, r); return r }

// AddEnforcer appends an enforcer.
func (rs *RuleSet) AddEnforcer(e *Enforcer) *Enforcer {
	rs.Enforcers = append(rs.Enforcers, e)
	return e
}

// Validate checks engine-level requirements: a cost property is set, rule
// patterns use only operators on T-rule sides, impl rules have Pre/Post
// hooks, enforcer property lists are physical.
func (rs *RuleSet) Validate() []error {
	var errs []error
	bad := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if rs.Class.Cost == core.NoProp {
		bad("volcano: no cost property classified")
	}
	for _, r := range rs.Trans {
		if r.LHS == nil || r.RHS == nil || r.LHS.IsVar() {
			bad("volcano: trans_rule %s has malformed patterns", r.Name)
			continue
		}
		for _, op := range append(r.LHS.Ops(), r.RHS.Ops()...) {
			if op.Kind != core.Operator {
				bad("volcano: trans_rule %s mentions non-operator %s", r.Name, op.Name)
			}
		}
	}
	for _, r := range rs.Impls {
		if r.Op == nil || r.Alg == nil || r.Op.Kind != core.Operator || r.Alg.Kind != core.Algorithm {
			bad("volcano: impl_rule %s has malformed operator/algorithm", r.Name)
		}
		if r.Pre == nil || r.Post == nil {
			bad("volcano: impl_rule %s needs Pre and Post hooks", r.Name)
		}
	}
	for _, e := range rs.Enforcers {
		if e.Alg == nil || e.Alg.Kind != core.Algorithm {
			bad("volcano: enforcer %s has no algorithm", e.Name)
		}
		if e.Pre == nil || e.Post == nil {
			bad("volcano: enforcer %s needs Pre and Post hooks", e.Name)
		}
		for _, p := range e.Props {
			if !rs.Class.IsPhys(p) {
				bad("volcano: enforcer %s enforces non-physical property %s",
					e.Name, rs.Algebra.Props.At(p).Name)
			}
		}
	}
	return errs
}
