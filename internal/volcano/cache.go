package volcano

import (
	"context"
	"fmt"
	"time"

	"prairie/internal/core"
	"prairie/internal/obs"
	"prairie/internal/plancache"
)

// PlanCache is the engine-facing handle of the cross-query plan cache:
// a sharded LRU of extracted winner plans keyed by canonical query
// fingerprint, required physical properties, budget class, rule-set
// scope, and cache epoch, with singleflight collapsing of concurrent
// misses (see internal/plancache for the storage layer).
//
// One PlanCache may be shared by any number of optimizers and batch
// workers. A nil *PlanCache — or NewPlanCache(0) — is a valid disabled
// handle that leaves the engine byte-identical to a cacheless build.
type PlanCache struct {
	c *plancache.Cache[cachedPlan]
}

// NewPlanCache returns a cache holding up to capacity plans;
// capacity <= 0 yields a disabled handle.
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{c: plancache.New[cachedPlan](capacity)}
}

// Enabled reports whether the cache stores anything.
func (pc *PlanCache) Enabled() bool { return pc != nil && pc.c.Enabled() }

// Capacity returns the configured plan budget (0 when disabled).
func (pc *PlanCache) Capacity() int {
	if pc == nil {
		return 0
	}
	return pc.c.Capacity()
}

// Len returns the number of cached plans.
func (pc *PlanCache) Len() int {
	if pc == nil {
		return 0
	}
	return pc.c.Len()
}

// Invalidate starts a new cache generation; call it when the catalog
// backing the rule set changes in place. (A freshly built RuleSet needs
// no invalidation — every instance has its own scope.) It returns the
// new epoch.
func (pc *PlanCache) Invalidate() uint64 {
	if pc == nil {
		return 0
	}
	return pc.c.Invalidate()
}

// Epoch returns the current cache generation without the counter scan
// of Snapshot (the flight recorder stamps it on every request).
func (pc *PlanCache) Epoch() uint64 {
	if pc == nil {
		return 0
	}
	return pc.c.Epoch()
}

// Snapshot returns the cache's counters.
func (pc *PlanCache) Snapshot() plancache.Stats {
	if pc == nil {
		return plancache.Stats{}
	}
	return pc.c.Snapshot()
}

// String renders a one-line summary for interactive inspection.
func (pc *PlanCache) String() string {
	if !pc.Enabled() {
		return "plancache: disabled"
	}
	s := pc.Snapshot()
	return fmt.Sprintf(
		"plancache: %d/%d entries, epoch %d; hits=%d misses=%d puts=%d evictions=%d peeks=%d/%d flight waits=%d shared=%d",
		s.Entries, pc.Capacity(), s.Epoch, s.Hits, s.Misses, s.Puts,
		s.Evictions, s.PeekHits, s.Peeks, s.FlightWaits, s.FlightShared)
}

// cachedPlan is one cache entry: the winner plan detached from any memo,
// its cost, and the memo-shape statistics of the cold run that produced
// it. Hits copy the shape counters into the run's Stats so downstream
// accounting (the experiments' group-equality checks, batch aggregates)
// sees the search the plan stands for.
type cachedPlan struct {
	plan      *PExpr
	cost      float64
	groups    int
	exprs     int
	merges    int
	memoBytes int64
	// Tier provenance (zero values describe a classic full-search
	// entry, so untiered callers are unaffected): tier says which
	// planner produced the plan, refined marks entries hot-swapped in
	// by a background refinement, and greedyCost preserves the replaced
	// greedy plan's cost on refined entries (cost is then the full
	// plan's), so hits can report the measured greedy-vs-full delta.
	tier       TierMode
	refined    bool
	greedyCost float64
	// replica marks a hot-key replica of an entry owned by a remote
	// cluster shard (zero off-cluster): hits on it count as ReplicaHits
	// so the replication tier's effect is observable.
	replica bool
}

// cacheSeed is one warm-start candidate: a proper subtree of the query,
// remembered by the memo group it was interned into plus its cache
// fingerprint. findBest consults these to seed branch-and-bound with a
// cached incumbent (see lookupSeed).
type cacheSeed struct {
	gid   GroupID
	fp    uint64
	canon string
}

// budgetClass renders the options fields that can change which plan a
// search produces; it is folded into the cache key so differently
// bounded searches never share entries.
func budgetClass(opts Options) string {
	b := opts.Budget
	if b.IsZero() && opts.Explorer == ExplorerWorklist {
		return "0"
	}
	return fmt.Sprintf("t%s,e%d,g%d,f%d,x%d",
		b.Timeout, b.MaxExprs, b.MaxGroups, b.MaxRuleFirings, opts.Explorer)
}

// rootKey builds the cache key of a whole query.
func (o *Optimizer) rootKey(tree *core.Expr, req *core.Descriptor) plancache.Key {
	fp, canon := o.RS.fingerprintNode(tree)
	return o.finishKey(fp, canon, req)
}

// finishKey extends a tree fingerprint with the required physical
// properties and the budget class, and stamps scope and epoch.
func (o *Optimizer) finishKey(fp uint64, canon string, req *core.Descriptor) plancache.Key {
	phys := o.RS.Class.Phys
	bstr := budgetClass(o.Opts)
	fp = core.HashCombine(fp, req.HashOn(phys))
	fp = core.HashCombine(fp, hashLeafName(bstr))
	return plancache.Key{
		Fingerprint: fp,
		Canon:       canon + "|req:" + reqCanon(req, phys) + "|b:" + bstr,
		Scope:       o.RS.cacheScope(),
		Epoch:       o.Opts.Cache.c.Epoch(),
	}
}

// cachedOptimize wraps one optimization in the plan cache; it is the
// dispatch target of OptimizeContext whenever Options.Cache is enabled.
//
//   - Full hit: the cached plan is cloned out, no search runs.
//   - Miss (leader): the cold search runs with warm-start seeds
//     installed; a completed (non-degraded) result is published to the
//     cache and to every follower waiting on the same key.
//   - Miss (follower): wait for the leader; adopt its shared result, or
//     run an independent search when the leader declined to share
//     (degraded or failed runs are never cached).
func (o *Optimizer) cachedOptimize(ctx context.Context, tree *core.Expr, req *core.Descriptor) (*PExpr, error) {
	if req == nil {
		req = core.NewDescriptor(o.RS.Algebra.Props)
	}
	// A stale-epoch answer from the owning peer means the cluster layer
	// just advanced the local epoch: rebuild the key under the new
	// generation and retry once. The bound matters — a peer that keeps
	// racing ahead must not starve this request, so the second attempt
	// treats a further stale answer as a plain miss.
	plan, err, retry := o.cachedOptimizeOnce(ctx, tree, req, true)
	if retry {
		plan, err, _ = o.cachedOptimizeOnce(ctx, tree, req, false)
	}
	return plan, err
}

func (o *Optimizer) cachedOptimizeOnce(ctx context.Context, tree *core.Expr, req *core.Descriptor, allowStaleRetry bool) (*PExpr, error, bool) {
	pc := o.Opts.Cache
	ph := o.Opts.Phases
	var phStart time.Time
	if ph != nil {
		phStart = time.Now()
	}
	key := o.rootKey(tree, req)
	// A full-search request must not adopt a greedy fast-path entry:
	// the predicate turns such an entry into a miss for this caller
	// while anytime requests keep hitting it, and the completed search
	// below upgrades the entry in place.
	a := pc.c.AcquireIf(key, func(cp cachedPlan) bool { return cp.tier == TierFull })
	if a.Hit {
		o.Stats.CacheHits++
		if a.Value.replica {
			o.Stats.ReplicaHits++
		}
		plan := o.cacheHit(a.Value)
		if ph != nil {
			ph.Observe(obs.PhaseCache, phStart, time.Since(phStart))
		}
		return plan, nil, false
	}
	if !a.Leader {
		o.Stats.FlightWaits++
		cp, ok, err := a.Wait(ctx)
		if ph != nil {
			// The flight wait is cache time: the request was parked
			// behind a concurrent identical search.
			ph.Observe(obs.PhaseCache, phStart, time.Since(phStart))
		}
		if err == nil && ok && cp.tier == TierFull {
			o.Stats.FlightShared++
			o.Stats.CacheHits++
			if cp.replica {
				o.Stats.ReplicaHits++
			}
			return o.cacheHit(cp), nil, false
		}
		// Leader declined to share, shared a plan of the wrong tier (a
		// greedy-tier leader publishing its fast-path plan), or our wait
		// was cancelled: run an independent search (a cancelled context
		// degrades it per OptimizeContext semantics) and publish the
		// full-tier result ourselves.
		o.Stats.CacheMisses++
		plan, err := o.optimizeContext(ctx, tree, req)
		if err == nil && plan != nil && !o.Stats.Degraded {
			cp := cachedPlan{
				plan:      plan.Clone(),
				cost:      plan.Cost(o.RS.Class),
				groups:    o.Stats.Groups,
				exprs:     o.Stats.Exprs,
				merges:    o.Stats.Merges,
				memoBytes: o.Stats.MemoBytes,
			}
			if rem := o.Opts.Remote; rem != nil {
				// A remotely-owned entry's capacity belongs to its shard:
				// offer it to the owner and store locally only when the
				// cluster layer says so (self-owned or hot).
				if rem.Offer(key, entryOf(cp)) {
					pc.c.Put(key, cp)
				}
			} else {
				pc.c.Put(key, cp)
			}
		}
		return plan, err, false
	}
	o.Stats.CacheMisses++
	// A panicking rule hook must not wedge followers: the deferred
	// no-share Complete is idempotent, so the success path below wins
	// when it runs first. Registered before the peer fetch so a panic
	// there cannot wedge them either.
	defer a.Complete(cachedPlan{}, false)
	remoteLead := false
	if rem := o.Opts.Remote; rem != nil {
		// Local miss, and this request leads the local flight: ask the
		// key's owning peer before optimizing. The fetch happens inside
		// the cache phase — a peer fill is cache time, not search time.
		res := rem.Fetch(ctx, key)
		switch res.Outcome {
		case RemoteHit, RemoteCollapsed:
			cp := cachedPlanOf(res.Entry, res.StoreLocal)
			a.CompleteShared(cp, res.StoreLocal)
			o.Stats.PeerFills++
			if res.Outcome == RemoteCollapsed {
				o.Stats.FlightShared++
			}
			plan := o.cacheHit(cp)
			if ph != nil {
				ph.Observe(obs.PhaseCache, phStart, time.Since(phStart))
			}
			return plan, nil, false
		case RemoteStale:
			if allowStaleRetry {
				// The cluster layer advanced our epoch; release the dead
				// flight and let the caller rebuild the key.
				a.Complete(cachedPlan{}, false)
				return nil, nil, true
			}
			// Out of retries: fall through and optimize under the stale
			// key (the entry becomes unreachable garbage, never a wrong
			// answer — keys embed their epoch).
		}
		// RemoteLead / RemoteMiss / RemoteError / RemoteNone: optimize
		// locally. A lead's result is offered back to the owner below,
		// completing the cluster-wide flight.
		remoteLead = res.Outcome == RemoteLead
	}
	if ph != nil {
		ph.Observe(obs.PhaseCache, phStart, time.Since(phStart))
	}
	o.warm = true
	plan, err := o.optimizeContext(ctx, tree, req)
	o.warm = false
	if err != nil || plan == nil || o.Stats.Degraded {
		if remoteLead {
			// The owner granted this node the cluster-wide lease; with
			// no result coming, release its parked followers now rather
			// than after the lease TTL.
			o.Opts.Remote.Abandon(key)
		}
		a.Complete(cachedPlan{}, false)
		return plan, err, false
	}
	cp := cachedPlan{
		plan:      plan.Clone(),
		cost:      plan.Cost(o.RS.Class),
		groups:    o.Stats.Groups,
		exprs:     o.Stats.Exprs,
		merges:    o.Stats.Merges,
		memoBytes: o.Stats.MemoBytes,
	}
	if rem := o.Opts.Remote; rem != nil {
		// Share with local followers unconditionally; store locally only
		// when the cluster layer keeps the capacity here (self-owned key
		// or hot-promoted replica). The offer also completes any lease
		// the owner granted this node.
		a.CompleteShared(cp, rem.Offer(key, entryOf(cp)))
	} else {
		a.Complete(cp, true)
	}
	return plan, nil, false
}

// cacheHit materializes a cache entry as this run's result: the plan is
// cloned (callers own their plans) and the cold run's memo-shape
// counters are copied into Stats, standing in for the search that was
// skipped.
func (o *Optimizer) cacheHit(cp cachedPlan) *PExpr {
	o.Stats.Groups = cp.groups
	o.Stats.Exprs = cp.exprs
	o.Stats.Merges = cp.merges
	o.Stats.MemoBytes = cp.memoBytes
	// Tier provenance flows to the caller: a greedy entry reports its
	// tier, a refined entry its measured greedy-vs-full costs. Classic
	// full entries leave all of this zero, keeping untiered runs
	// byte-identical.
	if cp.tier == TierGreedy {
		o.Stats.Tier = TierGreedy.String()
		o.Stats.GreedyCost = cp.cost
	}
	if cp.refined {
		o.Stats.Refined = true
		o.Stats.GreedyCost = cp.greedyCost
		o.Stats.FullCost = cp.cost
	}
	return cp.plan.Clone()
}

// installSeeds records every proper interior subtree of the query as a
// warm-start candidate. Called after the tree is interned (Insert is
// idempotent, so re-interning subtrees only reads the memo); group ids
// are canonicalized again at lookup time because exploration merges
// groups.
func (o *Optimizer) installSeeds(tree *core.Expr) {
	o.seeds = o.seeds[:0]
	var walk func(e *core.Expr, root bool)
	walk = func(e *core.Expr, root bool) {
		if e.IsLeaf() {
			return
		}
		if !root {
			fp, canon := o.RS.fingerprintNode(e)
			o.seeds = append(o.seeds, cacheSeed{gid: o.Memo.Insert(e), fp: fp, canon: canon})
		}
		for _, k := range e.Kids {
			walk(k, false)
		}
	}
	walk(tree, true)
}

// lookupSeed probes the cache for a winner of group g under req: a hit
// means some earlier query's whole search problem was exactly this
// subproblem, so its cached winner is a valid incumbent — findBest
// starts branch-and-bound from its real cost instead of +Inf, and any
// strictly cheaper plan still replaces it (costs are monotonic, so a
// plan the seed prunes could never have beaten the seed). Probes use
// Peek, not Get: subtree lookups must not distort the hit rate.
func (o *Optimizer) lookupSeed(g GroupID, req *core.Descriptor) (*PExpr, float64, bool) {
	pc := o.Opts.Cache
	for i := range o.seeds {
		s := &o.seeds[i]
		if o.Memo.Find(s.gid) != g {
			continue
		}
		if cp, ok := pc.c.Peek(o.finishKey(s.fp, s.canon, req)); ok {
			o.Stats.WarmSeeds++
			return cp.plan.Clone(), cp.cost, true
		}
	}
	return nil, 0, false
}
