package volcano

import (
	"strings"
	"testing"
	"time"
)

// TestDistinctTransFired: the accessor counts rules with at least one
// passing cond_code, ignores zero entries, and is what Stats.String()
// prints for "trans ... fired=".
func TestDistinctTransFired(t *testing.T) {
	s := NewStats()
	if got := s.DistinctTransFired(); got != 0 {
		t.Errorf("empty stats: DistinctTransFired() = %d, want 0", got)
	}
	s.TransFired["join_commute"] = 5
	s.TransFired["join_assoc"] = 1
	s.TransFired["never_passed"] = 0
	if got := s.DistinctTransFired(); got != 2 {
		t.Errorf("DistinctTransFired() = %d, want 2", got)
	}
	if !strings.Contains(s.String(), "fired=2;") {
		t.Errorf("String() does not use the accessor value:\n%s", s.String())
	}
}

// TestStatsMerge covers the batch-aggregation primitive: counters and
// per-rule maps sum, MaxQueue takes the max, degradations tally by
// cause without double counting nested aggregates, and merging into a
// fresh Stats leaves the source untouched.
func TestStatsMerge(t *testing.T) {
	a := NewStats()
	a.Groups, a.Exprs, a.MaxQueue, a.CostedPlans = 10, 40, 8, 100
	a.TransFired["join_commute"] = 3
	a.TransTime = map[string]time.Duration{"join_commute": 2 * time.Millisecond}

	b := NewStats()
	b.Groups, b.Exprs, b.MaxQueue, b.CostedPlans = 5, 20, 12, 50
	b.TransFired["join_commute"] = 2
	b.TransFired["join_assoc"] = 7
	b.TransTime = map[string]time.Duration{"join_commute": time.Millisecond}
	b.Degraded = true
	b.DegradeCause = CauseDeadline
	b.DegradePath = DegradePathMemo

	a.Merge(b)
	if a.Groups != 15 || a.Exprs != 60 || a.CostedPlans != 150 {
		t.Errorf("sums wrong: groups=%d exprs=%d costed=%d", a.Groups, a.Exprs, a.CostedPlans)
	}
	if a.MaxQueue != 12 {
		t.Errorf("MaxQueue = %d, want max 12", a.MaxQueue)
	}
	if a.TransFired["join_commute"] != 5 || a.TransFired["join_assoc"] != 7 {
		t.Errorf("per-rule counts not summed: %v", a.TransFired)
	}
	if a.TransTime["join_commute"] != 3*time.Millisecond {
		t.Errorf("per-rule time not summed: %v", a.TransTime)
	}
	if !a.Degraded || a.DegradeCause != CauseDeadline || a.DegradePath != DegradePathMemo {
		t.Errorf("degradation identity not adopted: %+v", a)
	}
	if a.DegradedRuns[CauseDeadline.String()] != 1 {
		t.Errorf("DegradedRuns = %v, want one deadline entry", a.DegradedRuns)
	}
	// b is untouched.
	if b.TransFired["join_commute"] != 2 || b.DegradedRuns != nil {
		t.Errorf("Merge mutated its argument: %+v", b)
	}

	// Merging an aggregate folds its tally without re-counting its
	// Degraded flag.
	c := NewStats()
	c.Degraded = true
	c.DegradeCause = CauseDeadline
	c.DegradedRuns = map[string]int{CauseDeadline.String(): 4, CauseMaxExprs.String(): 1}
	a.Merge(c)
	if a.DegradedRuns[CauseDeadline.String()] != 5 || a.DegradedRuns[CauseMaxExprs.String()] != 1 {
		t.Errorf("aggregate merge double counted: %v", a.DegradedRuns)
	}

	// Merge(nil) is a no-op.
	before := a.String()
	a.Merge(nil)
	if a.String() != before {
		t.Error("Merge(nil) changed the stats")
	}
}

// TestStatsCacheCounters: the plan-cache counters survive Merge (so
// BatchReport aggregates and experiment tables see them) and render in
// String only when a cache was actually in play — cacheless runs stay
// byte-identical to previous releases.
func TestStatsCacheCounters(t *testing.T) {
	plain := NewStats()
	if strings.Contains(plain.String(), "cache:") {
		t.Error("cacheless stats render a cache line")
	}

	a := NewStats()
	a.CacheHits, a.CacheMisses, a.WarmSeeds = 3, 1, 2
	b := NewStats()
	b.CacheHits, b.CacheMisses, b.WarmSeeds = 1, 2, 5
	b.FlightWaits, b.FlightShared = 4, 3
	a.Merge(b)
	if a.CacheHits != 4 || a.CacheMisses != 3 || a.WarmSeeds != 7 {
		t.Errorf("cache counters not summed: hits=%d misses=%d seeds=%d",
			a.CacheHits, a.CacheMisses, a.WarmSeeds)
	}
	if a.FlightWaits != 4 || a.FlightShared != 3 {
		t.Errorf("flight counters not summed: waits=%d shared=%d",
			a.FlightWaits, a.FlightShared)
	}
	s := a.String()
	if !strings.Contains(s, "cache: hits=4 misses=3 seeds=7 waits=4 shared=3") {
		t.Errorf("String drops cache counters:\n%s", s)
	}
}
