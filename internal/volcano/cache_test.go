package volcano

import (
	"strings"
	"testing"

	"prairie/internal/core"
)

// optCached runs one optimization on a fresh optimizer with the given
// cache (nil for a cold run) and returns the plan and stats.
func optCached(t *testing.T, w *testWorld, tree *core.Expr, pc *PlanCache) (*PExpr, *Stats) {
	t.Helper()
	o := NewOptimizer(w.rs)
	o.Opts.Cache = pc
	plan, err := o.Optimize(tree.Clone(), nil)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return plan, o.Stats
}

func TestFingerprintDeterministic(t *testing.T) {
	w := newTestWorld()
	q1 := w.chain(8, 4, 2)
	q2 := w.chain(8, 4, 2)
	h1, c1 := w.rs.fingerprintNode(q1)
	h2, c2 := w.rs.fingerprintNode(q2)
	if h1 != h2 || c1 != c2 {
		t.Fatalf("identical trees fingerprint differently:\n%016x %s\n%016x %s", h1, c1, h2, c2)
	}
	if !strings.Contains(c1, "JOIN") || !strings.Contains(c1, "R1") {
		t.Fatalf("canon misses structure: %s", c1)
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	w := newTestWorld()
	h1, c1 := w.rs.fingerprintNode(w.chain(8, 4, 2))
	h2, c2 := w.rs.fingerprintNode(w.chain(8, 4, 3)) // different cardinality
	if h1 == h2 && c1 == c2 {
		t.Fatal("queries with different catalog stats share a fingerprint")
	}
	h3, c3 := w.rs.fingerprintNode(w.chain(8, 4))
	if h1 == h3 && c1 == c3 {
		t.Fatal("queries of different size share a fingerprint")
	}
}

// TestFingerprintCommutative: JOIN has an unconditional commute rule in
// the test world, so A JOIN B and B JOIN A (same predicate, same
// logical properties) must collide.
func TestFingerprintCommutative(t *testing.T) {
	w := newTestWorld()
	a := w.retOf(w.leaf("A", 8, core.A("A", "x")))
	b := w.retOf(w.leaf("B", 4, core.A("B", "x")))
	pred := core.EqAttr(core.A("A", "x"), core.A("B", "x"))
	ab := w.joinOf(a, b, pred)
	ba := w.joinOf(b, a, pred)
	hab, cab := w.rs.fingerprintNode(ab)
	hba, cba := w.rs.fingerprintNode(ba)
	if hab != hba {
		t.Errorf("commuted join hashes differ: %016x vs %016x", hab, hba)
	}
	if cab != cba {
		t.Errorf("commuted join canons differ:\n%s\n%s", cab, cba)
	}
}

func TestCommutedOpDetection(t *testing.T) {
	w := newTestWorld()
	if !w.rs.commutative(w.join) {
		t.Error("join_commute not detected as unconditional commute")
	}
	if w.rs.commutative(w.ret) {
		t.Error("RET misdetected as commutative")
	}
	// A conditional commute must NOT enable input sorting: the condition
	// may hold for some descriptors only.
	guarded := &TransRule{
		Name: "guarded_commute",
		LHS:  core.POp(w.join, "D3", core.PVar(1, "D1"), core.PVar(2, "D2")),
		RHS:  core.POp(w.join, "D4", core.PVar(2, ""), core.PVar(1, "")),
		Cond: func(b *TBinding) bool { return false },
	}
	if commutedOp(guarded) != nil {
		t.Error("conditional rule detected as commute")
	}
	identity := &TransRule{
		Name: "not_a_commute",
		LHS:  core.POp(w.join, "D3", core.PVar(1, "D1"), core.PVar(2, "D2")),
		RHS:  core.POp(w.join, "D4", core.PVar(1, ""), core.PVar(2, "")),
	}
	if commutedOp(identity) != nil {
		t.Error("identity rewrite detected as commute")
	}
}

// TestPlanCacheHit: the second optimization of a structurally equal
// query is served from the cache — byte-identical plan, no search, and
// the cold run's memo-shape stats copied in.
func TestPlanCacheHit(t *testing.T) {
	w := newTestWorld()
	q := w.chain(8, 4, 2, 6)
	cold, coldStats := optCached(t, w, q, nil)

	pc := NewPlanCache(64)
	p1, s1 := optCached(t, w, q, pc)
	if s1.CacheMisses != 1 || s1.CacheHits != 0 {
		t.Fatalf("first run: hits=%d misses=%d, want 0/1", s1.CacheHits, s1.CacheMisses)
	}
	p2, s2 := optCached(t, w, q, pc)
	if s2.CacheHits != 1 || s2.CacheMisses != 0 {
		t.Fatalf("second run: hits=%d misses=%d, want 1/0", s2.CacheHits, s2.CacheMisses)
	}
	if p1.Format() != cold.Format() {
		t.Errorf("miss-path plan differs from cold plan:\n%s\nvs\n%s", p1.Format(), cold.Format())
	}
	if p2.Format() != cold.Format() {
		t.Errorf("hit-path plan differs from cold plan:\n%s\nvs\n%s", p2.Format(), cold.Format())
	}
	if s2.Groups != coldStats.Groups || s2.Exprs != coldStats.Exprs {
		t.Errorf("hit stats lost memo shape: groups=%d exprs=%d, want %d/%d",
			s2.Groups, s2.Exprs, coldStats.Groups, coldStats.Exprs)
	}
	if st := pc.Snapshot(); st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("cache counters: %+v", st)
	}
	// The cached entry must be immune to caller mutation of returned
	// plans.
	p2.D.SetFloat(w.nr, -1)
	p3, _ := optCached(t, w, q, pc)
	if p3.Format() != cold.Format() {
		t.Error("cached plan corrupted by caller mutation")
	}
}

// TestPlanCacheCommutativeHit: optimizing B JOIN A after A JOIN B is a
// full hit, and the served plan equals B JOIN A's own cold plan.
func TestPlanCacheCommutativeHit(t *testing.T) {
	w := newTestWorld()
	a := w.retOf(w.leaf("A", 8, core.A("A", "x")))
	b := w.retOf(w.leaf("B", 4, core.A("B", "x")))
	pred := core.EqAttr(core.A("A", "x"), core.A("B", "x"))
	ab := w.joinOf(a, b, pred)
	ba := w.joinOf(b, a, pred)

	coldBA, _ := optCached(t, w, ba, nil)
	pc := NewPlanCache(64)
	optCached(t, w, ab, pc)
	pBA, s := optCached(t, w, ba, pc)
	if s.CacheHits != 1 {
		t.Fatalf("commuted query missed: %+v", pc.Snapshot())
	}
	// The served plan carries the first query's descriptors, whose
	// attribute lists are set-equal but may render in a different
	// order; compare structure, cost, and descriptor equality rather
	// than bytes (byte identity is asserted for same-tree hits in
	// TestPlanCacheHit).
	if pBA.String() != coldBA.String() {
		t.Errorf("commuted hit plan structure differs: %s vs %s", pBA, coldBA)
	}
	if got, want := pBA.Cost(w.rs.Class), coldBA.Cost(w.rs.Class); got != want {
		t.Errorf("commuted hit plan cost %v, want %v", got, want)
	}
	var check func(a, b *PExpr)
	check = func(a, b *PExpr) {
		if !a.D.EqualOn(b.D, []core.PropID{w.ord, w.jp, w.at, w.nr, w.c}) {
			t.Errorf("descriptors differ: %s vs %s", a.D, b.D)
		}
		for i := range a.Kids {
			check(a.Kids[i], b.Kids[i])
		}
	}
	check(pBA, coldBA)
}

// TestPlanCacheWarmStart: with the prefix subqueries cached, a cold
// search of a larger query seeds branch-and-bound from their winners —
// WarmSeeds fires, pruning does not regress, and the plan stays
// byte-identical to the fully cold plan.
func TestPlanCacheWarmStart(t *testing.T) {
	w := newTestWorld()
	cards := []float64{8, 4, 2, 6, 3}
	cold, coldStats := optCached(t, w, w.chain(cards...), nil)

	pc := NewPlanCache(64)
	for n := 2; n < len(cards); n++ {
		optCached(t, w, w.chain(cards[:n]...), pc)
	}
	warm, warmStats := optCached(t, w, w.chain(cards...), pc)
	if warmStats.CacheMisses != 1 {
		t.Fatalf("full query unexpectedly hit: %+v", warmStats)
	}
	if warmStats.WarmSeeds == 0 {
		t.Fatal("no warm-start seeds fired despite cached prefixes")
	}
	if warm.Format() != cold.Format() {
		t.Errorf("warm-started plan differs from cold plan:\n%s\nvs\n%s",
			warm.Format(), cold.Format())
	}
	if warmStats.Pruned < coldStats.Pruned {
		t.Errorf("warm start reduced pruning: %d < %d", warmStats.Pruned, coldStats.Pruned)
	}
	t.Logf("warm seeds=%d pruned warm=%d cold=%d",
		warmStats.WarmSeeds, warmStats.Pruned, coldStats.Pruned)
}

// TestPlanCacheNeutral: a nil cache and a disabled handle both leave
// plans and rendered stats byte-identical to each other.
func TestPlanCacheNeutral(t *testing.T) {
	w := newTestWorld()
	q := w.chain(8, 4, 2, 6)
	pNil, sNil := optCached(t, w, q, nil)
	pOff, sOff := optCached(t, w, q, NewPlanCache(0))
	if pNil.Format() != pOff.Format() {
		t.Error("disabled cache changed the plan")
	}
	if sNil.String() != sOff.String() {
		t.Errorf("disabled cache changed rendered stats:\n%s\nvs\n%s", sNil, sOff)
	}
	if strings.Contains(sOff.String(), "cache:") {
		t.Error("cacheless stats render a cache line")
	}
}

// TestPlanCacheDegradedNotCached: a degraded search must not publish
// its plan — the next identical query misses and searches again.
func TestPlanCacheDegradedNotCached(t *testing.T) {
	w := newTestWorld()
	q := w.chain(8, 4, 2, 6, 3, 5)
	pc := NewPlanCache(64)
	run := func() *Stats {
		o := NewOptimizer(w.rs)
		o.Opts.Cache = pc
		o.Opts.Budget = Budget{MaxExprs: 10}
		if _, err := o.Optimize(q.Clone(), nil); err != nil {
			t.Fatalf("degraded optimize: %v", err)
		}
		return o.Stats
	}
	s1 := run()
	if !s1.Degraded {
		t.Skip("budget did not trip; cannot exercise the degraded path")
	}
	if pc.Len() != 0 {
		t.Fatalf("degraded result was cached (%d entries)", pc.Len())
	}
	s2 := run()
	if s2.CacheHits != 0 || s2.CacheMisses != 1 {
		t.Errorf("second degraded run: hits=%d misses=%d, want 0/1", s2.CacheHits, s2.CacheMisses)
	}
}

// TestPlanCacheEpochInvalidation: Invalidate cuts off all prior
// entries.
func TestPlanCacheEpochInvalidation(t *testing.T) {
	w := newTestWorld()
	q := w.chain(8, 4, 2)
	pc := NewPlanCache(64)
	optCached(t, w, q, pc)
	if _, s := optCached(t, w, q, pc); s.CacheHits != 1 {
		t.Fatal("no hit before invalidation")
	}
	pc.Invalidate()
	if _, s := optCached(t, w, q, pc); s.CacheHits != 0 || s.CacheMisses != 1 {
		t.Fatal("stale entry served after Invalidate")
	}
	if _, s := optCached(t, w, q, pc); s.CacheHits != 1 {
		t.Fatal("no hit after re-population in the new epoch")
	}
}

// TestPlanCacheScopeSeparation: two rule-set instances never share
// entries, even when structurally identical — their rule hooks may
// close over different catalogs.
func TestPlanCacheScopeSeparation(t *testing.T) {
	w1 := newTestWorld()
	w2 := newTestWorld()
	pc := NewPlanCache(64)
	optCached(t, w1, w1.chain(8, 4, 2), pc)
	_, s := optCached(t, w2, w2.chain(8, 4, 2), pc)
	if s.CacheHits != 0 {
		t.Fatal("cache entry leaked across rule-set instances")
	}
}

// TestBudgetClassSeparation: the same query under a different budget
// class is a different cache entry.
func TestBudgetClassSeparation(t *testing.T) {
	w := newTestWorld()
	q := w.chain(8, 4, 2)
	pc := NewPlanCache(64)
	optCached(t, w, q, pc)
	o := NewOptimizer(w.rs)
	o.Opts.Cache = pc
	o.Opts.Budget = Budget{MaxExprs: 100000}
	if _, err := o.Optimize(q.Clone(), nil); err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if o.Stats.CacheHits != 0 || o.Stats.CacheMisses != 1 {
		t.Errorf("budgeted run reused unbudgeted entry: hits=%d misses=%d",
			o.Stats.CacheHits, o.Stats.CacheMisses)
	}
}
