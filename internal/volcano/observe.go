package volcano

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"prairie/internal/obs"
)

// beginObs caches the run's observability configuration on the
// optimizer so hot loops pay a single branch per guard (the same
// pattern as the budget checkpoints). Called once per OptimizeContext.
func (o *Optimizer) beginObs() {
	ob := o.Opts.Obs
	o.timing = ob.TimingEnabled()
	o.tr = ob.TracerOrNil()
	o.tid = o.Opts.TraceTID
	if o.tid == 0 {
		o.tid = 1
	}
}

// addImplTime accumulates costing self time for one impl_rule.
func (o *Optimizer) addImplTime(rule string, d time.Duration) {
	if o.Stats.ImplTime == nil {
		o.Stats.ImplTime = map[string]time.Duration{}
	}
	o.Stats.ImplTime[rule] += d
}

// recordRun flushes one finished optimization into the metrics
// registry. It runs only at run end — never on hot paths — so per-rule
// counters cost one map walk per optimization, not one atomic per
// firing.
func recordRun(ob *obs.Observer, s *Stats, elapsed time.Duration, err error) {
	reg := ob.MetricsOrNil()
	if reg == nil {
		return
	}
	reg.Counter("prairie_optimize_total").Inc()
	if err != nil {
		reg.Counter("prairie_optimize_errors_total").Inc()
	}
	reg.Histogram("prairie_optimize_seconds", nil).Observe(elapsed.Seconds())
	if s == nil {
		return
	}
	if s.Degraded {
		reg.Counter(obs.Label("prairie_optimize_degraded_total", "cause", s.DegradeCause.String())).Inc()
	}
	reg.Counter("prairie_memo_groups_total").Add(int64(s.Groups))
	reg.Counter("prairie_memo_exprs_total").Add(int64(s.Exprs))
	reg.Counter("prairie_memo_merges_total").Add(int64(s.Merges))
	reg.Counter("prairie_budget_checkpoints_total").Add(int64(s.BudgetChecks))
	reg.Counter("prairie_costed_plans_total").Add(int64(s.CostedPlans))
	reg.Counter("prairie_pruned_total").Add(int64(s.Pruned))
	if s.Tier != "" || s.Refined {
		// Tiered-planner provenance: which tier answered, and whether
		// the plan came from a background-refined entry. Full-tier runs
		// leave both zero, so untiered metrics are unchanged.
		reg.Counter(obs.Label("prairie_tier_plans_total", "tier", tierOrFull(s.Tier))).Inc()
		if s.Refined {
			reg.Counter("prairie_tier_refined_hits_total").Inc()
		}
	}
	if s.CacheHits+s.CacheMisses+s.FlightWaits > 0 {
		reg.Counter("prairie_plancache_hits_total").Add(int64(s.CacheHits))
		reg.Counter("prairie_plancache_misses_total").Add(int64(s.CacheMisses))
		reg.Counter("prairie_plancache_warm_seeds_total").Add(int64(s.WarmSeeds))
		reg.Counter("prairie_plancache_flight_waits_total").Add(int64(s.FlightWaits))
		reg.Counter("prairie_plancache_flight_shared_total").Add(int64(s.FlightShared))
	}
	reg.Gauge("prairie_memo_bytes_estimate").Set(float64(s.MemoBytes))
	reg.Gauge("prairie_worklist_depth_max").Max(float64(s.MaxQueue))
	flushCounts := func(name string, m map[string]int) {
		for r, n := range m {
			reg.Counter(obs.Label(name, "rule", r)).Add(int64(n))
		}
	}
	flushCounts("prairie_trans_matched_total", s.TransMatched)
	flushCounts("prairie_trans_fired_total", s.TransFired)
	flushCounts("prairie_impl_matched_total", s.ImplMatched)
	flushCounts("prairie_impl_fired_total", s.ImplFired)
	flushCounts("prairie_enforcer_fired_total", s.EnfFired)
	for r, d := range s.TransTime {
		reg.FloatCounter(obs.Label("prairie_trans_seconds_total", "rule", r)).Add(d.Seconds())
	}
	for r, d := range s.ImplTime {
		reg.FloatCounter(obs.Label("prairie_impl_seconds_total", "rule", r)).Add(d.Seconds())
	}
}

// ExplainGroup renders one memo group's provenance for debugging: its
// expressions (each with the transformation rule that derived it, or
// "query" for the initial tree), and the memoized winners per required
// physical-property vector. This backs optshell's :explain command —
// the "easy-to-debug" goal applied to the search space itself.
func (o *Optimizer) ExplainGroup(id GroupID) (string, error) {
	m := o.Memo
	if id < 0 || int(id) >= len(m.groups) {
		return "", fmt.Errorf("volcano: no group %d (memo has %d)", id, len(m.groups))
	}
	canon := m.Find(id)
	g := m.groups[canon]
	var b strings.Builder
	fmt.Fprintf(&b, "group %d", id)
	if canon != id {
		fmt.Fprintf(&b, " (merged into %d)", canon)
	}
	fmt.Fprintf(&b, ": %d exprs, rep %s\n", len(g.Exprs), g.rep)
	for _, e := range g.Exprs {
		via := e.via
		if via == "" {
			via = "query"
		}
		flag := ""
		if e.dead {
			flag = " [dead]"
		}
		fmt.Fprintf(&b, "  %-24s via %s (seq %d)%s\n", e.String(), via, e.seq, flag)
	}
	// Winners, sorted by requirement rendering for stable output.
	type wrow struct{ req, plan string }
	var rows []wrow
	phys := o.RS.Class.Phys
	for _, ws := range g.winners {
		for _, w := range ws {
			plan := "(no feasible plan)"
			if w.plan != nil {
				plan = fmt.Sprintf("%s (cost %.1f)", w.plan, w.cost)
			}
			rows = append(rows, wrow{reqString(w.req, phys), plan})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].req < rows[j].req })
	for _, r := range rows {
		fmt.Fprintf(&b, "  winner[%s] = %s\n", r.req, r.plan)
	}
	if len(rows) == 0 {
		b.WriteString("  (no winners computed)\n")
	}
	return b.String(), nil
}
