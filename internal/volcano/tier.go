package volcano

import (
	"context"
	"errors"
	"sync"
	"time"

	"prairie/internal/core"
	"prairie/internal/obs"
	"prairie/internal/plancache"
)

// This file implements the tiered "anytime" planner: on a cache miss the
// engine serves a sub-millisecond greedy plan immediately, then (per
// routing policy) launches a full branch-and-bound refinement in the
// background and hot-swaps the cache entry when the better plan lands.
// First-byte plan latency becomes O(greedy) while steady-state plan
// quality stays O(branch-and-bound).
//
// Safety invariants:
//
//   - Hot-swap epoch protocol: the refiner re-checks the cache epoch
//     against the epoch embedded in its key before publishing. A
//     concurrent Invalidate bumps the epoch, so the stale plan is
//     dropped; even if the check races the bump, the Put lands under a
//     stale-epoch key that no post-invalidation lookup can ever match —
//     the check only avoids writing garbage, correctness never depends
//     on it.
//   - Singleflight refinement: the cache-miss leader is unique per key
//     (plancache flights), and Router.beginRefine additionally dedupes
//     hit-path re-spawns, so one miss spawns at most one refiner.
//   - Tier separation in one keyspace: greedy and full entries share
//     cache keys; a TierFull request treats a greedy entry as a miss
//     (AcquireIf) and its completed search upgrades the entry in place,
//     while greedy/auto requests keep hitting the fast entry meanwhile.

// TierMode selects the planning tier of one optimization. The zero
// value (TierFull) is today's single-tier behaviour, byte-identical to
// builds without tiering.
type TierMode int

const (
	// TierFull runs the complete branch-and-bound search (the default).
	TierFull TierMode = iota
	// TierGreedy serves the greedy bottom-up plan of the original tree
	// and never refines — minimum latency, no exploration.
	TierGreedy
	// TierAuto serves the greedy plan first and lets the Router decide,
	// per query shape class, whether a background full-search refinement
	// is worth spawning.
	TierAuto
)

// String renders the tier as its wire name.
func (t TierMode) String() string {
	switch t {
	case TierGreedy:
		return "greedy"
	case TierAuto:
		return "auto"
	default:
		return "full"
	}
}

// ErrGreedyNoPlan is returned by GreedyPlan (and the greedy tier) when
// no implementation rule covers the original tree's shape — greedy
// planning never transforms, so an unimplementable shape is a hard
// miss, not a search failure. It wraps ErrNoPlan, so errors.Is matches
// both.
var ErrGreedyNoPlan = errGreedyNoPlan{}

type errGreedyNoPlan struct{}

func (errGreedyNoPlan) Error() string {
	return "volcano: greedy planner: no implementation rule applies to the original tree"
}

func (errGreedyNoPlan) Unwrap() error { return ErrNoPlan }

// RefineOutcome describes how one background refinement ended; it is
// delivered to Options.OnRefine so the flight recorder can link the
// refinement back to the request that spawned it.
type RefineOutcome struct {
	// Outcome is one of RefineSwapped, RefineStale, RefineFailed, or
	// RefinePanic.
	Outcome    string
	GreedyCost float64
	FullCost   float64 // 0 when the full search failed or degraded
	Elapsed    time.Duration
}

// Refinement outcome names (RefineOutcome.Outcome).
const (
	RefineSwapped = "swapped" // full plan published over the greedy entry
	RefineStale   = "stale"   // dropped by the epoch check
	RefineFailed  = "failed"  // full search erred, degraded, or found no plan
	RefinePanic   = "panic"   // refiner goroutine recovered from a panic
)

// RouterConfig tunes the adaptive tier router. The zero value of every
// field selects a sensible default.
type RouterConfig struct {
	// MinSamples is how many greedy-vs-full cost pairs a class needs
	// before its refinement can be skipped (default 3).
	MinSamples int
	// MinBenefit is the decayed relative cost win ((greedy-full)/full)
	// below which refinement is considered not worth spawning
	// (default 0.01, i.e. 1%).
	MinBenefit float64
	// ProbeEvery forces a refinement every Nth greedy-routed decision of
	// a class so a shape that becomes refinable is rediscovered
	// (default 64).
	ProbeEvery int
	// Decay is the EWMA weight of the newest benefit sample (default
	// 0.25).
	Decay float64
	// MaxClasses caps the stats table; unseen classes beyond it are
	// routed to refinement without being tracked (default 4096).
	MaxClasses int
}

func (c RouterConfig) minSamples() int {
	if c.MinSamples > 0 {
		return c.MinSamples
	}
	return 3
}

func (c RouterConfig) minBenefit() float64 {
	if c.MinBenefit > 0 {
		return c.MinBenefit
	}
	return 0.01
}

func (c RouterConfig) probeEvery() int {
	if c.ProbeEvery > 0 {
		return c.ProbeEvery
	}
	return 64
}

func (c RouterConfig) decay() float64 {
	if c.Decay > 0 && c.Decay <= 1 {
		return c.Decay
	}
	return 0.25
}

func (c RouterConfig) maxClasses() int {
	if c.MaxClasses > 0 {
		return c.MaxClasses
	}
	return 4096
}

// classStat is the per-shape-class routing state: how many paired
// greedy/full costs were observed, the decayed relative benefit of full
// search, and how many greedy routings happened since the last probe.
type classStat struct {
	samples    int
	benefit    float64
	sinceProbe int
}

// Router is the adaptive tier policy plus the lifecycle of background
// refiners. It learns online, per query shape class, whether full
// search actually beats greedy — classes with no measured benefit are
// sent straight to greedy, skipping refinement (with periodic probes so
// a drifting class is rediscovered).
//
// A Router is safe for concurrent use and is meant to be shared by
// every optimizer of one serving surface (the server holds one per
// process). A nil *Router is valid: TierAuto then always refines.
type Router struct {
	cfg RouterConfig

	mu       sync.Mutex
	classes  map[uint64]*classStat
	refining map[plancache.Key]struct{}
	wg       sync.WaitGroup

	// Decision and refinement counters; bound to a metrics registry by
	// NewRouterObserved, standalone otherwise.
	routedGreedy *obs.Counter // decisions that skipped refinement
	routedRefine *obs.Counter // decisions that requested refinement
	refineDone   *obs.Counter // refinements that swapped their entry
	refineWins   *obs.Counter // swaps whose full plan beat the greedy cost
	refineStale  *obs.Counter // refinements dropped by the epoch check
	refineFailed *obs.Counter // refinements that erred or degraded
	refinePanics *obs.Counter // refiner goroutines recovered from panic

	// testHookBeforeSwap, when set, runs in the refiner between the
	// full search and the epoch-checked publish — tests use it to force
	// a concurrent Invalidate into the swap window.
	testHookBeforeSwap func()
}

// NewRouter returns a Router with standalone counters.
func NewRouter(cfg RouterConfig) *Router {
	return &Router{
		cfg:          cfg,
		classes:      map[uint64]*classStat{},
		refining:     map[plancache.Key]struct{}{},
		routedGreedy: &obs.Counter{},
		routedRefine: &obs.Counter{},
		refineDone:   &obs.Counter{},
		refineWins:   &obs.Counter{},
		refineStale:  &obs.Counter{},
		refineFailed: &obs.Counter{},
		refinePanics: &obs.Counter{},
	}
}

// NewRouterObserved is NewRouter with the counters registered in reg
// (prairie_tier_*), so the routing mix and refinement outcomes show up
// on /metrics. A nil reg falls back to standalone counters.
func NewRouterObserved(cfg RouterConfig, reg *obs.Registry) *Router {
	r := NewRouter(cfg)
	if reg == nil {
		return r
	}
	r.routedGreedy = reg.Counter("prairie_tier_routed_greedy_total")
	r.routedRefine = reg.Counter("prairie_tier_routed_refine_total")
	r.refineDone = reg.Counter("prairie_tier_refined_total")
	r.refineWins = reg.Counter("prairie_tier_refine_wins_total")
	r.refineStale = reg.Counter("prairie_tier_refine_stale_total")
	r.refineFailed = reg.Counter("prairie_tier_refine_failed_total")
	r.refinePanics = reg.Counter("prairie_tier_refine_panics_total")
	return r
}

// route decides whether class's next miss should spawn a refinement. A
// nil Router always refines (counters untracked).
func (r *Router) route(class uint64) bool {
	if r == nil {
		return true
	}
	r.mu.Lock()
	cs := r.classes[class]
	if cs == nil {
		if len(r.classes) >= r.cfg.maxClasses() {
			r.mu.Unlock()
			r.routedRefine.Inc()
			return true
		}
		cs = &classStat{}
		r.classes[class] = cs
	}
	refine := true
	if cs.samples >= r.cfg.minSamples() && cs.benefit < r.cfg.minBenefit() {
		cs.sinceProbe++
		if cs.sinceProbe < r.cfg.probeEvery() {
			refine = false
		} else {
			cs.sinceProbe = 0
		}
	}
	r.mu.Unlock()
	if refine {
		r.routedRefine.Inc()
	} else {
		r.routedGreedy.Inc()
	}
	return refine
}

// observe records one paired measurement: the greedy plan's cost and
// the full search's cost for the same query. Benefit is the relative
// cost win of full search, folded in with EWMA decay.
func (r *Router) observe(class uint64, greedyCost, fullCost float64) {
	if r == nil || fullCost <= 0 {
		return
	}
	sample := (greedyCost - fullCost) / fullCost
	if sample < 0 {
		sample = 0
	}
	r.mu.Lock()
	cs := r.classes[class]
	if cs == nil {
		if len(r.classes) >= r.cfg.maxClasses() {
			r.mu.Unlock()
			return
		}
		cs = &classStat{}
		r.classes[class] = cs
	}
	if cs.samples == 0 {
		cs.benefit = sample
	} else {
		d := r.cfg.decay()
		cs.benefit = (1-d)*cs.benefit + d*sample
	}
	cs.samples++
	r.mu.Unlock()
}

// beginRefine claims the right to refine key; false means a refiner is
// already in flight for it (hit-path re-spawn dedup — miss leaders are
// already unique via plancache flights, but a greedy entry can be hit
// by many auto requests before its refinement lands).
func (r *Router) beginRefine(key plancache.Key) bool {
	if r == nil {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, busy := r.refining[key]; busy {
		return false
	}
	r.refining[key] = struct{}{}
	return true
}

// ClassState reports a shape class's routing statistics — paired
// samples seen and the decayed relative benefit of full search — for
// diagnostics; ok is false for classes the router has never tracked.
// The flight recorder snapshots it at decision time.
func (r *Router) ClassState(class uint64) (samples int, benefit float64, ok bool) {
	if r == nil {
		return 0, 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cs := r.classes[class]
	if cs == nil {
		return 0, 0, false
	}
	return cs.samples, cs.benefit, true
}

func (r *Router) endRefine(key plancache.Key) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.refining, key)
	r.mu.Unlock()
}

// Wait blocks until every background refinement spawned so far has
// finished — the deterministic synchronization point for tests and
// benches (production callers never need it; refiners are fire-and-
// forget).
func (r *Router) Wait() {
	if r == nil {
		return
	}
	r.wg.Wait()
}

// RouterStats is a point-in-time snapshot of the router's counters.
type RouterStats struct {
	Classes      int   // tracked shape classes
	RoutedGreedy int64 // decisions that skipped refinement
	RoutedRefine int64 // decisions that requested refinement
	Refined      int64 // refinements that swapped their cache entry
	RefineWins   int64 // swaps whose full plan was strictly cheaper
	RefineStale  int64 // refinements dropped by the epoch check
	RefineFailed int64 // refinements that erred or degraded
}

// Snapshot returns the current counters.
func (r *Router) Snapshot() RouterStats {
	if r == nil {
		return RouterStats{}
	}
	r.mu.Lock()
	n := len(r.classes)
	r.mu.Unlock()
	return RouterStats{
		Classes:      n,
		RoutedGreedy: r.routedGreedy.Value(),
		RoutedRefine: r.routedRefine.Value(),
		Refined:      r.refineDone.Value(),
		RefineWins:   r.refineWins.Value(),
		RefineStale:  r.refineStale.Value(),
		RefineFailed: r.refineFailed.Value(),
	}
}

// shapeClass hashes the operator shape of a query — operators and
// arities, not leaf names or descriptor contents — so structurally
// similar queries over different catalogs pool their routing
// statistics. Coarser than the cache fingerprint by design: the router
// learns "is full search worth it for this kind of query", which
// generalizes across concrete tables; the cache answers "is this exact
// search problem already solved", which must not.
func (rs *RuleSet) shapeClass(e *core.Expr) uint64 {
	var walk func(e *core.Expr, h uint64) uint64
	walk = func(e *core.Expr, h uint64) uint64 {
		if e.IsLeaf() {
			return core.HashCombine(h, 0x1eaf)
		}
		h = core.HashCombine(h, uint64(e.Op.Index()))
		h = core.HashCombine(h, uint64(len(e.Kids)))
		for _, k := range e.Kids {
			h = walk(k, h)
		}
		return h
	}
	return walk(e, 0x7ead)
}

// tieredOptimize is the dispatch target for TierGreedy and TierAuto
// (TierFull never reaches it — dispatchOptimize keeps the untiered
// path intact). Cacheless operation degenerates to synchronous
// planning: greedy for TierGreedy, router-directed greedy-or-full for
// TierAuto (both costs measured so the router still learns).
func (o *Optimizer) tieredOptimize(ctx context.Context, tree *core.Expr, req *core.Descriptor) (*PExpr, error) {
	if req == nil {
		req = core.NewDescriptor(o.RS.Algebra.Props)
	}
	if !o.Opts.Cache.Enabled() {
		return o.tieredUncached(ctx, tree, req)
	}
	pc := o.Opts.Cache
	rt := o.Opts.Router
	if rt == nil {
		// A nil router means "always refine" (see Router), but the
		// refiner lifecycle still needs a WaitGroup and counters, so a
		// private per-run router stands in.
		rt = NewRouter(RouterConfig{})
		o.Opts.Router = rt
	}
	ph := o.Opts.Phases
	var phStart time.Time
	if ph != nil {
		phStart = time.Now()
	}
	key := o.rootKey(tree, req)
	a := pc.c.Acquire(key)
	if a.Hit {
		o.Stats.CacheHits++
		plan := o.cacheHit(a.Value)
		if ph != nil {
			ph.Observe(obs.PhaseCache, phStart, time.Since(phStart))
		}
		// Self-healing: an auto request hitting a greedy entry whose
		// refinement never landed (failed, stale, or router-skipped
		// earlier) may re-spawn it per current policy.
		if o.Opts.Tier == TierAuto && a.Value.tier == TierGreedy && !a.Value.refined {
			class := o.RS.shapeClass(tree)
			o.Stats.TierClass = class
			if rt.route(class) {
				o.Stats.TierRouted = "refine"
				if rt.beginRefine(key) {
					o.spawnRefine(key, class, tree, req, a.Value.cost)
				}
			} else {
				o.Stats.TierRouted = "greedy"
			}
		}
		return plan, nil
	}
	if !a.Leader {
		o.Stats.FlightWaits++
		cp, ok, err := a.Wait(ctx)
		if ph != nil {
			// The flight wait is cache time: the request was parked
			// behind a concurrent identical search.
			ph.Observe(obs.PhaseCache, phStart, time.Since(phStart))
		}
		if err == nil && ok {
			// Adopt whatever the leader shared — a greedy fast-path plan
			// is exactly what this tier asked for, and a full plan is
			// strictly better.
			o.Stats.FlightShared++
			o.Stats.CacheHits++
			return o.cacheHit(cp), nil
		}
		// Leader declined to share or our wait was cancelled: answer
		// independently at this tier without publishing.
		o.Stats.CacheMisses++
		plan, _, err := o.greedyTier(tree, req)
		if err != nil && o.Opts.Tier == TierAuto {
			return o.optimizeContext(ctx, tree, req)
		}
		return plan, err
	}

	// Miss leader: serve the greedy plan now, publish it for followers,
	// and (per policy) refine in the background.
	o.Stats.CacheMisses++
	if ph != nil {
		ph.Observe(obs.PhaseCache, phStart, time.Since(phStart))
	}
	// A panicking rule hook must not wedge followers: the deferred
	// no-share Complete is idempotent, so the success path below wins
	// when it runs first.
	defer a.Complete(cachedPlan{}, false)
	plan, cost, gerr := o.greedyTier(tree, req)
	if gerr != nil {
		if o.Opts.Tier == TierGreedy {
			a.Complete(cachedPlan{}, false)
			return nil, gerr
		}
		// Auto tier: the original shape has no greedy implementation;
		// fall back to a synchronous full search so the request is still
		// answered (and cached when clean).
		full, err := o.optimizeContext(ctx, tree, req)
		if err != nil || full == nil || o.Stats.Degraded {
			a.Complete(cachedPlan{}, false)
			return full, err
		}
		a.Complete(cachedPlan{
			plan:      full.Clone(),
			cost:      full.Cost(o.RS.Class),
			groups:    o.Stats.Groups,
			exprs:     o.Stats.Exprs,
			merges:    o.Stats.Merges,
			memoBytes: o.Stats.MemoBytes,
		}, true)
		return full, nil
	}
	entry := cachedPlan{
		plan:      plan.Clone(),
		cost:      cost,
		groups:    o.Stats.Groups,
		exprs:     o.Stats.Exprs,
		merges:    o.Stats.Merges,
		memoBytes: o.Stats.MemoBytes,
		tier:      TierGreedy,
	}
	a.Complete(entry, true)
	refine := o.Opts.Tier == TierAuto
	var class uint64
	if refine {
		class = o.RS.shapeClass(tree)
		refine = rt.route(class)
		o.Stats.TierClass = class
		o.Stats.TierRouted = routedName(refine)
	}
	if refine && rt.beginRefine(key) {
		o.spawnRefine(key, class, tree, req, cost)
	}
	return plan, nil
}

// routedName renders a routing decision for Stats.TierRouted.
func routedName(refine bool) string {
	if refine {
		return "refine"
	}
	return "greedy"
}

// tieredUncached answers a tiered request without a cache: synchronous,
// nothing to hot-swap. TierAuto still consults (and teaches) the
// router — the greedy plan is cheap enough to cost alongside a routed
// full search.
func (o *Optimizer) tieredUncached(ctx context.Context, tree *core.Expr, req *core.Descriptor) (*PExpr, error) {
	if o.Opts.Tier == TierGreedy {
		plan, _, err := o.greedyTier(tree, req)
		return plan, err
	}
	rt := o.Opts.Router
	class := o.RS.shapeClass(tree)
	refine := rt.route(class)
	o.Stats.TierClass = class
	o.Stats.TierRouted = routedName(refine)
	if !refine {
		plan, _, err := o.greedyTier(tree, req)
		if err == nil {
			return plan, nil
		}
		// Greedy cannot implement the shape; full search still can.
	}
	gCost, gOK := 0.0, false
	if g, err := greedyPlan(o.RS, tree.Clone(), req, NewStats()); err == nil {
		gCost, gOK = g.Cost(o.RS.Class), true
	}
	plan, err := o.optimizeContext(ctx, tree, req)
	if err != nil || plan == nil {
		return plan, err
	}
	if gOK && !o.Stats.Degraded {
		fCost := plan.Cost(o.RS.Class)
		rt.observe(class, gCost, fCost)
		o.Stats.GreedyCost, o.Stats.FullCost = gCost, fCost
	}
	return plan, nil
}

// greedyTier runs the greedy bottom-up planner into this run's Stats
// and marks the result's tier.
func (o *Optimizer) greedyTier(tree *core.Expr, req *core.Descriptor) (*PExpr, float64, error) {
	ph := o.Opts.Phases
	var began time.Time
	if ph != nil {
		began = time.Now()
	}
	plan, err := greedyPlan(o.RS, tree, req, o.Stats)
	if ph != nil {
		ph.Observe(obs.PhaseGreedy, began, time.Since(began))
	}
	if err != nil {
		return nil, 0, err
	}
	o.Stats.Tier = TierGreedy.String()
	cost := plan.Cost(o.RS.Class)
	o.Stats.GreedyCost = cost
	return plan, cost, nil
}

// spawnRefine launches the background full-search refinement of key.
// The refiner is a fresh TierFull optimizer — no cache, no router, no
// warm-start seeds — so its winner is byte-identical to a cold full
// optimization of the same query. On clean completion it hot-swaps the
// cache entry (epoch-checked, see the file comment) and teaches the
// router the measured greedy-vs-full benefit. Degraded or failed
// refinements never swap. Callers must hold the beginRefine claim.
func (o *Optimizer) spawnRefine(key plancache.Key, class uint64, tree *core.Expr, req *core.Descriptor, greedyCost float64) {
	rt, pc, rs := o.Opts.Router, o.Opts.Cache, o.RS
	opts := o.Opts
	opts.Tier = TierFull
	opts.Cache = nil
	opts.Router = nil
	// The refiner reports through the spawning request's observability
	// hooks, not through its own run: the phase clock and callback are
	// captured here and cleared from the refiner's options, so the inner
	// full search doesn't log its PhaseFull span into the request's
	// timeline — the whole refinement shows up as one PhaseRefine span.
	phases, onRefine := opts.Phases, opts.OnRefine
	opts.Phases = nil
	opts.OnRefine = nil
	tree = tree.Clone()
	req = req.Clone()
	rt.wg.Add(1)
	go func() {
		began := time.Now()
		out := RefineOutcome{Outcome: RefineFailed, GreedyCost: greedyCost}
		defer rt.wg.Done()
		defer rt.endRefine(key)
		defer func() {
			if p := recover(); p != nil {
				rt.refinePanics.Inc()
				out.Outcome = RefinePanic
			}
			out.Elapsed = time.Since(began)
			phases.Observe(obs.PhaseRefine, began, out.Elapsed)
			if onRefine != nil {
				onRefine(out)
			}
		}()
		ref := NewOptimizer(rs)
		ref.Opts = opts
		plan, err := ref.OptimizeContext(context.Background(), tree, req)
		if err != nil || plan == nil || ref.Stats.Degraded {
			rt.refineFailed.Inc()
			return
		}
		fullCost := plan.Cost(rs.Class)
		out.FullCost = fullCost
		rt.observe(class, greedyCost, fullCost)
		if hook := rt.testHookBeforeSwap; hook != nil {
			hook()
		}
		if pc.c.Epoch() != key.Epoch {
			rt.refineStale.Inc()
			out.Outcome = RefineStale
			return
		}
		pc.c.Put(key, cachedPlan{
			plan:       plan.Clone(),
			cost:       fullCost,
			groups:     ref.Stats.Groups,
			exprs:      ref.Stats.Exprs,
			merges:     ref.Stats.Merges,
			memoBytes:  ref.Stats.MemoBytes,
			tier:       TierFull,
			refined:    true,
			greedyCost: greedyCost,
		})
		rt.refineDone.Inc()
		out.Outcome = RefineSwapped
		if fullCost < greedyCost {
			rt.refineWins.Inc()
		}
	}()
}

// ParseTier maps a wire tier name to a TierMode; "" means TierFull.
func ParseTier(s string) (TierMode, error) {
	switch s {
	case "", "full":
		return TierFull, nil
	case "greedy":
		return TierGreedy, nil
	case "auto":
		return TierAuto, nil
	}
	return TierFull, errors.New("volcano: unknown tier " + `"` + s + `" (want "full", "greedy", or "auto")`)
}
