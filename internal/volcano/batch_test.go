package volcano

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"prairie/internal/core"
	"prairie/internal/obs"
)

// boomWorld returns a test world whose extra transformation rule panics
// in its condition hook after limit calls (limit < 0: never). Run under
// -race in CI, these tests pin the batch-panic deadlock fix.
func boomWorld(limit int) (*testWorld, *int) {
	w := newTestWorld()
	calls := new(int)
	w.rs.AddTrans(&TransRule{
		Name: "boom",
		LHS:  core.POp(w.join, "D3", core.PVar(1, "D1"), core.PVar(2, "D2")),
		RHS:  core.POp(w.join, "D4", core.PVar(2, ""), core.PVar(1, "")),
		Cond: func(b *TBinding) bool {
			*calls++
			if limit >= 0 && *calls > limit {
				panic("boom: injected rule-hook failure")
			}
			return false
		},
	})
	return w, calls
}

// TestBatchWorkerPanicNoDeadlock is the regression test for the feeder
// deadlock: a panicking item must complete the batch (not wedge it) and
// surface the panic in its own BatchResult.Err, leaving the other items
// untouched.
func TestBatchWorkerPanicNoDeadlock(t *testing.T) {
	good := newTestWorld()
	bad, _ := boomWorld(0) // panics on the first condition call
	items := []BatchItem{
		{RS: good.rs, Tree: good.chain(4, 2)},
		{RS: bad.rs, Tree: bad.chain(8, 4, 2)},
		{RS: good.rs, Tree: good.chain(8, 4)},
		{RS: good.rs, Tree: good.chain(16, 8, 4)},
	}
	done := make(chan []BatchResult, 1)
	go func() { done <- OptimizeBatch(items, 2) }()
	var results []BatchResult
	select {
	case results = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("OptimizeBatch deadlocked on a panicking worker")
	}
	for i, r := range results {
		if i == 1 {
			if r.Err == nil || !strings.Contains(r.Err.Error(), "panicked") {
				t.Errorf("item 1: Err = %v, want surfaced panic", r.Err)
			}
			if r.Plan != nil {
				t.Error("item 1: plan returned alongside a panic")
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("item %d: %v", i, r.Err)
		}
		if r.Plan == nil {
			t.Errorf("item %d: missing plan", i)
		}
	}
}

// TestBatchPanicOnLaterRepeat: a panic on the second repeat must not
// report the first repeat's successful plan, and elapsed time must cover
// the attempts actually made.
func TestBatchPanicOnLaterRepeat(t *testing.T) {
	// Probe: count condition calls in one clean optimization, then allow
	// exactly that many — repeat 1 succeeds, repeat 2 panics immediately.
	probe, calls := boomWorld(-1)
	if res := OptimizeBatch([]BatchItem{{RS: probe.rs, Tree: probe.chain(8, 4, 2)}}, 1); res[0].Err != nil {
		t.Fatalf("probe failed: %v", res[0].Err)
	}
	limit := *calls
	w, _ := boomWorld(limit)
	res := OptimizeBatch([]BatchItem{{RS: w.rs, Tree: w.chain(8, 4, 2), Repeats: 3}}, 1)[0]
	if res.Err == nil || !strings.Contains(res.Err.Error(), "panicked") {
		t.Fatalf("Err = %v, want surfaced panic", res.Err)
	}
	if res.Plan != nil {
		t.Error("stale plan from an earlier repeat returned with the panic")
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not reported for the attempts made")
	}
}

// TestBatchErrorElapsedAndStats is the regression test for the zero
// Elapsed / missing stats on failing items: an erroring run must report
// the mean elapsed over its attempts and the failing run's partial
// statistics.
func TestBatchErrorElapsedAndStats(t *testing.T) {
	w := newTestWorld()
	res := OptimizeBatch([]BatchItem{{
		RS: w.rs, Tree: w.chain(16, 8, 4, 2),
		Opts: Options{MaxExprs: 3}, Repeats: 2,
	}}, 1)[0]
	if !errors.Is(res.Err, ErrSpaceExhausted) {
		t.Fatalf("Err = %v, want ErrSpaceExhausted", res.Err)
	}
	if res.Elapsed <= 0 {
		t.Error("failing item reported zero Elapsed")
	}
	if res.Stats == nil || res.Stats.Exprs == 0 {
		t.Errorf("failing item missing partial stats: %+v", res.Stats)
	}
}

// TestBatchContextCancelled: a cancelled batch context fails pending
// items fast with the context's error.
func TestBatchContextCancelled(t *testing.T) {
	w := newTestWorld()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := []BatchItem{
		{RS: w.rs, Tree: w.chain(4, 2)},
		{RS: w.rs, Tree: w.chain(8, 4)},
	}
	for i, r := range OptimizeBatchContext(ctx, items, 2) {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("item %d: Err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestBatchConcurrentObservability exercises a single shared Observer
// from every pool worker at once — the race-detector target for the
// metric registry and tracer (run under -race by make race). It also
// pins the BatchReport invariants: per-worker item counts sum to the
// batch size, the aggregate Stats equal the per-item sums, and the
// shared counters record every optimization.
func TestBatchConcurrentObservability(t *testing.T) {
	w := newTestWorld()
	const n = 16
	items := make([]BatchItem, n)
	for i := range items {
		items[i] = BatchItem{RS: w.rs, Tree: w.chain(8, 4, 2)}
	}
	ob := &obs.Observer{Metrics: obs.NewRegistry(), Tracer: obs.NewTracer(), RuleTiming: true}
	results, report := OptimizeBatchOpts(context.Background(), items, BatchOptions{Workers: 4, Obs: ob})

	var wantExprs int
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		wantExprs += r.Stats.Exprs
	}
	if report.Items != n || report.Errors != 0 || report.Degraded != 0 {
		t.Errorf("report = %d items %d errors %d degraded, want %d/0/0",
			report.Items, report.Errors, report.Degraded, n)
	}
	gotItems := 0
	for _, ws := range report.Workers {
		gotItems += ws.Items
	}
	if gotItems != n {
		t.Errorf("worker item counts sum to %d, want %d", gotItems, n)
	}
	if report.Agg.Exprs != wantExprs {
		t.Errorf("Agg.Exprs = %d, want per-item sum %d", report.Agg.Exprs, wantExprs)
	}
	if len(report.Agg.TransTime) == 0 {
		t.Error("RuleTiming enabled but aggregate TransTime is empty")
	}
	snap := ob.Metrics.Snapshot()
	for name, want := range map[string]int64{
		"prairie_batch_items_total": n,
		"prairie_optimize_total":    n,
	} {
		if got, _ := snap[name].(int64); got != want {
			t.Errorf("%s = %v, want %d", name, snap[name], want)
		}
	}
	if ob.Tracer.Len() == 0 {
		t.Error("shared tracer recorded no events")
	}
	if s := report.String(); !strings.Contains(s, "queue wait") {
		t.Errorf("report.String() missing queue wait line:\n%s", s)
	}
}

// TestBatchPerItemTimeout: an item's Timeout becomes a per-optimization
// budget, so the item degrades instead of erroring.
func TestBatchPerItemTimeout(t *testing.T) {
	w := newTestWorld()
	res := OptimizeBatch([]BatchItem{{
		RS: w.rs, Tree: w.chain(16, 8, 4, 2), Timeout: time.Nanosecond,
	}}, 1)[0]
	if res.Err != nil {
		t.Fatalf("timed-out item errored instead of degrading: %v", res.Err)
	}
	if res.Plan == nil || !res.Stats.Degraded || res.Stats.DegradeCause != CauseDeadline {
		t.Errorf("want degraded deadline plan, got plan=%v stats=%+v", res.Plan, res.Stats)
	}
}
