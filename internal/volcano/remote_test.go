package volcano

import (
	"context"
	"sync"
	"testing"

	"prairie/internal/plancache"
)

// fakeRemote is a scripted RemoteCache: Fetch always returns the
// configured outcome, and every Offer / Abandon is recorded.
type fakeRemote struct {
	outcome RemoteOutcome

	mu       sync.Mutex
	offers   []plancache.Key
	abandons []plancache.Key
}

func (f *fakeRemote) Fetch(ctx context.Context, key plancache.Key) RemoteResult {
	return RemoteResult{Outcome: f.outcome}
}

func (f *fakeRemote) Offer(key plancache.Key, e RemoteEntry) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.offers = append(f.offers, key)
	return true
}

func (f *fakeRemote) Abandon(key plancache.Key) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.abandons = append(f.abandons, key)
}

func (f *fakeRemote) counts() (offers, abandons int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.offers), len(f.abandons)
}

// TestRemoteLeadOfferOnSuccess: a node granted the cluster-wide lead
// that optimizes cleanly fulfils the lease with an Offer and never
// abandons it.
func TestRemoteLeadOfferOnSuccess(t *testing.T) {
	w := newTestWorld()
	rem := &fakeRemote{outcome: RemoteLead}
	o := NewOptimizer(w.rs)
	o.Opts.Cache = NewPlanCache(8)
	o.Opts.Remote = rem
	plan, err := o.Optimize(w.chain(8, 4, 2), nil)
	if err != nil || plan == nil {
		t.Fatalf("optimize: plan=%v err=%v", plan, err)
	}
	if offers, abandons := rem.counts(); offers != 1 || abandons != 0 {
		t.Fatalf("successful lead: offers=%d abandons=%d, want 1/0", offers, abandons)
	}
}

// TestRemoteLeadAbandonOnDegrade: a lead whose search degrades produces
// no shareable entry, so the lease must be released via Abandon — not
// left to expire with followers parked behind it (REVIEW finding 2).
func TestRemoteLeadAbandonOnDegrade(t *testing.T) {
	w := newTestWorld()
	rem := &fakeRemote{outcome: RemoteLead}
	o := NewOptimizer(w.rs)
	o.Opts.Cache = NewPlanCache(8)
	o.Opts.Remote = rem
	o.Opts.Budget = Budget{MaxRuleFirings: 1}
	plan, err := o.Optimize(w.chain(8, 4, 2), nil)
	if err != nil || plan == nil {
		t.Fatalf("degraded run must still yield a plan: plan=%v err=%v", plan, err)
	}
	if !o.Stats.Degraded {
		t.Fatal("budget did not degrade the run; test premise broken")
	}
	if offers, abandons := rem.counts(); offers != 0 || abandons != 1 {
		t.Fatalf("degraded lead: offers=%d abandons=%d, want 0/1", offers, abandons)
	}
}

// TestRemoteMissNoAbandonOnDegrade: without a lease grant (RemoteMiss)
// a degraded run has nothing to release — Abandon must not fire.
func TestRemoteMissNoAbandonOnDegrade(t *testing.T) {
	w := newTestWorld()
	rem := &fakeRemote{outcome: RemoteMiss}
	o := NewOptimizer(w.rs)
	o.Opts.Cache = NewPlanCache(8)
	o.Opts.Remote = rem
	o.Opts.Budget = Budget{MaxRuleFirings: 1}
	if _, err := o.Optimize(w.chain(8, 4, 2), nil); err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if !o.Stats.Degraded {
		t.Fatal("budget did not degrade the run; test premise broken")
	}
	if _, abandons := rem.counts(); abandons != 0 {
		t.Fatalf("miss-path degrade abandoned a lease it never held: abandons=%d", abandons)
	}
}
