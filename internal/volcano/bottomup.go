package volcano

import (
	"prairie/internal/core"
)

// BottomUp is the alternative search strategy §2.2 of the paper alludes
// to: "Given an appropriate search engine, Prairie can potentially also
// be used with a bottom-up optimization strategy". It consumes the same
// RuleSet (hand-coded or P2V-generated) and produces the same winners as
// the top-down engine, but with System R-style control flow:
//
//  1. the memo is expanded to the transformation fixpoint (shared with
//     the top-down engine);
//  2. a cheap top-down *discovery* pass collects each equivalence
//     class's interesting property vectors (System R's "interesting
//     orders"): the root requirement plus every input requirement any
//     implementation rule of any parent can generate;
//  3. winners are computed bottom-up by dynamic programming: groups in
//     dependency order, each group's whole interesting-vector table at
//     once, enforcer entries after their relaxed base entries.
//
// Because discovery enumerates exactly the requirements the top-down
// engine would issue, both strategies produce equal-cost winners; the
// engines differ in traversal order and in how much of the winner table
// they materialize (bottom-up computes every interesting vector for
// every group, top-down only what the search touches).
type BottomUp struct {
	RS    *RuleSet
	Memo  *Memo
	Stats *Stats
	Opts  Options
}

// NewBottomUp returns a bottom-up optimizer over a fresh memo.
func NewBottomUp(rs *RuleSet) *BottomUp {
	return &BottomUp{RS: rs, Memo: NewMemo(rs), Stats: NewStats()}
}

// vecEntry is one discovered (group, property vector) pair.
type vecEntry struct {
	group GroupID
	req   *core.Descriptor
	// relaxedFrom marks entries produced by enforcer relaxation; their
	// base entry must be computed first within the group.
	enforced bool
}

// Optimize maps an initialized operator tree to its cheapest plan under
// req's physical properties, bottom-up.
func (o *BottomUp) Optimize(tree *core.Expr, req *core.Descriptor) (*PExpr, error) {
	return o.plan(tree, req, true)
}

// GreedyPlan is the cheap baseline the budgeted search degrades to and
// the fast path of the tiered anytime planner (see tier.go): it plans
// tree without any exploration. The memo holds exactly the query's own
// operator tree (no transformation rule ever fires), and winners are
// computed bottom-up over that single shape — discovery and dynamic
// programming as usual, minus phase 0. Cost is linear-ish in the tree
// size, so it always terminates quickly and, whenever the original
// shape is implementable under req, always returns a plan; when it is
// not, the typed ErrGreedyNoPlan is returned (never a nil plan with a
// nil error), so callers can distinguish "greedy cannot cover this
// shape" from a failed search.
func GreedyPlan(rs *RuleSet, tree *core.Expr, req *core.Descriptor) (*PExpr, error) {
	return greedyPlan(rs, tree, req, NewStats())
}

// greedyPlan is GreedyPlan accumulating into the caller's Stats (the
// degrade path merges the fallback's costing counters into the
// interrupted run's diagnostics).
func greedyPlan(rs *RuleSet, tree *core.Expr, req *core.Descriptor, stats *Stats) (*PExpr, error) {
	bu := &BottomUp{RS: rs, Memo: NewMemo(rs), Stats: stats}
	return bu.plan(tree, req, false)
}

// plan drives the three bottom-up phases; explore selects whether phase
// 0 (memo expansion to the transformation fixpoint) runs at all.
func (o *BottomUp) plan(tree *core.Expr, req *core.Descriptor, explore bool) (*PExpr, error) {
	if req == nil {
		req = core.NewDescriptor(o.RS.Algebra.Props)
	}
	root := o.Memo.Insert(tree)
	// Phase 0: shared exploration.
	td := &Optimizer{RS: o.RS, Memo: o.Memo, Stats: o.Stats, Opts: o.Opts}
	if explore {
		if err := td.explore(); err != nil {
			td.recordMemoStats()
			return nil, err
		}
	}
	root = o.Memo.Find(root)

	// Phase 1: discovery of interesting property vectors.
	vectors := o.discover(root, req)

	// Phase 2: dynamic programming in dependency order.
	order, err := o.topoOrder(root)
	if err != nil {
		td.recordMemoStats()
		return nil, err
	}
	for _, g := range order {
		o.costGroup(g, vectors[g], td)
	}

	td.recordMemoStats()
	plan, _, err := td.findBest(root, req) // table hit: everything is memoized
	if err != nil {
		return nil, err
	}
	if plan == nil {
		if !explore {
			// Without exploration the only candidate shape was the
			// original tree; no implementation rule covered it.
			return nil, ErrGreedyNoPlan
		}
		return nil, ErrNoPlan
	}
	return plan, nil
}

// discover walks the memo from the root, collecting the property
// vectors each group can be asked for. It runs implementation-rule Pre
// hooks (the get_input_pv analogue) against representative descriptors
// to enumerate input requirements, and enforcer Pre hooks for
// relaxations; no costing happens.
func (o *BottomUp) discover(root GroupID, rootReq *core.Descriptor) map[GroupID][]vecEntry {
	phys := o.RS.Class.Phys
	vectors := map[GroupID][]vecEntry{}
	seen := map[GroupID]map[uint64]bool{}
	empty := core.NewDescriptor(o.RS.Algebra.Props)

	var add func(g GroupID, req *core.Descriptor, enforced bool)
	add = func(g GroupID, req *core.Descriptor, enforced bool) {
		g = o.Memo.Find(g)
		key := req.HashOn(phys)
		if seen[g] == nil {
			seen[g] = map[uint64]bool{}
		}
		if seen[g][key] {
			return
		}
		seen[g][key] = true
		vectors[g] = append(vectors[g], vecEntry{group: g, req: req.Clone(), enforced: enforced})
		grp := o.Memo.groups[g]
		// Enforcer relaxations stay within the group.
		for _, enf := range o.RS.Enforcers {
			cx := &ImplCtx{OpDesc: mergeReq(grp.Rep(), req, phys), Req: req}
			if !enforcerApplies(enf, cx) {
				continue
			}
			_, inReq := enf.Pre(cx)
			if !inReq.EqualOn(req, phys) {
				add(g, inReq, true)
			}
		}
		// Implementation rules generate the input requirements.
		for _, e := range grp.Exprs {
			if e.IsLeaf() {
				continue
			}
			for _, rule := range o.RS.Impls {
				if rule.Op != e.Op {
					continue
				}
				cx := &ImplCtx{
					OpDesc: mergeReq(e.D, req, phys),
					Req:    req,
					Kids:   make([]*core.Descriptor, len(e.Kids)),
					In:     make([]*core.Descriptor, len(e.Kids)),
				}
				for i, k := range e.Kids {
					cx.Kids[i] = o.Memo.Group(k).Rep()
				}
				if rule.Cond != nil && !rule.Cond(cx) {
					continue
				}
				_, inReq := rule.Pre(cx)
				for i, k := range e.Kids {
					r := empty
					if i < len(inReq) && inReq[i] != nil {
						r = inReq[i]
					}
					add(k, r, false)
				}
			}
		}
	}
	add(root, rootReq, false)
	add(root, empty, false)
	return vectors
}

// topoOrder returns the groups reachable from root with every group
// after all groups its expressions consume (leaves first).
func (o *BottomUp) topoOrder(root GroupID) ([]GroupID, error) {
	var order []GroupID
	state := map[GroupID]int{} // 0 unseen, 1 visiting, 2 done
	var visit func(g GroupID) error
	visit = func(g GroupID) error {
		g = o.Memo.Find(g)
		switch state[g] {
		case 2:
			return nil
		case 1:
			// A cyclic memo cannot be costed bottom-up; the rule sets in
			// this repository never create one.
			return errCyclicMemo
		}
		state[g] = 1
		for _, e := range o.Memo.groups[g].Exprs {
			for _, k := range e.Kids {
				if err := visit(k); err != nil {
					return err
				}
			}
		}
		state[g] = 2
		order = append(order, g)
		return nil
	}
	if err := visit(root); err != nil {
		return nil, err
	}
	return order, nil
}

var errCyclicMemo = errorString("volcano: cyclic memo; bottom-up strategy requires a DAG")

type errorString string

func (e errorString) Error() string { return string(e) }

// costGroup fills the group's winner table for its interesting vectors.
// Non-enforced vectors are computed first so enforcer entries find their
// relaxed bases; the shared findBest supplies the per-alternative logic
// and hits only completed tables below.
func (o *BottomUp) costGroup(g GroupID, vecs []vecEntry, td *Optimizer) {
	for pass := 0; pass < 2; pass++ {
		for _, v := range vecs {
			if (pass == 0) == v.enforced {
				continue
			}
			// findBest memoizes into the same winner table the final
			// lookup reads; kid groups are already complete, so no deep
			// recursion happens (enforcer relaxations recurse within the
			// group onto pass-0 entries).
			_, _, _ = td.findBest(v.group, v.req)
		}
	}
}

// enforcerApplies mirrors Optimizer.enforcerApplies for the discovery
// pass.
func enforcerApplies(enf *Enforcer, cx *ImplCtx) bool {
	if enf.Cond != nil {
		return enf.Cond(cx)
	}
	for _, p := range enf.Props {
		if cx.Req.Has(p) && !cx.Req.Get(p).IsDontCare() {
			return true
		}
	}
	return false
}

// TableSize reports how many winner entries the DP materialized — the
// bottom-up strategy's footprint, compared against top-down's
// on-demand table in the strategy ablation.
func (o *BottomUp) TableSize() int {
	n := 0
	for _, g := range o.Memo.Groups() {
		for _, entries := range g.winners {
			n += len(entries)
		}
	}
	return n
}
