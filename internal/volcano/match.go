package volcano

import (
	"prairie/internal/core"
)

// forEachMatch enumerates every binding of pattern p against expression e
// (patterns deeper than one operator bind interior pattern nodes against
// the expressions of the corresponding input groups — Volcano's
// cross-product pattern matching on the memo). fn is invoked once per
// complete binding with whether the binding is fresh: since filters for
// incremental re-matching, and a binding is fresh when at least one
// chosen expression was stamped at or after since (the root call passes
// its own freshness in fresh; pass since=0 and fresh=true to enumerate
// everything as fresh). The binding is reused across invocations, so fn
// must not retain it.
func (m *Memo) forEachMatch(p *core.PatNode, e *LExpr, b *TBinding, since uint64, fresh bool, fn func(fresh bool)) {
	if p.IsVar() {
		// A variable leaf matches any group; bind the group and, if the
		// pattern names a descriptor ("?1:D1"), the group's
		// representative descriptor (read-only logical information).
		b.SetVar(p.Var, m.Find(e.group))
		if p.Desc != "" {
			b.Bind(p.Desc, m.Group(e.group).Rep())
		}
		fn(fresh)
		return
	}
	if e.IsLeaf() || e.Op != p.Op {
		return
	}
	if p.Desc != "" {
		b.Bind(p.Desc, e.D)
	}
	m.matchKids(p, e, 0, b, since, fresh, fn)
}

func (m *Memo) matchKids(p *core.PatNode, e *LExpr, i int, b *TBinding, since uint64, fresh bool, fn func(fresh bool)) {
	if i == len(p.Kids) {
		fn(fresh)
		return
	}
	kp := p.Kids[i]
	kid := m.Find(e.Kids[i])
	if kp.IsVar() {
		// A variable kid binds the whole group: its binding does not
		// change when the group gains expressions, so it never makes a
		// binding fresh on its own.
		b.SetVar(kp.Var, kid)
		if kp.Desc != "" {
			b.Bind(kp.Desc, m.Group(kid).Rep())
		}
		m.matchKids(p, e, i+1, b, since, fresh, fn)
		return
	}
	// Interior kid pattern: try every expression of the input group; an
	// expression stamped at or after since makes the binding fresh.
	g := m.groups[kid]
	for _, ke := range g.Exprs {
		if ke.IsLeaf() || ke.Op != kp.Op {
			continue
		}
		m.forEachMatch(kp, ke, b, since, fresh || ke.seq >= since, func(f bool) {
			m.matchKids(p, e, i+1, b, since, f, fn)
		})
	}
}

// buildRHS interns the right-hand side of a fired transformation rule.
// Variable leaves resolve to their bound groups; interior nodes take the
// descriptors the rule's actions filled into the binding. target is the
// group the root is inserted into. It reports whether the memo changed.
func (m *Memo) buildRHS(p *core.PatNode, b *TBinding, target GroupID) bool {
	_, changed := m.buildRHSNode(p, b, target)
	return changed
}

func (m *Memo) buildRHSNode(p *core.PatNode, b *TBinding, target GroupID) (GroupID, bool) {
	if p.IsVar() {
		// Descriptor names on RHS variable leaves carry required-property
		// information in Prairie I-rules; in the purely logical space of
		// trans_rules they have no effect.
		return b.VarGroup(p.Var), false
	}
	kids := make([]GroupID, len(p.Kids))
	changed := false
	for i, kp := range p.Kids {
		kg, ch := m.buildRHSNode(kp, b, -1)
		kids[i] = kg
		changed = changed || ch
	}
	d := b.D(p.Desc).Clone()
	g, ch := m.InsertExpr(p.Op, d, kids, target)
	return g, changed || ch
}

// newTBinding returns a fresh transformation binding.
func (m *Memo) newTBinding() *TBinding {
	return &TBinding{Binding: core.NewBinding(m.rs.Algebra.Props)}
}
