package volcano

import (
	"prairie/internal/core"
)

// forEachMatch enumerates every binding of pattern p against expression e
// (patterns deeper than one operator bind interior pattern nodes against
// the expressions of the corresponding input groups — Volcano's
// cross-product pattern matching on the memo). fn is invoked once per
// complete binding; the binding is reused across invocations, so fn must
// not retain it.
func (m *Memo) forEachMatch(p *core.PatNode, e *LExpr, b *TBinding, fn func()) {
	if p.IsVar() {
		// A variable leaf matches any group; bind the group and, if the
		// pattern names a descriptor ("?1:D1"), the group's
		// representative descriptor (read-only logical information).
		b.Var[p.Var] = m.Find(e.group)
		if p.Desc != "" {
			b.Bind(p.Desc, m.Group(e.group).Rep())
		}
		fn()
		return
	}
	if e.IsLeaf() || e.Op != p.Op {
		return
	}
	if p.Desc != "" {
		b.Bind(p.Desc, e.D)
	}
	m.matchKids(p, e, 0, b, fn)
}

func (m *Memo) matchKids(p *core.PatNode, e *LExpr, i int, b *TBinding, fn func()) {
	if i == len(p.Kids) {
		fn()
		return
	}
	kp := p.Kids[i]
	kid := m.Find(e.Kids[i])
	if kp.IsVar() {
		b.Var[kp.Var] = kid
		if kp.Desc != "" {
			b.Bind(kp.Desc, m.Group(kid).Rep())
		}
		m.matchKids(p, e, i+1, b, fn)
		return
	}
	// Interior kid pattern: try every expression of the input group.
	g := m.groups[kid]
	for _, ke := range g.Exprs {
		if ke.IsLeaf() || ke.Op != kp.Op {
			continue
		}
		m.forEachMatch(kp, ke, b, func() {
			m.matchKids(p, e, i+1, b, fn)
		})
	}
}

// buildRHS interns the right-hand side of a fired transformation rule.
// Variable leaves resolve to their bound groups; interior nodes take the
// descriptors the rule's actions filled into the binding. target is the
// group the root is inserted into. It reports whether the memo changed.
func (m *Memo) buildRHS(p *core.PatNode, b *TBinding, target GroupID) bool {
	_, changed := m.buildRHSNode(p, b, target)
	return changed
}

func (m *Memo) buildRHSNode(p *core.PatNode, b *TBinding, target GroupID) (GroupID, bool) {
	if p.IsVar() {
		// Descriptor names on RHS variable leaves carry required-property
		// information in Prairie I-rules; in the purely logical space of
		// trans_rules they have no effect.
		return b.Var[p.Var], false
	}
	kids := make([]GroupID, len(p.Kids))
	changed := false
	for i, kp := range p.Kids {
		kg, ch := m.buildRHSNode(kp, b, -1)
		kids[i] = kg
		changed = changed || ch
	}
	d := b.D(p.Desc).Clone()
	g, ch := m.InsertExpr(p.Op, d, kids, target)
	return g, changed || ch
}

// newTBinding returns a fresh transformation binding.
func (m *Memo) newTBinding() *TBinding {
	return &TBinding{Binding: core.NewBinding(m.rs.Algebra.Props), Var: map[int]GroupID{}}
}
