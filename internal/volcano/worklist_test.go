package volcano

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// runWith optimizes w's chain query under one explorer kind and returns
// the optimizer (plan cost is read through findBest's memoized winner).
func runWith(t *testing.T, w *testWorld, kind ExplorerKind, cards ...float64) (*Optimizer, float64) {
	t.Helper()
	o := NewOptimizer(w.rs)
	o.Opts.Explorer = kind
	plan, err := o.Optimize(w.chain(cards...), nil)
	if err != nil {
		t.Fatalf("explorer %d: %v", kind, err)
	}
	return o, plan.D.Float(w.rs.Class.Cost)
}

// TestWorklistMatchesPassExplorer is the in-package equivalence check:
// both exploration strategies must reach the same memo closure (group
// and expression counts) and the same winning plan cost on workloads
// that exercise merging, duplicate elimination, and deep rules.
func TestWorklistMatchesPassExplorer(t *testing.T) {
	for _, cards := range [][]float64{
		{4, 2},
		{8, 4, 2},
		{16, 8, 4, 2},
		{32, 16, 8, 4, 2},
		{2, 32, 4, 16, 8},
	} {
		wp := newTestWorld()
		po, pCost := runWith(t, wp, ExplorerPasses, cards...)
		ww := newTestWorld()
		wo, wCost := runWith(t, ww, ExplorerWorklist, cards...)

		if po.Stats.Groups != wo.Stats.Groups {
			t.Errorf("cards %v: groups differ: passes %d, worklist %d", cards, po.Stats.Groups, wo.Stats.Groups)
		}
		if po.Stats.Exprs != wo.Stats.Exprs {
			t.Errorf("cards %v: exprs differ: passes %d, worklist %d", cards, po.Stats.Exprs, wo.Stats.Exprs)
		}
		if math.Abs(pCost-wCost) > 1e-9 {
			t.Errorf("cards %v: winner cost differs: passes %g, worklist %g", cards, pCost, wCost)
		}
	}
}

// TestWorklistDistinctRuleStats checks Table 5's inputs are preserved:
// the set of rules that matched/fired must agree between explorers (the
// raw counts may differ — the worklist skips re-enumerating old
// bindings).
func TestWorklistDistinctRuleStats(t *testing.T) {
	wp := newTestWorld()
	po, _ := runWith(t, wp, ExplorerPasses, 16, 8, 4, 2)
	ww := newTestWorld()
	wo, _ := runWith(t, ww, ExplorerWorklist, 16, 8, 4, 2)
	if a, b := po.Stats.DistinctTransMatched(), wo.Stats.DistinctTransMatched(); a != b {
		t.Errorf("distinct trans matched: passes %d, worklist %d", a, b)
	}
	for name, n := range po.Stats.TransFired {
		if n > 0 && wo.Stats.TransFired[name] == 0 {
			t.Errorf("rule %s fired under passes but not worklist", name)
		}
	}
}

// TestWorklistSpaceErrorDetail checks the enriched exhaustion error.
func TestWorklistSpaceErrorDetail(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	o.Opts.MaxExprs = 3
	_, err := o.Optimize(w.chain(8, 4, 2), nil)
	if err == nil {
		t.Fatal("expected exhaustion")
	}
	for _, want := range []string{"groups=", "exprs=", "passes=", "queue="} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestOptimizeBatch runs many independent optimizations over a shared
// rule set across a worker pool; run under -race this exercises the
// concurrency claims of the batch API (the lazily-built rule index is
// the only shared state).
func TestOptimizeBatch(t *testing.T) {
	w := newTestWorld()
	cards := [][]float64{
		{4, 2}, {8, 4, 2}, {16, 8, 4, 2}, {2, 4}, {32, 16, 8},
		{8, 2}, {4, 8, 2}, {2, 8, 4, 16}, {16, 2}, {8, 16, 4},
	}
	items := make([]BatchItem, len(cards))
	for i, c := range cards {
		items[i] = BatchItem{RS: w.rs, Tree: w.chain(c...), Repeats: 2}
	}
	results := OptimizeBatch(items, 4)
	if len(results) != len(items) {
		t.Fatalf("got %d results, want %d", len(results), len(items))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Plan == nil || r.Stats == nil {
			t.Fatalf("item %d: missing plan or stats", i)
		}
		// Cross-check against a sequential optimizer.
		seq := NewOptimizer(w.rs)
		plan, err := seq.Optimize(items[i].Tree.Clone(), nil)
		if err != nil {
			t.Fatal(err)
		}
		costID := w.rs.Class.Cost
		if got, want := r.Plan.D.Float(costID), plan.D.Float(costID); math.Abs(got-want) > 1e-9 {
			t.Errorf("item %d: batch cost %g, sequential %g", i, got, want)
		}
		if r.Stats.Groups != seq.Stats.Groups {
			t.Errorf("item %d: batch groups %d, sequential %d", i, r.Stats.Groups, seq.Stats.Groups)
		}
	}
}

// TestOptimizeBatchSharedRuleSetIndex hammers the lazily-built operator
// index from many goroutines on a fresh RuleSet (the sync.Once path).
func TestOptimizeBatchSharedRuleSetIndex(t *testing.T) {
	w := newTestWorld()
	tree := w.chain(8, 4, 2) // built once; goroutines clone it
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			o := NewOptimizer(w.rs)
			if _, err := o.Optimize(tree.Clone(), nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestOptimizeBatchEmpty covers the zero-item and zero-worker edges.
func TestOptimizeBatchEmpty(t *testing.T) {
	if got := OptimizeBatch(nil, 0); len(got) != 0 {
		t.Fatalf("got %d results for empty batch", len(got))
	}
	w := newTestWorld()
	res := OptimizeBatch([]BatchItem{{RS: w.rs, Tree: w.chain(4, 2)}}, 0)
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("unexpected result %+v", res)
	}
}

// TestBatchPropagatesErrors checks per-item failures stay positional.
func TestBatchPropagatesErrors(t *testing.T) {
	w := newTestWorld()
	items := []BatchItem{
		{RS: w.rs, Tree: w.chain(4, 2)},
		{RS: w.rs, Tree: w.chain(16, 8, 4, 2), Opts: Options{MaxExprs: 3}},
	}
	res := OptimizeBatch(items, 2)
	if res[0].Err != nil {
		t.Errorf("item 0: %v", res[0].Err)
	}
	if res[1].Err == nil {
		t.Error("item 1: expected space exhaustion")
	}
}
