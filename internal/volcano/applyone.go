package volcano

import (
	"prairie/internal/core"
)

// This file is the rule-verification hook into the transformation
// machinery (internal/rulecheck): single-rule application against a
// concrete operator tree, outside the memo. The memo engine matches
// patterns against equivalence groups (match.go); the per-rule verifier
// needs the same binding and action semantics but on one deterministic
// tree, so a fired rule yields a whole rewritten tree it can execute
// against the naive oracle.

// TreeMatch is one site where a trans_rule's LHS pattern matched a
// concrete logical tree: the matched node, the descriptor environment
// the rule's Cond/Appl hooks run in, and the subtrees bound to the
// pattern's variables. LHS descriptors are bound to clones, so hooks —
// including deliberately corrupted ones under mutation testing — can
// never mutate the original tree.
type TreeMatch struct {
	// Site is the matched subtree's root within the original tree.
	Site *core.Expr
	// Binding carries the descriptor environment; pattern-variable
	// groups are not bound (there is no memo).
	Binding *TBinding
	// subs maps pattern-variable id to the bound subtree.
	subs map[int]*core.Expr
}

// VarSubtree returns the subtree bound to pattern variable v (nil when
// the variable did not appear in the LHS).
func (m *TreeMatch) VarSubtree(v int) *core.Expr { return m.subs[v] }

// TreeMatches enumerates every site in tree where r's LHS matches.
// Matching a pattern against a concrete tree is deterministic: each node
// yields at most one binding (the memo's cross-product enumeration
// collapses to a single candidate per input position).
func (rs *RuleSet) TreeMatches(r *TransRule, tree *core.Expr) []*TreeMatch {
	var out []*TreeMatch
	var walk func(e *core.Expr)
	walk = func(e *core.Expr) {
		if e.IsLeaf() {
			return
		}
		if m := rs.matchTreeSite(r, e); m != nil {
			out = append(out, m)
		}
		for _, k := range e.Kids {
			walk(k)
		}
	}
	walk(tree)
	return out
}

// matchTreeSite binds r.LHS against the subtree rooted at e, returning
// nil when the pattern does not match.
func (rs *RuleSet) matchTreeSite(r *TransRule, e *core.Expr) *TreeMatch {
	m := &TreeMatch{
		Site:    e,
		Binding: &TBinding{Binding: core.NewBinding(rs.Algebra.Props)},
		subs:    map[int]*core.Expr{},
	}
	if !m.bindPat(r.LHS, e) {
		return nil
	}
	return m
}

func (m *TreeMatch) bindPat(p *core.PatNode, e *core.Expr) bool {
	if p.IsVar() {
		m.subs[p.Var] = e
		if p.Desc != "" {
			// The engine binds a variable's descriptor to the group's
			// representative; here the subtree root's descriptor plays
			// that role. Clone: rule hooks must treat it as read-only,
			// and mutation testing deliberately runs hooks that don't.
			m.Binding.Bind(p.Desc, e.D.Clone())
		}
		return true
	}
	if e.IsLeaf() || e.Op != p.Op || len(e.Kids) != len(p.Kids) {
		return false
	}
	if p.Desc != "" {
		m.Binding.Bind(p.Desc, e.D.Clone())
	}
	for i, kp := range p.Kids {
		if !m.bindPat(kp, e.Kids[i]) {
			return false
		}
	}
	return true
}

// ApplyAt fires r at match site m: it runs Cond, and when the rule
// applies, runs Appl and splices the built RHS into a clone of tree at
// the match site. It returns the rewritten tree and whether the rule
// fired. The original tree is never modified.
func (rs *RuleSet) ApplyAt(r *TransRule, tree *core.Expr, m *TreeMatch) (*core.Expr, bool) {
	if r.Cond != nil && !r.Cond(m.Binding) {
		return nil, false
	}
	if r.Appl != nil {
		r.Appl(m.Binding)
	}
	rhs := m.buildRHSTree(r.RHS)
	if rhs == nil {
		return nil, false
	}
	return spliceAt(tree, m.Site, rhs), true
}

// buildRHSTree materializes the rule's RHS pattern as a concrete tree:
// variable leaves become clones of their bound subtrees, interior nodes
// take the descriptors the rule's actions filled into the binding
// (cloned, mirroring the memo's buildRHSNode). A variable that was
// never bound on the LHS yields nil — the rewrite is malformed, which
// the caller treats as a non-application.
func (m *TreeMatch) buildRHSTree(p *core.PatNode) *core.Expr {
	if p.IsVar() {
		sub := m.subs[p.Var]
		if sub == nil {
			return nil
		}
		return sub.Clone()
	}
	kids := make([]*core.Expr, len(p.Kids))
	for i, kp := range p.Kids {
		if kids[i] = m.buildRHSTree(kp); kids[i] == nil {
			return nil
		}
	}
	return &core.Expr{Op: p.Op, D: m.Binding.D(p.Desc).Clone(), Kids: kids}
}

// spliceAt returns a copy of tree with the subtree rooted at site (found
// by node identity) replaced by repl. Unchanged subtrees are cloned too,
// so the result shares no descriptors with the original.
func spliceAt(tree, site *core.Expr, repl *core.Expr) *core.Expr {
	if tree == site {
		return repl
	}
	if tree.IsLeaf() {
		return tree.Clone()
	}
	c := &core.Expr{Op: tree.Op, File: tree.File}
	if tree.D != nil {
		c.D = tree.D.Clone()
	}
	c.Kids = make([]*core.Expr, len(tree.Kids))
	for i, k := range tree.Kids {
		c.Kids[i] = spliceAt(k, site, repl)
	}
	return c
}

// ApplyRule fires r at every match site in tree, returning one
// rewritten tree per site where the rule's condition held.
func (rs *RuleSet) ApplyRule(r *TransRule, tree *core.Expr) []*core.Expr {
	var out []*core.Expr
	for _, m := range rs.TreeMatches(r, tree) {
		if rw, ok := rs.ApplyAt(r, tree, m); ok {
			out = append(out, rw)
		}
	}
	return out
}
