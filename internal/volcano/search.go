package volcano

import (
	"errors"
	"fmt"
	"math"

	"prairie/internal/core"
)

// ErrSpaceExhausted is returned when the search space exceeds the
// optimizer's expression limit — the analogue of the paper's experiments
// exhausting virtual memory on large queries.
var ErrSpaceExhausted = errors.New("volcano: search space exhausted (expression limit reached)")

// ErrNoPlan is returned when no access plan satisfies the requested
// physical properties.
var ErrNoPlan = errors.New("volcano: no feasible access plan")

// Options tunes the optimizer.
type Options struct {
	// MaxExprs caps the number of logical expressions (0 = default).
	MaxExprs int
	// MaxPasses caps exploration fixpoint passes (0 = default); hitting
	// it indicates a diverging rule set.
	MaxPasses int
}

// DefaultMaxExprs is the default search-space cap.
const DefaultMaxExprs = 4_000_000

// DefaultMaxPasses is the default exploration pass cap.
const DefaultMaxPasses = 10_000

// Optimizer drives a Volcano-style top-down optimization: it expands the
// memo to the transformation fixpoint, then computes the cheapest access
// plan per (equivalence class, required physical properties) with
// memoized winners and branch-and-bound pruning.
type Optimizer struct {
	RS    *RuleSet
	Memo  *Memo
	Stats *Stats
	Opts  Options
	// OnEvent, when set, receives a trace of rule firings, costed and
	// rejected alternatives, enforcer applications, and winners.
	OnEvent func(Event)
}

// NewOptimizer returns an optimizer over a fresh memo.
func NewOptimizer(rs *RuleSet) *Optimizer {
	return &Optimizer{RS: rs, Memo: NewMemo(rs), Stats: NewStats()}
}

func (o *Optimizer) maxExprs() int {
	if o.Opts.MaxExprs > 0 {
		return o.Opts.MaxExprs
	}
	return DefaultMaxExprs
}

func (o *Optimizer) maxPasses() int {
	if o.Opts.MaxPasses > 0 {
		return o.Opts.MaxPasses
	}
	return DefaultMaxPasses
}

// Optimize maps an initialized operator tree to its cheapest access plan
// that satisfies req's physical properties (req may be nil for "no
// requirement"). It returns the winning plan; Stats describe the search.
func (o *Optimizer) Optimize(tree *core.Expr, req *core.Descriptor) (*PExpr, error) {
	root := o.Memo.Insert(tree)
	if err := o.explore(); err != nil {
		return nil, err
	}
	if req == nil {
		req = core.NewDescriptor(o.RS.Algebra.Props)
	}
	plan, _, err := o.findBest(root, req)
	o.Stats.Groups = o.Memo.NumGroups()
	o.Stats.Exprs = o.Memo.NumExprs()
	o.Stats.Merges = o.Memo.Merges()
	if err != nil {
		return nil, err
	}
	if plan == nil {
		return nil, ErrNoPlan
	}
	return plan, nil
}

// explore applies transformation rules to a global fixpoint with
// duplicate elimination: the constraint-driven expansion of the search
// space. Deep patterns (depth > 1) are retried every pass because new
// expressions in input groups can enable new bindings; depth-1 rules are
// applied once per (expression, rule).
func (o *Optimizer) explore() error {
	m := o.Memo
	type ruleMark struct {
		e *LExpr
		r int
	}
	done := map[ruleMark]bool{}
	// For deep patterns, remember the input-group versions at the last
	// application: a re-match can only yield new bindings if some input
	// group gained expressions since (Volcano's derivation tracking).
	deepSeen := map[ruleMark]uint64{}
	kidFingerprint := func(e *LExpr) uint64 {
		var fp uint64 = 1469598103934665603
		for _, k := range e.Kids {
			fp = fp*1099511628211 + m.Group(k).version
		}
		return fp
	}
	for pass := 0; ; pass++ {
		if pass >= o.maxPasses() {
			return fmt.Errorf("volcano: exploration did not converge in %d passes", pass)
		}
		o.Stats.Passes = pass + 1
		changed := false
		for gi := 0; gi < len(m.groups); gi++ {
			if m.Find(GroupID(gi)) != GroupID(gi) {
				continue
			}
			g := m.groups[gi]
			for ei := 0; ei < len(g.Exprs); ei++ {
				e := g.Exprs[ei]
				if e.IsLeaf() {
					continue
				}
				for ri, rule := range o.RS.Trans {
					if rule.LHS.Op != e.Op {
						continue
					}
					shallow := rule.LHS.Depth() <= 1
					mark := ruleMark{e, ri}
					if shallow && done[mark] {
						continue
					}
					var fp uint64
					if !shallow {
						fp = kidFingerprint(e)
						if last, ok := deepSeen[mark]; ok && last == fp {
							continue
						}
					}
					if o.applyTrans(rule, e) {
						changed = true
					}
					if shallow {
						done[mark] = true
					} else {
						// Applying the rule may itself have grown the
						// input groups; fingerprint after application so
						// self-induced growth is re-examined next pass.
						deepSeen[mark] = fp
					}
					if m.NumExprs() > o.maxExprs() {
						return ErrSpaceExhausted
					}
				}
			}
		}
		if m.Dirty() {
			m.Rehash()
			changed = true
		}
		if !changed {
			return nil
		}
	}
}

// applyTrans fires one transformation rule on one expression for every
// binding; it reports whether the memo changed.
func (o *Optimizer) applyTrans(rule *TransRule, e *LExpr) bool {
	m := o.Memo
	changed := false
	b := m.newTBinding()
	m.forEachMatch(rule.LHS, e, b, func() {
		o.Stats.TransMatched[rule.Name]++
		// Run the rule's actions on a private binding: LHS descriptors
		// are shared (read-only), RHS descriptors are created fresh per
		// match by the actions.
		rb := m.newTBinding()
		for _, name := range b.Names() {
			rb.Bind(name, b.D(name))
		}
		for v, g := range b.Var {
			rb.Var[v] = g
		}
		if rule.Cond != nil && !rule.Cond(rb) {
			return
		}
		o.Stats.TransFired[rule.Name]++
		o.emit(EventTransFired, rule.Name, m.Find(e.group), e.String(), 0)
		if rule.Appl != nil {
			rule.Appl(rb)
		}
		if m.buildRHS(rule.RHS, rb, m.Find(e.group)) {
			changed = true
		}
	})
	return changed
}

// findBest computes (memoized) the cheapest plan for group g that
// satisfies the required physical properties.
func (o *Optimizer) findBest(g GroupID, req *core.Descriptor) (*PExpr, float64, error) {
	m := o.Memo
	g = m.Find(g)
	grp := m.groups[g]
	phys := o.RS.Class.Phys
	key := req.HashOn(phys)
	for _, w := range grp.winners[key] {
		if w.req.EqualOn(req, phys) {
			if w.inProgress {
				return nil, 0, fmt.Errorf("volcano: cyclic optimization of group %d", g)
			}
			return w.plan, w.cost, nil
		}
	}
	w := &winnerEntry{req: req.Clone(), inProgress: true, cost: math.Inf(1)}
	grp.winners[key] = append(grp.winners[key], w)
	o.Stats.Winners++

	best, bestCost, err := o.optimizeGroup(grp, req)
	w.inProgress = false
	if err != nil {
		w.plan, w.cost = nil, math.Inf(1)
		return nil, 0, err
	}
	w.plan, w.cost = best, bestCost
	if best != nil {
		o.emit(EventWinner, "", g, reqString(req, o.RS.Class.Phys)+" -> "+best.String(), bestCost)
	}
	return best, bestCost, nil
}

func (o *Optimizer) optimizeGroup(grp *Group, req *core.Descriptor) (*PExpr, float64, error) {
	phys := o.RS.Class.Phys
	costID := o.RS.Class.Cost
	var best *PExpr
	bestCost := math.Inf(1)

	consider := func(plan *PExpr, cost float64) {
		o.Stats.CostedPlans++
		if cost < bestCost {
			best, bestCost = plan, cost
		}
	}

	for _, e := range grp.Exprs {
		if e.IsLeaf() {
			// A stored file satisfies a requirement only as-is; RET
			// algorithms above it decide access paths.
			if e.D.SatisfiesOn(req, phys) {
				consider(&PExpr{File: e.File, D: e.D}, e.D.Float(costID))
			}
			continue
		}
		for _, rule := range o.RS.Impls {
			if rule.Op != e.Op {
				continue
			}
			o.Stats.ImplMatched[rule.Name]++
			cx := &ImplCtx{
				OpDesc: mergeReq(e.D, req, phys),
				Req:    req,
				Kids:   make([]*core.Descriptor, len(e.Kids)),
				In:     make([]*core.Descriptor, len(e.Kids)),
			}
			for i, k := range e.Kids {
				cx.Kids[i] = o.Memo.Group(k).Rep()
			}
			if rule.Cond != nil && !rule.Cond(cx) {
				o.emit(EventImplRejected, rule.Name, grp.ID, "condition failed", 0)
				continue
			}
			o.Stats.ImplFired[rule.Name]++
			algD, inReq := rule.Pre(cx)
			kids := make([]*PExpr, len(e.Kids))
			acc := 0.0
			ok := true
			for i, k := range e.Kids {
				r := core.NewDescriptor(o.RS.Algebra.Props)
				if i < len(inReq) && inReq[i] != nil {
					r = inReq[i]
				}
				plan, cost, err := o.findBest(k, r)
				if err != nil {
					return nil, 0, err
				}
				if plan == nil {
					ok = false
					break
				}
				kids[i] = plan
				cx.In[i] = plan.D
				acc += cost
				if o.RS.MonotonicCosts && acc >= bestCost {
					o.Stats.Pruned++
					ok = false
					break
				}
			}
			if !ok {
				o.emit(EventImplRejected, rule.Name, grp.ID, "infeasible or pruned input", 0)
				continue
			}
			rule.Post(cx, algD)
			if !algD.SatisfiesOn(req, phys) {
				o.emit(EventImplRejected, rule.Name, grp.ID, "required properties unsatisfied", 0)
				continue
			}
			o.emit(EventImplCosted, rule.Name, grp.ID, rule.Alg.Name, algD.Float(costID))
			consider(&PExpr{Alg: rule.Alg, D: algD, Kids: kids}, algD.Float(costID))
		}
	}

	// Enforcers: produce a required property on top of a plan for the
	// same group with that property relaxed.
	for _, enf := range o.RS.Enforcers {
		cx := &ImplCtx{
			OpDesc: mergeReq(grp.Rep(), req, phys),
			Req:    req,
		}
		if !o.enforcerApplies(enf, cx) {
			continue
		}
		o.Stats.EnfMatched[enf.Name]++
		algD, inReq := enf.Pre(cx)
		if inReq.EqualOn(req, phys) {
			// The enforcer did not relax anything; applying it would
			// recurse forever.
			continue
		}
		plan, _, err := o.findBest(grp.ID, inReq)
		if err != nil {
			return nil, 0, err
		}
		if plan == nil {
			continue
		}
		cx.In = []*core.Descriptor{plan.D}
		enf.Post(cx, algD)
		if !algD.SatisfiesOn(req, phys) {
			continue
		}
		o.Stats.EnfFired[enf.Name]++
		o.emit(EventEnforcerApplied, enf.Name, grp.ID, enf.Alg.Name, algD.Float(costID))
		consider(&PExpr{Alg: enf.Alg, D: algD, Kids: []*PExpr{plan}}, algD.Float(costID))
	}

	if best == nil {
		return nil, math.Inf(1), nil
	}
	return best, bestCost, nil
}

func (o *Optimizer) enforcerApplies(enf *Enforcer, cx *ImplCtx) bool {
	if enf.Cond != nil {
		return enf.Cond(cx)
	}
	for _, p := range enf.Props {
		if cx.Req.Has(p) && !cx.Req.Get(p).IsDontCare() {
			return true
		}
	}
	return false
}

// mergeReq returns a copy of d with the explicitly-set physical
// properties of req overriding d's — the descriptor an implementation
// rule sees as its operator's (requirements flow top-down in Prairie by
// assigning input descriptors' properties, §2.4).
func mergeReq(d, req *core.Descriptor, phys []core.PropID) *core.Descriptor {
	out := d.Clone()
	for _, p := range phys {
		if req.Has(p) {
			out.Set(p, req.Get(p))
		}
	}
	return out
}
