package volcano

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"prairie/internal/core"
	"prairie/internal/obs"
)

// ErrSpaceExhausted is returned when the search space exceeds the
// optimizer's expression limit — the analogue of the paper's experiments
// exhausting virtual memory on large queries. The returned error wraps
// this sentinel with memo statistics (test with errors.Is).
var ErrSpaceExhausted = errors.New("volcano: search space exhausted (expression limit reached)")

// ErrNoPlan is returned when no access plan satisfies the requested
// physical properties.
var ErrNoPlan = errors.New("volcano: no feasible access plan")

// errBudget is the internal interrupt signal: exploration or costing hit
// the run's Budget or its context was cancelled. It never escapes
// OptimizeContext — the degrade path turns it into a plan.
var errBudget = errors.New("volcano: budget interrupted")

// ExplorerKind selects the exploration strategy.
type ExplorerKind int

const (
	// ExplorerWorklist (the default) drives exploration from a
	// dependency worklist: when a group gains an expression, only the
	// expressions referencing that group as an input are revisited.
	ExplorerWorklist ExplorerKind = iota
	// ExplorerPasses is the original strategy: global fixpoint passes
	// re-scanning every (expression, rule) pair. Kept as the reference
	// implementation for the equivalence harness.
	ExplorerPasses
)

// Options tunes the optimizer.
type Options struct {
	// MaxExprs caps the number of logical expressions (0 = default).
	// This is the hard cap: exceeding it fails with ErrSpaceExhausted.
	// For a soft cap that degrades to a plan instead, see Budget.
	MaxExprs int
	// MaxPasses caps exploration fixpoint passes (0 = default); hitting
	// it indicates a diverging rule set. The worklist explorer counts a
	// pass per drain-rehash cycle.
	MaxPasses int
	// Explorer selects the exploration strategy (default worklist).
	Explorer ExplorerKind
	// Budget bounds search effort softly: exceeding any dimension makes
	// the optimizer return a degraded plan rather than an error. A zero
	// Budget leaves behaviour identical to previous releases.
	Budget Budget
	// Obs attaches observability sinks (metrics, spans, per-rule
	// timing); nil — the default — disables all instrumentation behind
	// single-branch guards, leaving plans and stats byte-identical to
	// unobserved releases.
	Obs *obs.Observer
	// TraceTID labels this optimizer's rows in an attached obs.Tracer
	// (the Chrome-trace thread id); 0 renders as tid 1. Batch workers
	// set distinct ids so concurrent optimizations appear as separate
	// rows in Perfetto.
	TraceTID int
	// Cache attaches a cross-query plan cache: structurally equivalent
	// queries (same fingerprint, requirement, budget class, rule-set
	// scope) skip the search entirely, concurrent misses collapse to one
	// search, and cold searches warm-start branch-and-bound from cached
	// subtree winners. nil — the default — leaves plans, stats, and
	// errors byte-identical to a cacheless build.
	Cache *PlanCache
	// Tier selects the planning tier (see tier.go): TierFull — the zero
	// value — is the classic complete search, byte-identical to builds
	// without tiering; TierGreedy serves the sub-millisecond greedy
	// plan; TierAuto serves greedy first and refines in the background
	// per Router policy when a Cache is attached.
	Tier TierMode
	// Router is the shared adaptive tier policy consulted by TierAuto
	// (nil: always refine). It also owns the background refiner
	// lifecycle; share one Router across every optimizer of a serving
	// surface.
	Router *Router
	// Phases, when set, receives coarse per-phase wall timings (cache
	// acquire, greedy plan, full search, background refinement) for the
	// request-scoped flight recorder. nil — the default — keeps every
	// instrumentation point a single untaken branch, leaving plans and
	// Stats byte-identical to an unrecorded run.
	Phases *obs.PhaseClock
	// OnRefine, when set, is called from the background refiner
	// goroutine when a TierAuto refinement spawned by this run finishes,
	// so its outcome can be linked back to the originating request. The
	// callback must be safe to invoke after the request completed.
	OnRefine func(RefineOutcome)
	// Remote attaches a cluster peer-fill hook consulted by cache-miss
	// leaders before searching (see remote.go): the key's owning peer
	// may answer from its shard, park this node behind a cluster-wide
	// flight, or grant it the lead. nil — the default — keeps every
	// cluster touchpoint a single untaken branch, leaving single-node
	// runs byte-identical. Remote applies only to the full-tier cached
	// path: the peer protocol never transports greedy plans.
	Remote RemoteCache
}

// DefaultMaxExprs is the default search-space cap.
const DefaultMaxExprs = 4_000_000

// DefaultMaxPasses is the default exploration pass cap.
const DefaultMaxPasses = 10_000

// Optimizer drives a Volcano-style top-down optimization: it expands the
// memo to the transformation fixpoint, then computes the cheapest access
// plan per (equivalence class, required physical properties) with
// memoized winners and branch-and-bound pruning.
//
// An Optimizer is not safe for concurrent use; run one per goroutine
// (they may share a RuleSet — see OptimizeBatch).
type Optimizer struct {
	RS    *RuleSet
	Memo  *Memo
	Stats *Stats
	Opts  Options
	// OnEvent, when set, receives a trace of rule firings, costed and
	// rejected alternatives, enforcer applications, and winners.
	OnEvent func(Event)

	// scratch bindings reused across every rule application (exploration
	// is single-threaded per optimizer); rule hooks must not retain them.
	scratchB, scratchRB *TBinding
	// per-rule counters indexed by position in RS.Trans; flushed into the
	// name-keyed Stats maps when exploration ends — including the
	// ErrSpaceExhausted and budget-interrupt paths — so the hot loop
	// never hashes rule names yet diagnostics always reflect the work
	// actually done.
	transMatchedN, transFiredN []int
	// transTimeN accumulates per-rule match+fire wall time by rule
	// position when per-rule timing is enabled; flushed with the
	// counters into Stats.TransTime.
	transTimeN []time.Duration
	// cached observability state of the current run (see observe.go):
	// timing gates the clock reads, tr the span/counter emissions.
	timing bool
	tr     *obs.Tracer
	tid    int
	// run is the resource accounting of the current OptimizeContext call
	// (see budget.go).
	run budgetState
	// warm marks a cache-miss leader run: optimizeContext installs
	// warm-start seeds for the query's subtrees (see cache.go).
	warm bool
	// seeds are the current run's warm-start candidates; findBest
	// consults them via lookupSeed.
	seeds []cacheSeed
}

// NewOptimizer returns an optimizer over a fresh memo.
func NewOptimizer(rs *RuleSet) *Optimizer {
	return &Optimizer{RS: rs, Memo: NewMemo(rs), Stats: NewStats()}
}

func (o *Optimizer) maxExprs() int {
	if o.Opts.MaxExprs > 0 {
		return o.Opts.MaxExprs
	}
	return DefaultMaxExprs
}

func (o *Optimizer) maxPasses() int {
	if o.Opts.MaxPasses > 0 {
		return o.Opts.MaxPasses
	}
	return DefaultMaxPasses
}

// Optimize maps an initialized operator tree to its cheapest access plan
// that satisfies req's physical properties (req may be nil for "no
// requirement"). It returns the winning plan; Stats describe the search.
func (o *Optimizer) Optimize(tree *core.Expr, req *core.Descriptor) (*PExpr, error) {
	return o.OptimizeContext(context.Background(), tree, req)
}

// OptimizeContext is Optimize governed by a cancellation context and the
// options' Budget. When the search exceeds the budget or ctx is
// cancelled, the optimizer degrades gracefully instead of failing: it
// salvages the best plan costable from the already-explored memo, or —
// when no complete winner exists, or on hard cancellation — falls back
// to the greedy bottom-up plan of the original tree. Degraded results
// are marked in Stats (Degraded, DegradeCause, DegradePath). With a
// background context and a zero Budget the behaviour and results are
// identical to Optimize in previous releases.
func (o *Optimizer) OptimizeContext(ctx context.Context, tree *core.Expr, req *core.Descriptor) (*PExpr, error) {
	o.beginObs()
	if ob := o.Opts.Obs; ob.Enabled() {
		// The observed wrapper lives outside the search proper: spans
		// and metric flushes bracket the run, so the engine's hot loops
		// only ever see the cached o.timing / o.tr guards.
		start := time.Now()
		sp := o.tr.Begin(o.tid, "optimize", "optimize")
		plan, err := o.dispatchOptimize(ctx, tree, req)
		sp.EndArgs(map[string]any{
			"groups": o.Stats.Groups, "exprs": o.Stats.Exprs,
			"winners": o.Stats.Winners, "degraded": o.Stats.Degraded,
		})
		recordRun(ob, o.Stats, time.Since(start), err)
		return plan, err
	}
	return o.dispatchOptimize(ctx, tree, req)
}

// dispatchOptimize routes tiered requests to the anytime planner and
// cached requests through the plan cache; the cacheless full-tier path
// is a direct call, keeping disabled-cache untiered runs byte-identical
// to previous releases (TierFull with an attached Router takes exactly
// the same path — the router is consulted only by TierAuto).
func (o *Optimizer) dispatchOptimize(ctx context.Context, tree *core.Expr, req *core.Descriptor) (*PExpr, error) {
	if o.Opts.Tier != TierFull {
		return o.tieredOptimize(ctx, tree, req)
	}
	if o.Opts.Cache.Enabled() {
		return o.cachedOptimize(ctx, tree, req)
	}
	return o.optimizeContext(ctx, tree, req)
}

func (o *Optimizer) optimizeContext(ctx context.Context, tree *core.Expr, req *core.Descriptor) (*PExpr, error) {
	if ph := o.Opts.Phases; ph != nil {
		start := time.Now()
		defer func() { ph.Observe(obs.PhaseFull, start, time.Since(start)) }()
	}
	o.beginRun(ctx)
	if req == nil {
		req = core.NewDescriptor(o.RS.Algebra.Props)
	}
	root := o.Memo.Insert(tree)
	if o.warm {
		o.installSeeds(tree)
	} else if len(o.seeds) != 0 {
		o.seeds = o.seeds[:0]
	}
	if err := o.explore(); err != nil {
		if errors.Is(err, errBudget) {
			return o.degrade(root, tree, req)
		}
		o.recordMemoStats()
		return nil, err
	}
	plan, _, err := o.findBest(root, req)
	o.recordMemoStats()
	if err != nil {
		if errors.Is(err, errBudget) {
			return o.degrade(root, tree, req)
		}
		return nil, err
	}
	if plan == nil {
		return nil, ErrNoPlan
	}
	return plan, nil
}

// recordMemoStats snapshots the memo counters into Stats; it runs on
// every exit path (success, degradation, and errors) so partial searches
// report the work actually done.
func (o *Optimizer) recordMemoStats() {
	o.Stats.Groups = o.Memo.NumGroups()
	o.Stats.Exprs = o.Memo.NumExprs()
	o.Stats.Merges = o.Memo.Merges()
	o.Stats.MemoBytes = o.Memo.MemEstimate()
	o.Stats.BudgetChecks = o.run.ticks
}

// degrade turns a budget interrupt into a plan. The memo is first
// brought to a consistent state (eager dedup may be pending), then the
// salvage pass costs the explored contents; if that yields no complete
// winner — or the run was hard-cancelled, where salvaging the memo
// would prolong the search the caller asked to stop — the greedy
// bottom-up baseline over the original tree is used.
func (o *Optimizer) degrade(root GroupID, tree *core.Expr, req *core.Descriptor) (*PExpr, error) {
	o.Stats.Degraded = true
	o.Stats.DegradeCause = o.run.cause
	o.run.salvage = true
	defer o.recordMemoStats()
	if o.Memo.Dirty() {
		o.Memo.Rehash()
	}
	if o.run.cause != CauseCancelled {
		plan, _, err := o.findBest(root, req)
		if err != nil && !errors.Is(err, errBudget) {
			return nil, err
		}
		if err == nil && plan != nil {
			o.Stats.DegradePath = DegradePathMemo
			return plan, nil
		}
	}
	plan, err := greedyPlan(o.RS, tree, req, o.Stats)
	if err != nil {
		return nil, fmt.Errorf("volcano: degraded search (%s) found no fallback plan: %w",
			o.run.cause, err)
	}
	o.Stats.DegradePath = DegradePathBottomUp
	return plan, nil
}

// spaceExhausted wraps ErrSpaceExhausted with the memo statistics at the
// moment the limit was hit, so E3/E4 blowups are diagnosable from the
// error alone.
func (o *Optimizer) spaceExhausted(queue int) error {
	return fmt.Errorf("%w: groups=%d exprs=%d merges=%d passes=%d queue=%d",
		ErrSpaceExhausted, o.Memo.NumGroups(), o.Memo.NumExprs(),
		o.Memo.Merges(), o.Stats.Passes, queue)
}

// explore expands the memo to the transformation fixpoint with duplicate
// elimination — the constraint-driven expansion of the search space.
func (o *Optimizer) explore() error {
	o.initRuleCounters()
	defer o.flushRuleCounters()
	if o.tr != nil {
		sp := o.tr.Begin(o.tid, "explore", "explore")
		defer func() {
			sp.EndArgs(map[string]any{
				"groups": o.Memo.NumGroups(), "exprs": o.Memo.NumExprs(),
				"passes": o.Stats.Passes,
			})
		}()
	}
	if o.Opts.Explorer == ExplorerPasses {
		return o.explorePasses()
	}
	return o.exploreWorklist()
}

func (o *Optimizer) initRuleCounters() {
	if o.transMatchedN == nil {
		o.transMatchedN = make([]int, len(o.RS.Trans))
		o.transFiredN = make([]int, len(o.RS.Trans))
	}
	if o.timing && o.transTimeN == nil {
		o.transTimeN = make([]time.Duration, len(o.RS.Trans))
	}
}

func (o *Optimizer) flushRuleCounters() {
	for i, n := range o.transMatchedN {
		if n != 0 {
			o.Stats.TransMatched[o.RS.Trans[i].Name] += n
			o.transMatchedN[i] = 0
		}
	}
	for i, n := range o.transFiredN {
		if n != 0 {
			o.Stats.TransFired[o.RS.Trans[i].Name] += n
			o.transFiredN[i] = 0
		}
	}
	for i, d := range o.transTimeN {
		if d != 0 {
			if o.Stats.TransTime == nil {
				o.Stats.TransTime = map[string]time.Duration{}
			}
			o.Stats.TransTime[o.RS.Trans[i].Name] += d
			o.transTimeN[i] = 0
		}
	}
}

// explorer is the dependency-driven worklist state. It implements
// memoHooks so memo growth feeds the queue directly: a new expression is
// enqueued itself and re-enqueues the parents of the group it joined;
// merged groups are restamped after Rehash so cross-group bindings read
// as new to their parents.
type explorer struct {
	o *Optimizer
	m *Memo
	// queue is a FIFO of expressions whose rule bindings may have grown;
	// head indexes the next entry (slice is reused, not popped).
	queue []*LExpr
	head  int
	// parents maps a canonical group id to the expressions that
	// reference it as a direct input — the back edges along which
	// change propagates.
	parents map[GroupID][]*LExpr
	// merged accumulates surviving canonical group ids of merges since
	// the last Rehash; afterRehash restamps them and wakes their parents.
	merged []GroupID
}

func (x *explorer) push(e *LExpr) {
	if e.dead || e.queued || e.IsLeaf() {
		return
	}
	e.queued = true
	x.queue = append(x.queue, e)
	if depth := len(x.queue) - x.head; depth > x.o.Stats.MaxQueue {
		x.o.Stats.MaxQueue = depth
	}
}

func (x *explorer) pop() *LExpr {
	for x.head < len(x.queue) {
		e := x.queue[x.head]
		x.head++
		e.queued = false
		if e.dead {
			continue
		}
		return e
	}
	x.queue = x.queue[:0]
	x.head = 0
	return nil
}

func (x *explorer) depth() int { return len(x.queue) - x.head }

// hasWork reports whether a live expression is pending, discarding dead
// entries at the front.
func (x *explorer) hasWork() bool {
	for x.head < len(x.queue) {
		if !x.queue[x.head].dead {
			return true
		}
		x.queue[x.head].queued = false
		x.head++
	}
	x.queue = x.queue[:0]
	x.head = 0
	return false
}

// addParents registers e as a parent of each of its input groups.
func (x *explorer) addParents(e *LExpr) {
	for _, k := range e.Kids {
		kg := x.m.Find(k)
		x.parents[kg] = append(x.parents[kg], e)
	}
}

// seed loads the initial memo (the inserted query tree) into the
// worklist and parent index; hooks take over from there.
func (x *explorer) seed() {
	for _, g := range x.m.Groups() {
		for _, e := range g.Exprs {
			if e.dead {
				continue
			}
			x.addParents(e)
			x.push(e)
		}
	}
}

// exprAdded (memoHooks) fires on genuinely new expressions: the
// expression itself may root new bindings, and the group it joined is a
// new input alternative for every parent expression.
func (x *explorer) exprAdded(e *LExpr) {
	x.addParents(e)
	x.push(e)
	for _, p := range x.parents[x.m.Find(e.group)] {
		x.push(p)
	}
}

// groupsMerged (memoHooks) moves the loser's parent list to the winner.
// Waking the parents is deferred to afterRehash: mid-Rehash the winner's
// expression set is still being rebuilt.
func (x *explorer) groupsMerged(winner, loser GroupID) {
	x.parents[winner] = append(x.parents[winner], x.parents[loser]...)
	delete(x.parents, loser)
	x.merged = append(x.merged, winner)
}

// afterRehash wakes the parents of every group that survived a merge:
// the union made each side's expressions newly visible to the other
// side's parents, so each parent gets one full re-enumeration (its deep
// horizons reset to zero — the same semantics as the pass-based
// explorer's kid-version fingerprint going stale). Resetting horizons
// instead of restamping the group keeps the merge local: other parents'
// incremental filters are unaffected.
func (x *explorer) afterRehash() {
	for _, gid := range x.merged {
		g := x.m.Find(gid)
		for _, p := range x.parents[g] {
			if p.dead {
				continue
			}
			x.resetDeepHorizons(p)
			x.push(p)
		}
	}
	x.merged = x.merged[:0]
}

// resetDeepHorizons forces full re-enumeration of p's deep rules on its
// next visit. Shallow rules stay done: their bindings reference input
// groups wholesale and are unaffected by group contents.
func (x *explorer) resetDeepHorizons(p *LExpr) {
	if p.ruleSince == nil {
		return
	}
	for i, te := range x.o.RS.transFor(p.Op) {
		if !te.shallow {
			p.ruleSince[i] = 0
		}
	}
}

// anyKidNewer reports whether any direct input group of e gained an
// expression at or after since — the cheap gate deciding whether a deep
// rule can possibly find a new binding (matching the pass-based
// explorer's direct-kid fingerprint: grand-kid growth alone never
// retriggers, and the repository's rule patterns are depth ≤ 2).
func (x *explorer) anyKidNewer(e *LExpr, since uint64) bool {
	for _, k := range e.Kids {
		if x.m.Group(k).maxSeq >= since {
			return true
		}
	}
	return false
}

// process applies every transformation rule rooted at e's operator,
// enumerating only bindings not seen at the previous visit.
func (x *explorer) process(e *LExpr) error {
	o, m := x.o, x.m
	entries := o.RS.transFor(e.Op)
	if len(entries) == 0 {
		return nil
	}
	if e.ruleSince == nil {
		e.ruleSince = make([]uint64, len(entries))
	}
	for i := range entries {
		te := &entries[i]
		if te.shallow {
			// A depth-1 pattern binds e and whole input groups; its
			// binding set never grows, so one application suffices.
			if e.ruleSince[i] != 0 {
				continue
			}
			e.ruleSince[i] = 1
			o.applyTrans(te.rule, te.idx, e, 0)
		} else {
			since := e.ruleSince[i]
			if since != 0 && e.seq < since && !x.anyKidNewer(e, since) {
				continue
			}
			// Expressions inserted by this very application stamp at or
			// above the horizon, so self-induced growth is re-examined
			// on the next visit (the insertion hook re-enqueues e).
			horizon := m.seq + 1
			o.applyTrans(te.rule, te.idx, e, since)
			e.ruleSince[i] = horizon
		}
		if m.NumExprs() > o.maxExprs() {
			return o.spaceExhausted(x.depth())
		}
		if o.overBudget() {
			return errBudget
		}
	}
	return nil
}

// exploreWorklist reaches the same fixpoint as explorePasses (memo
// insertion is monotone, so any order of rule applications converges to
// the same closure) but touches only expressions whose binding sets can
// actually have grown. Duplicate elimination runs eagerly — as soon as a
// merge dirties the index — so duplicates collapse before stale index
// lookups can cascade them into further spurious groups and merges; each
// rehash round counts as a pass against MaxPasses.
func (o *Optimizer) exploreWorklist() error {
	m := o.Memo
	x := &explorer{o: o, m: m, parents: make(map[GroupID][]*LExpr)}
	x.seed()
	m.hooks = x
	defer func() { m.hooks = nil }()
	o.Stats.Passes = 1
	pops := 0
	for {
		if o.overBudget() {
			return errBudget
		}
		e := x.pop()
		if e != nil {
			if err := x.process(e); err != nil {
				return err
			}
			if o.tr != nil {
				// Downsampled timeline counters: worklist depth and memo
				// growth render as graphs in Perfetto.
				if pops++; pops&63 == 0 {
					o.tr.Counter(o.tid, "worklist_depth", float64(x.depth()))
					o.tr.Counter(o.tid, "memo_exprs", float64(m.NumExprs()))
				}
			}
		}
		if m.Dirty() {
			m.Rehash()
			x.afterRehash()
			o.Stats.Passes++
			if o.Stats.Passes > o.maxPasses() && x.hasWork() {
				return fmt.Errorf("volcano: exploration did not converge in %d passes", o.maxPasses())
			}
		}
		if e == nil && !x.hasWork() {
			return nil
		}
	}
}

// explorePasses is the original strategy: global fixpoint passes over
// every (expression × rule) pair. Deep patterns (depth > 1) are retried
// every pass because new expressions in input groups can enable new
// bindings; depth-1 rules are applied once per (expression, rule).
func (o *Optimizer) explorePasses() error {
	m := o.Memo
	type ruleMark struct {
		e *LExpr
		r int
	}
	done := map[ruleMark]bool{}
	// For deep patterns, remember the input-group versions at the last
	// application: a re-match can only yield new bindings if some input
	// group gained expressions since (Volcano's derivation tracking).
	deepSeen := map[ruleMark]uint64{}
	kidFingerprint := func(e *LExpr) uint64 {
		var fp uint64 = 1469598103934665603
		for _, k := range e.Kids {
			fp = fp*1099511628211 + m.Group(k).version
		}
		return fp
	}
	for pass := 0; ; pass++ {
		if pass >= o.maxPasses() {
			return fmt.Errorf("volcano: exploration did not converge in %d passes", pass)
		}
		o.Stats.Passes = pass + 1
		changed := false
		for gi := 0; gi < len(m.groups); gi++ {
			if m.Find(GroupID(gi)) != GroupID(gi) {
				continue
			}
			g := m.groups[gi]
			for ei := 0; ei < len(g.Exprs); ei++ {
				e := g.Exprs[ei]
				if e.IsLeaf() {
					continue
				}
				if o.overBudget() {
					return errBudget
				}
				for _, te := range o.RS.transFor(e.Op) {
					mark := ruleMark{e, te.idx}
					if te.shallow && done[mark] {
						continue
					}
					var fp uint64
					if !te.shallow {
						fp = kidFingerprint(e)
						if last, ok := deepSeen[mark]; ok && last == fp {
							continue
						}
					}
					if o.applyTrans(te.rule, te.idx, e, 0) {
						changed = true
					}
					if te.shallow {
						done[mark] = true
					} else {
						// Applying the rule may itself have grown the
						// input groups; fingerprint after application so
						// self-induced growth is re-examined next pass.
						deepSeen[mark] = fp
					}
					if m.NumExprs() > o.maxExprs() {
						return o.spaceExhausted(0)
					}
				}
			}
		}
		if m.Dirty() {
			m.Rehash()
			changed = true
		}
		if !changed {
			return nil
		}
	}
}

// applyTrans fires one transformation rule on one expression for every
// binding involving at least one expression stamped at or after since
// (0 enumerates everything); it reports whether the memo changed. The
// two scratch bindings are reused across all applications: b is the
// match environment, rb the per-match private copy the rule's hooks run
// in (LHS descriptors shared read-only, RHS descriptors created fresh
// by the actions).
func (o *Optimizer) applyTrans(rule *TransRule, ri int, e *LExpr, since uint64) bool {
	m := o.Memo
	changed := false
	if o.scratchB == nil {
		o.scratchB = m.newTBinding()
		o.scratchRB = m.newTBinding()
	}
	var t0 time.Time
	if o.timing {
		t0 = time.Now()
	}
	m.curRule = rule.Name
	b, rb := o.scratchB, o.scratchRB
	b.reset()
	m.forEachMatch(rule.LHS, e, b, since, e.seq >= since, func(fresh bool) {
		if !fresh {
			return
		}
		o.transMatchedN[ri]++
		rb.copyFrom(b)
		if rule.Cond != nil && !rule.Cond(rb) {
			return
		}
		o.transFiredN[ri]++
		o.run.fired++
		if o.OnEvent != nil {
			o.emit(EventTransFired, rule.Name, m.Find(e.group), e.String(), 0)
		}
		if o.tr != nil {
			o.tr.Instant(o.tid, "trans:"+rule.Name, "rule")
		}
		if rule.Appl != nil {
			rule.Appl(rb)
		}
		if m.buildRHS(rule.RHS, rb, m.Find(e.group)) {
			changed = true
		}
	})
	m.curRule = ""
	if o.timing {
		o.transTimeN[ri] += time.Since(t0)
	}
	return changed
}

// findBest computes (memoized) the cheapest plan for group g that
// satisfies the required physical properties.
func (o *Optimizer) findBest(g GroupID, req *core.Descriptor) (*PExpr, float64, error) {
	if o.overBudgetCosting() {
		return nil, 0, errBudget
	}
	m := o.Memo
	g = m.Find(g)
	grp := m.groups[g]
	phys := o.RS.Class.Phys
	key := req.HashOn(phys)
	for _, w := range grp.winners[key] {
		if w.req.EqualOn(req, phys) {
			if w.inProgress {
				return nil, 0, fmt.Errorf("volcano: cyclic optimization of group %d", g)
			}
			return w.plan, w.cost, nil
		}
	}
	w := &winnerEntry{req: req.Clone(), inProgress: true, cost: math.Inf(1)}
	grp.winners[key] = append(grp.winners[key], w)
	o.Stats.Winners++

	var seedPlan *PExpr
	seedCost := math.Inf(1)
	if len(o.seeds) != 0 {
		if p, c, ok := o.lookupSeed(g, req); ok {
			seedPlan, seedCost = p, c
		}
	}
	var sp obs.Span
	if o.tr != nil {
		// One span per (group, requirement) winner computation; the
		// recursion over input groups nests naturally in the trace.
		sp = o.tr.Begin(o.tid, fmt.Sprintf("group %d [%s]", g, reqString(req, phys)), "findBest")
	}
	best, bestCost, err := o.optimizeGroup(grp, req, seedPlan, seedCost)
	if o.tr != nil {
		args := map[string]any{"cost": bestCost}
		if err != nil {
			args["err"] = err.Error()
		}
		sp.EndArgs(args)
	}
	w.inProgress = false
	if err != nil {
		// Drop the half-computed entry rather than memoizing it:
		// recording "no plan" for a budget-interrupted computation would
		// poison the salvage pass that costs this memo next.
		entries := grp.winners[key]
		for i, x := range entries {
			if x == w {
				grp.winners[key] = append(entries[:i], entries[i+1:]...)
				break
			}
		}
		return nil, 0, err
	}
	w.plan, w.cost = best, bestCost
	if best != nil && o.OnEvent != nil {
		o.emit(EventWinner, "", g, reqString(req, o.RS.Class.Phys)+" -> "+best.String(), bestCost)
	}
	return best, bestCost, nil
}

// optimizeGroup enumerates the group's physical alternatives. A
// non-nil seed is a cached winner for exactly this (group, req, budget)
// subproblem, used as the branch-and-bound incumbent: enumeration
// starts from its real cost instead of +Inf, and — costs being
// monotonic — only strictly cheaper plans replace it, so the result
// matches a cold search's winner.
func (o *Optimizer) optimizeGroup(grp *Group, req *core.Descriptor, seed *PExpr, seedCost float64) (*PExpr, float64, error) {
	phys := o.RS.Class.Phys
	costID := o.RS.Class.Cost
	best := seed
	bestCost := math.Inf(1)
	if seed != nil {
		bestCost = seedCost
	}

	consider := func(plan *PExpr, cost float64) {
		o.Stats.CostedPlans++
		if cost < bestCost {
			best, bestCost = plan, cost
		}
	}

	for _, e := range grp.Exprs {
		if e.IsLeaf() {
			// A stored file satisfies a requirement only as-is; RET
			// algorithms above it decide access paths.
			if e.D.SatisfiesOn(req, phys) {
				consider(&PExpr{File: e.File, D: e.D}, e.D.Float(costID))
			}
			continue
		}
		for _, ie := range o.RS.implsFor(e.Op) {
			rule := ie.rule
			o.Stats.ImplMatched[rule.Name]++
			// Per-rule costing self time: the clock pauses around the
			// findBest recursion below, so input planning is attributed
			// to the input groups' own rules, not this alternative.
			var t0 time.Time
			var self time.Duration
			if o.timing {
				t0 = time.Now()
			}
			cx := &ImplCtx{
				OpDesc: mergeReq(e.D, req, phys),
				Req:    req,
				Kids:   make([]*core.Descriptor, len(e.Kids)),
				In:     make([]*core.Descriptor, len(e.Kids)),
			}
			for i, k := range e.Kids {
				cx.Kids[i] = o.Memo.Group(k).Rep()
			}
			if rule.Cond != nil && !rule.Cond(cx) {
				o.emit(EventImplRejected, rule.Name, grp.ID, "condition failed", 0)
				if o.timing {
					o.addImplTime(rule.Name, self+time.Since(t0))
				}
				continue
			}
			o.Stats.ImplFired[rule.Name]++
			algD, inReq := rule.Pre(cx)
			kids := make([]*PExpr, len(e.Kids))
			acc := 0.0
			ok := true
			for i, k := range e.Kids {
				r := core.NewDescriptor(o.RS.Algebra.Props)
				if i < len(inReq) && inReq[i] != nil {
					r = inReq[i]
				}
				if o.timing {
					self += time.Since(t0)
				}
				plan, cost, err := o.findBest(k, r)
				if o.timing {
					t0 = time.Now()
				}
				if err != nil {
					if o.timing {
						o.addImplTime(rule.Name, self+time.Since(t0))
					}
					return nil, 0, err
				}
				if plan == nil {
					ok = false
					break
				}
				kids[i] = plan
				cx.In[i] = plan.D
				acc += cost
				if o.RS.MonotonicCosts && acc >= bestCost {
					o.Stats.Pruned++
					ok = false
					break
				}
			}
			if !ok {
				o.emit(EventImplRejected, rule.Name, grp.ID, "infeasible or pruned input", 0)
				if o.timing {
					o.addImplTime(rule.Name, self+time.Since(t0))
				}
				continue
			}
			rule.Post(cx, algD)
			if !algD.SatisfiesOn(req, phys) {
				o.emit(EventImplRejected, rule.Name, grp.ID, "required properties unsatisfied", 0)
				if o.timing {
					o.addImplTime(rule.Name, self+time.Since(t0))
				}
				continue
			}
			if o.OnEvent != nil {
				o.emit(EventImplCosted, rule.Name, grp.ID, rule.Alg.Name, algD.Float(costID))
			}
			consider(&PExpr{Alg: rule.Alg, D: algD, Kids: kids}, algD.Float(costID))
			if o.timing {
				o.addImplTime(rule.Name, self+time.Since(t0))
			}
		}
	}

	// Enforcers: produce a required property on top of a plan for the
	// same group with that property relaxed.
	for _, enf := range o.RS.Enforcers {
		cx := &ImplCtx{
			OpDesc: mergeReq(grp.Rep(), req, phys),
			Req:    req,
		}
		if !o.enforcerApplies(enf, cx) {
			continue
		}
		o.Stats.EnfMatched[enf.Name]++
		algD, inReq := enf.Pre(cx)
		if inReq.EqualOn(req, phys) {
			// The enforcer did not relax anything; applying it would
			// recurse forever.
			continue
		}
		plan, _, err := o.findBest(grp.ID, inReq)
		if err != nil {
			return nil, 0, err
		}
		if plan == nil {
			continue
		}
		cx.In = []*core.Descriptor{plan.D}
		enf.Post(cx, algD)
		if !algD.SatisfiesOn(req, phys) {
			continue
		}
		o.Stats.EnfFired[enf.Name]++
		if o.OnEvent != nil {
			o.emit(EventEnforcerApplied, enf.Name, grp.ID, enf.Alg.Name, algD.Float(costID))
		}
		consider(&PExpr{Alg: enf.Alg, D: algD, Kids: []*PExpr{plan}}, algD.Float(costID))
	}

	if best == nil {
		return nil, math.Inf(1), nil
	}
	return best, bestCost, nil
}

func (o *Optimizer) enforcerApplies(enf *Enforcer, cx *ImplCtx) bool {
	if enf.Cond != nil {
		return enf.Cond(cx)
	}
	for _, p := range enf.Props {
		if cx.Req.Has(p) && !cx.Req.Get(p).IsDontCare() {
			return true
		}
	}
	return false
}

// mergeReq returns d with the explicitly-set physical properties of req
// overriding d's — the descriptor an implementation rule sees as its
// operator's (requirements flow top-down in Prairie by assigning input
// descriptors' properties, §2.4). When req sets no physical property the
// result is d itself, uncloned: rule hooks treat OpDesc as read-only,
// so the alias is safe and saves a descriptor clone per alternative.
func mergeReq(d, req *core.Descriptor, phys []core.PropID) *core.Descriptor {
	overrides := false
	for _, p := range phys {
		if req.Has(p) {
			overrides = true
			break
		}
	}
	if !overrides {
		return d
	}
	out := d.Clone()
	for _, p := range phys {
		if req.Has(p) {
			out.Set(p, req.Get(p))
		}
	}
	return out
}
