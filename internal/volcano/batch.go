package volcano

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"prairie/internal/core"
	"prairie/internal/obs"
)

// BatchItem is one independent optimization job: a rule set, a query
// tree, and the required physical properties. Items may share a RuleSet
// (its dispatch index is built once and read-only afterwards); each job
// gets its own memo and optimizer.
type BatchItem struct {
	RS   *RuleSet
	Tree *core.Expr
	Req  *core.Descriptor // nil: no requirement
	Opts Options
	// Timeout bounds each optimization of this item (0 = none). It is
	// merged into Opts.Budget.Timeout (the tighter of the two wins), so
	// hitting it yields a degraded plan, not an error — see Budget.
	Timeout time.Duration
	// Repeats re-optimizes the item this many times (minimum 1) on fresh
	// memos, reporting the mean elapsed time — the paper's §4.3 protocol
	// of timing a query by optimizing in a loop and dividing.
	Repeats int
}

// options resolves the item's effective optimizer options, folding the
// per-item Timeout into the budget.
func (it BatchItem) options() Options {
	opts := it.Opts
	if it.Timeout > 0 && (opts.Budget.Timeout <= 0 || it.Timeout < opts.Budget.Timeout) {
		opts.Budget.Timeout = it.Timeout
	}
	return opts
}

// BatchResult is the outcome of one BatchItem. On error, Stats describe
// the failing run's partial work and Elapsed is the mean over the
// attempts actually made; a panicking rule hook surfaces here as Err.
type BatchResult struct {
	Plan    *PExpr
	Stats   *Stats
	Elapsed time.Duration // mean per optimization when Repeats > 1
	Err     error
}

// OptimizeBatch optimizes independent queries concurrently on a worker
// pool (workers <= 0 uses GOMAXPROCS). Results are positionally aligned
// with items. Each worker runs a private Optimizer per item, so the only
// shared state is the read-only RuleSet; the experiment sweeps use this
// to spread a figure's (family, N, seed) grid across cores.
func OptimizeBatch(items []BatchItem, workers int) []BatchResult {
	return OptimizeBatchContext(context.Background(), items, workers)
}

// OptimizeBatchContext is OptimizeBatch under a batch-level context:
// once ctx is cancelled, items not yet started fail fast with ctx's
// error, and items in flight degrade per OptimizeContext. The call
// always returns a fully-populated, positionally-aligned result slice.
func OptimizeBatchContext(ctx context.Context, items []BatchItem, workers int) []BatchResult {
	results, _ := OptimizeBatchOpts(ctx, items, BatchOptions{Workers: workers})
	return results
}

// BatchOptions tunes a batch run beyond the per-item options.
type BatchOptions struct {
	// Workers sizes the pool (<= 0 uses GOMAXPROCS, capped at the item
	// count).
	Workers int
	// Obs attaches shared observability sinks: batch-level counters and
	// latency histograms go to Obs.Metrics (recorded concurrently by
	// every worker), and items that don't set their own Opts.Obs
	// inherit this one — with per-worker trace rows when a Tracer is
	// attached.
	Obs *obs.Observer
	// Cache attaches a shared cross-query plan cache to every item that
	// doesn't set its own Opts.Cache: repeated queries across the batch
	// hit, and concurrent workers missing on the same fingerprint
	// collapse into one search (singleflight).
	Cache *PlanCache
	// Router attaches a shared tier router to every item that doesn't
	// set its own Opts.Router; items opting into TierAuto then share
	// one routing table and refiner lifecycle (see tier.go).
	Router *Router
}

// WorkerStats aggregates one pool worker's activity.
type WorkerStats struct {
	Items int           // items this worker ran
	Busy  time.Duration // time spent inside runBatchItem
}

// BatchReport aggregates a batch run: wall time, per-worker
// utilization, queue waits (time an item sat assigned-but-unstarted
// behind earlier work), degradations by cause, and the Merge of every
// item's Stats.
type BatchReport struct {
	Wall    time.Duration
	Workers []WorkerStats
	// QueueWaitTotal sums each item's wait from batch start to pickup;
	// QueueWaitMax is the worst item's.
	QueueWaitTotal time.Duration
	QueueWaitMax   time.Duration
	Items          int
	Errors         int
	Degraded       int
	// Agg is the Stats.Merge of every item that produced stats.
	Agg *Stats
}

// Utilization reports worker w's busy fraction of the batch wall time.
func (r *BatchReport) Utilization(w int) float64 {
	if r.Wall <= 0 || w < 0 || w >= len(r.Workers) {
		return 0
	}
	return float64(r.Workers[w].Busy) / float64(r.Wall)
}

// String renders a compact multi-line report.
func (r *BatchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "batch: %d items, %d workers, wall %v, errors=%d degraded=%d\n",
		r.Items, len(r.Workers), r.Wall.Round(time.Microsecond), r.Errors, r.Degraded)
	for i, w := range r.Workers {
		fmt.Fprintf(&b, "  worker %d: %d items, busy %v (%.0f%% utilization)\n",
			i, w.Items, w.Busy.Round(time.Microsecond), 100*r.Utilization(i))
	}
	mean := time.Duration(0)
	if r.Items > 0 {
		mean = r.QueueWaitTotal / time.Duration(r.Items)
	}
	fmt.Fprintf(&b, "  queue wait: mean %v, max %v\n",
		mean.Round(time.Microsecond), r.QueueWaitMax.Round(time.Microsecond))
	if r.Agg != nil && len(r.Agg.DegradedRuns) > 0 {
		causes := make([]string, 0, len(r.Agg.DegradedRuns))
		for c := range r.Agg.DegradedRuns {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		b.WriteString("  degradations:")
		for _, c := range causes {
			fmt.Fprintf(&b, " %s=%d", c, r.Agg.DegradedRuns[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// OptimizeBatchOpts is the fully-instrumented batch entry point: it
// returns the positionally-aligned results plus a BatchReport of
// per-worker utilization, queue waits, and aggregated statistics.
func OptimizeBatchOpts(ctx context.Context, items []BatchItem, bo BatchOptions) ([]BatchResult, *BatchReport) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := bo.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	results := make([]BatchResult, len(items))
	report := &BatchReport{Workers: make([]WorkerStats, workers), Agg: NewStats()}
	if len(items) == 0 {
		return results, report
	}
	reg := bo.Obs.MetricsOrNil()
	tr := bo.Obs.TracerOrNil()
	start := time.Now()
	// The queue is buffered with every index up front so no goroutine
	// ever blocks feeding it: a worker that dies cannot wedge the batch.
	// (Workers additionally recover per-item panics — see runBatchItem —
	// so a panicking rule hook costs one item, not the whole pool.)
	next := make(chan int, len(items))
	for i := range items {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	wg.Add(workers)
	waits := make([]time.Duration, len(items))
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			tid := w + 1
			if tr != nil {
				tr.SetThreadName(tid, fmt.Sprintf("worker-%d", w))
			}
			ws := &report.Workers[w]
			for i := range next {
				pickup := time.Now()
				waits[i] = pickup.Sub(start)
				reg.Histogram("prairie_batch_queue_wait_seconds", nil).Observe(waits[i].Seconds())
				if err := ctx.Err(); err != nil {
					results[i] = BatchResult{Err: err}
					ws.Items++
					continue
				}
				it := items[i]
				if it.Opts.Obs == nil {
					it.Opts.Obs = bo.Obs
					it.Opts.TraceTID = tid
				}
				if it.Opts.Cache == nil {
					it.Opts.Cache = bo.Cache
				}
				if it.Opts.Router == nil {
					it.Opts.Router = bo.Router
				}
				results[i] = runBatchItem(ctx, it)
				busy := time.Since(pickup)
				ws.Items++
				ws.Busy += busy
				reg.Counter("prairie_batch_items_total").Inc()
				reg.Histogram("prairie_batch_item_seconds", nil).Observe(busy.Seconds())
				reg.FloatCounter(obs.Label("prairie_batch_worker_busy_seconds_total", "worker", fmt.Sprint(w))).Add(busy.Seconds())
			}
		}(w)
	}
	wg.Wait()
	report.Wall = time.Since(start)
	report.Items = len(items)
	for _, d := range waits {
		report.QueueWaitTotal += d
		if d > report.QueueWaitMax {
			report.QueueWaitMax = d
		}
	}
	for i := range results {
		if results[i].Err != nil {
			report.Errors++
		}
		if s := results[i].Stats; s != nil {
			if s.Degraded {
				report.Degraded++
			}
			report.Agg.Merge(s)
		}
	}
	if reg != nil {
		for w := range report.Workers {
			reg.Gauge(obs.Label("prairie_batch_worker_utilization", "worker", fmt.Sprint(w))).
				Set(report.Utilization(w))
		}
		reg.Counter("prairie_batch_errors_total").Add(int64(report.Errors))
		reg.Counter("prairie_batch_degraded_total").Add(int64(report.Degraded))
	}
	return results, report
}

func runBatchItem(ctx context.Context, it BatchItem) (res BatchResult) {
	repeats := it.Repeats
	if repeats < 1 {
		repeats = 1
	}
	start := time.Now()
	attempts := 0
	var opt *Optimizer
	defer func() {
		if r := recover(); r != nil {
			res = BatchResult{Err: fmt.Errorf("volcano: batch item panicked: %v", r)}
			if opt != nil {
				res.Stats = opt.Stats
			}
		}
		// Error, panic, and success paths all report the mean elapsed
		// time over the attempts actually made, never zero work-time for
		// work that was done.
		if res.Elapsed == 0 {
			if attempts < 1 {
				attempts = 1
			}
			res.Elapsed = time.Since(start) / time.Duration(attempts)
		}
	}()
	opts := it.options()
	for r := 0; r < repeats; r++ {
		attempts = r + 1
		opt = NewOptimizer(it.RS)
		opt.Opts = opts
		plan, err := opt.OptimizeContext(ctx, it.Tree.Clone(), it.Req)
		if err != nil {
			res = BatchResult{Stats: opt.Stats, Err: err}
			return
		}
		res.Plan, res.Stats = plan, opt.Stats
	}
	return
}
