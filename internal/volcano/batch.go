package volcano

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"prairie/internal/core"
)

// BatchItem is one independent optimization job: a rule set, a query
// tree, and the required physical properties. Items may share a RuleSet
// (its dispatch index is built once and read-only afterwards); each job
// gets its own memo and optimizer.
type BatchItem struct {
	RS   *RuleSet
	Tree *core.Expr
	Req  *core.Descriptor // nil: no requirement
	Opts Options
	// Timeout bounds each optimization of this item (0 = none). It is
	// merged into Opts.Budget.Timeout (the tighter of the two wins), so
	// hitting it yields a degraded plan, not an error — see Budget.
	Timeout time.Duration
	// Repeats re-optimizes the item this many times (minimum 1) on fresh
	// memos, reporting the mean elapsed time — the paper's §4.3 protocol
	// of timing a query by optimizing in a loop and dividing.
	Repeats int
}

// options resolves the item's effective optimizer options, folding the
// per-item Timeout into the budget.
func (it BatchItem) options() Options {
	opts := it.Opts
	if it.Timeout > 0 && (opts.Budget.Timeout <= 0 || it.Timeout < opts.Budget.Timeout) {
		opts.Budget.Timeout = it.Timeout
	}
	return opts
}

// BatchResult is the outcome of one BatchItem. On error, Stats describe
// the failing run's partial work and Elapsed is the mean over the
// attempts actually made; a panicking rule hook surfaces here as Err.
type BatchResult struct {
	Plan    *PExpr
	Stats   *Stats
	Elapsed time.Duration // mean per optimization when Repeats > 1
	Err     error
}

// OptimizeBatch optimizes independent queries concurrently on a worker
// pool (workers <= 0 uses GOMAXPROCS). Results are positionally aligned
// with items. Each worker runs a private Optimizer per item, so the only
// shared state is the read-only RuleSet; the experiment sweeps use this
// to spread a figure's (family, N, seed) grid across cores.
func OptimizeBatch(items []BatchItem, workers int) []BatchResult {
	return OptimizeBatchContext(context.Background(), items, workers)
}

// OptimizeBatchContext is OptimizeBatch under a batch-level context:
// once ctx is cancelled, items not yet started fail fast with ctx's
// error, and items in flight degrade per OptimizeContext. The call
// always returns a fully-populated, positionally-aligned result slice.
func OptimizeBatchContext(ctx context.Context, items []BatchItem, workers int) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	results := make([]BatchResult, len(items))
	if len(items) == 0 {
		return results
	}
	// The queue is buffered with every index up front so no goroutine
	// ever blocks feeding it: a worker that dies cannot wedge the batch.
	// (Workers additionally recover per-item panics — see runBatchItem —
	// so a panicking rule hook costs one item, not the whole pool.)
	next := make(chan int, len(items))
	for i := range items {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					results[i] = BatchResult{Err: err}
					continue
				}
				results[i] = runBatchItem(ctx, items[i])
			}
		}()
	}
	wg.Wait()
	return results
}

func runBatchItem(ctx context.Context, it BatchItem) (res BatchResult) {
	repeats := it.Repeats
	if repeats < 1 {
		repeats = 1
	}
	start := time.Now()
	attempts := 0
	var opt *Optimizer
	defer func() {
		if r := recover(); r != nil {
			res = BatchResult{Err: fmt.Errorf("volcano: batch item panicked: %v", r)}
			if opt != nil {
				res.Stats = opt.Stats
			}
		}
		// Error, panic, and success paths all report the mean elapsed
		// time over the attempts actually made, never zero work-time for
		// work that was done.
		if res.Elapsed == 0 {
			if attempts < 1 {
				attempts = 1
			}
			res.Elapsed = time.Since(start) / time.Duration(attempts)
		}
	}()
	opts := it.options()
	for r := 0; r < repeats; r++ {
		attempts = r + 1
		opt = NewOptimizer(it.RS)
		opt.Opts = opts
		plan, err := opt.OptimizeContext(ctx, it.Tree.Clone(), it.Req)
		if err != nil {
			res = BatchResult{Stats: opt.Stats, Err: err}
			return
		}
		res.Plan, res.Stats = plan, opt.Stats
	}
	return
}
