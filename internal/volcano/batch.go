package volcano

import (
	"runtime"
	"sync"
	"time"

	"prairie/internal/core"
)

// BatchItem is one independent optimization job: a rule set, a query
// tree, and the required physical properties. Items may share a RuleSet
// (its dispatch index is built once and read-only afterwards); each job
// gets its own memo and optimizer.
type BatchItem struct {
	RS   *RuleSet
	Tree *core.Expr
	Req  *core.Descriptor // nil: no requirement
	Opts Options
	// Repeats re-optimizes the item this many times (minimum 1) on fresh
	// memos, reporting the mean elapsed time — the paper's §4.3 protocol
	// of timing a query by optimizing in a loop and dividing.
	Repeats int
}

// BatchResult is the outcome of one BatchItem.
type BatchResult struct {
	Plan    *PExpr
	Stats   *Stats
	Elapsed time.Duration // mean per optimization when Repeats > 1
	Err     error
}

// OptimizeBatch optimizes independent queries concurrently on a worker
// pool (workers <= 0 uses GOMAXPROCS). Results are positionally aligned
// with items. Each worker runs a private Optimizer per item, so the only
// shared state is the read-only RuleSet; the experiment sweeps use this
// to spread a figure's (family, N, seed) grid across cores.
func OptimizeBatch(items []BatchItem, workers int) []BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	results := make([]BatchResult, len(items))
	if len(items) == 0 {
		return results
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = runBatchItem(items[i])
			}
		}()
	}
	for i := range items {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

func runBatchItem(it BatchItem) BatchResult {
	repeats := it.Repeats
	if repeats < 1 {
		repeats = 1
	}
	var res BatchResult
	start := time.Now()
	for r := 0; r < repeats; r++ {
		opt := NewOptimizer(it.RS)
		opt.Opts = it.Opts
		plan, err := opt.Optimize(it.Tree.Clone(), it.Req)
		if err != nil {
			return BatchResult{Stats: opt.Stats, Err: err}
		}
		res.Plan, res.Stats = plan, opt.Stats
	}
	res.Elapsed = time.Since(start) / time.Duration(repeats)
	return res
}
