package volcano

import (
	"strings"
	"testing"

	"prairie/internal/obs"
)

// optimizeWith runs one optimization of the same query under the given
// observer and returns the plan rendering, the stats rendering, and the
// optimizer (for memo inspection).
func optimizeWith(t *testing.T, ob *obs.Observer) (string, string, *Optimizer) {
	t.Helper()
	w := newTestWorld()
	opt := NewOptimizer(w.rs)
	opt.Opts.Obs = ob
	plan, err := opt.Optimize(w.chain(16, 8, 4, 2), nil)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return plan.String(), opt.Stats.String(), opt
}

// TestObserverNeutral pins the byte-identical guarantee: plans and
// Stats renderings must not change whether observability is absent
// (Obs nil), attached but fully disabled (empty Observer), or fully
// enabled — instrumentation may only add side-channel data.
func TestObserverNeutral(t *testing.T) {
	basePlan, baseStats, _ := optimizeWith(t, nil)
	full := &obs.Observer{Metrics: obs.NewRegistry(), Tracer: obs.NewTracer(), RuleTiming: true}
	for name, ob := range map[string]*obs.Observer{
		"disabled": {},
		"enabled":  full,
	} {
		plan, stats, _ := optimizeWith(t, ob)
		if plan != basePlan {
			t.Errorf("%s observer changed the plan:\n got %s\nwant %s", name, plan, basePlan)
		}
		if stats != baseStats {
			t.Errorf("%s observer changed Stats.String():\n got %q\nwant %q", name, stats, baseStats)
		}
	}
	// The enabled run must actually have produced observations.
	if full.Tracer.Len() == 0 {
		t.Error("enabled run recorded no trace events")
	}
	snap := full.Metrics.Snapshot()
	if got, _ := snap["prairie_optimize_total"].(int64); got != 1 {
		t.Errorf("prairie_optimize_total = %v, want 1", snap["prairie_optimize_total"])
	}
}

// TestRuleTimingAttribution: with RuleTiming on, every fired trans rule
// and every matched impl rule gets wall time attributed, and the table
// renders; with timing off the maps stay nil (the byte-identical path).
func TestRuleTimingAttribution(t *testing.T) {
	_, _, opt := optimizeWith(t, &obs.Observer{RuleTiming: true})
	s := opt.Stats
	for r, n := range s.TransFired {
		if n > 0 {
			if _, ok := s.TransTime[r]; !ok {
				t.Errorf("fired trans rule %q has no attributed time", r)
			}
		}
	}
	if len(s.ImplTime) == 0 {
		t.Error("no impl rule time attributed")
	}
	table := s.RuleTimeTable()
	if !strings.Contains(table, "total attributed:") {
		t.Errorf("RuleTimeTable missing total line:\n%s", table)
	}
	_, _, off := optimizeWith(t, nil)
	if off.Stats.TransTime != nil || off.Stats.ImplTime != nil {
		t.Error("unobserved run allocated timing maps")
	}
	if off.Stats.RuleTimeTable() != "" {
		t.Error("RuleTimeTable non-empty without timing")
	}
}

// TestExplainGroup: the provenance dump names the deriving rule for
// rewritten expressions, "query" for the initial tree, and lists
// memoized winners; bad ids error instead of panicking.
func TestExplainGroup(t *testing.T) {
	_, _, opt := optimizeWith(t, nil)
	sawVia, sawQuery, sawWinner := false, false, false
	for id := range opt.Memo.groups {
		out, err := opt.ExplainGroup(GroupID(id))
		if err != nil {
			t.Fatalf("group %d: %v", id, err)
		}
		if strings.Contains(out, "via query") {
			sawQuery = true
		} else if strings.Contains(out, "via ") {
			sawVia = true
		}
		if strings.Contains(out, "winner[") {
			sawWinner = true
		}
	}
	if !sawQuery {
		t.Error("no expression attributed to the original query")
	}
	if !sawVia {
		t.Error("no expression attributed to a transformation rule")
	}
	if !sawWinner {
		t.Error("no memoized winners rendered")
	}
	if _, err := opt.ExplainGroup(GroupID(1 << 20)); err == nil {
		t.Error("out-of-range group id did not error")
	}
}
