package volcano

import (
	"testing"

	"prairie/internal/core"
)

// findTrans returns the named trans_rule of the test world.
func findTrans(t *testing.T, rs *RuleSet, name string) *TransRule {
	t.Helper()
	for _, r := range rs.Trans {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no trans_rule %q", name)
	return nil
}

func TestTreeMatchesEnumeratesSites(t *testing.T) {
	w := newTestWorld()
	tree := w.chain(8, 4, 2) // JOIN(JOIN(RET(R1), RET(R2)), RET(R3))
	commute := findTrans(t, w.rs, "join_commute")
	ms := w.rs.TreeMatches(commute, tree)
	if len(ms) != 2 {
		t.Fatalf("join_commute should match both JOINs, got %d sites", len(ms))
	}
	// The deep pattern matches only at the root.
	assoc := findTrans(t, w.rs, "join_assoc")
	if ms := w.rs.TreeMatches(assoc, tree); len(ms) != 1 {
		t.Fatalf("join_assoc should match once, got %d sites", len(ms))
	}
	// Bound subtrees are the real nodes of the original tree.
	m := w.rs.TreeMatches(assoc, tree)[0]
	if m.VarSubtree(3) != tree.Kids[1] {
		t.Errorf("?3 should bind the root's right input")
	}
}

func TestApplyRuleCommute(t *testing.T) {
	w := newTestWorld()
	tree := w.chain(8, 4)
	commute := findTrans(t, w.rs, "join_commute")
	before := tree.String()
	out := w.rs.ApplyRule(commute, tree)
	if len(out) != 1 {
		t.Fatalf("expected 1 rewrite, got %d", len(out))
	}
	if got, want := out[0].String(), "JOIN(RET(R2), RET(R1))"; got != want {
		t.Errorf("rewritten tree = %s, want %s", got, want)
	}
	if tree.String() != before {
		t.Errorf("original tree mutated: %s", tree.String())
	}
	// The applied descriptor is the rule's output, not a shared pointer
	// into the original tree.
	if out[0].D == tree.D {
		t.Errorf("rewrite shares root descriptor with original")
	}
	if got, want := out[0].D.Pred(w.jp).String(), tree.D.Pred(w.jp).String(); got != want {
		t.Errorf("commuted join predicate = %s, want %s", got, want)
	}
}

func TestApplyRuleCondGates(t *testing.T) {
	w := newTestWorld()
	assoc := findTrans(t, w.rs, "join_assoc")
	// A linear 3-chain associates: (R1⋈R2)⋈R3 -> R1⋈(R2⋈R3).
	tree := w.chain(8, 4, 2)
	out := w.rs.ApplyRule(assoc, tree)
	if len(out) != 1 {
		t.Fatalf("expected 1 assoc rewrite, got %d", len(out))
	}
	if got, want := out[0].String(), "JOIN(RET(R1), JOIN(RET(R2), RET(R3)))"; got != want {
		t.Errorf("rewritten tree = %s, want %s", got, want)
	}
	// A star joined through R1 does not: pulling R1 out of the inner
	// join would leave a cross product, so the cond must reject it.
	l1 := w.retOf(w.leaf("S1", 8, core.A("S1", "a")))
	l2 := w.retOf(w.leaf("S2", 4, core.A("S2", "a")))
	l3 := w.retOf(w.leaf("S3", 2, core.A("S3", "a")))
	inner := w.joinOf(l1, l2, core.EqAttr(core.A("S1", "a"), core.A("S2", "a")))
	star := w.joinOf(inner, l3, core.EqAttr(core.A("S1", "a"), core.A("S3", "a")))
	if out := w.rs.ApplyRule(assoc, star); len(out) != 0 {
		t.Fatalf("cond should reject star association, got %d rewrites", len(out))
	}
}

func TestApplyRuleDoesNotShareState(t *testing.T) {
	w := newTestWorld()
	commute := findTrans(t, w.rs, "join_commute")
	tree := w.chain(8, 4, 2)
	outs := w.rs.ApplyRule(commute, tree)
	if len(outs) != 2 {
		t.Fatalf("expected 2 rewrites, got %d", len(outs))
	}
	// Mutating one rewrite's descriptors must not leak into the other or
	// into the original.
	outs[0].D.SetFloat(w.nr, -1)
	if tree.D.Float(w.nr) == -1 || outs[1].D.Float(w.nr) == -1 {
		t.Errorf("rewrites share descriptor state")
	}
}
