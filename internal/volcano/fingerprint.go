package volcano

import (
	"sort"
	"strings"

	"prairie/internal/core"
)

// This file computes the canonical fingerprint of a logical expression
// tree — the identity under which the cross-query plan cache stores
// winners. Two trees fingerprint equally exactly when the memo would
// treat them as the same search problem:
//
//   - leaves digest the stored-file name plus the argument-class
//     projection of their catalog descriptor;
//   - interior nodes digest the operator and the same argument-property
//     projection the memo's duplicate detection uses (RuleSet.idProps),
//     so properties that don't identify an expression (physical, cost)
//     don't fragment the cache;
//   - the inputs of an operator with an unconditional commute rule are
//     sorted into a canonical order, so A JOIN B and B JOIN A collide —
//     sound because the rule proves both orders share one equivalence
//     class, hence the same closure and winners.
//
// Alongside the 64-bit hash, fingerprintNode renders the exact canonical
// string it digests. The cache keys on both: the string makes hash
// collisions harmless (see plancache.Key).

// fingerprintNode returns the structural hash and the canonical
// rendering of the logical tree rooted at e.
func (rs *RuleSet) fingerprintNode(e *core.Expr) (uint64, string) {
	var b strings.Builder
	h := rs.fingerprintWalk(e, &b)
	return h, b.String()
}

// Fingerprint exposes the canonical fingerprint for callers outside the
// cache path — property tests assert its invariants (commutative-input
// swaps and attribute reorderings must not change it), and services can
// use it as a stable request identity.
func (rs *RuleSet) Fingerprint(e *core.Expr) (uint64, string) {
	return rs.fingerprintNode(e)
}

// Commutative reports whether op's inputs are canonically sorted by the
// fingerprint, i.e. whether the rule set carries an unconditional
// commute rule for op.
func (rs *RuleSet) Commutative(op *core.Operation) bool {
	return rs.commutative(op)
}

func (rs *RuleSet) fingerprintWalk(e *core.Expr, b *strings.Builder) uint64 {
	if e.IsLeaf() {
		// Same leaf constant as Memo.selfHash, extended with the
		// catalog projection: the memo can key leaves by name alone
		// because one memo sees one catalog, but the cache outlives
		// catalog reloads within a rule set's lifetime.
		h := core.HashCombine(0x1eaf, hashLeafName(e.File))
		b.WriteString(e.File)
		if e.D != nil && len(rs.Class.Arg) > 0 {
			h = core.HashCombine(h, e.D.HashOn(rs.Class.Arg))
			writeProj(b, e.D, rs.Class.Arg)
		}
		return h
	}
	ids := rs.idProps(e.Op)
	h := core.HashCombine(core.HashCombine(0x09, uint64(e.Op.Index())), e.D.HashOn(ids))
	b.WriteString(e.Op.Name)
	writeProj(b, e.D, ids)
	b.WriteByte('(')
	type kidFP struct {
		h uint64
		s string
	}
	kids := make([]kidFP, len(e.Kids))
	for i, k := range e.Kids {
		var kb strings.Builder
		kids[i] = kidFP{rs.fingerprintWalk(k, &kb), kb.String()}
	}
	if len(kids) == 2 && rs.commutative(e.Op) {
		if kids[1].h < kids[0].h || (kids[1].h == kids[0].h && kids[1].s < kids[0].s) {
			kids[0], kids[1] = kids[1], kids[0]
		}
	}
	for i, k := range kids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k.s)
		h = core.HashCombine(h, k.h)
	}
	b.WriteByte(')')
	return h
}

// writeProj renders the projection of d onto ids, reading unset
// properties as their defaults — exactly the equality Descriptor.EqualOn
// applies, so the canonical string distinguishes precisely what the memo
// distinguishes.
func writeProj(b *strings.Builder, d *core.Descriptor, ids []core.PropID) {
	b.WriteByte('{')
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		switch v := d.Get(id).(type) {
		case core.Attrs:
			// Attrs compare as sets (order-insensitive Equal/Hash) but
			// render in list order; sort so EqualOn-equal descriptors
			// canonicalize identically.
			writeSortedAttrs(b, v)
		default:
			b.WriteString(v.String())
		}
	}
	b.WriteByte('}')
}

func writeSortedAttrs(b *strings.Builder, v core.Attrs) {
	sorted := make([]string, len(v))
	for i, a := range v {
		sorted[i] = a.String()
	}
	sort.Strings(sorted)
	b.WriteByte('{')
	b.WriteString(strings.Join(sorted, ","))
	b.WriteByte('}')
}

// reqCanon renders the physical-property requirement for the cache key
// with the same unset-reads-as-default convention as writeProj.
func reqCanon(req *core.Descriptor, phys []core.PropID) string {
	var b strings.Builder
	writeProj(&b, req, phys)
	return b.String()
}
