package volcano

import (
	"testing"

	"prairie/internal/core"
)

// TestEventString is the table-driven rendering check for optimizer
// trace events: cost is printed only for the kinds where it means
// something (costed, enforcer, winner), and the rule/detail segments
// are optional.
func TestEventString(t *testing.T) {
	tests := []struct {
		name string
		e    Event
		want string
	}{
		{
			name: "trans with rule and detail, no cost",
			e:    Event{Kind: EventTransFired, Rule: "join_commute", Group: 3, Detail: "JOIN(1,2)", Cost: 9.5},
			want: "[trans] group 3 join_commute: JOIN(1,2)",
		},
		{
			name: "costed prints cost",
			e:    Event{Kind: EventImplCosted, Rule: "nested_loops", Group: 1, Detail: "NL(0,2)", Cost: 42},
			want: "[costed] group 1 nested_loops: NL(0,2) (cost 42.0)",
		},
		{
			name: "rejected without cost",
			e:    Event{Kind: EventImplRejected, Rule: "merge_join", Group: 2, Detail: "inputs infeasible", Cost: 7},
			want: "[rejected] group 2 merge_join: inputs infeasible",
		},
		{
			name: "enforcer prints cost",
			e:    Event{Kind: EventEnforcerApplied, Rule: "merge_sort", Group: 4, Cost: 12.25},
			want: "[enforcer] group 4 merge_sort (cost 12.2)",
		},
		{
			name: "winner without rule or detail",
			e:    Event{Kind: EventWinner, Group: 0, Cost: 100},
			want: "[winner] group 0 (cost 100.0)",
		},
		{
			name: "no rule keeps detail separator",
			e:    Event{Kind: EventTransFired, Group: 5, Detail: "dup"},
			want: "[trans] group 5: dup",
		},
		{
			name: "unknown kind renders placeholder",
			e:    Event{Kind: EventKind(99), Group: 1},
			want: "[?] group 1",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.e.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

// TestReqString covers the requirement renderer: empty and all-don't-
// care vectors collapse to "(none)", set properties render name=value,
// and multiple physical properties join with commas in phys order.
func TestReqString(t *testing.T) {
	a := core.NewAlgebra("t")
	ord := a.Props.Define("tuple_order", core.KindOrder)
	site := a.Props.Define("site", core.KindOrder)
	phys := []core.PropID{ord, site}
	attr := core.A("R1", "a")

	empty := core.NewDescriptor(a.Props)
	dontCare := core.NewDescriptor(a.Props)
	dontCare.Set(ord, core.DontCareOrder)
	sorted := core.NewDescriptor(a.Props)
	sorted.Set(ord, core.OrderBy(attr))
	both := core.NewDescriptor(a.Props)
	both.Set(ord, core.OrderBy(attr))
	both.Set(site, core.OrderBy(core.A("R2", "b")))
	mixed := core.NewDescriptor(a.Props)
	mixed.Set(ord, core.DontCareOrder)
	mixed.Set(site, core.OrderBy(attr))

	tests := []struct {
		name string
		req  *core.Descriptor
		want string
	}{
		{"empty requirement", empty, "(none)"},
		{"dont-care only", dontCare, "(none)"},
		{"one set property", sorted, "tuple_order=<R1.a>"},
		{"two set properties", both, "tuple_order=<R1.a>,site=<R2.b>"},
		{"dont-care skipped among set", mixed, "site=<R1.a>"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := reqString(tt.req, phys); got != tt.want {
				t.Errorf("reqString() = %q, want %q", got, tt.want)
			}
		})
	}
}
