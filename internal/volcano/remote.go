package volcano

import (
	"context"

	"prairie/internal/plancache"
)

// This file is the engine side of the cluster peer-fill protocol: the
// RemoteCache hook a serving layer plugs into Options.Remote, and the
// owner-side surface (RemoteAcquire / Insert) the same layer uses to
// answer peer requests out of its local PlanCache. The engine stays
// transport-agnostic — internal/cluster speaks HTTP and bytes, this
// file speaks keys and plans, and internal/server adapts between them
// with the wire codec.

// RemoteOutcome classifies one Fetch against the key's owning peer.
type RemoteOutcome int

const (
	// RemoteNone: no peer was consulted (key owned locally, or the
	// cluster layer declined). The caller proceeds exactly as without a
	// Remote hook.
	RemoteNone RemoteOutcome = iota
	// RemoteHit: the owner served the entry from its shard.
	RemoteHit
	// RemoteCollapsed: the owner parked this node behind an in-progress
	// flight (local or another peer's) and shared that leader's result —
	// the cluster-wide collapse of concurrent misses.
	RemoteCollapsed
	// RemoteLead: the owner missed and granted this node the cluster-wide
	// lead; it must optimize locally and Offer the result back.
	RemoteLead
	// RemoteMiss: the owner missed and could not grant a lease (or the
	// awaited leader declined to share); optimize locally.
	RemoteMiss
	// RemoteStale: this node's epoch lagged the owner's. The cluster
	// layer has already advanced the local epoch; the caller rebuilds
	// its key and retries.
	RemoteStale
	// RemoteError: the owner was unreachable or answered garbage;
	// optimize locally (degrade, never error).
	RemoteError
)

// RemoteEntry is one cache entry in engine terms: the winner plan plus
// the cold-run shape statistics a hit reports (the same payload a local
// cachedPlan carries, minus tier provenance — only full-tier entries
// travel between nodes).
type RemoteEntry struct {
	Plan      *PExpr
	Cost      float64
	Groups    int
	Exprs     int
	Merges    int
	MemoBytes int64
}

// RemoteResult is the outcome of one RemoteCache.Fetch.
type RemoteResult struct {
	Outcome RemoteOutcome
	// Entry holds the fetched plan for RemoteHit / RemoteCollapsed.
	Entry RemoteEntry
	// StoreLocal marks the key as hot: the engine keeps a local replica
	// of the fetched entry so subsequent hits skip the peer round-trip.
	StoreLocal bool
}

// RemoteCache is the cluster hook consulted on cache-miss paths.
// Implementations must be safe for concurrent use and must degrade
// (RemoteError / RemoteMiss), never block beyond their configured
// timeouts or return errors.
type RemoteCache interface {
	// Fetch asks the key's owning peer for the entry before this node
	// optimizes. Implementations reconcile epochs as a side effect.
	Fetch(ctx context.Context, key plancache.Key) RemoteResult
	// Offer hands a freshly computed (non-degraded, full-tier) entry to
	// the cluster: implementations forward it to the owning peer when
	// remote. The return value says whether the engine should also store
	// the entry locally — true for locally-owned keys and hot-promoted
	// replicas, false for entries whose capacity belongs to another
	// shard.
	Offer(key plancache.Key, e RemoteEntry) (storeLocal bool)
	// Abandon tells the key's owner that a lease granted by Fetch
	// (RemoteLead) will not be fulfilled — the optimization errored or
	// degraded — so the owner can release parked followers immediately
	// instead of waiting out its lease TTL. Best-effort, asynchronous,
	// and a no-op for locally-owned keys.
	Abandon(key plancache.Key)
}

// entryOf converts a cache entry to its wire-facing form.
func entryOf(cp cachedPlan) RemoteEntry {
	return RemoteEntry{
		Plan:      cp.plan,
		Cost:      cp.cost,
		Groups:    cp.groups,
		Exprs:     cp.exprs,
		Merges:    cp.merges,
		MemoBytes: cp.memoBytes,
	}
}

// cachedPlanOf converts a fetched entry back to a cache entry. replica
// marks hot-key replicas of remotely-owned entries (ReplicaHits
// accounting); the tier is always TierFull — greedy plans never travel.
func cachedPlanOf(e RemoteEntry, replica bool) cachedPlan {
	return cachedPlan{
		plan:      e.Plan,
		cost:      e.Cost,
		groups:    e.Groups,
		exprs:     e.Exprs,
		merges:    e.Merges,
		memoBytes: e.MemoBytes,
		replica:   replica,
	}
}

// RemoteAcquired is the owner-side view of one peer lookup: a hit, a
// lease grant (Leader), or a follower position behind an in-progress
// flight. It wraps the same singleflight machinery local misses use,
// which is what makes the collapse cluster-wide.
type RemoteAcquired struct {
	a *plancache.Acquired[cachedPlan]
}

// Hit returns the entry when the lookup hit a usable (full-tier) entry.
func (ra *RemoteAcquired) Hit() (RemoteEntry, bool) {
	if ra.a == nil || !ra.a.Hit {
		return RemoteEntry{}, false
	}
	return entryOf(ra.a.Value), true
}

// Leader reports whether this lookup owns the miss (the peer protocol
// grants the requesting node a lease to optimize).
func (ra *RemoteAcquired) Leader() bool { return ra.a != nil && ra.a.Leader }

// Wait parks a follower behind the in-progress flight until the leader
// completes (sharing a full-tier entry → ok) or ctx expires.
func (ra *RemoteAcquired) Wait(ctx context.Context) (RemoteEntry, bool) {
	if ra.a == nil {
		return RemoteEntry{}, false
	}
	cp, ok, err := ra.a.Wait(ctx)
	if err != nil || !ok || cp.tier != TierFull {
		return RemoteEntry{}, false
	}
	return entryOf(cp), true
}

// Complete resolves a leader's flight with the entry the remote lessee
// computed: it is stored in the owner's shard and shared with every
// local and remote follower. Idempotent.
func (ra *RemoteAcquired) Complete(e RemoteEntry) {
	if ra.a == nil {
		return
	}
	ra.a.Complete(cachedPlanOf(e, false), true)
}

// Abandon releases a leader's flight without a result (lease expiry,
// undecodable payload): followers are released empty-handed to run
// their own searches. Idempotent.
func (ra *RemoteAcquired) Abandon() {
	if ra.a == nil {
		return
	}
	var zero cachedPlan
	ra.a.Complete(zero, false)
}

// RemoteAcquire opens an owner-side lookup for a peer request. Like the
// engine's own miss path it treats non-full-tier entries as misses —
// greedy plans never travel between nodes.
func (pc *PlanCache) RemoteAcquire(k plancache.Key) *RemoteAcquired {
	if !pc.Enabled() {
		return &RemoteAcquired{}
	}
	return &RemoteAcquired{a: pc.c.AcquireIf(k, func(cp cachedPlan) bool { return cp.tier == TierFull })}
}

// Insert stores a peer-offered entry directly (the put path of the peer
// protocol, used when no lease is outstanding).
func (pc *PlanCache) Insert(k plancache.Key, e RemoteEntry) {
	if !pc.Enabled() {
		return
	}
	pc.c.Put(k, cachedPlanOf(e, false))
}

// Lookup returns the full-tier entry under k, if any — the owner-side
// read of a replicated or locally-stored entry, without flight
// registration (peer gets that must not lead use RemoteAcquire).
func (pc *PlanCache) Lookup(k plancache.Key) (RemoteEntry, bool) {
	if !pc.Enabled() {
		return RemoteEntry{}, false
	}
	cp, ok := pc.c.Get(k)
	if !ok || cp.tier != TierFull {
		return RemoteEntry{}, false
	}
	return entryOf(cp), true
}

// AdvanceTo raises the cache epoch to at least e (monotonic) and
// returns the result — cross-node epoch reconciliation.
func (pc *PlanCache) AdvanceTo(e uint64) uint64 {
	if pc == nil {
		return 0
	}
	return pc.c.AdvanceTo(e)
}

// Shards exposes per-shard occupancy and eviction counts for the
// metrics exposition.
func (pc *PlanCache) Shards() []plancache.ShardStat {
	if pc == nil {
		return nil
	}
	return pc.c.Shards()
}
