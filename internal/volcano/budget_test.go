package volcano

import (
	"context"
	"testing"
	"time"

	"prairie/internal/core"
)

// degradedPlan runs a budgeted optimization that must degrade and
// checks the invariants every degraded result shares: no error, a
// structurally valid plan over all relations, and a marked Stats.
func degradedPlan(t *testing.T, w *testWorld, o *Optimizer, ctx context.Context, wantCause Cause) *PExpr {
	t.Helper()
	tree := w.chain(16, 8, 4, 2)
	plan, err := o.OptimizeContext(ctx, tree, nil)
	if err != nil {
		t.Fatalf("budgeted optimize failed instead of degrading: %v", err)
	}
	if plan == nil {
		t.Fatal("nil plan without error")
	}
	e := plan.ToExpr()
	if !e.IsPlan() {
		t.Errorf("degraded result is not an access plan: %s", plan)
	}
	if got := len(e.Leaves()); got != 4 {
		t.Errorf("degraded plan covers %d relations, want 4", got)
	}
	if !o.Stats.Degraded {
		t.Error("Stats.Degraded not set")
	}
	if o.Stats.DegradeCause != wantCause {
		t.Errorf("DegradeCause = %s, want %s", o.Stats.DegradeCause, wantCause)
	}
	if o.Stats.DegradePath == "" {
		t.Error("DegradePath not set")
	}
	if o.Stats.Groups == 0 || o.Stats.Exprs == 0 {
		t.Errorf("partial stats not recorded: groups=%d exprs=%d", o.Stats.Groups, o.Stats.Exprs)
	}
	return plan
}

func TestBudgetMaxExprsDegrades(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	o.Opts.Budget = Budget{MaxExprs: 5}
	degradedPlan(t, w, o, context.Background(), CauseMaxExprs)
}

func TestBudgetMaxGroupsDegrades(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	o.Opts.Budget = Budget{MaxGroups: 3}
	degradedPlan(t, w, o, context.Background(), CauseMaxGroups)
}

func TestBudgetMaxRuleFiringsDegrades(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	o.Opts.Budget = Budget{MaxRuleFirings: 1}
	degradedPlan(t, w, o, context.Background(), CauseMaxRuleFirings)
	if f := o.run.fired; f < 1 {
		t.Errorf("fired = %d before tripping a 1-firing budget", f)
	}
}

func TestBudgetDeadlineDegrades(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	o.Opts.Budget = Budget{Timeout: time.Nanosecond}
	degradedPlan(t, w, o, context.Background(), CauseDeadline)
}

func TestContextDeadlineDegrades(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	degradedPlan(t, w, o, ctx, CauseDeadline)
}

func TestCancellationDegradesToBottomUp(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	degradedPlan(t, w, o, ctx, CauseCancelled)
	// A hard cancel skips memo salvage: the plan must come from the
	// greedy bottom-up baseline.
	if o.Stats.DegradePath != DegradePathBottomUp {
		t.Errorf("DegradePath = %q, want %q", o.Stats.DegradePath, DegradePathBottomUp)
	}
}

// TestDegradedCostNoBetterThanFull: degradation can only lose plan
// quality, never invent a cheaper-than-optimal winner.
func TestDegradedCostNoBetterThanFull(t *testing.T) {
	full := newTestWorld()
	fo := NewOptimizer(full.rs)
	best, err := fo.Optimize(full.chain(16, 8, 4, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	o.Opts.Budget = Budget{MaxExprs: 5}
	plan := degradedPlan(t, w, o, context.Background(), CauseMaxExprs)
	if got, want := plan.Cost(w.rs.Class), best.Cost(full.rs.Class); got < want {
		t.Errorf("degraded cost %g beats full-search winner %g", got, want)
	}
}

// TestUnbudgetedRunNotDegraded: with a background context and zero
// Budget the governed path must be indistinguishable from the old one.
func TestUnbudgetedRunNotDegraded(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	plain, err := o.OptimizeContext(context.Background(), w.chain(16, 8, 4, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Stats.Degraded || o.Stats.DegradeCause != CauseNone || o.Stats.DegradePath != "" {
		t.Errorf("unbudgeted run marked degraded: %+v", o.Stats)
	}
	ref := newTestWorld()
	ro := NewOptimizer(ref.rs)
	want, err := ro.Optimize(ref.chain(16, 8, 4, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Stats.Groups != ro.Stats.Groups || o.Stats.Exprs != ro.Stats.Exprs {
		t.Errorf("context path changed the search: groups %d/%d exprs %d/%d",
			o.Stats.Groups, ro.Stats.Groups, o.Stats.Exprs, ro.Stats.Exprs)
	}
	if plain.Cost(w.rs.Class) != want.Cost(ref.rs.Class) {
		t.Errorf("winner cost differs: %g vs %g", plain.Cost(w.rs.Class), want.Cost(ref.rs.Class))
	}
}

// TestBudgetBothExplorers: degradation must work under the pass-based
// reference explorer too.
func TestBudgetBothExplorers(t *testing.T) {
	for _, kind := range []ExplorerKind{ExplorerWorklist, ExplorerPasses} {
		w := newTestWorld()
		o := NewOptimizer(w.rs)
		o.Opts.Explorer = kind
		o.Opts.Budget = Budget{MaxExprs: 5}
		degradedPlan(t, w, o, context.Background(), CauseMaxExprs)
	}
}

// TestStatsFlushedOnExhaustion: the hard-cap error path must still
// report the partial work — memo counters and per-rule maps (they feed
// degradation diagnostics and the enriched error).
func TestStatsFlushedOnExhaustion(t *testing.T) {
	w := newTestWorld()
	o := NewOptimizer(w.rs)
	o.Opts.MaxExprs = 3
	_, err := o.Optimize(w.chain(8, 4, 2), nil)
	if err == nil {
		t.Fatal("expected exhaustion")
	}
	if o.Stats.Groups == 0 || o.Stats.Exprs == 0 {
		t.Errorf("memo stats not recorded on error: groups=%d exprs=%d", o.Stats.Groups, o.Stats.Exprs)
	}
	total := 0
	for _, n := range o.Stats.TransMatched {
		total += n
	}
	if total == 0 {
		t.Error("per-rule counters not flushed on the exhaustion path")
	}
}

// TestGreedyPlanStandalone: the fallback planner on its own produces a
// valid plan of the original shape without firing any transformation.
func TestGreedyPlanStandalone(t *testing.T) {
	w := newTestWorld()
	plan, err := GreedyPlan(w.rs, w.chain(8, 4, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.ToExpr().IsPlan() || len(plan.ToExpr().Leaves()) != 3 {
		t.Errorf("greedy plan invalid: %s", plan)
	}
	// Compare: the full search can only match or beat the greedy cost.
	full := newTestWorld()
	fo := NewOptimizer(full.rs)
	best, err := fo.Optimize(full.chain(8, 4, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost(w.rs.Class) < best.Cost(full.rs.Class) {
		t.Errorf("greedy %g beats full search %g", plan.Cost(w.rs.Class), best.Cost(full.rs.Class))
	}
}

// TestBudgetInfeasibleRequirement: when even the fallback cannot satisfy
// the requirement, the degraded search reports an error rather than a
// bogus plan.
func TestBudgetInfeasibleRequirement(t *testing.T) {
	w := newTestWorld()
	w.rs.Enforcers = nil
	var impls []*ImplRule
	for _, r := range w.rs.Impls {
		if r.Name != "join_merge_join" {
			impls = append(impls, r)
		}
	}
	w.rs.Impls = impls
	o := NewOptimizer(w.rs)
	o.Opts.Budget = Budget{MaxExprs: 1}
	req := w.alg.NewDesc()
	req.Set(w.ord, core.OrderBy(core.A("R1", "a")))
	if _, err := o.Optimize(w.retOf(w.leaf("R1", 8, core.A("R1", "a"))), req); err == nil {
		t.Error("expected an error for an unsatisfiable degraded search")
	}
}
