package qgen

import (
	"strings"
	"testing"

	"prairie/internal/core"
	"prairie/internal/oodb"
)

func TestQueries(t *testing.T) {
	qs := Queries()
	if len(qs) != 8 {
		t.Fatalf("queries = %d", len(qs))
	}
	if qs[0].Name != "Q1" || qs[0].Expr != E1 || qs[0].Indexed {
		t.Errorf("Q1 = %+v", qs[0])
	}
	if qs[7].Name != "Q8" || qs[7].Expr != E4 || !qs[7].Indexed {
		t.Errorf("Q8 = %+v", qs[7])
	}
	if len(InstanceSeeds()) != 5 {
		t.Error("the paper averages over 5 instances")
	}
}

func TestExprKindProperties(t *testing.T) {
	if E1.HasMat() || E3.HasMat() || !E2.HasMat() || !E4.HasMat() {
		t.Error("HasMat wrong")
	}
	if E1.HasSelect() || E2.HasSelect() || !E3.HasSelect() || !E4.HasSelect() {
		t.Error("HasSelect wrong")
	}
	if E3.String() != "E3" {
		t.Errorf("String = %s", E3)
	}
}

func TestBuildShapes(t *testing.T) {
	o := oodb.New(Catalog(3, 7, true))
	cases := map[ExprKind]string{
		E1: "JOIN(JOIN(RET(C1), RET(C2)), RET(C3))",
		E2: "JOIN(JOIN(MAT(RET(C1)), MAT(RET(C2))), MAT(RET(C3)))",
		E3: "SELECT(JOIN(JOIN(RET(C1), RET(C2)), RET(C3)))",
		E4: "SELECT(JOIN(JOIN(MAT(RET(C1)), MAT(RET(C2))), MAT(RET(C3))))",
	}
	for e, want := range cases {
		tree, err := Build(o, e, 3)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if got := tree.String(); got != want {
			t.Errorf("%v = %s, want %s", e, got, want)
		}
		if !tree.IsLogical() {
			t.Errorf("%v is not a pure operator tree", e)
		}
	}
}

func TestBuildDescriptors(t *testing.T) {
	o := oodb.New(Catalog(2, 7, true))
	tree, err := Build(o, E4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Root SELECT: conjunction of per-class equality terms, estimated
	// cardinality strictly below the join's.
	sel := tree.D.Pred(o.SP)
	if len(sel.Conjuncts()) != 2 {
		t.Errorf("selection = %v", sel)
	}
	if !strings.Contains(sel.String(), "C1.b = 1") || !strings.Contains(sel.String(), "C2.b = 2") {
		t.Errorf("selection terms = %v", sel)
	}
	join := tree.Kids[0]
	if !(tree.D.Float(o.NR) < join.D.Float(o.NR)) {
		t.Error("selection did not reduce the estimate")
	}
	if !join.D.Pred(o.JP).IsEquiJoin() {
		t.Errorf("join predicate = %v", join.D.Pred(o.JP))
	}
	// MAT nodes carry the pointer attribute and widened schema.
	mat := join.Kids[0]
	ma := mat.D.AttrList(o.MA)
	if len(ma) != 1 || ma[0] != core.A("C1", "ref") {
		t.Errorf("mat_attribute = %v", ma)
	}
	if !mat.D.AttrList(o.AT).Contains(core.A("S1", "x")) {
		t.Error("MAT schema missing target attributes")
	}
	// Leaves carry index metadata; RETs do not.
	ret := mat.Kids[0]
	leaf := ret.Kids[0]
	if len(leaf.D.AttrList(o.IX)) == 0 {
		t.Error("leaf missing index metadata")
	}
	if ret.D.Has(o.IX) {
		t.Error("RET stream should not carry index metadata")
	}
	if !ret.D.Pred(o.SP).IsTrue() {
		t.Error("initial RET selection should be TRUE")
	}
}

func TestBuildErrors(t *testing.T) {
	o := oodb.New(Catalog(2, 7, false))
	if _, err := Build(o, E1, 0); err == nil {
		t.Error("zero classes accepted")
	}
	if _, err := Build(o, E1, 5); err == nil {
		t.Error("classes beyond the catalog accepted")
	}
}

func TestCatalogVariation(t *testing.T) {
	a := Catalog(3, InstanceSeeds()[0], false)
	b := Catalog(3, InstanceSeeds()[1], false)
	varies := false
	for i := 1; i <= 3; i++ {
		name := "C" + string(rune('0'+i))
		if a.MustClass(name).Card != b.MustClass(name).Card {
			varies = true
		}
	}
	if !varies {
		t.Error("instance seeds should vary cardinalities")
	}
	if !Catalog(2, 1, true).MustClass("C1").HasIndex("b") {
		t.Error("indexed catalog missing index")
	}
	if Catalog(2, 1, false).MustClass("C1").HasIndex("b") {
		t.Error("unindexed catalog has index")
	}
}

func TestBuildStarGraph(t *testing.T) {
	o := oodb.New(Catalog(4, 7, false))
	tree, err := BuildGraph(o, E1, 4, Star)
	if err != nil {
		t.Fatal(err)
	}
	// Every join predicate references the hub C1.
	var walk func(e *core.Expr)
	joins := 0
	walk = func(e *core.Expr) {
		if e.IsLeaf() {
			return
		}
		if e.Op.Name == "JOIN" {
			joins++
			attrs := e.D.Pred(o.JP).Attrs()
			found := false
			for _, a := range attrs {
				if a.Rel == "C1" {
					found = true
				}
			}
			if !found {
				t.Errorf("star predicate does not touch the hub: %v", e.D.Pred(o.JP))
			}
		}
		for _, k := range e.Kids {
			walk(k)
		}
	}
	walk(tree)
	if joins != 3 {
		t.Errorf("joins = %d", joins)
	}
}
