// Package qgen generates the evaluation workloads of Section 4.3 of the
// paper: the four expression families E1–E4 (Figure 9) instantiated as
// N-way join queries over synthetic catalogs, and the eight queries
// Q1–Q8 of Table 5 (each expression with and without indices).
//
//	E1: JOIN chain over RET(Ci)                      — simple retrieval+join
//	E2: JOIN chain over MAT(RET(Ci))                 — materialize before join
//	E3: SELECT over E1                               — selection added
//	E4: SELECT over E2                               — all operators
//
// Join predicates form a linear query graph (Ci.a = Ci+1.a); selections
// are conjunctions of equality terms bc_i = const_i with const_i = i,
// exactly as the paper describes. Per experiment point, five catalog
// instances with varied cardinalities are generated from distinct seeds.
package qgen

import (
	"fmt"
	"strings"

	"prairie/internal/catalog"
	"prairie/internal/core"
	"prairie/internal/oodb"
)

// ExprKind selects one of the paper's four expression families.
type ExprKind int

// Expression families of Figure 9.
const (
	E1 ExprKind = iota + 1
	E2
	E3
	E4
)

func (e ExprKind) String() string { return fmt.Sprintf("E%d", int(e)) }

// ParseKind maps a family name ("E1".."E4", case-insensitive) back to
// its ExprKind — the inverse of String, used by wire protocols that
// name query families in requests.
func ParseKind(s string) (ExprKind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "E1":
		return E1, nil
	case "E2":
		return E2, nil
	case "E3":
		return E3, nil
	case "E4":
		return E4, nil
	}
	return 0, fmt.Errorf("qgen: unknown expression family %q (want E1..E4)", s)
}

// HasMat reports whether the family materializes an attribute per class.
func (e ExprKind) HasMat() bool { return e == E2 || e == E4 }

// HasSelect reports whether the family has a root selection.
func (e ExprKind) HasSelect() bool { return e == E3 || e == E4 }

// Query identifies one of the paper's eight queries (Table 5).
type Query struct {
	Name    string
	Expr    ExprKind
	Indexed bool
}

// Queries returns Q1..Q8 exactly as in Table 5.
func Queries() []Query {
	return []Query{
		{"Q1", E1, false}, {"Q2", E1, true},
		{"Q3", E2, false}, {"Q4", E2, true},
		{"Q5", E3, false}, {"Q6", E3, true},
		{"Q7", E4, false}, {"Q8", E4, true},
	}
}

// InstanceSeeds returns the seeds of the five catalog instances averaged
// per experiment point ("we varied the cardinalities of the base classes
// 5 times", §4.3).
func InstanceSeeds() []int64 { return []int64{101, 202, 303, 404, 505} }

// Catalog generates a synthetic catalog for an n-way query instance.
func Catalog(n int, seed int64, indexed bool) *catalog.Catalog {
	return catalog.Generate(catalog.DefaultGen(n, seed, indexed))
}

// Graph selects the query-graph shape. The paper's experiments use
// linear graphs; star graphs are its stated future work ("In the future,
// we will experiment with non-linear (e.g., star) query graphs").
type Graph int

// Query-graph shapes.
const (
	// Linear joins Ci to Ci+1 (a chain).
	Linear Graph = iota
	// Star joins every class to the hub C1.
	Star
)

// Build constructs the initialized operator tree for the expression
// family with n classes over the optimizer's catalog, using a linear
// query graph. n counts classes; the tree has n-1 JOINs ("an N-way join
// query").
func Build(o *oodb.Opt, e ExprKind, n int) (*core.Expr, error) {
	return BuildGraph(o, e, n, Linear)
}

// BuildGraph is Build with an explicit query-graph shape.
func BuildGraph(o *oodb.Opt, e ExprKind, n int, g Graph) (*core.Expr, error) {
	if n < 1 {
		return nil, fmt.Errorf("qgen: need at least one class, got %d", n)
	}
	cur, err := retOf(o, 1, e.HasMat())
	if err != nil {
		return nil, err
	}
	for i := 2; i <= n; i++ {
		next, err := retOf(o, i, e.HasMat())
		if err != nil {
			return nil, err
		}
		from := i - 1
		if g == Star {
			from = 1 // every predicate connects to the hub C1
		}
		pred := core.EqAttr(
			core.A(catalog.ClassName(from), "a"),
			core.A(catalog.ClassName(i), "a"))
		cur = joinOf(o, cur, next, pred)
	}
	if e.HasSelect() {
		cur = selectOf(o, cur, selectionPred(n))
	}
	return cur, nil
}

// selectionPred builds the paper's root selection: the conjunction of
// bc_i = const_i over every class, const_i arbitrarily i.
func selectionPred(n int) *core.Pred {
	terms := make([]*core.Pred, n)
	for i := 1; i <= n; i++ {
		terms[i-1] = core.EqConst(core.A(catalog.ClassName(i), "b"), core.Int(int64(i)))
	}
	return oodb.CanonAnd(terms...)
}

// retOf builds RET(Ci), wrapped in MAT when the family materializes.
func retOf(o *oodb.Opt, i int, mat bool) (*core.Expr, error) {
	name := catalog.ClassName(i)
	cl, ok := o.Cat.Class(name)
	if !ok {
		return nil, fmt.Errorf("qgen: class %s not in catalog", name)
	}
	leafD := o.Alg.NewDesc()
	leafD.Set(o.AT, cl.AttrSet())
	leafD.SetFloat(o.NR, cl.Card)
	leafD.SetFloat(o.TS, cl.TupleSize)
	leafD.Set(o.IX, cl.IndexSet())
	leafD.Set(o.C, core.Cost(0))
	leaf := core.NewLeaf(name, leafD)

	retD := leafD.Clone()
	retD.Unset(o.IX)
	retD.Set(o.SP, core.TruePred)
	cur := core.NewNode(o.RET, retD, leaf)

	if mat {
		ref := core.Attr{Rel: name, Name: "ref"}
		matD := o.Alg.NewDesc()
		matD.Set(o.MA, core.Attrs{ref})
		matD.Set(o.AT, retD.AttrList(o.AT).Union(o.MatTargetAttrs(core.Attrs{ref})))
		matD.SetFloat(o.NR, retD.Float(o.NR))
		matD.SetFloat(o.TS, retD.Float(o.TS)+o.MatTargetSize(core.Attrs{ref}))
		cur = core.NewNode(o.MAT, matD, cur)
	}
	return cur, nil
}

func joinOf(o *oodb.Opt, l, r *core.Expr, pred *core.Pred) *core.Expr {
	d := o.Alg.NewDesc()
	d.Set(o.JP, pred)
	d.Set(o.AT, l.D.AttrList(o.AT).Union(r.D.AttrList(o.AT)))
	d.SetFloat(o.NR, o.Cat.JoinCard(l.D.Float(o.NR), r.D.Float(o.NR), pred))
	d.SetFloat(o.TS, l.D.Float(o.TS)+r.D.Float(o.TS))
	return core.NewNode(o.JOIN, d, l, r)
}

func selectOf(o *oodb.Opt, in *core.Expr, pred *core.Pred) *core.Expr {
	d := o.Alg.NewDesc()
	d.Set(o.SP, pred)
	d.Set(o.AT, in.D.AttrList(o.AT))
	d.SetFloat(o.NR, o.Cat.SelectCard(in.D.Float(o.NR), pred))
	d.SetFloat(o.TS, in.D.Float(o.TS))
	return core.NewNode(o.SELECT, d, in)
}
