package qgen

import "math/rand"

// ZipfDraws returns count indices drawn from a zipfian distribution
// over a query pool of size n: index 0 is the hottest query, and the
// skew parameter s (> 1) controls how steeply popularity falls off —
// production query traffic is dominated by a small set of hot
// statements, which is exactly what a cross-query plan cache exploits.
// The sequence is a pure function of (n, count, s, seed), so repeat
// workloads are reproducible across runs and machines.
func ZipfDraws(n, count int, s float64, seed int64) []int {
	if n <= 0 || count <= 0 {
		return nil
	}
	if s <= 1 {
		s = 1.0001
	}
	z := rand.NewZipf(rand.New(rand.NewSource(seed)), s, 1, uint64(n-1))
	out := make([]int, count)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}

// RepeatRate reports the fraction of draws that re-draw an
// already-seen index — the upper bound on a plan cache's full-hit rate
// for the workload.
func RepeatRate(draws []int) float64 {
	if len(draws) == 0 {
		return 0
	}
	seen := make(map[int]bool, len(draws))
	repeats := 0
	for _, d := range draws {
		if seen[d] {
			repeats++
		}
		seen[d] = true
	}
	return float64(repeats) / float64(len(draws))
}
