package qgen

import (
	"fmt"

	"prairie/internal/catalog"
	"prairie/internal/core"
	"prairie/internal/oodb"
)

// Pattern-directed shapes: expression forms the paper's E1–E4 families
// never produce but specific OODB rules need to fire (the per-rule
// verifier in internal/rulecheck matches rules against generated trees,
// so every rule needs at least one generator that can reach its LHS).

// BuildRefJoin builds JOIN(RET(Ci), RET(Si)) joined on the pointer
// equality Ci.ref = Si.id — the form join_to_mat rewrites into MAT(?1).
// E1–E4 join classes on their shared "a" attribute, so the
// pointer-equality join form never appears in them.
func BuildRefJoin(o *oodb.Opt, i int) (*core.Expr, error) {
	left, err := retOf(o, i, false)
	if err != nil {
		return nil, err
	}
	right, err := retOfClass(o, catalog.SubClassName(i))
	if err != nil {
		return nil, err
	}
	pred := core.EqAttr(
		core.A(catalog.ClassName(i), "ref"),
		core.A(catalog.SubClassName(i), "id"))
	return joinOf(o, left, right, pred), nil
}

// BuildUnnest builds UNNEST over the set-valued "tags" attribute of Ci:
// UNNEST(MAT(RET(Ci))) when mat is set (the unnest_mat_commute shape,
// the one trans_rule of the UNNEST space), else UNNEST(RET(Ci)).
func BuildUnnest(o *oodb.Opt, i int, mat bool) (*core.Expr, error) {
	in, err := retOf(o, i, mat)
	if err != nil {
		return nil, err
	}
	name := catalog.ClassName(i)
	cl, ok := o.Cat.Class(name)
	if !ok {
		return nil, fmt.Errorf("qgen: class %s not in catalog", name)
	}
	tags, ok := cl.Attr("tags")
	if !ok || !tags.SetValued {
		return nil, fmt.Errorf("qgen: class %s has no set-valued tags attribute", name)
	}
	ua := core.Attrs{core.A(name, "tags")}
	d := o.Alg.NewDesc()
	d.Set(o.UA, ua)
	d.Set(o.AT, in.D.AttrList(o.AT))
	d.SetFloat(o.NR, in.D.Float(o.NR)*tags.SetSize)
	d.SetFloat(o.TS, in.D.Float(o.TS))
	return core.NewNode(o.UNNEST, d, in), nil
}

// retOfClass builds RET over an arbitrary catalog class (retOf reaches
// the C<i> classes by index; the companion S<i> classes need this).
func retOfClass(o *oodb.Opt, name string) (*core.Expr, error) {
	cl, ok := o.Cat.Class(name)
	if !ok {
		return nil, fmt.Errorf("qgen: class %s not in catalog", name)
	}
	leafD := o.Alg.NewDesc()
	leafD.Set(o.AT, cl.AttrSet())
	leafD.SetFloat(o.NR, cl.Card)
	leafD.SetFloat(o.TS, cl.TupleSize)
	leafD.Set(o.IX, cl.IndexSet())
	leafD.Set(o.C, core.Cost(0))
	leaf := core.NewLeaf(name, leafD)

	retD := leafD.Clone()
	retD.Unset(o.IX)
	retD.Set(o.SP, core.TruePred)
	return core.NewNode(o.RET, retD, leaf), nil
}
