package qgen

import "testing"

func TestZipfDrawsDeterministic(t *testing.T) {
	a := ZipfDraws(12, 300, 1.3, 42)
	b := ZipfDraws(12, 300, 1.3, 42)
	if len(a) != 300 {
		t.Fatalf("len = %d, want 300", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical calls: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= 12 {
			t.Fatalf("draw %d out of range: %d", i, a[i])
		}
	}
	c := ZipfDraws(12, 300, 1.3, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestZipfDrawsSkew(t *testing.T) {
	draws := ZipfDraws(12, 1000, 1.3, 7)
	counts := make([]int, 12)
	for _, d := range draws {
		counts[d]++
	}
	for i := 1; i < 12; i++ {
		if counts[0] < counts[i] {
			t.Fatalf("index 0 (%d draws) not the hottest; index %d has %d",
				counts[0], i, counts[i])
		}
	}
	if r := RepeatRate(draws); r < 0.8 {
		t.Errorf("repeat rate %.2f below the 80%% a repeat workload needs", r)
	}
}

func TestZipfDrawsDegenerate(t *testing.T) {
	if ZipfDraws(0, 10, 1.3, 1) != nil || ZipfDraws(10, 0, 1.3, 1) != nil {
		t.Error("degenerate sizes should return nil")
	}
	one := ZipfDraws(1, 5, 1.3, 1)
	for _, d := range one {
		if d != 0 {
			t.Fatal("pool of one must always draw index 0")
		}
	}
}
