// Package data provides the in-memory storage substrate: stored files
// (tables of tuples) generated from catalog metadata, with hash indexes.
// The paper's experiments never execute plans (they measure optimization
// time), but this repository's tests do: executing every plan of a
// query's search space and comparing results validates that the rule
// sets preserve semantics.
package data

import (
	"fmt"
	"math/rand"
	"sort"

	"prairie/internal/catalog"
	"prairie/internal/core"
)

// DatumKind enumerates column value kinds.
type DatumKind uint8

// Column value kinds.
const (
	DInt DatumKind = iota
	DString
	DRef // row ordinal in the referenced class
	DSet // set of integers (set-valued attribute)
)

// Datum is one column value of a tuple.
type Datum struct {
	Kind DatumKind
	I    int64
	S    string
	Set  []int64
}

// IntD returns an integer datum.
func IntD(v int64) Datum { return Datum{Kind: DInt, I: v} }

// StrD returns a string datum.
func StrD(v string) Datum { return Datum{Kind: DString, S: v} }

// RefD returns a reference datum (row ordinal in the target class).
func RefD(row int64) Datum { return Datum{Kind: DRef, I: row} }

// SetD returns a set-valued datum.
func SetD(vals ...int64) Datum { return Datum{Kind: DSet, Set: vals} }

// Equal compares two data.
func (d Datum) Equal(o Datum) bool {
	if d.Kind != o.Kind {
		// Ints and refs compare by value across kinds (a join on a ref
		// attribute compares ordinals).
		if (d.Kind == DInt || d.Kind == DRef) && (o.Kind == DInt || o.Kind == DRef) {
			return d.I == o.I
		}
		return false
	}
	switch d.Kind {
	case DInt, DRef:
		return d.I == o.I
	case DString:
		return d.S == o.S
	default:
		if len(d.Set) != len(o.Set) {
			return false
		}
		for i := range d.Set {
			if d.Set[i] != o.Set[i] {
				return false
			}
		}
		return true
	}
}

// Less orders two data (ints before strings; sets are unordered and
// compare by first element for determinism).
func (d Datum) Less(o Datum) bool {
	if d.Kind != o.Kind {
		return d.Kind < o.Kind
	}
	switch d.Kind {
	case DInt, DRef:
		return d.I < o.I
	case DString:
		return d.S < o.S
	default:
		return len(d.Set) > 0 && len(o.Set) > 0 && d.Set[0] < o.Set[0]
	}
}

// Hash returns a hash consistent with Equal.
func (d Datum) Hash() uint64 {
	var h uint64 = 14695981039346656037
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	switch d.Kind {
	case DInt, DRef:
		mix(uint64(d.I))
	case DString:
		for i := 0; i < len(d.S); i++ {
			h ^= uint64(d.S[i])
			h *= 1099511628211
		}
	default:
		for _, v := range d.Set {
			mix(uint64(v))
		}
	}
	return h
}

// String renders the datum.
func (d Datum) String() string {
	switch d.Kind {
	case DInt:
		return fmt.Sprintf("%d", d.I)
	case DRef:
		return fmt.Sprintf("@%d", d.I)
	case DString:
		return d.S
	default:
		return fmt.Sprintf("%v", d.Set)
	}
}

// CompareToValue compares a datum against a descriptor constant (used by
// predicate evaluation); it returns -1/0/+1 and reports comparability.
func (d Datum) CompareToValue(v core.Value) (int, bool) {
	switch x := v.(type) {
	case core.Int:
		if d.Kind != DInt && d.Kind != DRef {
			return 0, false
		}
		switch {
		case d.I < int64(x):
			return -1, true
		case d.I > int64(x):
			return 1, true
		}
		return 0, true
	case core.Float:
		if d.Kind != DInt && d.Kind != DRef {
			return 0, false
		}
		f := float64(d.I)
		switch {
		case f < float64(x):
			return -1, true
		case f > float64(x):
			return 1, true
		}
		return 0, true
	case core.Str:
		if d.Kind != DString {
			return 0, false
		}
		switch {
		case d.S < string(x):
			return -1, true
		case d.S > string(x):
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// Tuple is one row of a stream, aligned with its Schema.
type Tuple []Datum

// Schema names a stream's columns.
type Schema []core.Attr

// Col returns the position of an attribute in the schema.
func (s Schema) Col(a core.Attr) (int, bool) {
	for i, x := range s {
		if x == a {
			return i, true
		}
	}
	return -1, false
}

// Concat returns the concatenation of two schemas.
func (s Schema) Concat(o Schema) Schema {
	out := make(Schema, 0, len(s)+len(o))
	out = append(out, s...)
	out = append(out, o...)
	return out
}

// Table is a stored file: schema, rows, and hash indexes.
type Table struct {
	Class   *catalog.Class
	Schema  Schema
	Rows    []Tuple
	indexes map[string]map[uint64][]int
}

// Index returns the row ordinals whose attribute equals the datum, using
// the hash index (which must exist; see HasIndex).
func (t *Table) Index(attr string, d Datum) []int {
	ix := t.indexes[attr]
	if ix == nil {
		return nil
	}
	col, ok := t.Schema.Col(core.Attr{Rel: t.Class.Name, Name: attr})
	if !ok {
		return nil
	}
	var out []int
	for _, row := range ix[d.Hash()] {
		if t.Rows[row][col].Equal(d) {
			out = append(out, row)
		}
	}
	return out
}

// HasIndex reports whether the attribute has a hash index.
func (t *Table) HasIndex(attr string) bool { return t.indexes[attr] != nil }

// buildIndex constructs the hash index for an attribute.
func (t *Table) buildIndex(attr string) {
	col, ok := t.Schema.Col(core.Attr{Rel: t.Class.Name, Name: attr})
	if !ok {
		return
	}
	m := make(map[uint64][]int, len(t.Rows))
	for i, row := range t.Rows {
		h := row[col].Hash()
		m[h] = append(m[h], i)
	}
	if t.indexes == nil {
		t.indexes = map[string]map[uint64][]int{}
	}
	t.indexes[attr] = m
}

// DB is a set of populated tables.
type DB struct {
	tables map[string]*Table
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.tables[name]
	return t, ok
}

// MustTable returns the named table, panicking if absent.
func (db *DB) MustTable(name string) *Table {
	t, ok := db.tables[name]
	if !ok {
		panic("data: unknown table " + name)
	}
	return t
}

// Names returns the table names, sorted.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Populate generates deterministic synthetic rows for every class in the
// catalog, scaled down to at most maxRows per table (the optimizer works
// from catalog statistics; execution only needs representative data).
// Attribute value distributions respect the catalog's distinct counts so
// that observed selectivities resemble the estimates.
func Populate(cat *catalog.Catalog, seed int64, maxRows int) *DB {
	rng := rand.New(rand.NewSource(seed))
	db := &DB{tables: map[string]*Table{}}
	names := cat.Names()
	for _, name := range names {
		cl := cat.MustClass(name)
		n := int(cl.Card)
		if maxRows > 0 && n > maxRows {
			n = maxRows
		}
		t := &Table{Class: cl, Schema: Schema(cl.AttrSet())}
		for i := 0; i < n; i++ {
			row := make(Tuple, len(cl.Attrs))
			for j, a := range cl.Attrs {
				switch {
				case a.Name == "id":
					// Object identity: the row ordinal.
					row[j] = IntD(int64(i))
				case a.Ref != "":
					target := cat.MustClass(a.Ref)
					limit := int64(target.Card)
					if maxRows > 0 && limit > int64(maxRows) {
						limit = int64(maxRows)
					}
					row[j] = RefD(rng.Int63n(limit))
				case a.SetValued:
					set := make([]int64, int(a.SetSize))
					for k := range set {
						set[k] = rng.Int63n(int64(a.Distinct))
					}
					row[j] = SetD(set...)
				default:
					row[j] = IntD(rng.Int63n(int64(a.Distinct)))
				}
			}
			t.Rows = append(t.Rows, row)
		}
		for _, ixAttr := range cl.Indexes {
			t.buildIndex(ixAttr)
		}
		db.tables[name] = t
	}
	return db
}
