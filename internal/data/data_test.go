package data

import (
	"testing"
	"testing/quick"

	"prairie/internal/catalog"
	"prairie/internal/core"
)

func testDB(t *testing.T) (*DB, *catalog.Catalog) {
	t.Helper()
	cat := catalog.Generate(catalog.DefaultGen(3, 42, true))
	return Populate(cat, 7, 64), cat
}

func TestDatumBasics(t *testing.T) {
	if !IntD(3).Equal(IntD(3)) || IntD(3).Equal(IntD(4)) {
		t.Error("int equality")
	}
	if !IntD(3).Equal(RefD(3)) {
		t.Error("int and ref with same value should compare equal")
	}
	if IntD(3).Equal(StrD("3")) {
		t.Error("cross-kind equality")
	}
	if !StrD("a").Less(StrD("b")) || StrD("b").Less(StrD("a")) {
		t.Error("string ordering")
	}
	if !IntD(1).Less(IntD(2)) {
		t.Error("int ordering")
	}
	if !SetD(1, 2).Equal(SetD(1, 2)) || SetD(1, 2).Equal(SetD(2, 1)) {
		t.Error("set equality is positional")
	}
	if IntD(3).String() != "3" || RefD(3).String() != "@3" || StrD("x").String() != "x" {
		t.Error("String renderings")
	}
}

func TestDatumHashEqualConsistency(t *testing.T) {
	if err := quick.Check(func(v int64) bool {
		return IntD(v).Hash() == IntD(v).Hash() && IntD(v).Hash() == RefD(v).Hash()
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(s string) bool {
		return StrD(s).Hash() == StrD(s).Hash()
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDatumCompareToValue(t *testing.T) {
	cases := []struct {
		d    Datum
		v    core.Value
		want int
		ok   bool
	}{
		{IntD(3), core.Int(3), 0, true},
		{IntD(2), core.Int(3), -1, true},
		{IntD(4), core.Int(3), 1, true},
		{IntD(4), core.Float(4), 0, true},
		{StrD("a"), core.Str("b"), -1, true},
		{StrD("a"), core.Int(1), 0, false},
		{IntD(1), core.Str("1"), 0, false},
		{SetD(1), core.Int(1), 0, false},
	}
	for _, c := range cases {
		got, ok := c.d.CompareToValue(c.v)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("CompareToValue(%v, %v) = %d, %v; want %d, %v", c.d, c.v, got, ok, c.want, c.ok)
		}
	}
}

// TestDatumSetOrdering pins the deterministic-but-partial order on
// set-valued data: sets compare by first element, and an empty set ties
// with everything (Less is false both ways), which sorting treats as
// equal — never as a panic or an unstable order.
func TestDatumSetOrdering(t *testing.T) {
	if !SetD(1, 9).Less(SetD(2, 0)) || SetD(2, 0).Less(SetD(1, 9)) {
		t.Error("sets must order by first element")
	}
	if SetD(1, 5).Less(SetD(1, 2)) || SetD(1, 2).Less(SetD(1, 5)) {
		t.Error("sets sharing a first element tie")
	}
	if SetD().Less(SetD()) || SetD().Less(SetD(1)) || SetD(1).Less(SetD()) {
		t.Error("empty sets tie with every set")
	}
	if !SetD().Equal(SetD()) {
		t.Error("empty sets are equal")
	}
	if SetD().Equal(SetD(1)) || SetD(1).Equal(SetD()) {
		t.Error("empty set equals only the empty set")
	}
	// Cross-kind: a set never equals a scalar, and kind decides Less.
	if SetD(3).Equal(IntD(3)) || IntD(3).Equal(SetD(3)) {
		t.Error("set vs int cross-kind equality")
	}
	if !IntD(9).Less(SetD(1)) || SetD(1).Less(IntD(9)) {
		t.Error("cross-kind order is by kind, ints before sets")
	}
}

// TestDatumHashEdgeCases: Hash must stay consistent with Equal on the
// corners — int/ref cross-kind equality, positional set equality, and
// empty values hashing without panicking.
func TestDatumHashEdgeCases(t *testing.T) {
	if IntD(7).Hash() != RefD(7).Hash() {
		t.Error("equal int and ref must hash alike")
	}
	if SetD(1, 2).Hash() != SetD(1, 2).Hash() {
		t.Error("set hash not deterministic")
	}
	if SetD(1, 2).Hash() == SetD(2, 1).Hash() {
		t.Error("positionally-different sets should hash apart")
	}
	// Empty set, empty string, and the zero int are pairwise unequal;
	// their hashes need not differ, but must be stable and safe.
	for _, d := range []Datum{SetD(), StrD(""), IntD(0)} {
		if d.Hash() != d.Hash() {
			t.Errorf("%v: unstable hash", d)
		}
	}
	if SetD().Equal(StrD("")) || StrD("").Equal(IntD(0)) {
		t.Error("empty values of different kinds are not equal")
	}
}

// TestDatumCompareToValueRefAndEdges: refs compare against numeric
// constants exactly like ints (a pointer is its target ordinal), and
// unsupported constant kinds report incomparable instead of guessing.
func TestDatumCompareToValueRefAndEdges(t *testing.T) {
	cases := []struct {
		d    Datum
		v    core.Value
		want int
		ok   bool
	}{
		{RefD(3), core.Int(3), 0, true},
		{RefD(2), core.Int(3), -1, true},
		{RefD(4), core.Int(3), 1, true},
		{RefD(2), core.Float(2.5), -1, true},
		{RefD(3), core.Float(2.5), 1, true},
		{RefD(3), core.Str("3"), 0, false},
		{SetD(1, 2), core.Float(1), 0, false},
		{SetD(), core.Int(0), 0, false},
		{StrD(""), core.Str(""), 0, true},
		{IntD(0), core.Bool(true), 0, false},
		{IntD(0), core.Cost(1), 0, false},
		{RefD(0), core.DontCareOrder, 0, false},
	}
	for _, c := range cases {
		got, ok := c.d.CompareToValue(c.v)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("CompareToValue(%v, %v) = %d, %v; want %d, %v", c.d, c.v, got, ok, c.want, c.ok)
		}
	}
}

func TestSchemaOps(t *testing.T) {
	s := Schema{core.A("C1", "a"), core.A("C1", "b")}
	if c, ok := s.Col(core.A("C1", "b")); !ok || c != 1 {
		t.Error("Col lookup")
	}
	if _, ok := s.Col(core.A("C2", "a")); ok {
		t.Error("Col found missing attr")
	}
	s2 := s.Concat(Schema{core.A("C2", "a")})
	if len(s2) != 3 || s2[2] != core.A("C2", "a") {
		t.Error("Concat")
	}
}

func TestPopulate(t *testing.T) {
	db, cat := testDB(t)
	if len(db.Names()) != 6 { // 3 classes + 3 companion classes
		t.Fatalf("tables = %v", db.Names())
	}
	for _, name := range []string{"C1", "C2", "C3"} {
		tab := db.MustTable(name)
		cl := cat.MustClass(name)
		wantRows := int(cl.Card)
		if wantRows > 64 {
			wantRows = 64
		}
		if len(tab.Rows) != wantRows {
			t.Errorf("%s has %d rows, want %d", name, len(tab.Rows), wantRows)
		}
		idCol, ok := tab.Schema.Col(core.Attr{Rel: name, Name: "id"})
		if !ok {
			t.Fatalf("%s missing id column", name)
		}
		refCol, _ := tab.Schema.Col(core.Attr{Rel: name, Name: "ref"})
		tagsCol, _ := tab.Schema.Col(core.Attr{Rel: name, Name: "tags"})
		for i, row := range tab.Rows {
			if row[idCol].I != int64(i) {
				t.Errorf("%s row %d id = %v", name, i, row[idCol])
			}
			if row[refCol].Kind != DRef || row[refCol].I >= 64 {
				t.Errorf("%s row %d ref out of range: %v", name, i, row[refCol])
			}
			if row[tagsCol].Kind != DSet || len(row[tagsCol].Set) != 4 {
				t.Errorf("%s row %d tags = %v", name, i, row[tagsCol])
			}
		}
		if !tab.HasIndex("b") {
			t.Errorf("%s missing index on b", name)
		}
	}
	// Determinism.
	db2 := Populate(cat, 7, 64)
	tab, tab2 := db.MustTable("C1"), db2.MustTable("C1")
	for i := range tab.Rows {
		for j := range tab.Rows[i] {
			if !tab.Rows[i][j].Equal(tab2.Rows[i][j]) {
				t.Fatal("population not deterministic")
			}
		}
	}
	if _, ok := db.Table("C9"); ok {
		t.Error("found missing table")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTable should panic")
		}
	}()
	db.MustTable("C9")
}

func TestIndexLookup(t *testing.T) {
	db, _ := testDB(t)
	tab := db.MustTable("C1")
	bCol, _ := tab.Schema.Col(core.A("C1", "b"))
	// Every indexed value must be findable, and every hit must match.
	seen := 0
	for _, row := range tab.Rows {
		hits := tab.Index("b", row[bCol])
		found := false
		for _, h := range hits {
			if !tab.Rows[h][bCol].Equal(row[bCol]) {
				t.Fatalf("index hit %d does not match %v", h, row[bCol])
			}
			found = true
		}
		if !found {
			t.Fatalf("row value %v not found via index", row[bCol])
		}
		seen++
	}
	if seen == 0 {
		t.Fatal("no rows")
	}
	if got := tab.Index("a", IntD(0)); got != nil {
		t.Error("lookup on unindexed attribute should return nil")
	}
	if got := tab.Index("b", IntD(1<<40)); len(got) != 0 {
		t.Error("absent value returned hits")
	}
}
