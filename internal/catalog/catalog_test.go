package catalog

import (
	"math"
	"testing"
	"testing/quick"

	"prairie/internal/core"
)

func sample() *Catalog {
	cat := New()
	cat.Add(&Class{
		Name: "C1", Card: 1024, TupleSize: 64,
		Attrs: []Attribute{
			{Name: "a", Distinct: 512},
			{Name: "b", Distinct: 256},
			{Name: "ref", Distinct: 1024, Ref: "C2"},
			{Name: "tags", Distinct: 1024, SetValued: true, SetSize: 4},
		},
		Indexes: []string{"b"},
	})
	cat.Add(&Class{
		Name: "C2", Card: 64, TupleSize: 64,
		Attrs: []Attribute{{Name: "a", Distinct: 32}, {Name: "b", Distinct: 16}},
	})
	return cat
}

func TestClassAccessors(t *testing.T) {
	cat := sample()
	c1 := cat.MustClass("C1")
	if a, ok := c1.Attr("ref"); !ok || a.Ref != "C2" {
		t.Errorf("Attr(ref) = %v %v", a, ok)
	}
	if _, ok := c1.Attr("zzz"); ok {
		t.Error("found missing attribute")
	}
	if !c1.HasIndex("b") || c1.HasIndex("a") {
		t.Error("HasIndex wrong")
	}
	as := c1.AttrSet()
	if len(as) != 4 || !as.Contains(core.A("C1", "tags")) {
		t.Errorf("AttrSet = %v", as)
	}
	ix := c1.IndexSet()
	if len(ix) != 1 || ix[0] != core.A("C1", "b") {
		t.Errorf("IndexSet = %v", ix)
	}
	if got := cat.Names(); len(got) != 2 || got[0] != "C1" {
		t.Errorf("Names = %v", got)
	}
	if cat.Len() != 2 {
		t.Errorf("Len = %d", cat.Len())
	}
	if _, ok := cat.Class("C9"); ok {
		t.Error("found missing class")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustClass should panic on missing class")
		}
	}()
	cat.MustClass("C9")
}

func TestDistinct(t *testing.T) {
	cat := sample()
	if got := cat.Distinct(core.A("C1", "a")); got != 512 {
		t.Errorf("Distinct = %g", got)
	}
	// Unknown attributes and classes get a default.
	if got := cat.Distinct(core.A("C1", "zzz")); got != 16 {
		t.Errorf("unknown attr Distinct = %g", got)
	}
	if got := cat.Distinct(core.A("C9", "a")); got != 16 {
		t.Errorf("unknown class Distinct = %g", got)
	}
}

func TestSelectivity(t *testing.T) {
	cat := sample()
	a1, b1 := core.A("C1", "a"), core.A("C1", "b")
	a2 := core.A("C2", "a")
	cases := []struct {
		p    *core.Pred
		want float64
	}{
		{core.TruePred, 1},
		{core.EqConst(b1, core.Int(3)), 1.0 / 256},
		{core.EqAttr(a1, a2), 1.0 / 512}, // 1/max(512, 32)
		{core.CmpConst(core.PredLt, a1, core.Int(9)), 0.25},
		{core.CmpConst(core.PredNe, a1, core.Int(9)), 0.5},
		{core.Not(core.EqConst(b1, core.Int(1))), 0.5},
		{core.And(core.EqConst(b1, core.Int(1)), core.EqAttr(a1, a2)), 1.0 / 256 / 512},
		{core.Or(core.EqConst(b1, core.Int(1)), core.CmpConst(core.PredLt, a1, core.Int(2))), 0.25},
	}
	for _, c := range cases {
		if got := cat.Selectivity(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Selectivity(%v) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestCardEstimates(t *testing.T) {
	cat := sample()
	j := core.EqAttr(core.A("C1", "a"), core.A("C2", "a"))
	if got := cat.JoinCard(1024, 64, j); got != 1024*64/512 {
		t.Errorf("JoinCard = %g", got)
	}
	s := core.EqConst(core.A("C1", "b"), core.Int(1))
	if got := cat.SelectCard(1024, s); got != 4 {
		t.Errorf("SelectCard = %g", got)
	}
}

func TestGenerate(t *testing.T) {
	cat := Generate(DefaultGen(4, 7, true))
	// 4 classes plus their companion sub-object classes.
	if cat.Len() != 8 {
		t.Fatalf("Len = %d", cat.Len())
	}
	for i := 1; i <= 4; i++ {
		cl := cat.MustClass(ClassName(i))
		if cl.Card < 64 || cl.Card > 4096 {
			t.Errorf("%s card %g out of range", cl.Name, cl.Card)
		}
		if !isPow2(cl.Card) {
			t.Errorf("%s card %g not a power of two", cl.Name, cl.Card)
		}
		for _, a := range cl.Attrs {
			if !isPow2(a.Distinct) {
				t.Errorf("%s.%s distinct %g not a power of two", cl.Name, a.Name, a.Distinct)
			}
		}
		if !cl.HasIndex("b") {
			t.Errorf("%s missing index", cl.Name)
		}
		ref, ok := cl.Attr("ref")
		if !ok || ref.Ref == "" {
			t.Errorf("%s missing ref attribute", cl.Name)
		}
		tags, ok := cl.Attr("tags")
		if !ok || !tags.SetValued || tags.SetSize <= 0 {
			t.Errorf("%s missing set-valued attribute", cl.Name)
		}
	}
	// Each ref points to the class's companion sub-object class.
	last, _ := cat.MustClass("C4").Attr("ref")
	if last.Ref != "S4" {
		t.Errorf("C4.ref -> %s", last.Ref)
	}
	sub := cat.MustClass("S4")
	if _, ok := sub.Attr("id"); !ok || sub.Card <= 0 {
		t.Error("companion class malformed")
	}
	// Determinism: same seed, same catalog.
	again := Generate(DefaultGen(4, 7, true))
	for i := 1; i <= 4; i++ {
		if cat.MustClass(ClassName(i)).Card != again.MustClass(ClassName(i)).Card {
			t.Error("generation not deterministic")
		}
	}
	// Different seeds vary cardinalities somewhere.
	other := Generate(DefaultGen(4, 8, true))
	varies := false
	for i := 1; i <= 4; i++ {
		if cat.MustClass(ClassName(i)).Card != other.MustClass(ClassName(i)).Card {
			varies = true
		}
	}
	if !varies {
		t.Error("different seeds produced identical cardinalities")
	}
	// No indexes when not requested.
	plain := Generate(DefaultGen(2, 1, false))
	if plain.MustClass("C1").HasIndex("b") {
		t.Error("unexpected index")
	}
}

func TestSelectivityQuickBounds(t *testing.T) {
	cat := sample()
	// Property: selectivity is always in (0, 1] for conjunctions of
	// equality terms.
	if err := quick.Check(func(n uint8) bool {
		var terms []*core.Pred
		for i := uint8(0); i <= n%4; i++ {
			terms = append(terms, core.EqConst(core.A("C1", "b"), core.Int(int64(i))))
		}
		s := cat.Selectivity(core.And(terms...))
		return s > 0 && s <= 1
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPow2AtMost(t *testing.T) {
	cases := map[float64]float64{1: 2, 2: 2, 3: 2, 4: 4, 1000: 512, 1024: 1024}
	for in, want := range cases {
		if got := pow2AtMost(in); got != want {
			t.Errorf("pow2AtMost(%g) = %g, want %g", in, got, want)
		}
	}
}

func isPow2(v float64) bool {
	return v > 0 && math.Trunc(math.Log2(v)) == math.Log2(v)
}
