// Package catalog provides schema and statistics metadata for stored
// files (base relations / classes), selectivity estimation, and
// synthetic catalog generation for the paper's experiments.
//
// Cardinalities and distinct-value counts generated here are powers of
// two. That is deliberate: descriptor properties such as num_records are
// part of logical-expression identity in the memo, and power-of-two
// statistics keep cardinality arithmetic exact in float64 regardless of
// the order rule actions multiply in, so logically equal expressions
// produced along different rewrite paths compare bit-for-bit equal.
package catalog

import (
	"fmt"
	"math/rand"
	"sort"

	"prairie/internal/core"
)

// Attribute describes one attribute of a class.
type Attribute struct {
	Name string
	// Distinct is the number of distinct values (a power of two).
	Distinct float64
	// Ref names the class this attribute references, for object-oriented
	// pointer attributes traversed by MAT ("" for plain attributes).
	Ref string
	// SetValued marks a set-valued attribute, flattened by UNNEST.
	SetValued bool
	// SetSize is the average set size for set-valued attributes.
	SetSize float64
}

// Class describes a stored file: a base relation or a class.
type Class struct {
	Name string
	// Card is the number of tuples (a power of two).
	Card float64
	// TupleSize is the size of one tuple in bytes.
	TupleSize float64
	Attrs     []Attribute
	// Indexes lists the indexed attribute names. An index provides the
	// tuples ordered by that attribute and supports equality lookup.
	Indexes []string
}

// Attr returns the named attribute.
func (c *Class) Attr(name string) (*Attribute, bool) {
	for i := range c.Attrs {
		if c.Attrs[i].Name == name {
			return &c.Attrs[i], true
		}
	}
	return nil, false
}

// HasIndex reports whether attribute name is indexed.
func (c *Class) HasIndex(name string) bool {
	for _, ix := range c.Indexes {
		if ix == name {
			return true
		}
	}
	return false
}

// AttrSet returns the class's attributes as a core attribute list.
func (c *Class) AttrSet() core.Attrs {
	out := make(core.Attrs, len(c.Attrs))
	for i, a := range c.Attrs {
		out[i] = core.Attr{Rel: c.Name, Name: a.Name}
	}
	return out
}

// IndexSet returns the indexed attributes as a core attribute list.
func (c *Class) IndexSet() core.Attrs {
	out := make(core.Attrs, 0, len(c.Indexes))
	for _, name := range c.Indexes {
		out = append(out, core.Attr{Rel: c.Name, Name: name})
	}
	return out
}

// Catalog is a registry of classes.
type Catalog struct {
	classes map[string]*Class
}

// New returns an empty catalog.
func New() *Catalog { return &Catalog{classes: make(map[string]*Class)} }

// Add registers a class, replacing any previous definition.
func (c *Catalog) Add(cl *Class) *Class { c.classes[cl.Name] = cl; return cl }

// Class returns the named class.
func (c *Catalog) Class(name string) (*Class, bool) {
	cl, ok := c.classes[name]
	return cl, ok
}

// MustClass returns the named class, panicking if absent.
func (c *Catalog) MustClass(name string) *Class {
	cl, ok := c.classes[name]
	if !ok {
		panic("catalog: unknown class " + name)
	}
	return cl
}

// Names returns all class names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.classes))
	for n := range c.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of classes.
func (c *Catalog) Len() int { return len(c.classes) }

// Distinct returns the distinct-value count of an attribute, defaulting
// to a small power of two for unknown attributes.
func (c *Catalog) Distinct(a core.Attr) float64 {
	if cl, ok := c.classes[a.Rel]; ok {
		if at, ok := cl.Attr(a.Name); ok && at.Distinct > 0 {
			return at.Distinct
		}
	}
	return 16
}

// Selectivity estimates the fraction of tuples satisfying a predicate
// (System R-style selectivity factors, with power-of-two values so that
// cardinality products stay exact):
//
//	attr = const   1/distinct(attr)
//	attr = attr    1/max(distinct(left), distinct(right))
//	attr < const   1/4 (and the other inequalities alike)
//	attr <> x      1/2
//	AND            product of factors
//	OR             the largest factor (optimistic upper bound)
//	NOT p          1/2
//	TRUE           1
func (c *Catalog) Selectivity(p *core.Pred) float64 {
	if p.IsTrue() {
		return 1
	}
	switch p.Op {
	case core.PredAnd:
		s := 1.0
		for _, k := range p.Kids {
			s *= c.Selectivity(k)
		}
		return s
	case core.PredOr:
		s := 0.0
		for _, k := range p.Kids {
			if f := c.Selectivity(k); f > s {
				s = f
			}
		}
		return s
	case core.PredNot:
		return 0.5
	case core.PredEq:
		if p.AttrCmp {
			dl, dr := c.Distinct(p.Left), c.Distinct(p.Right)
			if dr > dl {
				dl = dr
			}
			return 1 / dl
		}
		return 1 / c.Distinct(p.Left)
	case core.PredNe:
		return 0.5
	default: // inequalities
		return 0.25
	}
}

// JoinCard estimates the cardinality of a join given input cardinalities
// and the join predicate.
func (c *Catalog) JoinCard(left, right float64, pred *core.Pred) float64 {
	return left * right * c.Selectivity(pred)
}

// SelectCard estimates the cardinality after applying a selection.
func (c *Catalog) SelectCard(card float64, pred *core.Pred) float64 {
	return card * c.Selectivity(pred)
}

// ---------------------------------------------------------------------------
// Synthetic catalogs (Section 4.3 protocol)

// GenOptions configures synthetic catalog generation.
type GenOptions struct {
	// NumClasses is the number of base classes C1..Cn.
	NumClasses int
	// Seed drives the pseudo-random cardinality choice; each of the
	// paper's "5 query instances with varied cardinalities" uses a
	// different seed.
	Seed int64
	// Indexed adds one index per class. Per the paper's protocol, the
	// indexed attribute is the one referenced by the selection predicate
	// (attribute "b" of each class, see package qgen).
	Indexed bool
	// MinCardExp/MaxCardExp bound the cardinality exponent: cardinality
	// is 2^e with e uniform in [MinCardExp, MaxCardExp].
	MinCardExp, MaxCardExp int
	// Refs links each class to the next by a pointer attribute "ref"
	// (for MAT) and gives each class a set-valued attribute "tags"
	// (for UNNEST).
	Refs bool
}

// DefaultGen returns the generation options used by the experiments.
func DefaultGen(n int, seed int64, indexed bool) GenOptions {
	return GenOptions{
		NumClasses: n,
		Seed:       seed,
		Indexed:    indexed,
		MinCardExp: 6,
		MaxCardExp: 12,
		Refs:       true,
	}
}

// ClassName returns the canonical synthetic class name C<i> (1-based).
func ClassName(i int) string { return fmt.Sprintf("C%d", i) }

// SubClassName returns the companion sub-object class name S<i> that
// C<i>'s ref attribute points to.
func SubClassName(i int) string { return fmt.Sprintf("S%d", i) }

// Generate builds a synthetic catalog of n classes C1..Cn. Every class
// has attributes a (join attribute), b (selection attribute), c (payload);
// with Refs, also ref (pointer to the next class, wrapped around) and
// tags (set-valued). All statistics are powers of two.
func Generate(opts GenOptions) *Catalog {
	rng := rand.New(rand.NewSource(opts.Seed))
	cat := New()
	for i := 1; i <= opts.NumClasses; i++ {
		exp := opts.MinCardExp
		if opts.MaxCardExp > opts.MinCardExp {
			exp += rng.Intn(opts.MaxCardExp - opts.MinCardExp + 1)
		}
		card := float64(int64(1) << uint(exp))
		cl := &Class{
			Name:      ClassName(i),
			Card:      card,
			TupleSize: 64,
			Attrs: []Attribute{
				// id is the object identity (the row ordinal in the
				// stored file); ref attributes hold ids of the target
				// class, which is what MAT dereferences.
				{Name: "id", Distinct: card},
				{Name: "a", Distinct: pow2AtMost(card / 2)},
				{Name: "b", Distinct: pow2AtMost(card / 4)},
				{Name: "c", Distinct: pow2AtMost(card)},
			},
		}
		if opts.Refs {
			// Each class points to its own companion sub-object class
			// (the complex attribute MAT materializes, §4.3's E2/E4);
			// companions do not participate in joins, so materialized
			// schemas never duplicate join columns.
			sub := SubClassName(i)
			cl.Attrs = append(cl.Attrs,
				Attribute{Name: "ref", Distinct: pow2AtMost(card), Ref: sub},
				Attribute{Name: "tags", Distinct: pow2AtMost(card), SetValued: true, SetSize: 4},
			)
			subCard := pow2AtMost(card)
			cat.Add(&Class{
				Name: sub, Card: subCard, TupleSize: 32,
				Attrs: []Attribute{
					{Name: "id", Distinct: subCard},
					{Name: "x", Distinct: pow2AtMost(subCard / 2)},
					{Name: "y", Distinct: pow2AtMost(subCard / 4)},
				},
			})
		}
		if opts.Indexed {
			cl.Indexes = []string{"b"}
		}
		cat.Add(cl)
	}
	return cat
}

// pow2AtMost returns the largest power of two not exceeding v (at least 2).
func pow2AtMost(v float64) float64 {
	p := 2.0
	for p*2 <= v {
		p *= 2
	}
	return p
}
