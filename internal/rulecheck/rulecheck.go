package rulecheck

import (
	"encoding/json"
	"fmt"

	"prairie/internal/core"
	"prairie/internal/data"
	"prairie/internal/exec"
	"prairie/internal/volcano"
)

// Options tunes a verification run. The zero value is a full run with
// the defaults below.
type Options struct {
	// Rows caps generated rows per table (default 16). Verification
	// catalogs are generated small (card 16..32) so joins and
	// selections produce non-empty results the oracle can distinguish.
	Rows int
	// DataSeeds are the database instances each exercised site is
	// executed over (default 101, 202).
	DataSeeds []int64
	// MaxSites caps the exercised application sites checked per rule
	// (default 8); sites are visited smallest-tree-first.
	MaxSites int
	// Waivers documents rules that are accepted without a verified
	// verdict (rule name -> reason). A waived rule still reports its
	// factual status; Report.Ok treats it as acceptable.
	Waivers map[string]string
}

func (o Options) withDefaults() Options {
	if o.Rows == 0 {
		o.Rows = 16
	}
	if len(o.DataSeeds) == 0 {
		o.DataSeeds = []int64{101, 202}
	}
	if o.MaxSites == 0 {
		o.MaxSites = 8
	}
	return o
}

// Verdict statuses.
const (
	StatusVerified       = "verified"
	StatusUnexercised    = "unexercised"
	StatusCounterexample = "counterexample"
)

// Verdict is the per-rule outcome of a verification run.
type Verdict struct {
	Rule   string `json:"rule"`
	Origin string `json:"origin,omitempty"`
	Status string `json:"status"`
	// Sites counts application sites where the rule's condition held;
	// Checks counts executed differential comparisons.
	Sites  int `json:"sites"`
	Checks int `json:"checks"`
	// Waiver carries the documented reason when the rule is waived.
	Waiver  string          `json:"waiver,omitempty"`
	Counter *Counterexample `json:"counterexample,omitempty"`
}

// Counterexample is a minimized repro of a semantics-changing rewrite:
// the query, the rewritten query, the database instance (generation seed
// and per-table row cap), and the differing result bags.
type Counterexample struct {
	Query     string `json:"query"`
	Rewritten string `json:"rewritten"`
	DataSeed  int64  `json:"data_seed"`
	Rows      int    `json:"rows"`
	// OnlyOriginal/OnlyRewritten list canonical tuples present in one
	// result but not the other (capped; TotalDiff is the full count).
	OnlyOriginal  []string `json:"only_original,omitempty"`
	OnlyRewritten []string `json:"only_rewritten,omitempty"`
	TotalDiff     int      `json:"total_diff,omitempty"`
	// Err is set when the rewritten tree failed to execute at all.
	Err string `json:"error,omitempty"`
}

// Report is the verdict table for one world.
type Report struct {
	World    string    `json:"world"`
	Rules    int       `json:"rules"`
	Pool     int       `json:"pool"`
	Verdicts []Verdict `json:"verdicts"`
}

// Counts returns the number of verified / unexercised / counterexample
// verdicts (waived rules count under their factual status).
func (r *Report) Counts() (verified, unexercised, counterexamples int) {
	for _, v := range r.Verdicts {
		switch v.Status {
		case StatusVerified:
			verified++
		case StatusUnexercised:
			unexercised++
		case StatusCounterexample:
			counterexamples++
		}
	}
	return
}

// Ok reports whether every rule is verified or explicitly waived.
func (r *Report) Ok() bool {
	for _, v := range r.Verdicts {
		if v.Status != StatusVerified && v.Waiver == "" {
			return false
		}
	}
	return true
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// verifier carries one run's derived pool and database cache.
type verifier struct {
	w    *World
	opts Options
	pool []*core.Expr
	dbs  map[dbKey]*data.DB
}

type dbKey struct {
	seed int64
	rows int
}

func newVerifier(w *World, opts Options) *verifier {
	return &verifier{
		w:    w,
		opts: opts.withDefaults(),
		pool: derivePool(w, poolLimits{}),
		dbs:  map[dbKey]*data.DB{},
	}
}

func (v *verifier) db(seed int64, rows int) *data.DB {
	k := dbKey{seed, rows}
	if d, ok := v.dbs[k]; ok {
		return d
	}
	d := data.Populate(v.w.Cat, seed, rows)
	v.dbs[k] = d
	return d
}

func (v *verifier) eval(tree *core.Expr, seed int64, rows int) (*exec.Result, error) {
	n := &exec.Naive{DB: v.db(seed, rows), P: v.w.Props}
	return n.Eval(tree)
}

// checkSite differentially executes tree against rewritten over every
// data seed, returning a minimized counterexample on divergence (nil
// when the bags agree everywhere) and how many comparisons ran.
func (v *verifier) checkSite(tree, rewritten *core.Expr) (*Counterexample, int) {
	checks := 0
	for _, seed := range v.opts.DataSeeds {
		orig, err := v.eval(tree, seed, v.opts.Rows)
		if err != nil {
			// The original tree must execute; a pool tree that cannot
			// is a generation bug, not a rule bug — skip it.
			continue
		}
		checks++
		rw, err := v.eval(rewritten, seed, v.opts.Rows)
		if err != nil || !exec.SameBag(orig, rw) {
			return v.minimize(tree, rewritten, seed), checks
		}
	}
	return nil, checks
}

// minimize shrinks a failing instance: it walks the row-cap ladder from
// the smallest database up and reports the first divergence (the
// original failure at Options.Rows guarantees the ladder ends in one).
func (v *verifier) minimize(tree, rewritten *core.Expr, seed int64) *Counterexample {
	const diffCap = 6
	ladder := []int{2, 3, 4, 6, 8, 12}
	ladder = append(ladder, v.opts.Rows)
	for _, rows := range ladder {
		if rows > v.opts.Rows {
			continue
		}
		orig, err := v.eval(tree, seed, rows)
		if err != nil {
			continue
		}
		ce := &Counterexample{
			Query:     tree.String(),
			Rewritten: rewritten.String(),
			DataSeed:  seed,
			Rows:      rows,
		}
		rw, err := v.eval(rewritten, seed, rows)
		if err != nil {
			ce.Err = err.Error()
			return ce
		}
		if exec.SameBag(orig, rw) {
			continue
		}
		onlyA, onlyB := exec.DiffBags(orig, rw)
		ce.TotalDiff = len(onlyA) + len(onlyB)
		ce.OnlyOriginal = capStrings(onlyA, diffCap)
		ce.OnlyRewritten = capStrings(onlyB, diffCap)
		return ce
	}
	return &Counterexample{
		Query:     tree.String(),
		Rewritten: rewritten.String(),
		DataSeed:  seed,
		Rows:      v.opts.Rows,
		Err:       "divergence did not reproduce during minimization",
	}
}

func capStrings(s []string, n int) []string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// checkRule verifies one trans_rule over the pool: every site where the
// rule fires is executed differentially until the site budget is spent
// or a counterexample is found.
func (v *verifier) checkRule(r *volcano.TransRule) (sites, checks int, counter *Counterexample) {
	for _, tree := range v.pool {
		for _, m := range v.w.RS.TreeMatches(r, tree) {
			rewritten, ok := v.w.RS.ApplyAt(r, tree, m)
			if !ok {
				continue
			}
			sites++
			ce, n := v.checkSite(tree, rewritten)
			checks += n
			if ce != nil {
				return sites, checks, ce
			}
			if sites >= v.opts.MaxSites {
				return sites, checks, nil
			}
		}
	}
	return sites, checks, nil
}

// Verify runs the per-rule differential verifier over every trans_rule
// of the world's rule set and returns the verdict table.
func Verify(w *World, opts Options) *Report {
	v := newVerifier(w, opts)
	rep := &Report{World: w.Name, Rules: len(w.RS.Trans), Pool: len(v.pool)}
	for _, r := range w.RS.Trans {
		sites, checks, ce := v.checkRule(r)
		vd := Verdict{
			Rule:   r.Name,
			Origin: r.Origin,
			Sites:  sites,
			Checks: checks,
		}
		switch {
		case ce != nil:
			vd.Status = StatusCounterexample
			vd.Counter = ce
		case sites == 0 || checks == 0:
			vd.Status = StatusUnexercised
		default:
			vd.Status = StatusVerified
		}
		if reason, ok := v.opts.Waivers[r.Name]; ok {
			vd.Waiver = reason
		}
		rep.Verdicts = append(rep.Verdicts, vd)
	}
	return rep
}

// VerifyAll verifies every world and returns the reports in order.
func VerifyAll(worlds []*World, opts Options) []*Report {
	out := make([]*Report, len(worlds))
	for i, w := range worlds {
		out[i] = Verify(w, opts)
	}
	return out
}

// Summary renders a one-line result per rule, for the CLI surfaces.
func (r *Report) Summary() string {
	s := fmt.Sprintf("world %s: %d rules over %d generated trees\n", r.World, r.Rules, r.Pool)
	for _, v := range r.Verdicts {
		s += fmt.Sprintf("  %-24s %-15s sites=%d checks=%d", v.Rule, v.Status, v.Sites, v.Checks)
		if v.Waiver != "" {
			s += " (waived: " + v.Waiver + ")"
		}
		if v.Counter != nil {
			s += "\n    counterexample: " + v.Counter.Query + "  =>  " + v.Counter.Rewritten
		}
		s += "\n"
	}
	return s
}
