package rulecheck

import (
	"os"
	"strings"
	"testing"
)

func dslSource(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("../../examples/dslrules/rules.prairie")
	if err != nil {
		t.Fatalf("reading example DSL spec: %v", err)
	}
	return string(src)
}

func shippedWorlds(t *testing.T) []*World {
	t.Helper()
	worlds, err := ShippedWorlds(7, dslSource(t))
	if err != nil {
		t.Fatalf("building worlds: %v", err)
	}
	return worlds
}

// TestShippedRuleSetsVerified is the rulecheck guard: every trans_rule of
// every shipped rule set must come back verified (or carry an explicit
// waiver) from the per-rule differential verifier.
func TestShippedRuleSetsVerified(t *testing.T) {
	for _, w := range shippedWorlds(t) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			rep := Verify(w, Options{})
			if !rep.Ok() {
				t.Errorf("world %s not fully verified:\n%s", w.Name, rep.Summary())
			}
			verified, unexercised, counterexamples := rep.Counts()
			t.Logf("world %s: %d verified, %d unexercised, %d counterexamples (pool %d)",
				w.Name, verified, unexercised, counterexamples, rep.Pool)
		})
	}
}

// TestVerifyReportShape checks the JSON verdict table renders and carries
// the fields downstream tooling reads.
func TestVerifyReportShape(t *testing.T) {
	worlds := shippedWorlds(t)
	rep := Verify(worlds[0], Options{})
	js, err := rep.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	for _, want := range []string{`"world"`, `"rule"`, `"status"`, `"sites"`, `"checks"`} {
		if !strings.Contains(js, want) {
			t.Errorf("verdict JSON missing %s:\n%s", want, js)
		}
	}
	if len(rep.Verdicts) != len(worlds[0].RS.Trans) {
		t.Errorf("got %d verdicts for %d rules", len(rep.Verdicts), len(worlds[0].RS.Trans))
	}
}

// TestOriginPropagates checks DSL-compiled rules carry their source
// position into verdicts (hand-coded rules have empty origins).
func TestOriginPropagates(t *testing.T) {
	worlds := shippedWorlds(t)
	for _, w := range worlds {
		if w.Name != "dsl" {
			continue
		}
		rep := Verify(w, Options{MaxSites: 1, DataSeeds: []int64{101}})
		for _, v := range rep.Verdicts {
			if !strings.HasPrefix(v.Origin, "spec:") {
				t.Errorf("rule %s: origin %q, want spec:<pos>", v.Rule, v.Origin)
			}
		}
		return
	}
	t.Fatal("no dsl world built")
}

// TestMutationKillRate asserts the verifier catches at least 95% of
// seeded rule corruptions across all shipped worlds, and that every kill
// carries a minimized counterexample.
func TestMutationKillRate(t *testing.T) {
	var mutants, killed, dropped int
	for _, w := range shippedWorlds(t) {
		rep := MutationTest(w, Options{})
		mutants += rep.Mutants
		killed += rep.Killed
		dropped += rep.Dropped
		for _, r := range rep.Results {
			switch r.Status {
			case MutantKilled:
				if r.Counter == nil {
					t.Errorf("%s: killed mutant %s/%s has no counterexample", w.Name, r.Rule, r.Kind)
				} else if r.Counter.Err == "" && len(r.Counter.OnlyOriginal)+len(r.Counter.OnlyRewritten) == 0 {
					t.Errorf("%s: counterexample for %s/%s shows no differing tuples and no error", w.Name, r.Rule, r.Kind)
				}
			case MutantSurvived:
				t.Logf("%s: SURVIVED %s %s (%s), %d sites", w.Name, r.Rule, r.Kind, r.Detail, r.Sites)
			}
		}
		t.Logf("world %s: %d mutants, %d killed, %d dropped (rate %.2f)",
			w.Name, rep.Mutants, rep.Killed, rep.Dropped, rep.KillRate)
	}
	live := mutants - dropped
	if live == 0 {
		t.Fatal("no live mutants generated")
	}
	rate := float64(killed) / float64(live)
	if rate < 0.95 {
		t.Errorf("mutation kill rate %.2f (%d/%d), want >= 0.95", rate, killed, live)
	}
}
