package rulecheck

import (
	"fmt"

	"prairie/internal/core"
	"prairie/internal/volcano"
)

// Mutation testing: seeded corruptions of rule actions, used to measure
// whether the verifier would actually catch a wrong rule. Each mutant is
// one rule with one deliberate defect; the verifier runs against the
// mutant exactly as it would against the real rule, and a mutant it
// fails to distinguish from the original is a survived mutant. The kill
// rate over all non-degenerate mutants is the test of the test.

// Mutation kinds.
const (
	MutSwapInputs = "swap_inputs"
	MutDropPred   = "drop_pred"
	MutWrongOp    = "wrong_op"
)

// Mutant is one corrupted copy of a trans_rule.
type Mutant struct {
	Rule string `json:"rule"`
	Kind string `json:"kind"`
	// Detail says what was corrupted (which inputs, which node).
	Detail string `json:"detail"`
	R      *volcano.TransRule `json:"-"`
}

// Mutant statuses.
const (
	MutantKilled   = "killed"
	MutantSurvived = "survived"
	MutantDropped  = "dropped"
)

// MutantResult is the verifier's verdict on one mutant.
type MutantResult struct {
	Mutant
	// Status: killed (counterexample found), survived (exercised but
	// undetected), or dropped (the corruption never changed a rewrite —
	// a semantic no-op, excluded from the kill rate).
	Status  string          `json:"status"`
	Sites   int             `json:"sites"`
	Counter *Counterexample `json:"counterexample,omitempty"`
}

// MutationReport aggregates a mutation run over one world.
type MutationReport struct {
	World    string         `json:"world"`
	Mutants  int            `json:"mutants"`
	Killed   int            `json:"killed"`
	Survived int            `json:"survived"`
	Dropped  int            `json:"dropped"`
	KillRate float64        `json:"kill_rate"`
	Results  []MutantResult `json:"results"`
}

// identity-capable operator families: replacing an operator with another
// from its own family can be a semantic no-op (JOIN and JOPR both join;
// SELECT, RET, and SORT all degenerate to the identity when their
// predicate or order parameter is trivial), so wrong_op never picks a
// replacement from the mutated node's family.
var opFamilies = [][]string{
	{"JOIN", "JOPR"},
	{"SELECT", "RET", "SORT"},
}

// predConsumers are the operators whose semantics read a predicate from
// their descriptor (join or selection); drop_pred only targets these.
var predConsumers = map[string]bool{
	"JOIN": true, "JOPR": true, "SELECT": true, "RET": true,
}

func sameFamily(a, b string) bool {
	for _, fam := range opFamilies {
		ina, inb := false, false
		for _, n := range fam {
			ina = ina || n == a
			inb = inb || n == b
		}
		if ina && inb {
			return true
		}
	}
	return false
}

// patVarLeaves returns the variable leaves of a pattern in pre-order.
func patVarLeaves(p *core.PatNode) []*core.PatNode {
	var out []*core.PatNode
	var walk func(*core.PatNode)
	walk = func(n *core.PatNode) {
		if n.IsVar() {
			out = append(out, n)
			return
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(p)
	return out
}

// patInterior returns the interior (operator) nodes of a pattern in
// pre-order.
func patInterior(p *core.PatNode) []*core.PatNode {
	var out []*core.PatNode
	var walk func(*core.PatNode)
	walk = func(n *core.PatNode) {
		if n.IsVar() {
			return
		}
		out = append(out, n)
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(p)
	return out
}

// mutantsOf generates the seeded corruptions of one rule. The LHS is
// never touched, so a mutant matches exactly the sites the real rule
// matches and differs only in what it builds there.
func mutantsOf(rs *volcano.RuleSet, r *volcano.TransRule) []Mutant {
	var out []Mutant

	// swap_inputs: make the rewrite feed one input where another
	// belongs, by aliasing the second distinct RHS variable to the
	// first (JOIN(?1, ?2) becomes JOIN(?1, ?1)).
	leaves := patVarLeaves(r.RHS)
	for i := 1; i < len(leaves); i++ {
		if leaves[i].Var == leaves[0].Var {
			continue
		}
		rhs := r.RHS.Clone()
		ml := patVarLeaves(rhs)
		detail := fmt.Sprintf("?%d := ?%d", ml[i].Var, ml[0].Var)
		ml[i].Var = ml[0].Var
		mr := *r
		mr.RHS = rhs
		out = append(out, Mutant{Rule: r.Name, Kind: MutSwapInputs, Detail: detail, R: &mr})
		break // one aliasing per rule is enough
	}

	// drop_pred: after the real action runs, blank every predicate the
	// action set on a new RHS node (the classic "forgot to carry the
	// predicate over" bug). Only nodes whose operator evaluates a
	// predicate count — blanking a pred nothing reads corrupts nothing.
	var rhsDescs []string
	for _, n := range patInterior(r.RHS) {
		if n.Desc != "" && predConsumers[n.Op.Name] {
			rhsDescs = append(rhsDescs, n.Desc)
		}
	}
	ps := rs.Algebra.Props
	var predProps []core.PropID
	for i := 0; i < ps.Len(); i++ {
		if ps.At(core.PropID(i)).Kind == core.KindPred {
			predProps = append(predProps, core.PropID(i))
		}
	}
	if len(rhsDescs) > 0 && len(predProps) > 0 {
		orig := r.Appl
		mr := *r
		mr.Appl = func(b *volcano.TBinding) {
			if orig != nil {
				orig(b)
			}
			for _, name := range rhsDescs {
				d := b.D(name)
				for _, p := range predProps {
					if d.Has(p) {
						d.Set(p, core.TruePred)
					}
				}
			}
		}
		out = append(out, Mutant{Rule: r.Name, Kind: MutDropPred,
			Detail: fmt.Sprintf("preds of %v := TRUE", rhsDescs), R: &mr})
	}

	// wrong_op: rebuild one RHS node with a different operator of the
	// same arity (skipping the node's identity family, where the swap
	// could be a semantic no-op rather than a bug).
	interior := patInterior(r.RHS)
	wrongOps := 0
	for idx, n := range interior {
		var repl *core.Operation
		for _, cand := range rs.Algebra.Operators() {
			if cand == n.Op || cand.Arity != n.Op.Arity || sameFamily(cand.Name, n.Op.Name) {
				continue
			}
			repl = cand
			break
		}
		if repl == nil {
			continue
		}
		rhs := r.RHS.Clone()
		mn := patInterior(rhs)[idx]
		detail := fmt.Sprintf("%s := %s", mn.Op.Name, repl.Name)
		mn.Op = repl
		mr := *r
		mr.RHS = rhs
		out = append(out, Mutant{Rule: r.Name, Kind: MutWrongOp, Detail: detail, R: &mr})
		if wrongOps++; wrongOps >= 2 {
			break
		}
	}
	return out
}

// runMutant verifies one mutant: every site the rule matches is rewritten
// by both the pristine rule and the mutant; sites where the two rewrites
// are structurally identical are semantic no-ops of the corruption and
// are skipped. A differential failure of the mutant's rewrite against
// the original tree kills the mutant.
func (v *verifier) runMutant(pristine *volcano.TransRule, mu Mutant) MutantResult {
	res := MutantResult{Mutant: mu}
	sites, exercised := 0, 0
	for _, tree := range v.pool {
		mp := v.w.RS.TreeMatches(pristine, tree)
		mm := v.w.RS.TreeMatches(mu.R, tree)
		if len(mp) != len(mm) {
			continue // same LHS, so this cannot happen; skip defensively
		}
		for i := range mm {
			prw, okP := v.w.RS.ApplyAt(pristine, tree, mp[i])
			mrw, okM := v.w.RS.ApplyAt(mu.R, tree, mm[i])
			if !okP || !okM {
				continue
			}
			sites++
			if mrw.Format() == prw.Format() {
				continue // corruption changed nothing here
			}
			exercised++
			if ce, _ := v.checkSite(tree, mrw); ce != nil {
				res.Status = MutantKilled
				res.Sites = sites
				res.Counter = ce
				return res
			}
			if sites >= v.opts.MaxSites {
				res.Sites = sites
				res.Status = MutantSurvived
				return res
			}
		}
	}
	res.Sites = sites
	if exercised == 0 {
		res.Status = MutantDropped
	} else {
		res.Status = MutantSurvived
	}
	return res
}

// MutationTest corrupts every trans_rule of the world in seeded,
// deterministic ways and reports how many corruptions the verifier
// kills. Degenerate mutants (corruptions that never change a rewrite)
// are dropped from the rate's denominator.
func MutationTest(w *World, opts Options) *MutationReport {
	v := newVerifier(w, opts)
	rep := &MutationReport{World: w.Name}
	for _, r := range w.RS.Trans {
		for _, mu := range mutantsOf(w.RS, r) {
			res := v.runMutant(r, mu)
			rep.Results = append(rep.Results, res)
			rep.Mutants++
			switch res.Status {
			case MutantKilled:
				rep.Killed++
			case MutantSurvived:
				rep.Survived++
			case MutantDropped:
				rep.Dropped++
			}
		}
	}
	if live := rep.Mutants - rep.Dropped; live > 0 {
		rep.KillRate = float64(rep.Killed) / float64(live)
	}
	return rep
}
