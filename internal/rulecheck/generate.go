package rulecheck

import (
	"sort"

	"prairie/internal/core"
)

// Pattern-directed generation, second stage: the seed shapes cover every
// rule whose LHS an initialized query can contain, but several rules
// only match forms other rules produce (MAT(SELECT(x)) exists only after
// select_push_mat fires; MAT(MAT(x)) only after two mat_pull_join
// firings). The pool closes the seeds under rule application to a
// bounded depth, so each rule is verified against everything the search
// engine could actually feed it.

// poolLimits bounds derivation: levels beyond the seeds, new trees kept
// per level, and total pool size. The defaults close the shipped rule
// sets (every rule exercised) while keeping oracle runs cheap.
type poolLimits struct {
	Depth    int
	PerLevel int
	Total    int
}

func (l poolLimits) withDefaults() poolLimits {
	if l.Depth == 0 {
		l.Depth = 2
	}
	if l.PerLevel == 0 {
		l.PerLevel = 200
	}
	if l.Total == 0 {
		l.Total = 500
	}
	return l
}

// derivePool returns the seeds closed under trans-rule application up to
// the limits, deduplicated structurally (operators, files, and
// descriptor contents — String() alone would merge trees that differ
// only in predicates) and sorted smallest-first, so verification finds
// minimal counterexamples before larger ones.
func derivePool(w *World, limits poolLimits) []*core.Expr {
	limits = limits.withDefaults()
	seen := map[string]bool{}
	var pool []*core.Expr
	add := func(t *core.Expr) bool {
		if len(pool) >= limits.Total {
			return false
		}
		key := t.Format()
		if seen[key] {
			return false
		}
		seen[key] = true
		pool = append(pool, t)
		return true
	}
	for _, s := range w.Seeds {
		add(s)
	}
	level := append([]*core.Expr{}, pool...)
	for d := 0; d < limits.Depth && len(level) > 0; d++ {
		var next []*core.Expr
		for _, t := range level {
			for _, r := range w.RS.Trans {
				for _, rw := range w.RS.ApplyRule(r, t) {
					if len(next) >= limits.PerLevel {
						break
					}
					if add(rw) {
						next = append(next, rw)
					}
				}
			}
		}
		level = next
	}
	sort.SliceStable(pool, func(i, j int) bool { return pool[i].Size() < pool[j].Size() })
	return pool
}
