// Package rulecheck is a per-rule differential verifier: for every
// trans_rule of a Volcano rule set it generates logical trees that match
// the rule's pattern, applies the single rule in isolation through the
// binding/action machinery (volcano's tree-level application hook), and
// executes both the original and the rewritten tree with the naive
// oracle over generated catalogs and data, asserting bag-equality. It
// promotes the repo's whole-plan differential testing to a statement
// about each rule on its own — the correctness filter the ROADMAP's
// rule-discovery mode needs.
//
// A mutation-testing mode (mutate.go) corrupts rule actions in seeded,
// deterministic ways and asserts the verifier catches the corruptions:
// the kill rate is the test of the test.
package rulecheck

import (
	"fmt"
	"math"

	"prairie/internal/catalog"
	"prairie/internal/core"
	"prairie/internal/exec"
	"prairie/internal/oodb"
	"prairie/internal/p2v"
	"prairie/internal/prairielang"
	"prairie/internal/qgen"
	"prairie/internal/relopt"
	"prairie/internal/volcano"
)

// World is one rule set under verification: the compiled rules, the
// catalog its queries range over, the exec-property mapping the oracle
// needs, and the seed trees pattern-directed generation starts from.
type World struct {
	Name  string
	RS    *volcano.RuleSet
	Cat   *catalog.Catalog
	Props exec.Props
	Seeds []*core.Expr
}

// worldN is the class count verification catalogs use: three classes
// reach every pattern depth in the shipped rule sets (the deepest LHS
// nests two operators) while keeping oracle joins cheap.
const worldN = 3

// verifyCatalog generates the small catalog verification runs over.
// The benchmark defaults (cards 2^6..2^12) make Distinct counts so
// large that at ~16 populated rows selections and joins come back
// empty, and empty-vs-empty passes vacuously; cards 16..32 keep
// Distinct(a) at 8..16 and Distinct(b) at 4..8, so every operator
// produces rows the oracle can actually distinguish.
func verifyCatalog(seed int64, indexed bool) *catalog.Catalog {
	return catalog.Generate(catalog.GenOptions{
		NumClasses: worldN,
		Seed:       seed,
		Indexed:    indexed,
		MinCardExp: 4,
		MaxCardExp: 5,
		Refs:       true,
	})
}

// OODBVolcanoWorld builds the hand-coded OODB optimizer world.
func OODBVolcanoWorld(seed int64) (*World, error) {
	cat := verifyCatalog(seed, false)
	o := oodb.New(cat)
	w := &World{
		Name: "oodb/volcano",
		RS:   o.VolcanoRules(),
		Cat:  cat,
		Props: exec.Props{
			Ord: o.Ord, JP: o.JP, SP: o.SP, PA: o.PA, MA: o.MA, UA: o.UA,
		},
	}
	if err := addOODBSeeds(w, o); err != nil {
		return nil, err
	}
	return w, nil
}

// OODBPrairieWorld builds the Prairie-specified OODB optimizer world
// (compiled by prairielang, translated by P2V).
func OODBPrairieWorld(seed int64) (*World, error) {
	cat := verifyCatalog(seed, false)
	o := oodb.New(cat)
	prs, err := o.PrairieRules()
	if err != nil {
		return nil, err
	}
	vrs, _, err := p2v.Translate(prs)
	if err != nil {
		return nil, err
	}
	w := &World{
		Name: "oodb/prairie",
		RS:   vrs,
		Cat:  cat,
		Props: exec.Props{
			Ord: o.Ord, JP: o.JP, SP: o.SP, PA: o.PA, MA: o.MA, UA: o.UA,
		},
	}
	if err := addOODBSeeds(w, o); err != nil {
		return nil, err
	}
	return w, nil
}

// addOODBSeeds fills the world with the paper's E1–E4 families at widths
// 1..3 plus the pattern-directed shapes the families never produce: the
// pointer-equality join (join_to_mat) and the UNNEST shapes
// (unnest_mat_commute).
func addOODBSeeds(w *World, o *oodb.Opt) error {
	add := func(tree *core.Expr, err error) error {
		if err != nil {
			return err
		}
		w.Seeds = append(w.Seeds, tree)
		return nil
	}
	for _, e := range []qgen.ExprKind{qgen.E1, qgen.E2, qgen.E3, qgen.E4} {
		for n := 1; n <= worldN; n++ {
			if n == 1 && !e.HasSelect() && !e.HasMat() {
				continue // E1 n=1 is a bare RET; nothing matches it
			}
			if err := add(qgen.Build(o, e, n)); err != nil {
				return err
			}
		}
	}
	if err := add(qgen.BuildGraph(o, qgen.E1, worldN, qgen.Star)); err != nil {
		return err
	}
	if err := add(qgen.BuildRefJoin(o, 1)); err != nil {
		return err
	}
	if err := add(qgen.BuildUnnest(o, 1, true)); err != nil {
		return err
	}
	return add(qgen.BuildUnnest(o, 1, false))
}

// RelationalWorld builds the paper's running-example relational
// optimizer world (Prairie-specified, P2V-translated).
func RelationalWorld(seed int64) (*World, error) {
	cat := verifyCatalog(seed, true)
	o := relopt.New(cat)
	vrs, _, err := p2v.Translate(o.PrairieRules())
	if err != nil {
		return nil, err
	}
	w := &World{
		Name: "relational",
		RS:   vrs,
		Cat:  cat,
		Props: exec.Props{
			Ord: o.Ord, JP: o.JP, SP: o.SP,
			PA: core.NoProp, MA: core.NoProp, UA: core.NoProp,
		},
	}
	for n := 2; n <= worldN; n++ {
		for _, sel := range []bool{false, true} {
			names := make([]string, n)
			for i := range names {
				names[i] = catalog.ClassName(i + 1)
			}
			tree, err := o.Build(relopt.QuerySpec{Relations: names, Select: sel})
			if err != nil {
				return nil, err
			}
			w.Seeds = append(w.Seeds, tree)
		}
	}
	return w, nil
}

// DSLHelpers are the helper implementations the examples/dslrules
// specification imports. This is the canonical copy; the server's world
// registry uses the same map.
func DSLHelpers() map[string]prairielang.HelperImpl {
	return map[string]prairielang.HelperImpl{
		"nlogn": func(args []core.Value) (core.Value, error) {
			n := math.Max(float64(args[0].(core.Float)), 1)
			return core.Float(n * math.Log2(n+1)), nil
		},
		"order_within": func(args []core.Value) (core.Value, error) {
			ord := args[0].(core.Order)
			return core.Bool(ord.Within(args[1].(core.Attrs))), nil
		},
	}
}

// DSLWorld compiles a textual Prairie specification into a verification
// world. The synthetic relations R1..Rn carry a single join attribute
// "a", mirroring the server's DSL world, but here backed by a real
// catalog so the oracle can execute against generated rows.
func DSLWorld(src string, helpers map[string]prairielang.HelperImpl) (*World, error) {
	rs, err := prairielang.ParseAndCompile(src, helpers)
	if err != nil {
		return nil, err
	}
	vrs, _, err := p2v.Translate(rs)
	if err != nil {
		return nil, err
	}
	cat := catalog.New()
	for i := 1; i <= worldN; i++ {
		cat.Add(&catalog.Class{
			Name: fmt.Sprintf("R%d", i), Card: 8, TupleSize: 8,
			Attrs: []catalog.Attribute{{Name: "a", Distinct: 4}},
		})
	}
	retOp, okRet := rs.Algebra.Op("RET")
	joinOp, okJoin := rs.Algebra.Op("JOIN")
	if !okRet || !okJoin {
		return nil, fmt.Errorf("rulecheck: DSL verification needs RET and JOIN operators in the specification's algebra")
	}
	ps := rs.Algebra.Props
	nr, okNR := ps.Lookup("num_records")
	at, okAT := ps.Lookup("attributes")
	jp, okJP := ps.Lookup("join_predicate")
	if !okNR || !okAT || !okJP {
		return nil, fmt.Errorf("rulecheck: DSL verification needs num_records, attributes, and join_predicate properties")
	}
	w := &World{
		Name: "dsl",
		RS:   vrs,
		Cat:  cat,
		Props: exec.Props{
			Ord: lookupOrNo(ps, "tuple_order"), JP: jp,
			SP: lookupOrNo(ps, "selection_predicate"),
			PA: core.NoProp, MA: core.NoProp, UA: core.NoProp,
		},
	}
	ret := func(i int) *core.Expr {
		name := fmt.Sprintf("R%d", i)
		cl := cat.MustClass(name)
		d := core.NewDescriptor(ps)
		d.SetFloat(nr, cl.Card)
		d.Set(at, cl.AttrSet())
		leaf := core.NewLeaf(name, d)
		return core.NewNode(retOp, d.Clone(), leaf)
	}
	for n := 2; n <= worldN; n++ {
		cur := ret(1)
		for i := 2; i <= n; i++ {
			r := ret(i)
			jd := core.NewDescriptor(ps)
			jd.SetFloat(nr, math.Max(cur.D.Float(nr), r.D.Float(nr)))
			jd.Set(at, cur.D.AttrList(at).Union(r.D.AttrList(at)))
			jd.Set(jp, core.EqAttr(
				core.A(fmt.Sprintf("R%d", i-1), "a"), core.A(fmt.Sprintf("R%d", i), "a")))
			cur = core.NewNode(joinOp, jd, cur, r)
		}
		w.Seeds = append(w.Seeds, cur)
	}
	return w, nil
}

func lookupOrNo(ps *core.PropertySet, name string) core.PropID {
	if id, ok := ps.Lookup(name); ok {
		return id
	}
	return core.NoProp
}

// ShippedWorlds builds the verification worlds for every shipped rule
// set: both OODB flavors, the relational optimizer, and the DSL example
// (from its embedded source).
func ShippedWorlds(seed int64, dslSrc string) ([]*World, error) {
	ov, err := OODBVolcanoWorld(seed)
	if err != nil {
		return nil, err
	}
	op, err := OODBPrairieWorld(seed)
	if err != nil {
		return nil, err
	}
	rel, err := RelationalWorld(seed)
	if err != nil {
		return nil, err
	}
	worlds := []*World{ov, op, rel}
	if dslSrc != "" {
		dw, err := DSLWorld(dslSrc, DSLHelpers())
		if err != nil {
			return nil, err
		}
		worlds = append(worlds, dw)
	}
	return worlds, nil
}
