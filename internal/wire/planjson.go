package wire

import (
	"fmt"

	"prairie/internal/core"
	"prairie/internal/volcano"
)

// This file is the wire codec for access plans. The core value algebra
// is closed (eight kinds: int, float, bool, string, cost, attrs, order,
// pred), so a plan — algorithms plus descriptors — round-trips through
// JSON exactly: DecodePlan(EncodePlan(p)) rebuilds a tree the exec
// compiler accepts, which is what lets the differential harness execute
// plans on the far side of the service boundary.

// PlanNode is one node of a serialized access plan. Leaves carry File;
// interior nodes carry the algorithm name. Props holds every descriptor
// property that is set, keyed by property name.
type PlanNode struct {
	Op    string               `json:"op,omitempty"`   // algorithm name; "" for a leaf
	File  string               `json:"file,omitempty"` // stored-file name; leaf only
	Props map[string]PropValue `json:"props,omitempty"`
	Kids  []*PlanNode          `json:"kids,omitempty"`
}

// PropValue is a kind-tagged descriptor value.
type PropValue struct {
	Kind string  `json:"kind"`
	Num  float64 `json:"num,omitempty"`  // int, float, cost
	Bool bool    `json:"bool,omitempty"` // bool
	Str  string  `json:"str,omitempty"`  // string
	Attr []Attr  `json:"attrs,omitempty"`
	Ord  *Order  `json:"order,omitempty"`
	Pred *Pred   `json:"pred,omitempty"`
}

// Attr is a (relation, attribute) pair.
type Attr struct {
	Rel  string `json:"rel"`
	Name string `json:"name"`
}

// Order serializes a tuple order.
type Order struct {
	DontCare bool   `json:"dont_care,omitempty"`
	By       []Attr `json:"by,omitempty"`
}

// Pred serializes a predicate tree. Comparison nodes carry Left and
// either Right (join term) or Const (selection term).
type Pred struct {
	Op    string     `json:"op"` // TRUE = AND OR NOT < <= > >= <>
	Left  *Attr      `json:"left,omitempty"`
	Right *Attr      `json:"right,omitempty"`
	Const *PropValue `json:"const,omitempty"`
	Kids  []*Pred    `json:"kids,omitempty"`
}

func attrOf(a core.Attr) Attr { return Attr{Rel: a.Rel, Name: a.Name} }

func attrsOf(as core.Attrs) []Attr {
	out := make([]Attr, len(as))
	for i, a := range as {
		out[i] = attrOf(a)
	}
	return out
}

func coreAttr(a Attr) core.Attr { return core.A(a.Rel, a.Name) }

func coreAttrs(as []Attr) core.Attrs {
	out := make(core.Attrs, len(as))
	for i, a := range as {
		out[i] = coreAttr(a)
	}
	return out
}

func encodeValue(v core.Value) (PropValue, error) {
	switch x := v.(type) {
	case core.Int:
		return PropValue{Kind: "int", Num: float64(x)}, nil
	case core.Float:
		return PropValue{Kind: "float", Num: float64(x)}, nil
	case core.Cost:
		return PropValue{Kind: "cost", Num: float64(x)}, nil
	case core.Bool:
		return PropValue{Kind: "bool", Bool: bool(x)}, nil
	case core.Str:
		return PropValue{Kind: "string", Str: string(x)}, nil
	case core.Attrs:
		return PropValue{Kind: "attrs", Attr: attrsOf(x)}, nil
	case core.Order:
		if x.IsDontCare() {
			return PropValue{Kind: "order", Ord: &Order{DontCare: true}}, nil
		}
		return PropValue{Kind: "order", Ord: &Order{By: attrsOf(x.By)}}, nil
	case *core.Pred:
		p, err := encodePred(x)
		if err != nil {
			return PropValue{}, err
		}
		return PropValue{Kind: "pred", Pred: p}, nil
	}
	return PropValue{}, fmt.Errorf("wire: cannot encode value kind %v", v.Kind())
}

func decodeValue(v PropValue) (core.Value, error) {
	switch v.Kind {
	case "int":
		return core.Int(int64(v.Num)), nil
	case "float":
		return core.Float(v.Num), nil
	case "cost":
		return core.Cost(v.Num), nil
	case "bool":
		return core.Bool(v.Bool), nil
	case "string":
		return core.Str(v.Str), nil
	case "attrs":
		return coreAttrs(v.Attr), nil
	case "order":
		if v.Ord == nil || v.Ord.DontCare {
			return core.DontCareOrder, nil
		}
		return core.OrderBy(coreAttrs(v.Ord.By)...), nil
	case "pred":
		return decodePred(v.Pred)
	}
	return nil, fmt.Errorf("wire: cannot decode value kind %q", v.Kind)
}

func encodePred(p *core.Pred) (*Pred, error) {
	if p.IsTrue() {
		return &Pred{Op: "TRUE"}, nil
	}
	w := &Pred{Op: p.Op.String()}
	switch p.Op {
	case core.PredAnd, core.PredOr, core.PredNot:
		for _, k := range p.Kids {
			wk, err := encodePred(k)
			if err != nil {
				return nil, err
			}
			w.Kids = append(w.Kids, wk)
		}
	default: // comparison
		l := attrOf(p.Left)
		w.Left = &l
		if p.AttrCmp {
			r := attrOf(p.Right)
			w.Right = &r
		} else {
			c, err := encodeValue(p.Const)
			if err != nil {
				return nil, err
			}
			w.Const = &c
		}
	}
	return w, nil
}

var predOps = map[string]core.PredOp{
	"TRUE": core.PredTrue, "=": core.PredEq, "<>": core.PredNe,
	"<": core.PredLt, "<=": core.PredLe, ">": core.PredGt, ">=": core.PredGe,
	"AND": core.PredAnd, "OR": core.PredOr, "NOT": core.PredNot,
}

func decodePred(w *Pred) (*core.Pred, error) {
	if w == nil {
		return core.TruePred, nil
	}
	op, ok := predOps[w.Op]
	if !ok {
		return nil, fmt.Errorf("wire: unknown predicate op %q", w.Op)
	}
	switch op {
	case core.PredTrue:
		return core.TruePred, nil
	case core.PredAnd, core.PredOr, core.PredNot:
		p := &core.Pred{Op: op}
		for _, k := range w.Kids {
			pk, err := decodePred(k)
			if err != nil {
				return nil, err
			}
			p.Kids = append(p.Kids, pk)
		}
		return p, nil
	}
	if w.Left == nil {
		return nil, fmt.Errorf("wire: comparison %q missing left attribute", w.Op)
	}
	p := &core.Pred{Op: op, Left: coreAttr(*w.Left)}
	switch {
	case w.Right != nil:
		p.Right = coreAttr(*w.Right)
		p.AttrCmp = true
	case w.Const != nil:
		c, err := decodeValue(*w.Const)
		if err != nil {
			return nil, err
		}
		p.Const = c
	default:
		return nil, fmt.Errorf("wire: comparison %q has neither right attribute nor constant", w.Op)
	}
	return p, nil
}

func encodeDescriptor(d *core.Descriptor) (map[string]PropValue, error) {
	if d == nil {
		return nil, nil
	}
	ps := d.Props()
	out := map[string]PropValue{}
	for id := core.PropID(0); int(id) < ps.Len(); id++ {
		if !d.Has(id) {
			continue
		}
		v, err := encodeValue(d.Get(id))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ps.At(id).Name, err)
		}
		out[ps.At(id).Name] = v
	}
	return out, nil
}

func decodeDescriptor(ps *core.PropertySet, props map[string]PropValue) (*core.Descriptor, error) {
	d := core.NewDescriptor(ps)
	for name, pv := range props {
		id, ok := ps.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("wire: unknown property %q", name)
		}
		v, err := decodeValue(pv)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		// Descriptor.Set panics on a kind mismatch (a rule-spec bug
		// locally, but here the value came off the network); reject
		// mismatched payloads as errors instead. Numeric kinds coerce
		// freely, mirroring Set.
		if want, got := ps.At(id).Kind, v.Kind(); got != want && !numericWireKinds(got, want) {
			return nil, fmt.Errorf("wire: property %q holds %v, payload sent %v", name, want, got)
		}
		d.Set(id, v)
	}
	return d, nil
}

func numericWireKinds(a, b core.Kind) bool {
	num := func(k core.Kind) bool {
		return k == core.KindFloat || k == core.KindCost || k == core.KindInt
	}
	return num(a) && num(b)
}

// EncodePlan serializes an access plan.
func EncodePlan(p *volcano.PExpr) (*PlanNode, error) {
	if p == nil {
		return nil, nil
	}
	props, err := encodeDescriptor(p.D)
	if err != nil {
		return nil, err
	}
	n := &PlanNode{File: p.File, Props: props}
	if !p.IsLeaf() {
		n.Op = p.Alg.Name
	}
	for _, k := range p.Kids {
		kn, err := EncodePlan(k)
		if err != nil {
			return nil, err
		}
		n.Kids = append(n.Kids, kn)
	}
	return n, nil
}

// DecodePlan rebuilds a core operator tree from a serialized plan using
// the world's algebra (algorithm names and property kinds). The result
// is an access plan the exec compiler accepts.
func DecodePlan(alg *core.Algebra, n *PlanNode) (*core.Expr, error) {
	if n == nil {
		return nil, fmt.Errorf("wire: nil plan node")
	}
	d, err := decodeDescriptor(alg.Props, n.Props)
	if err != nil {
		return nil, err
	}
	if n.Op == "" {
		if n.File == "" {
			return nil, fmt.Errorf("wire: plan node with neither op nor file")
		}
		return core.NewLeaf(n.File, d), nil
	}
	op, ok := alg.Op(n.Op)
	if !ok {
		return nil, fmt.Errorf("wire: unknown algorithm %q", n.Op)
	}
	// core.NewNode panics on an arity mismatch; a malformed payload must
	// come back as an error instead.
	if len(n.Kids) != op.Arity {
		return nil, fmt.Errorf("wire: %s expects %d inputs, payload has %d", op.Name, op.Arity, len(n.Kids))
	}
	kids := make([]*core.Expr, len(n.Kids))
	for i, k := range n.Kids {
		kids[i], err = DecodePlan(alg, k)
		if err != nil {
			return nil, err
		}
	}
	return core.NewNode(op, d, kids...), nil
}
