package wire_test

import (
	"testing"

	"prairie/internal/server"
	"prairie/internal/volcano"
	"prairie/internal/wire"
)

// FuzzCacheEntry drives the peer-protocol entry codec with arbitrary
// bytes. Garbage must come back as an error — never a panic (the codec
// decodes payloads straight off the network) — and anything that decodes
// must reach a fixed point: re-encoding the decoded entry and decoding
// again yields the same plan and statistics.
func FuzzCacheEntry(f *testing.F) {
	reg, err := server.DefaultRegistry(3, 101, "")
	if err != nil {
		f.Fatal(err)
	}
	w, _ := reg.Lookup("oodb/volcano")
	alg := w.RS.Algebra

	// Seed with real payloads: optimized plans from two families, plus
	// structured near-misses the mutator can grow from.
	opt := volcano.NewOptimizer(w.RS)
	for _, q := range []server.QuerySpec{{Family: "E2", N: 2}, {Family: "E3", N: 3}} {
		tree, want, err := w.Build(q)
		if err != nil {
			f.Fatal(err)
		}
		plan, err := opt.Optimize(tree, want)
		if err != nil {
			f.Fatal(err)
		}
		payload, err := wire.EncodeEntry(volcano.RemoteEntry{Plan: plan, Cost: 12.5, Groups: 9, Exprs: 30})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte(`{"plan":{"file":"F1"},"cost":1}`))
	f.Add([]byte(`{"plan":{"op":"Hash_join","kids":[{"file":"F1"},{"file":"F1"}]}}`))
	f.Add([]byte(`{"plan":{"op":"Hash_join","kids":[{"file":"F1"}]}}`))
	f.Add([]byte(`{"plan":{"file":"F1","props":{"num_records":{"kind":"pred","pred":{"op":"TRUE"}}}}}`))
	f.Add([]byte(`{"plan":{"file":"F1","props":{"selection_predicate":{"kind":"pred","pred":{"op":"=","left":{"rel":"C1","name":"b"},"const":{"kind":"int","num":3}}}}}}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, payload []byte) {
		e1, err := wire.DecodeEntry(alg, payload)
		if err != nil {
			return // rejected without panicking: exactly the contract
		}
		again, err := wire.EncodeEntry(e1)
		if err != nil {
			t.Fatalf("decoded entry failed to re-encode: %v", err)
		}
		e2, err := wire.DecodeEntry(alg, again)
		if err != nil {
			t.Fatalf("re-encoded entry failed to decode: %v", err)
		}
		if g1, g2 := e1.Plan.ToExpr().Format(), e2.Plan.ToExpr().Format(); g1 != g2 {
			t.Fatalf("plan not a fixed point\n--- first decode\n%s\n--- second decode\n%s", g1, g2)
		}
		if e1.Cost != e2.Cost || e1.Groups != e2.Groups || e1.Exprs != e2.Exprs ||
			e1.Merges != e2.Merges || e1.MemoBytes != e2.MemoBytes {
			t.Fatalf("stats not a fixed point: %+v vs %+v", e1, e2)
		}
	})
}
