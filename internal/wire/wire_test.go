package wire_test

import (
	"context"
	"encoding/json"
	"testing"

	"prairie/internal/server"
	"prairie/internal/volcano"
	"prairie/internal/wire"
)

// optimizeWorld runs a query through a world's optimizer directly and
// returns the winning access plan.
func optimizeWorld(t *testing.T, w *server.World, q server.QuerySpec) *volcano.PExpr {
	t.Helper()
	tree, want, err := w.Build(q)
	if err != nil {
		t.Fatalf("%s %s: build: %v", w.Name, q, err)
	}
	opt := volcano.NewOptimizer(w.RS)
	plan, err := opt.OptimizeContext(context.Background(), tree, want)
	if err != nil {
		t.Fatalf("%s %s: optimize: %v", w.Name, q, err)
	}
	return plan
}

// TestPlanRoundTrip optimizes queries in every default world,
// serializes each winning plan through the wire codec, and asserts the
// decoded operator tree renders byte-identically to the original. The
// relational E3/E4 queries exercise predicates (selection constants and
// join terms) and orders; oodb exercises the remaining value kinds.
func TestPlanRoundTrip(t *testing.T) {
	reg, err := server.DefaultRegistry(4, 101, "")
	if err != nil {
		t.Fatal(err)
	}
	cases := []server.QuerySpec{
		{Family: "E1", N: 3},
		{Family: "E2", N: 3},
		{Family: "E3", N: 3},
		{Family: "E4", N: 3},
		{Family: "E2", N: 4, Graph: "star"},
	}
	for _, name := range reg.Names() {
		w, _ := reg.Lookup(name)
		for _, q := range cases {
			plan := optimizeWorld(t, w, q)
			ref := plan.ToExpr().Format()

			node, err := wire.EncodePlan(plan)
			if err != nil {
				t.Fatalf("%s %s: encode: %v", name, q, err)
			}
			raw, err := json.Marshal(node)
			if err != nil {
				t.Fatalf("%s %s: marshal: %v", name, q, err)
			}
			var back wire.PlanNode
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatalf("%s %s: unmarshal: %v", name, q, err)
			}
			decoded, err := wire.DecodePlan(w.RS.Algebra, &back)
			if err != nil {
				t.Fatalf("%s %s: decode: %v", name, q, err)
			}
			if got := decoded.Format(); got != ref {
				t.Errorf("%s %s: round-trip mismatch\n--- original\n%s\n--- decoded\n%s", name, q, ref, got)
			}
		}
	}
}

// TestPlanErrors pins the codec's failure modes: unknown algorithm
// names, unknown properties, and malformed nodes must error, not panic.
func TestPlanErrors(t *testing.T) {
	reg, err := server.DefaultRegistry(3, 101, "")
	if err != nil {
		t.Fatal(err)
	}
	w, _ := reg.Lookup("oodb/volcano")
	alg := w.RS.Algebra

	if _, err := wire.DecodePlan(alg, nil); err == nil {
		t.Error("nil node: want error")
	}
	if _, err := wire.DecodePlan(alg, &wire.PlanNode{}); err == nil {
		t.Error("node with neither op nor file: want error")
	}
	if _, err := wire.DecodePlan(alg, &wire.PlanNode{Op: "NO_SUCH_ALG"}); err == nil {
		t.Error("unknown algorithm: want error")
	}
	if _, err := wire.DecodePlan(alg, &wire.PlanNode{
		File:  "F1",
		Props: map[string]wire.PropValue{"no_such_prop": {Kind: "int", Num: 1}},
	}); err == nil {
		t.Error("unknown property: want error")
	}
	if _, err := wire.DecodePlan(alg, &wire.PlanNode{
		File:  "F1",
		Props: map[string]wire.PropValue{"num_records": {Kind: "no_such_kind"}},
	}); err == nil {
		t.Error("unknown value kind: want error")
	}
}

// TestEntryRoundTrip encodes a full cache entry — plan plus cold-run
// shape statistics — and decodes it against the same algebra, as the
// peer protocol does between nodes sharing a world definition.
func TestEntryRoundTrip(t *testing.T) {
	reg, err := server.DefaultRegistry(4, 101, "")
	if err != nil {
		t.Fatal(err)
	}
	w, _ := reg.Lookup("oodb/volcano")
	plan := optimizeWorld(t, w, server.QuerySpec{Family: "E2", N: 3})
	in := volcano.RemoteEntry{
		Plan:      plan,
		Cost:      plan.Cost(w.RS.Class),
		Groups:    25,
		Exprs:     77,
		Merges:    3,
		MemoBytes: 4096,
	}
	payload, err := wire.EncodeEntry(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := wire.DecodeEntry(w.RS.Algebra, payload)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.Plan.ToExpr().Format(), plan.ToExpr().Format(); got != want {
		t.Errorf("entry plan round-trip mismatch\n--- original\n%s\n--- decoded\n%s", want, got)
	}
	if out.Cost != in.Cost || out.Groups != in.Groups || out.Exprs != in.Exprs ||
		out.Merges != in.Merges || out.MemoBytes != in.MemoBytes {
		t.Errorf("entry stats round-trip mismatch: got %+v, want %+v", out, in)
	}
}

// TestEntryErrors pins the entry codec's failure modes.
func TestEntryErrors(t *testing.T) {
	reg, err := server.DefaultRegistry(3, 101, "")
	if err != nil {
		t.Fatal(err)
	}
	w, _ := reg.Lookup("oodb/volcano")
	alg := w.RS.Algebra

	if _, err := wire.EncodeEntry(volcano.RemoteEntry{}); err == nil {
		t.Error("encode entry without a plan: want error")
	}
	if _, err := wire.DecodeEntry(alg, []byte("not json")); err == nil {
		t.Error("decode garbage: want error")
	}
	if _, err := wire.DecodeEntry(alg, []byte(`{"cost": 1}`)); err == nil {
		t.Error("decode entry without a plan: want error")
	}
	if _, err := wire.DecodeEntry(alg, []byte(`{"plan": {"op": "NO_SUCH_ALG"}}`)); err == nil {
		t.Error("decode entry with an undecodable plan: want error")
	}
}
