package wire

import (
	"encoding/json"
	"fmt"

	"prairie/internal/core"
	"prairie/internal/volcano"
)

// CacheEntry is the peer-protocol payload: one plan-cache entry — the
// winner plan plus the cold-run shape statistics a hit reports — in a
// form any node can decode against its own copy of the world's algebra.
// Only full-tier entries travel, so no tier field is needed.
type CacheEntry struct {
	Plan      *PlanNode `json:"plan"`
	Cost      float64   `json:"cost"`
	Groups    int       `json:"groups,omitempty"`
	Exprs     int       `json:"exprs,omitempty"`
	Merges    int       `json:"merges,omitempty"`
	MemoBytes int64     `json:"memo_bytes,omitempty"`
}

// EncodeEntry serializes a cache entry for the peer protocol.
func EncodeEntry(e volcano.RemoteEntry) ([]byte, error) {
	pn, err := EncodePlan(e.Plan)
	if err != nil {
		return nil, err
	}
	if pn == nil {
		return nil, fmt.Errorf("wire: cache entry without a plan")
	}
	return json.Marshal(CacheEntry{
		Plan:      pn,
		Cost:      e.Cost,
		Groups:    e.Groups,
		Exprs:     e.Exprs,
		Merges:    e.Merges,
		MemoBytes: e.MemoBytes,
	})
}

// DecodeEntry rebuilds a cache entry from a peer payload using the
// receiving node's algebra. The decoded plan is a fresh tree with its
// own descriptors — safe to cache and clone like a locally-built one.
func DecodeEntry(alg *core.Algebra, b []byte) (volcano.RemoteEntry, error) {
	var ce CacheEntry
	if err := json.Unmarshal(b, &ce); err != nil {
		return volcano.RemoteEntry{}, fmt.Errorf("wire: cache entry: %w", err)
	}
	if ce.Plan == nil {
		return volcano.RemoteEntry{}, fmt.Errorf("wire: cache entry without a plan")
	}
	tree, err := DecodePlan(alg, ce.Plan)
	if err != nil {
		return volcano.RemoteEntry{}, err
	}
	return volcano.RemoteEntry{
		Plan:      volcano.PlanFromExpr(tree),
		Cost:      ce.Cost,
		Groups:    ce.Groups,
		Exprs:     ce.Exprs,
		Merges:    ce.Merges,
		MemoBytes: ce.MemoBytes,
	}, nil
}
