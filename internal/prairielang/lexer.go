package prairielang

import (
	"strconv"
	"strings"
	"unicode"
)

// lexer scans a Prairie specification into tokens. Comments run from
// "//" to end of line or between "/*" and "*/".
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpace() error {
	for l.off < len(l.src) {
		switch {
		case unicode.IsSpace(rune(l.peek())):
			l.advance()
		case l.peek() == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case l.peek() == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return errf(start, "unterminated block comment")
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.off], Pos: pos}, nil
	case c >= '0' && c <= '9':
		start := l.off
		for l.off < len(l.src) && (isDigit(l.peek()) || l.peek() == '.') {
			// A dot is part of the number only if a digit follows;
			// otherwise it is member access after an integer (unused
			// but kept unambiguous).
			if l.peek() == '.' && !isDigit(l.peek2()) {
				break
			}
			l.advance()
		}
		text := l.src[start:l.off]
		n, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, errf(pos, "bad number %q", text)
		}
		return Token{Kind: TokNumber, Text: text, Num: n, Pos: pos}, nil
	case c == '?':
		l.advance()
		start := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if start == l.off {
			return Token{}, errf(pos, "'?' must be followed by a variable number")
		}
		v, _ := strconv.Atoi(l.src[start:l.off])
		return Token{Kind: TokVar, Text: "?" + l.src[start:l.off], Var: v, Pos: pos}, nil
	case c == '"':
		l.advance()
		var b strings.Builder
		for {
			if l.off >= len(l.src) || l.peek() == '\n' {
				return Token{}, errf(pos, "unterminated string")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' && l.off < len(l.src) {
				ch = l.advance()
			}
			b.WriteByte(ch)
		}
		return Token{Kind: TokString, Text: b.String(), Pos: pos}, nil
	}
	l.advance()
	two := func(second byte, ifTwo, ifOne TokKind) (Token, error) {
		if l.peek() == second {
			l.advance()
			return Token{Kind: ifTwo, Pos: pos}, nil
		}
		return Token{Kind: ifOne, Pos: pos}, nil
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: pos}, nil
	case ':':
		return Token{Kind: TokColon, Pos: pos}, nil
	case '.':
		return Token{Kind: TokDot, Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '=':
		if l.peek() == '>' {
			l.advance()
			return Token{Kind: TokArrow, Pos: pos}, nil
		}
		return two('=', TokEq, TokAssign)
	case '!':
		return two('=', TokNe, TokBang)
	case '<':
		return two('=', TokLe, TokLt)
	case '>':
		return two('=', TokGe, TokGt)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return Token{Kind: TokAndAnd, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected '&'")
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: TokOrOr, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected '|'")
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// lexAll scans the whole input; used by the parser.
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
