package prairielang

import (
	"fmt"

	"prairie/internal/core"
)

// checker resolves a parsed specification against its declared algebra
// and type-checks every rule: patterns (operation names, arities,
// descriptor scoping), statements (only right-hand-side descriptors may
// be assigned, §2.3), and expressions (property kinds, helper
// signatures).
type checker struct {
	spec    *Spec
	alg     *core.Algebra
	helpers map[string]*HelperDecl
	errs    []error
}

func newChecker(spec *Spec) *checker {
	name := spec.Name
	if name == "" {
		name = "prairie"
	}
	return &checker{spec: spec, alg: core.NewAlgebra(name), helpers: map[string]*HelperDecl{}}
}

func (c *checker) errf(pos Pos, format string, args ...interface{}) {
	c.errs = append(c.errs, errf(pos, format, args...))
}

func (c *checker) declare() {
	seen := map[string]bool{}
	for _, p := range c.spec.Props {
		if seen["p:"+p.Name] {
			c.errf(p.Pos, "property %q declared twice", p.Name)
			continue
		}
		seen["p:"+p.Name] = true
		c.alg.Props.Define(p.Name, p.Kind)
	}
	for _, o := range c.spec.Ops {
		if seen["o:"+o.Name] {
			c.errf(o.Pos, "operation %q declared twice", o.Name)
			continue
		}
		seen["o:"+o.Name] = true
		var op *core.Operation
		if o.Kind == core.Operator {
			op = c.alg.Operator(o.Name, o.Arity)
		} else {
			op = c.alg.Algorithm(o.Name, o.Arity)
		}
		for _, name := range o.Args {
			id, ok := c.alg.Props.Lookup(name)
			if !ok {
				c.errf(o.Pos, "operation %s: unknown argument property %q", o.Name, name)
				continue
			}
			op.Args = append(op.Args, id)
		}
	}
	for _, o := range c.spec.Ops {
		if o.Implements == "" {
			continue
		}
		impl, ok := c.alg.Op(o.Implements)
		if !ok || impl.Kind != core.Operator {
			c.errf(o.Pos, "algorithm %s implements unknown operator %q", o.Name, o.Implements)
		}
	}
	for _, h := range c.spec.Helpers {
		if c.helpers[h.Name] != nil {
			c.errf(h.Pos, "helper %q declared twice", h.Name)
			continue
		}
		c.helpers[h.Name] = h
	}
}

// resolvePattern converts a pattern AST into a core pattern.
func (c *checker) resolvePattern(p *PatAST) *core.PatNode {
	if p.Op == "" {
		return &core.PatNode{Var: p.Var, Desc: p.Desc}
	}
	op, ok := c.alg.Op(p.Op)
	if !ok {
		c.errf(p.Pos, "unknown operation %q", p.Op)
		return &core.PatNode{Var: 1}
	}
	if len(p.Kids) != op.Arity {
		c.errf(p.Pos, "%s expects %d inputs, pattern has %d", op.Name, op.Arity, len(p.Kids))
	}
	kids := make([]*core.PatNode, len(p.Kids))
	for i, k := range p.Kids {
		kids[i] = c.resolvePattern(k)
	}
	return &core.PatNode{Op: op, Desc: p.Desc, Kids: kids}
}

// ruleScope tracks descriptor names per side for statement checking.
type ruleScope struct {
	lhs map[string]bool
	rhs map[string]bool
}

func scopeOf(lhs, rhs *core.PatNode) ruleScope {
	s := ruleScope{lhs: map[string]bool{}, rhs: map[string]bool{}}
	for _, n := range lhs.DescNames() {
		s.lhs[n] = true
	}
	for _, n := range rhs.DescNames() {
		s.rhs[n] = true
	}
	return s
}

func (s ruleScope) known(name string) bool { return s.lhs[name] || s.rhs[name] }

// checkStmts validates a statement block and returns its write hints in
// core.ActionHints format ("D.prop", "D.*").
func (c *checker) checkStmts(stmts []*Stmt, sc ruleScope) []string {
	hints := make([]string, 0, len(stmts))
	for _, st := range stmts {
		if !sc.known(st.Dst) {
			c.errf(st.Pos, "descriptor %q is not bound by the rule's patterns", st.Dst)
			continue
		}
		if sc.lhs[st.Dst] && !sc.rhs[st.Dst] {
			c.errf(st.Pos, "descriptor %s is on the rule's left side; left-hand-side descriptors are never changed (§2.3)", st.Dst)
		}
		if st.Prop == "" {
			if !sc.known(st.Src) {
				c.errf(st.Pos, "descriptor %q is not bound by the rule's patterns", st.Src)
			}
			hints = append(hints, st.Dst+".*")
			continue
		}
		id, ok := c.alg.Props.Lookup(st.Prop)
		if !ok {
			c.errf(st.Pos, "unknown property %q", st.Prop)
			continue
		}
		want := c.alg.Props.At(id).Kind
		got := c.checkExpr(st.RHS, sc, want)
		if !kindsCompatible(got, want) {
			c.errf(st.Pos, "cannot assign %v to %s.%s (%v)", got, st.Dst, st.Prop, want)
		}
		hints = append(hints, st.Dst+"."+st.Prop)
	}
	return hints
}

func kindsCompatible(got, want core.Kind) bool {
	if got == want || got == core.KindInvalid {
		return true
	}
	num := func(k core.Kind) bool {
		return k == core.KindFloat || k == core.KindCost || k == core.KindInt
	}
	return num(got) && num(want)
}

// checkExpr type-checks an expression, recording the result kind on the
// node. expected guides contextual literals (DONT_CARE); pass
// core.KindInvalid when no context exists.
func (c *checker) checkExpr(e Expr, sc ruleScope, expected core.Kind) core.Kind {
	switch x := e.(type) {
	case *NumLit:
		x.kind = core.KindFloat
	case *StrLit:
		x.kind = core.KindString
	case *BoolLit:
		x.kind = core.KindBool
	case *DontCareLit:
		if expected == core.KindInvalid {
			expected = core.KindOrder
		}
		x.kind = expected
	case *Member:
		if !sc.known(x.Desc) {
			c.errf(x.Pos, "descriptor %q is not bound by the rule's patterns", x.Desc)
			x.kind = core.KindInvalid
			break
		}
		id, ok := c.alg.Props.Lookup(x.Prop)
		if !ok {
			c.errf(x.Pos, "unknown property %q", x.Prop)
			x.kind = core.KindInvalid
			break
		}
		x.ID = id
		x.kind = c.alg.Props.At(id).Kind
	case *Call:
		decl := c.helpers[x.Name]
		if decl == nil {
			c.errf(x.Pos, "unknown helper %q", x.Name)
			x.kind = core.KindInvalid
			break
		}
		if len(x.Args) != len(decl.Params) {
			c.errf(x.Pos, "helper %s expects %d arguments, got %d", x.Name, len(decl.Params), len(x.Args))
		}
		for i, a := range x.Args {
			want := core.KindInvalid
			if i < len(decl.Params) {
				want = decl.Params[i]
			}
			got := c.checkExpr(a, sc, want)
			if want != core.KindInvalid && !kindsCompatible(got, want) {
				c.errf(a.ExprPos(), "helper %s argument %d: expected %v, got %v", x.Name, i+1, want, got)
			}
		}
		x.kind = decl.Result
	case *Unary:
		switch x.Op {
		case TokBang:
			got := c.checkExpr(x.X, sc, core.KindBool)
			if !kindsCompatible(got, core.KindBool) {
				c.errf(x.Pos, "'!' needs a boolean operand, got %v", got)
			}
			x.kind = core.KindBool
		default: // TokMinus
			got := c.checkExpr(x.X, sc, core.KindFloat)
			if !kindsCompatible(got, core.KindFloat) {
				c.errf(x.Pos, "'-' needs a numeric operand, got %v", got)
			}
			x.kind = core.KindFloat
		}
	case *Binary:
		x.kind = c.checkBinary(x, sc)
	default:
		c.errs = append(c.errs, fmt.Errorf("prairielang: unknown expression %T", e))
	}
	return e.Kind()
}

func (c *checker) checkBinary(x *Binary, sc ruleScope) core.Kind {
	switch x.Op {
	case TokAndAnd, TokOrOr:
		for _, side := range []Expr{x.L, x.R} {
			if got := c.checkExpr(side, sc, core.KindBool); !kindsCompatible(got, core.KindBool) {
				c.errf(side.ExprPos(), "boolean operator needs boolean operands, got %v", got)
			}
		}
		return core.KindBool
	case TokEq, TokNe:
		// Check the side with intrinsic type first so a DONT_CARE on
		// the other side adopts its kind.
		l := c.checkExpr(x.L, sc, core.KindInvalid)
		r := c.checkExpr(x.R, sc, l)
		if _, isDC := x.L.(*DontCareLit); isDC {
			l = c.checkExpr(x.L, sc, r)
		}
		if !kindsCompatible(l, r) && !kindsCompatible(r, l) {
			c.errf(x.Pos, "cannot compare %v with %v", l, r)
		}
		return core.KindBool
	case TokLt, TokLe, TokGt, TokGe:
		for _, side := range []Expr{x.L, x.R} {
			got := c.checkExpr(side, sc, core.KindFloat)
			if !kindsCompatible(got, core.KindFloat) && got != core.KindString {
				c.errf(side.ExprPos(), "ordering comparison needs numeric or string operands, got %v", got)
			}
		}
		return core.KindBool
	default: // + - * /
		for _, side := range []Expr{x.L, x.R} {
			got := c.checkExpr(side, sc, core.KindFloat)
			if !kindsCompatible(got, core.KindFloat) {
				c.errf(side.ExprPos(), "arithmetic needs numeric operands, got %v", got)
			}
		}
		return core.KindFloat
	}
}
