package prairielang

import (
	"fmt"
	"strconv"
	"strings"

	"prairie/internal/core"
)

// Format renders a specification AST back to canonical source text.
// Parse(Format(spec)) is structurally identical to spec.
func Format(s *Spec) string {
	var b strings.Builder
	if s.Name != "" {
		fmt.Fprintf(&b, "algebra %s;\n\n", s.Name)
	}
	for _, p := range s.Props {
		fmt.Fprintf(&b, "property %s : %s;\n", p.Name, p.Kind)
	}
	if len(s.Props) > 0 {
		b.WriteByte('\n')
	}
	for _, o := range s.Ops {
		kw := "operator"
		if o.Kind == core.Algorithm {
			kw = "algorithm"
		}
		fmt.Fprintf(&b, "%s %s(%d)", kw, o.Name, o.Arity)
		if len(o.Args) > 0 {
			fmt.Fprintf(&b, " args(%s)", strings.Join(o.Args, ", "))
		}
		if o.Implements != "" {
			fmt.Fprintf(&b, " implements %s", o.Implements)
		}
		b.WriteString(";\n")
	}
	if len(s.Ops) > 0 {
		b.WriteByte('\n')
	}
	for _, h := range s.Helpers {
		params := make([]string, len(h.Params))
		for i, k := range h.Params {
			params[i] = k.String()
		}
		fmt.Fprintf(&b, "helper %s(%s) : %s;\n", h.Name, strings.Join(params, ", "), h.Result)
	}
	if len(s.Helpers) > 0 {
		b.WriteByte('\n')
	}
	for _, r := range s.TRules {
		fmt.Fprintf(&b, "trule %s:\n  %s => %s\n", r.Name, formatPat(r.LHS), formatPat(r.RHS))
		formatBlock(&b, "pretest", r.PreTest)
		if r.Test != nil {
			fmt.Fprintf(&b, "test (%s)\n", formatExpr(r.Test))
		}
		formatBlock(&b, "posttest", r.PostTest)
		b.WriteByte('\n')
	}
	for _, r := range s.IRules {
		fmt.Fprintf(&b, "irule %s:\n  %s => %s\n", r.Name, formatPat(r.LHS), formatPat(r.RHS))
		if r.Test != nil {
			fmt.Fprintf(&b, "test (%s)\n", formatExpr(r.Test))
		}
		formatBlock(&b, "preopt", r.PreOpt)
		formatBlock(&b, "postopt", r.PostOpt)
		b.WriteByte('\n')
	}
	return b.String()
}

func formatBlock(b *strings.Builder, kw string, stmts []*Stmt) {
	if len(stmts) == 0 {
		return
	}
	fmt.Fprintf(b, "%s {\n", kw)
	for _, st := range stmts {
		if st.Prop == "" {
			fmt.Fprintf(b, "  %s = %s;\n", st.Dst, st.Src)
		} else {
			fmt.Fprintf(b, "  %s.%s = %s;\n", st.Dst, st.Prop, formatExpr(st.RHS))
		}
	}
	b.WriteString("}\n")
}

func formatPat(p *PatAST) string {
	var s string
	if p.Op == "" {
		s = fmt.Sprintf("?%d", p.Var)
	} else {
		kids := make([]string, len(p.Kids))
		for i, k := range p.Kids {
			kids[i] = formatPat(k)
		}
		s = p.Op + "(" + strings.Join(kids, ", ") + ")"
	}
	if p.Desc != "" {
		s += ":" + p.Desc
	}
	return s
}

var binOpText = map[TokKind]string{
	TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">",
	TokGe: ">=", TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/",
	TokAndAnd: "&&", TokOrOr: "||",
}

// prec returns the binding strength of a binary operator for
// parenthesization.
func prec(op TokKind) int {
	switch op {
	case TokOrOr:
		return 1
	case TokAndAnd:
		return 2
	case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
		return 3
	case TokPlus, TokMinus:
		return 4
	default:
		return 5
	}
}

func formatExpr(e Expr) string { return formatExprPrec(e, 0) }

func formatExprPrec(e Expr, outer int) string {
	switch x := e.(type) {
	case *NumLit:
		return strconv.FormatFloat(x.Val, 'g', -1, 64)
	case *StrLit:
		return strconv.Quote(x.Val)
	case *BoolLit:
		if x.Val {
			return "true"
		}
		return "false"
	case *DontCareLit:
		return "DONT_CARE"
	case *Member:
		return x.Desc + "." + x.Prop
	case *Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = formatExpr(a)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *Unary:
		op := "-"
		if x.Op == TokBang {
			op = "!"
		}
		return op + formatExprPrec(x.X, 5)
	case *Binary:
		p := prec(x.Op)
		s := formatExprPrec(x.L, p) + " " + binOpText[x.Op] + " " + formatExprPrec(x.R, p+1)
		if p < outer {
			return "(" + s + ")"
		}
		return s
	}
	return "?"
}
