package prairielang

import "prairie/internal/core"

// Spec is a parsed Prairie specification.
type Spec struct {
	Name    string // algebra name
	Props   []*PropDecl
	Ops     []*OpDecl
	Helpers []*HelperDecl
	TRules  []*TRuleDecl
	IRules  []*IRuleDecl
}

// PropDecl declares a descriptor property.
type PropDecl struct {
	Pos  Pos
	Name string
	Kind core.Kind
}

// OpDecl declares an operator or algorithm.
type OpDecl struct {
	Pos        Pos
	Name       string
	Kind       core.OpKind
	Arity      int
	Implements string // optional, algorithms only (documentation)
	// Args names the operation's additional parameters (its identity
	// properties in duplicate detection): "operator JOIN(2)
	// args(join_predicate);".
	Args []string
}

// HelperDecl declares a helper function's signature; its implementation
// is supplied in Go when the specification is compiled.
type HelperDecl struct {
	Pos    Pos
	Name   string
	Params []core.Kind
	Result core.Kind
}

// PatAST is a parsed rule pattern node.
type PatAST struct {
	Pos  Pos
	Op   string // "" for a variable leaf
	Var  int
	Desc string
	Kids []*PatAST
}

// TRuleDecl is a parsed T-rule.
type TRuleDecl struct {
	Pos      Pos
	Name     string
	LHS, RHS *PatAST
	PreTest  []*Stmt
	Test     Expr // nil means TRUE
	PostTest []*Stmt
}

// IRuleDecl is a parsed I-rule.
type IRuleDecl struct {
	Pos      Pos
	Name     string
	LHS, RHS *PatAST
	Test     Expr // nil means TRUE
	PreOpt   []*Stmt
	PostOpt  []*Stmt
}

// Stmt is a descriptor assignment statement: either a whole-descriptor
// copy ("D5 = D3;") or a property assignment ("D5.cost = ...;").
type Stmt struct {
	Pos  Pos
	Dst  string // descriptor variable
	Prop string // "" for whole-descriptor copy
	// Src names the source descriptor for a copy; RHS is the expression
	// for a property assignment.
	Src string
	RHS Expr
}

// Expr is an expression AST node. Each implementation records its
// source position and, after checking, its result kind.
type Expr interface {
	ExprPos() Pos
	// Kind returns the checked result kind (valid after Check).
	Kind() core.Kind
}

type exprBase struct {
	Pos  Pos
	kind core.Kind
}

func (e *exprBase) ExprPos() Pos    { return e.Pos }
func (e *exprBase) Kind() core.Kind { return e.kind }

// NumLit is a numeric literal.
type NumLit struct {
	exprBase
	Val float64
}

// StrLit is a string literal.
type StrLit struct {
	exprBase
	Val string
}

// BoolLit is true or false.
type BoolLit struct {
	exprBase
	Val bool
}

// DontCareLit is the DONT_CARE literal; its kind is inferred from
// context (order in every rule the paper shows).
type DontCareLit struct {
	exprBase
}

// Member is a descriptor property access "D3.cost".
type Member struct {
	exprBase
	Desc string
	Prop string
	// ID is resolved during checking.
	ID core.PropID
}

// Call is a helper-function call.
type Call struct {
	exprBase
	Name string
	Args []Expr
}

// Unary is negation ("-" or "!").
type Unary struct {
	exprBase
	Op TokKind
	X  Expr
}

// Binary is an arithmetic, comparison, or boolean operation.
type Binary struct {
	exprBase
	Op   TokKind
	L, R Expr
}
