package prairielang

import (
	"errors"
	"fmt"

	"prairie/internal/core"
)

// HelperImpl is the Go implementation of a declared helper function.
type HelperImpl func(args []core.Value) (core.Value, error)

// Compile parses nothing — it takes a parsed specification, checks it,
// and builds an executable core.RuleSet whose rule actions interpret the
// specification's statement blocks. impls supplies the Go bodies of the
// declared helper functions (every declared helper must be present).
//
// The compiler attaches exact write hints (core.ActionHints) to every
// rule, computed statically from the statement blocks, so the P2V
// pre-processor classifies properties without taint tracing.
func Compile(spec *Spec, impls map[string]HelperImpl) (*core.RuleSet, error) {
	c := newChecker(spec)
	c.declare()

	rs := core.NewRuleSet(c.alg)
	for _, h := range c.spec.Helpers {
		impl, ok := impls[h.Name]
		if !ok {
			c.errf(h.Pos, "helper %q has no Go implementation", h.Name)
			continue
		}
		rs.Helpers.Define(h.Name, h.Params, h.Result, impl)
	}
	for name := range impls {
		if c.helpers[name] == nil {
			c.errs = append(c.errs, fmt.Errorf("prairielang: implementation for undeclared helper %q", name))
		}
	}

	for _, d := range spec.TRules {
		rs.AddT(c.compileTRule(d, rs.Helpers))
	}
	for _, d := range spec.IRules {
		rs.AddI(c.compileIRule(d, rs.Helpers))
	}
	if len(c.errs) > 0 {
		return nil, errors.Join(c.errs...)
	}
	if errs := rs.Validate(); len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return rs, nil
}

// ParseAndCompile is the convenience entry point: source to rule set.
func ParseAndCompile(src string, impls map[string]HelperImpl) (*core.RuleSet, error) {
	spec, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(spec, impls)
}

// Check parses and checks a specification without requiring helper
// implementations; it returns every problem found. Used by prairiec's
// -check mode.
func Check(src string) []error {
	spec, err := Parse(src)
	if err != nil {
		return []error{err}
	}
	c := newChecker(spec)
	c.declare()
	for _, d := range spec.TRules {
		c.checkTRule(d)
	}
	for _, d := range spec.IRules {
		c.checkIRule(d)
	}
	return c.errs
}

func (c *checker) checkTRule(d *TRuleDecl) (lhs, rhs *core.PatNode, sc ruleScope, pre, post []string) {
	lhs = c.resolvePattern(d.LHS)
	rhs = c.resolvePattern(d.RHS)
	sc = scopeOf(lhs, rhs)
	pre = c.checkStmts(d.PreTest, sc)
	if d.Test != nil {
		if got := c.checkExpr(d.Test, sc, core.KindBool); !kindsCompatible(got, core.KindBool) {
			c.errf(d.Test.ExprPos(), "rule %s: test must be boolean, got %v", d.Name, got)
		}
	}
	post = c.checkStmts(d.PostTest, sc)
	return
}

func (c *checker) checkIRule(d *IRuleDecl) (lhs, rhs *core.PatNode, sc ruleScope, pre, post []string) {
	lhs = c.resolvePattern(d.LHS)
	rhs = c.resolvePattern(d.RHS)
	sc = scopeOf(lhs, rhs)
	if d.Test != nil {
		if got := c.checkExpr(d.Test, sc, core.KindBool); !kindsCompatible(got, core.KindBool) {
			c.errf(d.Test.ExprPos(), "rule %s: test must be boolean, got %v", d.Name, got)
		}
	}
	pre = c.checkStmts(d.PreOpt, sc)
	post = c.checkStmts(d.PostOpt, sc)
	return
}

func (c *checker) compileTRule(d *TRuleDecl, helpers *core.Helpers) *core.TRule {
	lhs, rhs, _, preW, postW := c.checkTRule(d)
	r := &core.TRule{
		Name:   d.Name,
		Origin: "spec:" + d.Pos.String(),
		LHS:    lhs,
		RHS:    rhs,
		Hints:  &core.ActionHints{PreWrites: preW, PostWrites: postW},
	}
	if len(d.PreTest) > 0 {
		stmts := d.PreTest
		r.PreTest = func(b *core.Binding) { execStmts(stmts, b, helpers) }
	}
	if d.Test != nil {
		test := d.Test
		r.Test = func(b *core.Binding) bool { return evalBool(test, b, helpers) }
	}
	if len(d.PostTest) > 0 {
		stmts := d.PostTest
		r.PostTest = func(b *core.Binding) { execStmts(stmts, b, helpers) }
	}
	return r
}

func (c *checker) compileIRule(d *IRuleDecl, helpers *core.Helpers) *core.IRule {
	lhs, rhs, _, preW, postW := c.checkIRule(d)
	r := &core.IRule{
		Name:  d.Name,
		LHS:   lhs,
		RHS:   rhs,
		Hints: &core.ActionHints{PreWrites: preW, PostWrites: postW},
	}
	if d.Test != nil {
		test := d.Test
		r.Test = func(b *core.Binding) bool { return evalBool(test, b, helpers) }
	}
	if len(d.PreOpt) > 0 {
		stmts := d.PreOpt
		r.PreOpt = func(b *core.Binding) { execStmts(stmts, b, helpers) }
	}
	if len(d.PostOpt) > 0 {
		stmts := d.PostOpt
		r.PostOpt = func(b *core.Binding) { execStmts(stmts, b, helpers) }
	}
	return r
}

// ParseAndCompileAll compiles several specification sources as one rule
// set — the modular composition of the paper's conclusion. The first
// source typically declares the algebra; later modules contribute
// additional operations, helpers, and rules (they reference earlier
// declarations by name and must not re-declare them). Algebra names, when
// given, must agree.
func ParseAndCompileAll(srcs []string, impls map[string]HelperImpl) (*core.RuleSet, error) {
	if len(srcs) == 0 {
		return nil, errors.New("prairielang: no sources")
	}
	merged := &Spec{}
	for i, src := range srcs {
		spec, err := Parse(src)
		if err != nil {
			return nil, fmt.Errorf("prairielang: module %d: %w", i+1, err)
		}
		switch {
		case merged.Name == "":
			merged.Name = spec.Name
		case spec.Name != "" && spec.Name != merged.Name:
			return nil, fmt.Errorf("prairielang: module %d declares algebra %q, want %q",
				i+1, spec.Name, merged.Name)
		}
		merged.Props = append(merged.Props, spec.Props...)
		merged.Ops = append(merged.Ops, spec.Ops...)
		merged.Helpers = append(merged.Helpers, spec.Helpers...)
		merged.TRules = append(merged.TRules, spec.TRules...)
		merged.IRules = append(merged.IRules, spec.IRules...)
	}
	return Compile(merged, impls)
}
