package prairielang

import (
	"fmt"
	"math"

	"prairie/internal/core"
)

// evalError marks a runtime failure inside an interpreted rule action; it
// is raised by panic because core.Action has no error channel, and a
// failing action is a specification bug.
type evalError struct{ err error }

func evalPanic(pos Pos, format string, args ...interface{}) {
	panic(evalError{errf(pos, format, args...)})
}

// execStmts runs a checked statement block against a binding.
func execStmts(stmts []*Stmt, b *core.Binding, helpers *core.Helpers) {
	for _, st := range stmts {
		if st.Prop == "" {
			b.D(st.Dst).CopyFrom(b.D(st.Src))
			continue
		}
		id, ok := b.D(st.Dst).Props().Lookup(st.Prop)
		if !ok {
			evalPanic(st.Pos, "unknown property %q", st.Prop)
		}
		v := evalExpr(st.RHS, b, helpers)
		b.D(st.Dst).Set(id, v)
	}
}

// evalBool evaluates a checked test expression.
func evalBool(e Expr, b *core.Binding, helpers *core.Helpers) bool {
	v := evalExpr(e, b, helpers)
	bv, ok := v.(core.Bool)
	if !ok {
		evalPanic(e.ExprPos(), "test did not evaluate to a boolean (got %v)", v.Kind())
	}
	return bool(bv)
}

// evalExpr evaluates a checked expression against a binding.
func evalExpr(e Expr, b *core.Binding, helpers *core.Helpers) core.Value {
	switch x := e.(type) {
	case *NumLit:
		return core.Float(x.Val)
	case *StrLit:
		return core.Str(x.Val)
	case *BoolLit:
		return core.Bool(x.Val)
	case *DontCareLit:
		return core.DefaultValue(x.Kind())
	case *Member:
		return b.D(x.Desc).Get(x.ID)
	case *Call:
		args := make([]core.Value, len(x.Args))
		for i, a := range x.Args {
			args[i] = evalExpr(a, b, helpers)
		}
		v, err := helpers.Call(x.Name, args...)
		if err != nil {
			evalPanic(x.Pos, "helper %s: %v", x.Name, err)
		}
		return v
	case *Unary:
		v := evalExpr(x.X, b, helpers)
		if x.Op == TokBang {
			bv, ok := v.(core.Bool)
			if !ok {
				evalPanic(x.Pos, "'!' on non-boolean %v", v.Kind())
			}
			return core.Bool(!bv)
		}
		return core.Float(-toFloat(v, x.Pos))
	case *Binary:
		return evalBinary(x, b, helpers)
	}
	panic(evalError{fmt.Errorf("prairielang: unknown expression %T", e)})
}

func evalBinary(x *Binary, b *core.Binding, helpers *core.Helpers) core.Value {
	switch x.Op {
	case TokAndAnd:
		l, ok := evalExpr(x.L, b, helpers).(core.Bool)
		if !ok {
			evalPanic(x.Pos, "'&&' on non-boolean")
		}
		if !l {
			return core.Bool(false)
		}
		r, ok := evalExpr(x.R, b, helpers).(core.Bool)
		if !ok {
			evalPanic(x.Pos, "'&&' on non-boolean")
		}
		return r
	case TokOrOr:
		l, ok := evalExpr(x.L, b, helpers).(core.Bool)
		if !ok {
			evalPanic(x.Pos, "'||' on non-boolean")
		}
		if l {
			return core.Bool(true)
		}
		r, ok := evalExpr(x.R, b, helpers).(core.Bool)
		if !ok {
			evalPanic(x.Pos, "'||' on non-boolean")
		}
		return r
	}
	l := evalExpr(x.L, b, helpers)
	r := evalExpr(x.R, b, helpers)
	switch x.Op {
	case TokEq:
		return core.Bool(valuesEqual(l, r))
	case TokNe:
		return core.Bool(!valuesEqual(l, r))
	case TokLt, TokLe, TokGt, TokGe:
		if ls, ok := l.(core.Str); ok {
			rs, ok := r.(core.Str)
			if !ok {
				evalPanic(x.Pos, "cannot order %v against %v", l.Kind(), r.Kind())
			}
			return core.Bool(cmpOrder(x.Op, strCmp(string(ls), string(rs))))
		}
		lf, rf := toFloat(l, x.Pos), toFloat(r, x.Pos)
		switch {
		case lf < rf:
			return core.Bool(cmpOrder(x.Op, -1))
		case lf > rf:
			return core.Bool(cmpOrder(x.Op, 1))
		default:
			return core.Bool(cmpOrder(x.Op, 0))
		}
	case TokPlus:
		return core.Float(toFloat(l, x.Pos) + toFloat(r, x.Pos))
	case TokMinus:
		return core.Float(toFloat(l, x.Pos) - toFloat(r, x.Pos))
	case TokStar:
		return core.Float(toFloat(l, x.Pos) * toFloat(r, x.Pos))
	case TokSlash:
		d := toFloat(r, x.Pos)
		if d == 0 {
			return core.Float(math.Inf(1))
		}
		return core.Float(toFloat(l, x.Pos) / d)
	}
	evalPanic(x.Pos, "unknown operator")
	return nil
}

// valuesEqual compares across the numeric kinds, falling back to Value
// equality for everything else.
func valuesEqual(l, r core.Value) bool {
	if isNumeric(l) && isNumeric(r) {
		return toFloat(l, Pos{}) == toFloat(r, Pos{})
	}
	return l.Equal(r)
}

func isNumeric(v core.Value) bool {
	switch v.Kind() {
	case core.KindFloat, core.KindCost, core.KindInt:
		return true
	}
	return false
}

func toFloat(v core.Value, pos Pos) float64 {
	switch x := v.(type) {
	case core.Float:
		return float64(x)
	case core.Cost:
		return float64(x)
	case core.Int:
		return float64(x)
	}
	evalPanic(pos, "numeric value required, got %v", v.Kind())
	return 0
}

func strCmp(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpOrder(op TokKind, c int) bool {
	switch op {
	case TokLt:
		return c < 0
	case TokLe:
		return c <= 0
	case TokGt:
		return c > 0
	default:
		return c >= 0
	}
}
