package prairielang

import (
	"prairie/internal/core"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

// Parse parses a Prairie specification source into its AST.
func Parse(src string) (*Spec, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.spec()
}

func (p *parser) cur() Token        { return p.toks[p.pos] }
func (p *parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *parser) atKw(kw string) bool {
	return p.cur().Kind == TokIdent && p.cur().Text == kw
}

func (p *parser) adv() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k TokKind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %v, found %v", k, p.cur().Kind)
	}
	return p.adv(), nil
}

func (p *parser) ident() (Token, error) {
	if !p.at(TokIdent) {
		return Token{}, errf(p.cur().Pos, "expected identifier, found %v", p.cur().Kind)
	}
	return p.adv(), nil
}

func (p *parser) spec() (*Spec, error) {
	s := &Spec{}
	for !p.at(TokEOF) {
		if !p.at(TokIdent) {
			return nil, errf(p.cur().Pos, "expected declaration, found %v", p.cur().Kind)
		}
		var err error
		switch p.cur().Text {
		case "algebra":
			p.adv()
			var t Token
			if t, err = p.ident(); err == nil {
				s.Name = t.Text
				_, err = p.expect(TokSemi)
			}
		case "property":
			err = p.propDecl(s)
		case "operator":
			err = p.opDecl(s, core.Operator)
		case "algorithm":
			err = p.opDecl(s, core.Algorithm)
		case "helper":
			err = p.helperDecl(s)
		case "trule":
			err = p.trule(s)
		case "irule":
			err = p.irule(s)
		default:
			err = errf(p.cur().Pos, "unknown declaration %q", p.cur().Text)
		}
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) typeName() (core.Kind, error) {
	t, err := p.ident()
	if err != nil {
		return core.KindInvalid, err
	}
	k, ok := core.KindByName(t.Text)
	if !ok {
		return core.KindInvalid, errf(t.Pos, "unknown type %q", t.Text)
	}
	return k, nil
}

func (p *parser) propDecl(s *Spec) error {
	pos := p.adv().Pos // "property"
	name, err := p.ident()
	if err != nil {
		return err
	}
	if _, err := p.expect(TokColon); err != nil {
		return err
	}
	k, err := p.typeName()
	if err != nil {
		return err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return err
	}
	s.Props = append(s.Props, &PropDecl{Pos: pos, Name: name.Text, Kind: k})
	return nil
}

func (p *parser) opDecl(s *Spec, kind core.OpKind) error {
	pos := p.adv().Pos // "operator" / "algorithm"
	name, err := p.ident()
	if err != nil {
		return err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return err
	}
	n, err := p.expect(TokNumber)
	if err != nil {
		return err
	}
	arity := int(n.Num)
	if float64(arity) != n.Num || arity < 1 {
		return errf(n.Pos, "arity must be a positive integer")
	}
	if _, err := p.expect(TokRParen); err != nil {
		return err
	}
	decl := &OpDecl{Pos: pos, Name: name.Text, Kind: kind, Arity: arity}
	if p.atKw("args") {
		p.adv()
		if _, err := p.expect(TokLParen); err != nil {
			return err
		}
		for !p.at(TokRParen) {
			if len(decl.Args) > 0 {
				if _, err := p.expect(TokComma); err != nil {
					return err
				}
			}
			arg, err := p.ident()
			if err != nil {
				return err
			}
			decl.Args = append(decl.Args, arg.Text)
		}
		p.adv() // ')'
	}
	if kind == core.Algorithm && p.atKw("implements") {
		p.adv()
		impl, err := p.ident()
		if err != nil {
			return err
		}
		decl.Implements = impl.Text
	}
	if _, err := p.expect(TokSemi); err != nil {
		return err
	}
	s.Ops = append(s.Ops, decl)
	return nil
}

func (p *parser) helperDecl(s *Spec) error {
	pos := p.adv().Pos // "helper"
	name, err := p.ident()
	if err != nil {
		return err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return err
	}
	var params []core.Kind
	for !p.at(TokRParen) {
		if len(params) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return err
			}
		}
		k, err := p.typeName()
		if err != nil {
			return err
		}
		params = append(params, k)
	}
	p.adv() // ')'
	if _, err := p.expect(TokColon); err != nil {
		return err
	}
	res, err := p.typeName()
	if err != nil {
		return err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return err
	}
	s.Helpers = append(s.Helpers, &HelperDecl{Pos: pos, Name: name.Text, Params: params, Result: res})
	return nil
}

// pattern := ( IDENT "(" pattern {"," pattern} ")" | VAR ) [":" IDENT]
func (p *parser) pattern() (*PatAST, error) {
	pos := p.cur().Pos
	var node *PatAST
	switch {
	case p.at(TokVar):
		node = &PatAST{Pos: pos, Var: p.adv().Var}
	case p.at(TokIdent):
		name := p.adv()
		node = &PatAST{Pos: pos, Op: name.Text}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		for {
			kid, err := p.pattern()
			if err != nil {
				return nil, err
			}
			node.Kids = append(node.Kids, kid)
			if p.at(TokComma) {
				p.adv()
				continue
			}
			break
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	default:
		return nil, errf(pos, "expected pattern, found %v", p.cur().Kind)
	}
	if p.at(TokColon) {
		p.adv()
		d, err := p.ident()
		if err != nil {
			return nil, err
		}
		node.Desc = d.Text
	}
	return node, nil
}

func (p *parser) ruleHeader() (name string, lhs, rhs *PatAST, err error) {
	t, err := p.ident()
	if err != nil {
		return "", nil, nil, err
	}
	name = t.Text
	if _, err = p.expect(TokColon); err != nil {
		return
	}
	if lhs, err = p.pattern(); err != nil {
		return
	}
	if _, err = p.expect(TokArrow); err != nil {
		return
	}
	rhs, err = p.pattern()
	return
}

func (p *parser) trule(s *Spec) error {
	pos := p.adv().Pos // "trule"
	name, lhs, rhs, err := p.ruleHeader()
	if err != nil {
		return err
	}
	r := &TRuleDecl{Pos: pos, Name: name, LHS: lhs, RHS: rhs}
	for {
		switch {
		case p.atKw("pretest"):
			p.adv()
			if r.PreTest, err = p.block(); err != nil {
				return err
			}
		case p.atKw("test"):
			p.adv()
			if r.Test, err = p.parenExpr(); err != nil {
				return err
			}
		case p.atKw("posttest"):
			p.adv()
			if r.PostTest, err = p.block(); err != nil {
				return err
			}
		default:
			s.TRules = append(s.TRules, r)
			return nil
		}
	}
}

func (p *parser) irule(s *Spec) error {
	pos := p.adv().Pos // "irule"
	name, lhs, rhs, err := p.ruleHeader()
	if err != nil {
		return err
	}
	r := &IRuleDecl{Pos: pos, Name: name, LHS: lhs, RHS: rhs}
	for {
		switch {
		case p.atKw("test"):
			p.adv()
			if r.Test, err = p.parenExpr(); err != nil {
				return err
			}
		case p.atKw("preopt"):
			p.adv()
			if r.PreOpt, err = p.block(); err != nil {
				return err
			}
		case p.atKw("postopt"):
			p.adv()
			if r.PostOpt, err = p.block(); err != nil {
				return err
			}
		default:
			s.IRules = append(s.IRules, r)
			return nil
		}
	}
}

func (p *parser) parenExpr() (Expr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) block() ([]*Stmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var out []*Stmt
	for !p.at(TokRBrace) {
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	p.adv() // '}'
	return out, nil
}

// stmt := IDENT "=" IDENT ";" | IDENT "." IDENT "=" expr ";"
func (p *parser) stmt() (*Stmt, error) {
	dst, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &Stmt{Pos: dst.Pos, Dst: dst.Text}
	if p.at(TokDot) {
		p.adv()
		prop, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Prop = prop.Text
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		if st.RHS, err = p.expr(); err != nil {
			return nil, err
		}
	} else {
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		src, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Src = src.Text
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return st, nil
}

// Expression grammar, lowest precedence first:
// expr := and { "||" and } ; and := cmp { "&&" cmp } ;
// cmp := add [ relop add ] ; add := mul { ("+"|"-") mul } ;
// mul := unary { ("*"|"/") unary } ; unary := ["-"|"!"] primary.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokOrOr) {
		op := p.adv()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{Pos: op.Pos}, Op: TokOrOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokAndAnd) {
		op := p.adv()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{Pos: op.Pos}, Op: TokAndAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
		op := p.adv()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Binary{exprBase: exprBase{Pos: op.Pos}, Op: op.Kind, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(TokPlus) || p.at(TokMinus) {
		op := p.adv()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{Pos: op.Pos}, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at(TokStar) || p.at(TokSlash) {
		op := p.adv()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{Pos: op.Pos}, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	if p.at(TokMinus) || p.at(TokBang) {
		op := p.adv()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{Pos: op.Pos}, Op: op.Kind, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.adv()
		return &NumLit{exprBase: exprBase{Pos: t.Pos}, Val: t.Num}, nil
	case TokString:
		p.adv()
		return &StrLit{exprBase: exprBase{Pos: t.Pos}, Val: t.Text}, nil
	case TokLParen:
		p.adv()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		switch t.Text {
		case "true", "false":
			p.adv()
			return &BoolLit{exprBase: exprBase{Pos: t.Pos}, Val: t.Text == "true"}, nil
		case "TRUE", "FALSE":
			p.adv()
			return &BoolLit{exprBase: exprBase{Pos: t.Pos}, Val: t.Text == "TRUE"}, nil
		case "DONT_CARE":
			p.adv()
			return &DontCareLit{exprBase: exprBase{Pos: t.Pos}}, nil
		}
		p.adv()
		if p.at(TokDot) {
			p.adv()
			prop, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &Member{exprBase: exprBase{Pos: t.Pos}, Desc: t.Text, Prop: prop.Text}, nil
		}
		if p.at(TokLParen) {
			p.adv()
			call := &Call{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}
			for !p.at(TokRParen) {
				if len(call.Args) > 0 {
					if _, err := p.expect(TokComma); err != nil {
						return nil, err
					}
				}
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
			}
			p.adv() // ')'
			return call, nil
		}
		return nil, errf(t.Pos, "expected '.' or '(' after identifier %q", t.Text)
	}
	return nil, errf(t.Pos, "expected expression, found %v", t.Kind)
}
