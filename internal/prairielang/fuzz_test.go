package prairielang

import (
	"os"
	"testing"
)

// FuzzParse drives the whole front end — lexer, parser, formatter —
// with arbitrary input. The invariants: Parse never panics, and for any
// input it accepts, Format produces source that reparses and formats to
// a fixed point (format ∘ parse is idempotent). Seeds cover every
// declaration form plus the shipped example specification.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"algebra a;",
		"// comment only\n",
		"algebra a;\nproperty cost : cost;\nproperty o : order;\n",
		"algebra a;\noperator RET(1);\noperator JOIN(2) args(jp);\n",
		"algebra a;\nalgorithm File_scan(1) implements RET;\nalgorithm Null(1);\n",
		"algebra a;\nhelper nlogn(float) : float;\nhelper ow(order, attrs) : bool;\n",
		"algebra a;\ntrule c:\n  JOIN(?1:D1, ?2:D2):D3 => JOIN(?2, ?1):D4\nposttest {\n  D4 = D3;\n}\n",
		"algebra a;\nirule fs:\n  RET(?1:D1):D2 => File_scan(?1):D3\npretest {\n  D3 = D2;\n}\nposttest {\n  D3.cost = 1.5;\n}\n",
		"algebra a;\ntrule g:\n  SEL(?1:D1):D2 => SEL(?1):D3\nposttest {\n  D3.f = D2.f + 2 * nlogn(D1.n) - 1;\n  D3.b = !D2.b && (D2.n <= 3 || D2.n > 7);\n}\n",
	}
	if src, err := os.ReadFile("../../examples/dslrules/rules.prairie"); err == nil {
		seeds = append(seeds, string(src))
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out := Format(spec)
		spec2, err := Parse(out)
		if err != nil {
			t.Fatalf("formatted output does not reparse: %v\n--- formatted\n%s", err, out)
		}
		if out2 := Format(spec2); out2 != out {
			t.Fatalf("format is not a fixed point\n--- first\n%s\n--- second\n%s", out, out2)
		}
	})
}
