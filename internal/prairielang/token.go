// Package prairielang implements the Prairie rule-specification
// language: a textual format for Prairie rule sets in the notation of
// the paper (T-rules with pre-test/test/post-test sections, I-rules with
// test/pre-opt/post-opt sections, descriptor assignment statements and
// helper-function calls). The paper's P2V front end is 4500 lines of
// flex and bison; this package is its Go counterpart — a hand-written
// lexer, a recursive-descent parser, a type checker against the declared
// algebra, and an interpreter that executes rule actions over descriptor
// bindings.
//
// A specification looks like:
//
//	algebra relational;
//
//	property tuple_order : order;
//	property cost : cost;
//
//	operator JOIN(2);
//	algorithm Nested_loops(2) implements JOIN;
//
//	helper cardinality(float, float, pred) : float;
//
//	irule join_nested_loops:
//	  JOIN(?1:D1, ?2:D2):D3 => Nested_loops(?1:D4, ?2):D5
//	preopt {
//	  D5 = D3;
//	  D4 = D1;
//	  D4.tuple_order = D3.tuple_order;
//	}
//	postopt {
//	  D5.cost = D4.cost + D4.num_records * D2.cost;
//	}
package prairielang

import "fmt"

// TokKind enumerates token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokVar    // ?1, ?2, ...
	TokLParen // (
	TokRParen // )
	TokLBrace // {
	TokRBrace // }
	TokComma  // ,
	TokSemi   // ;
	TokColon  // :
	TokDot    // .
	TokAssign // =
	TokArrow  // =>
	TokEq     // ==
	TokNe     // !=
	TokLt     // <
	TokLe     // <=
	TokGt     // >
	TokGe     // >=
	TokPlus   // +
	TokMinus  // -
	TokStar   // *
	TokSlash  // /
	TokAndAnd // &&
	TokOrOr   // ||
	TokBang   // !
)

var tokNames = map[TokKind]string{
	TokEOF: "end of input", TokIdent: "identifier", TokNumber: "number",
	TokString: "string", TokVar: "variable", TokLParen: "'('",
	TokRParen: "')'", TokLBrace: "'{'", TokRBrace: "'}'", TokComma: "','",
	TokSemi: "';'", TokColon: "':'", TokDot: "'.'", TokAssign: "'='",
	TokArrow: "'=>'", TokEq: "'=='", TokNe: "'!='", TokLt: "'<'",
	TokLe: "'<='", TokGt: "'>'", TokGe: "'>='", TokPlus: "'+'",
	TokMinus: "'-'", TokStar: "'*'", TokSlash: "'/'", TokAndAnd: "'&&'",
	TokOrOr: "'||'", TokBang: "'!'",
}

func (k TokKind) String() string {
	if n, ok := tokNames[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", k)
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Num  float64 // for TokNumber
	Var  int     // for TokVar
	Pos  Pos
}

// Error is a positioned specification error.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
