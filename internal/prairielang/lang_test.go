package prairielang

import (
	"strings"
	"testing"

	"prairie/internal/core"
)

const miniSpec = `
// The paper's running example, in the Prairie language.
algebra relational;

property tuple_order : order;
property join_predicate : pred;
property num_records : float;
property cost : cost;

operator JOIN(2);
operator SORT(1);
operator RET(1);

algorithm Nested_loops(2) implements JOIN;
algorithm Merge_sort(1) implements SORT;
algorithm File_scan(1) implements RET;
algorithm Null(1);

helper log2(float) : float;

/* Commutativity of joins. */
trule join_commute:
  JOIN(?1:D1, ?2:D2):D3 => JOIN(?2, ?1):D4
posttest {
  D4 = D3;
}

irule join_nested_loops:
  JOIN(?1:D1, ?2:D2):D3 => Nested_loops(?1:D4, ?2):D5
test (true)
preopt {
  D5 = D3;
  D4 = D1;
  D4.tuple_order = D3.tuple_order;
}
postopt {
  D5.cost = D4.cost + D4.num_records * D2.cost;
}

irule sort_merge_sort:
  SORT(?1:D1):D2 => Merge_sort(?1):D3
test (D2.tuple_order != DONT_CARE)
preopt {
  D3 = D2;
}
postopt {
  D3.cost = D1.cost + D3.num_records * log2(D3.num_records);
}

irule sort_null:
  SORT(?1:D1):D2 => Null(?1:D3):D4
preopt {
  D4 = D2;
  D3 = D1;
  D3.tuple_order = D2.tuple_order;
}
postopt {
  D4.cost = D3.cost;
}

irule ret_file_scan:
  RET(?1:D1):D2 => File_scan(?1):D3
preopt {
  D3 = D2;
  D3.tuple_order = DONT_CARE;
}
postopt {
  D3.cost = D1.num_records;
}
`

func miniImpls() map[string]HelperImpl {
	return map[string]HelperImpl{
		"log2": func(args []core.Value) (core.Value, error) {
			n := float64(args[0].(core.Float))
			if n < 2 {
				return core.Float(1), nil
			}
			v := 0.0
			for x := n; x > 1; x /= 2 {
				v++
			}
			return core.Float(v), nil
		},
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lexAll(`JOIN(?1:D1) => { D3.cost = 1.5 + x(2); } // c
      /* block */ == != <= >= && || !`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokKind, len(toks))
	for i, tk := range toks {
		kinds[i] = tk.Kind
	}
	want := []TokKind{
		TokIdent, TokLParen, TokVar, TokColon, TokIdent, TokRParen,
		TokArrow, TokLBrace, TokIdent, TokDot, TokIdent, TokAssign,
		TokNumber, TokPlus, TokIdent, TokLParen, TokNumber, TokRParen,
		TokSemi, TokRBrace, TokEq, TokNe, TokLe, TokGe, TokAndAnd,
		TokOrOr, TokBang, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[2].Var != 1 {
		t.Errorf("var index = %d", toks[2].Var)
	}
	if toks[12].Num != 1.5 {
		t.Errorf("number = %g", toks[12].Num)
	}
}

func TestLexerStringsAndPositions(t *testing.T) {
	toks, err := lexAll("\n  \"a\\\"b\"")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != `a"b` {
		t.Errorf("string = %q", toks[0].Text)
	}
	if toks[0].Pos.Line != 2 || toks[0].Pos.Col != 3 {
		t.Errorf("pos = %v", toks[0].Pos)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"?x", `"unterminated`, "/* open", "&", "|", "$"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q) accepted", src)
		}
	}
}

func TestParseMiniSpec(t *testing.T) {
	spec, err := Parse(miniSpec)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "relational" {
		t.Errorf("algebra = %q", spec.Name)
	}
	if len(spec.Props) != 4 || len(spec.Ops) != 7 || len(spec.Helpers) != 1 {
		t.Errorf("decls = %d props, %d ops, %d helpers", len(spec.Props), len(spec.Ops), len(spec.Helpers))
	}
	if len(spec.TRules) != 1 || len(spec.IRules) != 4 {
		t.Fatalf("rules = %d T, %d I", len(spec.TRules), len(spec.IRules))
	}
	nl := spec.IRules[0]
	if nl.Name != "join_nested_loops" || nl.Test == nil || len(nl.PreOpt) != 3 || len(nl.PostOpt) != 1 {
		t.Errorf("I-rule shape: %+v", nl)
	}
	if nl.LHS.Op != "JOIN" || nl.RHS.Op != "Nested_loops" || nl.RHS.Kids[0].Desc != "D4" {
		t.Error("pattern mis-parsed")
	}
	impl := spec.Ops[3]
	if impl.Name != "Nested_loops" || impl.Implements != "JOIN" {
		t.Errorf("implements mis-parsed: %+v", impl)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus x;",
		"property p;",
		"property p : wibble;",
		"operator J();",
		"operator J(0);",
		"operator J(1.5);",
		"trule r: ?1 =>",
		"trule r JOIN(?1):D1 => ?1",
		"irule r: X(?1):D1 => Y(?1):D2 preopt { D2.cost = ; }",
		"irule r: X(?1):D1 => Y(?1):D2 preopt { D2 = }",
		"helper h( : float;",
		"algebra;",
		"trule r: J(?1:D1):D2 => J(?1):D3 test true",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestCompileMiniSpec(t *testing.T) {
	rs, err := ParseAndCompile(miniSpec, miniImpls())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Algebra.Name != "relational" {
		t.Errorf("algebra = %q", rs.Algebra.Name)
	}
	if len(rs.TRules) != 1 || len(rs.IRules) != 4 {
		t.Fatalf("compiled rules = %d T, %d I", len(rs.TRules), len(rs.IRules))
	}
	// Hints are exact, from the statement ASTs.
	var nl *core.IRule
	for _, r := range rs.IRules {
		if r.Name == "join_nested_loops" {
			nl = r
		}
	}
	if nl == nil || nl.Hints == nil {
		t.Fatal("missing rule or hints")
	}
	wantPre := []string{"D5.*", "D4.*", "D4.tuple_order"}
	if strings.Join(nl.Hints.PreWrites, ",") != strings.Join(wantPre, ",") {
		t.Errorf("PreWrites = %v", nl.Hints.PreWrites)
	}
	if len(nl.Hints.PostWrites) != 1 || nl.Hints.PostWrites[0] != "D5.cost" {
		t.Errorf("PostWrites = %v", nl.Hints.PostWrites)
	}
	if enf := rs.EnforcerOperators(); len(enf) != 1 || enf[0].Name != "SORT" {
		t.Errorf("enforcer operators = %v", enf)
	}
}

func TestCompiledActionsExecute(t *testing.T) {
	rs, err := ParseAndCompile(miniSpec, miniImpls())
	if err != nil {
		t.Fatal(err)
	}
	ps := rs.Algebra.Props
	ord := ps.MustLookup("tuple_order")
	nr := ps.MustLookup("num_records")
	cost := ps.MustLookup("cost")

	var nl *core.IRule
	for _, r := range rs.IRules {
		if r.Name == "join_nested_loops" {
			nl = r
		}
	}
	b := core.NewBinding(ps)
	b.D("D3").Set(ord, core.OrderBy(core.A("R", "x")))
	b.D("D3").SetFloat(nr, 128)
	if !nl.RunTest(b) {
		t.Fatal("test should be true")
	}
	nl.PreOpt(b)
	if !b.D("D5").Order(ord).Equal(core.OrderBy(core.A("R", "x"))) {
		t.Error("D5 = D3 copy failed")
	}
	if !b.D("D4").Order(ord).Equal(core.OrderBy(core.A("R", "x"))) {
		t.Error("D4.tuple_order assignment failed")
	}
	// Simulate optimized inputs and run post-opt.
	b.D("D4").Set(cost, core.Cost(10))
	b.D("D4").SetFloat(nr, 4)
	b.D("D2").Set(cost, core.Cost(7))
	nl.PostOpt(b)
	if got := b.D("D5").Float(cost); got != 10+4*7 {
		t.Errorf("cost = %g, want 38", got)
	}

	// The merge-sort test uses DONT_CARE comparison and a helper call.
	var ms *core.IRule
	for _, r := range rs.IRules {
		if r.Name == "sort_merge_sort" {
			ms = r
		}
	}
	b2 := core.NewBinding(ps)
	if ms.RunTest(b2) {
		t.Error("DONT_CARE order should fail the test")
	}
	b2.D("D2").Set(ord, core.OrderBy(core.A("R", "x")))
	if !ms.RunTest(b2) {
		t.Error("concrete order should pass the test")
	}
	ms.PreOpt(b2)
	b2.D("D3").SetFloat(nr, 8)
	b2.D("D1").Set(cost, core.Cost(5))
	ms.PostOpt(b2)
	if got := b2.D("D3").Float(cost); got != 5+8*3 {
		t.Errorf("merge sort cost = %g, want 29", got)
	}
}

func TestCheckReportsErrors(t *testing.T) {
	cases := map[string]string{
		"unknown operation": `
			algebra a; property cost : cost;
			trule r: NOPE(?1:D1):D2 => NOPE(?1):D3`,
		"unknown property": `
			algebra a; property cost : cost;
			operator J(1); algorithm A(1);
			irule r: J(?1:D1):D2 => A(?1):D3 preopt { D3.wibble = 1; }`,
		"left-hand-side descriptors are never changed": `
			algebra a; property cost : cost;
			operator J(1); algorithm A(1);
			irule r: J(?1:D1):D2 => A(?1):D3 preopt { D2.cost = 1; }`,
		"not bound": `
			algebra a; property cost : cost;
			operator J(1); algorithm A(1);
			irule r: J(?1:D1):D2 => A(?1):D3 preopt { D9.cost = 1; }`,
		"expects 1 inputs": `
			algebra a; property cost : cost;
			operator J(1); algorithm A(1);
			irule r: J(?1:D1, ?2:D9):D2 => A(?1):D3`,
		"must be boolean": `
			algebra a; property cost : cost;
			operator J(1); algorithm A(1);
			irule r: J(?1:D1):D2 => A(?1):D3 test (1 + 2)`,
		"cannot compare": `
			algebra a; property cost : cost; property o : order;
			operator J(1); algorithm A(1);
			irule r: J(?1:D1):D2 => A(?1):D3 test (D2.o == D2.cost)`,
		"cannot assign": `
			algebra a; property cost : cost; property o : order;
			operator J(1); algorithm A(1);
			irule r: J(?1:D1):D2 => A(?1):D3 preopt { D3.o = 3; }`,
		"unknown helper": `
			algebra a; property cost : cost;
			operator J(1); algorithm A(1);
			irule r: J(?1:D1):D2 => A(?1):D3 test (h(1))`,
		"declared twice": `
			algebra a; property cost : cost; property cost : cost;
			operator J(1); algorithm A(1);
			irule r: J(?1:D1):D2 => A(?1):D3`,
		"argument 1": `
			algebra a; property cost : cost; property o : order;
			operator J(1); algorithm A(1); helper h(float) : bool;
			irule r: J(?1:D1):D2 => A(?1):D3 test (h(D2.o))`,
		"expects 2 arguments": `
			algebra a; property cost : cost;
			operator J(1); algorithm A(1); helper h(float, float) : bool;
			irule r: J(?1:D1):D2 => A(?1):D3 test (h(1))`,
		"unknown operator \"NOPE\"": `
			algebra a; property cost : cost;
			operator J(1); algorithm A(1) implements NOPE;
			irule r: J(?1:D1):D2 => A(?1):D3`,
	}
	for want, src := range cases {
		errs := Check(src)
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), want) {
				found = true
			}
		}
		if !found {
			t.Errorf("Check missing %q; got %v", want, errs)
		}
	}
}

func TestCompileMissingHelperImpl(t *testing.T) {
	if _, err := ParseAndCompile(miniSpec, nil); err == nil ||
		!strings.Contains(err.Error(), "no Go implementation") {
		t.Errorf("err = %v", err)
	}
	impls := miniImpls()
	impls["extra"] = impls["log2"]
	if _, err := ParseAndCompile(miniSpec, impls); err == nil ||
		!strings.Contains(err.Error(), "undeclared helper") {
		t.Errorf("err = %v", err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	spec, err := Parse(miniSpec)
	if err != nil {
		t.Fatal(err)
	}
	src2 := Format(spec)
	spec2, err := Parse(src2)
	if err != nil {
		t.Fatalf("formatted source does not parse: %v\n%s", err, src2)
	}
	if Format(spec2) != src2 {
		t.Error("Format is not a fixed point")
	}
	if len(spec2.TRules) != len(spec.TRules) || len(spec2.IRules) != len(spec.IRules) {
		t.Error("round trip lost rules")
	}
	// The round-tripped spec compiles identically.
	rs, err := Compile(spec2, miniImpls())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.IRules) != 4 {
		t.Error("round-tripped rule set differs")
	}
}

func TestFormatExprParens(t *testing.T) {
	src := `
		algebra a; property cost : cost;
		operator J(1); algorithm A(1);
		irule r: J(?1:D1):D2 => A(?1):D3
		test ((D2.cost + 1) * 2 == 4 && !(D2.cost > 3) || false)
		preopt { D3 = D2; }
		postopt { D3.cost = -(D2.cost - 1) / 2; }`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(spec)
	spec2, err := Parse(out)
	if err != nil {
		t.Fatalf("reformatted source does not parse: %v\n%s", err, out)
	}
	if Format(spec2) != out {
		t.Errorf("not a fixed point:\n%s\nvs\n%s", out, Format(spec2))
	}
}

func TestInterpRuntimePanics(t *testing.T) {
	// Division by zero yields +Inf, not a panic.
	src := `
		algebra a; property cost : cost;
		operator J(1); algorithm A(1);
		irule r: J(?1:D1):D2 => A(?1):D3
		preopt { D3 = D2; }
		postopt { D3.cost = 1 / 0; }`
	rs, err := ParseAndCompile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewBinding(rs.Algebra.Props)
	rs.IRules[0].PostOpt(b)
	if got := b.D("D3").Float(rs.Algebra.Props.MustLookup("cost")); !(got > 1e308) {
		t.Errorf("1/0 = %g", got)
	}
}

func TestArgsClause(t *testing.T) {
	src := `
		algebra a;
		property cost : cost;
		property join_predicate : pred;
		property tuple_order : order;
		operator J(2) args(join_predicate, tuple_order);
		algorithm A(2) implements J;
		irule r: J(?1:D1, ?2:D2):D3 => A(?1, ?2):D4
		preopt { D4 = D3; }
		postopt { D4.cost = 1; }`
	rs, err := ParseAndCompile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	j := rs.Algebra.MustOp("J")
	if len(j.Args) != 2 {
		t.Fatalf("Args = %v", j.Args)
	}
	if rs.Algebra.Props.At(j.Args[0]).Name != "join_predicate" {
		t.Errorf("first arg = %v", rs.Algebra.Props.At(j.Args[0]).Name)
	}
	// Unknown argument property is an error.
	bad := strings.Replace(src, "args(join_predicate, tuple_order)", "args(wibble)", 1)
	if _, err := ParseAndCompile(bad, nil); err == nil ||
		!strings.Contains(err.Error(), "unknown argument property") {
		t.Errorf("err = %v", err)
	}
	// Round trip keeps the clause.
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Format(spec), "args(join_predicate, tuple_order)") {
		t.Errorf("Format lost args clause:\n%s", Format(spec))
	}
	// Malformed clause.
	if _, err := Parse("operator J(2) args(;"); err == nil {
		t.Error("malformed args accepted")
	}
}

func TestParseAndCompileAllModules(t *testing.T) {
	base := `
		algebra modular;
		property num_records : float;
		property cost : cost;
		operator R(1);
		algorithm Scan(1) implements R;
		irule r_scan:
		  R(?1:D1):D2 => Scan(?1):D3
		preopt { D3 = D2; }
		postopt { D3.cost = D1.num_records; }`
	ext := `
		algebra modular;
		operator J(2);
		algorithm Loop(2) implements J;
		irule j_loop:
		  J(?1:D1, ?2:D2):D3 => Loop(?1, ?2):D4
		preopt { D4 = D3; }
		postopt { D4.cost = D1.cost + D1.num_records * D2.cost; }`
	rs, err := ParseAndCompileAll([]string{base, ext}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.IRules) != 2 || rs.Algebra.Name != "modular" {
		t.Errorf("rules = %d, algebra = %q", len(rs.IRules), rs.Algebra.Name)
	}
	if _, ok := rs.Algebra.Op("J"); !ok {
		t.Error("extension operator missing")
	}
	// Conflicting algebra names are rejected.
	if _, err := ParseAndCompileAll([]string{base, `algebra other;`}, nil); err == nil {
		t.Error("algebra name conflict accepted")
	}
	if _, err := ParseAndCompileAll(nil, nil); err == nil {
		t.Error("empty module list accepted")
	}
	if _, err := ParseAndCompileAll([]string{"bogus"}, nil); err == nil {
		t.Error("unparseable module accepted")
	}
}

// TestInterpOperators drives every expression operator of the action
// language through a synthetic rule.
func TestInterpOperators(t *testing.T) {
	src := `
		algebra ops;
		property cost : cost;
		property num_records : float;
		property name : string;
		operator X(1);
		algorithm Y(1) implements X;
		irule r:
		  X(?1:D1):D2 => Y(?1):D3
		test ((D2.num_records >= 2 && D2.num_records <= 10) ||
		      !(D2.name < "m") || D2.name > "zz" || 1 != 2)
		preopt { D3 = D2; }
		postopt {
		  D3.cost = -(1 - 2) * (6 / 2) + (10 - 4) / 3;
		}`
	rs, err := ParseAndCompile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps := rs.Algebra.Props
	r := rs.IRules[0]
	b := core.NewBinding(ps)
	b.D("D2").SetFloat(ps.MustLookup("num_records"), 5)
	b.D("D2").Set(ps.MustLookup("name"), core.Str("abc"))
	if !r.RunTest(b) {
		t.Error("test should pass")
	}
	r.PreOpt(b)
	r.PostOpt(b)
	// -(1-2)*(6/2) + (10-4)/3 = 1*3 + 2 = 5.
	if got := b.D("D3").Float(ps.MustLookup("cost")); got != 5 {
		t.Errorf("cost = %g, want 5", got)
	}

	// String ordering in both directions, plus equality short circuits.
	src2 := `
		algebra s; property cost : cost; property name : string;
		operator X(1); algorithm Y(1) implements X;
		irule r: X(?1:D1):D2 => Y(?1):D3
		test (("a" < "b") && ("b" <= "b") && ("c" > "b") && ("c" >= "c") &&
		      (D2.name == "hi") && (false || true) && !(true && false))
		preopt { D3 = D2; }
		postopt { D3.cost = 1; }`
	rs2, err := ParseAndCompile(src2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b2 := core.NewBinding(rs2.Algebra.Props)
	b2.D("D2").Set(rs2.Algebra.Props.MustLookup("name"), core.Str("hi"))
	if !rs2.IRules[0].RunTest(b2) {
		t.Error("string/boolean operator test failed")
	}
	b2.D("D2").Set(rs2.Algebra.Props.MustLookup("name"), core.Str("no"))
	if rs2.IRules[0].RunTest(b2) {
		t.Error("equality should fail")
	}
}

// TestTRulePretestAndTest covers compiled T-rule pre-test sections.
func TestTRulePretestAndTest(t *testing.T) {
	src := `
		algebra tr; property cost : cost; property num_records : float;
		operator J(2); algorithm A(2) implements J;
		trule split:
		  J(?1:D1, ?2:D2):D3 => J(?2, ?1):D4
		pretest { D4.num_records = D1.num_records + D2.num_records; }
		test (D4.num_records > 10)
		posttest { D4 = D3; }
		irule impl: J(?1:D1, ?2:D2):D3 => A(?1, ?2):D4
		preopt { D4 = D3; }
		postopt { D4.cost = 1; }`
	rs, err := ParseAndCompile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rs.TRules[0]
	ps := rs.Algebra.Props
	nr := ps.MustLookup("num_records")
	b := core.NewBinding(ps)
	b.D("D1").SetFloat(nr, 3)
	b.D("D2").SetFloat(nr, 4)
	if r.RunCond(b) {
		t.Error("7 > 10 should fail")
	}
	b2 := core.NewBinding(ps)
	b2.D("D1").SetFloat(nr, 30)
	b2.D("D2").SetFloat(nr, 4)
	if !r.RunCond(b2) {
		t.Error("34 > 10 should pass")
	}
	r.RunPost(b2)
	if r.Hints == nil || len(r.Hints.PreWrites) != 1 || r.Hints.PreWrites[0] != "D4.num_records" {
		t.Errorf("T-rule hints = %+v", r.Hints)
	}
}
