package server

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"prairie/internal/catalog"
	"prairie/internal/core"
	"prairie/internal/data"
	"prairie/internal/exec"
	"prairie/internal/oodb"
	"prairie/internal/p2v"
	"prairie/internal/prairielang"
	"prairie/internal/qgen"
	"prairie/internal/relopt"
	"prairie/internal/rulecheck"
	"prairie/internal/volcano"
)

// A World is one prepared rule set the service optimizes against: the
// compiled rules, a query builder that turns a wire QuerySpec into an
// initialized operator tree plus requirement, and — for worlds backed by
// a populated catalog — the execution-property mapping the differential
// harness uses to actually run returned plans.
type World struct {
	Name string
	RS   *volcano.RuleSet
	// Build turns a wire QuerySpec into (tree, requirement). The tree is
	// fully prepared (PrepareQuery applied for Prairie-generated rule
	// sets), so the server hands it straight to the optimizer.
	Build func(q QuerySpec) (*core.Expr, *core.Descriptor, error)
	// Cat is the catalog the world's queries range over (nil for the
	// DSL example world, whose relations are synthetic).
	Cat *catalog.Catalog
	// ExecProps maps the world's property names for the exec compiler;
	// zero for worlds whose plans the harness does not execute.
	ExecProps exec.Props
	// MaxN bounds QuerySpec.N for this world.
	MaxN int

	// execOnce/execDB lazily populate the world's demo database the
	// first time a request asks the server to execute its plan.
	execOnce sync.Once
	execDB   *data.DB
}

// ExecDB returns the world's demo database, generated from its catalog
// on first use (seed and per-table row count apply only then). Worlds
// without a catalog return nil — their plans cannot be executed.
func (w *World) ExecDB(seed int64, rows int) *data.DB {
	if w.Cat == nil {
		return nil
	}
	w.execOnce.Do(func() { w.execDB = data.Populate(w.Cat, seed, rows) })
	return w.execDB
}

// QuerySpec names a generated query on the wire: an expression family
// (E1..E4 for OODB worlds; relational and DSL worlds read N and ignore
// the materialize step), a width, and a join-graph shape.
type QuerySpec struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	Graph  string `json:"graph,omitempty"` // "" | "linear" | "star"
}

func (q QuerySpec) String() string {
	g := ""
	if q.Graph != "" && q.Graph != "linear" {
		g = "/" + q.Graph
	}
	return fmt.Sprintf("%s/n%d%s", q.Family, q.N, g)
}

func parseGraph(s string) (qgen.Graph, error) {
	switch s {
	case "", "linear":
		return qgen.Linear, nil
	case "star":
		return qgen.Star, nil
	}
	return 0, fmt.Errorf("unknown join graph %q (want linear or star)", s)
}

func (w *World) checkN(n int) error {
	if n < 2 || n > w.MaxN {
		return fmt.Errorf("n=%d out of range for world %s (want 2..%d)", n, w.Name, w.MaxN)
	}
	return nil
}

// OODBVolcanoWorld builds the hand-coded OODB optimizer over a catalog
// of maxN classes.
func OODBVolcanoWorld(cat *catalog.Catalog, maxN int) *World {
	o := oodb.New(cat)
	w := &World{
		Name: "oodb/volcano",
		RS:   o.VolcanoRules(),
		Cat:  cat,
		ExecProps: exec.Props{
			Ord: o.Ord, JP: o.JP, SP: o.SP, PA: o.PA, MA: o.MA, UA: o.UA,
		},
		MaxN: maxN,
	}
	w.Build = func(q QuerySpec) (*core.Expr, *core.Descriptor, error) {
		if err := w.checkN(q.N); err != nil {
			return nil, nil, err
		}
		e, err := qgen.ParseKind(q.Family)
		if err != nil {
			return nil, nil, err
		}
		g, err := parseGraph(q.Graph)
		if err != nil {
			return nil, nil, err
		}
		tree, err := qgen.BuildGraph(o, e, q.N, g)
		if err != nil {
			return nil, nil, err
		}
		return tree, core.NewDescriptor(o.Alg.Props), nil
	}
	return w
}

// OODBPrairieWorld builds the Prairie-generated OODB optimizer (the
// specification of Section 4 compiled through p2v) over a catalog of
// maxN classes.
func OODBPrairieWorld(cat *catalog.Catalog, maxN int) (*World, error) {
	o := oodb.New(cat)
	prs, err := o.PrairieRules()
	if err != nil {
		return nil, err
	}
	vrs, rep, err := p2v.Translate(prs)
	if err != nil {
		return nil, err
	}
	w := &World{
		Name: "oodb/prairie",
		RS:   vrs,
		Cat:  cat,
		ExecProps: exec.Props{
			Ord: o.Ord, JP: o.JP, SP: o.SP, PA: o.PA, MA: o.MA, UA: o.UA,
		},
		MaxN: maxN,
	}
	w.Build = func(q QuerySpec) (*core.Expr, *core.Descriptor, error) {
		if err := w.checkN(q.N); err != nil {
			return nil, nil, err
		}
		e, err := qgen.ParseKind(q.Family)
		if err != nil {
			return nil, nil, err
		}
		g, err := parseGraph(q.Graph)
		if err != nil {
			return nil, nil, err
		}
		tree, err := qgen.BuildGraph(o, e, q.N, g)
		if err != nil {
			return nil, nil, err
		}
		return rep.PrepareQuery(tree, nil)
	}
	return w, nil
}

// RelationalWorld builds the Prairie-generated centralized relational
// optimizer (the paper's [5] reconstruction) over a catalog of maxN
// relations. The query spec's family selects whether a selection is
// applied (E3/E4 add one, mirroring qgen's families).
func RelationalWorld(cat *catalog.Catalog, maxN int) (*World, error) {
	o := relopt.New(cat)
	vrs, rep, err := p2v.Translate(o.PrairieRules())
	if err != nil {
		return nil, err
	}
	w := &World{
		Name: "relational",
		RS:   vrs,
		Cat:  cat,
		ExecProps: exec.Props{
			Ord: o.Ord, JP: o.JP, SP: o.SP,
			PA: core.NoProp, MA: core.NoProp, UA: core.NoProp,
		},
		MaxN: maxN,
	}
	w.Build = func(q QuerySpec) (*core.Expr, *core.Descriptor, error) {
		if err := w.checkN(q.N); err != nil {
			return nil, nil, err
		}
		e, err := qgen.ParseKind(q.Family)
		if err != nil {
			return nil, nil, err
		}
		names := make([]string, q.N)
		for i := range names {
			names[i] = catalog.ClassName(i + 1)
		}
		spec := relopt.QuerySpec{Relations: names, Select: e.HasSelect()}
		tree, err := o.Build(spec)
		if err != nil {
			return nil, nil, err
		}
		return rep.PrepareQuery(tree, o.Requirement(spec))
	}
	return w, nil
}

// DSLHelpers are the helper implementations the examples/dslrules
// specification imports; servers loading other specifications provide
// their own map. The canonical copy lives in internal/rulecheck so the
// per-rule verifier and the server compile the example identically.
func DSLHelpers() map[string]prairielang.HelperImpl {
	return rulecheck.DSLHelpers()
}

// DSLWorld compiles a textual Prairie specification (the dslrules
// example by default) into a servable world. Queries are SORT over a
// linear JOIN chain of N synthetic relations R1..RN with halving
// cardinalities — the example's query generalized by width.
func DSLWorld(src string, helpers map[string]prairielang.HelperImpl, maxN int) (*World, error) {
	spec, err := prairielang.Parse(src)
	if err != nil {
		return nil, err
	}
	rs, err := prairielang.Compile(spec, helpers)
	if err != nil {
		return nil, err
	}
	vrs, rep, err := p2v.Translate(rs)
	if err != nil {
		return nil, err
	}
	ps := rs.Algebra.Props
	nr := ps.MustLookup("num_records")
	at := ps.MustLookup("attributes")
	jp := ps.MustLookup("join_predicate")
	ord := ps.MustLookup("tuple_order")
	retOp := rs.Algebra.MustOp("RET")
	joinOp := rs.Algebra.MustOp("JOIN")
	sortOp := rs.Algebra.MustOp("SORT")
	w := &World{Name: "dsl", RS: vrs, MaxN: maxN}
	w.Build = func(q QuerySpec) (*core.Expr, *core.Descriptor, error) {
		if err := w.checkN(q.N); err != nil {
			return nil, nil, err
		}
		ret := func(i int) *core.Expr {
			name := fmt.Sprintf("R%d", i)
			d := core.NewDescriptor(ps)
			d.SetFloat(nr, float64(int(1)<<uint(10-i%8)))
			d.Set(at, core.Attrs{core.A(name, "a")})
			leaf := core.NewLeaf(name, d)
			return core.NewNode(retOp, d.Clone(), leaf)
		}
		cur := ret(1)
		for i := 2; i <= q.N; i++ {
			r := ret(i)
			jd := core.NewDescriptor(ps)
			jd.SetFloat(nr, math.Max(cur.D.Float(nr), r.D.Float(nr)))
			jd.Set(at, cur.D.AttrList(at).Union(r.D.AttrList(at)))
			jd.Set(jp, core.EqAttr(core.A(fmt.Sprintf("R%d", i-1), "a"), core.A(fmt.Sprintf("R%d", i), "a")))
			cur = core.NewNode(joinOp, jd, cur, r)
		}
		sd := cur.D.Clone()
		sd.Set(ord, core.OrderBy(core.A("R1", "a")))
		query := core.NewNode(sortOp, sd, cur)
		return rep.PrepareQuery(query, nil)
	}
	return w, nil
}

// Registry holds the worlds a server exposes, by name.
type Registry struct {
	worlds map[string]*World
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{worlds: map[string]*World{}} }

// Add registers a world under its name; duplicate names panic (a
// server's world set is static configuration).
func (r *Registry) Add(w *World) {
	if _, dup := r.worlds[w.Name]; dup {
		panic("server: duplicate world " + w.Name)
	}
	r.worlds[w.Name] = w
}

// Lookup returns the named world.
func (r *Registry) Lookup(name string) (*World, bool) {
	w, ok := r.worlds[name]
	return w, ok
}

// Names returns the registered world names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.worlds))
	for name := range r.worlds {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultRegistry prepares the standard world set: both OODB rule-set
// flavors and the relational optimizer over freshly generated catalogs
// of maxN classes, plus — when dslSrc is non-empty — the DSL-compiled
// example rules.
func DefaultRegistry(maxN int, seed int64, dslSrc string) (*Registry, error) {
	if maxN <= 0 {
		maxN = 6
	}
	r := NewRegistry()
	r.Add(OODBVolcanoWorld(qgen.Catalog(maxN, seed, false), maxN))
	pw, err := OODBPrairieWorld(qgen.Catalog(maxN, seed, false), maxN)
	if err != nil {
		return nil, err
	}
	r.Add(pw)
	rw, err := RelationalWorld(catalog.Generate(catalog.DefaultGen(maxN, seed, true)), maxN)
	if err != nil {
		return nil, err
	}
	r.Add(rw)
	if dslSrc != "" {
		dw, err := DSLWorld(dslSrc, DSLHelpers(), maxN)
		if err != nil {
			return nil, err
		}
		r.Add(dw)
	}
	return r, nil
}
