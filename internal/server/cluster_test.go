package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"prairie/internal/cluster"
	"prairie/internal/obs"
)

// swapHandler lets the httptest servers come up before the cluster
// servers that need their URLs exist (the bootstrap chicken-and-egg of
// in-process clusters).
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testClusterN stands up n servers over one shared registry, joined as
// a static cluster; mutate tweaks each node's config (the cluster
// section included) before construction.
func testClusterN(t *testing.T, n int, mutate func(i int, cfg *Config)) ([]*Server, []*httptest.Server) {
	t.Helper()
	reg, err := DefaultRegistry(4, 101, "")
	if err != nil {
		t.Fatal(err)
	}
	swaps := make([]*swapHandler, n)
	https := make([]*httptest.Server, n)
	peers := make([]cluster.Peer, n)
	for i := 0; i < n; i++ {
		swaps[i] = &swapHandler{}
		https[i] = httptest.NewServer(swaps[i])
		t.Cleanup(https[i].Close)
		peers[i] = cluster.Peer{ID: fmt.Sprintf("n%d", i), URL: https[i].URL}
	}
	srvs := make([]*Server, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			Registry: reg,
			Cluster:  &cluster.Config{Self: peers[i].ID, Peers: peers, Secret: "test-secret"},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		srvs[i] = srv
		swaps[i].set(srv.Handler())
	}
	return srvs, https
}

// clusterQueries is a small pool spread over enough fingerprints that
// both nodes of a two-node ring own some of them.
func clusterQueries() []OptimizeRequest {
	var reqs []OptimizeRequest
	for _, q := range []QuerySpec{
		{Family: "E1", N: 2}, {Family: "E1", N: 3}, {Family: "E1", N: 4},
		{Family: "E2", N: 2}, {Family: "E2", N: 3}, {Family: "E2", N: 4},
		{Family: "E3", N: 2}, {Family: "E3", N: 3},
	} {
		reqs = append(reqs, OptimizeRequest{Ruleset: "oodb/volcano", Query: q})
	}
	return reqs
}

// TestClusterPeerFill drives the full peer-fill ladder on two nodes:
// a cold optimization on the owning node, a peer fill on the other,
// and — with an aggressive promotion threshold — a replica hit once
// the key crosses into the replicated tier. Every answer must match
// the cold plan byte-for-byte.
func TestClusterPeerFill(t *testing.T) {
	// Threshold 1.5: the second fill's decayed score (~2 minus epsilon)
	// promotes, so the third request must be served from the replica.
	_, https := testClusterN(t, 2, func(i int, cfg *Config) {
		cfg.Cluster.HotAfter = 1.5
	})
	// Find a query whose fingerprint n0 owns: its cold run stores it on
	// n0, so n1's first request must answer as a peer fill.
	var filled OptimizeRequest
	var ref string
	for _, rq := range clusterQueries() {
		cold := optimizeOK(t, https[0].URL, rq)
		if cold.CacheOutcome != "" {
			t.Fatalf("cold %v on n0: unexpected cache outcome %q", rq.Query, cold.CacheOutcome)
		}
		warm := optimizeOK(t, https[1].URL, rq)
		if warm.PlanText != cold.PlanText {
			t.Fatalf("%v: n1 plan %q != n0 plan %q", rq.Query, warm.PlanText, cold.PlanText)
		}
		if warm.CacheOutcome == "peer_fill" {
			filled, ref = rq, cold.PlanText
			break
		}
	}
	if ref == "" {
		t.Fatal("no query owned by n0 in the pool (ring pathologically unbalanced?)")
	}
	// The second fill crosses the threshold and replicates the entry
	// locally; the third request must be served as a replica hit without
	// a peer round-trip.
	second := optimizeOK(t, https[1].URL, filled)
	if second.CacheOutcome != "peer_fill" {
		t.Fatalf("second n1 request: outcome %q, want peer_fill", second.CacheOutcome)
	}
	third := optimizeOK(t, https[1].URL, filled)
	if third.CacheOutcome != "replica_hit" {
		t.Fatalf("third n1 request: outcome %q, want replica_hit", third.CacheOutcome)
	}
	if !third.CacheHit {
		t.Fatal("replica hit must report cache_hit")
	}
	for _, r := range []OptimizeResponse{second, third} {
		if r.PlanText != ref {
			t.Fatalf("peer-served plan %q != cold reference %q", r.PlanText, ref)
		}
	}
}

// TestClusterPeerDownFallback proves peer failure degrades instead of
// erroring: with the peer unreachable, every request still answers
// (the node optimizes locally), and after the failure threshold the
// peer is reported down on /healthz.
func TestClusterPeerDownFallback(t *testing.T) {
	// A dead port: bind, note the address, close again.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	reg, err := DefaultRegistry(4, 101, "")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Registry: reg,
		Cluster: &cluster.Config{
			Self: "a",
			Peers: []cluster.Peer{
				{ID: "a"},
				{ID: "b", URL: deadURL},
			},
			Secret:      "test-secret",
			DownAfter:   1,
			PeerTimeout: 100 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	// Reference plans from a plain single-node server.
	_, ref := testServer(t, nil)
	for _, rq := range clusterQueries() {
		want := optimizeOK(t, ref.URL, rq)
		got := optimizeOK(t, hs.URL, rq)
		if got.PlanText != want.PlanText {
			t.Fatalf("%v: with peer down, plan %q != reference %q", rq.Query, got.PlanText, want.PlanText)
		}
		if got.CacheOutcome != "" {
			t.Fatalf("%v: outcome %q with the only peer down", rq.Query, got.CacheOutcome)
		}
	}
	st := srv.ClusterStatus()
	if st == nil {
		t.Fatal("no cluster status on a clustered server")
	}
	if len(st.PeersDown) != 1 || st.PeersDown[0] != "b" {
		t.Fatalf("peers down = %v, want [b]", st.PeersDown)
	}
	// The same surface over HTTP: /healthz carries the cluster section.
	resp, body := httpGet(t, hs.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var hb struct {
		Cluster *cluster.Status `json:"cluster"`
	}
	if err := json.Unmarshal(body, &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Cluster == nil || hb.Cluster.NodeID != "a" || hb.Cluster.PeerCount != 2 {
		t.Fatalf("healthz cluster section = %+v", hb.Cluster)
	}
	if len(hb.Cluster.PeersDown) != 1 || hb.Cluster.PeersDown[0] != "b" {
		t.Fatalf("healthz peers_down = %v, want [b]", hb.Cluster.PeersDown)
	}
}

func httpGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, buf
}

// TestClusterEpochInvalidation proves an invalidation on one node cuts
// cached plans off cluster-wide: the fan-out advances the peer's epoch
// synchronously, so a request served by the lagging peer immediately
// after can neither hit its own stale shard nor be served a stale
// entry by the owner. Concurrent optimizations run throughout — the
// interesting interleavings are exactly the racy ones.
func TestClusterEpochInvalidation(t *testing.T) {
	srvs, https := testClusterN(t, 2, nil)
	rq := OptimizeRequest{Ruleset: "oodb/volcano", Query: QuerySpec{Family: "E2", N: 4}}
	ref := optimizeOK(t, https[0].URL, rq)
	optimizeOK(t, https[1].URL, rq) // warm both nodes

	// Concurrent load on both nodes while the epoch moves.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := optimizeOK(t, https[w].URL, rq)
				if r.PlanText != ref.PlanText {
					t.Errorf("concurrent plan diverged: %q", r.PlanText)
					return
				}
			}
		}(w)
	}
	resp, body := postJSON(t, https[0].URL+"/v1/invalidate", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invalidate: status %d: %s", resp.StatusCode, body)
	}
	var inv map[string]uint64
	if err := json.Unmarshal(body, &inv); err != nil {
		t.Fatal(err)
	}
	if inv["peers_notified"] != 1 {
		t.Fatalf("peers_notified = %d, want 1", inv["peers_notified"])
	}
	close(stop)
	wg.Wait()

	// The lagging peer must have adopted the new epoch synchronously.
	if e0, e1 := srvs[0].Cache().Epoch(), srvs[1].Cache().Epoch(); e1 < e0 {
		t.Fatalf("peer epoch %d lags invalidator epoch %d", e1, e0)
	}
	// The concurrent load legitimately re-warms the new epoch, so the
	// recomputation check needs a quiet second invalidation: with no
	// traffic in between, the next request on the peer can be served
	// neither from its own shard nor by the owner.
	resp, body = postJSON(t, https[0].URL+"/v1/invalidate", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second invalidate: status %d: %s", resp.StatusCode, body)
	}
	after := optimizeOK(t, https[1].URL, rq)
	if after.CacheHit || after.CacheOutcome != "" {
		t.Fatalf("post-invalidate request: hit=%v outcome=%q, want a recomputation",
			after.CacheHit, after.CacheOutcome)
	}
	if after.PlanText != ref.PlanText {
		t.Fatalf("post-invalidate plan %q != reference %q", after.PlanText, ref.PlanText)
	}
}

// TestClusterSingleflightCollapse fires concurrent cold requests for
// one key at both nodes: the cluster-wide singleflight must collapse
// them onto a single optimization — exactly one cache put across the
// cluster, every response carrying the same plan.
func TestClusterSingleflightCollapse(t *testing.T) {
	srvs, https := testClusterN(t, 2, nil)
	rq := OptimizeRequest{Ruleset: "oodb/volcano", Query: QuerySpec{Family: "E2", N: 4}}

	const perNode = 4
	type res struct {
		plan string
		err  error
	}
	results := make(chan res, 2*perNode)
	var start, wg sync.WaitGroup
	start.Add(1)
	for node := 0; node < 2; node++ {
		for i := 0; i < perNode; i++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				start.Wait()
				body, err := json.Marshal(rq)
				if err != nil {
					results <- res{err: err}
					return
				}
				resp, err := http.Post(https[node].URL+"/v1/optimize", "application/json", bytes.NewReader(body))
				if err != nil {
					results <- res{err: err}
					return
				}
				defer resp.Body.Close()
				raw, err := io.ReadAll(resp.Body)
				if err != nil {
					results <- res{err: err}
					return
				}
				if resp.StatusCode != http.StatusOK {
					results <- res{err: fmt.Errorf("status %d: %s", resp.StatusCode, raw)}
					return
				}
				var or OptimizeResponse
				if err := json.Unmarshal(raw, &or); err != nil {
					results <- res{err: err}
					return
				}
				results <- res{plan: or.PlanText}
			}(node)
		}
	}
	start.Done()
	wg.Wait()
	close(results)
	plans := map[string]int{}
	for r := range results {
		if r.err != nil {
			t.Fatal(r.err)
		}
		plans[r.plan]++
	}
	if len(plans) != 1 {
		t.Fatalf("divergent plans under collapse: %v", plans)
	}
	var puts int64
	for _, s := range srvs {
		puts += s.Cache().Snapshot().Puts
	}
	if puts != 1 {
		t.Fatalf("cluster-wide puts = %d, want 1 (collapse failed)", puts)
	}
}

// TestClusterNeutral proves the no-peers path is inert: a server with
// a self-only cluster config must answer byte-identically to a server
// with no cluster layer at all, cold and warm.
func TestClusterNeutral(t *testing.T) {
	_, plain := testServer(t, nil)
	reg, err := DefaultRegistry(4, 101, "")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Registry: reg,
		Cluster:  &cluster.Config{Self: "solo"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	solo := httptest.NewServer(srv.Handler())
	t.Cleanup(solo.Close)

	norm := func(r OptimizeResponse) string {
		r.ElapsedUS = 0
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	for pass := 0; pass < 2; pass++ { // cold, then warm
		for _, rq := range clusterQueries() {
			rq.IncludePlan = true
			want := norm(optimizeOK(t, plain.URL, rq))
			got := norm(optimizeOK(t, solo.URL, rq))
			if got != want {
				t.Fatalf("pass %d %v: self-only cluster response differs:\n got %s\nwant %s",
					pass, rq.Query, got, want)
			}
		}
	}
}

// TestClusterDifferential extends the service-equivalence check across
// nodes: for every pool query, the peer-filled answer one node serves
// must be byte-identical — full plan tree, cost, and rendering — to
// the cold optimization the other node ran.
func TestClusterDifferential(t *testing.T) {
	_, https := testClusterN(t, 2, nil)
	for _, rq := range clusterQueries() {
		rq.IncludePlan = true
		cold := optimizeOK(t, https[0].URL, rq)
		warm := optimizeOK(t, https[1].URL, rq)
		if warm.PlanText != cold.PlanText || warm.Cost != cold.Cost {
			t.Fatalf("%v: peer answer (%q, %g) != cold (%q, %g)",
				rq.Query, warm.PlanText, warm.Cost, cold.PlanText, cold.Cost)
		}
		cp, err := json.Marshal(cold.Plan)
		if err != nil {
			t.Fatal(err)
		}
		wp, err := json.Marshal(warm.Plan)
		if err != nil {
			t.Fatal(err)
		}
		if string(cp) != string(wp) {
			t.Fatalf("%v: peer plan tree differs from cold:\n got %s\nwant %s", rq.Query, wp, cp)
		}
	}
}

// TestClusterPeerEndpointsRequireAuth: the peer protocol rides the
// public API mux, so a plain API client — anyone who can reach
// /v1/optimize — must not be able to poison a cache slot via
// /v1/peer/put or advance the cluster epoch via /v1/peer/epoch.
// Fingerprints and canon are deterministic, so without the shared
// secret these would be open writes to known keys.
func TestClusterPeerEndpointsRequireAuth(t *testing.T) {
	srvs, https := testClusterN(t, 2, nil)
	before := srvs[0].Cache().Epoch()
	for _, path := range []string{"/v1/peer/put", "/v1/peer/epoch", "/v1/peer/get"} {
		resp, body := postJSON(t, https[0].URL+path, map[string]any{
			"world": "oodb/volcano", "fp": 1, "canon": "q",
			"epoch": uint64(1) << 60, "payload": json.RawMessage(`{}`),
		})
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("%s without the cluster secret: status %d (%s), want 401",
				path, resp.StatusCode, body)
		}
	}
	if after := srvs[0].Cache().Epoch(); after != before {
		t.Fatalf("epoch moved %d -> %d via unauthenticated peer endpoint", before, after)
	}
	if n := srvs[0].Cache().Len(); n != 0 {
		t.Fatalf("%d entries inserted via unauthenticated peer put", n)
	}
}

// TestClusterShardMetrics checks the per-shard and cluster series land
// in the Prometheus-text exposition.
func TestClusterShardMetrics(t *testing.T) {
	_, https := testClusterN(t, 2, func(i int, cfg *Config) {
		cfg.Obs = &obs.Observer{Metrics: obs.NewRegistry()}
	})
	for _, rq := range clusterQueries() {
		optimizeOK(t, https[0].URL, rq)
		optimizeOK(t, https[1].URL, rq)
	}
	_, body := httpGet(t, https[0].URL+"/metrics")
	text := string(body)
	for _, want := range []string{
		`prairie_plancache_shard_entries{shard="0"}`,
		`prairie_plancache_shard_evictions{shard="0"}`,
		"prairie_cluster_peers_down",
		"prairie_cluster_served_gets_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q", want)
		}
	}
}

// BenchmarkClusterGuard backs `make cluster-guard`: the same serving
// workload with no cluster layer ("off"), a self-only cluster attached
// ("disabled" — every key self-owned, the remote hook answers without
// an RPC), and a real two-node cluster ("on", informational). The
// cache is invalidated every iteration so each pass pays for a genuine
// miss — the path where the cluster hook actually runs.
func BenchmarkClusterGuard(b *testing.B) {
	reg, err := DefaultRegistry(4, 101, "")
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(OptimizeRequest{
		Ruleset: "oodb/volcano",
		Query:   QuerySpec{Family: "E2", N: 4},
	})
	if err != nil {
		b.Fatal(err)
	}
	bench := func(b *testing.B, srv *Server) {
		b.Helper()
		b.ReportAllocs()
		h := srv.Handler()
		for i := 0; i < b.N; i++ {
			srv.Cache().Invalidate()
			r := httptest.NewRequest(http.MethodPost, "/v1/optimize", bytes.NewReader(body))
			r.Header.Set("Content-Type", "application/json")
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, r)
			if rr.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rr.Code, rr.Body.String())
			}
		}
	}
	newSrv := func(cfg Config) *Server {
		cfg.Registry = reg
		srv, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return srv
	}
	b.Run("miss/off", func(b *testing.B) {
		bench(b, newSrv(Config{}))
	})
	b.Run("miss/disabled", func(b *testing.B) {
		srv := newSrv(Config{Cluster: &cluster.Config{Self: "solo"}})
		defer srv.Close()
		bench(b, srv)
	})
	b.Run("miss/on", func(b *testing.B) {
		swap := &swapHandler{}
		peer := httptest.NewServer(swap)
		defer peer.Close()
		self := httptest.NewServer(http.NotFoundHandler())
		defer self.Close()
		peers := []cluster.Peer{{ID: "a", URL: self.URL}, {ID: "b", URL: peer.URL}}
		peerSrv := newSrv(Config{Cluster: &cluster.Config{Self: "b", Peers: peers, Secret: "test-secret"}})
		defer peerSrv.Close()
		swap.set(peerSrv.Handler())
		srv := newSrv(Config{Cluster: &cluster.Config{Self: "a", Peers: peers, Secret: "test-secret"}})
		defer srv.Close()
		bench(b, srv)
	})
}
