package server

import (
	"context"

	"prairie/internal/cluster"
	"prairie/internal/obs"
	"prairie/internal/plancache"
	"prairie/internal/volcano"
	"prairie/internal/wire"
)

// This file adapts the transport-and-bytes cluster layer to the
// engine: clusterBackend answers peer requests out of the server's
// shared plan cache (the owner side), and remoteAdapter is the
// volcano.RemoteCache hook a serving request consults before
// optimizing a key another node owns (the requester side). The wire
// codec sits between them — plans travel as JSON trees any node can
// decode against its own copy of the world's algebra, and the
// plancache scope (a process-local nonce) never crosses the wire:
// each node rebuilds it from the world name.

// clusterBackend implements cluster.Backend over the server's shared
// plan cache and world registry.
type clusterBackend struct{ s *Server }

func (b clusterBackend) Epoch() uint64             { return b.s.cache.Epoch() }
func (b clusterBackend) AdvanceTo(e uint64) uint64 { return b.s.cache.AdvanceTo(e) }

// key rebuilds the node-local cache key of a wire key: the world name
// resolves to this process's rule-set scope.
func (b clusterBackend) key(world string, fp uint64, canon string, epoch uint64) (plancache.Key, *World, bool) {
	w, ok := b.s.cfg.Registry.Lookup(world)
	if !ok {
		return plancache.Key{}, nil, false
	}
	return plancache.Key{Fingerprint: fp, Canon: canon, Scope: w.RS.CacheScope(), Epoch: epoch}, w, true
}

func (b clusterBackend) Acquire(world string, fp uint64, canon string, epoch uint64) (cluster.Acquired, bool) {
	k, w, ok := b.key(world, fp, canon, epoch)
	if !ok || !b.s.cache.Enabled() {
		return nil, false
	}
	return &backendAcquired{world: w, ra: b.s.cache.RemoteAcquire(k)}, true
}

func (b clusterBackend) Insert(world string, fp uint64, canon string, epoch uint64, payload []byte) bool {
	k, w, ok := b.key(world, fp, canon, epoch)
	if !ok || !b.s.cache.Enabled() {
		return false
	}
	e, err := wire.DecodeEntry(w.RS.Algebra, payload)
	if err != nil {
		return false
	}
	b.s.cache.Insert(k, e)
	return true
}

// backendAcquired is one owner-side lookup, bridging the cache's
// RemoteAcquired (plans) to the peer protocol (bytes).
type backendAcquired struct {
	world *World
	ra    *volcano.RemoteAcquired
}

func (a *backendAcquired) Hit() ([]byte, bool) {
	e, ok := a.ra.Hit()
	if !ok {
		return nil, false
	}
	payload, err := wire.EncodeEntry(e)
	if err != nil {
		return nil, false
	}
	return payload, true
}

func (a *backendAcquired) Leader() bool { return a.ra.Leader() }

func (a *backendAcquired) Wait(ctx context.Context) ([]byte, bool) {
	e, ok := a.ra.Wait(ctx)
	if !ok {
		return nil, false
	}
	payload, err := wire.EncodeEntry(e)
	if err != nil {
		return nil, false
	}
	return payload, true
}

func (a *backendAcquired) Complete(payload []byte) bool {
	e, err := wire.DecodeEntry(a.world.RS.Algebra, payload)
	if err != nil {
		// An undecodable put must still resolve the flight: followers
		// are released empty to run their own searches.
		a.ra.Abandon()
		return false
	}
	a.ra.Complete(e)
	return true
}

func (a *backendAcquired) Abandon() { a.ra.Abandon() }

// remoteAdapter implements volcano.RemoteCache for one world: the
// engine hands it plancache keys, it speaks world-name + fingerprint
// to the cluster node and the wire codec to the payloads.
type remoteAdapter struct {
	node  *cluster.Node
	world *World
}

func (r *remoteAdapter) Fetch(ctx context.Context, key plancache.Key) volcano.RemoteResult {
	payload, promote, out := r.node.Fetch(ctx, r.world.Name, key.Fingerprint, key.Canon, key.Epoch)
	switch out {
	case cluster.OutcomeSelf:
		return volcano.RemoteResult{Outcome: volcano.RemoteNone}
	case cluster.OutcomeHit, cluster.OutcomeCollapsed:
		e, err := wire.DecodeEntry(r.world.RS.Algebra, payload)
		if err != nil {
			return volcano.RemoteResult{Outcome: volcano.RemoteError}
		}
		o := volcano.RemoteHit
		if out == cluster.OutcomeCollapsed {
			o = volcano.RemoteCollapsed
		}
		return volcano.RemoteResult{Outcome: o, Entry: e, StoreLocal: promote}
	case cluster.OutcomeLead:
		return volcano.RemoteResult{Outcome: volcano.RemoteLead}
	case cluster.OutcomeStale:
		return volcano.RemoteResult{Outcome: volcano.RemoteStale}
	case cluster.OutcomeMiss, cluster.OutcomeDown:
		// A down owner degrades exactly like a miss: optimize locally.
		return volcano.RemoteResult{Outcome: volcano.RemoteMiss}
	default:
		return volcano.RemoteResult{Outcome: volcano.RemoteError}
	}
}

func (r *remoteAdapter) Offer(key plancache.Key, e volcano.RemoteEntry) bool {
	if r.node.Owns(r.world.Name, key.Fingerprint) {
		return true
	}
	if payload, err := wire.EncodeEntry(e); err == nil {
		r.node.Offer(r.world.Name, key.Fingerprint, key.Canon, key.Epoch, payload)
	} else {
		// An unencodable entry can never complete the owner's lease;
		// release its followers instead of letting the lease time out.
		r.node.Abandon(r.world.Name, key.Fingerprint, key.Canon, key.Epoch)
	}
	// Store locally only when the key is hot: a cold remote-owned
	// entry's capacity belongs to its shard.
	return r.node.Hot(r.world.Name, key.Fingerprint)
}

func (r *remoteAdapter) Abandon(key plancache.Key) {
	if r.node.Owns(r.world.Name, key.Fingerprint) {
		return
	}
	r.node.Abandon(r.world.Name, key.Fingerprint, key.Canon, key.Epoch)
}

// shardGauge is one cache shard's exposition pair
// (prairie_plancache_shard_{entries,evictions}{shard="i"}).
type shardGauge struct {
	entries   *obs.Gauge
	evictions *obs.Gauge
}

// remote returns the world's RemoteCache hook, nil off-cluster.
func (s *Server) remote(world *World) volcano.RemoteCache {
	if s.cluster == nil {
		return nil
	}
	return s.remotes[world.Name]
}

// refreshGauges publishes the point-in-time per-shard and cluster
// gauges; the exposition handler calls it before every scrape (the
// registry is pull-based with no collect hooks).
func (s *Server) refreshGauges() {
	for i, st := range s.cache.Shards() {
		if i >= len(s.shardGauges) {
			break
		}
		s.shardGauges[i].entries.Set(float64(st.Entries))
		s.shardGauges[i].evictions.Set(float64(st.Evictions))
	}
	if s.cluster != nil {
		s.cluster.RefreshGauges()
	}
}
