package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"prairie/internal/obs"
)

// benchOptimizeHTTP drives one optimize request per iteration straight
// through the server's handler (no sockets: the measure is the serving
// path, not the kernel). The cache is disabled in the guard configs so
// every iteration pays for a real search — the recorder's cost is
// judged against genuine optimization work, like the other guards.
func benchOptimizeHTTP(b *testing.B, srv *Server, body []byte) {
	b.Helper()
	b.ReportAllocs()
	h := srv.Handler()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest(http.MethodPost, "/v1/optimize", bytes.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, r)
		if rr.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rr.Code, rr.Body.String())
		}
	}
}

// BenchmarkFlightGuard backs `make flight-guard`: the same serving
// workload with the flight recorder absent ("off"), attached but
// zero-capacity ("disabled" — one Enabled() branch, Begin returns nil,
// every downstream hook is a nil no-op), and fully recording with the
// per-phase histograms live ("on", informational). The guard target
// fails the build if disabled drifts more than ~2% from off. Workloads
// are the longest figure points so the bar clears scheduler noise.
func BenchmarkFlightGuard(b *testing.B) {
	reg, err := DefaultRegistry(4, 101, "")
	if err != nil {
		b.Fatal(err)
	}
	newSrv := func(cfg Config) *Server {
		cfg.Registry = reg
		cfg.CacheSize = -1
		srv, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return srv
	}
	for _, wl := range []struct {
		name, family string
		n            int
	}{
		{"fig11", "E2", 4},
		{"fig13", "E4", 3},
	} {
		body, err := json.Marshal(OptimizeRequest{
			Ruleset: "oodb/volcano",
			Query:   QuerySpec{Family: wl.family, N: wl.n},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(wl.name+"/off", func(b *testing.B) {
			benchOptimizeHTTP(b, newSrv(Config{}), body)
		})
		b.Run(wl.name+"/disabled", func(b *testing.B) {
			benchOptimizeHTTP(b, newSrv(Config{
				Flight: obs.NewFlightRecorder(obs.FlightConfig{}),
			}), body)
		})
		b.Run(wl.name+"/on", func(b *testing.B) {
			m := obs.NewRegistry()
			benchOptimizeHTTP(b, newSrv(Config{
				Obs:    &obs.Observer{Metrics: m},
				Flight: obs.NewFlightRecorderObserved(obs.FlightConfig{Capacity: 512}, m),
			}), body)
		})
	}
}
