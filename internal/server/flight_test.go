package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"prairie/internal/obs"
)

// flightServer is testServer with an always-retaining flight recorder
// (nanosecond slow threshold: every request classifies slow) and a
// metrics registry so the per-phase histograms exist.
func flightServer(t *testing.T, mutate func(*Config)) (*Server, string) {
	t.Helper()
	srv, hs := testServer(t, func(cfg *Config) {
		cfg.Obs = &obs.Observer{Metrics: obs.NewRegistry()}
		cfg.Flight = obs.NewFlightRecorderObserved(obs.FlightConfig{
			Capacity:      32,
			SlowThreshold: time.Nanosecond,
		}, cfg.Obs.Metrics)
		if mutate != nil {
			mutate(cfg)
		}
	})
	return srv, hs.URL
}

// debugRecord is the subset of the flight-record JSON the tests assert
// on; field names mirror obs.RequestRecord's wire form.
type debugRecord struct {
	ID              string `json:"id"`
	TraceID         string `json:"trace_id"`
	ParentSpan      string `json:"parent_span"`
	Endpoint        string `json:"endpoint"`
	Ruleset         string `json:"ruleset"`
	Query           string `json:"query"`
	Budget          string `json:"budget"`
	Status          int    `json:"status"`
	Outcome         string `json:"outcome"`
	Error           string `json:"error"`
	AdmissionWaitUS int64  `json:"admission_wait_us"`
	Cache           *struct {
		Outcome string `json:"outcome"`
		Epoch   uint64 `json:"epoch"`
	} `json:"cache"`
	Tier *struct {
		Requested string `json:"requested"`
		Served    string `json:"served"`
		Routed    string `json:"routed"`
		Class     string `json:"class"`
	} `json:"tier"`
	Search *struct {
		Groups       int    `json:"groups"`
		Exprs        int    `json:"exprs"`
		Degraded     bool   `json:"degraded"`
		DegradeCause string `json:"degrade_cause"`
	} `json:"search"`
	Exec *struct {
		Rows int `json:"rows"`
		Ops  []struct {
			Parent  int    `json:"parent"`
			Op      string `json:"op"`
			RowsOut int64  `json:"rows_out"`
		} `json:"ops"`
	} `json:"exec"`
	Refinement *struct {
		Outcome string `json:"outcome"`
	} `json:"refinement"`
	Phases []struct {
		Phase obs.Phase `json:"phase"`
	} `json:"phases"`
}

func fetchRecord(t *testing.T, base, id string) debugRecord {
	t.Helper()
	resp, err := http.Get(base + "/v1/debug/requests/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("record %s: status %d", id, resp.StatusCode)
	}
	var rec debugRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatalf("record %s: %v", id, err)
	}
	return rec
}

func hasPhase(rec debugRecord, p obs.Phase) bool {
	for _, sp := range rec.Phases {
		if sp.Phase == p {
			return true
		}
	}
	return false
}

// TestFlightEndToEnd: one optimize request is fully reconstructable
// from /v1/debug/requests/{id} — correlation headers out, inbound
// traceparent joined, cache/tier/search sections and the phase timeline
// populated, and the per-phase histograms fed.
func TestFlightEndToEnd(t *testing.T) {
	_, base := flightServer(t, nil)

	const tid = "0af7651916cd43dd8448eb211c80319c"
	const span = "b7ad6b7169203331"
	body := strings.NewReader(`{"ruleset":"oodb/volcano","query":{"family":"E2","n":3},"budget":"interactive"}`)
	req, err := http.NewRequest(http.MethodPost, base+"/v1/optimize", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+tid+"-"+span+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var or OptimizeResponse
	err = json.NewDecoder(resp.Body).Decode(&or)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: status %d err %v", resp.StatusCode, err)
	}

	id := resp.Header.Get("X-Request-Id")
	if id == "" || or.RequestID != id {
		t.Fatalf("request id: header %q, body %q", id, or.RequestID)
	}
	if tp := resp.Header.Get("Traceparent"); tp != "00-"+tid+"-"+id+"-01" {
		t.Fatalf("outbound traceparent %q", tp)
	}

	// The index lists it.
	iresp, err := http.Get(base + "/v1/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var idx struct {
		Requests []struct {
			ID string `json:"id"`
		} `json:"requests"`
	}
	err = json.NewDecoder(iresp.Body).Decode(&idx)
	iresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range idx.Requests {
		found = found || e.ID == id
	}
	if !found {
		t.Fatalf("index does not list %s: %+v", id, idx)
	}

	rec := fetchRecord(t, base, id)
	if rec.TraceID != tid || rec.ParentSpan != span {
		t.Fatalf("trace join: trace=%s parent=%s", rec.TraceID, rec.ParentSpan)
	}
	if rec.Endpoint != "/v1/optimize" || rec.Ruleset != "oodb/volcano" ||
		rec.Query != "E2/n3" || rec.Budget != "interactive" {
		t.Fatalf("request info: %+v", rec)
	}
	if rec.Status != http.StatusOK || rec.Outcome != "ok" {
		t.Fatalf("outcome: status %d outcome %q", rec.Status, rec.Outcome)
	}
	if rec.Cache == nil || rec.Cache.Outcome != "miss" {
		t.Fatalf("cache section: %+v", rec.Cache)
	}
	if rec.Tier == nil || rec.Tier.Requested != "full" || rec.Tier.Served != "full" {
		t.Fatalf("tier section: %+v", rec.Tier)
	}
	if rec.Search == nil || rec.Search.Groups == 0 || rec.Search.Exprs == 0 {
		t.Fatalf("search section: %+v", rec.Search)
	}
	if !hasPhase(rec, obs.PhaseAdmission) || !hasPhase(rec, obs.PhaseCache) || !hasPhase(rec, obs.PhaseFull) {
		t.Fatalf("phase timeline incomplete: %+v", rec.Phases)
	}

	// Chrome export of the same record.
	tr, err := http.Get(base + "/v1/debug/requests/" + id + "?format=trace")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	err = json.NewDecoder(tr.Body).Decode(&doc)
	tr.Body.Close()
	if err != nil || len(doc.TraceEvents) == 0 {
		t.Fatalf("trace export: err %v events %d", err, len(doc.TraceEvents))
	}

	// The per-phase histograms saw the request.
	_, metrics := getJSONBody(t, base+"/metrics")
	if !strings.Contains(string(metrics), "prairie_phase_full_seconds_count 1") {
		t.Fatalf("phase histogram not fed:\n%s", metrics)
	}

	// A repeat of the same request is recorded as a cache hit.
	or2 := optimizeOK(t, base, OptimizeRequest{
		Ruleset: "oodb/volcano",
		Query:   QuerySpec{Family: "E2", N: 3},
		Budget:  "interactive",
	})
	if !or2.CacheHit {
		t.Fatal("repeat request missed the cache")
	}
	hit := fetchRecord(t, base, or2.RequestID)
	if hit.Cache == nil || hit.Cache.Outcome != "hit" {
		t.Fatalf("hit record cache section: %+v", hit.Cache)
	}
}

// TestFlightDegradedAndError: degraded and errored requests land in the
// recorder with their cause, reconstructable after the fact.
func TestFlightDegradedAndError(t *testing.T) {
	_, base := flightServer(t, nil)

	or := optimizeOK(t, base, OptimizeRequest{
		Ruleset: "oodb/volcano",
		Query:   QuerySpec{Family: "E4", N: 3},
		Budget:  "tiny",
	})
	if !or.Degraded {
		t.Fatal("tiny budget did not degrade (test premise broken)")
	}
	rec := fetchRecord(t, base, or.RequestID)
	if rec.Outcome != "degraded" || rec.Search == nil || !rec.Search.Degraded || rec.Search.DegradeCause == "" {
		t.Fatalf("degraded record: outcome %q search %+v", rec.Outcome, rec.Search)
	}

	resp, _ := postJSON(t, base+"/v1/optimize", OptimizeRequest{
		Ruleset: "oodb/volcano",
		Query:   QuerySpec{Family: "E2", N: 3},
		Budget:  "no-such-budget",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad budget: status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("errored request carries no X-Request-Id")
	}
	erec := fetchRecord(t, base, id)
	if erec.Outcome != "error" || erec.Status != http.StatusBadRequest ||
		!strings.Contains(erec.Error, "no-such-budget") {
		t.Fatalf("error record: %+v", erec)
	}
}

// TestFlightRefinementLink: an auto-tier miss serves greedy, spawns a
// background refinement, and the refinement's outcome is attached to
// the originating request's record after it lands.
func TestFlightRefinementLink(t *testing.T) {
	srv, base := flightServer(t, nil)

	or := optimizeOK(t, base, OptimizeRequest{
		Ruleset: "oodb/volcano",
		Query:   QuerySpec{Family: "E3", N: 3},
		Tier:    "auto",
	})
	if or.PlannerTier != "greedy" {
		t.Fatalf("auto miss served tier %q, want greedy", or.PlannerTier)
	}
	srv.Router().Wait()

	rec := fetchRecord(t, base, or.RequestID)
	if rec.Tier == nil || rec.Tier.Requested != "auto" || rec.Tier.Served != "greedy" {
		t.Fatalf("tier section: %+v", rec.Tier)
	}
	if rec.Tier.Routed != "refine" || len(rec.Tier.Class) != 16 {
		t.Fatalf("router decision: %+v", rec.Tier)
	}
	if rec.Refinement == nil {
		t.Fatal("refinement never linked back to the request")
	}
	switch rec.Refinement.Outcome {
	case "swapped", "stale":
	default:
		t.Fatalf("refinement outcome %q", rec.Refinement.Outcome)
	}
}

// TestFlightExecute: "execute": true runs the plan and the record's
// per-operator stats agree with the reported cardinality.
func TestFlightExecute(t *testing.T) {
	_, base := flightServer(t, nil)

	or := optimizeOK(t, base, OptimizeRequest{
		Ruleset: "oodb/volcano",
		Query:   QuerySpec{Family: "E2", N: 3},
		Execute: true,
	})
	if or.Exec == nil {
		t.Fatal("execute returned no summary")
	}
	rec := fetchRecord(t, base, or.RequestID)
	if rec.Exec == nil || rec.Exec.Rows != or.Exec.Rows || len(rec.Exec.Ops) == 0 {
		t.Fatalf("exec section: %+v vs summary %+v", rec.Exec, or.Exec)
	}
	root := rec.Exec.Ops[0]
	if root.Parent != -1 || root.RowsOut != int64(or.Exec.Rows) {
		t.Fatalf("root op %+v, rows %d", root, or.Exec.Rows)
	}
	if !hasPhase(rec, obs.PhaseExec) {
		t.Fatal("exec phase missing from the timeline")
	}
}

// TestFlightNeutral: with the recorder off the response carries no
// correlation surface and the optimization outcome is byte-identical to
// a recorded server's.
func TestFlightNeutral(t *testing.T) {
	req := OptimizeRequest{
		Ruleset: "oodb/volcano",
		Query:   QuerySpec{Family: "E3", N: 4},
		Budget:  "interactive",
	}
	_, off := testServer(t, nil)
	_, on := flightServer(t, nil)

	resp, body := postJSON(t, off.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("off server: status %d: %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-Request-Id"); h != "" {
		t.Fatalf("recorder off but X-Request-Id = %q", h)
	}
	var offResp OptimizeResponse
	if err := json.Unmarshal(body, &offResp); err != nil {
		t.Fatal(err)
	}
	if offResp.RequestID != "" {
		t.Fatalf("recorder off but request_id = %q", offResp.RequestID)
	}
	dresp, err := http.Get(off.URL + "/v1/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("recorder off but /v1/debug/requests mounted: %d", dresp.StatusCode)
	}

	onResp := optimizeOK(t, on, req)
	if offResp.PlanText != onResp.PlanText || offResp.Cost != onResp.Cost ||
		offResp.Stats != onResp.Stats || offResp.Degraded != onResp.Degraded {
		t.Fatalf("recorder changed the answer:\noff %+v\non  %+v", offResp, onResp)
	}
}

// TestHealthzBody: /healthz reports the serving state as JSON and keeps
// the 200/503 status contract across draining.
func TestHealthzBody(t *testing.T) {
	srv, hs := testServer(t, nil)

	resp, body := getJSONBody(t, hs.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var h struct {
		Status     string `json:"status"`
		UptimeS    *int64 `json:"uptime_s"`
		Inflight   *int   `json:"inflight"`
		QueueDepth *int64 `json:"queue_depth"`
		Draining   bool   `json:"draining"`
		CacheEpoch *int64 `json:"cache_epoch"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.Draining ||
		h.UptimeS == nil || h.Inflight == nil || h.QueueDepth == nil || h.CacheEpoch == nil {
		t.Fatalf("healthz body: %s", body)
	}

	srv.BeginDrain()
	resp, body = getJSONBody(t, hs.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" || !h.Draining {
		t.Fatalf("draining healthz body: %s", body)
	}
}

func getJSONBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}
