// Package server exposes the optimizer as an HTTP/JSON service: a
// registry of prepared rule sets ("worlds"), per-request budget classes
// mapped onto volcano.Budget, one cross-query plan cache shared by every
// request, and the observability surface of internal/obs. Robustness is
// the point of the package: admission control with a bounded in-flight
// semaphore and a queue-wait deadline (load is shed with 429/503 +
// Retry-After, never a partial plan), per-request timeouts propagated
// through OptimizeContext (over-deadline searches degrade gracefully and
// say so), panic isolation per request, and graceful shutdown that
// drains in-flight optimizations before the process exits.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"prairie/internal/cluster"
	"prairie/internal/exec"
	"prairie/internal/obs"
	"prairie/internal/volcano"
)

// Config tunes a Server. The zero value of every field selects a
// sensible default.
type Config struct {
	// Registry holds the servable worlds (required).
	Registry *Registry
	// CacheSize is the shared plan-cache capacity (entries); 0 = 512,
	// negative = disabled.
	CacheSize int
	// MaxInflight bounds concurrently running optimizations; 0 = 2 ×
	// GOMAXPROCS. Requests beyond it queue.
	MaxInflight int
	// MaxQueue bounds queued (admitted-but-waiting) requests; beyond it
	// requests are shed immediately with 429. 0 = 4 × MaxInflight.
	MaxQueue int
	// QueueWait is how long a queued request may wait for a slot before
	// being shed with 503. 0 = 250ms.
	QueueWait time.Duration
	// DefaultTimeout applies when a request names none; 0 = 5s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps request timeouts; 0 = 30s.
	MaxTimeout time.Duration
	// MaxBatchWorkers caps the per-batch worker count; 0 = GOMAXPROCS.
	MaxBatchWorkers int
	// MaxBatchItems caps items per batch request; 0 = 256.
	MaxBatchItems int
	// Budgets extends (and can override) the built-in budget classes.
	Budgets map[string]volcano.Budget
	// Router tunes the adaptive tier router behind `"tier": "auto"`
	// requests (see volcano.RouterConfig); the zero value selects the
	// engine defaults.
	Router volcano.RouterConfig
	// Obs attaches metrics/tracing; nil serves /metrics from an empty
	// registry.
	Obs *obs.Observer
	// Flight is the request flight recorder behind /v1/debug/requests.
	// nil — or a zero-capacity recorder — disables all per-request
	// recording and phase timing, keeping the request path byte-identical
	// to a build without the recorder.
	Flight *obs.FlightRecorder
	// Log receives structured request/drain/refinement logs; nil
	// disables logging.
	Log *obs.Logger
	// ExecRows sizes each generated table of a world's demo database
	// when a request sets "execute": true; 0 = 64.
	ExecRows int
	// ExecSeed seeds the generated demo data; 0 = 101.
	ExecSeed int64
	// ExecWorkers bounds executor parallelism for executed requests;
	// 0 = GOMAXPROCS, negative = serial.
	ExecWorkers int
	// Cluster joins this server to a static peer group sharing one
	// logical plan cache (see internal/cluster): each canonical query
	// fingerprint gets an owning node on a consistent-hash ring, local
	// misses ask the owner before optimizing, and invalidations fan
	// out. nil (the default) keeps the server single-node and its
	// request path byte-identical to a build without the cluster layer.
	Cluster *cluster.Config
}

func (c *Config) maxInflight() int {
	if c.MaxInflight > 0 {
		return c.MaxInflight
	}
	return 2 * runtime.GOMAXPROCS(0)
}

func (c *Config) maxQueue() int {
	if c.MaxQueue > 0 {
		return c.MaxQueue
	}
	return 4 * c.maxInflight()
}

func (c *Config) queueWait() time.Duration {
	if c.QueueWait > 0 {
		return c.QueueWait
	}
	return 250 * time.Millisecond
}

func (c *Config) defaultTimeout() time.Duration {
	if c.DefaultTimeout > 0 {
		return c.DefaultTimeout
	}
	return 5 * time.Second
}

func (c *Config) maxTimeout() time.Duration {
	if c.MaxTimeout > 0 {
		return c.MaxTimeout
	}
	return 30 * time.Second
}

func (c *Config) maxBatchWorkers() int {
	if c.MaxBatchWorkers > 0 {
		return c.MaxBatchWorkers
	}
	return runtime.GOMAXPROCS(0)
}

func (c *Config) maxBatchItems() int {
	if c.MaxBatchItems > 0 {
		return c.MaxBatchItems
	}
	return 256
}

func (c *Config) execRows() int {
	if c.ExecRows > 0 {
		return c.ExecRows
	}
	return 64
}

func (c *Config) execSeed() int64 {
	if c.ExecSeed != 0 {
		return c.ExecSeed
	}
	return 101
}

func (c *Config) execWorkers() int {
	switch {
	case c.ExecWorkers > 0:
		return c.ExecWorkers
	case c.ExecWorkers < 0:
		return 0
	}
	return runtime.GOMAXPROCS(0)
}

func (c *Config) cacheSize() int {
	switch {
	case c.CacheSize > 0:
		return c.CacheSize
	case c.CacheSize < 0:
		return 0
	}
	return 512
}

// defaultBudgets are the built-in budget classes. "default" runs
// unbounded (modulo the request timeout); "interactive" trades
// optimality for tail latency; "batch" allows a long search; "tiny" is
// deliberately small so degraded behaviour is reachable in tests.
func defaultBudgets() map[string]volcano.Budget {
	return map[string]volcano.Budget{
		"default":     {},
		"interactive": {Timeout: 200 * time.Millisecond, MaxExprs: 200_000},
		"batch":       {Timeout: 2 * time.Second},
		"tiny":        {MaxExprs: 400},
	}
}

// Server is the optimizer service.
type Server struct {
	cfg     Config
	budgets map[string]volcano.Budget
	cache   *volcano.PlanCache
	router  *volcano.Router
	sem     chan struct{}
	waiting atomic.Int64
	// inflightMu guards inflightN: requests past the draining gate, which
	// Drain waits out. The draining check and the increment happen under
	// one lock so a request can never slip in after Drain observed zero.
	inflightMu   sync.Mutex
	inflightCond *sync.Cond
	inflightN    int
	draining     atomic.Bool
	mux          *http.ServeMux
	started      time.Time

	// cluster is the node's membership when Config.Cluster is set (nil
	// single-node); remotes holds the per-world RemoteCache hooks and
	// shardGauges the per-shard exposition gauges refreshed at scrape
	// time.
	cluster     *cluster.Node
	remotes     map[string]volcano.RemoteCache
	shardGauges []shardGauge

	// metrics (nil registry → nil metrics, every sink is nil-safe)
	mRequests  *obs.Counter
	mShed429   *obs.Counter
	mShed503   *obs.Counter
	mErrors    *obs.Counter
	mPanics    *obs.Counter
	mDegraded  *obs.Counter
	mHits      *obs.Counter
	mDrained   *obs.Counter
	hLatency   *obs.Histogram
	hQueueWait *obs.Histogram
	// hPhase holds the per-phase latency histograms
	// (prairie_phase_<phase>_seconds); populated only with a metrics
	// registry, and fed only for flight-recorded requests — phase
	// timing is off whenever the recorder is.
	hPhase map[obs.Phase]*obs.Histogram
}

// New builds a Server over cfg.Registry.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil || len(cfg.Registry.Names()) == 0 {
		return nil, errors.New("server: config needs a non-empty Registry")
	}
	budgets := defaultBudgets()
	for name, b := range cfg.Budgets {
		budgets[name] = b
	}
	s := &Server{
		cfg:     cfg,
		budgets: budgets,
		cache:   volcano.NewPlanCache(cfg.cacheSize()),
		router:  volcano.NewRouterObserved(cfg.Router, cfg.Obs.MetricsOrNil()),
		sem:     make(chan struct{}, cfg.maxInflight()),
	}
	s.inflightCond = sync.NewCond(&s.inflightMu)
	s.started = time.Now()
	if reg := cfg.Obs.MetricsOrNil(); reg != nil {
		s.mRequests = reg.Counter("prairie_server_requests_total")
		s.mShed429 = reg.Counter("prairie_server_shed_queue_full_total")
		s.mShed503 = reg.Counter("prairie_server_shed_queue_wait_total")
		s.mErrors = reg.Counter("prairie_server_errors_total")
		s.mPanics = reg.Counter("prairie_server_panics_total")
		s.mDegraded = reg.Counter("prairie_server_degraded_total")
		s.mHits = reg.Counter("prairie_server_cache_hits_total")
		s.mDrained = reg.Counter("prairie_server_drain_refused_total")
		s.hLatency = reg.Histogram("prairie_server_optimize_seconds", nil)
		s.hQueueWait = reg.Histogram("prairie_server_queue_wait_seconds", nil)
		s.hPhase = map[obs.Phase]*obs.Histogram{
			obs.PhaseAdmission: reg.Histogram("prairie_phase_admission_seconds", nil),
			obs.PhaseCache:     reg.Histogram("prairie_phase_cache_seconds", nil),
			obs.PhaseGreedy:    reg.Histogram("prairie_phase_greedy_seconds", nil),
			obs.PhaseFull:      reg.Histogram("prairie_phase_full_seconds", nil),
			obs.PhaseRefine:    reg.Histogram("prairie_phase_refine_seconds", nil),
			obs.PhaseExec:      reg.Histogram("prairie_phase_exec_seconds", nil),
		}
	}
	if reg := cfg.Obs.MetricsOrNil(); reg != nil {
		// One gauge pair per cache shard; the count is fixed at
		// construction, the values refresh at scrape time.
		for i := range s.cache.Shards() {
			shard := fmt.Sprintf("%d", i)
			s.shardGauges = append(s.shardGauges, shardGauge{
				entries:   reg.Gauge(obs.Label("prairie_plancache_shard_entries", "shard", shard)),
				evictions: reg.Gauge(obs.Label("prairie_plancache_shard_evictions", "shard", shard)),
			})
		}
	}
	if cfg.Cluster != nil {
		node, err := cluster.New(*cfg.Cluster, clusterBackend{s: s}, cfg.Obs.MetricsOrNil())
		if err != nil {
			return nil, err
		}
		s.cluster = node
		s.remotes = make(map[string]volcano.RemoteCache)
		for _, name := range cfg.Registry.Names() {
			world, _ := cfg.Registry.Lookup(name)
			s.remotes[name] = &remoteAdapter{node: node, world: world}
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/optimize", s.guard(s.handleOptimize))
	s.mux.HandleFunc("/v1/batch", s.guard(s.handleBatch))
	s.mux.HandleFunc("/v1/rulesets", s.guard(s.handleRulesets))
	s.mux.HandleFunc("/v1/invalidate", s.guard(s.handleInvalidate))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	if s.cluster != nil {
		// The peer endpoints authenticate themselves with the shared
		// cluster secret (cluster.AuthHeader); they deliberately bypass
		// s.guard — a peer get is bounded cache work, not an
		// optimization, and parking it behind the admission queue would
		// add local queue wait to every remote fill and let one
		// saturated node stall its peers' misses.
		s.mux.Handle(cluster.PathPrefix, s.cluster.Handler())
	}
	// Observability exposition: delegate to the obs mux so the service
	// surface and the standalone exposition stay identical; the wrapper
	// publishes the point-in-time shard/cluster gauges first.
	om := obs.NewMux(cfg.Obs.MetricsOrNil(), cfg.Obs.TracerOrNil(), cfg.Flight)
	oh := http.Handler(om)
	if len(s.shardGauges) > 0 || s.cluster != nil {
		oh = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			s.refreshGauges()
			om.ServeHTTP(w, r)
		})
	}
	paths := []string{"/metrics", "/vars", "/trace", "/debug/pprof/"}
	if cfg.Flight.Enabled() {
		paths = append(paths, "/v1/debug/requests", "/v1/debug/requests/")
	}
	for _, p := range paths {
		s.mux.Handle(p, oh)
	}
	return s, nil
}

// Close releases the server's cluster membership (outstanding leases
// are abandoned, in-flight offers drained); call it after Drain on
// shutdown. Safe on a single-node server.
func (s *Server) Close() {
	if s.cluster != nil {
		s.cluster.Close()
	}
}

// ClusterStatus snapshots the cluster membership; nil single-node.
func (s *Server) ClusterStatus() *cluster.Status {
	if s.cluster == nil {
		return nil
	}
	st := s.cluster.Status()
	return &st
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the shared plan cache (tests and the invalidate
// endpoint).
func (s *Server) Cache() *volcano.PlanCache { return s.cache }

// Router exposes the shared tier router: tests and benches use its
// Wait/Snapshot to synchronize with background refinements and read
// the routing mix. In-flight refiners are deliberately not drained by
// Drain — they only ever improve the in-memory cache, so process exit
// may simply abandon them.
func (s *Server) Router() *volcano.Router { return s.router }

// BeginDrain gates new work off: subsequent optimize/batch requests are
// refused with 503 and /healthz reports draining.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain begins draining and blocks until every in-flight request has
// been answered or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.inflightMu.Lock()
		for s.inflightN > 0 {
			s.inflightCond.Wait()
		}
		s.inflightMu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// The waiter goroutine exits once the last request finishes and
		// broadcasts; nothing holds it beyond that.
		return ctx.Err()
	}
}

// track counts a request into the drain set, refusing when draining.
// The check and increment share inflightMu so Drain can never observe
// zero while an admitted request is about to start.
func (s *Server) track() bool {
	s.inflightMu.Lock()
	defer s.inflightMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflightN++
	return true
}

func (s *Server) untrack() {
	s.inflightMu.Lock()
	s.inflightN--
	if s.inflightN == 0 {
		s.inflightCond.Broadcast()
	}
	s.inflightMu.Unlock()
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) shed(w http.ResponseWriter, code int, msg string, retryAfter time.Duration) {
	w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(retryAfter.Seconds()+0.999)))
	writeJSON(w, code, errorBody{Error: msg, RetryAfterMS: retryAfter.Milliseconds()})
}

// guard wraps a handler with panic isolation: a panicking request is
// answered with 500 and counted, and never takes the process down.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.mPanics.Inc()
				writeJSON(w, http.StatusInternalServerError,
					errorBody{Error: fmt.Sprintf("internal panic: %v", p)})
			}
		}()
		h(w, r)
	}
}

// admit implements admission control: a free slot is taken immediately;
// otherwise the request queues, bounded in count by MaxQueue (shed 429)
// and in time by QueueWait (shed 503). The returned release must be
// called when the optimization finishes; wait is how long the request
// queued before the outcome either way.
func (s *Server) admit(ctx context.Context) (release func(), wait time.Duration, code int, err error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0, 0, nil
	default:
	}
	if n := s.waiting.Add(1); n > int64(s.cfg.maxQueue()) {
		s.waiting.Add(-1)
		s.mShed429.Inc()
		return nil, 0, http.StatusTooManyRequests,
			fmt.Errorf("queue full (%d waiting)", n-1)
	}
	defer s.waiting.Add(-1)
	start := time.Now()
	t := time.NewTimer(s.cfg.queueWait())
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		wait = time.Since(start)
		s.hQueueWait.Observe(wait.Seconds())
		return func() { <-s.sem }, wait, 0, nil
	case <-t.C:
		s.mShed503.Inc()
		return nil, time.Since(start), http.StatusServiceUnavailable,
			fmt.Errorf("no slot within %s", s.cfg.queueWait())
	case <-ctx.Done():
		// Client gone; nothing useful to send, but the handler needs a
		// status. 503 keeps the semantics "not processed".
		return nil, time.Since(start), http.StatusServiceUnavailable, ctx.Err()
	}
}

// begin performs the shared request preamble: drain gate + admission.
// ok=false means the response has been written (and rec, when present,
// completed as shed).
func (s *Server) begin(w http.ResponseWriter, r *http.Request, rec *obs.RequestRecord) (release func(), ok bool) {
	s.mRequests.Inc()
	if !s.track() {
		s.mDrained.Inc()
		s.shed(w, http.StatusServiceUnavailable, "server draining", time.Second)
		s.finish(rec, http.StatusServiceUnavailable, "shed", "server draining")
		return nil, false
	}
	admitStart := time.Now()
	rel, wait, code, err := s.admit(r.Context())
	rec.SetAdmissionWait(admitStart, wait)
	if err != nil {
		s.untrack()
		s.shed(w, code, err.Error(), s.cfg.queueWait())
		s.finish(rec, code, "shed", err.Error())
		return nil, false
	}
	return func() {
		rel()
		s.untrack()
	}, true
}

// finish classifies and completes a flight record, feeds the per-phase
// latency histograms, and emits the structured request log. nil-safe;
// call it exactly once per recorded request, after the response is
// written.
func (s *Server) finish(rec *obs.RequestRecord, status int, outcome, errMsg string) {
	if rec == nil {
		return
	}
	rec.Status = status
	rec.Outcome = outcome
	rec.Error = errMsg
	s.cfg.Flight.Complete(rec)
	for _, sp := range rec.PhaseClock().Spans() {
		if sp.Phase == obs.PhaseRefine {
			// Refinements usually outlive the request; the refinement
			// callback observes their histogram when they land.
			continue
		}
		if h := s.hPhase[sp.Phase]; h != nil {
			h.Observe(float64(sp.DurUS) / 1e6)
		}
	}
	if lg := s.cfg.Log; lg != nil {
		kv := []any{"request_id", rec.ID, "endpoint", rec.Endpoint,
			"status", status, "outcome", outcome, "elapsed_us", rec.ElapsedUS}
		if errMsg != "" {
			kv = append(kv, "error", errMsg)
		}
		switch {
		case outcome == "error":
			lg.Error("request", kv...)
		case outcome != "ok":
			lg.Warn("request", kv...)
		default:
			lg.Debug("request", kv...)
		}
	}
}

// record begins the flight record of one request and stamps the
// correlation headers; nil when the recorder is disabled.
func (s *Server) record(w http.ResponseWriter, r *http.Request, endpoint string) *obs.RequestRecord {
	rec := s.cfg.Flight.Begin(r.Header.Get("traceparent"))
	if rec == nil {
		return nil
	}
	rec.Endpoint = endpoint
	w.Header().Set("X-Request-Id", rec.ID)
	w.Header().Set("Traceparent", rec.TraceParent())
	return rec
}

// OptimizeRequest is the wire request of /v1/optimize.
type OptimizeRequest struct {
	Ruleset string    `json:"ruleset"`
	Query   QuerySpec `json:"query"`
	// Budget names a budget class ("" = "default").
	Budget string `json:"budget,omitempty"`
	// Tier selects the planning tier: "full" (the default) runs the
	// complete branch-and-bound search; "greedy" answers with the
	// sub-millisecond greedy plan and never refines; "auto" answers
	// greedy-first and lets the adaptive router decide whether to
	// refine the cache entry with a background full search.
	Tier string `json:"tier,omitempty"`
	// TimeoutMS is the per-request deadline; 0 uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// IncludePlan asks for the full serialized plan tree in addition to
	// the textual rendering.
	IncludePlan bool `json:"include_plan,omitempty"`
	// Execute asks the server to also run the winning plan on the
	// world's generated demo database and report the executed row count
	// (worlds without a catalog refuse). With the flight recorder on,
	// the execution contributes per-operator runtime stats to the
	// request's record.
	Execute bool `json:"execute,omitempty"`
}

// StatsSummary is the per-request slice of volcano.Stats the service
// reports.
type StatsSummary struct {
	Groups     int `json:"groups"`
	Exprs      int `json:"exprs"`
	TransFired int `json:"trans_fired"`
	ImplFired  int `json:"impl_fired"`
	CostedPlan int `json:"costed_plans"`
}

// OptimizeResponse is the wire response of /v1/optimize.
type OptimizeResponse struct {
	Ruleset string    `json:"ruleset"`
	Query   QuerySpec `json:"query"`
	// PlanText is the compact functional rendering
	// ("Merge_sort(Nested_loops(...))"); IncludePlan adds the full
	// descriptor-bearing tree.
	PlanText     string    `json:"plan_text"`
	Plan         *PlanNode `json:"plan,omitempty"`
	Cost         float64   `json:"cost"`
	Degraded     bool      `json:"degraded,omitempty"`
	DegradeCause string    `json:"degrade_cause,omitempty"`
	DegradePath  string    `json:"degrade_path,omitempty"`
	CacheHit     bool      `json:"cache_hit"`
	// CacheOutcome is set only when the cluster layer served the plan:
	// "peer_fill" (fetched from the key's owning node) or "replica_hit"
	// (served from a local hot-key replica of a remotely-owned entry).
	// Always empty single-node, keeping the response byte-identical.
	CacheOutcome string `json:"cache_outcome,omitempty"`
	// PlannerTier reports which tier produced the plan ("full" or
	// "greedy"); Refined marks plans served from a cache entry
	// hot-swapped in by a background refinement. GreedyCost/FullCost
	// carry the measured cost pair when both are known (refined entries
	// and auto-routed synchronous runs).
	PlannerTier string       `json:"planner_tier"`
	Refined     bool         `json:"refined,omitempty"`
	GreedyCost  float64      `json:"greedy_cost,omitempty"`
	FullCost    float64      `json:"full_cost,omitempty"`
	ElapsedUS   int64        `json:"elapsed_us"`
	Stats       StatsSummary `json:"stats"`
	// Exec reports the executed plan's runtime when the request set
	// "execute": true.
	Exec *ExecSummary `json:"exec,omitempty"`
	// RequestID correlates the response with its flight record
	// (/v1/debug/requests/{id}); present only when the recorder is on.
	RequestID string `json:"request_id,omitempty"`
}

// ExecSummary is the wire rendering of an executed plan's runtime.
type ExecSummary struct {
	Rows      int   `json:"rows"`
	Workers   int   `json:"workers"`
	ElapsedUS int64 `json:"elapsed_us"`
}

// timeout resolves and clamps the effective request deadline.
func (s *Server) timeout(ms int64) time.Duration {
	d := s.cfg.defaultTimeout()
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if max := s.cfg.maxTimeout(); d > max {
		d = max
	}
	return d
}

// optimizeOne runs one prepared request on a fresh optimizer (the
// optimizer is single-use; the rule set, cache and observer are the
// shared state).
func (s *Server) optimizeOne(ctx context.Context, world *World, req OptimizeRequest, rec *obs.RequestRecord) (*OptimizeResponse, int, error) {
	budget, ok := s.budgets[budgetName(req.Budget)]
	if !ok {
		return nil, http.StatusBadRequest, fmt.Errorf("unknown budget class %q", req.Budget)
	}
	tier, err := volcano.ParseTier(req.Tier)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	tree, want, err := world.Build(req.Query)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	rec.SetRequestInfo(world.Name, req.Query.String(), budgetName(req.Budget))
	ctx, cancel := context.WithTimeout(ctx, s.timeout(req.TimeoutMS))
	defer cancel()

	opt := volcano.NewOptimizer(world.RS)
	opt.Opts.Budget = budget
	opt.Opts.Obs = s.cfg.Obs
	opt.Opts.Cache = s.cache
	opt.Opts.Tier = tier
	opt.Opts.Router = s.router
	opt.Opts.Remote = s.remote(world)
	opt.Opts.Phases = rec.PhaseClock() // nil clock when unrecorded: timing off
	if rec != nil || s.cfg.Log != nil {
		opt.Opts.OnRefine = s.refineHook(rec)
	}
	start := time.Now()
	plan, err := opt.OptimizeContext(ctx, tree, want)
	elapsed := time.Since(start)
	s.hLatency.Observe(elapsed.Seconds())
	if err != nil {
		// ErrNoPlan / ErrSpaceExhausted / ErrGreedyNoPlan: the search
		// failed whole; no partial plan ever leaves the server.
		return nil, http.StatusUnprocessableEntity, err
	}
	if rec != nil {
		s.recordOutcome(rec, tier, opt.Stats)
	}
	resp := s.buildResponse(world, req.Query, plan, opt.Stats, elapsed.Microseconds())
	if req.IncludePlan {
		resp.Plan, err = EncodePlan(plan)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
	}
	if req.Execute {
		sum, code, err := s.executePlan(world, plan, rec)
		if err != nil {
			return nil, code, err
		}
		resp.Exec = sum
	}
	return resp, http.StatusOK, nil
}

// refineHook builds the OnRefine callback that links a background tier
// refinement back to the request that spawned it: the refinement
// section lands in rec (even after the request completed), the refine
// histogram gets its span, and the structured log notes the outcome.
func (s *Server) refineHook(rec *obs.RequestRecord) func(volcano.RefineOutcome) {
	return func(out volcano.RefineOutcome) {
		if h := s.hPhase[obs.PhaseRefine]; h != nil && rec != nil {
			h.Observe(out.Elapsed.Seconds())
		}
		rec.AttachRefinement(obs.RefinementInfo{
			Outcome:    out.Outcome,
			GreedyCost: out.GreedyCost,
			FullCost:   out.FullCost,
			ElapsedUS:  out.Elapsed.Microseconds(),
		})
		if lg := s.cfg.Log; lg != nil {
			id := ""
			if rec != nil {
				id = rec.ID
			}
			lg.Debug("refinement", "request_id", id, "outcome", out.Outcome,
				"greedy_cost", out.GreedyCost, "full_cost", out.FullCost,
				"elapsed_us", out.Elapsed.Microseconds())
		}
	}
}

// recordOutcome copies one finished optimization's cache, tier, and
// search outcome into its flight record.
func (s *Server) recordOutcome(rec *obs.RequestRecord, tier volcano.TierMode, st *volcano.Stats) {
	outcome := "miss"
	switch {
	case !s.cache.Enabled():
		outcome = "bypass"
	case st.ReplicaHits > 0:
		// Before the plain-hit check: a replica hit is a local hit on a
		// hot-key replica of a remotely-owned entry.
		outcome = "replica_hit"
	case st.PeerFills > 0:
		// Before the flight-collapsed check: a cluster-collapsed fill
		// also counts FlightShared.
		outcome = "peer_fill"
	case st.FlightShared > 0:
		outcome = "flight-collapsed"
	case st.CacheHits > 0 && st.CacheMisses == 0:
		outcome = "hit"
	}
	rec.SetCache(outcome, s.cache.Epoch(), st.WarmSeeds)
	served := st.Tier
	if served == "" {
		served = volcano.TierFull.String()
	}
	ti := obs.TierInfo{
		Requested:  tier.String(),
		Served:     served,
		Refined:    st.Refined,
		GreedyCost: st.GreedyCost,
		FullCost:   st.FullCost,
	}
	if st.TierRouted != "" {
		ti.Routed = st.TierRouted
		ti.Class = fmt.Sprintf("%016x", st.TierClass)
		if n, b, ok := s.router.ClassState(st.TierClass); ok {
			ti.RouterSamples, ti.RouterBenefit = n, b
		}
	}
	rec.SetTier(ti)
	si := obs.SearchInfo{
		Groups:       st.Groups,
		Exprs:        st.Exprs,
		TransFired:   sumCounts(st.TransFired),
		ImplFired:    sumCounts(st.ImplFired),
		CostedPlans:  st.CostedPlans,
		BudgetChecks: st.BudgetChecks,
		Degraded:     st.Degraded,
	}
	if st.Degraded {
		si.DegradeCause = st.DegradeCause.String()
		si.DegradePath = st.DegradePath
	}
	rec.SetSearch(si)
}

// executePlan runs a winning plan on the world's demo database and, for
// recorded requests, lands the per-operator runtime stats in the flight
// record.
func (s *Server) executePlan(world *World, plan *volcano.PExpr, rec *obs.RequestRecord) (*ExecSummary, int, error) {
	db := world.ExecDB(s.cfg.execSeed(), s.cfg.execRows())
	if db == nil {
		return nil, http.StatusBadRequest,
			fmt.Errorf("world %s has no catalog; cannot execute plans", world.Name)
	}
	comp := exec.NewCompiler(db, world.ExecProps)
	comp.Opts = exec.ExecOptions{Workers: s.cfg.execWorkers()}
	var st *exec.ExecStats
	if rec != nil {
		st = &exec.ExecStats{}
		comp.Opts.Stats = st
	}
	began := time.Now()
	it, err := comp.Compile(plan.ToExpr())
	if err != nil {
		return nil, http.StatusUnprocessableEntity, fmt.Errorf("execute: %w", err)
	}
	res, err := exec.Run(it)
	elapsed := time.Since(began)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, fmt.Errorf("execute: %w", err)
	}
	sum := &ExecSummary{Rows: len(res.Rows), Workers: comp.Opts.Workers, ElapsedUS: elapsed.Microseconds()}
	if rec != nil {
		rec.PhaseClock().Observe(obs.PhaseExec, began, elapsed)
		rec.SetExec(obs.ExecInfo{
			Rows:      sum.Rows,
			Workers:   sum.Workers,
			ElapsedUS: sum.ElapsedUS,
			Ops:       st.Report(),
		})
	}
	return sum, 0, nil
}

// buildResponse renders one optimization outcome as its wire response;
// /v1/optimize and /v1/batch share it so the degradation and tier
// surfaces stay consistent, and the per-outcome server metrics
// (degraded, cache hits) are counted exactly once here.
func (s *Server) buildResponse(world *World, q QuerySpec, plan *volcano.PExpr, st *volcano.Stats, elapsedUS int64) *OptimizeResponse {
	tier := st.Tier
	if tier == "" {
		tier = volcano.TierFull.String()
	}
	resp := &OptimizeResponse{
		Ruleset:     world.Name,
		Query:       q,
		PlanText:    plan.String(),
		Cost:        plan.Cost(world.RS.Class),
		Degraded:    st.Degraded,
		CacheHit:    st.CacheHits > 0 && st.CacheMisses == 0,
		PlannerTier: tier,
		Refined:     st.Refined,
		GreedyCost:  st.GreedyCost,
		FullCost:    st.FullCost,
		ElapsedUS:   elapsedUS,
		Stats: StatsSummary{
			Groups:     st.Groups,
			Exprs:      st.Exprs,
			TransFired: sumCounts(st.TransFired),
			ImplFired:  sumCounts(st.ImplFired),
			CostedPlan: st.CostedPlans,
		},
	}
	switch {
	case st.ReplicaHits > 0:
		resp.CacheOutcome = "replica_hit"
	case st.PeerFills > 0:
		resp.CacheOutcome = "peer_fill"
	}
	if st.Degraded {
		resp.DegradeCause = st.DegradeCause.String()
		resp.DegradePath = st.DegradePath
		s.mDegraded.Inc()
	}
	if resp.CacheHit {
		s.mHits.Inc()
	}
	return resp
}

func sumCounts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func budgetName(s string) string {
	if s == "" {
		return "default"
	}
	return s
}

const maxBody = 1 << 20

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if !s.decode(w, r, &req) {
		return
	}
	world, ok := s.cfg.Registry.Lookup(req.Ruleset)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown ruleset %q", req.Ruleset)})
		return
	}
	rec := s.record(w, r, "/v1/optimize")
	release, ok := s.begin(w, r, rec)
	if !ok {
		return
	}
	defer release()
	resp, code, err := s.optimizeOne(r.Context(), world, req, rec)
	if err != nil {
		s.mErrors.Inc()
		writeJSON(w, code, errorBody{Error: err.Error()})
		s.finish(rec, code, "error", err.Error())
		return
	}
	if rec != nil {
		resp.RequestID = rec.ID
	}
	writeJSON(w, code, resp)
	outcome := "ok"
	if resp.Degraded {
		outcome = "degraded"
	}
	s.finish(rec, code, outcome, "")
}

// BatchRequest is the wire request of /v1/batch: many optimize items
// answered as one admission unit, fanned over the engine's parallel
// batch API.
type BatchRequest struct {
	Items   []OptimizeRequest `json:"items"`
	Workers int               `json:"workers,omitempty"`
}

// BatchItemResponse is one element of a batch answer: either a response
// or an error, index-aligned with the request items.
type BatchItemResponse struct {
	*OptimizeResponse
	Error string `json:"error,omitempty"`
}

// BatchResponse is the wire response of /v1/batch.
type BatchResponse struct {
	Results  []BatchItemResponse `json:"results"`
	WallUS   int64               `json:"wall_us"`
	Workers  int                 `json:"workers"`
	Errors   int                 `json:"errors"`
	Degraded int                 `json:"degraded"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Items) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty batch"})
		return
	}
	if max := s.cfg.maxBatchItems(); len(req.Items) > max {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: fmt.Sprintf("batch of %d items exceeds limit %d", len(req.Items), max)})
		return
	}
	workers := req.Workers
	if workers <= 0 || workers > s.cfg.maxBatchWorkers() {
		workers = s.cfg.maxBatchWorkers()
	}
	// Prepare every item before taking a slot: a malformed item fails
	// the whole batch up front (cheap), matching the all-or-nothing
	// admission decision.
	items := make([]volcano.BatchItem, len(req.Items))
	worlds := make([]*World, len(req.Items))
	for i, it := range req.Items {
		world, ok := s.cfg.Registry.Lookup(it.Ruleset)
		if !ok {
			writeJSON(w, http.StatusNotFound,
				errorBody{Error: fmt.Sprintf("item %d: unknown ruleset %q", i, it.Ruleset)})
			return
		}
		budget, ok := s.budgets[budgetName(it.Budget)]
		if !ok {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: fmt.Sprintf("item %d: unknown budget class %q", i, it.Budget)})
			return
		}
		tier, err := volcano.ParseTier(it.Tier)
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: fmt.Sprintf("item %d: %v", i, err)})
			return
		}
		tree, want, err := world.Build(it.Query)
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: fmt.Sprintf("item %d: %v", i, err)})
			return
		}
		worlds[i] = world
		items[i] = volcano.BatchItem{
			RS:      world.RS,
			Tree:    tree,
			Req:     want,
			Opts:    volcano.Options{Budget: budget, Tier: tier, Remote: s.remote(world)},
			Timeout: s.timeout(it.TimeoutMS),
		}
	}
	rec := s.record(w, r, "/v1/batch")
	rec.SetRequestInfo("", fmt.Sprintf("batch[%d]", len(req.Items)), "")
	release, ok := s.begin(w, r, rec)
	if !ok {
		return
	}
	defer release()

	start := time.Now()
	results, _ := volcano.OptimizeBatchOpts(r.Context(), items, volcano.BatchOptions{
		Workers: workers,
		Obs:     s.cfg.Obs,
		Cache:   s.cache,
		Router:  s.router,
	})
	resp := BatchResponse{
		Results: make([]BatchItemResponse, len(results)),
		WallUS:  time.Since(start).Microseconds(),
		Workers: workers,
	}
	for i, res := range results {
		if res.Err != nil {
			s.mErrors.Inc()
			resp.Errors++
			resp.Results[i] = BatchItemResponse{Error: res.Err.Error()}
			continue
		}
		item := s.buildResponse(worlds[i], req.Items[i].Query, res.Plan, res.Stats, res.Elapsed.Microseconds())
		if item.Degraded {
			resp.Degraded++
		}
		if req.Items[i].IncludePlan {
			if pn, err := EncodePlan(res.Plan); err == nil {
				item.Plan = pn
			}
		}
		resp.Results[i] = BatchItemResponse{OptimizeResponse: item}
	}
	writeJSON(w, http.StatusOK, resp)
	outcome := "ok"
	if resp.Degraded > 0 {
		outcome = "degraded"
	}
	s.finish(rec, http.StatusOK, outcome, "")
}

// rulesetInfo describes one servable world on /v1/rulesets.
type rulesetInfo struct {
	Name    string   `json:"name"`
	MaxN    int      `json:"max_n"`
	Budgets []string `json:"budgets"`
}

func (s *Server) handleRulesets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET required"})
		return
	}
	budgets := make([]string, 0, len(s.budgets))
	for name := range s.budgets {
		budgets = append(budgets, name)
	}
	sort.Strings(budgets)
	var out []rulesetInfo
	for _, name := range s.cfg.Registry.Names() {
		world, _ := s.cfg.Registry.Lookup(name)
		out = append(out, rulesetInfo{Name: name, MaxN: world.MaxN, Budgets: budgets})
	}
	writeJSON(w, http.StatusOK, map[string]any{"rulesets": out})
}

func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	epoch := s.cache.Invalidate()
	if s.cluster != nil {
		// Fan the new epoch out to every live peer; a down peer
		// reconciles on its next exchange (epochs are monotonic, so
		// double delivery is harmless).
		notified := s.cluster.BroadcastEpoch(r.Context(), epoch)
		writeJSON(w, http.StatusOK, map[string]uint64{
			"epoch": epoch, "peers_notified": uint64(notified)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"epoch": epoch})
}

// healthBody is the /healthz response: liveness plus the handful of
// gauges an operator checks first when the service misbehaves.
type healthBody struct {
	Status     string `json:"status"`
	UptimeS    int64  `json:"uptime_s"`
	Inflight   int    `json:"inflight"`
	QueueDepth int64  `json:"queue_depth"`
	Draining   bool   `json:"draining"`
	CacheEpoch uint64 `json:"cache_epoch"`
	// Cluster reports the node's membership when clustering is on:
	// node id, peer count, currently-down peers, promoted hot keys.
	Cluster *cluster.Status `json:"cluster,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.inflightMu.Lock()
	inflight := s.inflightN
	s.inflightMu.Unlock()
	body := healthBody{
		Status:     "ok",
		UptimeS:    int64(time.Since(s.started).Seconds()),
		Inflight:   inflight,
		QueueDepth: s.waiting.Load(),
		CacheEpoch: s.cache.Epoch(),
		Cluster:    s.ClusterStatus(),
	}
	code := http.StatusOK
	if s.draining.Load() {
		body.Status, body.Draining = "draining", true
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}
