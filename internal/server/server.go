// Package server exposes the optimizer as an HTTP/JSON service: a
// registry of prepared rule sets ("worlds"), per-request budget classes
// mapped onto volcano.Budget, one cross-query plan cache shared by every
// request, and the observability surface of internal/obs. Robustness is
// the point of the package: admission control with a bounded in-flight
// semaphore and a queue-wait deadline (load is shed with 429/503 +
// Retry-After, never a partial plan), per-request timeouts propagated
// through OptimizeContext (over-deadline searches degrade gracefully and
// say so), panic isolation per request, and graceful shutdown that
// drains in-flight optimizations before the process exits.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"prairie/internal/obs"
	"prairie/internal/volcano"
)

// Config tunes a Server. The zero value of every field selects a
// sensible default.
type Config struct {
	// Registry holds the servable worlds (required).
	Registry *Registry
	// CacheSize is the shared plan-cache capacity (entries); 0 = 512,
	// negative = disabled.
	CacheSize int
	// MaxInflight bounds concurrently running optimizations; 0 = 2 ×
	// GOMAXPROCS. Requests beyond it queue.
	MaxInflight int
	// MaxQueue bounds queued (admitted-but-waiting) requests; beyond it
	// requests are shed immediately with 429. 0 = 4 × MaxInflight.
	MaxQueue int
	// QueueWait is how long a queued request may wait for a slot before
	// being shed with 503. 0 = 250ms.
	QueueWait time.Duration
	// DefaultTimeout applies when a request names none; 0 = 5s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps request timeouts; 0 = 30s.
	MaxTimeout time.Duration
	// MaxBatchWorkers caps the per-batch worker count; 0 = GOMAXPROCS.
	MaxBatchWorkers int
	// MaxBatchItems caps items per batch request; 0 = 256.
	MaxBatchItems int
	// Budgets extends (and can override) the built-in budget classes.
	Budgets map[string]volcano.Budget
	// Router tunes the adaptive tier router behind `"tier": "auto"`
	// requests (see volcano.RouterConfig); the zero value selects the
	// engine defaults.
	Router volcano.RouterConfig
	// Obs attaches metrics/tracing; nil serves /metrics from an empty
	// registry.
	Obs *obs.Observer
}

func (c *Config) maxInflight() int {
	if c.MaxInflight > 0 {
		return c.MaxInflight
	}
	return 2 * runtime.GOMAXPROCS(0)
}

func (c *Config) maxQueue() int {
	if c.MaxQueue > 0 {
		return c.MaxQueue
	}
	return 4 * c.maxInflight()
}

func (c *Config) queueWait() time.Duration {
	if c.QueueWait > 0 {
		return c.QueueWait
	}
	return 250 * time.Millisecond
}

func (c *Config) defaultTimeout() time.Duration {
	if c.DefaultTimeout > 0 {
		return c.DefaultTimeout
	}
	return 5 * time.Second
}

func (c *Config) maxTimeout() time.Duration {
	if c.MaxTimeout > 0 {
		return c.MaxTimeout
	}
	return 30 * time.Second
}

func (c *Config) maxBatchWorkers() int {
	if c.MaxBatchWorkers > 0 {
		return c.MaxBatchWorkers
	}
	return runtime.GOMAXPROCS(0)
}

func (c *Config) maxBatchItems() int {
	if c.MaxBatchItems > 0 {
		return c.MaxBatchItems
	}
	return 256
}

func (c *Config) cacheSize() int {
	switch {
	case c.CacheSize > 0:
		return c.CacheSize
	case c.CacheSize < 0:
		return 0
	}
	return 512
}

// defaultBudgets are the built-in budget classes. "default" runs
// unbounded (modulo the request timeout); "interactive" trades
// optimality for tail latency; "batch" allows a long search; "tiny" is
// deliberately small so degraded behaviour is reachable in tests.
func defaultBudgets() map[string]volcano.Budget {
	return map[string]volcano.Budget{
		"default":     {},
		"interactive": {Timeout: 200 * time.Millisecond, MaxExprs: 200_000},
		"batch":       {Timeout: 2 * time.Second},
		"tiny":        {MaxExprs: 400},
	}
}

// Server is the optimizer service.
type Server struct {
	cfg     Config
	budgets map[string]volcano.Budget
	cache   *volcano.PlanCache
	router  *volcano.Router
	sem     chan struct{}
	waiting atomic.Int64
	// inflightMu guards inflightN: requests past the draining gate, which
	// Drain waits out. The draining check and the increment happen under
	// one lock so a request can never slip in after Drain observed zero.
	inflightMu   sync.Mutex
	inflightCond *sync.Cond
	inflightN    int
	draining     atomic.Bool
	mux          *http.ServeMux

	// metrics (nil registry → nil metrics, every sink is nil-safe)
	mRequests  *obs.Counter
	mShed429   *obs.Counter
	mShed503   *obs.Counter
	mErrors    *obs.Counter
	mPanics    *obs.Counter
	mDegraded  *obs.Counter
	mHits      *obs.Counter
	mDrained   *obs.Counter
	hLatency   *obs.Histogram
	hQueueWait *obs.Histogram
}

// New builds a Server over cfg.Registry.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil || len(cfg.Registry.Names()) == 0 {
		return nil, errors.New("server: config needs a non-empty Registry")
	}
	budgets := defaultBudgets()
	for name, b := range cfg.Budgets {
		budgets[name] = b
	}
	s := &Server{
		cfg:     cfg,
		budgets: budgets,
		cache:   volcano.NewPlanCache(cfg.cacheSize()),
		router:  volcano.NewRouterObserved(cfg.Router, cfg.Obs.MetricsOrNil()),
		sem:     make(chan struct{}, cfg.maxInflight()),
	}
	s.inflightCond = sync.NewCond(&s.inflightMu)
	if reg := cfg.Obs.MetricsOrNil(); reg != nil {
		s.mRequests = reg.Counter("prairie_server_requests_total")
		s.mShed429 = reg.Counter("prairie_server_shed_queue_full_total")
		s.mShed503 = reg.Counter("prairie_server_shed_queue_wait_total")
		s.mErrors = reg.Counter("prairie_server_errors_total")
		s.mPanics = reg.Counter("prairie_server_panics_total")
		s.mDegraded = reg.Counter("prairie_server_degraded_total")
		s.mHits = reg.Counter("prairie_server_cache_hits_total")
		s.mDrained = reg.Counter("prairie_server_drain_refused_total")
		s.hLatency = reg.Histogram("prairie_server_optimize_seconds", nil)
		s.hQueueWait = reg.Histogram("prairie_server_queue_wait_seconds", nil)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/optimize", s.guard(s.handleOptimize))
	s.mux.HandleFunc("/v1/batch", s.guard(s.handleBatch))
	s.mux.HandleFunc("/v1/rulesets", s.guard(s.handleRulesets))
	s.mux.HandleFunc("/v1/invalidate", s.guard(s.handleInvalidate))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	// Observability exposition: delegate to the obs mux so the service
	// surface and the standalone exposition stay identical.
	om := obs.NewMux(cfg.Obs.MetricsOrNil(), cfg.Obs.TracerOrNil())
	for _, p := range []string{"/metrics", "/vars", "/trace", "/debug/pprof/"} {
		s.mux.Handle(p, om)
	}
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the shared plan cache (tests and the invalidate
// endpoint).
func (s *Server) Cache() *volcano.PlanCache { return s.cache }

// Router exposes the shared tier router: tests and benches use its
// Wait/Snapshot to synchronize with background refinements and read
// the routing mix. In-flight refiners are deliberately not drained by
// Drain — they only ever improve the in-memory cache, so process exit
// may simply abandon them.
func (s *Server) Router() *volcano.Router { return s.router }

// BeginDrain gates new work off: subsequent optimize/batch requests are
// refused with 503 and /healthz reports draining.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain begins draining and blocks until every in-flight request has
// been answered or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.inflightMu.Lock()
		for s.inflightN > 0 {
			s.inflightCond.Wait()
		}
		s.inflightMu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// The waiter goroutine exits once the last request finishes and
		// broadcasts; nothing holds it beyond that.
		return ctx.Err()
	}
}

// track counts a request into the drain set, refusing when draining.
// The check and increment share inflightMu so Drain can never observe
// zero while an admitted request is about to start.
func (s *Server) track() bool {
	s.inflightMu.Lock()
	defer s.inflightMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflightN++
	return true
}

func (s *Server) untrack() {
	s.inflightMu.Lock()
	s.inflightN--
	if s.inflightN == 0 {
		s.inflightCond.Broadcast()
	}
	s.inflightMu.Unlock()
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) shed(w http.ResponseWriter, code int, msg string, retryAfter time.Duration) {
	w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(retryAfter.Seconds()+0.999)))
	writeJSON(w, code, errorBody{Error: msg, RetryAfterMS: retryAfter.Milliseconds()})
}

// guard wraps a handler with panic isolation: a panicking request is
// answered with 500 and counted, and never takes the process down.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.mPanics.Inc()
				writeJSON(w, http.StatusInternalServerError,
					errorBody{Error: fmt.Sprintf("internal panic: %v", p)})
			}
		}()
		h(w, r)
	}
}

// admit implements admission control: a free slot is taken immediately;
// otherwise the request queues, bounded in count by MaxQueue (shed 429)
// and in time by QueueWait (shed 503). The returned release must be
// called when the optimization finishes.
func (s *Server) admit(ctx context.Context) (release func(), code int, err error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0, nil
	default:
	}
	if n := s.waiting.Add(1); n > int64(s.cfg.maxQueue()) {
		s.waiting.Add(-1)
		s.mShed429.Inc()
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("queue full (%d waiting)", n-1)
	}
	defer s.waiting.Add(-1)
	start := time.Now()
	t := time.NewTimer(s.cfg.queueWait())
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		s.hQueueWait.Observe(time.Since(start).Seconds())
		return func() { <-s.sem }, 0, nil
	case <-t.C:
		s.mShed503.Inc()
		return nil, http.StatusServiceUnavailable,
			fmt.Errorf("no slot within %s", s.cfg.queueWait())
	case <-ctx.Done():
		// Client gone; nothing useful to send, but the handler needs a
		// status. 503 keeps the semantics "not processed".
		return nil, http.StatusServiceUnavailable, ctx.Err()
	}
}

// begin performs the shared request preamble: drain gate + admission.
// ok=false means the response has been written.
func (s *Server) begin(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	s.mRequests.Inc()
	if !s.track() {
		s.mDrained.Inc()
		s.shed(w, http.StatusServiceUnavailable, "server draining", time.Second)
		return nil, false
	}
	rel, code, err := s.admit(r.Context())
	if err != nil {
		s.untrack()
		s.shed(w, code, err.Error(), s.cfg.queueWait())
		return nil, false
	}
	return func() {
		rel()
		s.untrack()
	}, true
}

// OptimizeRequest is the wire request of /v1/optimize.
type OptimizeRequest struct {
	Ruleset string    `json:"ruleset"`
	Query   QuerySpec `json:"query"`
	// Budget names a budget class ("" = "default").
	Budget string `json:"budget,omitempty"`
	// Tier selects the planning tier: "full" (the default) runs the
	// complete branch-and-bound search; "greedy" answers with the
	// sub-millisecond greedy plan and never refines; "auto" answers
	// greedy-first and lets the adaptive router decide whether to
	// refine the cache entry with a background full search.
	Tier string `json:"tier,omitempty"`
	// TimeoutMS is the per-request deadline; 0 uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// IncludePlan asks for the full serialized plan tree in addition to
	// the textual rendering.
	IncludePlan bool `json:"include_plan,omitempty"`
}

// StatsSummary is the per-request slice of volcano.Stats the service
// reports.
type StatsSummary struct {
	Groups     int `json:"groups"`
	Exprs      int `json:"exprs"`
	TransFired int `json:"trans_fired"`
	ImplFired  int `json:"impl_fired"`
	CostedPlan int `json:"costed_plans"`
}

// OptimizeResponse is the wire response of /v1/optimize.
type OptimizeResponse struct {
	Ruleset string    `json:"ruleset"`
	Query   QuerySpec `json:"query"`
	// PlanText is the compact functional rendering
	// ("Merge_sort(Nested_loops(...))"); IncludePlan adds the full
	// descriptor-bearing tree.
	PlanText     string    `json:"plan_text"`
	Plan         *PlanNode `json:"plan,omitempty"`
	Cost         float64   `json:"cost"`
	Degraded     bool      `json:"degraded,omitempty"`
	DegradeCause string    `json:"degrade_cause,omitempty"`
	DegradePath  string    `json:"degrade_path,omitempty"`
	CacheHit     bool      `json:"cache_hit"`
	// PlannerTier reports which tier produced the plan ("full" or
	// "greedy"); Refined marks plans served from a cache entry
	// hot-swapped in by a background refinement. GreedyCost/FullCost
	// carry the measured cost pair when both are known (refined entries
	// and auto-routed synchronous runs).
	PlannerTier string       `json:"planner_tier"`
	Refined     bool         `json:"refined,omitempty"`
	GreedyCost  float64      `json:"greedy_cost,omitempty"`
	FullCost    float64      `json:"full_cost,omitempty"`
	ElapsedUS   int64        `json:"elapsed_us"`
	Stats       StatsSummary `json:"stats"`
}

// timeout resolves and clamps the effective request deadline.
func (s *Server) timeout(ms int64) time.Duration {
	d := s.cfg.defaultTimeout()
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if max := s.cfg.maxTimeout(); d > max {
		d = max
	}
	return d
}

// optimizeOne runs one prepared request on a fresh optimizer (the
// optimizer is single-use; the rule set, cache and observer are the
// shared state).
func (s *Server) optimizeOne(ctx context.Context, world *World, req OptimizeRequest) (*OptimizeResponse, int, error) {
	budget, ok := s.budgets[budgetName(req.Budget)]
	if !ok {
		return nil, http.StatusBadRequest, fmt.Errorf("unknown budget class %q", req.Budget)
	}
	tier, err := volcano.ParseTier(req.Tier)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	tree, want, err := world.Build(req.Query)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	ctx, cancel := context.WithTimeout(ctx, s.timeout(req.TimeoutMS))
	defer cancel()

	opt := volcano.NewOptimizer(world.RS)
	opt.Opts.Budget = budget
	opt.Opts.Obs = s.cfg.Obs
	opt.Opts.Cache = s.cache
	opt.Opts.Tier = tier
	opt.Opts.Router = s.router
	start := time.Now()
	plan, err := opt.OptimizeContext(ctx, tree, want)
	elapsed := time.Since(start)
	s.hLatency.Observe(elapsed.Seconds())
	if err != nil {
		// ErrNoPlan / ErrSpaceExhausted / ErrGreedyNoPlan: the search
		// failed whole; no partial plan ever leaves the server.
		return nil, http.StatusUnprocessableEntity, err
	}
	resp := s.buildResponse(world, req.Query, plan, opt.Stats, elapsed.Microseconds())
	if req.IncludePlan {
		resp.Plan, err = EncodePlan(plan)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
	}
	return resp, http.StatusOK, nil
}

// buildResponse renders one optimization outcome as its wire response;
// /v1/optimize and /v1/batch share it so the degradation and tier
// surfaces stay consistent, and the per-outcome server metrics
// (degraded, cache hits) are counted exactly once here.
func (s *Server) buildResponse(world *World, q QuerySpec, plan *volcano.PExpr, st *volcano.Stats, elapsedUS int64) *OptimizeResponse {
	tier := st.Tier
	if tier == "" {
		tier = volcano.TierFull.String()
	}
	resp := &OptimizeResponse{
		Ruleset:     world.Name,
		Query:       q,
		PlanText:    plan.String(),
		Cost:        plan.Cost(world.RS.Class),
		Degraded:    st.Degraded,
		CacheHit:    st.CacheHits > 0 && st.CacheMisses == 0,
		PlannerTier: tier,
		Refined:     st.Refined,
		GreedyCost:  st.GreedyCost,
		FullCost:    st.FullCost,
		ElapsedUS:   elapsedUS,
		Stats: StatsSummary{
			Groups:     st.Groups,
			Exprs:      st.Exprs,
			TransFired: sumCounts(st.TransFired),
			ImplFired:  sumCounts(st.ImplFired),
			CostedPlan: st.CostedPlans,
		},
	}
	if st.Degraded {
		resp.DegradeCause = st.DegradeCause.String()
		resp.DegradePath = st.DegradePath
		s.mDegraded.Inc()
	}
	if resp.CacheHit {
		s.mHits.Inc()
	}
	return resp
}

func sumCounts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func budgetName(s string) string {
	if s == "" {
		return "default"
	}
	return s
}

const maxBody = 1 << 20

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if !s.decode(w, r, &req) {
		return
	}
	world, ok := s.cfg.Registry.Lookup(req.Ruleset)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown ruleset %q", req.Ruleset)})
		return
	}
	release, ok := s.begin(w, r)
	if !ok {
		return
	}
	defer release()
	resp, code, err := s.optimizeOne(r.Context(), world, req)
	if err != nil {
		s.mErrors.Inc()
		writeJSON(w, code, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, code, resp)
}

// BatchRequest is the wire request of /v1/batch: many optimize items
// answered as one admission unit, fanned over the engine's parallel
// batch API.
type BatchRequest struct {
	Items   []OptimizeRequest `json:"items"`
	Workers int               `json:"workers,omitempty"`
}

// BatchItemResponse is one element of a batch answer: either a response
// or an error, index-aligned with the request items.
type BatchItemResponse struct {
	*OptimizeResponse
	Error string `json:"error,omitempty"`
}

// BatchResponse is the wire response of /v1/batch.
type BatchResponse struct {
	Results  []BatchItemResponse `json:"results"`
	WallUS   int64               `json:"wall_us"`
	Workers  int                 `json:"workers"`
	Errors   int                 `json:"errors"`
	Degraded int                 `json:"degraded"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Items) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty batch"})
		return
	}
	if max := s.cfg.maxBatchItems(); len(req.Items) > max {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: fmt.Sprintf("batch of %d items exceeds limit %d", len(req.Items), max)})
		return
	}
	workers := req.Workers
	if workers <= 0 || workers > s.cfg.maxBatchWorkers() {
		workers = s.cfg.maxBatchWorkers()
	}
	// Prepare every item before taking a slot: a malformed item fails
	// the whole batch up front (cheap), matching the all-or-nothing
	// admission decision.
	items := make([]volcano.BatchItem, len(req.Items))
	worlds := make([]*World, len(req.Items))
	for i, it := range req.Items {
		world, ok := s.cfg.Registry.Lookup(it.Ruleset)
		if !ok {
			writeJSON(w, http.StatusNotFound,
				errorBody{Error: fmt.Sprintf("item %d: unknown ruleset %q", i, it.Ruleset)})
			return
		}
		budget, ok := s.budgets[budgetName(it.Budget)]
		if !ok {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: fmt.Sprintf("item %d: unknown budget class %q", i, it.Budget)})
			return
		}
		tier, err := volcano.ParseTier(it.Tier)
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: fmt.Sprintf("item %d: %v", i, err)})
			return
		}
		tree, want, err := world.Build(it.Query)
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: fmt.Sprintf("item %d: %v", i, err)})
			return
		}
		worlds[i] = world
		items[i] = volcano.BatchItem{
			RS:      world.RS,
			Tree:    tree,
			Req:     want,
			Opts:    volcano.Options{Budget: budget, Tier: tier},
			Timeout: s.timeout(it.TimeoutMS),
		}
	}
	release, ok := s.begin(w, r)
	if !ok {
		return
	}
	defer release()

	start := time.Now()
	results, _ := volcano.OptimizeBatchOpts(r.Context(), items, volcano.BatchOptions{
		Workers: workers,
		Obs:     s.cfg.Obs,
		Cache:   s.cache,
		Router:  s.router,
	})
	resp := BatchResponse{
		Results: make([]BatchItemResponse, len(results)),
		WallUS:  time.Since(start).Microseconds(),
		Workers: workers,
	}
	for i, res := range results {
		if res.Err != nil {
			s.mErrors.Inc()
			resp.Errors++
			resp.Results[i] = BatchItemResponse{Error: res.Err.Error()}
			continue
		}
		item := s.buildResponse(worlds[i], req.Items[i].Query, res.Plan, res.Stats, res.Elapsed.Microseconds())
		if item.Degraded {
			resp.Degraded++
		}
		if req.Items[i].IncludePlan {
			if pn, err := EncodePlan(res.Plan); err == nil {
				item.Plan = pn
			}
		}
		resp.Results[i] = BatchItemResponse{OptimizeResponse: item}
	}
	writeJSON(w, http.StatusOK, resp)
}

// rulesetInfo describes one servable world on /v1/rulesets.
type rulesetInfo struct {
	Name    string   `json:"name"`
	MaxN    int      `json:"max_n"`
	Budgets []string `json:"budgets"`
}

func (s *Server) handleRulesets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET required"})
		return
	}
	budgets := make([]string, 0, len(s.budgets))
	for name := range s.budgets {
		budgets = append(budgets, name)
	}
	sort.Strings(budgets)
	var out []rulesetInfo
	for _, name := range s.cfg.Registry.Names() {
		world, _ := s.cfg.Registry.Lookup(name)
		out = append(out, rulesetInfo{Name: name, MaxN: world.MaxN, Budgets: budgets})
	}
	writeJSON(w, http.StatusOK, map[string]any{"rulesets": out})
}

func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	epoch := s.cache.Invalidate()
	writeJSON(w, http.StatusOK, map[string]uint64{"epoch": epoch})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
