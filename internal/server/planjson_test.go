package server

import (
	"context"
	"encoding/json"
	"testing"

	"prairie/internal/volcano"
)

// optimizeWorld runs a query through a world's optimizer directly and
// returns the winning access plan.
func optimizeWorld(t *testing.T, w *World, q QuerySpec) *volcano.PExpr {
	t.Helper()
	tree, want, err := w.Build(q)
	if err != nil {
		t.Fatalf("%s %s: build: %v", w.Name, q, err)
	}
	opt := volcano.NewOptimizer(w.RS)
	plan, err := opt.OptimizeContext(context.Background(), tree, want)
	if err != nil {
		t.Fatalf("%s %s: optimize: %v", w.Name, q, err)
	}
	return plan
}

// TestPlanJSONRoundTrip optimizes queries in every default world,
// serializes each winning plan through the wire codec, and asserts the
// decoded operator tree renders byte-identically to the original. The
// relational E3/E4 queries exercise predicates (selection constants and
// join terms) and orders; oodb exercises the remaining value kinds.
func TestPlanJSONRoundTrip(t *testing.T) {
	reg, err := DefaultRegistry(4, 101, "")
	if err != nil {
		t.Fatal(err)
	}
	cases := []QuerySpec{
		{Family: "E1", N: 3},
		{Family: "E2", N: 3},
		{Family: "E3", N: 3},
		{Family: "E4", N: 3},
		{Family: "E2", N: 4, Graph: "star"},
	}
	for _, name := range reg.Names() {
		w, _ := reg.Lookup(name)
		for _, q := range cases {
			plan := optimizeWorld(t, w, q)
			ref := plan.ToExpr().Format()

			node, err := EncodePlan(plan)
			if err != nil {
				t.Fatalf("%s %s: encode: %v", name, q, err)
			}
			raw, err := json.Marshal(node)
			if err != nil {
				t.Fatalf("%s %s: marshal: %v", name, q, err)
			}
			var back PlanNode
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatalf("%s %s: unmarshal: %v", name, q, err)
			}
			decoded, err := DecodePlan(w.RS.Algebra, &back)
			if err != nil {
				t.Fatalf("%s %s: decode: %v", name, q, err)
			}
			if got := decoded.Format(); got != ref {
				t.Errorf("%s %s: round-trip mismatch\n--- original\n%s\n--- decoded\n%s", name, q, ref, got)
			}
		}
	}
}

// TestPlanJSONErrors pins the codec's failure modes: unknown algorithm
// names, unknown properties, and malformed nodes must error, not panic.
func TestPlanJSONErrors(t *testing.T) {
	reg, err := DefaultRegistry(3, 101, "")
	if err != nil {
		t.Fatal(err)
	}
	w, _ := reg.Lookup("oodb/volcano")
	alg := w.RS.Algebra

	if _, err := DecodePlan(alg, nil); err == nil {
		t.Error("nil node: want error")
	}
	if _, err := DecodePlan(alg, &PlanNode{}); err == nil {
		t.Error("node with neither op nor file: want error")
	}
	if _, err := DecodePlan(alg, &PlanNode{Op: "NO_SUCH_ALG"}); err == nil {
		t.Error("unknown algorithm: want error")
	}
	if _, err := DecodePlan(alg, &PlanNode{
		File:  "F1",
		Props: map[string]PropValue{"no_such_prop": {Kind: "int", Num: 1}},
	}); err == nil {
		t.Error("unknown property: want error")
	}
	if _, err := DecodePlan(alg, &PlanNode{
		File:  "F1",
		Props: map[string]PropValue{"num_records": {Kind: "no_such_kind"}},
	}); err == nil {
		t.Error("unknown value kind: want error")
	}
}
