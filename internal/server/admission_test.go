package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prairie/internal/core"
	"prairie/internal/obs"
)

// slowRegistry returns a registry whose "slow" world blocks in Build
// until release is closed — each request occupies its admission slot
// for a controlled duration, which is how these tests fill the server.
func slowRegistry(t *testing.T) (*Registry, *World, chan struct{}) {
	t.Helper()
	reg, err := DefaultRegistry(4, 101, "")
	if err != nil {
		t.Fatal(err)
	}
	real, _ := reg.Lookup("oodb/volcano")
	release := make(chan struct{})
	slow := &World{
		Name: "slow",
		RS:   real.RS,
		MaxN: real.MaxN,
		Build: func(q QuerySpec) (*core.Expr, *core.Descriptor, error) {
			<-release
			return real.Build(q)
		},
	}
	reg.Add(slow)
	return reg, slow, release
}

func slowReq() OptimizeRequest {
	return OptimizeRequest{Ruleset: "slow", Query: QuerySpec{Family: "E1", N: 3}}
}

// fire posts req in a goroutine and reports the status code on the
// returned channel.
func fire(t *testing.T, url string, req OptimizeRequest) chan int {
	t.Helper()
	ch := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(req)
		resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
		if err != nil {
			ch <- -1
			return
		}
		resp.Body.Close()
		ch <- resp.StatusCode
	}()
	return ch
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionShedding fills every in-flight slot and the whole queue,
// then asserts: queued requests over the wait deadline shed with 503,
// requests beyond the queue bound shed immediately with 429, both carry
// Retry-After, and once the jam clears the server serves normally.
func TestAdmissionShedding(t *testing.T) {
	reg, _, release := slowRegistry(t)
	srv, err := New(Config{
		Registry:    reg,
		MaxInflight: 2,
		MaxQueue:    2,
		QueueWait:   200 * time.Millisecond,
		Obs:         &obs.Observer{Metrics: obs.NewRegistry()},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// Fill both slots.
	running := []chan int{fire(t, hs.URL+"/v1/optimize", slowReq()), fire(t, hs.URL+"/v1/optimize", slowReq())}
	waitFor(t, "slots to fill", func() bool { return len(srv.sem) == 2 })

	// Fill the queue (these wait up to QueueWait, then 503).
	queued := []chan int{fire(t, hs.URL+"/v1/optimize", slowReq()), fire(t, hs.URL+"/v1/optimize", slowReq())}
	waitFor(t, "queue to fill", func() bool { return srv.waiting.Load() == 2 })

	// Beyond the queue: immediate 429 with Retry-After.
	body, _ := json.Marshal(slowReq())
	resp, err := http.Post(hs.URL+"/v1/optimize", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue request: status %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("429 Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if eb.Error == "" || eb.RetryAfterMS <= 0 {
		t.Errorf("429 body incomplete: %+v", eb)
	}

	// The queued requests exceed QueueWait while the jam holds: 503.
	for i, ch := range queued {
		if got := <-ch; got != http.StatusServiceUnavailable {
			t.Errorf("queued request %d: status %d, want 503", i, got)
		}
	}

	// Unjam: the running requests complete with real plans.
	close(release)
	for i, ch := range running {
		if got := <-ch; got != http.StatusOK {
			t.Errorf("running request %d: status %d, want 200", i, got)
		}
	}

	// And the server is healthy again.
	or := optimizeOK(t, hs.URL, OptimizeRequest{Ruleset: "oodb/volcano", Query: QuerySpec{Family: "E1", N: 3}})
	if or.PlanText == "" {
		t.Error("post-jam request returned no plan")
	}
	if got := srv.mShed429.Value(); got != 1 {
		t.Errorf("shed-429 counter = %d, want 1", got)
	}
	if got := srv.mShed503.Value(); got != 2 {
		t.Errorf("shed-503 counter = %d, want 2", got)
	}
}

// TestGracefulDrainUnderLoad (run with -race in CI): with requests in
// flight, Drain refuses new work with 503 but answers every admitted
// request; Drain returns only after the last in-flight response.
func TestGracefulDrainUnderLoad(t *testing.T) {
	reg, _, release := slowRegistry(t)
	srv, err := New(Config{Registry: reg, MaxInflight: 4})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	const inflight = 4
	var chans []chan int
	for i := 0; i < inflight; i++ {
		chans = append(chans, fire(t, hs.URL+"/v1/optimize", slowReq()))
	}
	waitFor(t, "requests in flight", func() bool { return len(srv.sem) == inflight })

	drained := make(chan error, 1)
	var drainReturned atomic.Bool
	go func() {
		err := srv.Drain(context.Background())
		drainReturned.Store(true)
		drained <- err
	}()
	waitFor(t, "draining flag", func() bool { return srv.draining.Load() })

	// New work is refused while draining.
	if got := <-fire(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Ruleset: "oodb/volcano", Query: QuerySpec{Family: "E1", N: 3},
	}); got != http.StatusServiceUnavailable {
		t.Errorf("request during drain: status %d, want 503", got)
	}
	if drainReturned.Load() {
		t.Fatal("Drain returned while requests were still in flight")
	}

	// Release the jam: every in-flight request must be answered 200.
	close(release)
	var wg sync.WaitGroup
	for i, ch := range chans {
		wg.Add(1)
		go func(i int, ch chan int) {
			defer wg.Done()
			if got := <-ch; got != http.StatusOK {
				t.Errorf("in-flight request %d during drain: status %d, want 200", i, got)
			}
		}(i, ch)
	}
	wg.Wait()
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestDrainDeadline: Drain gives up when its context expires while work
// is still in flight.
func TestDrainDeadline(t *testing.T) {
	reg, _, release := slowRegistry(t)
	srv, err := New(Config{Registry: reg, MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	// Registered after hs.Close so it runs first: Close waits for the
	// jammed in-flight request, which needs release closed to finish.
	defer close(release)

	ch := fire(t, hs.URL+"/v1/optimize", slowReq())
	waitFor(t, "request in flight", func() bool { return len(srv.sem) == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Error("Drain returned nil with a stuck request in flight")
	}
	_ = ch
}

// TestQueueWaitServed: a request that queues briefly and then gets a
// slot is served normally — queuing is invisible below the deadline.
func TestQueueWaitServed(t *testing.T) {
	reg, _, release := slowRegistry(t)
	srv, err := New(Config{
		Registry:    reg,
		MaxInflight: 1,
		MaxQueue:    4,
		QueueWait:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	jam := fire(t, hs.URL+"/v1/optimize", slowReq())
	waitFor(t, "slot filled", func() bool { return len(srv.sem) == 1 })
	queued := fire(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Ruleset: "oodb/volcano", Query: QuerySpec{Family: "E1", N: 3},
	})
	waitFor(t, "request queued", func() bool { return srv.waiting.Load() == 1 })

	close(release)
	if got := <-jam; got != http.StatusOK {
		t.Errorf("jam request: status %d", got)
	}
	if got := <-queued; got != http.StatusOK {
		t.Errorf("queued request: status %d, want 200", got)
	}
}
