package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"prairie/internal/core"
	"prairie/internal/obs"
)

// testServer stands up a service over the default worlds on a small
// catalog (fast) with the given config overrides applied.
func testServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	reg, err := DefaultRegistry(4, 101, "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Registry: reg}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func postJSON(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func optimizeOK(t *testing.T, base string, req OptimizeRequest) OptimizeResponse {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize %v: status %d: %s", req.Query, resp.StatusCode, body)
	}
	var or OptimizeResponse
	if err := json.Unmarshal(body, &or); err != nil {
		t.Fatalf("optimize %v: %v", req.Query, err)
	}
	return or
}

// TestOptimizeEveryWorld: every registered world answers a basic query
// and a repeat of the same request is served from the shared cache with
// an identical plan.
func TestOptimizeEveryWorld(t *testing.T) {
	reg, err := DefaultRegistry(4, 101, "")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	for _, name := range reg.Names() {
		t.Run(name, func(t *testing.T) {
			req := OptimizeRequest{Ruleset: name, Query: QuerySpec{Family: "E1", N: 3}}
			cold := optimizeOK(t, hs.URL, req)
			if cold.PlanText == "" {
				t.Fatal("empty plan_text")
			}
			if cold.CacheHit {
				t.Error("first request reported cache_hit")
			}
			if cold.Stats.Exprs == 0 {
				t.Error("stats missing from cold response")
			}
			warm := optimizeOK(t, hs.URL, req)
			if !warm.CacheHit {
				t.Error("repeat request was not a cache hit")
			}
			if warm.PlanText != cold.PlanText {
				t.Errorf("cache hit plan differs:\nwarm: %s\ncold: %s", warm.PlanText, cold.PlanText)
			}
			if warm.Cost != cold.Cost {
				t.Errorf("cache hit cost %g != cold %g", warm.Cost, cold.Cost)
			}
		})
	}
}

// TestOptimizeBudgetClasses: the "tiny" class degrades a hard query and
// says so on the wire; an unknown class is a 400; degraded plans carry a
// cause and path.
func TestOptimizeBudgetClasses(t *testing.T) {
	_, hs := testServer(t, nil)

	or := optimizeOK(t, hs.URL, OptimizeRequest{
		Ruleset: "oodb/volcano",
		Query:   QuerySpec{Family: "E4", N: 3},
		Budget:  "tiny",
	})
	if !or.Degraded {
		t.Skip("E4 n=3 fits in MaxExprs=400; budget no longer degrades it")
	}
	if or.DegradeCause == "" || or.DegradePath == "" {
		t.Errorf("degraded response missing cause/path: %+v", or)
	}
	if or.PlanText == "" {
		t.Error("degraded response missing plan")
	}

	resp, body := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{
		Ruleset: "oodb/volcano",
		Query:   QuerySpec{Family: "E1", N: 3},
		Budget:  "no-such-class",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown budget: status %d: %s", resp.StatusCode, body)
	}
}

// TestOptimizeErrors: malformed requests are 4xx with a JSON error and
// never a partial plan.
func TestOptimizeErrors(t *testing.T) {
	_, hs := testServer(t, nil)
	cases := []struct {
		name string
		req  OptimizeRequest
		want int
	}{
		{"unknown ruleset", OptimizeRequest{Ruleset: "nope", Query: QuerySpec{Family: "E1", N: 3}}, http.StatusNotFound},
		{"unknown family", OptimizeRequest{Ruleset: "oodb/volcano", Query: QuerySpec{Family: "E9", N: 3}}, http.StatusBadRequest},
		{"n too large", OptimizeRequest{Ruleset: "oodb/volcano", Query: QuerySpec{Family: "E1", N: 40}}, http.StatusBadRequest},
		{"n too small", OptimizeRequest{Ruleset: "oodb/volcano", Query: QuerySpec{Family: "E1", N: 1}}, http.StatusBadRequest},
		{"bad graph", OptimizeRequest{Ruleset: "oodb/volcano", Query: QuerySpec{Family: "E1", N: 3, Graph: "mesh"}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := postJSON(t, hs.URL+"/v1/optimize", c.req)
			if resp.StatusCode != c.want {
				t.Errorf("status %d, want %d: %s", resp.StatusCode, c.want, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Errorf("error body not JSON with error field: %s", body)
			}
			if strings.Contains(string(body), "plan_text") {
				t.Errorf("error response leaked a plan: %s", body)
			}
		})
	}

	// Non-JSON body.
	resp, err := http.Post(hs.URL+"/v1/optimize", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(hs.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET optimize: status %d", resp.StatusCode)
	}
}

// TestBatch: a mixed batch comes back index-aligned, duplicate items
// collapse through the shared cache, and per-item failures don't fail
// their neighbours.
func TestBatch(t *testing.T) {
	_, hs := testServer(t, nil)
	items := []OptimizeRequest{
		{Ruleset: "oodb/volcano", Query: QuerySpec{Family: "E1", N: 3}},
		{Ruleset: "oodb/prairie", Query: QuerySpec{Family: "E2", N: 3}},
		{Ruleset: "relational", Query: QuerySpec{Family: "E3", N: 3}},
		{Ruleset: "oodb/volcano", Query: QuerySpec{Family: "E1", N: 3}}, // dup of [0]
	}
	resp, body := postJSON(t, hs.URL+"/v1/batch", BatchRequest{Items: items, Workers: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != len(items) {
		t.Fatalf("got %d results for %d items", len(br.Results), len(items))
	}
	for i, r := range br.Results {
		if r.Error != "" {
			t.Fatalf("item %d: %s", i, r.Error)
		}
		if r.Ruleset != items[i].Ruleset {
			t.Errorf("item %d: answered by %s, want %s", i, r.Ruleset, items[i].Ruleset)
		}
		if r.PlanText == "" {
			t.Errorf("item %d: empty plan", i)
		}
	}
	if br.Results[0].PlanText != br.Results[3].PlanText {
		t.Error("duplicate items got different plans")
	}
	if br.Errors != 0 {
		t.Errorf("batch reports %d errors", br.Errors)
	}

	// A malformed item fails the whole batch up front with 4xx.
	items[1].Query.Family = "E9"
	resp, body = postJSON(t, hs.URL+"/v1/batch", BatchRequest{Items: items})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad item: status %d: %s", resp.StatusCode, body)
	}
}

// TestRulesetsAndHealth: discovery and liveness endpoints.
func TestRulesetsAndHealth(t *testing.T) {
	srv, hs := testServer(t, nil)

	resp, err := http.Get(hs.URL + "/v1/rulesets")
	if err != nil {
		t.Fatal(err)
	}
	var rl struct {
		Rulesets []rulesetInfo `json:"rulesets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rl.Rulesets) != 3 {
		t.Fatalf("got %d rulesets, want 3: %+v", len(rl.Rulesets), rl)
	}
	for _, info := range rl.Rulesets {
		if len(info.Budgets) == 0 || info.MaxN < 2 {
			t.Errorf("ruleset %+v incomplete", info)
		}
	}

	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}

	srv.BeginDrain()
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d", resp.StatusCode)
	}
}

// TestInvalidate bumps the cache epoch over the wire: the next request
// is a fresh miss but still returns the identical plan.
func TestInvalidate(t *testing.T) {
	_, hs := testServer(t, nil)
	req := OptimizeRequest{Ruleset: "oodb/volcano", Query: QuerySpec{Family: "E1", N: 3}}
	cold := optimizeOK(t, hs.URL, req)
	if hit := optimizeOK(t, hs.URL, req); !hit.CacheHit {
		t.Fatal("expected a cache hit before invalidation")
	}

	resp, body := postJSON(t, hs.URL+"/v1/invalidate", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invalidate: status %d: %s", resp.StatusCode, body)
	}
	var ep map[string]uint64
	if err := json.Unmarshal(body, &ep); err != nil || ep["epoch"] == 0 {
		t.Fatalf("invalidate response: %s", body)
	}

	after := optimizeOK(t, hs.URL, req)
	if after.CacheHit {
		t.Error("request after invalidation was served from the stale epoch")
	}
	if after.PlanText != cold.PlanText {
		t.Errorf("plan changed across invalidation:\nafter: %s\ncold:  %s", after.PlanText, cold.PlanText)
	}
}

// TestMetricsExposed: the obs surface is mounted on the service mux and
// server counters appear in the Prometheus text.
func TestMetricsExposed(t *testing.T) {
	ob := &obs.Observer{Metrics: obs.NewRegistry()}
	_, hs := testServer(t, func(c *Config) { c.Obs = ob })
	optimizeOK(t, hs.URL, OptimizeRequest{Ruleset: "oodb/volcano", Query: QuerySpec{Family: "E1", N: 3}})

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{"prairie_server_requests_total 1", "prairie_server_optimize_seconds"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestRequestTimeoutDegrades: a tight per-request deadline makes the
// search degrade gracefully — 200 with degraded=true, not an error, and
// the plan is complete.
func TestRequestTimeoutDegrades(t *testing.T) {
	_, hs := testServer(t, nil)
	or := optimizeOK(t, hs.URL, OptimizeRequest{
		Ruleset:   "oodb/volcano",
		Query:     QuerySpec{Family: "E4", N: 4},
		TimeoutMS: 1,
	})
	if !or.Degraded {
		t.Skip("E4 n=4 finished within 1ms; cannot exercise the deadline path on this machine")
	}
	if or.PlanText == "" {
		t.Error("degraded response missing plan")
	}
	if or.DegradeCause == "" {
		t.Error("degraded response missing cause")
	}
}

// TestPanicIsolation: a panicking request is answered 500 and the
// server keeps serving.
func TestPanicIsolation(t *testing.T) {
	reg, err := DefaultRegistry(4, 101, "")
	if err != nil {
		t.Fatal(err)
	}
	world, _ := reg.Lookup("oodb/volcano")
	boom := &World{
		Name: "boom",
		RS:   world.RS,
		MaxN: world.MaxN,
		Build: func(q QuerySpec) (*core.Expr, *core.Descriptor, error) {
			panic("synthetic build failure")
		},
	}
	reg.Add(boom)
	srv, err := New(Config{Registry: reg, Obs: &obs.Observer{Metrics: obs.NewRegistry()}})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	resp, body := postJSON(t, hs.URL+"/v1/optimize", OptimizeRequest{Ruleset: "boom", Query: QuerySpec{Family: "E1", N: 3}})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "synthetic build failure") {
		t.Errorf("panic not surfaced: %s", body)
	}
	// Server still serves.
	optimizeOK(t, hs.URL, OptimizeRequest{Ruleset: "oodb/volcano", Query: QuerySpec{Family: "E1", N: 3}})
	if got := srv.mPanics.Value(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}
}

// TestBudgetClassSharesCache: per-request timeouts must not fragment
// the cache (only Budget values key it): two different timeout_ms values
// on the same query share one entry.
func TestBudgetClassSharesCache(t *testing.T) {
	srv, hs := testServer(t, nil)
	req := OptimizeRequest{Ruleset: "oodb/volcano", Query: QuerySpec{Family: "E1", N: 3}, TimeoutMS: 10000}
	optimizeOK(t, hs.URL, req)
	req.TimeoutMS = 20000
	warm := optimizeOK(t, hs.URL, req)
	if !warm.CacheHit {
		t.Error("different timeout_ms fragmented the cache")
	}
	if srv.Cache().Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", srv.Cache().Len())
	}

	// Distinct budget classes DO key separately (different search
	// effort may legitimately produce different plans).
	req.Budget = "batch"
	cold := optimizeOK(t, hs.URL, req)
	if cold.CacheHit {
		t.Error("different budget class hit the other class's entry")
	}
}
