package server

import (
	"prairie/internal/core"
	"prairie/internal/volcano"
	"prairie/internal/wire"
)

// The access-plan JSON codec lives in internal/wire so the cluster peer
// protocol can share it without importing the server; these aliases
// keep the server's public surface (and its callers) unchanged.

// PlanNode is one node of a serialized access plan (see wire.PlanNode).
type PlanNode = wire.PlanNode

// PropValue is a kind-tagged descriptor value (see wire.PropValue).
type PropValue = wire.PropValue

// WireAttr is a (relation, attribute) pair (see wire.Attr).
type WireAttr = wire.Attr

// WireOrder serializes a tuple order (see wire.Order).
type WireOrder = wire.Order

// WirePred serializes a predicate tree (see wire.Pred).
type WirePred = wire.Pred

// EncodePlan serializes an access plan.
func EncodePlan(p *volcano.PExpr) (*PlanNode, error) { return wire.EncodePlan(p) }

// DecodePlan rebuilds a core operator tree from a serialized plan using
// the world's algebra (algorithm names and property kinds). The result
// is an access plan the exec compiler accepts.
func DecodePlan(alg *core.Algebra, n *PlanNode) (*core.Expr, error) { return wire.DecodePlan(alg, n) }
