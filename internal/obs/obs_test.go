package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.FloatCounter("y").Add(1)
	r.Gauge("z").Set(3)
	r.Histogram("h", nil).Observe(1)
	r.WritePrometheus(io.Discard)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("nil registry snapshot = %v", got)
	}

	var tr *Tracer
	sp := tr.Begin(1, "a", "b")
	sp.End()
	tr.Instant(1, "i", "c")
	tr.Counter(1, "n", 1)
	tr.SetThreadName(1, "w")
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer recorded events")
	}
	if err := tr.WriteChrome(io.Discard); err != nil {
		t.Fatal(err)
	}

	var o *Observer
	if o.Enabled() || o.TimingEnabled() || o.MetricsOrNil() != nil || o.TracerOrNil() != nil {
		t.Fatal("nil observer not inert")
	}
	if (&Observer{}).Enabled() {
		t.Fatal("empty observer reports enabled")
	}
}

func TestRegistryPrometheusAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("prairie_rule_fired_total", "rule", "join_commute")).Add(3)
	r.Counter(Label("prairie_rule_fired_total", "rule", "join_assoc")).Add(1)
	r.FloatCounter("prairie_rule_seconds_total").Add(0.25)
	r.Gauge("prairie_worklist_depth_max").Max(7)
	r.Gauge("prairie_worklist_depth_max").Max(4) // must not lower
	h := r.Histogram("prairie_optimize_seconds", []float64{0.001, 1})
	h.Observe(0.0005)
	h.Observe(0.5)
	h.Observe(30)

	var b bytes.Buffer
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE prairie_rule_fired_total counter",
		`prairie_rule_fired_total{rule="join_assoc"} 1`,
		`prairie_rule_fired_total{rule="join_commute"} 3`,
		"prairie_rule_seconds_total 0.25",
		"prairie_worklist_depth_max 7",
		`prairie_optimize_seconds_bucket{le="0.001"} 1`,
		`prairie_optimize_seconds_bucket{le="1"} 2`,
		`prairie_optimize_seconds_bucket{le="+Inf"} 3`,
		"prairie_optimize_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q in:\n%s", want, out)
		}
	}
	// One TYPE line per family, not per labeled series.
	if n := strings.Count(out, "# TYPE prairie_rule_fired_total"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}

	snap := r.Snapshot()
	if snap[Label("prairie_rule_fired_total", "rule", "join_commute")] != int64(3) {
		t.Errorf("snapshot counter = %v", snap)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
}

func TestLabelEscaping(t *testing.T) {
	got := Label("m", "k", `a"b\c`)
	want := `m{k="a\"b\\c"}`
	if got != want {
		t.Fatalf("Label = %s, want %s", got, want)
	}
}

// TestConcurrentRecording hammers every metric kind and the tracer from
// many goroutines; under -race this verifies the lock-free recording
// paths batch workers share.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			c := r.Counter("c")
			f := r.FloatCounter("f")
			g := r.Gauge("g")
			h := r.Histogram("h", nil)
			for i := 0; i < per; i++ {
				c.Inc()
				f.Add(0.5)
				g.Max(float64(i))
				h.Observe(float64(i) * 1e-6)
				sp := tr.Begin(tid, "span", "test")
				sp.End()
			}
		}(w + 1)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.FloatCounter("f").Value(); got != workers*per/2 {
		t.Errorf("float counter = %g, want %d", got, workers*per/2)
	}
	if got := r.Histogram("h", nil).Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := tr.Len(); got != workers*per {
		t.Errorf("tracer events = %d, want %d", got, workers*per)
	}
}

func TestTracerExportAndCap(t *testing.T) {
	tr := NewTracer()
	tr.MaxEvents = 3
	tr.SetThreadName(1, "optimizer")
	sp := tr.Begin(1, "optimize", "optimize")
	time.Sleep(time.Millisecond)
	sp.EndArgs(map[string]any{"groups": 4})
	tr.Instant(1, "trans:join_commute", "rule")
	tr.Counter(1, "worklist_depth", 5) // over cap: dropped
	if tr.Len() != 3 || tr.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d, want 3/1", tr.Len(), tr.Dropped())
	}

	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("chrome trace has %d events, want 3", len(doc.TraceEvents))
	}
	var span *TraceEvent
	for i := range doc.TraceEvents {
		if doc.TraceEvents[i].Ph == "X" {
			span = &doc.TraceEvents[i]
		}
	}
	if span == nil || span.Dur <= 0 || span.Name != "optimize" {
		t.Fatalf("missing or malformed complete event: %+v", span)
	}

	b.Reset()
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// 3 retained events plus the trailing dropped_events marker.
	if len(lines) != 4 {
		t.Fatalf("jsonl lines = %d, want 4", len(lines))
	}
	for _, ln := range lines {
		var ev TraceEvent
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("jsonl line %q: %v", ln, err)
		}
	}
	var marker TraceEvent
	if err := json.Unmarshal([]byte(lines[3]), &marker); err != nil {
		t.Fatal(err)
	}
	if marker.Name != "dropped_events" || marker.Args["count"] != float64(1) {
		t.Fatalf("missing dropped_events marker, got %+v", marker)
	}
}

func TestServeExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("prairie_optimize_total").Add(2)
	tr := NewTracer()
	tr.Instant(1, "x", "t")
	addr, closeFn, err := Serve("127.0.0.1:0", NewMux(reg, tr, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = closeFn() }()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "prairie_optimize_total 2") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/vars"); !strings.Contains(body, "prairie_optimize_total") {
		t.Errorf("/vars missing counter:\n%s", body)
	}
	if body := get("/trace"); !strings.Contains(body, "traceEvents") {
		t.Errorf("/trace not chrome format:\n%s", body)
	}
	if body := get("/debug/pprof/heap?debug=1"); len(body) == 0 {
		t.Error("/debug/pprof/heap empty")
	}
}
