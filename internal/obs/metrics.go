// Package obs is the optimizer observability layer: a low-overhead
// metrics registry (atomic counters, gauges, and fixed-bucket
// histograms), a structured span tracer exporting JSON-lines and Chrome
// trace_event files, and an HTTP exposition surface (Prometheus text,
// JSON snapshot, net/http/pprof).
//
// The package is dependency-free (stdlib only) and every entry point is
// nil-safe: calls on a nil *Registry, *Tracer, or *Observer reduce to a
// single predictable branch, so instrumented code paths cost nothing
// measurable when observation is disabled.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe (zero).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter is a monotonically increasing atomic float metric
// (seconds totals and other fractional accumulations).
type FloatCounter struct{ bits atomic.Uint64 }

// Add increments the counter by v via a CAS loop. Nil-safe.
func (c *FloatCounter) Add(v float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total. Nil-safe (zero).
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an atomic float metric holding the latest (or maximum)
// observed value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Max lifts the gauge to v if v exceeds the current value. Nil-safe.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value. Nil-safe (zero).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Observations land
// in the first bucket whose upper bound is >= the value; values above
// every bound land in the implicit +Inf bucket. All operations are
// atomic, so concurrent observers (batch workers) need no locking.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sum     FloatCounter
}

// DurationBuckets are the default latency bounds in seconds: 1µs to 16s
// in powers of four — wide enough for a single rule firing and a whole
// degraded E4 sweep alike.
var DurationBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4, 16,
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations. Nil-safe (zero).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations. Nil-safe (zero).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts,
// interpolating linearly within the bucket that contains the target
// rank — the same estimate Prometheus' histogram_quantile computes. The
// +Inf bucket clamps to its lower bound. Nil-safe and empty-safe (0).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if seen+n >= rank && n > 0 {
			if i >= len(h.bounds) { // +Inf bucket: no upper bound to lerp toward
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (h.bounds[i]-lo)*(rank-seen)/n
		}
		seen += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is a named-metric store. Lookup (get-or-create) takes a
// mutex; recording on the returned metric is lock-free, so hot paths
// should hold on to the metric rather than re-resolving the name.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	floats map[string]*FloatCounter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		floats: map[string]*FloatCounter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Label renders a Prometheus-style series name with one label pair,
// escaping backslashes, quotes, and newlines in the value.
func Label(name, key, value string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return name + `{` + key + `="` + r.Replace(value) + `"}`
}

// Counter returns (creating if needed) the named counter. Nil-safe: a
// nil registry returns a nil counter, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// FloatCounter returns (creating if needed) the named float counter.
func (r *Registry) FloatCounter(name string) *FloatCounter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.floats[name]
	if !ok {
		c = &FloatCounter{}
		r.floats[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; bounds
// apply only on creation (nil uses DurationBuckets). Histogram names
// must not carry labels — the exposition appends _bucket/_sum/_count.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// family strips a label suffix from a series name.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	typed := func(names []string, kind string, emit func(string)) {
		lastFam := ""
		for _, n := range names {
			if f := family(n); f != lastFam {
				fmt.Fprintf(w, "# TYPE %s %s\n", f, kind)
				lastFam = f
			}
			emit(n)
		}
	}
	typed(sortedKeys(r.counts), "counter", func(n string) {
		fmt.Fprintf(w, "%s %d\n", n, r.counts[n].Value())
	})
	typed(sortedKeys(r.floats), "counter", func(n string) {
		fmt.Fprintf(w, "%s %g\n", n, r.floats[n].Value())
	})
	typed(sortedKeys(r.gauges), "gauge", func(n string) {
		fmt.Fprintf(w, "%s %g\n", n, r.gauges[n].Value())
	})
	typed(sortedKeys(r.hists), "histogram", func(n string) {
		h := r.hists[n]
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", n, b, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count())
		fmt.Fprintf(w, "%s_sum %g\n", n, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count())
	})
}

// Snapshot returns all metric values as a plain map (expvar-style).
// Histograms report count, sum, and the per-bucket cumulative counts.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counts {
		out[n] = c.Value()
	}
	for n, c := range r.floats {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, h := range r.hists {
		buckets := map[string]int64{}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			buckets[fmt.Sprintf("le_%g", b)] = cum
		}
		out[n] = map[string]any{
			"count": h.Count(), "sum": h.Sum(), "buckets": buckets,
		}
	}
	return out
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
