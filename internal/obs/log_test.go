package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestLoggerLevelsAndShape(t *testing.T) {
	var b bytes.Buffer
	lg := NewLogger(&b, LevelWarn)
	lg.Debug("nope")
	lg.Info("nope")
	lg.Warn("queued", "depth", 7)
	lg.Error("boom", "err", errors.New("bad"), "took", 1500*time.Microsecond)

	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2 (below-min levels filtered):\n%s", len(lines), b.String())
	}
	var warn, errRec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &warn); err != nil {
		t.Fatalf("warn line not JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &errRec); err != nil {
		t.Fatalf("error line not JSON: %v", err)
	}
	if warn["level"] != "warn" || warn["msg"] != "queued" || warn["depth"] != float64(7) {
		t.Fatalf("warn = %v", warn)
	}
	if _, err := time.Parse(time.RFC3339Nano, warn["ts"].(string)); err != nil {
		t.Fatalf("ts not RFC3339Nano: %v", err)
	}
	// Errors and durations render as strings.
	if errRec["err"] != "bad" || errRec["took"] != "1.5ms" {
		t.Fatalf("error = %v", errRec)
	}
}

func TestLoggerBadKeyAndNil(t *testing.T) {
	var b bytes.Buffer
	lg := NewLogger(&b, LevelDebug)
	lg.Info("odd", "dangling")
	var rec map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(b.Bytes()), &rec); err != nil {
		t.Fatalf("odd-kv line not JSON: %v\n%s", err, b.String())
	}
	if rec["!BADKEY"] != "dangling" {
		t.Fatalf("odd trailing key not flagged: %v", rec)
	}

	var nilLogger *Logger
	nilLogger.Info("ignored", "k", "v") // must not panic
	if nilLogger.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"": LevelInfo, "info": LevelInfo, "debug": LevelDebug,
		"warn": LevelWarn, "warning": LevelWarn, "error": LevelError,
		"ERROR": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}
